#!/usr/bin/env bash
# Markdown link checker for the repo's documentation.
#
# Walks every tracked *.md outside build trees and verifies that each
# relative link target — [text](path), [text](path#anchor) — exists on
# disk, resolved against the linking file's directory (with a repo-root
# fallback for links written root-relative). External links (http/https/
# mailto) are not fetched; this gate is about the repo staying
# self-consistent, not about the internet being up.
#
# It also fails on *orphaned* documentation: every file under docs/
# must be the target of at least one link from some other markdown
# file, so a new document cannot be merged without being reachable
# from the README or a sibling page.
#
# Usage: scripts/check_links.sh
#   Exits non-zero listing every dangling link and orphaned doc.

set -u -o pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAILED=0

# shellcheck disable=SC2044  # filenames are repo-controlled, no spaces
for md in $(cd "$REPO_ROOT" &&
            find . -name '*.md' -not -path './build*' -not -path './.git/*' |
            sort); do
  md="${md#./}"
  dir="$(dirname "$md")"
  # One match per line: the (...) part of [...](...) with any #anchor
  # and surrounding whitespace stripped.
  links=$(grep -oE '\]\([^)]+\)' "${REPO_ROOT}/${md}" 2>/dev/null |
          sed -e 's/^](//' -e 's/)$//' -e 's/#.*$//' -e 's/[[:space:]]*$//')
  for link in $links; do
    case "$link" in
    ''|http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "${REPO_ROOT}/${dir}/${link}" ] &&
       [ ! -e "${REPO_ROOT}/${link}" ]; then
      printf 'check_links: %s -> %s (missing)\n' "$md" "$link" >&2
      FAILED=1
    fi
  done
done

# Orphan pass: a docs/*.md nobody links to is unreachable documentation.
# Links counted are [text](...) targets in every other markdown file
# (any path spelling that ends in the doc's basename) plus backtick
# references like `docs/service.md` in the README's prose tables.
# shellcheck disable=SC2044
for doc in $(cd "$REPO_ROOT" && find docs -name '*.md' | sort); do
  base="$(basename "$doc")"
  linked=0
  # shellcheck disable=SC2044
  for md in $(cd "$REPO_ROOT" &&
              find . -name '*.md' -not -path './build*' -not -path './.git/*'); do
    md="${md#./}"
    [ "$md" = "$doc" ] && continue
    if grep -qE "\]\([^)]*${base}(#[^)]*)?\)|\`(docs/)?${base}\`" \
         "${REPO_ROOT}/${md}"; then
      linked=1
      break
    fi
  done
  if [ "$linked" -eq 0 ]; then
    printf 'check_links: %s is orphaned (no other markdown links to it)\n' \
           "$doc" >&2
    FAILED=1
  fi
done

if [ "$FAILED" -ne 0 ]; then
  echo "check_links: FAILED"
  exit 1
fi
echo "check_links: OK"
