#!/usr/bin/env bash
# Lint gate for the mutk tree.
#
# Four layers:
#   1. clang-tidy over the compilation database (config: .clang-tidy,
#      warnings are errors). Skipped with a warning when clang-tidy is
#      not installed, unless MUTK_LINT_REQUIRE_TIDY=1 (CI sets this);
#      skipped silently when MUTK_LINT_SKIP_TIDY=1 (the CI docs job
#      wants the grep layers without a compile).
#   2. Repo-specific greps that codify project rules clang-tidy cannot
#      express: no naked new/delete outside RAII wrappers, no rand()
#      (all randomness goes through SplitMix64/std engines with seeds),
#      no sleep-based synchronization in src/, and no mutable shared
#      counters that bypass <atomic>.
#   3. Metric catalog completeness: every metric name literal in
#      src/obs/ must be documented in docs/observability.md.
#   4. Lock discipline: no raw standard-library locking primitives in
#      src/ outside the annotated wrappers (support/Mutex.h), so every
#      mutex carries a thread-safety capability and feeds the
#      lock-order auditor.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir must contain compile_commands.json (any preset works;
#   defaults to ./build). Exits non-zero on any finding.
#   MUTK_LINT_ROOT overrides the tree being linted (the lint gate's own
#   fixture tests point it at synthetic trees).

set -u -o pipefail

REPO_ROOT="${MUTK_LINT_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
FAILED=0

note() { printf '%s\n' "$*"; }
fail() {
  printf 'lint: %s\n' "$*" >&2
  FAILED=1
}

# --- Layer 1: clang-tidy ---------------------------------------------------

run_clang_tidy() {
  if [ "${MUTK_LINT_SKIP_TIDY:-0}" = "1" ]; then
    note "lint: MUTK_LINT_SKIP_TIDY=1; skipping static analysis layer"
    return
  fi
  local tidy=""
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy="$cand"
      break
    fi
  done
  if [ -z "$tidy" ]; then
    if [ "${MUTK_LINT_REQUIRE_TIDY:-0}" = "1" ]; then
      fail "clang-tidy not found but MUTK_LINT_REQUIRE_TIDY=1"
    else
      note "lint: clang-tidy not installed; skipping static analysis layer"
    fi
    return
  fi
  if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    fail "no compile_commands.json in ${BUILD_DIR} (configure with cmake first)"
    return
  fi
  note "lint: running ${tidy} over src/ (config: .clang-tidy)"
  # Sources only; headers are pulled in via HeaderFilterRegex.
  local sources
  sources=$(cd "$REPO_ROOT" && find src -name '*.cpp' | sort)
  local runner=""
  for cand in run-clang-tidy run-clang-tidy-18 run-clang-tidy-17 \
              run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      runner="$cand"
      break
    fi
  done
  if [ -n "$runner" ]; then
    # shellcheck disable=SC2086  # word-splitting the file list is intended
    if ! (cd "$REPO_ROOT" &&
          "$runner" -clang-tidy-binary "$(command -v "$tidy")" -quiet \
                    -p "$BUILD_DIR" $sources); then
      fail "clang-tidy reported findings"
    fi
  else
    # shellcheck disable=SC2086
    if ! (cd "$REPO_ROOT" && "$tidy" -p "$BUILD_DIR" --quiet $sources); then
      fail "clang-tidy reported findings"
    fi
  fi
}

run_clang_tidy

# --- Layer 2: repo-specific greps ------------------------------------------

# grep_rule <description> <pattern>
# Flags any match in src/ (tests and examples are exempt: they may
# exercise forbidden constructs deliberately). Line comments are
# stripped before the pattern is re-applied so prose about "the new
# node" does not trip the naked-new rule.
grep_rule() {
  local desc="$1" pattern="$2"
  local hits
  hits=$(cd "$REPO_ROOT" &&
         grep -rnE "$pattern" src --include='*.cpp' --include='*.h' \
           2>/dev/null |
         sed 's|//.*||' | grep -E "$pattern")
  if [ -n "$hits" ]; then
    fail "$desc"
    printf '%s\n' "$hits" >&2
  fi
}

# Ownership is std::unique_ptr/std::vector everywhere; a naked new or
# delete is a leak waiting for an early return.
grep_rule "naked 'new' expression (use std::make_unique / containers)" \
  '(^|[^[:alnum:]_."])new[[:space:]]+[[:alnum:]_:<]'
grep_rule "naked 'delete' expression (use RAII ownership)" \
  '(^|[^[:alnum:]_."])delete([[:space:]]*\[\])?[[:space:]]+[[:alnum:]_]'

# All randomness must be seedable and reproducible: SplitMix64 or a
# std engine with an explicit seed — never the global C PRNG.
grep_rule "C PRNG (rand/srand/random); use SplitMix64 or seeded std engines" \
  '(^|[^[:alnum:]_."])s?rand(om)?[[:space:]]*\('

# Cross-thread counters must be std::atomic (or guarded and documented);
# "volatile" is never a synchronization primitive.
grep_rule "volatile used as a (non-)synchronization primitive" \
  '(^|[^[:alnum:]_."])volatile[[:space:]]'

# Sleeping is not synchronization. Production code coordinates with
# condition variables and join(); sleeps belong in tests only.
grep_rule "sleep-based waiting in src/ (use condition variables)" \
  'sleep_for|sleep_until|usleep\(|::sleep\('

# Durable state may only be written through persist/Files.h (atomic
# temp+fsync+rename, or the O_APPEND AppendFile): stream/stdio file
# output under src/persist/ would bypass the crash-safety discipline.
hits=$(cd "$REPO_ROOT" &&
       grep -rnE 'std::ofstream|std::fstream|fopen\(|freopen\(' src/persist \
         --include='*.cpp' --include='*.h' 2>/dev/null |
       sed 's|//.*||' | grep -E 'std::ofstream|std::fstream|fopen\(|freopen\(')
if [ -n "$hits" ]; then
  fail "non-atomic file writes under src/persist/ (use persist/Files.h primitives)"
  printf '%s\n' "$hits" >&2
fi

# printf-family debugging must not linger outside the designated
# reporting surfaces (tools, Audit failure reporting, ASCII renderers).
DEBUG_PRINT_ALLOWLIST='src/support/Audit.cpp|src/support/LockOrder.cpp|src/tools/|src/analysis/'
hits=$(cd "$REPO_ROOT" &&
       grep -rnE '(^|[^[:alnum:]_."])fprintf\(stderr' src \
         --include='*.cpp' --include='*.h' 2>/dev/null |
       grep -vE "^(${DEBUG_PRINT_ALLOWLIST})")
if [ -n "$hits" ]; then
  fail "stray fprintf(stderr, ...) debugging outside reporting surfaces"
  printf '%s\n' "$hits" >&2
fi

# --- Layer 3: metric catalog completeness -----------------------------------
#
# docs/observability.md promises to document every metric the process
# exports. Every "mutk_..." name literal in src/obs/ must therefore
# appear in that file; renaming or adding an instrument without updating
# the catalog fails the lint.
METRIC_DOC="${REPO_ROOT}/docs/observability.md"
if [ ! -f "$METRIC_DOC" ]; then
  fail "docs/observability.md missing (the metric catalog)"
else
  metric_names=$(cd "$REPO_ROOT" &&
                 grep -ohE '"mutk_[a-z0-9_]+"' src/obs/*.cpp src/obs/*.h \
                   2>/dev/null |
                 tr -d '"' | sort -u)
  undocumented=""
  for name in $metric_names; do
    if ! grep -q "$name" "$METRIC_DOC"; then
      undocumented="${undocumented} ${name}"
    fi
  done
  if [ -n "$undocumented" ]; then
    fail "metrics registered in src/obs/ but absent from docs/observability.md:${undocumented}"
  else
    note "lint: metric catalog covers all $(printf '%s\n' "$metric_names" | wc -l) names in src/obs/"
  fi
fi

# --- Layer 4: lock discipline ------------------------------------------------
#
# Every mutex in src/ must be a mutk::Mutex (support/Mutex.h) so it
# carries a Clang thread-safety capability and participates in the
# MUTK_AUDIT lock-order auditor. Raw standard-library primitives are
# confined to the wrapper itself; everything else would be invisible to
# both checkers. docs/development.md#lock-hierarchy documents the rule.
LOCK_PRIMITIVE_ALLOWLIST='src/support/Mutex\.h|src/support/ThreadAnnotations\.h|src/support/LockOrder\.cpp'
LOCK_PRIMITIVE_PATTERN='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)'
hits=$(cd "$REPO_ROOT" &&
       grep -rnE "$LOCK_PRIMITIVE_PATTERN" src \
         --include='*.cpp' --include='*.h' 2>/dev/null |
       grep -vE "^(${LOCK_PRIMITIVE_ALLOWLIST})" |
       sed 's|//.*||' | grep -E "$LOCK_PRIMITIVE_PATTERN" || true)
if [ -n "$hits" ]; then
  fail "raw standard-library locking primitive in src/ (use mutk::Mutex / MutexLock / CondVar from support/Mutex.h so the capability annotations and lock-order auditor apply)"
  printf '%s\n' "$hits" >&2
fi

if [ "$FAILED" -ne 0 ]; then
  note "lint: FAILED"
  exit 1
fi
note "lint: OK"
