#!/usr/bin/env bash
# Clang Static Analyzer gate for the mutk tree.
#
# Runs clang-tidy with only the clang-analyzer-* checks (path-sensitive
# symbolic execution: null derefs, use-after-move/free, leaked handles)
# over every src/**/*.cpp in the compilation database, normalizes the
# findings to `file:check: message` lines, and diffs them against the
# committed baseline. New findings fail the gate; fixing a baselined
# finding shows up as a removal, and the baseline should be re-recorded
# (MUTK_ANALYZE_RECORD=1) so it only ever shrinks.
#
# Usage: scripts/analyze.sh [build-dir]
#   build-dir must contain compile_commands.json (defaults to ./build).
#   MUTK_ANALYZE_REQUIRE=1  fail (instead of skip) when clang-tidy is
#                           missing; CI sets this.
#   MUTK_ANALYZE_RECORD=1   rewrite scripts/analyze_baseline.txt from
#                           this run instead of diffing against it.

set -u -o pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
BASELINE="${REPO_ROOT}/scripts/analyze_baseline.txt"

note() { printf '%s\n' "$*"; }

tidy=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    tidy="$cand"
    break
  fi
done
if [ -z "$tidy" ]; then
  if [ "${MUTK_ANALYZE_REQUIRE:-0}" = "1" ]; then
    note "analyze: clang-tidy not found but MUTK_ANALYZE_REQUIRE=1" >&2
    exit 1
  fi
  note "analyze: clang-tidy not installed; skipping the analyzer gate"
  exit 0
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  note "analyze: no compile_commands.json in ${BUILD_DIR} (configure first)" >&2
  exit 1
fi

note "analyze: running ${tidy} -checks=clang-analyzer-* over src/"
sources=$(cd "$REPO_ROOT" && find src -name '*.cpp' | sort)
raw="$(mktemp)"
findings="$(mktemp)"
trap 'rm -f "$raw" "$findings"' EXIT

# The analyzer is advisory here (findings are diffed, not fatal), so the
# tidy exit status itself is ignored; a crash still shows as new text.
# shellcheck disable=SC2086  # word-splitting the file list is intended
(cd "$REPO_ROOT" &&
 "$tidy" -p "$BUILD_DIR" --quiet \
         -checks='-*,clang-analyzer-*' $sources) >"$raw" 2>/dev/null || true

# Normalize "path:line:col: warning: msg [check]" to "path:check: msg":
# line numbers churn with every edit and would make the baseline noisy.
grep -E 'warning:.*\[clang-analyzer-' "$raw" |
  sed -E "s|^${REPO_ROOT}/||" |
  sed -E 's|^([^:]+):[0-9]+:[0-9]+: warning: (.*) \[(clang-analyzer-[^]]+)\]$|\1:\3: \2|' |
  sort -u >"$findings" || true

if [ "${MUTK_ANALYZE_RECORD:-0}" = "1" ]; then
  cp "$findings" "$BASELINE"
  note "analyze: recorded $(wc -l <"$BASELINE") finding(s) to ${BASELINE}"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  note "analyze: missing baseline ${BASELINE}" >&2
  exit 1
fi

new=$(comm -13 <(sort -u "$BASELINE") "$findings")
if [ -n "$new" ]; then
  note "analyze: new static-analyzer findings (not in scripts/analyze_baseline.txt):" >&2
  printf '%s\n' "$new" >&2
  exit 1
fi

fixed=$(comm -23 <(sort -u "$BASELINE") "$findings")
if [ -n "$fixed" ]; then
  note "analyze: baselined findings no longer reported (re-record to shrink the baseline):"
  printf '%s\n' "$fixed"
fi
note "analyze: OK ($(wc -l <"$findings") finding(s), all baselined)"
