//===- bench/hpc_fig01_time_p16_hmdna.cpp - HPCAsia 2005, Figure 1 ---------===//
//
// "The computing time for 16 processors, HMDNA": parallel B&B on the
// simulated 16-node cluster (DESIGN.md §5.2), time vs number of species.
// The paper's times are wall seconds on a real cluster; here the
// "computing time" is the deterministic virtual makespan (one unit = one
// branched BBT node on a speed-1 node).
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 16, 20, 24, 26};
constexpr std::uint64_t NumSeeds = 5;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 1: computing time, 16 simulated nodes, HMDNA",
      "Virtual makespan units, mean/median/max over 5 datasets per size; "
      "paper shape: effective when the number of species grows, optimal "
      "trees for the full sweep within reasonable time.");
  std::printf("%8s %12s %12s %12s\n", "species", "mean", "median", "max");
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  for (int N : SpeciesSweep) {
    std::vector<double> Times;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::hardDnaWorkload(N, Seed);
      ClusterSimResult R = simulateClusterBnb(M, Spec, bench::cappedBnb());
      Times.push_back(R.Makespan);
    }
    std::printf("%8d %12.1f %12.1f %12.1f\n", N, bench::mean(Times),
                bench::median(Times), bench::maxOf(Times));
  }
}

void BM_ClusterP16Hmdna(benchmark::State &State) {
  DistanceMatrix M =
      bench::hardDnaWorkload(static_cast<int>(State.range(0)), 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  double Makespan = 0.0;
  for (auto _ : State) {
    ClusterSimResult R = simulateClusterBnb(M, Spec, bench::cappedBnb());
    Makespan = R.Makespan;
    benchmark::DoNotOptimize(R.Cost);
  }
  State.counters["virtual_makespan"] = Makespan;
}

BENCHMARK(BM_ClusterP16Hmdna)
    ->Arg(12)
    ->Arg(20)
    ->Arg(26)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
