//===- bench/ablation_33_modes.cpp - 3-3 relationship modes ----------------===//
//
// Ablation of the HPCAsia paper's 3-3 constraint placement: the paper
// applies it only when inserting the third species and names extending
// it to every insertion as future work ("we can extend this feature and
// speedup the process"). This bench quantifies that extension: nodes
// explored and cost drift for None / ThirdSpecies / AllInsertions.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

using namespace mutk;

namespace {

const char *modeName(ThreeThreeMode Mode) {
  switch (Mode) {
  case ThreeThreeMode::None:
    return "none";
  case ThreeThreeMode::ThirdSpecies:
    return "third";
  case ThreeThreeMode::AllInsertions:
    return "all";
  }
  return "?";
}

void printTable() {
  // MUTK_BENCH_SMOKE=1: CI-sized table — smaller matrices, one seed.
  const bool Smoke = std::getenv("MUTK_BENCH_SMOKE") != nullptr;
  bench::banner(
      "Ablation: 3-3 relationship pruning (none / third-species / all "
      "insertions)",
      "Branched BBT nodes and cost per mode. On clock-like (DNA) data "
      "'third' preserves the optimum (the paper's observation); on "
      "clock-violating random data both modes are heuristics that can "
      "drift by a fraction of a percent while cutting the search hard.");
  std::printf("%9s %8s %6s | %10s %12s %10s\n", "workload", "species",
              "seed", "mode", "branched", "cost");
  const std::vector<int> Sizes = Smoke ? std::vector<int>{12, 14}
                                       : std::vector<int>{14, 18, 22};
  const std::uint64_t Seeds = Smoke ? 1 : 2;
  for (int N : Sizes) {
    for (std::uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
      for (bool Dna : {false, true}) {
        DistanceMatrix M = Dna ? bench::hmdnaWorkload(N, Seed)
                               : bench::unifWorkload(N, Seed);
        for (ThreeThreeMode Mode :
             {ThreeThreeMode::None, ThreeThreeMode::ThirdSpecies,
              ThreeThreeMode::AllInsertions}) {
          BnbOptions Options = bench::cappedBnb();
          Options.ThreeThree = Mode;
          MutResult R = solveMutSequential(M, Options);
          std::printf("%9s %8d %6llu | %10s %12llu %10.2f\n",
                      Dna ? "hmdna" : "random", N,
                      static_cast<unsigned long long>(Seed), modeName(Mode),
                      static_cast<unsigned long long>(R.Stats.Branched),
                      R.Cost);
        }
      }
    }
  }
}

void BM_ThreeThreeMode(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(18, 1);
  BnbOptions Options = bench::cappedBnb();
  Options.ThreeThree = static_cast<ThreeThreeMode>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutSequential(M, Options).Cost);
  State.SetLabel(modeName(static_cast<ThreeThreeMode>(State.range(0))));
}

BENCHMARK(BM_ThreeThreeMode)
    ->Arg(static_cast<int>(ThreeThreeMode::None))
    ->Arg(static_cast<int>(ThreeThreeMode::ThirdSpecies))
    ->Arg(static_cast<int>(ThreeThreeMode::AllInsertions))
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
