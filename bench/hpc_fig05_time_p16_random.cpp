//===- bench/hpc_fig05_time_p16_random.cpp - HPCAsia 2005, Figure 5 --------===//
//
// "The computing time for 16 processors, Random Data": values 0..100.
// Paper shape: supreme performance, optimal trees within reasonable
// time across the sweep.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 14, 16, 18, 20, 22};
constexpr std::uint64_t NumSeeds = 3;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 5: computing time, 16 simulated nodes, random "
      "data (0..100)",
      "Virtual makespan units, 3 instances per size.");
  std::printf("%8s %12s %12s %12s\n", "species", "mean", "median", "max");
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  for (int N : SpeciesSweep) {
    std::vector<double> Times;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      ClusterSimResult R = simulateClusterBnb(M, Spec, bench::cappedBnb());
      Times.push_back(R.Makespan);
    }
    std::printf("%8d %12.1f %12.1f %12.1f\n", N, bench::mean(Times),
                bench::median(Times), bench::maxOf(Times));
  }
}

void BM_ClusterP16Random(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  double Makespan = 0.0;
  for (auto _ : State) {
    ClusterSimResult R = simulateClusterBnb(M, Spec, bench::cappedBnb());
    Makespan = R.Makespan;
    benchmark::DoNotOptimize(R.Cost);
  }
  State.counters["virtual_makespan"] = Makespan;
}

BENCHMARK(BM_ClusterP16Random)
    ->Arg(14)
    ->Arg(18)
    ->Arg(22)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
