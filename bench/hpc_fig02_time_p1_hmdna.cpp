//===- bench/hpc_fig02_time_p1_hmdna.cpp - HPCAsia 2005, Figure 2 ----------===//
//
// "The computing time for single processor, HMDNA": the 1-node baseline
// of the cluster simulation. Paper shape: the computing time becomes
// unendurable past ~26 species on one processor — here the growth shows
// in virtual units on the expensive datasets.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 16, 20, 24, 26};
constexpr std::uint64_t NumSeeds = 5;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 2: computing time, single processor, HMDNA",
      "Virtual makespan units (1-node baseline), 5 datasets per size.");
  std::printf("%8s %12s %12s %12s\n", "species", "mean", "median", "max");
  for (int N : SpeciesSweep) {
    std::vector<double> Times;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::hardDnaWorkload(N, Seed);
      ClusterSimResult R = simulateSequentialBaseline(M, bench::cappedBnb());
      Times.push_back(R.Makespan);
    }
    std::printf("%8d %12.1f %12.1f %12.1f\n", N, bench::mean(Times),
                bench::median(Times), bench::maxOf(Times));
  }
}

void BM_SingleNodeHmdna(benchmark::State &State) {
  DistanceMatrix M =
      bench::hardDnaWorkload(static_cast<int>(State.range(0)), 1);
  double Makespan = 0.0;
  for (auto _ : State) {
    ClusterSimResult R = simulateSequentialBaseline(M, bench::cappedBnb());
    Makespan = R.Makespan;
    benchmark::DoNotOptimize(R.Cost);
  }
  State.counters["virtual_makespan"] = Makespan;
}

BENCHMARK(BM_SingleNodeHmdna)
    ->Arg(12)
    ->Arg(20)
    ->Arg(26)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
