//===- bench/pact_fig11_time_hmdna26.cpp - PaCT 2005, Figure 11 ------------===//
//
// "The computing time of 26 DNAs": 15 datasets of 26 DNAs. Paper
// observation: "using compact sets can definitely save time but
// unexpectedly the experiments without compact sets also take little
// time except the last data" — mitochondrial data is close to a
// molecular clock, so the plain B&B prunes well too, and the savings
// are dataset-dependent.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "support/Stopwatch.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int NumSpecies = 26;
constexpr int NumDataSets = 15;

void printTable() {
  bench::banner(
      "PaCT 2005 Figure 11: computing time, 15 datasets x 26 DNAs",
      "Wall seconds per dataset; paper observation: both conditions are "
      "fast on DNA data, with occasional expensive datasets.");
  std::printf("%8s %14s %14s %12s\n", "dataset", "without-cs(s)",
              "with-cs(s)", "branched-wo");
  for (int Set = 1; Set <= NumDataSets; ++Set) {
    DistanceMatrix M =
        bench::hmdnaWorkload(NumSpecies, static_cast<std::uint64_t>(Set));
    Stopwatch W;
    MutResult Full = solveMutSequential(M, bench::cappedBnb());
    double TWithout = W.seconds();
    W.restart();
    PipelineResult Fast = buildCompactSetTree(M);
    double TWith = W.seconds();
    benchmark::DoNotOptimize(Full.Cost + Fast.Cost);
    std::printf("%8d %14.4f %14.4f %12llu\n", Set, TWithout, TWith,
                static_cast<unsigned long long>(Full.Stats.Branched));
  }
}

void BM_Hmdna26Without(benchmark::State &State) {
  DistanceMatrix M = bench::hmdnaWorkload(
      NumSpecies, static_cast<std::uint64_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutSequential(M, bench::cappedBnb()).Cost);
}

void BM_Hmdna26With(benchmark::State &State) {
  DistanceMatrix M = bench::hmdnaWorkload(
      NumSpecies, static_cast<std::uint64_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(buildCompactSetTree(M).Cost);
}

BENCHMARK(BM_Hmdna26Without)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hmdna26With)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
