//===- bench/ext_service_throughput.cpp - mutkd service throughput ---------===//
//
// Extension study: closed-loop load generation against the loopback
// TreeService. N client threads each keep exactly one request in flight
// over a fixed working set of matrices and we measure requests/second —
// first against a cold cache (every matrix unseen, workers must run
// branch-and-bound) and then against a warm cache (the same working set
// again, answered by fingerprint replay). The warm/cold ratio is the
// headline: the result cache must buy at least ~2x on repeated queries
// for the daemon design to pay for itself.
//
// A second table replays a block-overlap working set: distinct module
// compositions whose compact-set blocks recur across requests, so the
// whole-matrix tier never matches a fresh composition and all reuse is
// per-block (`block_hits` > 0 is the acceptance signal, checked by CI).
//
// Besides the console tables, the run writes `BENCH_service.json` to the
// working directory: one machine-readable record per row (tagged with its
// "workload") plus a dump of the metrics registry, following the
// BENCH_*.json convention described in docs/benchmarking.md.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "obs/Metrics.h"
#include "service/Service.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

using namespace mutk;

namespace {

/// Runs \p Clients closed-loop client threads for \p RequestsPerClient
/// requests each over \p Matrices (round-robin, staggered start) and
/// returns aggregate requests/second.
double closedLoopRps(TreeService &Service,
                     const std::vector<DistanceMatrix> &Matrices,
                     int Clients, int RequestsPerClient) {
  std::atomic<int> Errors{0};
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      for (int R = 0; R < RequestsPerClient; ++R) {
        BuildRequest Request;
        Request.Matrix =
            Matrices[(static_cast<std::size_t>(C) + R) % Matrices.size()];
        if (!Service.submit(std::move(Request)).ok())
          Errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Errors.load() > 0)
    std::printf("  !! %d requests failed\n", Errors.load());
  return static_cast<double>(Clients) * RequestsPerClient / Seconds;
}

std::vector<DistanceMatrix> workingSet(int NumMatrices, int NumSpecies) {
  std::vector<DistanceMatrix> Set;
  Set.reserve(static_cast<std::size_t>(NumMatrices));
  for (int I = 0; I < NumMatrices; ++I)
    Set.push_back(
        bench::unifWorkload(NumSpecies, static_cast<std::uint64_t>(I) + 1));
  return Set;
}

/// A working set of *distinct* compositions drawn from a shared module
/// pool: composition i uses modules {i, i+1, i+2} mod PoolSize. Every
/// whole-matrix fingerprint is unique (no whole-cache hit can answer a
/// fresh composition) but the underlying compact-set blocks recur across
/// requests, so the block tier — not the whole tier — is what pays.
std::vector<DistanceMatrix> blockOverlapSet(int NumMatrices, int PoolSize,
                                            int ModuleSize) {
  std::vector<DistanceMatrix> Set;
  Set.reserve(static_cast<std::size_t>(NumMatrices));
  for (int I = 0; I < NumMatrices; ++I) {
    std::vector<std::pair<int, std::uint64_t>> Modules;
    for (int K = 0; K < 3; ++K)
      Modules.emplace_back(ModuleSize,
                           static_cast<std::uint64_t>((I + K) % PoolSize) + 1);
    Set.push_back(bench::composeModules(Modules));
  }
  return Set;
}

/// One measured configuration, serialized into BENCH_service.json.
struct ResultRow {
  const char *Workload = "uniform";
  int Species = 0;
  int Clients = 0;
  int Workers = 0;
  double ColdRps = 0.0;
  double WarmRps = 0.0;
  std::uint64_t WholeHits = 0;
  std::uint64_t BlockHits = 0;
};

/// BENCH_*.json convention: {"bench":NAME,"rows":[...],"registry":{...}}
/// so plotting scripts can diff runs without scraping stdout.
void writeJson(const std::vector<ResultRow> &Rows) {
  std::ofstream Out("BENCH_service.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_service.json\n");
    return;
  }
  Out << "{\"bench\":\"ext_service_throughput\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const ResultRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"workload\":\"%s\",\"species\":%d,\"clients\":%d,"
                  "\"workers\":%d,"
                  "\"cold_rps\":%.1f,\"warm_rps\":%.1f,\"ratio\":%.3f,"
                  "\"whole_hits\":%llu,\"block_hits\":%llu}",
                  R.Workload, R.Species, R.Clients, R.Workers, R.ColdRps,
                  R.WarmRps, R.ColdRps > 0.0 ? R.WarmRps / R.ColdRps : 0.0,
                  static_cast<unsigned long long>(R.WholeHits),
                  static_cast<unsigned long long>(R.BlockHits));
    Out << Buf;
  }
  Out << "],\"registry\":"
      << mutk::obs::MetricsRegistry::global().renderJson() << "}\n";
  std::printf("  wrote BENCH_service.json (%zu rows)\n", Rows.size());
}

/// The block-overlap study: distinct compositions over a shared module
/// pool. Unlike the uniform table, every request's whole-matrix key is
/// new on first sight, so any speedup beyond the whole tier (and every
/// recorded `block_hits`) comes from per-block reuse across requests.
void blockOverlapTable(std::vector<ResultRow> &Rows) {
  bench::banner(
      "Extension: block-overlap working set (cross-request block reuse)",
      "Distinct module compositions sharing compact-set blocks; block-tier "
      "hits answer sub-problems the whole-matrix tier has never seen.");
  std::printf("%8s %8s %8s | %12s %12s %8s | %10s %10s\n", "species",
              "clients", "workers", "cold req/s", "warm req/s", "ratio",
              "whole-hit", "block-hit");
  const int NumMatrices = 12;
  const int PoolSize = 6;
  const int ModuleSize = 6;
  const int RequestsPerClient = 48;
  std::vector<DistanceMatrix> Matrices =
      blockOverlapSet(NumMatrices, PoolSize, ModuleSize);
  const int NumSpecies = Matrices.front().size();
  for (int Clients : {1, 4}) {
    ServiceOptions Options;
    Options.NumWorkers = 4;
    TreeService Service(Options);
    double ColdRps = 0.0;
    {
      ServiceOptions ColdOptions = Options;
      ColdOptions.CacheCapacity = 0;
      TreeService ColdService(ColdOptions);
      ColdRps =
          closedLoopRps(ColdService, Matrices, Clients, RequestsPerClient);
      ColdService.stop();
    }
    // The warm-up pass sees each composition once: the first insertions
    // populate the block tier and later compositions already hit it.
    closedLoopRps(Service, Matrices, 1, NumMatrices);
    double WarmRps =
        closedLoopRps(Service, Matrices, Clients, RequestsPerClient);
    StatsSnapshot S = Service.stats();
    std::printf("%8d %8d %8d | %12.0f %12.0f %7.1fx | %10llu %10llu\n",
                NumSpecies, Clients, Options.NumWorkers, ColdRps, WarmRps,
                WarmRps / ColdRps, static_cast<unsigned long long>(S.WholeHits),
                static_cast<unsigned long long>(S.BlockHits));
    Rows.push_back(ResultRow{"block-overlap", NumSpecies, Clients,
                             Options.NumWorkers, ColdRps, WarmRps, S.WholeHits,
                             S.BlockHits});
    Service.stop();
  }
}

void printTable() {
  bench::banner(
      "Extension: service throughput, cold vs warm result cache",
      "Closed-loop clients against the loopback TreeService; the warm "
      "pass replays cached solutions (>= 2x is the acceptance bar).");
  std::printf("%8s %8s %8s | %12s %12s %8s | %10s %10s\n", "species",
              "clients", "workers", "cold req/s", "warm req/s", "ratio",
              "whole-hit", "block-hit");
  const int NumMatrices = 16;
  const int RequestsPerClient = 64;
  std::vector<ResultRow> Rows;
  for (int NumSpecies : {12, 16, 20}) {
    std::vector<DistanceMatrix> Matrices =
        workingSet(NumMatrices, NumSpecies);
    for (int Clients : {1, 4, 8}) {
      ServiceOptions Options;
      Options.NumWorkers = 4;
      TreeService Service(Options);
      // Cold baseline: caching disabled, so every request pays the full
      // pipeline (repeating the working set would otherwise warm the
      // cache mid-measurement).
      double ColdRps = 0.0;
      {
        ServiceOptions ColdOptions = Options;
        ColdOptions.CacheCapacity = 0;
        TreeService ColdService(ColdOptions);
        ColdRps = closedLoopRps(ColdService, Matrices, Clients,
                                RequestsPerClient);
        ColdService.stop();
      }
      // Warm-up pass fills the cache, then the measured warm pass.
      closedLoopRps(Service, Matrices, 1, NumMatrices);
      double WarmRps =
          closedLoopRps(Service, Matrices, Clients, RequestsPerClient);
      StatsSnapshot S = Service.stats();
      std::printf("%8d %8d %8d | %12.0f %12.0f %7.1fx | %10llu %10llu\n",
                  NumSpecies, Clients, Options.NumWorkers, ColdRps, WarmRps,
                  WarmRps / ColdRps,
                  static_cast<unsigned long long>(S.WholeHits),
                  static_cast<unsigned long long>(S.BlockHits));
      Rows.push_back(ResultRow{"uniform", NumSpecies, Clients,
                               Options.NumWorkers, ColdRps, WarmRps,
                               S.WholeHits, S.BlockHits});
      Service.stop();
    }
  }
  blockOverlapTable(Rows);
  writeJson(Rows);
}

void BM_ServiceSubmitCold(benchmark::State &State) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  Options.CacheCapacity = 0;
  TreeService Service(Options);
  std::uint64_t Seed = 1;
  for (auto _ : State) {
    State.PauseTiming();
    BuildRequest Request;
    Request.Matrix = bench::unifWorkload(14, Seed++);
    State.ResumeTiming();
    benchmark::DoNotOptimize(Service.submit(std::move(Request)).Cost);
  }
}

void BM_ServiceSubmitWarm(benchmark::State &State) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  TreeService Service(Options);
  DistanceMatrix M = bench::unifWorkload(14, 1);
  {
    BuildRequest Prime;
    Prime.Matrix = M;
    Service.submit(std::move(Prime));
  }
  for (auto _ : State) {
    BuildRequest Request;
    Request.Matrix = M;
    benchmark::DoNotOptimize(Service.submit(std::move(Request)).Cost);
  }
}

BENCHMARK(BM_ServiceSubmitCold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServiceSubmitWarm)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
