//===- bench/ext_service_throughput.cpp - mutkd service throughput ---------===//
//
// Extension study: closed-loop load generation against the loopback
// TreeService. N client threads each keep exactly one request in flight
// over a fixed working set of matrices and we measure requests/second —
// first against a cold cache (every matrix unseen, workers must run
// branch-and-bound) and then against a warm cache (the same working set
// again, answered by fingerprint replay). The warm/cold ratio is the
// headline: the result cache must buy at least ~2x on repeated queries
// for the daemon design to pay for itself.
//
// A second table replays a block-overlap working set: distinct module
// compositions whose compact-set blocks recur across requests, so the
// whole-matrix tier never matches a fresh composition and all reuse is
// per-block (`block_hits` > 0 is the acceptance signal, checked by CI).
//
// A third table is the QoS adversarial study (docs/qos.md): a latency-
// sensitive closed-loop warm-lookup population sharing the service with
// an adversary that keeps submitting cold, near-equidistant 20-taxon
// matrices under deadlines the exact solver cannot meet. Without QoS the
// cold solves pin the workers and the warm p99 collapses; with QoS on,
// admission routes the adversary to the heuristic tier (or sheds it)
// and the warm tail survives — the acceptance bar is a >= 10x lower
// warm p99 with QoS enabled. MUTK_BENCH_SMOKE=1 shrinks it to a
// seconds-long CI smoke.
//
// Besides the console tables, the run writes `BENCH_service.json` (cache
// tables) and `BENCH_qos.json` (adversarial study, including the
// mutk_qos_* registry with the predicted-vs-actual histograms) to the
// working directory: one machine-readable record per row (tagged with its
// "workload") plus a dump of the metrics registry, following the
// BENCH_*.json convention described in docs/benchmarking.md.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "obs/Metrics.h"
#include "service/Service.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

using namespace mutk;

namespace {

/// Runs \p Clients closed-loop client threads for \p RequestsPerClient
/// requests each over \p Matrices (round-robin, staggered start) and
/// returns aggregate requests/second.
double closedLoopRps(TreeService &Service,
                     const std::vector<DistanceMatrix> &Matrices,
                     int Clients, int RequestsPerClient) {
  std::atomic<int> Errors{0};
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      for (int R = 0; R < RequestsPerClient; ++R) {
        BuildRequest Request;
        Request.Matrix =
            Matrices[(static_cast<std::size_t>(C) + R) % Matrices.size()];
        if (!Service.submit(std::move(Request)).ok())
          Errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Errors.load() > 0)
    std::printf("  !! %d requests failed\n", Errors.load());
  return static_cast<double>(Clients) * RequestsPerClient / Seconds;
}

std::vector<DistanceMatrix> workingSet(int NumMatrices, int NumSpecies) {
  std::vector<DistanceMatrix> Set;
  Set.reserve(static_cast<std::size_t>(NumMatrices));
  for (int I = 0; I < NumMatrices; ++I)
    Set.push_back(
        bench::unifWorkload(NumSpecies, static_cast<std::uint64_t>(I) + 1));
  return Set;
}

/// A working set of *distinct* compositions drawn from a shared module
/// pool: composition i uses modules {i, i+1, i+2} mod PoolSize. Every
/// whole-matrix fingerprint is unique (no whole-cache hit can answer a
/// fresh composition) but the underlying compact-set blocks recur across
/// requests, so the block tier — not the whole tier — is what pays.
std::vector<DistanceMatrix> blockOverlapSet(int NumMatrices, int PoolSize,
                                            int ModuleSize) {
  std::vector<DistanceMatrix> Set;
  Set.reserve(static_cast<std::size_t>(NumMatrices));
  for (int I = 0; I < NumMatrices; ++I) {
    std::vector<std::pair<int, std::uint64_t>> Modules;
    for (int K = 0; K < 3; ++K)
      Modules.emplace_back(ModuleSize,
                           static_cast<std::uint64_t>((I + K) % PoolSize) + 1);
    Set.push_back(bench::composeModules(Modules));
  }
  return Set;
}

/// One measured configuration, serialized into BENCH_service.json.
struct ResultRow {
  const char *Workload = "uniform";
  int Species = 0;
  int Clients = 0;
  int Workers = 0;
  double ColdRps = 0.0;
  double WarmRps = 0.0;
  std::uint64_t WholeHits = 0;
  std::uint64_t BlockHits = 0;
};

/// BENCH_*.json convention: {"bench":NAME,"rows":[...],"registry":{...}}
/// so plotting scripts can diff runs without scraping stdout.
void writeJson(const std::vector<ResultRow> &Rows) {
  std::ofstream Out("BENCH_service.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_service.json\n");
    return;
  }
  Out << "{\"bench\":\"ext_service_throughput\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const ResultRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"workload\":\"%s\",\"species\":%d,\"clients\":%d,"
                  "\"workers\":%d,"
                  "\"cold_rps\":%.1f,\"warm_rps\":%.1f,\"ratio\":%.3f,"
                  "\"whole_hits\":%llu,\"block_hits\":%llu}",
                  R.Workload, R.Species, R.Clients, R.Workers, R.ColdRps,
                  R.WarmRps, R.ColdRps > 0.0 ? R.WarmRps / R.ColdRps : 0.0,
                  static_cast<unsigned long long>(R.WholeHits),
                  static_cast<unsigned long long>(R.BlockHits));
    Out << Buf;
  }
  Out << "],\"registry\":"
      << mutk::obs::MetricsRegistry::global().renderJson() << "}\n";
  std::printf("  wrote BENCH_service.json (%zu rows)\n", Rows.size());
}

/// The block-overlap study: distinct compositions over a shared module
/// pool. Unlike the uniform table, every request's whole-matrix key is
/// new on first sight, so any speedup beyond the whole tier (and every
/// recorded `block_hits`) comes from per-block reuse across requests.
void blockOverlapTable(std::vector<ResultRow> &Rows) {
  bench::banner(
      "Extension: block-overlap working set (cross-request block reuse)",
      "Distinct module compositions sharing compact-set blocks; block-tier "
      "hits answer sub-problems the whole-matrix tier has never seen.");
  std::printf("%8s %8s %8s | %12s %12s %8s | %10s %10s\n", "species",
              "clients", "workers", "cold req/s", "warm req/s", "ratio",
              "whole-hit", "block-hit");
  const int NumMatrices = 12;
  const int PoolSize = 6;
  const int ModuleSize = 6;
  const int RequestsPerClient = 48;
  std::vector<DistanceMatrix> Matrices =
      blockOverlapSet(NumMatrices, PoolSize, ModuleSize);
  const int NumSpecies = Matrices.front().size();
  for (int Clients : {1, 4}) {
    ServiceOptions Options;
    Options.NumWorkers = 4;
    TreeService Service(Options);
    double ColdRps = 0.0;
    {
      ServiceOptions ColdOptions = Options;
      ColdOptions.CacheCapacity = 0;
      TreeService ColdService(ColdOptions);
      ColdRps =
          closedLoopRps(ColdService, Matrices, Clients, RequestsPerClient);
      ColdService.stop();
    }
    // The warm-up pass sees each composition once: the first insertions
    // populate the block tier and later compositions already hit it.
    closedLoopRps(Service, Matrices, 1, NumMatrices);
    double WarmRps =
        closedLoopRps(Service, Matrices, Clients, RequestsPerClient);
    StatsSnapshot S = Service.stats();
    std::printf("%8d %8d %8d | %12.0f %12.0f %7.1fx | %10llu %10llu\n",
                NumSpecies, Clients, Options.NumWorkers, ColdRps, WarmRps,
                WarmRps / ColdRps, static_cast<unsigned long long>(S.WholeHits),
                static_cast<unsigned long long>(S.BlockHits));
    Rows.push_back(ResultRow{"block-overlap", NumSpecies, Clients,
                             Options.NumWorkers, ColdRps, WarmRps, S.WholeHits,
                             S.BlockHits});
    Service.stop();
  }
}

//===----------------------------------------------------------------------===//
// QoS adversarial study
//===----------------------------------------------------------------------===//

struct Percentiles {
  double P50Us = 0.0;
  double P99Us = 0.0;
};

Percentiles percentilesOf(std::vector<double> &LatenciesUs) {
  Percentiles P;
  if (LatenciesUs.empty())
    return P;
  std::sort(LatenciesUs.begin(), LatenciesUs.end());
  auto at = [&](double Q) {
    std::size_t I = static_cast<std::size_t>(
        Q * static_cast<double>(LatenciesUs.size() - 1));
    return LatenciesUs[I];
  };
  P.P50Us = at(0.50);
  P.P99Us = at(0.99);
  return P;
}

/// One adversarial-mix measurement, serialized into BENCH_qos.json.
struct QosRow {
  bool QosOn = false;
  int WarmSpecies = 0;
  std::size_t WarmRequests = 0;
  Percentiles Warm;
  int WarmErrors = 0;
  StatsSnapshot Stats;
};

/// Runs the adversarial mix against one service configuration: \p
/// WarmClients closed-loop clients replaying a pre-warmed working set
/// (latency-recorded) while \p AdversaryThreads keep submitting cold
/// near-equidistant 20-taxon matrices under a 50 ms deadline — plus a
/// periodic generated 96-taxon probe under a 1 ms deadline that nothing,
/// not even the heuristic tier, can meet (the guaranteed shed).
QosRow adversarialRun(bool QosOn, int WarmClients, int WarmRequests,
                      int AdversaryThreads) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  Options.Qos.Enabled = QosOn;
  TreeService Service(Options);

  const int WarmSetSize = 8;
  const int WarmSpecies = 10;
  std::vector<DistanceMatrix> WarmSet = workingSet(WarmSetSize, WarmSpecies);
  for (const DistanceMatrix &M : WarmSet) {
    BuildRequest Prime;
    Prime.Matrix = M;
    if (!Service.submit(std::move(Prime)).ok())
      std::printf("  !! warm-set priming failed\n");
  }

  std::atomic<bool> StopAdversary{false};
  std::vector<std::thread> Adversaries;
  for (int A = 0; A < AdversaryThreads; ++A)
    Adversaries.emplace_back([&, A] {
      std::uint64_t Seed = static_cast<std::uint64_t>(A) * 100'000 + 1;
      int K = 0;
      while (!StopAdversary.load(std::memory_order_relaxed)) {
        BuildRequest R;
        if (++K % 4 == 0) {
          // Hopeless probe: 96 generated taxa against a 1 ms deadline.
          R.Generator = GeneratorKind::Uniform;
          R.GenSpecies = 96;
          R.GenSeed = Seed++;
          R.DeadlineMillis = 1;
        } else {
          // The headline adversary: a cold 20-taxon block condensation
          // cannot split, i.e. a real exact solve, deadline 50 ms.
          R.Matrix = bench::hardModuleWorkload(20, Seed++);
          R.MaxExactBlockSize = 20;
          R.DeadlineMillis = 50;
          R.UseCache = false;
        }
        (void)Service.submit(std::move(R));
      }
    });

  std::atomic<int> WarmErrors{0};
  std::vector<std::vector<double>> PerClientUs(
      static_cast<std::size_t>(WarmClients));
  std::vector<std::thread> Clients;
  for (int C = 0; C < WarmClients; ++C)
    Clients.emplace_back([&, C] {
      std::vector<double> &Us = PerClientUs[static_cast<std::size_t>(C)];
      Us.reserve(static_cast<std::size_t>(WarmRequests));
      for (int R = 0; R < WarmRequests; ++R) {
        BuildRequest Req;
        Req.Matrix =
            WarmSet[(static_cast<std::size_t>(C) + R) % WarmSet.size()];
        Req.Priority = RequestPriority::High;
        Req.Tenant = "warm";
        auto T0 = std::chrono::steady_clock::now();
        BuildResponse Resp = Service.submit(std::move(Req));
        Us.push_back(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - T0)
                         .count());
        if (!Resp.ok())
          WarmErrors.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (std::thread &T : Clients)
    T.join();
  StopAdversary.store(true, std::memory_order_relaxed);
  for (std::thread &T : Adversaries)
    T.join();

  QosRow Row;
  Row.QosOn = QosOn;
  Row.WarmSpecies = WarmSpecies;
  std::vector<double> AllUs;
  for (std::vector<double> &Us : PerClientUs)
    AllUs.insert(AllUs.end(), Us.begin(), Us.end());
  Row.WarmRequests = AllUs.size();
  Row.Warm = percentilesOf(AllUs);
  Row.WarmErrors = WarmErrors.load();
  Row.Stats = Service.stats();
  Service.stop();
  return Row;
}

void writeQosJson(const std::vector<QosRow> &Rows, double P99Ratio) {
  std::ofstream Out("BENCH_qos.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_qos.json\n");
    return;
  }
  Out << "{\"bench\":\"qos_adversarial\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const QosRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"workload\":\"adversarial\",\"qos\":%d,\"warm_species\":%d,"
        "\"warm_requests\":%zu,\"warm_errors\":%d,"
        "\"p50_us\":%.1f,\"p99_us\":%.1f,"
        "\"shed_total\":%llu,\"rate_limited\":%llu,"
        "\"tier_exact\":%llu,\"tier_pipeline\":%llu,"
        "\"tier_heuristic\":%llu,\"coalesced\":%llu,"
        "\"deadline_expired\":%llu,\"whole_hits\":%llu}",
        R.QosOn ? 1 : 0, R.WarmSpecies, R.WarmRequests, R.WarmErrors,
        R.Warm.P50Us, R.Warm.P99Us,
        static_cast<unsigned long long>(R.Stats.Shed),
        static_cast<unsigned long long>(R.Stats.RateLimited),
        static_cast<unsigned long long>(R.Stats.TierExact),
        static_cast<unsigned long long>(R.Stats.TierPipeline),
        static_cast<unsigned long long>(R.Stats.TierHeuristic),
        static_cast<unsigned long long>(R.Stats.Coalesced),
        static_cast<unsigned long long>(R.Stats.DeadlineExpired),
        static_cast<unsigned long long>(R.Stats.WholeHits));
    Out << Buf;
  }
  char Summary[96];
  std::snprintf(Summary, sizeof(Summary),
                "],\"p99_ratio_off_over_on\":%.2f,\"registry\":", P99Ratio);
  Out << Summary << mutk::obs::MetricsRegistry::global().renderJson()
      << "}\n";
  std::printf("  wrote BENCH_qos.json (%zu rows)\n", Rows.size());
}

/// The QoS adversarial study: identical warm/adversary mixes with the
/// QoS layer off and on. Also asserts the exact-tier identity gate: the
/// same matrix solved by both services yields byte-identical Newick.
void qosAdversarialTable() {
  bench::banner(
      "Extension: QoS under an adversarial mixed workload",
      "Warm lookups sharing the service with cold 20-taxon exact solves "
      "under hopeless deadlines; QoS admission must protect the warm p99 "
      "(>= 10x is the acceptance bar).");

  // Exact-tier identity gate (docs/qos.md): QoS routing must never
  // change what an exact-tier request computes.
  {
    DistanceMatrix M = bench::unifWorkload(12, 77);
    TreeService Plain;
    ServiceOptions QosOptions;
    QosOptions.Qos.Enabled = true;
    TreeService Qos(QosOptions);
    BuildRequest A, B;
    A.Matrix = M;
    B.Matrix = M;
    BuildResponse RespA = Plain.submit(std::move(A));
    BuildResponse RespB = Qos.submit(std::move(B));
    if (!RespA.ok() || !RespB.ok() || RespA.Newick != RespB.Newick) {
      std::printf("  !! exact-tier result diverged from the non-QoS path\n");
      std::abort();
    }
    Plain.stop();
    Qos.stop();
  }

  const bool Smoke = std::getenv("MUTK_BENCH_SMOKE") != nullptr;
  const int WarmClients = 4;
  const int WarmRequests = Smoke ? 50 : 400;
  const int AdversaryThreads = 2;

  std::printf("%6s | %12s %12s | %6s %10s %6s %6s\n", "qos", "p50 us",
              "p99 us", "shed", "heuristic", "coal", "err");
  std::vector<QosRow> Rows;
  for (bool QosOn : {false, true}) {
    QosRow Row =
        adversarialRun(QosOn, WarmClients, WarmRequests, AdversaryThreads);
    std::printf("%6s | %12.1f %12.1f | %6llu %10llu %6llu %6d\n",
                QosOn ? "on" : "off", Row.Warm.P50Us, Row.Warm.P99Us,
                static_cast<unsigned long long>(Row.Stats.Shed),
                static_cast<unsigned long long>(Row.Stats.TierHeuristic),
                static_cast<unsigned long long>(Row.Stats.Coalesced),
                Row.WarmErrors);
    Rows.push_back(std::move(Row));
  }
  double Ratio = Rows[1].Warm.P99Us > 0.0
                     ? Rows[0].Warm.P99Us / Rows[1].Warm.P99Us
                     : 0.0;
  std::printf("  warm p99 off/on ratio: %.1fx (acceptance >= 10x)\n", Ratio);
  writeQosJson(Rows, Ratio);
}

void printTable() {
  bench::banner(
      "Extension: service throughput, cold vs warm result cache",
      "Closed-loop clients against the loopback TreeService; the warm "
      "pass replays cached solutions (>= 2x is the acceptance bar).");
  std::printf("%8s %8s %8s | %12s %12s %8s | %10s %10s\n", "species",
              "clients", "workers", "cold req/s", "warm req/s", "ratio",
              "whole-hit", "block-hit");
  const int NumMatrices = 16;
  const int RequestsPerClient = 64;
  std::vector<ResultRow> Rows;
  for (int NumSpecies : {12, 16, 20}) {
    std::vector<DistanceMatrix> Matrices =
        workingSet(NumMatrices, NumSpecies);
    for (int Clients : {1, 4, 8}) {
      ServiceOptions Options;
      Options.NumWorkers = 4;
      TreeService Service(Options);
      // Cold baseline: caching disabled, so every request pays the full
      // pipeline (repeating the working set would otherwise warm the
      // cache mid-measurement).
      double ColdRps = 0.0;
      {
        ServiceOptions ColdOptions = Options;
        ColdOptions.CacheCapacity = 0;
        TreeService ColdService(ColdOptions);
        ColdRps = closedLoopRps(ColdService, Matrices, Clients,
                                RequestsPerClient);
        ColdService.stop();
      }
      // Warm-up pass fills the cache, then the measured warm pass.
      closedLoopRps(Service, Matrices, 1, NumMatrices);
      double WarmRps =
          closedLoopRps(Service, Matrices, Clients, RequestsPerClient);
      StatsSnapshot S = Service.stats();
      std::printf("%8d %8d %8d | %12.0f %12.0f %7.1fx | %10llu %10llu\n",
                  NumSpecies, Clients, Options.NumWorkers, ColdRps, WarmRps,
                  WarmRps / ColdRps,
                  static_cast<unsigned long long>(S.WholeHits),
                  static_cast<unsigned long long>(S.BlockHits));
      Rows.push_back(ResultRow{"uniform", NumSpecies, Clients,
                               Options.NumWorkers, ColdRps, WarmRps,
                               S.WholeHits, S.BlockHits});
      Service.stop();
    }
  }
  blockOverlapTable(Rows);
  writeJson(Rows);
  qosAdversarialTable();
}

void BM_ServiceSubmitCold(benchmark::State &State) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  Options.CacheCapacity = 0;
  TreeService Service(Options);
  std::uint64_t Seed = 1;
  for (auto _ : State) {
    State.PauseTiming();
    BuildRequest Request;
    Request.Matrix = bench::unifWorkload(14, Seed++);
    State.ResumeTiming();
    benchmark::DoNotOptimize(Service.submit(std::move(Request)).Cost);
  }
}

void BM_ServiceSubmitWarm(benchmark::State &State) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  TreeService Service(Options);
  DistanceMatrix M = bench::unifWorkload(14, 1);
  {
    BuildRequest Prime;
    Prime.Matrix = M;
    Service.submit(std::move(Prime));
  }
  for (auto _ : State) {
    BuildRequest Request;
    Request.Matrix = M;
    benchmark::DoNotOptimize(Service.submit(std::move(Request)).Cost);
  }
}

BENCHMARK(BM_ServiceSubmitCold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServiceSubmitWarm)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
