//===- bench/pact_fig08_time_random.cpp - PaCT 2005, Figure 8 --------------===//
//
// "The computing time for random data set": time to construct the
// ultrametric tree with vs without compact sets, random matrices with
// values 0..100. Paper claim: compact sets save between 77.19% and 99.7%
// of the computing time, growing with the number of species.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "support/Stopwatch.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 14, 16, 18, 20, 22};
constexpr std::uint64_t NumSeeds = 5;

void printTable() {
  bench::banner(
      "PaCT 2005 Figure 8: computing time, random data (values 0..100)",
      "Columns are mean wall seconds over 5 instances; paper claim: "
      "77.19%..99.7% time saved by compact sets.");
  std::printf("%8s %14s %14s %10s\n", "species", "without-cs(s)",
              "with-cs(s)", "saved");
  for (int N : SpeciesSweep) {
    std::vector<double> Without, With;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      Stopwatch W;
      MutResult Full = solveMutSequential(M, bench::cappedBnb());
      Without.push_back(W.seconds());
      W.restart();
      PipelineResult Fast = buildCompactSetTree(M);
      With.push_back(W.seconds());
      benchmark::DoNotOptimize(Full.Cost + Fast.Cost);
    }
    double MeanWithout = bench::mean(Without);
    double MeanWith = bench::mean(With);
    double Saved = MeanWithout > 0
                       ? 100.0 * (MeanWithout - MeanWith) / MeanWithout
                       : 0.0;
    std::printf("%8d %14.4f %14.4f %9.2f%%\n", N, MeanWithout, MeanWith,
                Saved);
  }
}

void BM_WithoutCompactSets(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  DistanceMatrix M = bench::unifWorkload(N, 1);
  std::uint64_t Branched = 0;
  for (auto _ : State) {
    MutResult R = solveMutSequential(M, bench::cappedBnb());
    Branched = R.Stats.Branched;
    benchmark::DoNotOptimize(R.Cost);
  }
  State.counters["branched"] = static_cast<double>(Branched);
}

void BM_WithCompactSets(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  DistanceMatrix M = bench::unifWorkload(N, 1);
  std::uint64_t Branched = 0;
  for (auto _ : State) {
    PipelineResult R = buildCompactSetTree(M);
    Branched = R.TotalStats.Branched;
    benchmark::DoNotOptimize(R.Cost);
  }
  State.counters["branched"] = static_cast<double>(Branched);
}

BENCHMARK(BM_WithoutCompactSets)
    ->DenseRange(12, 22, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WithCompactSets)
    ->DenseRange(12, 22, 2)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
