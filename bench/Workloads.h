//===- bench/Workloads.h - Shared benchmark harness helpers -----*- C++ -*-===//
///
/// \file
/// Workload constructors, aggregation helpers and table printers shared
/// by every reproduction benchmark. Each bench binary prints a
/// paper-style table (the actual figure reproduction) and then runs its
/// google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BENCH_WORKLOADS_H
#define MUTK_BENCH_WORKLOADS_H

#include "bnb/BnbOptions.h"
#include "matrix/Generators.h"
#include "seq/EvolutionSim.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

namespace bench {

/// The HPCAsia/PaCT "randomly generated data sample set, values 0..100".
inline mutk::DistanceMatrix unifWorkload(int NumSpecies,
                                         std::uint64_t Seed) {
  return mutk::uniformRandomMetric(NumSpecies, Seed, 1.0, 100.0);
}

/// The synthetic Human-Mitochondrial-DNA-like workload (DESIGN.md §5.1);
/// close to a molecular clock, so plain B&B prunes well — this is the
/// PaCT paper's Figure 10-13 regime ("without compact sets also takes
/// little time").
inline mutk::DistanceMatrix hmdnaWorkload(int NumSpecies,
                                          std::uint64_t Seed) {
  return mutk::hmdnaLikeMatrix(NumSpecies, Seed);
}

/// A harder DNA workload: shorter sequences, heavier substitution and
/// strong lineage rate heterogeneity. Matches the difficulty profile of
/// the HPCAsia/NCS mitochondrial runs (hours past 26 species on one
/// processor, strong per-dataset variance).
inline mutk::DistanceMatrix hardDnaWorkload(int NumSpecies,
                                            std::uint64_t Seed) {
  mutk::EvolutionSpec Spec;
  Spec.SequenceLength = 120;
  Spec.SubstitutionRate = 0.5;
  Spec.RateVariation = 1.2;
  return mutk::hmdnaLikeMatrix(NumSpecies, Seed, Spec);
}

/// Diameter every reusable module is scaled to, and the inter-module
/// distance used when composing them. Separation > 2 * diameter keeps
/// each module a compact set of the composition (paper §2, Definition 3)
/// and makes the composition ultrametric whenever the modules are.
inline constexpr double ModuleDiameter = 20.0;
inline constexpr double ModuleSeparation = 80.0;

/// A reusable "module": a small ultrametric matrix identified by
/// (Size, Seed) and scaled to `ModuleDiameter`. The same module embedded
/// in different compositions condenses to byte-identical blocks, so its
/// fingerprint — and its block-cache entry — is shared across requests.
inline mutk::DistanceMatrix moduleWorkload(int Size, std::uint64_t Seed) {
  return mutk::scaledToMax(mutk::randomUltrametricMatrix(Size, Seed),
                           ModuleDiameter);
}

/// A module with no internal compact sets at all: distances drawn
/// uniformly from [0.9, 1.0] * ModuleDiameter. Near-equidistant species
/// admit no compact subset (every candidate's internal diameter matches
/// its external distances), so condensation cannot split the module and
/// branch-and-bound prunes poorly — each hard module costs one genuine
/// solve, the regime where replaying a cached block subtree saves real
/// work.
inline mutk::DistanceMatrix hardModuleWorkload(int Size, std::uint64_t Seed) {
  return mutk::scaledToMax(
      mutk::uniformRandomMetric(Size, Seed, 0.9 * ModuleDiameter,
                                ModuleDiameter),
      ModuleDiameter);
}

/// Composes the given (Size, Seed) modules block-diagonally, with every
/// cross-module distance equal to `ModuleSeparation`. The result is a
/// metric (ultrametric when every module is), and under Maximum
/// condensation each module is recovered as one compact-set block whose
/// condensed matrix depends only on that module — not on which
/// composition it appears in. \p Module selects the module constructor
/// (`moduleWorkload` or `hardModuleWorkload`).
inline mutk::DistanceMatrix composeModules(
    const std::vector<std::pair<int, std::uint64_t>> &Modules,
    mutk::DistanceMatrix (*Module)(int, std::uint64_t) = &moduleWorkload) {
  int Total = 0;
  for (const auto &Spec : Modules)
    Total += Spec.first;
  mutk::DistanceMatrix Out(Total);
  for (int I = 0; I < Total; ++I)
    for (int J = I + 1; J < Total; ++J)
      Out.set(I, J, ModuleSeparation);
  int Offset = 0;
  for (const auto &Spec : Modules) {
    mutk::DistanceMatrix Block = Module(Spec.first, Spec.second);
    for (int I = 0; I < Block.size(); ++I)
      for (int J = I + 1; J < Block.size(); ++J)
        Out.set(Offset + I, Offset + J, Block.at(I, J));
    Offset += Spec.first;
  }
  return Out;
}

/// Safety cap so no single "without compact sets" solve can run away;
/// rows that hit it are flagged in the table.
inline mutk::BnbOptions cappedBnb() {
  mutk::BnbOptions Options;
  Options.MaxBranchedNodes = 4'000'000;
  return Options;
}

inline double mean(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

inline double median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  std::size_t Mid = Values.size() / 2;
  if (Values.size() % 2 == 1)
    return Values[Mid];
  return (Values[Mid - 1] + Values[Mid]) / 2.0;
}

inline double maxOf(const std::vector<double> &Values) {
  double Max = 0.0;
  for (double V : Values)
    Max = std::max(Max, V);
  return Max;
}

/// Prints the standard experiment banner.
inline void banner(const char *Figure, const char *Claim) {
  std::printf("\n=== %s ===\n%s\n\n", Figure, Claim);
}

} // namespace bench

#endif // MUTK_BENCH_WORKLOADS_H
