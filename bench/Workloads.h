//===- bench/Workloads.h - Shared benchmark harness helpers -----*- C++ -*-===//
///
/// \file
/// Workload constructors, aggregation helpers and table printers shared
/// by every reproduction benchmark. Each bench binary prints a
/// paper-style table (the actual figure reproduction) and then runs its
/// google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BENCH_WORKLOADS_H
#define MUTK_BENCH_WORKLOADS_H

#include "bnb/BnbOptions.h"
#include "matrix/Generators.h"
#include "seq/EvolutionSim.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace bench {

/// The HPCAsia/PaCT "randomly generated data sample set, values 0..100".
inline mutk::DistanceMatrix unifWorkload(int NumSpecies,
                                         std::uint64_t Seed) {
  return mutk::uniformRandomMetric(NumSpecies, Seed, 1.0, 100.0);
}

/// The synthetic Human-Mitochondrial-DNA-like workload (DESIGN.md §5.1);
/// close to a molecular clock, so plain B&B prunes well — this is the
/// PaCT paper's Figure 10-13 regime ("without compact sets also takes
/// little time").
inline mutk::DistanceMatrix hmdnaWorkload(int NumSpecies,
                                          std::uint64_t Seed) {
  return mutk::hmdnaLikeMatrix(NumSpecies, Seed);
}

/// A harder DNA workload: shorter sequences, heavier substitution and
/// strong lineage rate heterogeneity. Matches the difficulty profile of
/// the HPCAsia/NCS mitochondrial runs (hours past 26 species on one
/// processor, strong per-dataset variance).
inline mutk::DistanceMatrix hardDnaWorkload(int NumSpecies,
                                            std::uint64_t Seed) {
  mutk::EvolutionSpec Spec;
  Spec.SequenceLength = 120;
  Spec.SubstitutionRate = 0.5;
  Spec.RateVariation = 1.2;
  return mutk::hmdnaLikeMatrix(NumSpecies, Seed, Spec);
}

/// Safety cap so no single "without compact sets" solve can run away;
/// rows that hit it are flagged in the table.
inline mutk::BnbOptions cappedBnb() {
  mutk::BnbOptions Options;
  Options.MaxBranchedNodes = 4'000'000;
  return Options;
}

inline double mean(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

inline double median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  std::size_t Mid = Values.size() / 2;
  if (Values.size() % 2 == 1)
    return Values[Mid];
  return (Values[Mid - 1] + Values[Mid]) / 2.0;
}

inline double maxOf(const std::vector<double> &Values) {
  double Max = 0.0;
  for (double V : Values)
    Max = std::max(Max, V);
  return Max;
}

/// Prints the standard experiment banner.
inline void banner(const char *Figure, const char *Claim) {
  std::printf("\n=== %s ===\n%s\n\n", Figure, Claim);
}

} // namespace bench

#endif // MUTK_BENCH_WORKLOADS_H
