//===- bench/pact_fig09_cost_random.cpp - PaCT 2005, Figure 9 --------------===//
//
// "The total tree cost for random data set": tree cost with vs without
// compact sets, random matrices with values 0..100. Paper claim: costs
// are almost equal, the difference is less than 5%.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 14, 16, 18, 20, 22};
constexpr std::uint64_t NumSeeds = 5;

void printTable() {
  bench::banner(
      "PaCT 2005 Figure 9: total tree cost, random data (values 0..100)",
      "Mean costs over 5 instances; paper claim: difference < 5%.");
  std::printf("%8s %14s %14s %10s\n", "species", "without-cs",
              "with-cs", "diff");
  double WorstDiff = 0.0;
  for (int N : SpeciesSweep) {
    std::vector<double> Without, With;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      Without.push_back(solveMutSequential(M, bench::cappedBnb()).Cost);
      With.push_back(buildCompactSetTree(M).Cost);
    }
    double MeanWithout = bench::mean(Without);
    double MeanWith = bench::mean(With);
    double Diff = 100.0 * (MeanWith - MeanWithout) / MeanWithout;
    WorstDiff = std::max(WorstDiff, Diff);
    std::printf("%8d %14.3f %14.3f %9.2f%%\n", N, MeanWithout, MeanWith,
                Diff);
  }
  std::printf("\nworst mean cost difference: %.2f%% (paper: < 5%%)\n",
              WorstDiff);
}

void BM_CostGap(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  DistanceMatrix M = bench::unifWorkload(N, 2);
  double Gap = 0.0;
  for (auto _ : State) {
    double Exact = solveMutSequential(M, bench::cappedBnb()).Cost;
    double Fast = buildCompactSetTree(M).Cost;
    Gap = 100.0 * (Fast - Exact) / Exact;
    benchmark::DoNotOptimize(Gap);
  }
  State.counters["cost_gap_pct"] = Gap;
}

BENCHMARK(BM_CostGap)->DenseRange(12, 20, 4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
