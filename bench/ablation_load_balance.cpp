//===- bench/ablation_load_balance.cpp - Global-pool load balancing --------===//
//
// Ablation of the papers' two-level load-balancing design ("we used
// global pool and local pool as a load balancing mechanism so computing
// nodes never idle"): the same 16-node simulation with the global pool
// disabled. Expected: without donation, nodes that bounded away their
// initial deal sit idle and the makespan stretches.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

void printTable() {
  bench::banner(
      "Ablation: global-pool load balancing on the 16-node simulation",
      "Makespan and total idle time with and without the global pool; "
      "costs stay optimal either way.");
  std::printf("%9s %8s %6s | %12s %12s | %12s %12s\n", "workload",
              "species", "seed", "makespan+GP", "idle+GP", "makespan-GP",
              "idle-GP");
  for (int N : {16, 20, 22}) {
    for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
      for (bool Dna : {false, true}) {
        DistanceMatrix M = Dna ? bench::hmdnaWorkload(N, Seed)
                               : bench::unifWorkload(N, Seed);
        ClusterSpec WithPool;
        WithPool.NumNodes = 16;
        ClusterSpec NoPool = WithPool;
        NoPool.UseGlobalPool = false;

        ClusterSimResult A = simulateClusterBnb(M, WithPool, bench::cappedBnb());
        ClusterSimResult B = simulateClusterBnb(M, NoPool, bench::cappedBnb());
        double IdleA = 0.0, IdleB = 0.0;
        for (const SimNodeStats &S : A.Nodes)
          IdleA += S.IdleTime;
        for (const SimNodeStats &S : B.Nodes)
          IdleB += S.IdleTime;
        std::printf("%9s %8d %6llu | %12.1f %12.1f | %12.1f %12.1f\n",
                    Dna ? "hmdna" : "random", N,
                    static_cast<unsigned long long>(Seed), A.Makespan, IdleA,
                    B.Makespan, IdleB);
      }
    }
  }
}

void BM_WithGlobalPool(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(20, 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        simulateClusterBnb(M, Spec, bench::cappedBnb()).Makespan);
}

void BM_WithoutGlobalPool(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(20, 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  Spec.UseGlobalPool = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        simulateClusterBnb(M, Spec, bench::cappedBnb()).Makespan);
}

BENCHMARK(BM_WithGlobalPool)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WithoutGlobalPool)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
