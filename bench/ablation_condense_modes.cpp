//===- bench/ablation_condense_modes.cpp - max vs min vs avg D' ------------===//
//
// Ablation of the paper's §3.1 design choice: the three condensed-matrix
// variants (*maximum*, *minimum*, *average*). The paper only evaluates
// *maximum*; this bench shows why: it is the only mode whose merged tree
// is guaranteed feasible (d_T >= M), while min/avg trade feasibility for
// lower cost.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

const char *modeName(CondenseMode Mode) {
  switch (Mode) {
  case CondenseMode::Maximum:
    return "maximum";
  case CondenseMode::Minimum:
    return "minimum";
  case CondenseMode::Average:
    return "average";
  }
  return "?";
}

void printTable() {
  bench::banner(
      "Ablation: condensed-matrix mode (paper §3.1 studies 'maximum')",
      "Per mode: tree cost (relative to the exact optimum), whether the "
      "tree stays feasible for M, and merge height clamps.");
  std::printf("%8s %6s %9s | %9s %9s %9s %7s\n", "species", "seed",
              "optimum", "mode", "cost", "feasible", "clamps");
  for (int N : {14, 18, 22}) {
    for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      double Optimum = solveMutSequential(M, bench::cappedBnb()).Cost;
      for (CondenseMode Mode : {CondenseMode::Maximum, CondenseMode::Minimum,
                                CondenseMode::Average}) {
        PipelineOptions Options;
        Options.Mode = Mode;
        PipelineResult R = buildCompactSetTree(M, Options);
        std::printf("%8d %6llu %9.2f | %9s %9.2f %9s %7d\n", N,
                    static_cast<unsigned long long>(Seed), Optimum,
                    modeName(Mode), R.Cost,
                    R.Tree.dominatesMatrix(M) ? "yes" : "NO",
                    R.HeightClamps);
      }
    }
  }
}

void BM_CondenseMode(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(18, 1);
  auto Mode = static_cast<CondenseMode>(State.range(0));
  PipelineOptions Options;
  Options.Mode = Mode;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildCompactSetTree(M, Options).Cost);
  State.SetLabel(modeName(Mode));
}

BENCHMARK(BM_CondenseMode)
    ->Arg(static_cast<int>(CondenseMode::Maximum))
    ->Arg(static_cast<int>(CondenseMode::Minimum))
    ->Arg(static_cast<int>(CondenseMode::Average))
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
