//===- bench/pact_fig12_cost_hmdna30.cpp - PaCT 2005, Figure 12 ------------===//
//
// "The total tree cost of 30 DNAs": 10 datasets of 30 DNAs each. Paper
// claim: compact sets keep the cost down on 30 DNAs just as on 26 DNAs
// and on generated data.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int NumSpecies = 30;
constexpr int NumDataSets = 10;

void printTable() {
  bench::banner("PaCT 2005 Figure 12: total tree cost, 10 datasets x 30 DNAs",
                "Paper claim: compact sets keep the cost close to the "
                "non-decomposed construction.");
  std::printf("%8s %14s %14s %10s\n", "dataset", "without-cs", "with-cs",
              "diff");
  double Worst = 0.0;
  for (int Set = 1; Set <= NumDataSets; ++Set) {
    DistanceMatrix M =
        bench::hmdnaWorkload(NumSpecies, static_cast<std::uint64_t>(Set));
    double Without = solveMutSequential(M, bench::cappedBnb()).Cost;
    double With = buildCompactSetTree(M).Cost;
    double Diff = Without > 0 ? 100.0 * (With - Without) / Without : 0.0;
    Worst = std::max(Worst, Diff);
    std::printf("%8d %14.3f %14.3f %9.2f%%\n", Set, Without, With, Diff);
  }
  std::printf("\nmax cost difference: %.2f%%\n", Worst);
}

void BM_Hmdna30CostPair(benchmark::State &State) {
  DistanceMatrix M = bench::hmdnaWorkload(
      NumSpecies, static_cast<std::uint64_t>(State.range(0)));
  for (auto _ : State) {
    double Exact = solveMutSequential(M, bench::cappedBnb()).Cost;
    double Fast = buildCompactSetTree(M).Cost;
    benchmark::DoNotOptimize(Exact + Fast);
  }
}

BENCHMARK(BM_Hmdna30CostPair)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
