//===- bench/ncs_grid_tables.cpp - NCS 2005, Tables 3-6 / Figs 4-7 ---------===//
//
// The NCS 2005 companion paper compares three environments on human
// mitochondrial data: a single machine, a 16-node cluster, and a grid
// (heterogeneous nodes, slower interconnect). Tables 3-5 report the
// median / mean / worst computing time over 10 datasets per species
// count; Table 6 / Figure 7 shows that a grid with 24 (weaker) nodes
// beats the 16-node cluster. All environments are modeled with the
// cluster simulator (DESIGN.md §5.2):
//
//   cluster: 16 homogeneous speed-1 nodes, low latency
//   grid:    mixed-speed nodes, higher UB-broadcast latency and
//            transfer cost (internet vs LAN)
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 14, 16, 18, 20, 22};
constexpr std::uint64_t NumSeeds = 5;

ClusterSpec clusterSpec(int Nodes) {
  ClusterSpec Spec;
  Spec.NumNodes = Nodes;
  Spec.UbBroadcastLatency = 4.0;
  Spec.PoolTransferCost = 2.0;
  return Spec;
}

ClusterSpec gridSpec(int Nodes) {
  ClusterSpec Spec;
  Spec.NumNodes = Nodes;
  // Internet-grade communication: an order of magnitude slower.
  Spec.UbBroadcastLatency = 40.0;
  Spec.PoolTransferCost = 20.0;
  // Mixed hardware: the NCS testbed used AMD 1.3G vs AMD 2000+ nodes.
  Spec.NodeSpeeds.resize(static_cast<std::size_t>(Nodes));
  for (int I = 0; I < Nodes; ++I)
    Spec.NodeSpeeds[static_cast<std::size_t>(I)] =
        (I % 3 == 0) ? 0.6 : 0.9;
  return Spec;
}

void printTables() {
  bench::banner(
      "NCS 2005 Tables 3-5 / Figures 4-6: single vs cluster(16) vs "
      "grid(16) on DNA data",
      "Virtual makespan units over 5 datasets per size. Paper shape: "
      "single machine is worst; cluster and grid are comparable at equal "
      "node counts (the grid pays communication overhead).");
  std::printf("%8s | %10s %10s %10s | %10s %10s %10s | %10s %10s %10s\n",
              "", "single", "", "", "cluster16", "", "", "grid16", "", "");
  std::printf("%8s | %10s %10s %10s | %10s %10s %10s | %10s %10s %10s\n",
              "species", "median", "mean", "worst", "median", "mean",
              "worst", "median", "mean", "worst");
  for (int N : SpeciesSweep) {
    std::vector<double> Single, Cluster, Grid;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::hardDnaWorkload(N, Seed);
      Single.push_back(
          simulateSequentialBaseline(M, bench::cappedBnb()).Makespan);
      Cluster.push_back(
          simulateClusterBnb(M, clusterSpec(16), bench::cappedBnb())
              .Makespan);
      Grid.push_back(
          simulateClusterBnb(M, gridSpec(16), bench::cappedBnb()).Makespan);
    }
    std::printf(
        "%8d | %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f | %10.1f "
        "%10.1f %10.1f\n",
        N, bench::median(Single), bench::mean(Single), bench::maxOf(Single),
        bench::median(Cluster), bench::mean(Cluster), bench::maxOf(Cluster),
        bench::median(Grid), bench::mean(Grid), bench::maxOf(Grid));
  }

  bench::banner(
      "NCS 2005 Table 6 / Figure 7: cluster(16) vs grid(16) vs grid(24)",
      "Paper claim: with 24 nodes the grid overtakes the 16-node cluster "
      "despite slower communication and weaker nodes.");
  std::printf("%8s %6s %12s %12s %12s\n", "species", "seed", "cluster16",
              "grid16", "grid24");
  int Grid24Wins = 0, Rows = 0;
  for (int N : {22, 24, 26}) {
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::hardDnaWorkload(N, Seed);
      double C16 =
          simulateClusterBnb(M, clusterSpec(16), bench::cappedBnb())
              .Makespan;
      double G16 =
          simulateClusterBnb(M, gridSpec(16), bench::cappedBnb()).Makespan;
      double G24 =
          simulateClusterBnb(M, gridSpec(24), bench::cappedBnb()).Makespan;
      ++Rows;
      if (G24 < C16)
        ++Grid24Wins;
      std::printf("%8d %6llu %12.1f %12.1f %12.1f%s\n", N,
                  static_cast<unsigned long long>(Seed), C16, G16, G24,
                  G24 < C16 ? "  <-- grid24 beats cluster16" : "");
    }
  }
  std::printf("\ngrid(24) beats cluster(16) in %d of %d rows (the "
              "compute-dominant datasets, matching the paper's "
              "long-running instances; on tiny datasets the grid's "
              "communication overhead dominates)\n",
              Grid24Wins, Rows);
}

void BM_Grid16Hmdna(benchmark::State &State) {
  DistanceMatrix M =
      bench::hardDnaWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        simulateClusterBnb(M, gridSpec(16), bench::cappedBnb()).Cost);
}

BENCHMARK(BM_Grid16Hmdna)->Arg(18)->Arg(22)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
