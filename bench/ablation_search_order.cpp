//===- bench/ablation_search_order.cpp - DFS vs best-first -----------------===//
//
// Ablation of Algorithm BBU's search order. The paper's Step 6/7 uses
// DFS ("v = get the tree for branch using DFS") because local pools are
// stacks; a best-first queue expands fewer nodes but holds the whole
// frontier in memory. This bench quantifies both sides of the trade.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/BestFirstBnb.h"
#include "bnb/SequentialBnb.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

void printTable() {
  bench::banner(
      "Ablation: search order (the paper's DFS vs best-first)",
      "Branched nodes and peak frontier per instance. Best-first wins on "
      "tie-free (random) data; on plateau-heavy DNA data DFS reaches a "
      "complete tree (and thus the pruning bound) sooner and can branch "
      "fewer. DFS never holds more than O(depth * branching) nodes.");
  std::printf("%9s %8s %6s | %12s | %12s %14s\n", "workload", "species",
              "seed", "dfs-branched", "bf-branched", "bf-peak-front");
  for (int N : {14, 18, 22}) {
    for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
      for (bool Dna : {false, true}) {
        DistanceMatrix M = Dna ? bench::hardDnaWorkload(N, Seed)
                               : bench::unifWorkload(N, Seed);
        MutResult Dfs = solveMutSequential(M, bench::cappedBnb());
        BestFirstResult Bf = solveMutBestFirst(M, bench::cappedBnb());
        std::printf("%9s %8d %6llu | %12llu | %12llu %14zu\n",
                    Dna ? "hmdna" : "random", N,
                    static_cast<unsigned long long>(Seed),
                    static_cast<unsigned long long>(Dfs.Stats.Branched),
                    static_cast<unsigned long long>(Bf.Stats.Branched),
                    Bf.PeakFrontier);
      }
    }
  }
}

void BM_Dfs(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutSequential(M, bench::cappedBnb()).Cost);
}

void BM_BestFirst(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutBestFirst(M, bench::cappedBnb()).Cost);
}

BENCHMARK(BM_Dfs)->Arg(14)->Arg(18)->Arg(22)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BestFirst)
    ->Arg(14)
    ->Arg(18)
    ->Arg(22)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
