//===- bench/ext_bnb_hotloop.cpp - B&B hot-loop identity & throughput -----===//
//
// Extension study: the branch-and-bound hot loop after the 3-3 pruning
// fix. Every engine (sequential DFS, best-first, threaded) is run in
// {None, ThirdSpecies} mode on tie-free structured workloads — the
// regime where `ThirdSpecies` is proven cost-preserving
// (tests/bnb_test.cpp) — and the run *aborts* unless
//
//   * every engine x mode returns the exact same double cost as the
//     sequential/None baseline (the 3-3 filter and the bound-cache
//     reorder must be pure prunings, never answer changes), and
//   * every ThirdSpecies row actually engages the filter
//     (`PrunedByThreeThree > 0`) — the regression this bench exists to
//     pin down was the filter silently never running on benchmarked
//     paths.
//
// The table reports branched nodes per second per engine (the hot-loop
// throughput the arena + cached-bound work targets) and the node
// reduction ThirdSpecies buys. Besides the console table the run writes
// `BENCH_hotloop.json` following the BENCH_*.json convention in
// docs/benchmarking.md; the embedded registry snapshot must show
// `mutk_bnb_pruned_threethree_total > 0`.
//
// MUTK_BENCH_SMOKE=1 shrinks the workload set to a seconds-long CI
// smoke run (smaller matrices, single repetition); the identity and
// engagement gates still apply.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/BestFirstBnb.h"
#include "bnb/SequentialBnb.h"
#include "obs/Metrics.h"
#include "parallel/ThreadedBnb.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace mutk;

namespace {

constexpr int ThreadedWorkers = 4;

struct WorkloadSpec {
  const char *Name;
  DistanceMatrix Matrix;
};

struct ResultRow {
  std::string Workload;
  int Species = 0;
  const char *Engine = "";
  const char *Mode = "";
  double Millis = 0.0;
  std::uint64_t Branched = 0;
  double NodesPerSec = 0.0;
  std::uint64_t PrunedThreeThree = 0;
  double Cost = 0.0;
  bool CostOk = true;
};

/// One timed solve; returns the stats of the last repetition (identical
/// across repetitions — the solvers are deterministic) and the median
/// wall clock.
struct EngineOutcome {
  double Cost = 0.0;
  BnbStats Stats;
  double Millis = 0.0;
};

EngineOutcome runEngine(const char *Engine, const DistanceMatrix &M,
                        const BnbOptions &Options, int Reps) {
  EngineOutcome Out;
  std::vector<double> Times;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    if (std::string(Engine) == "sequential") {
      MutResult R = solveMutSequential(M, Options);
      Out.Cost = R.Cost;
      Out.Stats = R.Stats;
    } else if (std::string(Engine) == "bestfirst") {
      BestFirstResult R = solveMutBestFirst(M, Options);
      Out.Cost = R.Cost;
      Out.Stats = R.Stats;
    } else {
      ParallelMutResult R = solveMutThreaded(M, ThreadedWorkers, Options);
      Out.Cost = R.Cost;
      Out.Stats = R.Stats;
    }
    Times.push_back(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count());
  }
  Out.Millis = bench::median(Times);
  return Out;
}

/// BENCH_*.json convention: {"bench":NAME,"rows":[...],"registry":{...}}.
void writeJson(const std::vector<ResultRow> &Rows) {
  std::ofstream Out("BENCH_hotloop.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_hotloop.json\n");
    return;
  }
  Out << "{\"bench\":\"ext_bnb_hotloop\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const ResultRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[320];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"workload\":\"%s\",\"species\":%d,\"engine\":\"%s\","
                  "\"mode\":\"%s\",\"millis\":%.3f,\"branched\":%llu,"
                  "\"nodes_per_sec\":%.0f,\"pruned_threethree\":%llu,"
                  "\"cost\":%.10g,\"cost_ok\":%s}",
                  R.Workload.c_str(), R.Species, R.Engine, R.Mode, R.Millis,
                  static_cast<unsigned long long>(R.Branched), R.NodesPerSec,
                  static_cast<unsigned long long>(R.PrunedThreeThree), R.Cost,
                  R.CostOk ? "true" : "false");
    Out << Buf;
  }
  Out << "],\"registry\":"
      << mutk::obs::MetricsRegistry::global().renderJson() << "}\n";
  std::printf("  wrote BENCH_hotloop.json (%zu rows)\n", Rows.size());
}

void printTable() {
  const bool Smoke = std::getenv("MUTK_BENCH_SMOKE") != nullptr;
  bench::banner(
      "Extension: B&B hot-loop cost identity and throughput",
      "Every engine x {None, ThirdSpecies} must return the exact same "
      "double cost on tie-free structured data, and every ThirdSpecies "
      "row must engage the 3-3 filter (both asserted — the run aborts "
      "otherwise). nodes/s is branched BBT nodes per second.");

  std::vector<WorkloadSpec> Workloads;
  if (Smoke) {
    Workloads.push_back({"hmdna", bench::hmdnaWorkload(14, 7)});
    Workloads.push_back({"harddna", bench::hardDnaWorkload(14, 7)});
  } else {
    Workloads.push_back({"hmdna", bench::hmdnaWorkload(20, 7)});
    Workloads.push_back(
        {"clustered", scaledToMax(plantedClusterMetric(20, 5), 100.0)});
    Workloads.push_back({"harddna", bench::hardDnaWorkload(18, 7)});
    Workloads.push_back({"harddna", bench::hardDnaWorkload(20, 7)});
  }
  const int Reps = Smoke ? 1 : 3;
  const char *Engines[] = {"sequential", "bestfirst", "threaded"};
  const char *Modes[] = {"none", "third"};

  std::printf("%-10s %4s %-10s %-6s %10s %10s %12s %8s %8s\n", "workload",
              "n", "engine", "mode", "median ms", "branched", "nodes/s",
              "pr33", "cost ok");

  std::vector<ResultRow> Rows;
  bool Failed = false;
  for (const WorkloadSpec &W : Workloads) {
    double BaselineCost = 0.0;
    bool HaveBaseline = false;
    for (const char *Engine : Engines) {
      for (const char *Mode : Modes) {
        BnbOptions Options = bench::cappedBnb();
        Options.ThreeThree = std::string(Mode) == "third"
                                 ? ThreeThreeMode::ThirdSpecies
                                 : ThreeThreeMode::None;
        EngineOutcome Out = runEngine(Engine, W.Matrix, Options, Reps);
        if (!HaveBaseline) {
          // Sequential/None is the reference answer for this workload.
          BaselineCost = Out.Cost;
          HaveBaseline = true;
        }
        // Exact double equality: the modes and engines explore in a
        // different order but must land on the same tree cost, down to
        // the last bit.
        bool CostOk = Out.Cost == BaselineCost;
        if (!CostOk) {
          std::printf("  !! cost identity broken: %s/%s/%s %.17g vs "
                      "baseline %.17g\n",
                      W.Name, Engine, Mode, Out.Cost, BaselineCost);
          Failed = true;
        }
        if (Options.ThreeThree == ThreeThreeMode::ThirdSpecies &&
            Out.Stats.PrunedByThreeThree == 0) {
          std::printf("  !! 3-3 filter never engaged: %s/%s/%s\n", W.Name,
                      Engine, Mode);
          Failed = true;
        }
        double NodesPerSec =
            Out.Millis > 0.0
                ? static_cast<double>(Out.Stats.Branched) * 1000.0 / Out.Millis
                : 0.0;
        std::printf("%-10s %4d %-10s %-6s %10.2f %10llu %12.0f %8llu %8s\n",
                    W.Name, W.Matrix.size(), Engine, Mode, Out.Millis,
                    static_cast<unsigned long long>(Out.Stats.Branched),
                    NodesPerSec,
                    static_cast<unsigned long long>(
                        Out.Stats.PrunedByThreeThree),
                    CostOk ? "yes" : "NO");
        ResultRow Row;
        Row.Workload = W.Name;
        Row.Species = W.Matrix.size();
        Row.Engine = Engine;
        Row.Mode = Mode;
        Row.Millis = Out.Millis;
        Row.Branched = Out.Stats.Branched;
        Row.NodesPerSec = NodesPerSec;
        Row.PrunedThreeThree = Out.Stats.PrunedByThreeThree;
        Row.Cost = Out.Cost;
        Row.CostOk = CostOk;
        Rows.push_back(std::move(Row));
      }
    }
  }
  writeJson(Rows);
  if (Failed) {
    std::printf("  !! hot-loop gates failed\n");
    std::exit(1);
  }
}

void BM_HotloopSequentialNone(benchmark::State &State) {
  DistanceMatrix M = bench::hardDnaWorkload(18, 7);
  BnbOptions Options = bench::cappedBnb();
  Options.ThreeThree = ThreeThreeMode::None;
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutSequential(M, Options).Cost);
}

void BM_HotloopSequentialThird(benchmark::State &State) {
  DistanceMatrix M = bench::hardDnaWorkload(18, 7);
  BnbOptions Options = bench::cappedBnb();
  Options.ThreeThree = ThreeThreeMode::ThirdSpecies;
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutSequential(M, Options).Cost);
}

BENCHMARK(BM_HotloopSequentialNone)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotloopSequentialThird)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
