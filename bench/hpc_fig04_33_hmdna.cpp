//===- bench/hpc_fig04_33_hmdna.cpp - HPCAsia 2005, Figure 4 ---------------===//
//
// "The computing time for 16 processors (with 3-3 relationship vs.
// without 3-3 relationship, HMDNA)". Paper claims: the 3-3 relationship
// reduces computing time as the species count grows, and the result
// trees with 3-3 are a subset of the results without it (same optimum).
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 16, 20, 24, 26};
constexpr std::uint64_t NumSeeds = 5;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 4: 16 nodes, with vs without 3-3, HMDNA",
      "Virtual makespan units (mean of 5 datasets); 'same optimum' checks "
      "the paper's subset claim.");
  std::printf("%8s %14s %14s %14s %12s\n", "species", "without-33",
              "with-33", "nodes saved", "same optimum");
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  for (int N : SpeciesSweep) {
    std::vector<double> Without, With;
    double BranchSavedTotal = 0.0;
    bool SameOptimum = true;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::hardDnaWorkload(N, Seed);
      BnbOptions Plain = bench::cappedBnb();
      ClusterSimResult A = simulateClusterBnb(M, Spec, Plain);
      BnbOptions ThreeThree = bench::cappedBnb();
      ThreeThree.ThreeThree = ThreeThreeMode::ThirdSpecies;
      ClusterSimResult B = simulateClusterBnb(M, Spec, ThreeThree);
      Without.push_back(A.Makespan);
      With.push_back(B.Makespan);
      BranchSavedTotal += static_cast<double>(A.Stats.Branched) -
                          static_cast<double>(B.Stats.Branched);
      SameOptimum &= std::fabs(A.Cost - B.Cost) < 1e-9;
    }
    std::printf("%8d %14.1f %14.1f %14.0f %12s\n", N, bench::mean(Without),
                bench::mean(With), BranchSavedTotal / NumSeeds,
                SameOptimum ? "yes" : "NO");
  }
}

void BM_ThreeThreeHmdna(benchmark::State &State) {
  DistanceMatrix M =
      bench::hardDnaWorkload(static_cast<int>(State.range(0)), 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  BnbOptions Options = bench::cappedBnb();
  Options.ThreeThree = ThreeThreeMode::ThirdSpecies;
  for (auto _ : State)
    benchmark::DoNotOptimize(simulateClusterBnb(M, Spec, Options).Cost);
}

BENCHMARK(BM_ThreeThreeHmdna)->Arg(20)->Arg(26)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
