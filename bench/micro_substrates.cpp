//===- bench/micro_substrates.cpp - Substrate micro-benchmarks -------------===//
//
// Classic google-benchmark timings of the substrate layers: MST
// construction, compact-set detection, edit distance, UPGMM, the
// evolution simulator and the B&B branching primitive. Useful for
// regressions and for sizing the virtual-time cost model.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/Arena.h"
#include "bnb/Engine.h"
#include "graph/CompactSets.h"
#include "graph/Mst.h"
#include "heur/NeighborJoining.h"
#include "heur/Upgma.h"
#include "seq/EditDistance.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

void BM_KruskalMst(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(kruskalMst(M).size());
}
BENCHMARK(BM_KruskalMst)->Arg(32)->Arg(128)->Arg(512);

void BM_PrimMst(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(primMst(M).size());
}
BENCHMARK(BM_PrimMst)->Arg(32)->Arg(128)->Arg(512);

void BM_CompactSetDetection(benchmark::State &State) {
  DistanceMatrix M =
      plantedClusterMetric(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(findCompactSets(M).size());
}
BENCHMARK(BM_CompactSetDetection)->Arg(32)->Arg(128)->Arg(512);

void BM_EditDistanceFull(benchmark::State &State) {
  EvolutionSpec Spec;
  Spec.SequenceLength = static_cast<int>(State.range(0));
  EvolutionResult R = simulateEvolution(2, 5, Spec);
  for (auto _ : State)
    benchmark::DoNotOptimize(editDistance(R.Sequences[0], R.Sequences[1]));
}
BENCHMARK(BM_EditDistanceFull)->Arg(128)->Arg(512)->Arg(2048);

void BM_EditDistanceBandDoubling(benchmark::State &State) {
  EvolutionSpec Spec;
  Spec.SequenceLength = static_cast<int>(State.range(0));
  EvolutionResult R = simulateEvolution(2, 5, Spec);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        fastEditDistance(R.Sequences[0], R.Sequences[1]));
}
BENCHMARK(BM_EditDistanceBandDoubling)->Arg(128)->Arg(512)->Arg(2048);

void BM_Upgmm(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(upgmm(M).weight());
}
BENCHMARK(BM_Upgmm)->Arg(16)->Arg(64)->Arg(256);

void BM_NeighborJoining(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(neighborJoining(M).numNodes());
}
BENCHMARK(BM_NeighborJoining)->Arg(16)->Arg(64)->Arg(128);

void BM_EvolutionSim(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        simulateEvolution(static_cast<int>(State.range(0)), 7)
            .Sequences.size());
}
BENCHMARK(BM_EvolutionSim)->Arg(16)->Arg(32)->Arg(64);

void BM_HmdnaMatrix(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        hmdnaLikeMatrix(static_cast<int>(State.range(0)), 7).size());
}
BENCHMARK(BM_HmdnaMatrix)->Arg(16)->Arg(26);

void BM_BranchOneNode(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  BnbEngine Engine(M, {});
  // A mid-depth topology: insert half the species greedily.
  Topology T = Engine.rootTopology();
  while (T.numPlaced() < M.size() / 2)
    T = T.withNextSpeciesAt(0, Engine.relabeledMatrix());
  BnbStats Stats;
  TopologyArena Arena(Engine.numSpecies());
  std::vector<BranchedChild> Children;
  for (auto _ : State) {
    Engine.branch(T, Engine.initialUpperBound(), Stats, Children, &Arena);
    benchmark::DoNotOptimize(Children.size());
    for (BranchedChild &BC : Children)
      Arena.release(std::move(BC.Node));
  }
}
BENCHMARK(BM_BranchOneNode)->Arg(16)->Arg(32)->Arg(64);

} // namespace

BENCHMARK_MAIN();
