//===- bench/ablation_spr_polish.cpp - Topology polish extension -----------===//
//
// The papers' named future work: "we can extend this feature and speedup
// the process of constructing evolutionary trees". This bench measures
// the SPR polish on the compact-set pipeline: how much of the gap to the
// exact optimum it closes, at what cost in moves/time — including the
// regime where the pipeline's block-size cap forced UPGMM fallbacks.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "support/Stopwatch.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

void printTable() {
  bench::banner(
      "Ablation: SPR polish on the compact-set pipeline",
      "gap = cost above the exact optimum; the polish should close most "
      "of the gap left by decomposition and UPGMM fallbacks.");
  std::printf("%8s %6s %10s | %9s %8s | %9s %8s %6s\n", "species", "seed",
              "optimum", "plain", "gap", "polished", "gap", "moves");
  for (int N : {16, 20, 24}) {
    for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      double Optimum = solveMutSequential(M, bench::cappedBnb()).Cost;

      PipelineOptions Plain;
      PipelineResult A = buildCompactSetTree(M, Plain);

      PipelineOptions Polished;
      Polished.PolishTopology = true;
      PipelineResult B = buildCompactSetTree(M, Polished);

      auto gap = [&](double Cost) {
        return Optimum > 0 ? 100.0 * (Cost - Optimum) / Optimum : 0.0;
      };
      std::printf("%8d %6llu %10.2f | %9.2f %7.2f%% | %9.2f %7.2f%% %6d\n",
                  N, static_cast<unsigned long long>(Seed), Optimum, A.Cost,
                  gap(A.Cost), B.Cost, gap(B.Cost), B.PolishMoves);
    }
  }
}

void printUbPolishTable() {
  bench::banner(
      "Extension: SPR-polished initial upper bound for the exact B&B",
      "A tighter feasible seed prunes the BBT harder at a fixed polish "
      "cost; same provable optimum.");
  std::printf("%8s %6s | %12s %12s | %10s %10s\n", "species", "seed",
              "plain-br", "polished-br", "plain-cost", "seed-cost");
  for (int N : {16, 20, 22}) {
    for (std::uint64_t Seed = 1; Seed <= 2; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      MutResult Plain = solveMutSequential(M, bench::cappedBnb());
      BnbOptions Options = bench::cappedBnb();
      Options.ImproveInitialUpperBound = true;
      MutResult Seeded = solveMutSequential(M, Options);
      std::printf("%8d %6llu | %12llu %12llu | %10.2f %10.2f\n", N,
                  static_cast<unsigned long long>(Seed),
                  static_cast<unsigned long long>(Plain.Stats.Branched),
                  static_cast<unsigned long long>(Seeded.Stats.Branched),
                  Plain.Cost, Seeded.Cost);
    }
  }
}

void BM_PipelinePlain(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(buildCompactSetTree(M).Cost);
}

void BM_PipelinePolished(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  PipelineOptions Options;
  Options.PolishTopology = true;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildCompactSetTree(M, Options).Cost);
}

BENCHMARK(BM_PipelinePlain)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelinePolished)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  printUbPolishTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
