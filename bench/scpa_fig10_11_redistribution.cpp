//===- bench/scpa_fig10_11_redistribution.cpp - APPT 2005, Figs 10-11 ------===//
//
// The report's APPT 2005 companion paper evaluates SCPA against the
// divide-and-conquer scheduler on random GEN_BLOCK redistributions:
// Figure 10 (uneven distribution, sizes in [0.3, 1.5] x mean) and
// Figure 11 (even distribution, [0.7, 1.3] x mean), sweeping processor
// counts and total message volume, reporting the percentage of events
// where each algorithm's total cost is lower. Claim: SCPA wins or ties
// in >= 85% of events. The DCA comparator is reimplemented from its
// description (order-driven divide-and-conquer merging); a stronger
// first-fit-decreasing scheduler is reported alongside for context
// (DESIGN.md §5.5).
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "redist/Baselines.h"
#include "redist/Scpa.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int EventsPerCell = 100;

void sweep(const char *Label, double Lo, double Hi) {
  std::printf("%s distribution (segment sizes in [%.1f, %.1f] x mean):\n",
              Label, Lo, Hi);
  std::printf("%8s %12s | %11s %6s %10s | %12s | %12s\n", "procs",
              "elements", "scpa-better", "equal", "dca-better",
              "scpa-win+tie", "vs-ffd w+t");
  for (int P : {8, 16, 24}) {
    for (long Total : {1L << 16, 1L << 20}) {
      int ScpaBetter = 0, Equal = 0, DcaBetter = 0, VsFfd = 0;
      for (int Event = 0; Event < EventsPerCell; ++Event) {
        std::uint64_t Seed =
            static_cast<std::uint64_t>(Event) * 7919 + P * 131 +
            static_cast<std::uint64_t>(Total);
        GenBlock S = randomGenBlock(P, Total, Lo, Hi, Seed);
        GenBlock D = randomGenBlock(P, Total, Lo, Hi, Seed + 1);
        auto Messages = generateMessages(S, D);
        long Scpa = scheduleScpa(Messages, P).totalStepMaxima(Messages);
        long Dca = scheduleDivideConquer(Messages, P)
                       .totalStepMaxima(Messages);
        long Ffd =
            scheduleGreedyFfd(Messages, P).totalStepMaxima(Messages);
        if (Scpa < Dca)
          ++ScpaBetter;
        else if (Scpa == Dca)
          ++Equal;
        else
          ++DcaBetter;
        if (Scpa <= Ffd)
          ++VsFfd;
      }
      std::printf("%8d %12ld | %10d%% %5d%% %9d%% | %11d%% | %11d%%\n", P,
                  Total, ScpaBetter, Equal, DcaBetter, ScpaBetter + Equal,
                  VsFfd);
    }
  }
  std::printf("\n");
}

void printTables() {
  bench::banner("APPT 2005 Figures 10-11: SCPA vs divide-and-conquer, "
                "percentage of winning events",
                "Paper claim: SCPA at least as good in >= 85% of events on "
                "both uneven and even GEN_BLOCK distributions. The last "
                "column scores SCPA against the stronger first-fit-"
                "decreasing scheduler for context.");
  sweep("Uneven", 0.3, 1.5);
  sweep("Even", 0.7, 1.3);
}

void BM_Scpa(benchmark::State &State) {
  int P = static_cast<int>(State.range(0));
  GenBlock S = randomGenBlock(P, 1 << 20, 0.3, 1.5, 1);
  GenBlock D = randomGenBlock(P, 1 << 20, 0.3, 1.5, 2);
  auto Messages = generateMessages(S, D);
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleScpa(Messages, P).numSteps());
}

void BM_Ffd(benchmark::State &State) {
  int P = static_cast<int>(State.range(0));
  GenBlock S = randomGenBlock(P, 1 << 20, 0.3, 1.5, 1);
  GenBlock D = randomGenBlock(P, 1 << 20, 0.3, 1.5, 2);
  auto Messages = generateMessages(S, D);
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleGreedyFfd(Messages, P).numSteps());
}

BENCHMARK(BM_Scpa)->Arg(8)->Arg(24)->Arg(64);
BENCHMARK(BM_Ffd)->Arg(8)->Arg(24)->Arg(64);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTables();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
