//===- bench/pact_fig10_cost_hmdna26.cpp - PaCT 2005, Figure 10 ------------===//
//
// "The total tree cost of 26 DNAs": 15 datasets of 26 Human
// Mitochondrial DNAs each, tree cost with vs without compact sets.
// Paper claim: the maximum difference is 1.5%.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int NumSpecies = 26;
constexpr int NumDataSets = 15;

void printTable() {
  bench::banner("PaCT 2005 Figure 10: total tree cost, 15 datasets x 26 DNAs",
                "Synthetic mitochondrial DNA (DESIGN.md 5.1); paper claim: "
                "max cost difference 1.5%.");
  std::printf("%8s %14s %14s %10s\n", "dataset", "without-cs", "with-cs",
              "diff");
  double Worst = 0.0;
  for (int Set = 1; Set <= NumDataSets; ++Set) {
    DistanceMatrix M =
        bench::hmdnaWorkload(NumSpecies, static_cast<std::uint64_t>(Set));
    double Without = solveMutSequential(M, bench::cappedBnb()).Cost;
    double With = buildCompactSetTree(M).Cost;
    double Diff = Without > 0 ? 100.0 * (With - Without) / Without : 0.0;
    Worst = std::max(Worst, Diff);
    std::printf("%8d %14.3f %14.3f %9.2f%%\n", Set, Without, With, Diff);
  }
  std::printf("\nmax cost difference: %.2f%% (paper: 1.5%%)\n", Worst);
}

void BM_Hmdna26CostPair(benchmark::State &State) {
  DistanceMatrix M =
      bench::hmdnaWorkload(NumSpecies, static_cast<std::uint64_t>(State.range(0)));
  double Gap = 0.0;
  for (auto _ : State) {
    double Exact = solveMutSequential(M, bench::cappedBnb()).Cost;
    double Fast = buildCompactSetTree(M).Cost;
    Gap = Exact > 0 ? 100.0 * (Fast - Exact) / Exact : 0.0;
    benchmark::DoNotOptimize(Gap);
  }
  State.counters["cost_gap_pct"] = Gap;
}

BENCHMARK(BM_Hmdna26CostPair)->Arg(1)->Arg(8)->Arg(15)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
