//===- bench/hpc_fig06_speedup_random.cpp - HPCAsia 2005, Figure 6 ---------===//
//
// "Speedup (16 processor vs. single processor, Random Data)". Paper
// claim: super-linear speedup on random instances too.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 14, 16, 18, 20, 22};
constexpr std::uint64_t NumSeeds = 3;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 6: speedup 16 vs 1 node, random data (0..100)",
      "Speedup = makespan(1) / makespan(16); > 16 is super-linear.");
  std::printf("%8s %6s %12s %12s %10s %10s %8s\n", "species", "seed",
              "seq-time", "par-time", "seq-br", "par-br", "speedup");
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  int SuperLinear = 0, Total = 0;
  for (int N : SpeciesSweep) {
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      ClusterSimResult Seq = simulateSequentialBaseline(M, bench::cappedBnb());
      ClusterSimResult Par = simulateClusterBnb(M, Spec, bench::cappedBnb());
      double Speedup = Par.Makespan > 0 ? Seq.Makespan / Par.Makespan : 1.0;
      ++Total;
      if (Speedup > 16.0)
        ++SuperLinear;
      std::printf("%8d %6llu %12.1f %12.1f %10llu %10llu %8.2f%s\n", N,
                  static_cast<unsigned long long>(Seed), Seq.Makespan,
                  Par.Makespan,
                  static_cast<unsigned long long>(Seq.Stats.Branched),
                  static_cast<unsigned long long>(Par.Stats.Branched),
                  Speedup, Speedup > 16.0 ? "  <-- super-linear" : "");
    }
  }
  std::printf("\nsuper-linear cases: %d of %d\n", SuperLinear, Total);
}

void BM_SpeedupPairRandom(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  double Speedup = 0.0;
  for (auto _ : State) {
    ClusterSimResult Seq = simulateSequentialBaseline(M, bench::cappedBnb());
    ClusterSimResult Par = simulateClusterBnb(M, Spec, bench::cappedBnb());
    Speedup = Par.Makespan > 0 ? Seq.Makespan / Par.Makespan : 1.0;
    benchmark::DoNotOptimize(Speedup);
  }
  State.counters["speedup"] = Speedup;
}

BENCHMARK(BM_SpeedupPairRandom)->Arg(18)->Arg(22)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
