//===- bench/ext_incremental.cpp - Incremental re-solve study --------------===//
//
// Extension study: how much of a solved matrix's work survives a small
// perturbation. A module-composed base matrix is solved once through the
// loopback TreeService (incremental mode on), then three perturbations
// are submitted with `Incremental` set:
//
//   * perturb-entry — one in-module distance stretched by 10%
//   * add-taxon     — one new species grafted next to module 0
//   * remove-taxon  — the last species dropped
//
// For each, the incremental latency is compared against solving the same
// perturbed matrix from scratch on a cache-less service, and the
// dirty/clean block split reported by the service is recorded. The bench
// aborts if the incremental tree cost ever diverges from the
// from-scratch cost — reuse must never change the answer.
//
// Writes `BENCH_incremental.json` (rows + metrics registry) following
// the BENCH_*.json convention of docs/benchmarking.md.
// MUTK_BENCH_SMOKE=1 shrinks the instance for seconds-long CI runs.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "obs/Metrics.h"
#include "service/Service.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

using namespace mutk;

namespace {

struct Instance {
  int NumModules = 4;
  int ModuleSize = 11;
  int Repeats = 5;
};

/// Hard modules (no internal compact sets): each one costs a genuine
/// B&B solve, so replaying a clean module's cached subtree saves real
/// work instead of microseconds of bookkeeping.
DistanceMatrix baseMatrix(const Instance &Inst) {
  std::vector<std::pair<int, std::uint64_t>> Modules;
  for (int I = 0; I < Inst.NumModules; ++I)
    Modules.emplace_back(Inst.ModuleSize, static_cast<std::uint64_t>(I) + 1);
  return bench::composeModules(Modules, &bench::hardModuleWorkload);
}

/// One in-module distance stretched by 10%. Increasing an entry of an
/// ultrametric keeps the triangle inequality, and 22 < 80 keeps every
/// module a compact set — only module 0's block changes.
DistanceMatrix perturbEntry(const DistanceMatrix &Base) {
  DistanceMatrix M = Base;
  M.set(0, 1, Base.at(0, 1) * 1.1);
  return M;
}

/// One new species joined at exactly the module diameter to every member
/// of module 0 and at the separation to everyone else: the composition
/// stays ultrametric and only blocks around module 0 change.
DistanceMatrix addTaxon(const DistanceMatrix &Base, int ModuleSize) {
  DistanceMatrix M(Base.size() + 1);
  for (int I = 0; I < Base.size(); ++I) {
    M.setName(I, Base.name(I));
    for (int J = I + 1; J < Base.size(); ++J)
      M.set(I, J, Base.at(I, J));
  }
  for (int I = 0; I < Base.size(); ++I)
    M.set(I, Base.size(),
          I < ModuleSize ? bench::ModuleDiameter : bench::ModuleSeparation);
  return M;
}

/// The last species dropped; only the last module's block changes.
DistanceMatrix removeTaxon(const DistanceMatrix &Base) {
  std::vector<int> Keep(static_cast<std::size_t>(Base.size()) - 1);
  std::iota(Keep.begin(), Keep.end(), 0);
  return Base.restrictedTo(Keep);
}

struct ResultRow {
  std::string Scenario;
  int Species = 0;
  double IncrementalMillis = 0.0;
  double ScratchMillis = 0.0;
  bool Applied = false;
  std::uint32_t DirtyBlocks = 0;
  std::uint32_t CleanBlocks = 0;
  std::int32_t TaxaAdded = 0;
  std::int32_t TaxaRemoved = 0;
  std::int32_t EntriesChanged = 0;
};

double submitMillis(TreeService &Service, const DistanceMatrix &M,
                    bool Incremental, BuildResponse *Out = nullptr) {
  BuildRequest Request;
  Request.Matrix = M;
  Request.Incremental = Incremental;
  auto Start = std::chrono::steady_clock::now();
  BuildResponse Resp = Service.submit(std::move(Request));
  double Millis = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  if (!Resp.ok()) {
    std::printf("  !! request failed: %s\n", Resp.Message.c_str());
    std::abort();
  }
  if (Out)
    *Out = Resp;
  return Millis;
}

/// Solves base then the perturbed matrix incrementally on a fresh
/// service (median over repeats), and the perturbed matrix from scratch
/// on a cache-less service. Aborts on any cost divergence.
ResultRow runScenario(const std::string &Scenario, const DistanceMatrix &Base,
                      const DistanceMatrix &Perturbed, int Repeats) {
  ResultRow Row;
  Row.Scenario = Scenario;
  Row.Species = Perturbed.size();
  std::vector<double> IncMillis;
  std::vector<double> ScratchMillis;
  double IncCost = 0.0;
  double ScratchCost = 0.0;
  for (int R = 0; R < Repeats; ++R) {
    ServiceOptions Options;
    Options.NumWorkers = 2;
    Options.Incremental = true;
    TreeService Service(Options);
    submitMillis(Service, Base, false);
    BuildResponse Resp;
    IncMillis.push_back(submitMillis(Service, Perturbed, true, &Resp));
    Service.stop();
    IncCost = Resp.Cost;
    Row.Applied = Resp.IncrementalApplied;
    Row.DirtyBlocks = Resp.DirtyBlocks;
    Row.CleanBlocks = Resp.CleanBlocks;
    Row.TaxaAdded = Resp.TaxaAdded;
    Row.TaxaRemoved = Resp.TaxaRemoved;
    Row.EntriesChanged = Resp.EntriesChanged;

    ServiceOptions ColdOptions;
    ColdOptions.NumWorkers = 2;
    ColdOptions.CacheCapacity = 0;
    TreeService Cold(ColdOptions);
    BuildResponse ColdResp;
    ScratchMillis.push_back(submitMillis(Cold, Perturbed, false, &ColdResp));
    Cold.stop();
    ScratchCost = ColdResp.Cost;
  }
  Row.IncrementalMillis = bench::median(IncMillis);
  Row.ScratchMillis = bench::median(ScratchMillis);
  if (std::abs(IncCost - ScratchCost) > 1e-9 * std::max(1.0, ScratchCost)) {
    std::printf("  !! %s: incremental cost %.6f != scratch cost %.6f\n",
                Scenario.c_str(), IncCost, ScratchCost);
    std::abort();
  }
  return Row;
}

void writeJson(const std::vector<ResultRow> &Rows) {
  std::ofstream Out("BENCH_incremental.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_incremental.json\n");
    return;
  }
  Out << "{\"bench\":\"ext_incremental\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const ResultRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[320];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"scenario\":\"%s\",\"species\":%d,\"incremental_ms\":%.3f,"
        "\"scratch_ms\":%.3f,\"speedup\":%.3f,\"applied\":%s,"
        "\"dirty_blocks\":%u,\"clean_blocks\":%u,\"taxa_added\":%d,"
        "\"taxa_removed\":%d,\"entries_changed\":%d}",
        R.Scenario.c_str(), R.Species, R.IncrementalMillis, R.ScratchMillis,
        R.IncrementalMillis > 0.0 ? R.ScratchMillis / R.IncrementalMillis
                                  : 0.0,
        R.Applied ? "true" : "false", R.DirtyBlocks, R.CleanBlocks,
        R.TaxaAdded, R.TaxaRemoved, R.EntriesChanged);
    Out << Buf;
  }
  Out << "],\"registry\":"
      << mutk::obs::MetricsRegistry::global().renderJson() << "}\n";
  std::printf("  wrote BENCH_incremental.json (%zu rows)\n", Rows.size());
}

void printTable() {
  const bool Smoke = std::getenv("MUTK_BENCH_SMOKE") != nullptr;
  Instance Inst;
  if (Smoke) {
    Inst.NumModules = 3;
    Inst.ModuleSize = 9;
    Inst.Repeats = 2;
  }
  bench::banner(
      "Extension: incremental re-solve after small perturbations",
      "One-entry / one-taxon edits of a solved module composition; clean "
      "blocks replay from the block cache, only dirty blocks re-solve.");
  std::printf("%14s %8s | %10s %10s %8s | %6s %6s | %4s %4s %4s\n",
              "scenario", "species", "incr ms", "scratch ms", "speedup",
              "dirty", "clean", "+tax", "-tax", "dent");
  DistanceMatrix Base = baseMatrix(Inst);
  std::vector<ResultRow> Rows;
  Rows.push_back(runScenario("perturb-entry", Base, perturbEntry(Base),
                             Inst.Repeats));
  Rows.push_back(runScenario("add-taxon", Base,
                             addTaxon(Base, Inst.ModuleSize), Inst.Repeats));
  Rows.push_back(runScenario("remove-taxon", Base, removeTaxon(Base),
                             Inst.Repeats));
  for (const ResultRow &R : Rows)
    std::printf("%14s %8d | %10.2f %10.2f %7.1fx | %6u %6u | %4d %4d %4d\n",
                R.Scenario.c_str(), R.Species, R.IncrementalMillis,
                R.ScratchMillis,
                R.IncrementalMillis > 0.0
                    ? R.ScratchMillis / R.IncrementalMillis
                    : 0.0,
                R.DirtyBlocks, R.CleanBlocks, R.TaxaAdded, R.TaxaRemoved,
                R.EntriesChanged);
  writeJson(Rows);
}

void BM_IncrementalResolve(benchmark::State &State) {
  Instance Inst;
  Inst.NumModules = 3;
  Inst.ModuleSize = 8;
  DistanceMatrix Base = baseMatrix(Inst);
  DistanceMatrix Perturbed = perturbEntry(Base);
  ServiceOptions Options;
  Options.NumWorkers = 2;
  Options.Incremental = true;
  TreeService Service(Options);
  {
    BuildRequest Prime;
    Prime.Matrix = Base;
    Service.submit(std::move(Prime));
  }
  for (auto _ : State) {
    BuildRequest Request;
    Request.Matrix = Perturbed;
    Request.Incremental = true;
    benchmark::DoNotOptimize(Service.submit(std::move(Request)).Cost);
  }
}

BENCHMARK(BM_IncrementalResolve)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
