//===- bench/ext_dist_scaling.cpp - Multi-node cluster scaling ------------===//
//
// Extension study: wall-clock scaling of the distributed B&B
// (dist/DistBnb.h) across real mutkd peers. The harness boots three
// full cluster nodes (TreeService + ClusterNode, each listening on a
// localhost TCP port) and solves one hard instance with 1, 2 and 3 of
// them as remote computing nodes via `solveMutOverPeers` — the same
// framed-socket path a production cluster uses, steal frames and
// incumbent broadcasts included.
//
// Every peer count must return the cost of the sequential solver (the
// protocol is exact; the run aborts if not) and the table reports the
// measured speedup next to the prediction of the discrete-event
// simulator (sim/ClusterSim.h) for the same node count — the bench is
// the reality check on DESIGN.md §5.2's simulator substitution. Rows
// land in `BENCH_dist.json` following docs/benchmarking.md.
//
// MUTK_BENCH_SMOKE=1 swaps in a lighter instance for seconds-long CI
// runs.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "dist/Cluster.h"
#include "dist/DistBnb.h"
#include "obs/Metrics.h"
#include "service/Service.h"
#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mutk;
using namespace mutk::dist;

namespace {

/// Reserves a localhost TCP port: bind(0), read it back, close (the
/// node's listener re-binds it with SO_REUSEADDR).
int reservePort() {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = 0;
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  int Port = ntohs(Addr.sin_port);
  ::close(Fd);
  return Port;
}

/// Live localhost peers for the duration of one study phase. Job
/// stealing is off for the B&B latency phase (the session itself is the
/// workload) and on for the throughput phase (stealing IS the
/// distribution mechanism there).
struct LocalCluster {
  std::vector<PeerSpec> Peers;
  std::vector<std::unique_ptr<TreeService>> Services;
  std::vector<std::unique_ptr<ClusterNode>> Nodes;

  bool start(int Count, bool StealJobs = false) {
    for (int I = 0; I < Count; ++I)
      Peers.push_back({I, "127.0.0.1", reservePort()});
    for (int I = 0; I < Count; ++I) {
      ServiceOptions SvcOpts;
      SvcOpts.NumWorkers = 1;
      Services.push_back(std::make_unique<TreeService>(SvcOpts));
      ClusterOptions Opts;
      Opts.SelfId = I;
      Opts.Peers = Peers;
      Opts.StealJobs = StealJobs;
      Nodes.push_back(std::make_unique<ClusterNode>(*Services[I], Opts));
      std::string Error;
      if (!Nodes.back()->start(&Error)) {
        std::printf("  !! peer %d failed to start: %s\n", I, Error.c_str());
        return false;
      }
    }
    return true;
  }

  ~LocalCluster() {
    for (auto &N : Nodes)
      N->stop();
    for (auto &S : Services)
      S->stop();
  }
};

struct ResultRow {
  /// "latency" = one B&B session over P slave peers; "throughput" = a
  /// batch of independent jobs spread across P peers by job stealing.
  const char *Mode = "latency";
  int Species = 0;
  int Peers = 0;
  double Millis = 0.0;
  double Speedup = 1.0;
  double SimSpeedup = 1.0;
  double Cost = 0.0;
  std::uint64_t Messages = 0;
  std::uint64_t Bytes = 0;
};

/// BENCH_*.json convention: {"bench":NAME,"rows":[...],"registry":{...}}.
void writeJson(const std::vector<ResultRow> &Rows) {
  std::ofstream Out("BENCH_dist.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_dist.json\n");
    return;
  }
  Out << "{\"bench\":\"ext_dist_scaling\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const ResultRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[384];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"mode\":\"%s\",\"species\":%d,\"peers\":%d,"
                  "\"millis\":%.2f,\"speedup\":%.3f,\"sim_speedup\":%.3f,"
                  "\"cost\":%.6f,\"messages\":%llu,\"bytes\":%llu}",
                  R.Mode, R.Species, R.Peers, R.Millis, R.Speedup,
                  R.SimSpeedup, R.Cost,
                  static_cast<unsigned long long>(R.Messages),
                  static_cast<unsigned long long>(R.Bytes));
    Out << Buf;
  }
  Out << "],\"registry\":"
      << mutk::obs::MetricsRegistry::global().renderJson() << "}\n";
  std::printf("  wrote BENCH_dist.json (%zu rows)\n", Rows.size());
}

/// Virtual-time speedup the simulator predicts for \p NumNodes
/// computing nodes on the same instance.
double simPredictedSpeedup(const DistanceMatrix &M, int NumNodes) {
  ClusterSimResult Base = simulateSequentialBaseline(M);
  ClusterSpec Spec;
  Spec.NumNodes = NumNodes;
  ClusterSimResult Par = simulateClusterBnb(M, Spec);
  return Par.Makespan > 0.0 ? Base.Makespan / Par.Makespan : 1.0;
}

/// Batch throughput over the job-stealing path: \p Jobs independent
/// generated instances all submitted to peer 0, stolen and solved
/// cluster-wide. Returns wall-clock ms for the whole batch.
double runThroughputBatch(int PeerCount, int Jobs, int Species) {
  LocalCluster Cluster;
  if (!Cluster.start(PeerCount, /*StealJobs=*/true))
    return -1.0;
  std::vector<std::future<BuildResponse>> Futures;
  auto Start = std::chrono::steady_clock::now();
  for (int J = 0; J < Jobs; ++J) {
    BuildRequest R;
    R.Generator = GeneratorKind::Uniform;
    R.GenSpecies = Species;
    R.GenSeed = 1000 + J;
    R.UseCache = false;
    Futures.push_back(Cluster.Services[0]->submitAsync(std::move(R)));
  }
  for (auto &F : Futures) {
    BuildResponse Resp = F.get();
    if (!Resp.ok()) {
      std::printf("  !! throughput job failed: %s\n", Resp.Message.c_str());
      return -1.0;
    }
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void printTable() {
  const bool Smoke = std::getenv("MUTK_BENCH_SMOKE") != nullptr;
  bench::banner(
      "Extension: distributed B&B scaling across mutkd peers",
      "One hard instance solved over 1/2/3 live localhost peers via the "
      "framed-socket MpOpen path; cost must equal the sequential solver "
      "at every width. sim = the discrete-event simulator's prediction.");

  // hardDna instances sit in the papers' hard regime (the B&B branches
  // 10^5..10^6 nodes), so the session is compute-bound rather than
  // connect-bound even over loopback TCP.
  const int Species = Smoke ? 23 : 25;
  const DistanceMatrix M =
      bench::hardDnaWorkload(Species, Smoke ? 3 : 1);

  auto Start = std::chrono::steady_clock::now();
  MutResult Seq = solveMutSequential(M);
  double SeqMillis = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
  std::printf("  sequential: %.0f ms, cost %.4f, %llu branched\n\n",
              SeqMillis, Seq.Cost,
              static_cast<unsigned long long>(Seq.Stats.Branched));

  LocalCluster Cluster;
  if (!Cluster.start(3))
    return;

  MpProtocolOptions Proto;
  Proto.WorkStealing = true;
  Proto.PeerUbBroadcast = true;

  std::printf("%8s %8s | %10s %8s %8s | %10s %12s\n", "species", "peers",
              "millis", "speedup", "sim", "messages", "bytes");
  std::vector<ResultRow> Rows;
  bool CostMismatch = false;
  for (int P = 1; P <= 3; ++P) {
    std::vector<PeerSpec> Slaves(Cluster.Peers.begin(),
                                 Cluster.Peers.begin() + P);
    std::string Error;
    Start = std::chrono::steady_clock::now();
    auto R = solveMutOverPeers(M, Slaves, {}, Proto, 5.0, &Error);
    double Millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    if (!R) {
      std::printf("  !! %d-peer solve failed: %s\n", P, Error.c_str());
      return;
    }
    if (std::abs(R->Cost - Seq.Cost) > 1e-9) {
      std::printf("  !! COST MISMATCH at %d peers: %.9f vs %.9f\n", P,
                  R->Cost, Seq.Cost);
      CostMismatch = true;
    }
    ResultRow Row;
    Row.Species = Species;
    Row.Peers = P;
    Row.Millis = Millis;
    Row.Speedup = Millis > 0.0 ? SeqMillis / Millis : 1.0;
    Row.SimSpeedup = simPredictedSpeedup(M, P);
    Row.Cost = R->Cost;
    Row.Messages = R->MessagesSent;
    Row.Bytes = R->BytesSent;
    Rows.push_back(Row);
    std::printf("%8d %8d | %10.0f %8.2f %8.2f | %10llu %12llu\n", Species,
                P, Row.Millis, Row.Speedup, Row.SimSpeedup,
                static_cast<unsigned long long>(Row.Messages),
                static_cast<unsigned long long>(Row.Bytes));
  }
  if (CostMismatch)
    std::abort();

  // Phase 2: cluster job throughput. A batch of independent instances
  // all lands on peer 0; idle peers steal queued jobs over the
  // StealJob/JobGrant verbs, so the batch spreads to however many peers
  // exist. On multi-core (or multi-machine) hardware this scales close
  // to linearly with the peer count; on a single-core host every peer
  // shares one CPU and the measured ratio degenerates to ~1, which is
  // why the ideal P-way ratio is recorded alongside in sim_speedup.
  const int JobSpecies = Smoke ? 300 : 800;
  const int Jobs = Smoke ? 4 : 9;
  std::printf("\n  throughput: %d generated jobs of %d species via the "
              "job-stealing path (%u hardware threads on this host)\n",
              Jobs, JobSpecies, std::thread::hardware_concurrency());
  std::printf("%8s %8s | %10s %8s %8s\n", "jobs", "peers", "millis",
              "speedup", "ideal");
  double BaseMillis = 0.0;
  for (int P = 1; P <= 3; P += 2) {
    double Millis = runThroughputBatch(P, Jobs, JobSpecies);
    if (Millis < 0.0)
      return;
    if (P == 1)
      BaseMillis = Millis;
    ResultRow Row;
    Row.Mode = "throughput";
    Row.Species = JobSpecies;
    Row.Peers = P;
    Row.Millis = Millis;
    Row.Speedup = Millis > 0.0 ? BaseMillis / Millis : 1.0;
    Row.SimSpeedup = static_cast<double>(P);
    Rows.push_back(Row);
    std::printf("%8d %8d | %10.0f %8.2f %8.2f\n", Jobs, P, Millis,
                Row.Speedup, Row.SimSpeedup);
  }
  writeJson(Rows);
}

/// Timed micro-variant for `benchmark`: one small solve over a single
/// live peer (session setup + protocol, not the heavy search).
void BM_SolveOverOnePeer(benchmark::State &State) {
  LocalCluster Cluster;
  if (!Cluster.start(1)) {
    State.SkipWithError("peer failed to start");
    return;
  }
  DistanceMatrix M = bench::unifWorkload(12, 1);
  std::vector<PeerSpec> Slaves = {Cluster.Peers[0]};
  for (auto _ : State) {
    auto R = solveMutOverPeers(M, Slaves);
    if (!R) {
      State.SkipWithError("solve failed");
      return;
    }
    benchmark::DoNotOptimize(R->Cost);
  }
}

BENCHMARK(BM_SolveOverOnePeer)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
