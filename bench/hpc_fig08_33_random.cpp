//===- bench/hpc_fig08_33_random.cpp - HPCAsia 2005, Figure 8 --------------===//
//
// "The computing time for 16 processors (with 3-3 relationship vs.
// without 3-3 relationship, Random Data)". Same comparison as Figure 4
// but on the hard random workload.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 14, 16, 18, 20, 22};
constexpr std::uint64_t NumSeeds = 3;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 8: 16 nodes, with vs without 3-3, random data",
      "Virtual makespan units (mean of 3 instances); optimality is "
      "preserved whenever the matrix triples are tree-consistent.");
  std::printf("%8s %14s %14s %14s %12s\n", "species", "without-33",
              "with-33", "nodes saved", "same optimum");
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  for (int N : SpeciesSweep) {
    std::vector<double> Without, With;
    double BranchSavedTotal = 0.0;
    bool SameOptimum = true;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      ClusterSimResult A = simulateClusterBnb(M, Spec, bench::cappedBnb());
      BnbOptions ThreeThree = bench::cappedBnb();
      ThreeThree.ThreeThree = ThreeThreeMode::ThirdSpecies;
      ClusterSimResult B = simulateClusterBnb(M, Spec, ThreeThree);
      Without.push_back(A.Makespan);
      With.push_back(B.Makespan);
      BranchSavedTotal += static_cast<double>(A.Stats.Branched) -
                          static_cast<double>(B.Stats.Branched);
      SameOptimum &= std::fabs(A.Cost - B.Cost) < 1e-9;
    }
    std::printf("%8d %14.1f %14.1f %14.0f %12s\n", N, bench::mean(Without),
                bench::mean(With), BranchSavedTotal / NumSeeds,
                SameOptimum ? "yes" : "NO");
  }
}

void BM_ThreeThreeRandom(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  BnbOptions Options = bench::cappedBnb();
  Options.ThreeThree = ThreeThreeMode::ThirdSpecies;
  for (auto _ : State)
    benchmark::DoNotOptimize(simulateClusterBnb(M, Spec, Options).Cost);
}

BENCHMARK(BM_ThreeThreeRandom)->Arg(18)->Arg(22)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
