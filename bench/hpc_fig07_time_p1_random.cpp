//===- bench/hpc_fig07_time_p1_random.cpp - HPCAsia 2005, Figure 7 ---------===//
//
// "The computing time for single processor, Random Data". Paper shape:
// rapid (exponential) growth with the number of species on one
// processor — random matrices are the hard case.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 14, 16, 18, 20, 22};
constexpr std::uint64_t NumSeeds = 3;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 7: computing time, single processor, random "
      "data (0..100)",
      "Virtual makespan units (1-node baseline), 3 instances per size; "
      "expect rapid growth.");
  std::printf("%8s %12s %12s %12s\n", "species", "mean", "median", "max");
  for (int N : SpeciesSweep) {
    std::vector<double> Times;
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::unifWorkload(N, Seed);
      ClusterSimResult R = simulateSequentialBaseline(M, bench::cappedBnb());
      Times.push_back(R.Makespan);
    }
    std::printf("%8d %12.1f %12.1f %12.1f\n", N, bench::mean(Times),
                bench::median(Times), bench::maxOf(Times));
  }
}

void BM_SingleNodeRandom(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(static_cast<int>(State.range(0)), 1);
  double Makespan = 0.0;
  for (auto _ : State) {
    ClusterSimResult R = simulateSequentialBaseline(M, bench::cappedBnb());
    Makespan = R.Makespan;
    benchmark::DoNotOptimize(R.Cost);
  }
  State.counters["virtual_makespan"] = Makespan;
}

BENCHMARK(BM_SingleNodeRandom)
    ->Arg(14)
    ->Arg(18)
    ->Arg(22)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
