//===- bench/ext_pipeline_scaling.cpp - Block-scheduler scaling -----------===//
//
// Extension study: wall-clock scaling of the parallel block scheduler
// (compact/BlockScheduler.h). The workload is a "blocky" metric built so
// the compact-set decomposition yields C independent, equally hard
// condensed blocks: C planted clusters of S species each, intra-cluster
// distances uniform in [1, 20] and every cross-cluster distance exactly
// 60 — each cluster's diameter (<= 20) is strictly below its separation
// (60), so every cluster is a compact set and the root condensed matrix
// is a trivial C-wide equilateral. Almost all solve time is the per-
// cluster branch-and-bound, which is exactly what the scheduler fans
// out.
//
// For each concurrency K the pipeline must return the *identical* cost
// (the scheduler is a pure reordering of deterministic block solves;
// the run aborts if not), and the table reports speedup over the K = 1
// sequential walk. Besides the console table the run writes
// `BENCH_pipeline.json` to the working directory following the
// BENCH_*.json convention in docs/benchmarking.md.
//
// MUTK_BENCH_SMOKE=1 shrinks the workload to a seconds-long CI smoke
// run (fewer clusters, easier blocks, no timing repetitions).
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "compact/CompactSetPipeline.h"
#include "graph/CompactSets.h"
#include "obs/Metrics.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace mutk;

namespace {

/// Quantized near-equilateral intra-cluster distance: 15.0 + 0.5 * h
/// with h in 0..6 from a split-mix style hash. The coarse quantization
/// produces ties everywhere, so no strict-inequality compact subset
/// survives inside a cluster — each cluster condenses to ONE full-width
/// block — and near-equilateral matrices prune terribly, making every
/// block a genuinely heavy B&B solve.
double intraDistance(std::uint64_t Salt, int I, int J) {
  std::uint64_t H = Salt * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(I) * 2654435761ull +
                    static_cast<std::uint64_t>(J) * 40503ull;
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  return 15.0 + 0.5 * static_cast<double>(H % 7);
}

/// C compact clusters of S species each: intra-cluster quantized
/// near-equilateral distances in [15, 18], all cross-cluster distances
/// 60. Provably metric (18 <= 15 + 15 inside a cluster, 60 <= 15 + 60
/// across) and every cluster is a compact set (diameter <= 18 < 60
/// separation), so the hierarchy is exactly C hard sibling blocks under
/// a trivial equilateral root — the scheduler's ideal fan-out shape.
DistanceMatrix blockyMetric(int Clusters, int SpeciesPerCluster,
                            std::uint64_t Seed) {
  const int N = Clusters * SpeciesPerCluster;
  DistanceMatrix M(N);
  for (int C = 0; C < Clusters; ++C) {
    const std::uint64_t Salt = Seed * 1000 + static_cast<std::uint64_t>(C);
    const int Base = C * SpeciesPerCluster;
    for (int I = 0; I < SpeciesPerCluster; ++I)
      for (int J = I + 1; J < SpeciesPerCluster; ++J)
        M.set(Base + I, Base + J, intraDistance(Salt, I, J));
  }
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      if (I / SpeciesPerCluster != J / SpeciesPerCluster)
        M.set(I, J, 60.0);
  return M;
}

struct ResultRow {
  int Species = 0;
  int Blocks = 0;
  int Concurrency = 0;
  double Millis = 0.0;
  double Speedup = 1.0;
  double Cost = 0.0;
};

/// BENCH_*.json convention: {"bench":NAME,"rows":[...],"registry":{...}}.
void writeJson(const std::vector<ResultRow> &Rows) {
  std::ofstream Out("BENCH_pipeline.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_pipeline.json\n");
    return;
  }
  Out << "{\"bench\":\"ext_pipeline_scaling\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const ResultRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"species\":%d,\"blocks\":%d,\"concurrency\":%d,"
                  "\"millis\":%.2f,\"speedup\":%.3f,\"cost\":%.6f}",
                  R.Species, R.Blocks, R.Concurrency, R.Millis, R.Speedup,
                  R.Cost);
    Out << Buf;
  }
  Out << "],\"registry\":"
      << mutk::obs::MetricsRegistry::global().renderJson() << "}\n";
  std::printf("  wrote BENCH_pipeline.json (%zu rows)\n", Rows.size());
}

double timedRunMillis(const DistanceMatrix &M, int Concurrency,
                      double *OutCost) {
  PipelineOptions Options;
  Options.BlockConcurrency = Concurrency;
  auto Start = std::chrono::steady_clock::now();
  PipelineResult R = buildCompactSetTree(M, Options);
  double Millis = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  *OutCost = R.Cost;
  return Millis;
}

void printTable() {
  const bool Smoke = std::getenv("MUTK_BENCH_SMOKE") != nullptr;
  bench::banner(
      "Extension: parallel block scheduler scaling",
      "C independent hard blocks solved on K pool threads; the merged "
      "tree cost is identical for every K (asserted), only wall-clock "
      "changes. Speedup is against the K=1 sequential walk.");
  const int Clusters = Smoke ? 4 : 8;
  const int SpeciesPerCluster = Smoke ? 11 : 14;
  const int Reps = Smoke ? 1 : 3;
  DistanceMatrix M = blockyMetric(Clusters, SpeciesPerCluster, 7);
  // The workload must actually decompose into one block per cluster.
  const std::size_t Sets = findCompactSets(M).size();
  std::printf("species=%d clusters=%d compact-sets=%zu\n\n", M.size(),
              Clusters, Sets);
  std::printf("%8s %8s %12s %10s %10s\n", "blocks", "K", "median ms",
              "speedup", "cost");

  std::vector<ResultRow> Rows;
  double BaselineMillis = 0.0;
  double BaselineCost = 0.0;
  for (int K : {1, 2, 4, 8}) {
    if (Smoke && K > 4)
      break;
    std::vector<double> Times;
    double Cost = 0.0;
    for (int Rep = 0; Rep < Reps; ++Rep)
      Times.push_back(timedRunMillis(M, K, &Cost));
    double Millis = bench::median(Times);
    if (K == 1) {
      BaselineMillis = Millis;
      BaselineCost = Cost;
    } else if (std::fabs(Cost - BaselineCost) > 1e-6) {
      // The scheduler must be a pure reordering: same blocks, same
      // solves, same merged tree. A cost drift is a correctness bug,
      // not a measurement artifact.
      std::printf("  !! cost mismatch at K=%d: %.9f vs %.9f\n", K, Cost,
                  BaselineCost);
      std::exit(1);
    }
    double Speedup = Millis > 0.0 ? BaselineMillis / Millis : 1.0;
    std::printf("%8d %8d %12.1f %9.2fx %10.3f\n", Clusters, K, Millis,
                Speedup, Cost);
    Rows.push_back(
        ResultRow{M.size(), Clusters, K, Millis, Speedup, Cost});
  }
  writeJson(Rows);
}

void BM_PipelineSequentialWalk(benchmark::State &State) {
  DistanceMatrix M = blockyMetric(4, 11, 3);
  for (auto _ : State) {
    double Cost = 0.0;
    benchmark::DoNotOptimize(timedRunMillis(M, 1, &Cost));
  }
}

void BM_PipelineScheduler4(benchmark::State &State) {
  DistanceMatrix M = blockyMetric(4, 11, 3);
  for (auto _ : State) {
    double Cost = 0.0;
    benchmark::DoNotOptimize(timedRunMillis(M, 4, &Cost));
  }
}

BENCHMARK(BM_PipelineSequentialWalk)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineScheduler4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
