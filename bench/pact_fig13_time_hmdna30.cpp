//===- bench/pact_fig13_time_hmdna30.cpp - PaCT 2005, Figure 13 ------------===//
//
// "The computing time of 30 DNAs": 10 datasets of 30 DNAs. Paper claim:
// the performance profile on 30 DNAs is alike that on 26 DNAs.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "support/Stopwatch.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int NumSpecies = 30;
constexpr int NumDataSets = 10;

void printTable() {
  bench::banner(
      "PaCT 2005 Figure 13: computing time, 10 datasets x 30 DNAs",
      "Wall seconds per dataset; expected to look like the 26-DNA runs "
      "(Figure 11).");
  std::printf("%8s %14s %14s %12s\n", "dataset", "without-cs(s)",
              "with-cs(s)", "branched-wo");
  for (int Set = 1; Set <= NumDataSets; ++Set) {
    DistanceMatrix M =
        bench::hmdnaWorkload(NumSpecies, static_cast<std::uint64_t>(Set));
    Stopwatch W;
    MutResult Full = solveMutSequential(M, bench::cappedBnb());
    double TWithout = W.seconds();
    W.restart();
    PipelineResult Fast = buildCompactSetTree(M);
    double TWith = W.seconds();
    benchmark::DoNotOptimize(Full.Cost + Fast.Cost);
    std::printf("%8d %14.4f %14.4f %12llu\n", Set, TWithout, TWith,
                static_cast<unsigned long long>(Full.Stats.Branched));
  }
}

void BM_Hmdna30Without(benchmark::State &State) {
  DistanceMatrix M = bench::hmdnaWorkload(
      NumSpecies, static_cast<std::uint64_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutSequential(M, bench::cappedBnb()).Cost);
}

void BM_Hmdna30With(benchmark::State &State) {
  DistanceMatrix M = bench::hmdnaWorkload(
      NumSpecies, static_cast<std::uint64_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(buildCompactSetTree(M).Cost);
}

BENCHMARK(BM_Hmdna30Without)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hmdna30With)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
