//===- bench/hpc_fig03_speedup_hmdna.cpp - HPCAsia 2005, Figure 3 ----------===//
//
// "Speedup (16 processors vs. single processor, HMDNA)". Paper claim:
// the parallel B&B achieves super-linear speedup on some instances —
// early upper-bound sharing prunes work the sequential order never
// avoids. Speedup here is the ratio of virtual makespans.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "sim/ClusterSim.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

constexpr int SpeciesSweep[] = {12, 16, 20, 24, 26};
constexpr std::uint64_t NumSeeds = 5;

void printTable() {
  bench::banner(
      "HPCAsia 2005 Figure 3: speedup 16 vs 1 node, HMDNA",
      "Speedup = makespan(1 node) / makespan(16 nodes); > 16 is "
      "super-linear (the paper's headline observation). Sequential and "
      "parallel branched-node counts explain the effect.");
  std::printf("%8s %6s %10s %10s %10s %10s %8s\n", "species", "seed",
              "seq-time", "par-time", "seq-br", "par-br", "speedup");
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  int SuperLinear = 0, Total = 0;
  for (int N : SpeciesSweep) {
    for (std::uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      DistanceMatrix M = bench::hardDnaWorkload(N, Seed);
      ClusterSimResult Seq =
          simulateSequentialBaseline(M, bench::cappedBnb());
      ClusterSimResult Par = simulateClusterBnb(M, Spec, bench::cappedBnb());
      double Speedup = Par.Makespan > 0 ? Seq.Makespan / Par.Makespan : 1.0;
      ++Total;
      if (Speedup > 16.0)
        ++SuperLinear;
      std::printf("%8d %6llu %10.1f %10.1f %10llu %10llu %8.2f%s\n", N,
                  static_cast<unsigned long long>(Seed), Seq.Makespan,
                  Par.Makespan,
                  static_cast<unsigned long long>(Seq.Stats.Branched),
                  static_cast<unsigned long long>(Par.Stats.Branched),
                  Speedup, Speedup > 16.0 ? "  <-- super-linear" : "");
    }
  }
  std::printf("\nsuper-linear cases: %d of %d\n", SuperLinear, Total);
}

void BM_SpeedupPairHmdna(benchmark::State &State) {
  DistanceMatrix M =
      bench::hardDnaWorkload(static_cast<int>(State.range(0)), 1);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  double Speedup = 0.0;
  for (auto _ : State) {
    ClusterSimResult Seq = simulateSequentialBaseline(M, bench::cappedBnb());
    ClusterSimResult Par = simulateClusterBnb(M, Spec, bench::cappedBnb());
    Speedup = Par.Makespan > 0 ? Seq.Makespan / Par.Makespan : 1.0;
    benchmark::DoNotOptimize(Speedup);
  }
  State.counters["speedup"] = Speedup;
}

BENCHMARK(BM_SpeedupPairHmdna)->Arg(20)->Arg(26)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
