//===- bench/ext_message_traffic.cpp - MP protocol traffic ------------------===//
//
// Extension study: communication volume of the message-passing B&B
// protocol (mp/MpBnb.h) as the worker count grows. The original system
// ran over 100 Mbps Ethernet, so the papers care about message overhead
// (load balancing "without letting computing nodes idle" while keeping
// traffic small); this table shows messages/bytes per solve and the
// donation/request counts behind the two-level pool design.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "mp/MpBnb.h"

#include <benchmark/benchmark.h>

using namespace mutk;

namespace {

void printTable() {
  bench::banner(
      "Extension: message traffic of the master/slave protocol",
      "Messages and payload bytes per full solve; pulls = Work grants, "
      "donations = worst-node transfers to the global pool.");
  std::printf("%8s %8s | %10s %12s %10s %10s | %12s\n", "species",
              "workers", "messages", "bytes", "pulls", "donations",
              "branched");
  for (int N : {14, 18}) {
    DistanceMatrix M = bench::unifWorkload(N, 1);
    for (int Workers : {1, 2, 4, 8, 16}) {
      MpMutResult R = solveMutMessagePassing(M, Workers);
      std::uint64_t Pulls = 0, Donations = 0;
      for (const WorkerStats &W : R.Workers) {
        Pulls += W.PulledFromGlobal;
        Donations += W.DonatedToGlobal;
      }
      std::printf("%8d %8d | %10llu %12llu %10llu %10llu | %12llu\n", N,
                  Workers,
                  static_cast<unsigned long long>(R.MessagesSent),
                  static_cast<unsigned long long>(R.BytesSent),
                  static_cast<unsigned long long>(Pulls),
                  static_cast<unsigned long long>(Donations),
                  static_cast<unsigned long long>(R.Stats.Branched));
    }
  }
}

void BM_MessagePassingSolve(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(14, 1);
  int Workers = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutMessagePassing(M, Workers).Cost);
}

BENCHMARK(BM_MessagePassingSolve)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
