//===- bench/ext_message_traffic.cpp - MP protocol traffic ------------------===//
//
// Extension study: communication volume of the message-passing B&B
// protocol (mp/MpBnb.h) as the worker count grows. The original system
// ran over 100 Mbps Ethernet, so the papers care about message overhead
// (load balancing "without letting computing nodes idle" while keeping
// traffic small); this table shows messages/bytes per solve and the
// donation/request counts behind the two-level pool design.
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "mp/MpBnb.h"
#include "obs/Metrics.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <vector>

using namespace mutk;

namespace {

/// One per-tag measurement of one (species, workers) solve, flattened
/// for BENCH_mp.json.
struct TrafficRow {
  int Species = 0;
  int Workers = 0;
  int Tag = 0;
  const char *TagName = "?";
  std::uint64_t Messages = 0;
  std::uint64_t Bytes = 0;
};

/// BENCH_*.json convention: {"bench":NAME,"rows":[...],"registry":{...}}.
/// Each row is one protocol tag of one solve, so the message/byte mix
/// by tag (Init vs Work vs Bound vs steal frames) is machine-readable.
void writeJson(const std::vector<TrafficRow> &Rows) {
  std::ofstream Out("BENCH_mp.json", std::ios::trunc);
  if (!Out) {
    std::printf("  !! could not write BENCH_mp.json\n");
    return;
  }
  Out << "{\"bench\":\"ext_message_traffic\",\"rows\":[";
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const TrafficRow &R = Rows[I];
    if (I > 0)
      Out << ",";
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"species\":%d,\"workers\":%d,\"tag\":%d,"
                  "\"tag_name\":\"%s\",\"messages\":%llu,\"bytes\":%llu}",
                  R.Species, R.Workers, R.Tag, R.TagName,
                  static_cast<unsigned long long>(R.Messages),
                  static_cast<unsigned long long>(R.Bytes));
    Out << Buf;
  }
  Out << "],\"registry\":"
      << mutk::obs::MetricsRegistry::global().renderJson() << "}\n";
  std::printf("  wrote BENCH_mp.json (%zu rows)\n", Rows.size());
}

void printTable() {
  const bool Smoke = std::getenv("MUTK_BENCH_SMOKE") != nullptr;
  bench::banner(
      "Extension: message traffic of the master/slave protocol",
      "Messages and payload bytes per full solve; pulls = Work grants, "
      "donations = worst-node transfers to the global pool. Per-tag "
      "counts land in BENCH_mp.json.");
  std::printf("%8s %8s | %10s %12s %10s %10s | %12s\n", "species",
              "workers", "messages", "bytes", "pulls", "donations",
              "branched");
  const std::vector<int> Species = Smoke ? std::vector<int>{12}
                                         : std::vector<int>{14, 18};
  const std::vector<int> WorkerSweep =
      Smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
  std::vector<TrafficRow> Rows;
  for (int N : Species) {
    DistanceMatrix M = bench::unifWorkload(N, 1);
    for (int Workers : WorkerSweep) {
      MpMutResult R = solveMutMessagePassing(M, Workers);
      std::uint64_t Pulls = 0, Donations = 0;
      for (const WorkerStats &W : R.Workers) {
        Pulls += W.PulledFromGlobal;
        Donations += W.DonatedToGlobal;
      }
      std::printf("%8d %8d | %10llu %12llu %10llu %10llu | %12llu\n", N,
                  Workers,
                  static_cast<unsigned long long>(R.MessagesSent),
                  static_cast<unsigned long long>(R.BytesSent),
                  static_cast<unsigned long long>(Pulls),
                  static_cast<unsigned long long>(Donations),
                  static_cast<unsigned long long>(R.Stats.Branched));
      for (const TagTraffic &T : R.Traffic)
        Rows.push_back({N, Workers, T.Tag, mpTagName(T.Tag), T.Messages,
                        T.Bytes});
    }
  }
  writeJson(Rows);
}

void BM_MessagePassingSolve(benchmark::State &State) {
  DistanceMatrix M = bench::unifWorkload(14, 1);
  int Workers = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(solveMutMessagePassing(M, Workers).Cost);
}

BENCHMARK(BM_MessagePassingSolve)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
