//===- examples/redistribution_demo.cpp - SCPA walkthrough ----------------===//
//
// Walks the APPT 2005 companion paper's running example: the GEN_BLOCK
// redistribution of a 101-element array over 8 processors (its Figure
// 1), the fifteen induced messages, the maximum-degree message sets and
// conflict points, and the schedules produced by SCPA and the baselines.
//
// Run:  ./build/examples/redistribution_demo
//
//===----------------------------------------------------------------------===//

#include "redist/Baselines.h"
#include "redist/Scpa.h"

#include <cstdio>

using namespace mutk;

namespace {

void printSchedule(const char *Name, const RedistSchedule &Schedule,
                   const std::vector<RedistMessage> &Messages) {
  std::printf("%s: %d steps, total step maxima %ld\n", Name,
              Schedule.numSteps(), Schedule.totalStepMaxima(Messages));
  for (int Step = 0; Step < Schedule.numSteps(); ++Step) {
    std::printf("  step %d:", Step + 1);
    long Max = 0;
    for (int Index : Schedule.Steps[static_cast<std::size_t>(Step)]) {
      std::printf(" m%d(%ld)", Index + 1,
                  Messages[static_cast<std::size_t>(Index)].Size);
      Max = std::max(Max, Messages[static_cast<std::size_t>(Index)].Size);
    }
    std::printf("   [max %ld]\n", Max);
  }
}

} // namespace

int main() {
  // The paper's Figure 1 distributions.
  GenBlock Source{{12, 20, 15, 14, 11, 9, 9, 11}};
  GenBlock Dest{{17, 10, 13, 6, 17, 12, 11, 15}};
  std::printf("source sizes:");
  for (long S : Source.Sizes)
    std::printf(" %ld", S);
  std::printf("\ndest sizes:  ");
  for (long S : Dest.Sizes)
    std::printf(" %ld", S);

  std::vector<RedistMessage> Messages = generateMessages(Source, Dest);
  std::printf("\n\nmessages (paper Figure 2):\n");
  for (std::size_t I = 0; I < Messages.size(); ++I)
    std::printf("  m%-2zu SP%d -> DP%d  size %ld\n", I + 1,
                Messages[I].Source, Messages[I].Dest, Messages[I].Size);

  ScpaAnalysis Analysis = analyzeConflicts(Messages, 8);
  std::printf("\nmax degree (minimum steps): %d\n", Analysis.MaxDegree);
  std::printf("maximum degree message sets:\n");
  for (const Mdms &Set : Analysis.Sets) {
    std::printf("  %s%d: {", Set.IsSender ? "SP" : "DP", Set.Processor);
    for (std::size_t I = 0; I < Set.MessageIndices.size(); ++I)
      std::printf("%sm%d", I ? "," : "", Set.MessageIndices[I] + 1);
    std::printf("}\n");
  }
  std::printf("explicit conflict points:");
  for (int Index : Analysis.ExplicitConflicts)
    std::printf(" m%d", Index + 1);
  std::printf("\nimplicit conflict points:");
  for (int Index : Analysis.ImplicitConflicts)
    std::printf(" m%d", Index + 1);
  std::printf("\n\n");

  printSchedule("SCPA", scheduleScpa(Messages, 8), Messages);
  printSchedule("divide-and-conquer", scheduleDivideConquer(Messages, 8),
                Messages);
  printSchedule("first-fit decreasing", scheduleGreedyFfd(Messages, 8),
                Messages);
  printSchedule("naive (array order)", scheduleNaive(Messages, 8), Messages);
  return 0;
}
