//===- examples/quickstart.cpp - 60-second tour of the library -----------===//
//
// Builds a small distance matrix, constructs trees with every method, and
// prints costs and Newick strings. Run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/TreeBuilder.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "tree/Newick.h"

#include <cstdio>

using namespace mutk;

int main() {
  // A 12-species planted-cluster metric: the kind of input where compact
  // sets shine (values scaled to the papers' 0..100 range).
  DistanceMatrix M = scaledToMax(plantedClusterMetric(12, /*Seed=*/7), 100.0);
  std::printf("species: %d, metric: %s\n", M.size(),
              isMetric(M) ? "yes" : "no");

  const BuildMethod Methods[] = {
      BuildMethod::Upgma,          BuildMethod::Upgmm,
      BuildMethod::ExactSequential, BuildMethod::CompactSets,
  };

  for (BuildMethod Method : Methods) {
    BuildOptions Options;
    Options.Method = Method;
    BuildOutcome Out = buildTree(M, Options);
    std::printf("%-22s cost=%9.3f exact=%s branched=%llu\n",
                Out.MethodName.c_str(), Out.Cost, Out.Exact ? "yes" : "no ",
                static_cast<unsigned long long>(Out.Stats.Branched));
    if (Method == BuildMethod::CompactSets) {
      std::printf("  compact sets found: %zu, blocks solved: %zu\n",
                  Out.Pipeline.Sets.size(), Out.Pipeline.Blocks.size());
      std::printf("  newick: %s\n", toNewick(Out.Tree).c_str());
    }
  }
  return 0;
}
