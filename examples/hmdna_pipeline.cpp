//===- examples/hmdna_pipeline.cpp - DNA to evolutionary tree -------------===//
//
// The full biology-facing pipeline of the papers: simulate mitochondrial
// DNA sequences evolving on a (hidden) true tree, derive the
// edit-distance matrix, construct trees with the exact B&B and with the
// compact-set technique, and compare both against each other and against
// the true tree (Robinson-Foulds).
//
// Run:  ./build/examples/hmdna_pipeline [num_species] [seed]
//
//===----------------------------------------------------------------------===//

#include "bnb/SequentialBnb.h"
#include "bnb/Topology.h"
#include "compact/CompactSetPipeline.h"
#include "matrix/MatrixIO.h"
#include "seq/Alignment.h"
#include "seq/EvolutionSim.h"
#include "support/Stopwatch.h"
#include "tree/AsciiTree.h"
#include "tree/Newick.h"
#include "tree/RobinsonFoulds.h"

#include <cstdio>
#include <cstdlib>

using namespace mutk;

int main(int argc, char **argv) {
  int NumSpecies = argc > 1 ? std::atoi(argv[1]) : 16;
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  if (NumSpecies < 2 || NumSpecies > MaxBnbSpecies) {
    std::fprintf(stderr, "usage: %s [species 2..64] [seed]\n", argv[0]);
    return 1;
  }

  // 1. Evolve sequences along a hidden true tree.
  EvolutionResult Sim = simulateEvolution(NumSpecies, Seed);
  std::printf("simulated %d species; first sequence (%zu bp):\n  %.60s...\n",
              NumSpecies, Sim.Sequences[0].size(), Sim.Sequences[0].c_str());
  std::printf("true tree: %s\n\n", toNewick(Sim.TrueTree).c_str());

  // 1b. Show how two sequences relate: global alignment of the first
  // pair (the per-pair computation behind every matrix entry).
  if (NumSpecies >= 2) {
    Alignment Al = alignGlobal(Sim.Sequences[0], Sim.Sequences[1],
                               editDistanceScoring());
    std::printf("alignment dna0 vs dna1: %d edit ops, %.1f%% identity\n",
                Al.editOperations(), 100.0 * Al.identity());
    std::string Pretty = formatAlignment(Al, 60);
    // Print only the first block to keep the output short.
    std::size_t FirstBlock = Pretty.find('\n');
    FirstBlock = Pretty.find('\n', FirstBlock + 1);
    FirstBlock = Pretty.find('\n', FirstBlock + 1);
    std::printf("%.*s\n\n", static_cast<int>(FirstBlock), Pretty.c_str());
  }

  // 2. Edit-distance matrix.
  Stopwatch W;
  DistanceMatrix M = editDistanceMatrix(Sim.Sequences, Sim.Names);
  std::printf("edit-distance matrix built in %.3fs (%d x %d)\n", W.seconds(),
              M.size(), M.size());

  // 3. Exact minimum ultrametric tree (Algorithm BBU).
  W.restart();
  BnbOptions Options;
  Options.MaxBranchedNodes = 4'000'000;
  MutResult Exact = solveMutSequential(M, Options);
  double ExactTime = W.seconds();

  // 4. The fast technique: compact sets.
  W.restart();
  PipelineResult Fast = buildCompactSetTree(M);
  double FastTime = W.seconds();

  std::printf("\n%-16s %10s %10s %10s %14s\n", "method", "cost", "time(s)",
              "branched", "RF-to-true");
  std::printf("%-16s %10.2f %10.3f %10llu %14.3f\n", "exact B&B",
              Exact.Cost, ExactTime,
              static_cast<unsigned long long>(Exact.Stats.Branched),
              normalizedRfDistance(Exact.Tree, Sim.TrueTree));
  std::printf("%-16s %10.2f %10.3f %10llu %14.3f\n", "compact sets",
              Fast.Cost, FastTime,
              static_cast<unsigned long long>(Fast.TotalStats.Branched),
              normalizedRfDistance(Fast.Tree, Sim.TrueTree));

  std::printf("\ncompact sets found: %zu, cost gap to optimum: %.2f%%, "
              "RF(exact, compact): %.3f\n",
              Fast.Sets.size(),
              Exact.Cost > 0 ? 100.0 * (Fast.Cost - Exact.Cost) / Exact.Cost
                             : 0.0,
              normalizedRfDistance(Exact.Tree, Fast.Tree));
  std::printf("\nexact tree:   %s\n", toNewick(Exact.Tree).c_str());
  std::printf("compact tree: %s\n", toNewick(Fast.Tree).c_str());
  std::printf("\nexact tree rendered:\n%s", toAsciiTree(Exact.Tree).c_str());
  return 0;
}
