//===- examples/compact_sets_tour.cpp - The paper's worked example --------===//
//
// Walks the PaCT 2005 paper's running example (Figures 3-6) on a
// six-species matrix with the same structure: prints the Kruskal MST,
// every compact set with its witnesses, the laminar hierarchy, the
// condensed matrices D', and the final merged ultrametric tree.
//
// Run:  ./build/examples/compact_sets_tour
//
//===----------------------------------------------------------------------===//

#include "compact/CompactSetPipeline.h"
#include "graph/Hierarchy.h"
#include "graph/Mst.h"
#include "matrix/MatrixIO.h"
#include "matrix/MetricUtils.h"
#include "tree/Newick.h"

#include <cstdio>
#include <sstream>

using namespace mutk;

namespace {

/// Six species arranged like the paper's Figure 3 graph: the MST edge
/// order and the compact-set family match the paper's worked example.
DistanceMatrix paperExample() {
  DistanceMatrix M(6);
  // Species 0..5 play the paper's vertices 1..6.
  M.set(0, 1, 3);
  M.set(0, 2, 1);
  M.set(0, 3, 9);
  M.set(0, 4, 4.5);
  M.set(0, 5, 9);
  M.set(1, 2, 3.5);
  M.set(1, 3, 9);
  M.set(1, 4, 4.5);
  M.set(1, 5, 9);
  M.set(2, 3, 9);
  M.set(2, 4, 4);
  M.set(2, 5, 9);
  M.set(3, 4, 6);
  M.set(3, 5, 2);
  M.set(4, 5, 5);
  return M;
}

void printMembers(const std::vector<int> &Members) {
  std::printf("{");
  for (std::size_t I = 0; I < Members.size(); ++I)
    std::printf("%s%d", I ? "," : "", Members[I]);
  std::printf("}");
}

} // namespace

int main() {
  DistanceMatrix M = paperExample();
  std::printf("Distance matrix (a metric: %s):\n%s\n",
              isMetric(M) ? "yes" : "no", matrixToString(M).c_str());

  // Step 1 (paper Fig. 4): the minimum spanning tree via Kruskal.
  std::printf("Kruskal MST edges (ascending):\n");
  for (const WeightedEdge &E : kruskalMst(M))
    std::printf("  (%d, %d)  weight %.2f\n", E.U, E.V, E.Weight);

  // Step 2 (paper Fig. 5): all compact sets.
  std::vector<CompactSet> Sets = findCompactSets(M);
  std::printf("\nCompact sets (max inside < min outgoing):\n");
  for (const CompactSet &Set : Sets) {
    std::printf("  ");
    printMembers(Set.Members);
    std::printf("  max-inside %.2f < min-outgoing %.2f\n", Set.MaxInside,
                Set.MinOutgoing);
  }

  // Step 3: the laminar hierarchy and its condensed matrices D'
  // (paper Fig. 6 shows the 'maximum' matrix of C4).
  CompactHierarchy Hierarchy(M.size(), Sets);
  std::printf("\nHierarchy and condensed 'maximum' matrices D':\n");
  for (int Id : Hierarchy.internalNodesTopDown()) {
    std::printf("node ");
    printMembers(Hierarchy.node(Id).Species);
    std::printf(" splits into blocks: ");
    for (const auto &Block : Hierarchy.partitionAt(Id)) {
      printMembers(Block);
      std::printf(" ");
    }
    DistanceMatrix D =
        condense(M, Hierarchy.partitionAt(Id), CondenseMode::Maximum);
    std::printf("\n%s", matrixToString(D).c_str());
  }

  // Step 4-5: solve every D' and merge.
  PipelineResult R = buildCompactSetTree(M);
  std::printf("\nMerged ultrametric tree (cost %.3f, feasible: %s):\n  %s\n",
              R.Cost, R.Tree.dominatesMatrix(M) ? "yes" : "no",
              toNewick(R.Tree).c_str());
  return 0;
}
