//===- examples/mutkd.cpp - Tree-construction daemon ----------------------===//
//
// The long-lived service binary: a TreeService worker pool behind a
// Unix or TCP socket. Clients (examples/mutk_client.cpp or anything
// speaking the framed protocol of docs/service.md) submit matrices or
// generator specs and receive Newick trees; repeated or relabeled
// queries are answered from the result cache without re-running
// branch-and-bound.
//
// Usage:
//   mutkd --unix PATH | --port N [--host A.B.C.D]
//         [--workers N] [--queue N] [--cache N] [--max-species N]
//
// The daemon runs until a client sends the Shutdown verb (or SIGINT /
// SIGTERM arrives), then drains in-flight jobs and exits 0.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace mutk;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --unix PATH | --port N [--host IPV4]\n"
               "       [--workers N] [--queue N] [--cache N]"
               " [--max-species N]\n",
               Argv0);
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string UnixPath, Host = "127.0.0.1";
  int Port = -1;
  ServiceOptions Options;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *V = nullptr;
    if (Arg == "--unix" && (V = next()))
      UnixPath = V;
    else if (Arg == "--port" && (V = next()))
      Port = std::atoi(V);
    else if (Arg == "--host" && (V = next()))
      Host = V;
    else if (Arg == "--workers" && (V = next()))
      Options.NumWorkers = std::atoi(V);
    else if (Arg == "--queue" && (V = next()))
      Options.QueueCapacity = static_cast<std::size_t>(std::atoll(V));
    else if (Arg == "--cache" && (V = next()))
      Options.CacheCapacity = static_cast<std::size_t>(std::atoll(V));
    else if (Arg == "--max-species" && (V = next()))
      Options.MaxSpecies = std::atoi(V);
    else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                   Arg.c_str());
      return usage(argv[0]);
    }
  }
  if (UnixPath.empty() && Port < 0)
    return usage(argv[0]);

  // Block SIGINT/SIGTERM before any thread exists: every thread the
  // service spawns inherits this mask, so a process-directed signal can
  // only be consumed by the dedicated sigwait thread below. Masking
  // after the pools start would leave a window where a signal lands on
  // a worker and kills the process with the default disposition.
  sigset_t Signals;
  sigemptyset(&Signals);
  sigaddset(&Signals, SIGINT);
  sigaddset(&Signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &Signals, nullptr);

  TreeService Service(Options);
  SocketServer Server(Service);
  std::string Error;
  if (!UnixPath.empty()) {
    if (!Server.listenUnix(UnixPath, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("mutkd: listening on unix socket %s\n", UnixPath.c_str());
  } else {
    if (!Server.listenTcp(Host, Port, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("mutkd: listening on %s:%d\n", Host.c_str(), Server.port());
  }
  std::printf("mutkd: %d workers, queue %zu, cache %zu entries\n",
              Options.NumWorkers, Options.QueueCapacity,
              Options.CacheCapacity);
  std::fflush(stdout);

  // Route the blocked SIGINT/SIGTERM through a dedicated sigwait
  // thread: handlers cannot safely stop a server, a blocked thread can.
  // The thread is detached — if shutdown arrives by protocol verb
  // instead, it is still parked in sigwait at exit, which is harmless.
  std::thread([&Server, Signals]() mutable {
    int Sig = 0;
    sigwait(&Signals, &Sig);
    Server.stop();
  }).detach();

  Server.start();
  Server.waitForShutdown();
  Server.stop();
  Service.stop();

  StatsSnapshot S = Service.stats();
  std::printf("mutkd: served %llu jobs (%llu ok, %llu failed), "
              "whole-cache %llu/%llu, block-cache %llu/%llu, "
              "p50 %.2fms p95 %.2fms\n",
              static_cast<unsigned long long>(S.Accepted),
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.Failed),
              static_cast<unsigned long long>(S.WholeHits),
              static_cast<unsigned long long>(S.WholeHits + S.WholeMisses),
              static_cast<unsigned long long>(S.BlockHits),
              static_cast<unsigned long long>(S.BlockHits + S.BlockMisses),
              S.P50Millis, S.P95Millis);
  return 0;
}
