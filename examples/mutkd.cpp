//===- examples/mutkd.cpp - Tree-construction daemon ----------------------===//
//
// The long-lived service binary: a TreeService worker pool behind a
// Unix or TCP socket. Clients (examples/mutk_client.cpp or anything
// speaking the framed protocol of docs/service.md) submit matrices or
// generator specs and receive Newick trees; repeated or relabeled
// queries are answered from the result cache without re-running
// branch-and-bound.
//
// Usage:
//   mutkd --unix PATH | --port N [--host A.B.C.D]
//         [--workers N] [--queue N] [--cache N] [--max-species N]
//         [--block-solver seq|threaded|cluster]
//         [--block-concurrency N] [--threads-per-block N]
//         [--incremental [--incremental-bases N]]
//         [--qos [--qos-tenant-rate R] [--qos-tenant-burst B]
//          [--qos-degraded-max-exact N] [--qos-fit-margin F]
//          [--qos-starvation-ms MS] [--qos-no-coalesce]]
//         [--stats-dump PATH [--stats-interval SEC]]
//         [--state-dir DIR]
//         [--cluster-id N --cluster-peers host:port,host:port,...
//          [--cluster-port N] [--cluster-heartbeat SEC]
//          [--cluster-dead-after SEC] [--cluster-no-steal]]
//
// --qos enables the cost-predictive QoS layer (docs/qos.md): requests
// are routed to an exact, degraded-pipeline or heuristic tier by
// predicted cost vs their deadline, hopeless requests are shed up
// front, per-tenant token buckets bound admission rates, the ready
// queue serves priority/EDF order with per-tenant fair sharing, and
// identical in-flight requests coalesce onto one solve.
//
// With --cluster-id/--cluster-peers the daemon also joins a mutkd
// cluster (docs/distributed.md): the peers heartbeat each other over a
// second listener (the port named in the seed list, separate from the
// client --port), shard the result cache by consistent hashing, and
// steal queued jobs from each other when idle.
//
// The daemon runs until a client sends the Shutdown verb (or SIGINT /
// SIGTERM arrives), then drains in-flight jobs and exits 0. Startup,
// shutdown and per-connection events are structured log records on
// stderr (key=value, levels via MUTK_LOG — see docs/observability.md);
// --stats-dump atomically rewrites a Prometheus-style text file with
// every registry metric each interval (default 10s) and once on exit.
// --state-dir makes the daemon crash-safe: solved results persist in a
// snapshot + WAL and are served as cache hits after a restart, accepted
// jobs are journaled and re-run if the process dies mid-solve, and long
// block searches checkpoint so a restart resumes instead of restarting
// them (formats and recovery semantics in docs/persistence.md).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "dist/Cluster.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "support/Audit.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

using namespace mutk;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --unix PATH | --port N [--host IPV4]\n"
               "       [--workers N] [--queue N] [--cache N]"
               " [--max-species N]\n"
               "       [--block-solver seq|threaded|cluster]\n"
               "       [--block-concurrency N] [--threads-per-block N]\n"
               "       [--incremental [--incremental-bases N]]\n"
               "       [--qos [--qos-tenant-rate R] [--qos-tenant-burst B]\n"
               "        [--qos-degraded-max-exact N] [--qos-fit-margin F]\n"
               "        [--qos-starvation-ms MS] [--qos-no-coalesce]]\n"
               "       [--stats-dump PATH [--stats-interval SEC]]"
               " [--state-dir DIR]\n"
               "       [--cluster-id N --cluster-peers HOST:PORT,...]\n"
               "       [--cluster-port N] [--cluster-heartbeat SEC]"
               " [--cluster-dead-after SEC] [--cluster-no-steal]\n",
               Argv0);
  return 1;
}

/// Compile-time build flavor for the startup record: optimization level
/// plus whichever sanitizer/audit layers this binary carries.
std::string buildFlavor() {
#ifdef NDEBUG
  std::string Flavor = "release";
#else
  std::string Flavor = "debug";
#endif
#if MUTK_AUDIT_ENABLED
  Flavor += "+audit";
#endif
#if defined(__SANITIZE_ADDRESS__)
  Flavor += "+asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  Flavor += "+asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  Flavor += "+tsan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  Flavor += "+tsan";
#endif
#endif
  return Flavor;
}

/// Writes the full registry in Prometheus text exposition to \p Path,
/// atomically (temp file + rename) so scrapers never read a torn file.
void dumpStats(const std::string &Path) {
  std::string Temp = Path + ".tmp";
  {
    std::ofstream Out(Temp, std::ios::trunc);
    if (!Out) {
      obs::log(obs::LogLevel::Warn, "mutkd", "stats dump failed")
          .kv("path", Temp);
      return;
    }
    Out << obs::MetricsRegistry::global().renderPrometheus();
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0)
    obs::log(obs::LogLevel::Warn, "mutkd", "stats dump rename failed")
        .kv("from", Temp)
        .kv("to", Path);
}

/// Periodic stats writer; interruptible sleep so shutdown never waits a
/// full interval.
class StatsDumper {
public:
  StatsDumper(std::string Path, int IntervalSeconds)
      : Path(std::move(Path)), IntervalSeconds(IntervalSeconds),
        Worker([this] { run(); }) {}

  ~StatsDumper() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    Cv.notify_all();
    Worker.join();
    dumpStats(Path); // final totals, post-drain
  }

private:
  void run() {
    std::unique_lock<std::mutex> Lock(Mu);
    while (!Stopping) {
      Lock.unlock();
      dumpStats(Path);
      Lock.lock();
      Cv.wait_for(Lock, std::chrono::seconds(IntervalSeconds),
                  [this] { return Stopping; });
    }
  }

  std::string Path;
  int IntervalSeconds;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
  std::thread Worker;
};

} // namespace

int main(int argc, char **argv) {
  std::string UnixPath, Host = "127.0.0.1";
  std::string StatsDumpPath;
  int StatsIntervalSeconds = 10;
  int Port = -1;
  ServiceOptions Options;
  dist::ClusterOptions Cluster;
  std::string ClusterPeersText;
  int ClusterId = -1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *V = nullptr;
    if (Arg == "--unix" && (V = next()))
      UnixPath = V;
    else if (Arg == "--port" && (V = next()))
      Port = std::atoi(V);
    else if (Arg == "--host" && (V = next()))
      Host = V;
    else if (Arg == "--workers" && (V = next()))
      Options.NumWorkers = std::atoi(V);
    else if (Arg == "--queue" && (V = next()))
      Options.QueueCapacity = static_cast<std::size_t>(std::atoll(V));
    else if (Arg == "--cache" && (V = next()))
      Options.CacheCapacity = static_cast<std::size_t>(std::atoll(V));
    else if (Arg == "--max-species" && (V = next()))
      Options.MaxSpecies = std::atoi(V);
    else if (Arg == "--block-solver" && (V = next())) {
      if (std::strcmp(V, "seq") == 0)
        Options.Solver = BlockSolver::Sequential;
      else if (std::strcmp(V, "threaded") == 0)
        Options.Solver = BlockSolver::Threaded;
      else if (std::strcmp(V, "cluster") == 0)
        Options.Solver = BlockSolver::SimulatedCluster;
      else {
        std::fprintf(stderr, "unknown --block-solver '%s'\n", V);
        return usage(argv[0]);
      }
    } else if (Arg == "--block-concurrency" && (V = next()))
      Options.BlockConcurrency = std::max(0, std::atoi(V));
    else if (Arg == "--threads-per-block" && (V = next()))
      Options.ThreadsPerBlock = std::max(0, std::atoi(V));
    else if (Arg == "--incremental")
      Options.Incremental = true;
    else if (Arg == "--incremental-bases" && (V = next()))
      Options.IncrementalBases =
          static_cast<std::size_t>(std::max(1, std::atoi(V)));
    else if (Arg == "--qos")
      Options.Qos.Enabled = true;
    else if (Arg == "--qos-tenant-rate" && (V = next()))
      Options.Qos.TenantRatePerSec = std::max(0.0, std::atof(V));
    else if (Arg == "--qos-tenant-burst" && (V = next()))
      Options.Qos.TenantBurst = std::max(1.0, std::atof(V));
    else if (Arg == "--qos-degraded-max-exact" && (V = next()))
      Options.Qos.DegradedMaxExactBlockSize = std::max(1, std::atoi(V));
    else if (Arg == "--qos-fit-margin" && (V = next()))
      Options.Qos.FitMargin = std::max(1.0, std::atof(V));
    else if (Arg == "--qos-starvation-ms" && (V = next()))
      Options.QosStarvationMillis = std::max(0.0, std::atof(V));
    else if (Arg == "--qos-no-coalesce")
      Options.QosCoalesce = false;
    else if (Arg == "--stats-dump" && (V = next()))
      StatsDumpPath = V;
    else if (Arg == "--stats-interval" && (V = next()))
      StatsIntervalSeconds = std::max(1, std::atoi(V));
    else if (Arg == "--state-dir" && (V = next()))
      Options.StateDir = V;
    else if (Arg == "--cluster-id" && (V = next()))
      ClusterId = std::atoi(V);
    else if (Arg == "--cluster-peers" && (V = next()))
      ClusterPeersText = V;
    else if (Arg == "--cluster-port" && (V = next()))
      Cluster.ListenPort = std::atoi(V);
    else if (Arg == "--cluster-heartbeat" && (V = next()))
      Cluster.HeartbeatSeconds = std::max(0.01, std::atof(V));
    else if (Arg == "--cluster-dead-after" && (V = next()))
      Cluster.DeadAfterSeconds = std::max(0.1, std::atof(V));
    else if (Arg == "--cluster-no-steal")
      Cluster.StealJobs = false;
    else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                   Arg.c_str());
      return usage(argv[0]);
    }
  }
  if (UnixPath.empty() && Port < 0)
    return usage(argv[0]);
  bool ClusterMode = ClusterId >= 0 || !ClusterPeersText.empty();
  if (ClusterMode) {
    if (ClusterId < 0 || ClusterPeersText.empty()) {
      std::fprintf(stderr,
                   "--cluster-id and --cluster-peers go together\n");
      return usage(argv[0]);
    }
    auto Peers = dist::parsePeerList(ClusterPeersText);
    if (!Peers) {
      std::fprintf(stderr, "malformed --cluster-peers '%s'\n",
                   ClusterPeersText.c_str());
      return usage(argv[0]);
    }
    if (ClusterId >= static_cast<int>(Peers->size())) {
      std::fprintf(stderr,
                   "--cluster-id %d out of range for %zu peers\n",
                   ClusterId, Peers->size());
      return usage(argv[0]);
    }
    Cluster.SelfId = ClusterId;
    Cluster.Peers = std::move(*Peers);
  }

  // Block SIGINT/SIGTERM before any thread exists: every thread the
  // service spawns inherits this mask, so a process-directed signal can
  // only be consumed by the dedicated sigwait thread below. Masking
  // after the pools start would leave a window where a signal lands on
  // a worker and kills the process with the default disposition.
  sigset_t Signals;
  sigemptyset(&Signals);
  sigaddset(&Signals, SIGINT);
  sigaddset(&Signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &Signals, nullptr);

  auto StartTime = std::chrono::steady_clock::now();
  TreeService Service(Options);
  SocketServer Server(Service);
  std::string Error;
  std::string Transport, Addr;
  if (!UnixPath.empty()) {
    if (!Server.listenUnix(UnixPath, &Error)) {
      obs::log(obs::LogLevel::Error, "mutkd", "listen failed")
          .kv("transport", "unix")
          .kv("addr", UnixPath)
          .kv("error", Error);
      return 1;
    }
    Transport = "unix";
    Addr = UnixPath;
  } else {
    if (!Server.listenTcp(Host, Port, &Error)) {
      obs::log(obs::LogLevel::Error, "mutkd", "listen failed")
          .kv("transport", "tcp")
          .kv("addr", Host + ":" + std::to_string(Port))
          .kv("error", Error);
      return 1;
    }
    Transport = "tcp";
    Addr = Host + ":" + std::to_string(Server.port());
  }
  // The cluster node starts after the service exists (its steal and
  // cache hooks submit into the worker pool) and stops before the
  // service drains, so re-enqueued lent jobs still find live workers.
  std::unique_ptr<dist::ClusterNode> Node;
  if (ClusterMode) {
    Node = std::make_unique<dist::ClusterNode>(Service, Cluster);
    if (!Node->start(&Error)) {
      obs::log(obs::LogLevel::Error, "mutkd", "cluster start failed")
          .kv("self", Cluster.SelfId)
          .kv("error", Error);
      return 1;
    }
    obs::log(obs::LogLevel::Info, "mutkd", "cluster joined")
        .kv("self", Cluster.SelfId)
        .kv("peers", Cluster.Peers.size())
        .kv("port", Node->port())
        .kv("steal", Cluster.StealJobs ? "on" : "off");
  }

  obs::log(obs::LogLevel::Info, "mutkd", "listening")
      .kv("transport", Transport)
      .kv("addr", Addr)
      .kv("workers", Options.NumWorkers)
      .kv("queue_capacity", Options.QueueCapacity)
      .kv("cache_capacity", Options.CacheCapacity)
      .kv("max_species", Options.MaxSpecies)
      .kv("block_concurrency", Options.BlockConcurrency)
      .kv("threads_per_block", Options.ThreadsPerBlock)
      .kv("incremental", Options.Incremental ? "on" : "off")
      .kv("qos", Options.Qos.Enabled ? "on" : "off")
      .kv("build", buildFlavor())
      .kv("stats_dump",
          StatsDumpPath.empty() ? std::string("off") : StatsDumpPath)
      .kv("state_dir",
          Options.StateDir.empty() ? std::string("off") : Options.StateDir);

  // Route the blocked SIGINT/SIGTERM through a dedicated sigwait
  // thread: handlers cannot safely stop a server, a blocked thread can.
  // The thread is detached — if shutdown arrives by protocol verb
  // instead, it is still parked in sigwait at exit, which is harmless.
  std::thread([&Server, Signals]() mutable {
    int Sig = 0;
    sigwait(&Signals, &Sig);
    Server.stop();
  }).detach();

  Server.start();
  {
    // Scoped so the dumper stops (and writes its final snapshot) after
    // the service drained but before the process reports shutdown.
    std::unique_ptr<StatsDumper> Dumper;
    if (!StatsDumpPath.empty())
      Dumper = std::make_unique<StatsDumper>(StatsDumpPath,
                                             StatsIntervalSeconds);
    Server.waitForShutdown();
    Server.stop();
    if (Node)
      Node->stop();
    Service.stop();
  }

  StatsSnapshot S = Service.stats();
  double UptimeSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - StartTime)
                             .count();
  obs::log(obs::LogLevel::Info, "mutkd", "shutdown")
      .kv("uptime_s", UptimeSeconds)
      .kv("accepted", S.Accepted)
      .kv("completed", S.Completed)
      .kv("failed", S.Failed)
      .kv("rejected", S.Rejected)
      .kv("whole_hits", S.WholeHits)
      .kv("whole_misses", S.WholeMisses)
      .kv("block_hits", S.BlockHits)
      .kv("block_misses", S.BlockMisses)
      .kv("block_remote_hits", S.BlockRemoteHits)
      .kv("incremental_applied", S.IncrementalApplied)
      .kv("shed", S.Shed)
      .kv("rate_limited", S.RateLimited)
      .kv("coalesced", S.Coalesced)
      .kv("p50_ms", S.P50Millis)
      .kv("p95_ms", S.P95Millis);
  return 0;
}
