//===- examples/mutk_client.cpp - CLI client for mutkd --------------------===//
//
// Submits tree-construction jobs to a running mutkd over its framed
// socket protocol and prints the result (human-readable or --json,
// sharing the JSON schema with `mutk_tool --json`).
//
// Usage:
//   mutk_client --connect unix:PATH | --connect HOST:PORT  COMMAND
// Commands:
//   --matrix FILE | --generate {uniform|clustered|ultrametric|dna}
//             --species N [--seed S]     submit a Build job
//   --stats                              print service counters
//                                        (--stats --json issues the
//                                        StatsJson verb: full metrics
//                                        registry as one JSON object)
//   --ping                               liveness probe
//   --shutdown                           stop the daemon
// Build options:
//   --condense {max|min|avg}  --three-three {none|third|all}
//   --max-exact N  --budget NODES  --deadline MILLIS  --no-cache
//   --polish  --incremental  --json
// QoS options (protocol v3; daemon must run with --qos for them to
// change scheduling):
//   --priority {low|normal|high}  scheduling priority
//   --deadline-ms MILLIS          alias of --deadline
//   --tenant NAME                 fair-share / rate-limit bucket
// Connection options:
//   --retries N      retry a failed connect up to N times (default 0)
//   --backoff-ms MS  initial retry delay, doubled per attempt and
//                    capped at 5000ms (default 100)
//
//===----------------------------------------------------------------------===//

#include "matrix/MatrixIO.h"
#include "service/Client.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace mutk;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --connect unix:PATH|HOST:PORT\n"
      "       (--matrix FILE | --generate KIND --species N [--seed S]\n"
      "        | --stats [--json] | --ping | --shutdown)\n"
      "       [--condense max|min|avg] [--three-three none|third|all]\n"
      "       [--max-exact N] [--budget NODES] [--deadline MS]\n"
      "       [--no-cache] [--polish] [--incremental] [--json]\n"
      "       [--priority low|normal|high] [--deadline-ms MS]"
      " [--tenant NAME]\n"
      "       [--retries N] [--backoff-ms MS]\n",
      Argv0);
  return 1;
}

/// Escapes a string for embedding in a JSON literal.
std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

void printBuildJson(const BuildResponse &R) {
  std::printf("{\"error\":\"%s\",", serviceErrorName(R.Error));
  if (!R.ok()) {
    std::printf("\"message\":\"%s\",\"advice\":\"%s\"}\n",
                jsonEscape(R.Message).c_str(),
                jsonEscape(serviceErrorAdvice(R.Error)).c_str());
    return;
  }
  std::printf("\"cost\":%.10g,\"exact\":%s,\"cache_hit\":%s,"
              "\"block_cache_hits\":%u,\"branched\":%llu,"
              "\"incremental\":%s,\"dirty_blocks\":%u,\"clean_blocks\":%u,"
              "\"taxa_added\":%d,\"taxa_removed\":%d,\"entries_changed\":%d,"
              "\"tier\":\"%s\",\"predicted_ms\":%.3f,\"coalesced\":%s,"
              "\"queue_ms\":%.3f,\"solve_ms\":%.3f,"
              "\"blocks\":%zu,\"newick\":\"%s\"}\n",
              R.Cost, R.Exact ? "true" : "false",
              R.CacheHit ? "true" : "false", R.BlockCacheHits,
              static_cast<unsigned long long>(R.Branched),
              R.IncrementalApplied ? "true" : "false", R.DirtyBlocks,
              R.CleanBlocks, R.TaxaAdded, R.TaxaRemoved, R.EntriesChanged,
              qosTierName(R.Tier), R.PredictedMillis,
              R.Coalesced ? "true" : "false", R.QueueMillis, R.SolveMillis,
              R.Blocks.size(), jsonEscape(R.Newick).c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::string Connect, MatrixPath, Generate;
  bool Stats = false, Ping = false, Shutdown = false, Json = false;
  int ConnectRetries = 0;
  long ConnectBackoffMillis = 100;
  constexpr long MaxBackoffMillis = 5000;
  BuildRequest Request;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *V = nullptr;
    if (Arg == "--connect" && (V = next()))
      Connect = V;
    else if (Arg == "--matrix" && (V = next()))
      MatrixPath = V;
    else if (Arg == "--generate" && (V = next()))
      Generate = V;
    else if (Arg == "--species" && (V = next()))
      Request.GenSpecies = std::atoi(V);
    else if (Arg == "--seed" && (V = next()))
      Request.GenSeed = std::strtoull(V, nullptr, 10);
    else if (Arg == "--condense" && (V = next())) {
      std::string Mode = V;
      if (Mode == "max")
        Request.Mode = CondenseMode::Maximum;
      else if (Mode == "min")
        Request.Mode = CondenseMode::Minimum;
      else if (Mode == "avg")
        Request.Mode = CondenseMode::Average;
      else
        return usage(argv[0]);
    } else if (Arg == "--three-three" && (V = next())) {
      std::string Mode = V;
      if (Mode == "none")
        Request.ThreeThree = ThreeThreeMode::None;
      else if (Mode == "third")
        Request.ThreeThree = ThreeThreeMode::ThirdSpecies;
      else if (Mode == "all")
        Request.ThreeThree = ThreeThreeMode::AllInsertions;
      else
        return usage(argv[0]);
    } else if (Arg == "--max-exact" && (V = next()))
      Request.MaxExactBlockSize = std::atoi(V);
    else if (Arg == "--budget" && (V = next()))
      Request.NodeBudget = std::strtoull(V, nullptr, 10);
    else if ((Arg == "--deadline" || Arg == "--deadline-ms") && (V = next()))
      Request.DeadlineMillis =
          static_cast<std::uint32_t>(std::strtoul(V, nullptr, 10));
    else if (Arg == "--priority" && (V = next())) {
      std::string P = V;
      if (P == "low")
        Request.Priority = RequestPriority::Low;
      else if (P == "normal")
        Request.Priority = RequestPriority::Normal;
      else if (P == "high")
        Request.Priority = RequestPriority::High;
      else
        return usage(argv[0]);
    } else if (Arg == "--tenant" && (V = next()))
      Request.Tenant = V;
    else if (Arg == "--no-cache")
      Request.UseCache = false;
    else if (Arg == "--polish")
      Request.Polish = true;
    else if (Arg == "--incremental")
      Request.Incremental = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--ping")
      Ping = true;
    else if (Arg == "--shutdown")
      Shutdown = true;
    else if (Arg == "--json")
      Json = true;
    else if (Arg == "--retries" && (V = next()))
      ConnectRetries = std::max(0, std::atoi(V));
    else if (Arg == "--backoff-ms" && (V = next()))
      // Clamp into [1, cap] up front: values beyond the cap would only
      // be cut down after the first (absurdly long) sleep otherwise.
      ConnectBackoffMillis =
          std::min(std::max(1L, std::strtol(V, nullptr, 10)),
                   MaxBackoffMillis);
    else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                   Arg.c_str());
      return usage(argv[0]);
    }
  }
  if (Connect.empty())
    return usage(argv[0]);

  ServiceClient Client;
  std::string Error;
  std::size_t Colon = std::string::npos;
  bool IsUnix = Connect.rfind("unix:", 0) == 0;
  if (!IsUnix) {
    Colon = Connect.rfind(':');
    if (Colon == std::string::npos) {
      std::fprintf(stderr, "error: --connect expects unix:PATH or "
                           "HOST:PORT\n");
      return 1;
    }
  }

  // Connect with capped exponential backoff: daemon restarts (e.g. a
  // crash-recovery bounce with --state-dir) briefly close the socket,
  // and a scripted client should ride that out instead of failing.
  bool Connected = false;
  long BackoffMillis = ConnectBackoffMillis;
  for (int Attempt = 0;; ++Attempt) {
    Connected = IsUnix
                    ? Client.connectUnix(Connect.substr(5), &Error)
                    : Client.connectTcp(Connect.substr(0, Colon),
                                        std::atoi(Connect.c_str() + Colon + 1),
                                        &Error);
    if (Connected || Attempt >= ConnectRetries)
      break;
    std::fprintf(stderr, "connect failed (%s), retry %d/%d in %ldms\n",
                 Error.c_str(), Attempt + 1, ConnectRetries, BackoffMillis);
    std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMillis));
    BackoffMillis = nextBackoffMillis(BackoffMillis, MaxBackoffMillis);
  }
  if (!Connected) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (Ping) {
    if (!Client.ping(&Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (Shutdown) {
    if (!Client.shutdownServer(&Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("shutdown acknowledged\n");
    return 0;
  }
  if (Stats) {
    if (Json) {
      // The StatsJson verb answers with the whole metrics registry —
      // queue, cache, request-latency and B&B counters — merged with
      // the per-instance snapshot.
      std::optional<std::string> S = Client.statsJson(&Error);
      if (!S) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      std::printf("%s\n", S->c_str());
      return 0;
    }
    std::optional<StatsSnapshot> S = Client.stats(&Error);
    if (!S) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("accepted:     %llu\ncompleted:    %llu\nfailed:       "
                "%llu\nwhole cache:  %llu hits / %llu misses\nblock cache: "
                " %llu hits / %llu misses (%llu remote)\nincremental: "
                " %llu applied, %llu dirty / %llu clean blocks\n"
                "deadline:     %llu expired\n"
                "rejected:     %llu\n"
                "qos:          %llu shed, %llu rate-limited, %llu coalesced\n"
                "tiers:        %llu exact / %llu pipeline / %llu heuristic\n"
                "queue depth:  %llu\ncache size:   "
                "%llu\nlatency:      p50 %.2fms p95 %.2fms\n",
                static_cast<unsigned long long>(S->Accepted),
                static_cast<unsigned long long>(S->Completed),
                static_cast<unsigned long long>(S->Failed),
                static_cast<unsigned long long>(S->WholeHits),
                static_cast<unsigned long long>(S->WholeMisses),
                static_cast<unsigned long long>(S->BlockHits),
                static_cast<unsigned long long>(S->BlockMisses),
                static_cast<unsigned long long>(S->BlockRemoteHits),
                static_cast<unsigned long long>(S->IncrementalApplied),
                static_cast<unsigned long long>(S->IncrementalDirty),
                static_cast<unsigned long long>(S->IncrementalClean),
                static_cast<unsigned long long>(S->DeadlineExpired),
                static_cast<unsigned long long>(S->Rejected),
                static_cast<unsigned long long>(S->Shed),
                static_cast<unsigned long long>(S->RateLimited),
                static_cast<unsigned long long>(S->Coalesced),
                static_cast<unsigned long long>(S->TierExact),
                static_cast<unsigned long long>(S->TierPipeline),
                static_cast<unsigned long long>(S->TierHeuristic),
                static_cast<unsigned long long>(S->QueueDepth),
                static_cast<unsigned long long>(S->CacheEntries),
                S->P50Millis, S->P95Millis);
    return 0;
  }

  // Build job: inline matrix or server-side generator.
  if (!MatrixPath.empty()) {
    std::string IoError;
    auto Loaded = readMatrixFile(MatrixPath, &IoError);
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", IoError.c_str());
      return 1;
    }
    Request.Matrix = std::move(*Loaded);
    Request.Generator = GeneratorKind::None;
  } else if (Generate == "uniform")
    Request.Generator = GeneratorKind::Uniform;
  else if (Generate == "clustered")
    Request.Generator = GeneratorKind::Clustered;
  else if (Generate == "ultrametric")
    Request.Generator = GeneratorKind::Ultrametric;
  else if (Generate == "dna")
    Request.Generator = GeneratorKind::Dna;
  else
    return usage(argv[0]);

  std::optional<BuildResponse> Resp = Client.build(Request, &Error);
  if (!Resp) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (Json) {
    printBuildJson(*Resp);
    return Resp->ok() ? 0 : 1;
  }
  if (!Resp->ok()) {
    // Errors carry their own advice line: QueueFull means overload
    // (retry with backoff), ShuttingDown means a dying daemon (go
    // elsewhere), Shed/RateLimited are QoS decisions the caller can
    // change. Keeping them distinct here is what makes the status codes
    // actionable from a shell script.
    std::fprintf(stderr, "error [%s]: %s\n", serviceErrorName(Resp->Error),
                 Resp->Message.c_str());
    const char *Advice = serviceErrorAdvice(Resp->Error);
    if (Advice[0] != '\0')
      std::fprintf(stderr, "hint: %s\n", Advice);
    return 1;
  }
  std::printf("cost:     %.4f%s\n", Resp->Cost,
              Resp->Exact ? "  (all blocks exact)" : "");
  std::printf("tier:     %s%s%s\n", qosTierName(Resp->Tier),
              Resp->Coalesced ? ", coalesced onto an identical in-flight job"
                              : "",
              Resp->PredictedMillis > 0.0 ? "" : " (no prediction)");
  if (Resp->PredictedMillis > 0.0)
    std::printf("predict:  %.3fms\n", Resp->PredictedMillis);
  std::printf("cache:    %s, %u block hit(s)\n",
              Resp->CacheHit ? "whole-matrix hit" : "miss",
              Resp->BlockCacheHits);
  if (Resp->IncrementalApplied)
    std::printf("incr:     base matched (+%d/-%d taxa, %d entries changed), "
                "%u dirty / %u clean blocks\n",
                Resp->TaxaAdded, Resp->TaxaRemoved, Resp->EntriesChanged,
                Resp->DirtyBlocks, Resp->CleanBlocks);
  std::printf("time:     %.3fms queued + %.3fms solve, branched %llu\n",
              Resp->QueueMillis, Resp->SolveMillis,
              static_cast<unsigned long long>(Resp->Branched));
  std::printf("blocks:   %zu\n", Resp->Blocks.size());
  std::printf("newick:   %s\n", Resp->Newick.c_str());
  return 0;
}
