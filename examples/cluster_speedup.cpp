//===- examples/cluster_speedup.cpp - Virtual cluster walkthrough ---------===//
//
// Demonstrates the simulated PC cluster: solves one instance on 1, 2, 4,
// 8, 16 and 32 virtual nodes and prints the makespan, speedup and
// per-node utilization — the experiment behind the HPCAsia paper's
// super-linear speedup claim (and our DESIGN.md §5.2 substitution).
//
// Run:  ./build/examples/cluster_speedup [num_species] [seed]
//
//===----------------------------------------------------------------------===//

#include "matrix/Generators.h"
#include "sim/ClusterSim.h"

#include <cstdio>
#include <cstdlib>

using namespace mutk;

int main(int argc, char **argv) {
  int NumSpecies = argc > 1 ? std::atoi(argv[1]) : 18;
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;

  DistanceMatrix M = uniformRandomMetric(NumSpecies, Seed, 1.0, 100.0);
  BnbOptions Options;
  Options.MaxBranchedNodes = 4'000'000;

  ClusterSimResult Baseline = simulateSequentialBaseline(M, Options);
  std::printf("instance: %d species (uniform random 0..100, seed %llu)\n",
              NumSpecies, static_cast<unsigned long long>(Seed));
  std::printf("sequential baseline: makespan %.1f units, %llu branched, "
              "optimal cost %.2f\n\n",
              Baseline.Makespan,
              static_cast<unsigned long long>(Baseline.Stats.Branched),
              Baseline.Cost);

  std::printf("%6s %12s %9s %10s %12s %10s\n", "nodes", "makespan",
              "speedup", "branched", "pool pulls", "idle%");
  for (int Nodes : {1, 2, 4, 8, 16, 32}) {
    ClusterSpec Spec;
    Spec.NumNodes = Nodes;
    ClusterSimResult R = simulateClusterBnb(M, Spec, Options);

    std::uint64_t Pulls = 0;
    double Idle = 0.0;
    for (const SimNodeStats &S : R.Nodes) {
      Pulls += S.PulledFromGlobal;
      Idle += S.IdleTime;
    }
    double IdlePct =
        R.Makespan > 0 ? 100.0 * Idle / (R.Makespan * Nodes) : 0.0;
    std::printf("%6d %12.1f %8.2fx %10llu %12llu %9.1f%%\n", Nodes,
                R.Makespan, Baseline.Makespan / R.Makespan,
                static_cast<unsigned long long>(R.Stats.Branched),
                static_cast<unsigned long long>(Pulls), IdlePct);
    if (Baseline.Makespan / R.Makespan > Nodes)
      std::printf("       ^-- super-linear: the parallel exploration found "
                  "good bounds sooner and branched fewer nodes overall\n");
  }
  return 0;
}
