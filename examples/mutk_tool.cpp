//===- examples/mutk_tool.cpp - Command-line tree builder ------------------===//
//
// A small end-user tool over the public API — the "user-friendly
// software tool" deliverable of the original NSC project. Reads a
// distance matrix (or generates a workload), builds a tree with the
// selected method, and prints cost, Newick and ASCII art plus a dataset
// profile.
//
// Usage:
//   mutk_tool --matrix FILE [options]
//   mutk_tool --generate {uniform|clustered|ultrametric|dna} --species N
//             [--seed S] [options]
// Options:
//   --method {upgma|upgmm|exact|threads|cluster|compact}   (default compact)
//   --condense {max|min|avg}                               (default max)
//   --three-three {none|third|all}                         (default third)
//   --nodes N        virtual cluster nodes                 (default 16)
//   --ascii          print the tree as ASCII art
//   --profile        print the dataset profile
//   --json           machine-readable output (schema shared with mutk_client)
//   --out FILE       write the Newick string to FILE
//
//===----------------------------------------------------------------------===//

#include "analysis/Profile.h"
#include "core/TreeBuilder.h"
#include "matrix/Generators.h"
#include "matrix/MatrixIO.h"
#include "seq/EvolutionSim.h"
#include "support/Stopwatch.h"
#include "tree/AsciiTree.h"
#include "tree/Newick.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

using namespace mutk;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --matrix FILE | --generate KIND --species N "
               "[--seed S]\n"
               "       [--method upgma|upgmm|exact|threads|cluster|compact]\n"
               "       [--condense max|min|avg] [--three-three none|third|all]\n"
               "       [--nodes N] [--ascii] [--profile] [--json] "
               "[--out FILE]\n",
               Argv0);
  return 1;
}

/// Escapes a string for embedding in a JSON literal.
std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string MatrixPath, Generate, Method = "compact", Condense = "max";
  std::string ThreeThree = "third", OutPath;
  int Species = 16;
  std::uint64_t Seed = 1;
  int Nodes = 16;
  bool Ascii = false, Profile = false, Json = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--matrix") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      MatrixPath = V;
    } else if (Arg == "--generate") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      Generate = V;
    } else if (Arg == "--species") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      Species = std::atoi(V);
    } else if (Arg == "--seed") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--method") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      Method = V;
    } else if (Arg == "--condense") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      Condense = V;
    } else if (Arg == "--three-three") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      ThreeThree = V;
    } else if (Arg == "--nodes") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      Nodes = std::atoi(V);
    } else if (Arg == "--ascii") {
      Ascii = true;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--out") {
      const char *V = next();
      if (!V)
        return usage(argv[0]);
      OutPath = V;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }

  // Obtain the matrix.
  DistanceMatrix M;
  if (!MatrixPath.empty()) {
    std::string Error;
    auto Loaded = readMatrixFile(MatrixPath, &Error);
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    M = std::move(*Loaded);
  } else if (Generate == "uniform") {
    M = uniformRandomMetric(Species, Seed, 1.0, 100.0);
  } else if (Generate == "clustered") {
    M = scaledToMax(plantedClusterMetric(Species, Seed), 100.0);
  } else if (Generate == "ultrametric") {
    M = randomUltrametricMatrix(Species, Seed);
  } else if (Generate == "dna") {
    M = hmdnaLikeMatrix(Species, Seed);
  } else {
    return usage(argv[0]);
  }

  if (Profile && !Json) {
    std::printf("--- dataset profile ---\n");
    printProfile(std::cout, profileMatrix(M));
    std::printf("\n");
  }

  // Configure and run.
  BuildOptions Options;
  if (Method == "upgma")
    Options.Method = BuildMethod::Upgma;
  else if (Method == "upgmm")
    Options.Method = BuildMethod::Upgmm;
  else if (Method == "exact")
    Options.Method = BuildMethod::ExactSequential;
  else if (Method == "threads")
    Options.Method = BuildMethod::ExactThreaded;
  else if (Method == "cluster")
    Options.Method = BuildMethod::SimulatedCluster;
  else if (Method == "compact")
    Options.Method = BuildMethod::CompactSets;
  else
    return usage(argv[0]);

  if (Condense == "max")
    Options.Pipeline.Mode = CondenseMode::Maximum;
  else if (Condense == "min")
    Options.Pipeline.Mode = CondenseMode::Minimum;
  else if (Condense == "avg")
    Options.Pipeline.Mode = CondenseMode::Average;
  else
    return usage(argv[0]);

  if (ThreeThree == "none")
    Options.Bnb.ThreeThree = ThreeThreeMode::None;
  else if (ThreeThree == "third")
    Options.Bnb.ThreeThree = ThreeThreeMode::ThirdSpecies;
  else if (ThreeThree == "all")
    Options.Bnb.ThreeThree = ThreeThreeMode::AllInsertions;
  else
    return usage(argv[0]);

  Options.Cluster.NumNodes = Nodes;
  Options.Bnb.MaxBranchedNodes = 8'000'000;

  Stopwatch W;
  BuildOutcome Out = buildTree(M, Options);
  double Elapsed = W.seconds();

  if (Json) {
    // Field names match the `mutk_client --json` schema so downstream
    // tooling can consume either source interchangeably.
    std::printf("{\"method\":\"%s\",\"cost\":%.10g,\"exact\":%s,"
                "\"branched\":%llu,\"solve_ms\":%.3f,\"newick\":\"%s\"}\n",
                jsonEscape(Out.MethodName).c_str(), Out.Cost,
                Out.Exact ? "true" : "false",
                static_cast<unsigned long long>(Out.Stats.Branched),
                Elapsed * 1000.0, jsonEscape(toNewick(Out.Tree)).c_str());
  } else {
    std::printf("method:   %s\n", Out.MethodName.c_str());
    std::printf("cost:     %.4f%s\n", Out.Cost,
                Out.Exact ? "  (provably minimal)" : "");
    std::printf("time:     %.3fs, branched %llu BBT nodes\n", Elapsed,
                static_cast<unsigned long long>(Out.Stats.Branched));
    if (Out.VirtualTime > 0)
      std::printf("virtual:  %.1f cluster units\n", Out.VirtualTime);
    std::printf("newick:   %s\n", toNewick(Out.Tree).c_str());
    if (Ascii) {
      std::printf("\n%s", toAsciiTree(Out.Tree).c_str());
    }
  }
  if (!OutPath.empty()) {
    std::ofstream OS(OutPath);
    if (!OS) {
      std::fprintf(stderr, "error: cannot open %s\n", OutPath.c_str());
      return 1;
    }
    writeNewick(OS, Out.Tree);
    OS << '\n';
    // A full disk or revoked permission surfaces only when the stream
    // flushes — report it instead of claiming success.
    OS.flush();
    if (!OS) {
      std::fprintf(stderr, "error: failed writing %s\n", OutPath.c_str());
      return 1;
    }
    if (!Json)
      std::printf("\nwrote %s\n", OutPath.c_str());
  }
  return 0;
}
