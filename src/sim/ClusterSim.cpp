//===- sim/ClusterSim.cpp - Discrete-event PC-cluster simulator -----------===//

#include "sim/ClusterSim.h"

#include "bnb/Engine.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

using namespace mutk;

namespace {

/// A published upper-bound improvement.
struct UbEvent {
  double Time = 0.0;
  double Value = 0.0;
};

/// A BBT node sitting in the global pool, stamped with the time it became
/// available there.
struct PoolEntry {
  Topology Node;
  double AvailableTime = 0.0;
};

/// One simulated computing node.
struct SimNode {
  double Clock = 0.0;
  double Speed = 1.0;
  /// Back = best (lowest lower bound among the locally known order).
  std::deque<Topology> Local;
  /// Upper bound this node currently believes in.
  double KnownUb = 0.0;
  SimNodeStats Stats;
};

} // namespace

ClusterSimResult mutk::simulateClusterBnb(const DistanceMatrix &M,
                                          const ClusterSpec &Spec,
                                          const BnbOptions &Options) {
  assert(Spec.NumNodes >= 1 && "need at least one computing node");
  assert(!Options.CollectAllOptimal &&
         "CollectAllOptimal is not supported by the simulator");

  ClusterSimResult Result;
  Result.Nodes.resize(static_cast<std::size_t>(Spec.NumNodes));
  if (M.size() <= 1) {
    if (M.size() == 1) {
      Result.Tree.addLeaf(0);
      Result.Tree.setNames(M.names());
    }
    return Result;
  }

  BnbEngine Engine(M, Options);
  const double Eps = Options.Epsilon;
  const int P = Spec.NumNodes;

  double GlobalUb = Engine.initialUpperBound();
  bool HasBest = false;
  Topology BestTopology;

  auto acceptSolution = [&](const Topology &T) {
    double Cost = T.cost();
    if (Cost >= GlobalUb - Eps)
      return false;
    GlobalUb = Cost;
    BestTopology = T;
    HasBest = true;
    return true;
  };

  // --- Master phase (Steps 4-5): seed the BBT to 2 * P frontier nodes.
  std::deque<Topology> Frontier;
  std::vector<BranchedChild> Branches;
  Frontier.push_back(Engine.rootTopology());
  BnbStats &Stats = Result.Stats;
  std::uint64_t SeedBranched = 0;
  while (!Frontier.empty() && static_cast<int>(Frontier.size()) < 2 * P) {
    Topology T = std::move(Frontier.front());
    Frontier.pop_front();
    if (Engine.isComplete(T)) {
      acceptSolution(T);
      continue;
    }
    ++Stats.Branched;
    ++SeedBranched;
    Engine.branch(T, GlobalUb, Stats, Branches);
    for (BranchedChild &BC : Branches) {
      Topology &Child = BC.Node;
      if (Engine.isComplete(Child)) {
        if (acceptSolution(Child))
          ++Stats.UbUpdates;
        continue;
      }
      Frontier.push_back(std::move(Child));
    }
  }
  Result.SeedTime =
      static_cast<double>(SeedBranched) * Spec.BranchCost;

  // --- Step 6: sort by LB, deal cyclically, charge the transfer.
  std::vector<Topology> Sorted(std::make_move_iterator(Frontier.begin()),
                               std::make_move_iterator(Frontier.end()));
  std::sort(Sorted.begin(), Sorted.end(),
            [&Engine](const Topology &A, const Topology &B) {
              return Engine.lowerBound(A) < Engine.lowerBound(B);
            });

  std::vector<SimNode> Nodes(static_cast<std::size_t>(P));
  for (int I = 0; I < P; ++I) {
    SimNode &N = Nodes[static_cast<std::size_t>(I)];
    N.Speed = (static_cast<std::size_t>(I) < Spec.NodeSpeeds.size())
                  ? Spec.NodeSpeeds[static_cast<std::size_t>(I)]
                  : 1.0;
    assert(N.Speed > 0.0 && "node speeds must be positive");
    N.Clock = Result.SeedTime + Spec.PoolTransferCost;
    N.KnownUb = GlobalUb;
  }
  for (std::size_t I = 0; I < Sorted.size(); ++I)
    Nodes[I % static_cast<std::size_t>(P)].Local.push_front(
        std::move(Sorted[I])); // back = best after the push_front deal

  std::vector<UbEvent> Events;
  std::deque<PoolEntry> GlobalPool;

  // --- Step 7: event loop. Always advance the node able to act at the
  // earliest virtual time.
  for (;;) {
    if (Options.MaxBranchedNodes != 0 &&
        Stats.Branched >= Options.MaxBranchedNodes) {
      Stats.Complete = false;
      break;
    }

    // Pick the acting node: local work acts at Clock; a pull from the
    // global pool acts at max(Clock, AvailableTime) + transfer.
    int Best = -1;
    double BestStart = std::numeric_limits<double>::infinity();
    bool BestIsPull = false;
    for (int I = 0; I < P; ++I) {
      SimNode &N = Nodes[static_cast<std::size_t>(I)];
      if (!N.Local.empty()) {
        if (N.Clock < BestStart) {
          BestStart = N.Clock;
          Best = I;
          BestIsPull = false;
        }
      } else if (!GlobalPool.empty()) {
        double Start = std::max(N.Clock, GlobalPool.front().AvailableTime) +
                       Spec.PoolTransferCost;
        if (Start < BestStart) {
          BestStart = Start;
          Best = I;
          BestIsPull = true;
        }
      }
    }
    if (Best < 0)
      break; // no node has or can obtain work: done

    SimNode &N = Nodes[static_cast<std::size_t>(Best)];
    Topology Current;
    if (BestIsPull) {
      N.Stats.IdleTime += std::max(0.0, BestStart - Spec.PoolTransferCost -
                                            N.Clock);
      N.Clock = BestStart;
      Current = std::move(GlobalPool.front().Node);
      GlobalPool.pop_front();
      ++N.Stats.PulledFromGlobal;
    } else {
      Current = std::move(N.Local.back());
      N.Local.pop_back();
    }

    // Observe UB broadcasts that have reached this node by now. Event
    // times are not globally ordered (nodes advance at different rates),
    // and strict-improvement publications keep the list short, so a full
    // scan is both correct and cheap.
    for (const UbEvent &E : Events)
      if (E.Time + Spec.UbBroadcastLatency <= N.Clock)
        N.KnownUb = std::min(N.KnownUb, E.Value);

    if (Engine.lowerBound(Current) >= N.KnownUb - Eps) {
      double Cost = Spec.BoundCheckCost / N.Speed;
      N.Clock += Cost;
      N.Stats.BusyTime += Cost;
      N.Stats.FinishTime = N.Clock;
      ++Stats.PrunedByBound;
      continue;
    }

    ++Stats.Branched;
    ++N.Stats.Branched;
    double Cost = Spec.BranchCost / N.Speed;
    N.Clock += Cost;
    N.Stats.BusyTime += Cost;
    N.Stats.FinishTime = N.Clock;

    Engine.branch(Current, N.KnownUb, Stats, Branches);
    for (std::size_t I = Branches.size(); I > 0; --I) {
      Topology &Child = Branches[I - 1].Node;
      if (Engine.isComplete(Child)) {
        double ChildCost = Child.cost();
        if (ChildCost < N.KnownUb - Eps) {
          N.KnownUb = ChildCost;
          ++N.Stats.UbUpdates;
          Events.push_back(UbEvent{N.Clock, ChildCost});
          if (acceptSolution(Child))
            ++Stats.UbUpdates;
        }
        continue;
      }
      N.Local.push_back(std::move(Child)); // worst first, best last
    }

    // Donate the worst local node when the global pool is dry.
    if (Spec.UseGlobalPool && GlobalPool.empty() && N.Local.size() > 1) {
      GlobalPool.push_back(PoolEntry{std::move(N.Local.front()), N.Clock});
      N.Local.pop_front();
      ++N.Stats.DonatedToGlobal;
    }
  }

  double Makespan = Result.SeedTime;
  for (int I = 0; I < P; ++I) {
    SimNode &N = Nodes[static_cast<std::size_t>(I)];
    if (N.Stats.FinishTime == 0.0)
      N.Stats.FinishTime = N.Clock;
    Makespan = std::max(Makespan, N.Stats.FinishTime);
    Result.Nodes[static_cast<std::size_t>(I)] = N.Stats;
  }
  // Tail idle time: nodes that finished before the makespan.
  for (SimNodeStats &S : Result.Nodes)
    S.IdleTime += Makespan - S.FinishTime;
  Result.Makespan = Makespan;

  if (HasBest) {
    Result.Tree = Engine.finalize(BestTopology);
    Result.Cost = BestTopology.cost();
  } else {
    Result.Tree = Engine.initialTree();
    Result.Cost = Engine.initialUpperBound();
  }
  return Result;
}

ClusterSimResult
mutk::simulateSequentialBaseline(const DistanceMatrix &M,
                                 const BnbOptions &Options) {
  ClusterSpec Spec;
  Spec.NumNodes = 1;
  Spec.UbBroadcastLatency = 0.0;
  Spec.PoolTransferCost = 0.0;
  return simulateClusterBnb(M, Spec, Options);
}
