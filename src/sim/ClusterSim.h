//===- sim/ClusterSim.h - Discrete-event PC-cluster simulator ---*- C++ -*-===//
///
/// \file
/// A deterministic discrete-event simulation of the papers' experimental
/// platform: a master plus N computing nodes running the parallel
/// branch-and-bound (DESIGN.md §5.2 explains this substitution for the
/// real 16-node cluster). The simulator executes the *actual* B&B work —
/// every branching decision, bound check and upper-bound publication is
/// real — while time is accounted in virtual units:
///
///  * branching one BBT node costs `BranchCost / speed(node)`,
///  * a bound-check-only pop costs `BoundCheckCost / speed(node)`,
///  * a new upper bound published by one node becomes visible to the
///    others only `UbBroadcastLatency` units later,
///  * pulling work from the master's global pool costs
///    `PoolTransferCost` and cannot happen before the work was donated.
///
/// Super-linear speedup arises here for the same reason as on the real
/// cluster: the parallel exploration order finds good upper bounds
/// earlier, so the total number of branched nodes shrinks below the
/// sequential count. Heterogeneous node speeds and latencies model the
/// NCS paper's grid environment.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SIM_CLUSTERSIM_H
#define MUTK_SIM_CLUSTERSIM_H

#include "bnb/SequentialBnb.h"

#include <vector>

namespace mutk {

/// The virtual machine room.
struct ClusterSpec {
  int NumNodes = 16;
  /// Virtual cost of branching one BBT node on a speed-1 node.
  double BranchCost = 1.0;
  /// Virtual cost of popping a node that is immediately bounded away.
  double BoundCheckCost = 0.05;
  /// Delay before one node's improved UB reaches the others.
  double UbBroadcastLatency = 4.0;
  /// Cost of receiving one BBT node from the global pool.
  double PoolTransferCost = 2.0;
  /// Per-node relative speeds; empty means all 1.0 (homogeneous cluster).
  /// A grid is modeled with mixed speeds and a higher broadcast latency.
  std::vector<double> NodeSpeeds;
  /// Disable the global pool entirely (load-balancing ablation): nodes
  /// keep only the work they were dealt initially.
  bool UseGlobalPool = true;
};

/// Per-node accounting.
struct SimNodeStats {
  double BusyTime = 0.0;
  double IdleTime = 0.0;  ///< waiting for donated work mid-run
  double FinishTime = 0.0;
  std::uint64_t Branched = 0;
  std::uint64_t PulledFromGlobal = 0;
  std::uint64_t DonatedToGlobal = 0;
  std::uint64_t UbUpdates = 0;
};

/// A MutResult extended with virtual-time accounting.
struct ClusterSimResult : MutResult {
  /// Virtual wall-clock of the whole run (the paper's "computing time").
  double Makespan = 0.0;
  /// Virtual time the master spent seeding and dealing the BBT.
  double SeedTime = 0.0;
  std::vector<SimNodeStats> Nodes;
};

/// Runs the parallel B&B of the HPCAsia paper on a simulated cluster.
/// Fully deterministic; cost-equal to the sequential solver's optimum.
ClusterSimResult simulateClusterBnb(const DistanceMatrix &M,
                                    const ClusterSpec &Spec,
                                    const BnbOptions &Options = {});

/// Convenience: virtual time of a 1-node, zero-latency run — the
/// simulator's sequential baseline for speedup figures.
ClusterSimResult simulateSequentialBaseline(const DistanceMatrix &M,
                                            const BnbOptions &Options = {});

} // namespace mutk

#endif // MUTK_SIM_CLUSTERSIM_H
