//===- mp/MpBnb.cpp - Message-passing master/slave B&B ---------------------===//

#include "mp/MpBnb.h"

#include "bnb/Engine.h"
#include "mp/Communicator.h"
#include "mp/Serialize.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <thread>

using namespace mutk;

namespace {

enum Tag : int {
  TagInit = 1,
  TagWork,
  TagWorkRequest,
  TagDonation,
  TagSolution,
  TagUbUpdate,
  TagNeedWork,
  TagTerminate,
  TagStats,
};

std::vector<std::uint8_t> encodeSolution(double Cost, const Topology &T) {
  ByteWriter Writer;
  Writer.writeF64(Cost);
  for (std::uint8_t Byte : encodeTopology(T))
    Writer.writeU8(Byte);
  return Writer.take();
}

std::vector<std::uint8_t> encodeStats(const BnbStats &Stats,
                                      const WorkerStats &Worker) {
  ByteWriter Writer;
  Writer.writeU64(Stats.Branched);
  Writer.writeU64(Stats.Generated);
  Writer.writeU64(Stats.PrunedByBound);
  Writer.writeU64(Stats.PrunedByThreeThree);
  Writer.writeU64(Stats.UbUpdates);
  Writer.writeU64(Worker.Branched);
  Writer.writeU64(Worker.PulledFromGlobal);
  Writer.writeU64(Worker.DonatedToGlobal);
  Writer.writeU64(Worker.UbUpdates);
  return Writer.take();
}

/// One slave computing node: local-pool DFS driven entirely by messages.
void slaveMain(Communicator::Endpoint Self, const BnbOptions &Options) {
  // Wait for Init: the relabeled matrix and the starting upper bound.
  DistanceMatrix Relabeled;
  double KnownUb = 0.0;
  {
    Message Init = Self.recv();
    assert(Init.Tag == TagInit && "first message must be Init");
    ByteReader Reader(Init.Payload);
    double Ub;
    bool OkUb = Reader.readF64(Ub);
    assert(OkUb && "malformed Init payload");
    (void)OkUb;
    std::vector<std::uint8_t> MatrixBytes(
        Init.Payload.begin() + 8, Init.Payload.end());
    auto Decoded = decodeMatrix(MatrixBytes);
    assert(Decoded && "malformed Init matrix");
    Relabeled = std::move(*Decoded);
    KnownUb = Ub;
  }
  // The worker's engine must share the master's label space exactly:
  // the shipped matrix is already maxmin-ordered, so skip relabeling.
  BnbOptions SlaveOptions = Options;
  SlaveOptions.InitialUpperBound = KnownUb;
  SlaveOptions.AssumeMaxminOrdered = true;
  BnbEngine Engine(Relabeled, SlaveOptions);
  const double Eps = Options.Epsilon;

  std::deque<Topology> Local; // back = best
  BnbStats Stats;
  WorkerStats Worker;
  bool DonateRequested = false;
  // Cumulative count of Work messages received; shipped inside every
  // WorkRequest so the master can recognize stale requests (a request
  // sent while granted work was still in flight).
  std::uint64_t WorkReceived = 0;

  auto handle = [&](const Message &Msg) -> bool /*terminate?*/ {
    switch (Msg.Tag) {
    case TagUbUpdate: {
      ByteReader Reader(Msg.Payload);
      double Ub;
      if (Reader.readF64(Ub))
        KnownUb = std::min(KnownUb, Ub);
      return false;
    }
    case TagNeedWork:
      DonateRequested = true;
      return false;
    case TagWork: {
      auto T = decodeTopology(Msg.Payload);
      assert(T && "malformed Work payload");
      Local.push_back(std::move(*T));
      ++Worker.PulledFromGlobal;
      ++WorkReceived;
      return false;
    }
    case TagTerminate:
      return true;
    default:
      assert(false && "unexpected message tag at slave");
      return false;
    }
  };

  for (;;) {
    // Drain pending control traffic.
    while (auto Msg = Self.tryRecv())
      if (handle(*Msg)) {
        Self.send(0, TagStats, encodeStats(Stats, Worker));
        return;
      }

    if (DonateRequested && Local.size() > 1) {
      // The paper's donation step: ship the worst local node (front).
      Self.send(0, TagDonation, encodeTopology(Local.front()));
      Local.pop_front();
      ++Worker.DonatedToGlobal;
      DonateRequested = false;
    }

    if (Local.empty()) {
      ByteWriter Writer;
      Writer.writeU64(WorkReceived);
      Self.send(0, TagWorkRequest, Writer.take());
      // Block until work or termination arrives.
      for (;;) {
        Message Msg = Self.recv();
        bool Terminate = handle(Msg);
        if (Terminate) {
          Self.send(0, TagStats, encodeStats(Stats, Worker));
          return;
        }
        if (Msg.Tag == TagWork)
          break;
      }
      continue;
    }

    Topology Current = std::move(Local.back());
    Local.pop_back();

    if (Engine.lowerBound(Current) >= KnownUb - Eps) {
      ++Stats.PrunedByBound;
      continue;
    }

    ++Stats.Branched;
    ++Worker.Branched;
    for (Topology &Child : Engine.branch(Current, KnownUb, Stats)) {
      if (Engine.isComplete(Child)) {
        double Cost = Child.cost();
        if (Cost < KnownUb - Eps) {
          KnownUb = Cost;
          ++Worker.UbUpdates;
          ++Stats.UbUpdates;
          Self.send(0, TagSolution, encodeSolution(Cost, Child));
        }
        continue;
      }
      Local.push_back(std::move(Child)); // ascending order: back = best
    }
  }
}

} // namespace

MpMutResult mutk::solveMutMessagePassing(const DistanceMatrix &M,
                                         int NumWorkers,
                                         const BnbOptions &Options) {
  assert(NumWorkers >= 1 && "need at least one worker rank");
  assert(!Options.CollectAllOptimal &&
         "CollectAllOptimal is not supported by the message-passing solver");

  MpMutResult Result;
  Result.Workers.resize(static_cast<std::size_t>(NumWorkers));
  if (M.size() <= 1) {
    if (M.size() == 1) {
      Result.Tree.addLeaf(0);
      Result.Tree.setNames(M.names());
    }
    return Result;
  }

  BnbEngine Engine(M, Options);
  const double Eps = Options.Epsilon;
  double Ub = Engine.initialUpperBound();
  bool HasBest = false;
  Topology BestTopology;

  // Master phase: seed the BBT to 2x the number of computing nodes.
  std::deque<Topology> Frontier;
  Frontier.push_back(Engine.rootTopology());
  BnbStats &Stats = Result.Stats;
  while (!Frontier.empty() &&
         static_cast<int>(Frontier.size()) < 2 * NumWorkers) {
    Topology T = std::move(Frontier.front());
    Frontier.pop_front();
    if (Engine.isComplete(T)) {
      if (T.cost() < Ub - Eps) {
        Ub = T.cost();
        BestTopology = T;
        HasBest = true;
      }
      continue;
    }
    ++Stats.Branched;
    for (Topology &Child : Engine.branch(T, Ub, Stats)) {
      if (Engine.isComplete(Child)) {
        if (Child.cost() < Ub - Eps) {
          Ub = Child.cost();
          BestTopology = Child;
          HasBest = true;
          ++Stats.UbUpdates;
        }
        continue;
      }
      Frontier.push_back(std::move(Child));
    }
  }
  std::vector<Topology> Sorted(std::make_move_iterator(Frontier.begin()),
                               std::make_move_iterator(Frontier.end()));
  std::sort(Sorted.begin(), Sorted.end(),
            [&Engine](const Topology &A, const Topology &B) {
              return Engine.lowerBound(A) < Engine.lowerBound(B);
            });

  Communicator World(NumWorkers + 1);
  Communicator::Endpoint Master = World.endpoint(0);

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<std::size_t>(NumWorkers));
  for (int W = 1; W <= NumWorkers; ++W)
    Threads.emplace_back(slaveMain, World.endpoint(W), std::cref(Options));

  // Init every worker with the relabeled matrix and UB.
  {
    ByteWriter Writer;
    Writer.writeF64(Ub);
    std::vector<std::uint8_t> InitPayload = Writer.take();
    std::vector<std::uint8_t> MatrixBytes =
        encodeMatrix(Engine.relabeledMatrix());
    InitPayload.insert(InitPayload.end(), MatrixBytes.begin(),
                       MatrixBytes.end());
    for (int W = 1; W <= NumWorkers; ++W)
      Master.send(W, TagInit, InitPayload);
  }

  // Work-message counters per worker rank; a WorkRequest carrying a
  // smaller received-count than this is stale (its work is in flight).
  std::vector<std::uint64_t> SentWork(
      static_cast<std::size_t>(NumWorkers) + 1, 0);

  // Deal the sorted frontier cyclically (Step 6 of the paper).
  for (std::size_t I = 0; I < Sorted.size(); ++I) {
    int Dest = 1 + static_cast<int>(I % static_cast<std::size_t>(NumWorkers));
    ++SentWork[static_cast<std::size_t>(Dest)];
    Master.send(Dest, TagWork, encodeTopology(Sorted[I]));
  }

  // Coordinator loop.
  std::deque<Topology> GlobalPool;
  std::deque<int> PendingRequesters;
  int StatsCollected = 0;
  bool Terminating = false;
  while (StatsCollected < NumWorkers) {
    Message Msg = Master.recv();
    switch (Msg.Tag) {
    case TagSolution: {
      ByteReader Reader(Msg.Payload);
      double Cost;
      bool Ok = Reader.readF64(Cost);
      assert(Ok && "malformed Solution payload");
      (void)Ok;
      if (Cost < Ub - Eps) {
        std::vector<std::uint8_t> TopoBytes(Msg.Payload.begin() + 8,
                                            Msg.Payload.end());
        auto T = decodeTopology(TopoBytes);
        assert(T && "malformed Solution topology");
        Ub = Cost;
        BestTopology = std::move(*T);
        HasBest = true;
        ++Stats.UbUpdates;
        ByteWriter Writer;
        Writer.writeF64(Ub);
        Master.broadcast(TagUbUpdate, Writer.bytes());
      }
      break;
    }
    case TagDonation: {
      auto T = decodeTopology(Msg.Payload);
      assert(T && "malformed Donation payload");
      if (!PendingRequesters.empty()) {
        int Dest = PendingRequesters.front();
        PendingRequesters.pop_front();
        ++SentWork[static_cast<std::size_t>(Dest)];
        Master.send(Dest, TagWork, encodeTopology(*T));
      } else {
        GlobalPool.push_back(std::move(*T));
      }
      break;
    }
    case TagWorkRequest: {
      ByteReader Reader(Msg.Payload);
      std::uint64_t Received = 0;
      bool Ok = Reader.readU64(Received);
      assert(Ok && "malformed WorkRequest payload");
      (void)Ok;
      if (Received < SentWork[static_cast<std::size_t>(Msg.Source)])
        break; // stale: granted work is still in flight to this worker
      if (!GlobalPool.empty()) {
        ++SentWork[static_cast<std::size_t>(Msg.Source)];
        Master.send(Msg.Source, TagWork, encodeTopology(GlobalPool.front()));
        GlobalPool.pop_front();
        break;
      }
      PendingRequesters.push_back(Msg.Source);
      if (static_cast<int>(PendingRequesters.size()) == NumWorkers) {
        // Every computing node is idle and the pool is dry: FIFO
        // channels guarantee no donation is still in flight.
        if (!Terminating) {
          Terminating = true;
          Master.broadcast(TagTerminate);
        }
      } else if (!Terminating) {
        Master.broadcast(TagNeedWork);
      }
      break;
    }
    case TagStats: {
      ByteReader Reader(Msg.Payload);
      BnbStats S;
      WorkerStats W;
      bool Ok = Reader.readU64(S.Branched) && Reader.readU64(S.Generated) &&
                Reader.readU64(S.PrunedByBound) &&
                Reader.readU64(S.PrunedByThreeThree) &&
                Reader.readU64(S.UbUpdates) && Reader.readU64(W.Branched) &&
                Reader.readU64(W.PulledFromGlobal) &&
                Reader.readU64(W.DonatedToGlobal) &&
                Reader.readU64(W.UbUpdates);
      assert(Ok && "malformed Stats payload");
      (void)Ok;
      Stats.Branched += S.Branched;
      Stats.Generated += S.Generated;
      Stats.PrunedByBound += S.PrunedByBound;
      Stats.PrunedByThreeThree += S.PrunedByThreeThree;
      Result.Workers[static_cast<std::size_t>(Msg.Source - 1)] = W;
      ++StatsCollected;
      break;
    }
    default:
      assert(false && "unexpected message tag at master");
      break;
    }
  }

  for (std::thread &T : Threads)
    T.join();

  if (HasBest) {
    Result.Tree = Engine.finalize(BestTopology);
    Result.Cost = BestTopology.cost();
  } else {
    Result.Tree = Engine.initialTree();
    Result.Cost = Engine.initialUpperBound();
  }
  Result.MessagesSent = World.messagesSent();
  Result.BytesSent = World.bytesSent();
  return Result;
}
