//===- mp/MpBnb.cpp - Message-passing master/slave B&B ---------------------===//

#include "mp/MpBnb.h"

#include "bnb/Engine.h"
#include "mp/Communicator.h"
#include "mp/Serialize.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <thread>

using namespace mutk;

const char *mutk::mpTagName(int Tag) {
  switch (Tag) {
  case MpTagInit:
    return "Init";
  case MpTagWork:
    return "Work";
  case MpTagWorkRequest:
    return "WorkRequest";
  case MpTagDonation:
    return "Donation";
  case MpTagSolution:
    return "Solution";
  case MpTagUbUpdate:
    return "UbUpdate";
  case MpTagNeedWork:
    return "NeedWork";
  case MpTagTerminate:
    return "Terminate";
  case MpTagStats:
    return "Stats";
  case MpTagStealRequest:
    return "StealRequest";
  case MpTagStealReply:
    return "StealReply";
  case MpTagStealGrant:
    return "StealGrant";
  default:
    return "?";
  }
}

namespace {

std::vector<std::uint8_t> encodeSolution(double Cost, const Topology &T) {
  ByteWriter Writer;
  Writer.writeF64(Cost);
  for (std::uint8_t Byte : encodeTopology(T))
    Writer.writeU8(Byte);
  return Writer.take();
}

std::vector<std::uint8_t> encodeStats(const BnbStats &Stats,
                                      const WorkerStats &Worker) {
  ByteWriter Writer;
  Writer.writeU64(Stats.Branched);
  Writer.writeU64(Stats.Generated);
  Writer.writeU64(Stats.PrunedByBound);
  Writer.writeU64(Stats.PrunedByThreeThree);
  Writer.writeU64(Stats.UbUpdates);
  Writer.writeU64(Worker.Branched);
  Writer.writeU64(Worker.PulledFromGlobal);
  Writer.writeU64(Worker.DonatedToGlobal);
  Writer.writeU64(Worker.UbUpdates);
  Writer.writeU64(Worker.StolenFromPeers);
  Writer.writeU64(Worker.DonatedToPeers);
  Writer.writeU64(Worker.PeerUbBroadcasts);
  return Writer.take();
}

} // namespace

WorkerStats mutk::runMpSlave(MpEndpoint &Self, const BnbOptions &Options,
                             const MpProtocolOptions &Proto) {
  BnbStats Stats;
  WorkerStats Worker;

  // Wait for Init: the relabeled matrix and the starting upper bound.
  // A Terminate before Init means the master solved a trivial instance
  // without distributing anything. Relayed peer frames can also land
  // before Init: the master's main thread writes Init to each worker in
  // turn while its reader threads relay worker-to-worker traffic onto
  // the same links, so a fast worker that comes up dry can have its
  // StealRequest (or an incumbent broadcast) forwarded to a peer that
  // has not seen Init yet. Those frames are answered conservatively
  // here — a steal is refused (the thief blocks on the reply, so it
  // must always get one), bounds and donation pleas are folded into the
  // post-Init state.
  DistanceMatrix Relabeled;
  double KnownUb = 0.0;
  bool PreInitNeedWork = false;
  double PreInitUb = std::numeric_limits<double>::infinity();
  for (;;) {
    Message Init = Self.recv();
    if (Init.Tag == MpTagTerminate) {
      Self.send(0, MpTagStats, encodeStats(Stats, Worker));
      return Worker;
    }
    if (Init.Tag == MpTagStealRequest) {
      ByteWriter Reply;
      Reply.writeU8(0);
      Self.send(Init.Source, MpTagStealReply, Reply.take());
      continue;
    }
    if (Init.Tag == MpTagUbUpdate) {
      ByteReader Reader(Init.Payload);
      double Ub;
      if (Reader.readF64(Ub))
        PreInitUb = std::min(PreInitUb, Ub);
      continue;
    }
    if (Init.Tag == MpTagNeedWork) {
      PreInitNeedWork = true;
      continue;
    }
    assert(Init.Tag == MpTagInit && "first message must be Init");
    ByteReader Reader(Init.Payload);
    double Ub;
    bool OkUb = Reader.readF64(Ub);
    assert(OkUb && "malformed Init payload");
    (void)OkUb;
    std::vector<std::uint8_t> MatrixBytes(Init.Payload.begin() + 8,
                                          Init.Payload.end());
    auto Decoded = decodeMatrix(MatrixBytes);
    assert(Decoded && "malformed Init matrix");
    Relabeled = std::move(*Decoded);
    KnownUb = std::min(Ub, PreInitUb);
    break;
  }
  // The worker's engine must share the master's label space exactly:
  // the shipped matrix is already maxmin-ordered, so skip relabeling.
  BnbOptions SlaveOptions = Options;
  SlaveOptions.InitialUpperBound = KnownUb;
  SlaveOptions.AssumeMaxminOrdered = true;
  BnbEngine Engine(Relabeled, SlaveOptions);
  const double Eps = Options.Epsilon;
  const int NumWorkers = Self.size() - 1;

  std::deque<Topology> Local; // back = best
  std::vector<BranchedChild> Branches;
  bool DonateRequested = PreInitNeedWork;
  // Cumulative count of work items received (master Work messages and
  // granted steals); shipped inside every WorkRequest so the master can
  // recognize stale requests (a request sent while granted work was
  // still in flight).
  std::uint64_t WorkReceived = 0;
  // True while this worker has an outstanding StealRequest. At most one
  // at a time, and it always waits for the reply before asking the
  // master — that is what keeps stolen work visible to the termination
  // protocol (see MpBnb.h).
  bool StealInFlight = false;
  // One steal attempt per dry spell; reset whenever new work arrives.
  bool TriedSteal = false;
  std::uint64_t VictimCursor = static_cast<std::uint64_t>(Self.rank());

  auto pickVictim = [&]() -> int {
    for (;;) {
      int V = 1 + static_cast<int>(VictimCursor++ %
                                   static_cast<std::uint64_t>(NumWorkers));
      if (V != Self.rank())
        return V;
    }
  };

  auto announceIncumbent = [&](double Cost, const Topology &T) {
    Self.send(0, MpTagSolution, encodeSolution(Cost, T));
    if (Proto.PeerUbBroadcast) {
      ByteWriter Writer;
      Writer.writeF64(Cost);
      for (int Peer = 1; Peer <= NumWorkers; ++Peer)
        if (Peer != Self.rank()) {
          Self.send(Peer, MpTagUbUpdate, Writer.bytes());
          ++Worker.PeerUbBroadcasts;
        }
    }
  };

  auto handle = [&](const Message &Msg) -> bool /*terminate?*/ {
    switch (Msg.Tag) {
    case MpTagUbUpdate: {
      // From the master or (peer broadcast mode) directly from a peer;
      // either way the local bound cache keeps the min of everything
      // heard so far.
      ByteReader Reader(Msg.Payload);
      double Ub;
      if (Reader.readF64(Ub))
        KnownUb = std::min(KnownUb, Ub);
      return false;
    }
    case MpTagNeedWork:
      DonateRequested = true;
      return false;
    case MpTagWork: {
      auto T = decodeTopology(Msg.Payload);
      assert(T && "malformed Work payload");
      Local.push_back(std::move(*T));
      ++Worker.PulledFromGlobal;
      ++WorkReceived;
      TriedSteal = false;
      return false;
    }
    case MpTagStealRequest: {
      // A dry peer asks for work. Grant the *front* of the deque (the
      // worst, shallowest node — the one donation would ship too) when
      // we can spare it and it is within the depth bound; shallow nodes
      // represent large subtrees, so they are the ones worth moving.
      bool CanGrant =
          Local.size() > 1 &&
          (Proto.StealDepthBound <= 0 ||
           Local.front().numPlaced() <= Proto.StealDepthBound);
      ByteWriter Reply;
      if (CanGrant) {
        // Report the grant to the master *first*: FIFO on this channel
        // guarantees the master learns of it before any later idle
        // report from this worker, keeping termination safe.
        ByteWriter Grant;
        Grant.writeU32(static_cast<std::uint32_t>(Msg.Source));
        Self.send(0, MpTagStealGrant, Grant.take());
        Reply.writeU8(1);
        for (std::uint8_t Byte : encodeTopology(Local.front()))
          Reply.writeU8(Byte);
        Local.pop_front();
        ++Worker.DonatedToPeers;
      } else {
        Reply.writeU8(0);
      }
      Self.send(Msg.Source, MpTagStealReply, Reply.take());
      return false;
    }
    case MpTagStealReply: {
      assert(StealInFlight && "unsolicited StealReply");
      StealInFlight = false;
      ByteReader Reader(Msg.Payload);
      std::uint8_t Granted = 0;
      bool Ok = Reader.readU8(Granted);
      assert(Ok && "malformed StealReply payload");
      (void)Ok;
      if (Granted) {
        std::vector<std::uint8_t> TopoBytes(Msg.Payload.begin() + 1,
                                            Msg.Payload.end());
        auto T = decodeTopology(TopoBytes);
        assert(T && "malformed StealReply topology");
        Local.push_back(std::move(*T));
        ++Worker.StolenFromPeers;
        ++WorkReceived;
        TriedSteal = false;
      }
      return false;
    }
    case MpTagTerminate:
      return true;
    default:
      assert(false && "unexpected message tag at slave");
      return false;
    }
  };

  auto finish = [&]() -> WorkerStats {
    Self.send(0, MpTagStats, encodeStats(Stats, Worker));
    return Worker;
  };

  for (;;) {
    // Drain pending control traffic.
    while (auto Msg = Self.tryRecv())
      if (handle(*Msg))
        return finish();

    if (DonateRequested && Local.size() > 1) {
      // The paper's donation step: ship the worst local node (front).
      Self.send(0, MpTagDonation, encodeTopology(Local.front()));
      Local.pop_front();
      ++Worker.DonatedToGlobal;
      DonateRequested = false;
    }

    if (Local.empty()) {
      if (Proto.WorkStealing && NumWorkers > 1 && !TriedSteal) {
        TriedSteal = true;
        Self.send(pickVictim(), MpTagStealRequest);
        StealInFlight = true;
        // Block until the reply (victims always answer, even while they
        // are themselves waiting for work).
        while (StealInFlight) {
          Message Msg = Self.recv();
          if (handle(Msg))
            return finish();
        }
        if (!Local.empty())
          continue;
      }
      ByteWriter Writer;
      Writer.writeU64(WorkReceived);
      Self.send(0, MpTagWorkRequest, Writer.take());
      // Block until work or termination arrives.
      for (;;) {
        Message Msg = Self.recv();
        bool Terminate = handle(Msg);
        if (Terminate)
          return finish();
        if (Msg.Tag == MpTagWork)
          break;
      }
      continue;
    }

    Topology Current = std::move(Local.back());
    Local.pop_back();

    if (Engine.lowerBound(Current) >= KnownUb - Eps) {
      ++Stats.PrunedByBound;
      continue;
    }

    ++Stats.Branched;
    ++Worker.Branched;
    Engine.branch(Current, KnownUb, Stats, Branches);
    for (BranchedChild &BC : Branches) {
      Topology &Child = BC.Node;
      if (Engine.isComplete(Child)) {
        double Cost = Child.cost();
        if (Cost < KnownUb - Eps) {
          KnownUb = Cost;
          ++Worker.UbUpdates;
          ++Stats.UbUpdates;
          announceIncumbent(Cost, Child);
        }
        continue;
      }
      Local.push_back(std::move(Child)); // ascending order: back = best
    }
  }
}

MpMutResult mutk::runMpMaster(MpEndpoint &Self, const DistanceMatrix &M,
                              const BnbOptions &Options,
                              const MpProtocolOptions &Proto) {
  (void)Proto; // the master's side of the protocol is extension-agnostic
  assert(Self.rank() == 0 && "master must run on rank 0");
  const int NumWorkers = Self.size() - 1;
  assert(NumWorkers >= 1 && "need at least one worker rank");
  assert(!Options.CollectAllOptimal &&
         "CollectAllOptimal is not supported by the message-passing solver");

  MpMutResult Result;
  Result.Workers.resize(static_cast<std::size_t>(NumWorkers));

  // Collects the final Stats message from every worker; every exit path
  // goes through here so slaves always unblock.
  auto collectStats = [&](BnbStats &Stats) {
    int StatsCollected = 0;
    while (StatsCollected < NumWorkers) {
      Message Msg = Self.recv();
      if (Msg.Tag != MpTagStats)
        continue; // late Solution/Donation/StealGrant: nothing to do
      ByteReader Reader(Msg.Payload);
      BnbStats S;
      WorkerStats W;
      bool Ok = Reader.readU64(S.Branched) && Reader.readU64(S.Generated) &&
                Reader.readU64(S.PrunedByBound) &&
                Reader.readU64(S.PrunedByThreeThree) &&
                Reader.readU64(S.UbUpdates) && Reader.readU64(W.Branched) &&
                Reader.readU64(W.PulledFromGlobal) &&
                Reader.readU64(W.DonatedToGlobal) &&
                Reader.readU64(W.UbUpdates) &&
                Reader.readU64(W.StolenFromPeers) &&
                Reader.readU64(W.DonatedToPeers) &&
                Reader.readU64(W.PeerUbBroadcasts);
      assert(Ok && "malformed Stats payload");
      (void)Ok;
      Stats.Branched += S.Branched;
      Stats.Generated += S.Generated;
      Stats.PrunedByBound += S.PrunedByBound;
      Stats.PrunedByThreeThree += S.PrunedByThreeThree;
      Result.Workers[static_cast<std::size_t>(Msg.Source - 1)] = W;
      ++StatsCollected;
    }
  };

  if (M.size() <= 1) {
    if (M.size() == 1) {
      Result.Tree.addLeaf(0);
      Result.Tree.setNames(M.names());
    }
    Self.broadcast(MpTagTerminate);
    collectStats(Result.Stats);
    return Result;
  }

  BnbEngine Engine(M, Options);
  const double Eps = Options.Epsilon;
  double Ub = Engine.initialUpperBound();
  bool HasBest = false;
  Topology BestTopology;

  // Master phase: seed the BBT to 2x the number of computing nodes.
  std::deque<Topology> Frontier;
  std::vector<BranchedChild> Branches;
  Frontier.push_back(Engine.rootTopology());
  BnbStats &Stats = Result.Stats;
  while (!Frontier.empty() &&
         static_cast<int>(Frontier.size()) < 2 * NumWorkers) {
    Topology T = std::move(Frontier.front());
    Frontier.pop_front();
    if (Engine.isComplete(T)) {
      if (T.cost() < Ub - Eps) {
        Ub = T.cost();
        BestTopology = T;
        HasBest = true;
      }
      continue;
    }
    ++Stats.Branched;
    Engine.branch(T, Ub, Stats, Branches);
    for (BranchedChild &BC : Branches) {
      Topology &Child = BC.Node;
      if (Engine.isComplete(Child)) {
        if (Child.cost() < Ub - Eps) {
          Ub = Child.cost();
          BestTopology = Child;
          HasBest = true;
          ++Stats.UbUpdates;
        }
        continue;
      }
      Frontier.push_back(std::move(Child));
    }
  }
  std::vector<Topology> Sorted(std::make_move_iterator(Frontier.begin()),
                               std::make_move_iterator(Frontier.end()));
  std::sort(Sorted.begin(), Sorted.end(),
            [&Engine](const Topology &A, const Topology &B) {
              return Engine.lowerBound(A) < Engine.lowerBound(B);
            });

  // Init every worker with the relabeled matrix and UB.
  {
    ByteWriter Writer;
    Writer.writeF64(Ub);
    std::vector<std::uint8_t> InitPayload = Writer.take();
    std::vector<std::uint8_t> MatrixBytes =
        encodeMatrix(Engine.relabeledMatrix());
    InitPayload.insert(InitPayload.end(), MatrixBytes.begin(),
                       MatrixBytes.end());
    for (int W = 1; W <= NumWorkers; ++W)
      Self.send(W, MpTagInit, InitPayload);
  }

  // Credit counters per worker rank: master Work grants plus reported
  // peer-steal grants. A WorkRequest carrying a smaller received-count
  // than this is stale (its work is still in flight).
  std::vector<std::uint64_t> Expected(static_cast<std::size_t>(NumWorkers) + 1,
                                      0);

  // Deal the sorted frontier cyclically (Step 6 of the paper).
  for (std::size_t I = 0; I < Sorted.size(); ++I) {
    int Dest = 1 + static_cast<int>(I % static_cast<std::size_t>(NumWorkers));
    ++Expected[static_cast<std::size_t>(Dest)];
    Self.send(Dest, MpTagWork, encodeTopology(Sorted[I]));
  }

  // Coordinator loop.
  std::deque<Topology> GlobalPool;
  std::deque<int> PendingRequesters;
  int StatsCollected = 0;
  bool Terminating = false;
  while (StatsCollected < NumWorkers) {
    Message Msg = Self.recv();
    switch (Msg.Tag) {
    case MpTagSolution: {
      ByteReader Reader(Msg.Payload);
      double Cost;
      bool Ok = Reader.readF64(Cost);
      assert(Ok && "malformed Solution payload");
      (void)Ok;
      if (Cost < Ub - Eps) {
        std::vector<std::uint8_t> TopoBytes(Msg.Payload.begin() + 8,
                                            Msg.Payload.end());
        auto T = decodeTopology(TopoBytes);
        assert(T && "malformed Solution topology");
        Ub = Cost;
        BestTopology = std::move(*T);
        HasBest = true;
        ++Stats.UbUpdates;
        ByteWriter Writer;
        Writer.writeF64(Ub);
        Self.broadcast(MpTagUbUpdate, Writer.bytes());
      }
      break;
    }
    case MpTagDonation: {
      auto T = decodeTopology(Msg.Payload);
      assert(T && "malformed Donation payload");
      if (!PendingRequesters.empty()) {
        int Dest = PendingRequesters.front();
        PendingRequesters.pop_front();
        ++Expected[static_cast<std::size_t>(Dest)];
        Self.send(Dest, MpTagWork, encodeTopology(*T));
      } else {
        GlobalPool.push_back(std::move(*T));
      }
      break;
    }
    case MpTagStealGrant: {
      // A victim moved one of its nodes to a thief. Credit the thief so
      // its next WorkRequest (sent only after it drains the stolen
      // node) is not mistaken for a stale one.
      ByteReader Reader(Msg.Payload);
      std::uint32_t Thief = 0;
      bool Ok = Reader.readU32(Thief);
      assert(Ok && Thief >= 1 &&
             Thief <= static_cast<std::uint32_t>(NumWorkers) &&
             "malformed StealGrant payload");
      (void)Ok;
      ++Expected[static_cast<std::size_t>(Thief)];
      break;
    }
    case MpTagWorkRequest: {
      ByteReader Reader(Msg.Payload);
      std::uint64_t Received = 0;
      bool Ok = Reader.readU64(Received);
      assert(Ok && "malformed WorkRequest payload");
      (void)Ok;
      if (Received < Expected[static_cast<std::size_t>(Msg.Source)])
        break; // stale: granted work is still in flight to this worker
      if (!GlobalPool.empty()) {
        ++Expected[static_cast<std::size_t>(Msg.Source)];
        Self.send(Msg.Source, MpTagWork, encodeTopology(GlobalPool.front()));
        GlobalPool.pop_front();
        break;
      }
      PendingRequesters.push_back(Msg.Source);
      if (static_cast<int>(PendingRequesters.size()) == NumWorkers) {
        // Every computing node is idle and the pool is dry: FIFO
        // channels guarantee no donation is still in flight.
        if (!Terminating) {
          Terminating = true;
          Self.broadcast(MpTagTerminate);
        }
      } else if (!Terminating) {
        Self.broadcast(MpTagNeedWork);
      }
      break;
    }
    case MpTagStats: {
      ByteReader Reader(Msg.Payload);
      BnbStats S;
      WorkerStats W;
      bool Ok = Reader.readU64(S.Branched) && Reader.readU64(S.Generated) &&
                Reader.readU64(S.PrunedByBound) &&
                Reader.readU64(S.PrunedByThreeThree) &&
                Reader.readU64(S.UbUpdates) && Reader.readU64(W.Branched) &&
                Reader.readU64(W.PulledFromGlobal) &&
                Reader.readU64(W.DonatedToGlobal) &&
                Reader.readU64(W.UbUpdates) &&
                Reader.readU64(W.StolenFromPeers) &&
                Reader.readU64(W.DonatedToPeers) &&
                Reader.readU64(W.PeerUbBroadcasts);
      assert(Ok && "malformed Stats payload");
      (void)Ok;
      Stats.Branched += S.Branched;
      Stats.Generated += S.Generated;
      Stats.PrunedByBound += S.PrunedByBound;
      Stats.PrunedByThreeThree += S.PrunedByThreeThree;
      Result.Workers[static_cast<std::size_t>(Msg.Source - 1)] = W;
      ++StatsCollected;
      break;
    }
    default:
      assert(false && "unexpected message tag at master");
      break;
    }
  }

  if (HasBest) {
    Result.Tree = Engine.finalize(BestTopology);
    Result.Cost = BestTopology.cost();
  } else {
    Result.Tree = Engine.initialTree();
    Result.Cost = Engine.initialUpperBound();
  }
  return Result;
}

MpMutResult mutk::solveMutMessagePassing(const DistanceMatrix &M,
                                         int NumWorkers,
                                         const BnbOptions &Options,
                                         const MpProtocolOptions &Proto) {
  assert(NumWorkers >= 1 && "need at least one worker rank");

  Communicator World(NumWorkers + 1);
  Communicator::Endpoint Master = World.endpoint(0);

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<std::size_t>(NumWorkers));
  for (int W = 1; W <= NumWorkers; ++W)
    Threads.emplace_back([&World, W, &Options, &Proto] {
      Communicator::Endpoint Self = World.endpoint(W);
      runMpSlave(Self, Options, Proto);
    });

  MpMutResult Result = runMpMaster(Master, M, Options, Proto);

  for (std::thread &T : Threads)
    T.join();

  Result.MessagesSent = World.messagesSent();
  Result.BytesSent = World.bytesSent();
  Result.Traffic = World.trafficByTag();
  return Result;
}
