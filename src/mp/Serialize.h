//===- mp/Serialize.h - Message payload (de)serialization -------*- C++ -*-===//
///
/// \file
/// Byte-level encoding for message payloads: little-endian fixed-width
/// scalars plus codecs for the structures the B&B protocol ships across
/// ranks — partial topologies and whole distance matrices. Every codec
/// has an exact round-trip guarantee (tested), since a corrupted BBT
/// node silently poisons a search.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MP_SERIALIZE_H
#define MUTK_MP_SERIALIZE_H

#include "bnb/Checkpoint.h"
#include "bnb/Topology.h"
#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mutk {

/// Appends fixed-width little-endian values to a byte buffer.
class ByteWriter {
public:
  std::vector<std::uint8_t> take() { return std::move(Buffer); }
  const std::vector<std::uint8_t> &bytes() const { return Buffer; }

  void writeU8(std::uint8_t Value) { Buffer.push_back(Value); }
  void writeU32(std::uint32_t Value);
  void writeI32(std::int32_t Value) {
    writeU32(static_cast<std::uint32_t>(Value));
  }
  void writeU64(std::uint64_t Value);
  void writeF64(double Value);
  void writeString(const std::string &Value);
  /// Length-prefixed raw byte blob (u32 size + bytes).
  void writeBytes(const std::vector<std::uint8_t> &Value);

private:
  std::vector<std::uint8_t> Buffer;
};

/// Reads values written by ByteWriter. All methods fail (return false /
/// nullopt) instead of reading past the end.
class ByteReader {
public:
  explicit ByteReader(const std::vector<std::uint8_t> &Bytes)
      : Bytes(Bytes) {}

  bool atEnd() const { return Position == Bytes.size(); }

  bool readU8(std::uint8_t &Value);
  bool readU32(std::uint32_t &Value);
  bool readI32(std::int32_t &Value);
  bool readU64(std::uint64_t &Value);
  bool readF64(double &Value);
  bool readString(std::string &Value);
  bool readBytes(std::vector<std::uint8_t> &Value);

private:
  const std::vector<std::uint8_t> &Bytes;
  std::size_t Position = 0;
};

/// Encodes a partial topology (BBT node) for shipping to another rank.
std::vector<std::uint8_t> encodeTopology(const Topology &T);

/// Decodes a topology; nullopt on malformed input.
std::optional<Topology> decodeTopology(const std::vector<std::uint8_t> &Bytes);

/// Encodes a distance matrix including species names.
std::vector<std::uint8_t> encodeMatrix(const DistanceMatrix &M);

/// Decodes a matrix; nullopt on malformed input.
std::optional<DistanceMatrix>
decodeMatrix(const std::vector<std::uint8_t> &Bytes);

/// \name Inline codecs (append to / read from an open stream).
///
/// The whole-buffer codecs above own their framing; these variants let
/// composite structures (search checkpoints, durable-cache records)
/// embed trees and topologies inside a larger payload.
/// @{
void writePhyloTree(ByteWriter &Writer, const PhyloTree &Tree);
bool readPhyloTree(ByteReader &Reader, PhyloTree &Tree);
void writeTopology(ByteWriter &Writer, const Topology &T);
bool readTopology(ByteReader &Reader, std::optional<Topology> &T);
/// @}

/// Encodes an ultrametric tree (shape, heights, species ids, names).
/// Exact round trip: heights are shipped bit-exact.
std::vector<std::uint8_t> encodePhyloTree(const PhyloTree &Tree);

/// Decodes a tree; nullopt on malformed input.
std::optional<PhyloTree>
decodePhyloTree(const std::vector<std::uint8_t> &Bytes);

/// Encodes a branch-and-bound search checkpoint: the open frontier, the
/// incumbent tree, the upper bound and the counters accumulated so far
/// (`bnb/Checkpoint.h`). Persisted atomically by `persist/Checkpoint.h`.
std::vector<std::uint8_t> encodeSearchCheckpoint(const SearchCheckpoint &Ck);

/// Decodes a checkpoint; nullopt on malformed input (every embedded
/// topology is re-validated through `Topology::fromNodes`).
std::optional<SearchCheckpoint>
decodeSearchCheckpoint(const std::vector<std::uint8_t> &Bytes);

} // namespace mutk

#endif // MUTK_MP_SERIALIZE_H
