//===- mp/Communicator.h - In-process message passing -----------*- C++ -*-===//
///
/// \file
/// A small MPI-flavoured message-passing runtime: a `Communicator` is a
/// world of `P` ranks with point-to-point tagged messages and FIFO
/// delivery per (source, destination) pair. The papers' system ran on
/// MPICH over a PC cluster; this substrate reproduces that programming
/// model in one process (ranks = threads), so the master/slave protocol
/// of `mp/MpBnb.h` is a faithful port of the original architecture
/// rather than a shared-memory shortcut.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MP_COMMUNICATOR_H
#define MUTK_MP_COMMUNICATOR_H

#include "mp/Endpoint.h"
#include "support/Mutex.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace mutk {

/// Message/byte counters for one tag value; see
/// `Communicator::trafficByTag`.
struct TagTraffic {
  int Tag = 0;
  std::uint64_t Messages = 0;
  std::uint64_t Bytes = 0;
};

/// A world of message-passing ranks.
///
/// Thread-safe: each rank is meant to be driven by one thread through
/// `endpoint(rank)`, but any thread may send to any rank. Delivery is
/// FIFO per (source, destination) pair (like MPI's non-overtaking rule
/// for equal tags) because each destination keeps a single arrival
/// queue.
class Communicator {
public:
  explicit Communicator(int NumRanks);

  int size() const { return static_cast<int>(Inboxes.size()); }

  /// Per-rank handle. Cheap to copy; implements the transport-agnostic
  /// `MpEndpoint` contract so the B&B loops also run over sockets.
  class Endpoint : public MpEndpoint {
  public:
    Endpoint() = default;

    int rank() const override { return Rank; }
    int size() const override { return World->size(); }

    /// Sends \p Payload to \p Dest with \p Tag. Self-sends are allowed.
    void send(int Dest, int Tag,
              std::vector<std::uint8_t> Payload = {}) override;

    /// Non-blocking receive; empty when no message is waiting.
    std::optional<Message> tryRecv() override;

    /// Blocking receive.
    Message recv() override;

  private:
    friend class Communicator;
    Endpoint(Communicator *World, int Rank) : World(World), Rank(Rank) {}
    Communicator *World = nullptr;
    int Rank = -1;
  };

  /// Handle for \p Rank.
  Endpoint endpoint(int Rank);

  /// Total messages delivered so far (monotone; for stats/tests).
  std::uint64_t messagesSent() const;

  /// Total payload bytes delivered so far.
  std::uint64_t bytesSent() const;

  /// Per-tag message/byte counters, ascending by tag. The traffic shape
  /// of the protocol (how much of the volume is Work vs UbUpdate vs
  /// control chatter) is what `bench/ext_message_traffic` tracks.
  std::vector<TagTraffic> trafficByTag() const;

private:
  struct Inbox {
    Mutex Lock{"mp.inbox"};
    CondVar Ready;
    std::deque<Message> Queue MUTK_GUARDED_BY(Lock);
  };
  // unique_ptr would also work; deque of Inbox is immovable, so use a
  // vector of pointers for stable addresses.
  std::vector<std::unique_ptr<Inbox>> Inboxes;
  mutable Mutex StatsLock{"mp.stats"};
  std::uint64_t Messages MUTK_GUARDED_BY(StatsLock) = 0;
  std::uint64_t Bytes MUTK_GUARDED_BY(StatsLock) = 0;
  std::map<int, TagTraffic> Traffic MUTK_GUARDED_BY(StatsLock);

  void deliver(int Dest, Message Msg);
};

} // namespace mutk

#endif // MUTK_MP_COMMUNICATOR_H
