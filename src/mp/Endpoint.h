//===- mp/Endpoint.h - Abstract message-passing endpoint --------*- C++ -*-===//
///
/// \file
/// The rank-local view of a message-passing world, abstracted away from
/// the transport. `mp/MpBnb.h`'s master and slave loops are written
/// against this interface only, so the same protocol runs over the
/// in-process `Communicator` (ranks = threads) and over framed TCP
/// sockets between `mutkd` peers (`dist/MpSocket.h`) without change —
/// the property the papers' MPI port relies on.
///
/// Contract required by the protocol:
///  - delivery is FIFO per (source, destination) pair;
///  - `recv` blocks until a message arrives; `tryRecv` never blocks;
///  - `send` never blocks on the receiver (buffered transports).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MP_ENDPOINT_H
#define MUTK_MP_ENDPOINT_H

#include <cstdint>
#include <optional>
#include <vector>

namespace mutk {

/// A tagged, rank-addressed message.
struct Message {
  int Source = -1;
  int Tag = 0;
  std::vector<std::uint8_t> Payload;
};

/// One rank's handle into a message-passing world.
class MpEndpoint {
public:
  virtual ~MpEndpoint() = default;

  /// This endpoint's rank (0 = master by convention).
  virtual int rank() const = 0;

  /// Number of ranks in the world, master included.
  virtual int size() const = 0;

  /// Sends \p Payload to \p Dest with \p Tag. Self-sends are allowed on
  /// transports that support them; the B&B protocol never self-sends.
  virtual void send(int Dest, int Tag,
                    std::vector<std::uint8_t> Payload = {}) = 0;

  /// Non-blocking receive; empty when no message is waiting.
  virtual std::optional<Message> tryRecv() = 0;

  /// Blocking receive.
  virtual Message recv() = 0;

  /// Sends to every other rank (not self). Transports may override with
  /// a cheaper native broadcast.
  virtual void broadcast(int Tag, const std::vector<std::uint8_t> &Payload = {}) {
    for (int Dest = 0; Dest < size(); ++Dest)
      if (Dest != rank())
        send(Dest, Tag, Payload);
  }
};

} // namespace mutk

#endif // MUTK_MP_ENDPOINT_H
