//===- mp/Communicator.cpp - In-process message passing ---------------------===//

#include "mp/Communicator.h"

#include <cassert>
#include <memory>

using namespace mutk;

Communicator::Communicator(int NumRanks) {
  assert(NumRanks >= 1 && "need at least one rank");
  Inboxes.reserve(static_cast<std::size_t>(NumRanks));
  for (int I = 0; I < NumRanks; ++I)
    Inboxes.push_back(std::make_unique<Inbox>());
}

Communicator::Endpoint Communicator::endpoint(int Rank) {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  return Endpoint(this, Rank);
}

void Communicator::deliver(int Dest, Message Msg) {
  assert(Dest >= 0 && Dest < size() && "destination out of range");
  {
    MutexLock Stats(StatsLock);
    ++Messages;
    Bytes += Msg.Payload.size();
    TagTraffic &T = Traffic[Msg.Tag];
    T.Tag = Msg.Tag;
    ++T.Messages;
    T.Bytes += Msg.Payload.size();
  }
  Inbox &Box = *Inboxes[static_cast<std::size_t>(Dest)];
  {
    MutexLock Lock(Box.Lock);
    Box.Queue.push_back(std::move(Msg));
  }
  Box.Ready.notify_one();
}

void Communicator::Endpoint::send(int Dest, int Tag,
                                  std::vector<std::uint8_t> Payload) {
  assert(World && "endpoint not bound to a communicator");
  Message Msg;
  Msg.Source = Rank;
  Msg.Tag = Tag;
  Msg.Payload = std::move(Payload);
  World->deliver(Dest, std::move(Msg));
}

std::optional<Message> Communicator::Endpoint::tryRecv() {
  assert(World && "endpoint not bound to a communicator");
  auto &Box = *World->Inboxes[static_cast<std::size_t>(Rank)];
  MutexLock Lock(Box.Lock);
  if (Box.Queue.empty())
    return std::nullopt;
  Message Msg = std::move(Box.Queue.front());
  Box.Queue.pop_front();
  return Msg;
}

Message Communicator::Endpoint::recv() {
  assert(World && "endpoint not bound to a communicator");
  auto &Box = *World->Inboxes[static_cast<std::size_t>(Rank)];
  MutexLock Lock(Box.Lock);
  while (Box.Queue.empty())
    Box.Ready.wait(Lock);
  Message Msg = std::move(Box.Queue.front());
  Box.Queue.pop_front();
  return Msg;
}

std::uint64_t Communicator::messagesSent() const {
  MutexLock Stats(StatsLock);
  return Messages;
}

std::uint64_t Communicator::bytesSent() const {
  MutexLock Stats(StatsLock);
  return Bytes;
}

std::vector<TagTraffic> Communicator::trafficByTag() const {
  MutexLock Stats(StatsLock);
  std::vector<TagTraffic> Out;
  Out.reserve(Traffic.size());
  for (const auto &[Tag, T] : Traffic)
    Out.push_back(T);
  return Out;
}
