//===- mp/Serialize.cpp - Message payload (de)serialization ----------------===//

#include "mp/Serialize.h"

#include <cstring>

using namespace mutk;

void ByteWriter::writeU32(std::uint32_t Value) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Buffer.push_back(static_cast<std::uint8_t>(Value >> Shift));
}

void ByteWriter::writeU64(std::uint64_t Value) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Buffer.push_back(static_cast<std::uint8_t>(Value >> Shift));
}

void ByteWriter::writeF64(double Value) {
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "double must be 64 bits");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeU64(Bits);
}

void ByteWriter::writeString(const std::string &Value) {
  writeU32(static_cast<std::uint32_t>(Value.size()));
  for (char C : Value)
    Buffer.push_back(static_cast<std::uint8_t>(C));
}

void ByteWriter::writeBytes(const std::vector<std::uint8_t> &Value) {
  writeU32(static_cast<std::uint32_t>(Value.size()));
  Buffer.insert(Buffer.end(), Value.begin(), Value.end());
}

bool ByteReader::readU8(std::uint8_t &Value) {
  if (Position + 1 > Bytes.size())
    return false;
  Value = Bytes[Position++];
  return true;
}

bool ByteReader::readU32(std::uint32_t &Value) {
  if (Position + 4 > Bytes.size())
    return false;
  Value = 0;
  for (int Shift = 0; Shift < 32; Shift += 8)
    Value |= static_cast<std::uint32_t>(Bytes[Position++]) << Shift;
  return true;
}

bool ByteReader::readI32(std::int32_t &Value) {
  std::uint32_t Raw;
  if (!readU32(Raw))
    return false;
  Value = static_cast<std::int32_t>(Raw);
  return true;
}

bool ByteReader::readU64(std::uint64_t &Value) {
  if (Position + 8 > Bytes.size())
    return false;
  Value = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    Value |= static_cast<std::uint64_t>(Bytes[Position++]) << Shift;
  return true;
}

bool ByteReader::readF64(double &Value) {
  std::uint64_t Bits;
  if (!readU64(Bits))
    return false;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return true;
}

bool ByteReader::readString(std::string &Value) {
  std::uint32_t Length;
  if (!readU32(Length))
    return false;
  if (Position + Length > Bytes.size())
    return false;
  Value.assign(reinterpret_cast<const char *>(&Bytes[Position]), Length);
  Position += Length;
  return true;
}

bool ByteReader::readBytes(std::vector<std::uint8_t> &Value) {
  std::uint32_t Length;
  if (!readU32(Length))
    return false;
  if (Position + Length > Bytes.size())
    return false;
  Value.assign(Bytes.begin() + static_cast<std::ptrdiff_t>(Position),
               Bytes.begin() + static_cast<std::ptrdiff_t>(Position + Length));
  Position += Length;
  return true;
}

void mutk::writeTopology(ByteWriter &Writer, const Topology &T) {
  Writer.writeU32(static_cast<std::uint32_t>(T.numNodes()));
  Writer.writeI32(T.rootIndex());
  for (int I = 0; I < T.numNodes(); ++I) {
    const Topology::Node &N = T.node(I);
    Writer.writeI32(N.Parent);
    Writer.writeI32(N.Left);
    Writer.writeI32(N.Right);
    Writer.writeI32(N.Leaf);
    Writer.writeF64(N.Height);
    // Masks are re-derivable but shipping them avoids a rebuild pass and
    // lets fromNodes() cross-validate the payload.
    Writer.writeU64(N.Mask);
  }
}

bool mutk::readTopology(ByteReader &Reader, std::optional<Topology> &T) {
  std::uint32_t Count;
  std::int32_t Root;
  if (!Reader.readU32(Count) || !Reader.readI32(Root))
    return false;
  if (Count > 2 * static_cast<std::uint32_t>(MaxBnbSpecies))
    return false;

  std::vector<Topology::Node> Nodes(Count);
  for (std::uint32_t I = 0; I < Count; ++I) {
    Topology::Node &N = Nodes[I];
    std::int32_t Parent, Left, Right, Leaf;
    if (!Reader.readI32(Parent) || !Reader.readI32(Left) ||
        !Reader.readI32(Right) || !Reader.readI32(Leaf) ||
        !Reader.readF64(N.Height) || !Reader.readU64(N.Mask))
      return false;
    N.Parent = static_cast<std::int16_t>(Parent);
    N.Left = static_cast<std::int16_t>(Left);
    N.Right = static_cast<std::int16_t>(Right);
    N.Leaf = static_cast<std::int16_t>(Leaf);
  }
  T = Topology::fromNodes(std::move(Nodes), Root);
  return T.has_value();
}

std::vector<std::uint8_t> mutk::encodeTopology(const Topology &T) {
  ByteWriter Writer;
  writeTopology(Writer, T);
  return Writer.take();
}

std::optional<Topology>
mutk::decodeTopology(const std::vector<std::uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  std::optional<Topology> T;
  if (!readTopology(Reader, T) || !Reader.atEnd())
    return std::nullopt;
  return T;
}

std::vector<std::uint8_t> mutk::encodeMatrix(const DistanceMatrix &M) {
  ByteWriter Writer;
  Writer.writeU32(static_cast<std::uint32_t>(M.size()));
  for (int I = 0; I < M.size(); ++I)
    Writer.writeString(M.name(I));
  for (int I = 0; I < M.size(); ++I)
    for (int J = I + 1; J < M.size(); ++J)
      Writer.writeF64(M.at(I, J));
  return Writer.take();
}

namespace {

/// Node tags of the pre-order tree encoding.
constexpr std::uint8_t TreeTagLeaf = 0;
constexpr std::uint8_t TreeTagInternal = 1;

/// Decoded trees are bounded so a hostile payload cannot blow the heap
/// or the recursion stack (the service species cap is 4096; this leaves
/// ample headroom for standalone library users).
constexpr std::uint32_t MaxTreeNodes = 1u << 20;

void writeTreeNode(ByteWriter &Writer, const PhyloTree &Tree, int Index) {
  const PhyloNode &N = Tree.node(Index);
  if (N.isLeaf()) {
    Writer.writeU8(TreeTagLeaf);
    Writer.writeI32(N.Leaf);
    return;
  }
  Writer.writeU8(TreeTagInternal);
  Writer.writeF64(N.Height);
  writeTreeNode(Writer, Tree, N.Left);
  writeTreeNode(Writer, Tree, N.Right);
}

/// Rebuilds one subtree bottom-up (children become roots before their
/// parent adopts them, matching `addInternal`'s contract). \returns the
/// new node index or -1 on malformed input.
int readTreeNode(ByteReader &Reader, PhyloTree &Tree, std::uint32_t &Nodes) {
  if (++Nodes > MaxTreeNodes)
    return -1;
  std::uint8_t Tag;
  if (!Reader.readU8(Tag))
    return -1;
  if (Tag == TreeTagLeaf) {
    std::int32_t Species;
    if (!Reader.readI32(Species) || Species < 0)
      return -1;
    return Tree.addLeaf(Species);
  }
  if (Tag != TreeTagInternal)
    return -1;
  double Height;
  if (!Reader.readF64(Height) || !(Height == Height)) // reject NaN
    return -1;
  int Left = readTreeNode(Reader, Tree, Nodes);
  if (Left < 0)
    return -1;
  int Right = readTreeNode(Reader, Tree, Nodes);
  if (Right < 0)
    return -1;
  return Tree.addInternal(Left, Right, Height);
}

} // namespace

void mutk::writePhyloTree(ByteWriter &Writer, const PhyloTree &Tree) {
  Writer.writeU8(Tree.root() >= 0 ? 1 : 0);
  if (Tree.root() >= 0)
    writeTreeNode(Writer, Tree, Tree.root());
  Writer.writeU32(static_cast<std::uint32_t>(Tree.names().size()));
  for (const std::string &Name : Tree.names())
    Writer.writeString(Name);
}

bool mutk::readPhyloTree(ByteReader &Reader, PhyloTree &Tree) {
  Tree = PhyloTree();
  std::uint8_t HasRoot;
  if (!Reader.readU8(HasRoot) || HasRoot > 1)
    return false;
  if (HasRoot) {
    std::uint32_t Nodes = 0;
    int Root = readTreeNode(Reader, Tree, Nodes);
    if (Root < 0)
      return false;
    Tree.setRoot(Root);
    // Structural re-validation: a syntactically valid payload could
    // still label two leaves with one species, which would poison any
    // later splice or relabel.
    if (!Tree.isWellFormed())
      return false;
  }
  std::uint32_t NumNames;
  if (!Reader.readU32(NumNames) || NumNames > MaxTreeNodes)
    return false;
  std::vector<std::string> Names(NumNames);
  for (std::uint32_t I = 0; I < NumNames; ++I)
    if (!Reader.readString(Names[I]))
      return false;
  Tree.setNames(std::move(Names));
  return true;
}

std::vector<std::uint8_t> mutk::encodePhyloTree(const PhyloTree &Tree) {
  ByteWriter Writer;
  writePhyloTree(Writer, Tree);
  return Writer.take();
}

std::optional<PhyloTree>
mutk::decodePhyloTree(const std::vector<std::uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  PhyloTree Tree;
  if (!readPhyloTree(Reader, Tree) || !Reader.atEnd())
    return std::nullopt;
  return Tree;
}

std::vector<std::uint8_t>
mutk::encodeSearchCheckpoint(const SearchCheckpoint &Ck) {
  ByteWriter Writer;
  Writer.writeU64(Ck.MatrixKey);
  Writer.writeF64(Ck.UpperBound);
  Writer.writeU64(Ck.Stats.Branched);
  Writer.writeU64(Ck.Stats.Generated);
  Writer.writeU64(Ck.Stats.PrunedByBound);
  Writer.writeU64(Ck.Stats.PrunedByThreeThree);
  Writer.writeU64(Ck.Stats.UbUpdates);
  Writer.writeU8(Ck.Stats.Complete ? 1 : 0);
  writePhyloTree(Writer, Ck.Incumbent);
  Writer.writeU32(static_cast<std::uint32_t>(Ck.Frontier.size()));
  for (const Topology &T : Ck.Frontier)
    writeTopology(Writer, T);
  return Writer.take();
}

std::optional<SearchCheckpoint>
mutk::decodeSearchCheckpoint(const std::vector<std::uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  SearchCheckpoint Ck;
  std::uint8_t Complete;
  if (!Reader.readU64(Ck.MatrixKey) || !Reader.readF64(Ck.UpperBound) ||
      !Reader.readU64(Ck.Stats.Branched) ||
      !Reader.readU64(Ck.Stats.Generated) ||
      !Reader.readU64(Ck.Stats.PrunedByBound) ||
      !Reader.readU64(Ck.Stats.PrunedByThreeThree) ||
      !Reader.readU64(Ck.Stats.UbUpdates) || !Reader.readU8(Complete) ||
      Complete > 1)
    return std::nullopt;
  Ck.Stats.Complete = Complete == 1;
  if (!readPhyloTree(Reader, Ck.Incumbent))
    return std::nullopt;
  std::uint32_t NumFrontier;
  if (!Reader.readU32(NumFrontier) || NumFrontier > MaxTreeNodes)
    return std::nullopt;
  Ck.Frontier.reserve(NumFrontier);
  for (std::uint32_t I = 0; I < NumFrontier; ++I) {
    std::optional<Topology> T;
    if (!readTopology(Reader, T))
      return std::nullopt;
    Ck.Frontier.push_back(std::move(*T));
  }
  if (!Reader.atEnd())
    return std::nullopt;
  return Ck;
}

std::optional<DistanceMatrix>
mutk::decodeMatrix(const std::vector<std::uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  std::uint32_t N;
  if (!Reader.readU32(N) || N > 100000)
    return std::nullopt;
  DistanceMatrix M(static_cast<int>(N));
  for (std::uint32_t I = 0; I < N; ++I) {
    std::string Name;
    if (!Reader.readString(Name))
      return std::nullopt;
    M.setName(static_cast<int>(I), std::move(Name));
  }
  for (std::uint32_t I = 0; I < N; ++I)
    for (std::uint32_t J = I + 1; J < N; ++J) {
      double Value;
      if (!Reader.readF64(Value) || Value < 0.0)
        return std::nullopt;
      M.set(static_cast<int>(I), static_cast<int>(J), Value);
    }
  if (!Reader.atEnd())
    return std::nullopt;
  return M;
}
