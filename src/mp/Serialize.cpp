//===- mp/Serialize.cpp - Message payload (de)serialization ----------------===//

#include "mp/Serialize.h"

#include <cstring>

using namespace mutk;

void ByteWriter::writeU32(std::uint32_t Value) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Buffer.push_back(static_cast<std::uint8_t>(Value >> Shift));
}

void ByteWriter::writeU64(std::uint64_t Value) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Buffer.push_back(static_cast<std::uint8_t>(Value >> Shift));
}

void ByteWriter::writeF64(double Value) {
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "double must be 64 bits");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeU64(Bits);
}

void ByteWriter::writeString(const std::string &Value) {
  writeU32(static_cast<std::uint32_t>(Value.size()));
  for (char C : Value)
    Buffer.push_back(static_cast<std::uint8_t>(C));
}

bool ByteReader::readU8(std::uint8_t &Value) {
  if (Position + 1 > Bytes.size())
    return false;
  Value = Bytes[Position++];
  return true;
}

bool ByteReader::readU32(std::uint32_t &Value) {
  if (Position + 4 > Bytes.size())
    return false;
  Value = 0;
  for (int Shift = 0; Shift < 32; Shift += 8)
    Value |= static_cast<std::uint32_t>(Bytes[Position++]) << Shift;
  return true;
}

bool ByteReader::readI32(std::int32_t &Value) {
  std::uint32_t Raw;
  if (!readU32(Raw))
    return false;
  Value = static_cast<std::int32_t>(Raw);
  return true;
}

bool ByteReader::readU64(std::uint64_t &Value) {
  if (Position + 8 > Bytes.size())
    return false;
  Value = 0;
  for (int Shift = 0; Shift < 64; Shift += 8)
    Value |= static_cast<std::uint64_t>(Bytes[Position++]) << Shift;
  return true;
}

bool ByteReader::readF64(double &Value) {
  std::uint64_t Bits;
  if (!readU64(Bits))
    return false;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return true;
}

bool ByteReader::readString(std::string &Value) {
  std::uint32_t Length;
  if (!readU32(Length))
    return false;
  if (Position + Length > Bytes.size())
    return false;
  Value.assign(reinterpret_cast<const char *>(&Bytes[Position]), Length);
  Position += Length;
  return true;
}

std::vector<std::uint8_t> mutk::encodeTopology(const Topology &T) {
  ByteWriter Writer;
  Writer.writeU32(static_cast<std::uint32_t>(T.numNodes()));
  Writer.writeI32(T.rootIndex());
  for (int I = 0; I < T.numNodes(); ++I) {
    const Topology::Node &N = T.node(I);
    Writer.writeI32(N.Parent);
    Writer.writeI32(N.Left);
    Writer.writeI32(N.Right);
    Writer.writeI32(N.Leaf);
    Writer.writeF64(N.Height);
    // Masks are re-derivable but shipping them avoids a rebuild pass and
    // lets fromNodes() cross-validate the payload.
    Writer.writeU64(N.Mask);
  }
  return Writer.take();
}

std::optional<Topology>
mutk::decodeTopology(const std::vector<std::uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  std::uint32_t Count;
  std::int32_t Root;
  if (!Reader.readU32(Count) || !Reader.readI32(Root))
    return std::nullopt;
  if (Count > 2 * static_cast<std::uint32_t>(MaxBnbSpecies))
    return std::nullopt;

  std::vector<Topology::Node> Nodes(Count);
  for (std::uint32_t I = 0; I < Count; ++I) {
    Topology::Node &N = Nodes[I];
    std::int32_t Parent, Left, Right, Leaf;
    if (!Reader.readI32(Parent) || !Reader.readI32(Left) ||
        !Reader.readI32(Right) || !Reader.readI32(Leaf) ||
        !Reader.readF64(N.Height) || !Reader.readU64(N.Mask))
      return std::nullopt;
    N.Parent = static_cast<std::int16_t>(Parent);
    N.Left = static_cast<std::int16_t>(Left);
    N.Right = static_cast<std::int16_t>(Right);
    N.Leaf = static_cast<std::int16_t>(Leaf);
  }
  if (!Reader.atEnd())
    return std::nullopt;
  return Topology::fromNodes(std::move(Nodes), Root);
}

std::vector<std::uint8_t> mutk::encodeMatrix(const DistanceMatrix &M) {
  ByteWriter Writer;
  Writer.writeU32(static_cast<std::uint32_t>(M.size()));
  for (int I = 0; I < M.size(); ++I)
    Writer.writeString(M.name(I));
  for (int I = 0; I < M.size(); ++I)
    for (int J = I + 1; J < M.size(); ++J)
      Writer.writeF64(M.at(I, J));
  return Writer.take();
}

std::optional<DistanceMatrix>
mutk::decodeMatrix(const std::vector<std::uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  std::uint32_t N;
  if (!Reader.readU32(N) || N > 100000)
    return std::nullopt;
  DistanceMatrix M(static_cast<int>(N));
  for (std::uint32_t I = 0; I < N; ++I) {
    std::string Name;
    if (!Reader.readString(Name))
      return std::nullopt;
    M.setName(static_cast<int>(I), std::move(Name));
  }
  for (std::uint32_t I = 0; I < N; ++I)
    for (std::uint32_t J = I + 1; J < N; ++J) {
      double Value;
      if (!Reader.readF64(Value) || Value < 0.0)
        return std::nullopt;
      M.set(static_cast<int>(I), static_cast<int>(J), Value);
    }
  if (!Reader.atEnd())
    return std::nullopt;
  return M;
}
