//===- mp/MpBnb.h - Message-passing master/slave B&B ------------*- C++ -*-===//
///
/// \file
/// A faithful port of the papers' MPI master/slave architecture onto the
/// transport-agnostic `MpEndpoint`: rank 0 is the master control node
/// holding the global pool, ranks 1..P are slave computing nodes with
/// local pools. All coordination happens through tagged messages:
///
///   Init         master -> worker   relabeled matrix + initial UB
///   Work         master -> worker   one serialized BBT node
///   WorkRequest  worker -> master   local pool empty
///   Donation     worker -> master   worker's worst BBT node (after a
///                                    NeedWork broadcast — the paper's
///                                    "send the last UT in sorted LP to
///                                    GP" step)
///   Solution     worker -> master   improved complete tree
///   UbUpdate     master -> workers  new global upper bound
///                worker -> workers  peer incumbent broadcast (when
///                                    `PeerUbBroadcast` is on)
///   NeedWork     master -> workers  the global pool ran dry
///   Terminate    master -> workers  all pools empty: search done
///   Stats        worker -> master   final per-worker counters
///   StealRequest worker -> worker   thief asks a peer for work
///   StealReply   worker -> worker   victim's answer (maybe a node)
///   StealGrant   worker -> master   victim reports a successful steal
///                                    so the master's credit counters
///                                    stay consistent
///
/// Termination is safe because per-channel delivery is FIFO: when every
/// worker has an outstanding WorkRequest and the global pool is empty,
/// no Donation can still be in flight. Work stealing preserves the
/// invariant: a victim reports every grant to the master *before* any
/// later idle report it makes, and a thief waiting on a StealReply has
/// no pending WorkRequest, so it can never be counted idle while stolen
/// work is in flight to it (see `docs/distributed.md`).
///
/// Unlike `parallel/ThreadedBnb.h` (shared-memory upper bound), nothing
/// here crosses ranks except messages, so the implementation doubles as
/// executable documentation of the original cluster protocol — and runs
/// unchanged across machines over `dist/MpSocket.h`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MP_MPBNB_H
#define MUTK_MP_MPBNB_H

#include "bnb/SequentialBnb.h"
#include "mp/Communicator.h"
#include "parallel/ThreadedBnb.h"

namespace mutk {

/// Wire tags of the master/slave protocol. Public so socket transports
/// and traffic benches can name them.
enum MpTag : int {
  MpTagInit = 1,
  MpTagWork,
  MpTagWorkRequest,
  MpTagDonation,
  MpTagSolution,
  MpTagUbUpdate,
  MpTagNeedWork,
  MpTagTerminate,
  MpTagStats,
  MpTagStealRequest,
  MpTagStealReply,
  MpTagStealGrant,
};

/// Human-readable name for an `MpTag` value ("?" for unknown tags).
const char *mpTagName(int Tag);

/// Protocol extensions layered over the paper's baseline.
struct MpProtocolOptions {
  /// Dry workers first try to steal a node from a peer's local deque
  /// (one outstanding attempt, round-robin victim) before falling back
  /// to the master's WorkRequest path.
  bool WorkStealing = false;
  /// Only nodes with at most this many placed species may be stolen
  /// (depth-bounded spawning: shallow nodes travel, deep ones stay).
  /// 0 means no bound.
  int StealDepthBound = 0;
  /// Workers broadcast improved incumbents directly to their peers (in
  /// addition to the Solution sent to the master), so bound updates do
  /// not wait a master round-trip. Each worker keeps the min over
  /// everything it has heard — its local bound cache.
  bool PeerUbBroadcast = false;
};

/// Result of a message-passing solve, with traffic accounting.
struct MpMutResult : MutResult {
  std::vector<WorkerStats> Workers;
  std::uint64_t MessagesSent = 0;
  std::uint64_t BytesSent = 0;
  /// Per-tag message/byte counts, ascending by tag (empty when the
  /// transport does not track per-tag traffic).
  std::vector<TagTraffic> Traffic;
};

/// Runs the master control node over \p Self (must be rank 0 of a world
/// with at least 2 ranks): seeds the frontier, deals work, brokers
/// donations and bound updates, and drives termination. Every other
/// rank must be running `runMpSlave` with the same protocol options.
/// \returns the solved tree/cost plus aggregated worker stats (the
/// transport-level `MessagesSent`/`BytesSent`/`Traffic` fields are left
/// to the caller, which owns the transport).
MpMutResult runMpMaster(MpEndpoint &Self, const DistanceMatrix &M,
                        const BnbOptions &Options = {},
                        const MpProtocolOptions &Proto = {});

/// Runs one slave computing node over \p Self until the master
/// terminates the search. \returns the worker counters this slave also
/// shipped to the master in its final Stats message.
WorkerStats runMpSlave(MpEndpoint &Self, const BnbOptions &Options = {},
                       const MpProtocolOptions &Proto = {});

/// Solves the MUT problem with \p NumWorkers slave ranks plus one master
/// rank, all ranks in-process threads communicating via messages.
/// Cost-equal to the sequential solver. `CollectAllOptimal` and
/// `MaxBranchedNodes` are unsupported (the protocol always runs to
/// exhaustion).
MpMutResult solveMutMessagePassing(const DistanceMatrix &M, int NumWorkers,
                                   const BnbOptions &Options = {},
                                   const MpProtocolOptions &Proto = {});

} // namespace mutk

#endif // MUTK_MP_MPBNB_H
