//===- mp/MpBnb.h - Message-passing master/slave B&B ------------*- C++ -*-===//
///
/// \file
/// A faithful port of the papers' MPI master/slave architecture onto the
/// in-process `Communicator`: rank 0 is the master control node holding
/// the global pool, ranks 1..P are slave computing nodes with local
/// pools. All coordination happens through tagged messages:
///
///   Init         master -> worker   relabeled matrix + initial UB
///   Work         master -> worker   one serialized BBT node
///   WorkRequest  worker -> master   local pool empty
///   Donation     worker -> master   worker's worst BBT node (after a
///                                    NeedWork broadcast — the paper's
///                                    "send the last UT in sorted LP to
///                                    GP" step)
///   Solution     worker -> master   improved complete tree
///   UbUpdate     master -> workers  new global upper bound
///   NeedWork     master -> workers  the global pool ran dry
///   Terminate    master -> workers  all pools empty: search done
///   Stats        worker -> master   final per-worker counters
///
/// Termination is safe because per-channel delivery is FIFO: when every
/// worker has an outstanding WorkRequest and the global pool is empty,
/// no Donation can still be in flight.
///
/// Unlike `parallel/ThreadedBnb.h` (shared-memory upper bound), nothing
/// here crosses ranks except messages, so the implementation doubles as
/// executable documentation of the original cluster protocol.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MP_MPBNB_H
#define MUTK_MP_MPBNB_H

#include "bnb/SequentialBnb.h"
#include "parallel/ThreadedBnb.h"

namespace mutk {

/// Result of a message-passing solve, with traffic accounting.
struct MpMutResult : MutResult {
  std::vector<WorkerStats> Workers;
  std::uint64_t MessagesSent = 0;
  std::uint64_t BytesSent = 0;
};

/// Solves the MUT problem with \p NumWorkers slave ranks plus one master
/// rank, all communication via messages. Cost-equal to the sequential
/// solver. `CollectAllOptimal` and `MaxBranchedNodes` are unsupported
/// (the protocol always runs to exhaustion).
MpMutResult solveMutMessagePassing(const DistanceMatrix &M, int NumWorkers,
                                   const BnbOptions &Options = {});

} // namespace mutk

#endif // MUTK_MP_MPBNB_H
