//===- parallel/ThreadedBnb.h - Master/slave parallel B&B -------*- C++ -*-===//
///
/// \file
/// The parallel branch-and-bound of the HPCAsia paper, realized with
/// threads instead of MPI ranks (see DESIGN.md §5.2): a master seeds the
/// BBT until the frontier holds twice as many nodes as there are workers
/// (Step 5), sorts them by lower bound and deals them cyclically (Step 6);
/// workers then run DFS on *local pools*, publish every improved upper
/// bound immediately through a shared atomic, and exchange work through a
/// mutex-protected *global pool* — an idle worker pulls from it, and a
/// busy worker donates its worst local node whenever the global pool runs
/// empty (Step 7's two-level load balancing).
///
/// Results are cost-identical to the sequential solver; only the
/// exploration order differs.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_PARALLEL_THREADEDBNB_H
#define MUTK_PARALLEL_THREADEDBNB_H

#include "bnb/SequentialBnb.h"

namespace mutk {

/// Per-worker counters for load-balance analysis.
struct WorkerStats {
  std::uint64_t Branched = 0;
  std::uint64_t PulledFromGlobal = 0;
  std::uint64_t DonatedToGlobal = 0;
  std::uint64_t UbUpdates = 0;
  /// Peer-to-peer work stealing (message-passing solver only; zero for
  /// the shared-memory solver, which has no peer channels).
  std::uint64_t StolenFromPeers = 0;
  std::uint64_t DonatedToPeers = 0;
  /// Direct worker->worker incumbent broadcasts (mp solver with
  /// `MpProtocolOptions::PeerUbBroadcast`).
  std::uint64_t PeerUbBroadcasts = 0;
};

/// A MutResult extended with per-worker accounting.
struct ParallelMutResult : MutResult {
  std::vector<WorkerStats> Workers;
};

/// Solves the MUT problem with \p NumWorkers worker threads.
///
/// `CollectAllOptimal` is not supported here (the simulated cluster and
/// sequential solver cover that use case); `MaxBranchedNodes` bounds the
/// *total* across workers approximately.
ParallelMutResult solveMutThreaded(const DistanceMatrix &M, int NumWorkers,
                                   const BnbOptions &Options = {});

} // namespace mutk

#endif // MUTK_PARALLEL_THREADEDBNB_H
