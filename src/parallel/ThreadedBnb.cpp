//===- parallel/ThreadedBnb.cpp - Master/slave parallel B&B ---------------===//

#include "parallel/ThreadedBnb.h"

#include "bnb/Engine.h"
#include "obs/Instruments.h"
#include "support/Audit.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

using namespace mutk;

namespace {

/// State shared by all workers.
struct SharedState {
  const BnbEngine &Engine;
  explicit SharedState(const BnbEngine &Engine) : Engine(Engine) {}

  // Global pool (the master's GP), protected by PoolMutex.
  std::mutex PoolMutex;
  std::deque<Topology> GlobalPool;
  std::condition_variable PoolCv;
  /// BBT nodes alive anywhere (pools + in-flight). Guarded by PoolMutex
  /// for the termination handshake.
  long Outstanding = 0;
  bool Cancelled = false;

  // Upper bound, shared lock-free; the best topology under a mutex.
  std::atomic<double> Ub{0.0};
  std::mutex BestMutex;
  Topology BestTopology;
  bool HasBest = false;

  std::atomic<std::uint64_t> TotalBranched{0};

  /// Lowers the shared UB to the cost of \p T if that improves it; keeps
  /// the tree. \returns true on a strict improvement.
  bool offerSolution(const Topology &T, double Eps) {
    double Cost = T.cost();
    double Current = Ub.load(std::memory_order_relaxed);
    bool Improved = false;
    while (Cost < Current - Eps) {
      // On failure compare_exchange reloads Current and we re-test.
      if (Ub.compare_exchange_weak(Current, Cost,
                                   std::memory_order_relaxed)) {
        Improved = true;
        break;
      }
    }
    if (!Improved)
      return false;

    std::lock_guard<std::mutex> Lock(BestMutex);
    if (!HasBest || Cost < BestTopology.cost()) {
      BestTopology = T;
      HasBest = true;
    }
    return true;
  }
};

/// One slave computing processor: DFS over a local pool with global-pool
/// load balancing (HPCAsia Table 1, Step 7).
void workerMain(SharedState &Shared, const BnbOptions &Options,
                std::deque<Topology> LocalPool, BnbStats &Stats,
                WorkerStats &Worker) {
  const double Eps = Options.Epsilon;
  const BnbEngine &Engine = Shared.Engine;

  for (;;) {
    Topology Current;
    bool HaveWork = false;

    if (!LocalPool.empty()) {
      // Local pools keep the best node at the back.
      Current = std::move(LocalPool.back());
      LocalPool.pop_back();
      HaveWork = true;
    } else {
      std::unique_lock<std::mutex> Lock(Shared.PoolMutex);
      Shared.PoolCv.wait(Lock, [&] {
        return !Shared.GlobalPool.empty() || Shared.Outstanding == 0 ||
               Shared.Cancelled;
      });
      if (Shared.Cancelled || (Shared.GlobalPool.empty() &&
                               Shared.Outstanding == 0))
        return;
      Current = std::move(Shared.GlobalPool.front());
      Shared.GlobalPool.pop_front();
      ++Worker.PulledFromGlobal;
      HaveWork = true;
    }
    assert(HaveWork && "reached processing without a node");
    (void)HaveWork;

    if (Options.MaxBranchedNodes != 0 &&
        Shared.TotalBranched.load(std::memory_order_relaxed) >=
            Options.MaxBranchedNodes) {
      std::lock_guard<std::mutex> Lock(Shared.PoolMutex);
      Shared.Cancelled = true;
      Shared.PoolCv.notify_all();
      return;
    }

    double Ub = Shared.Ub.load(std::memory_order_relaxed);
    long Delta = -1; // the consumed node
    if (Engine.lowerBound(Current) >= Ub - Eps) {
      ++Stats.PrunedByBound;
    } else {
      ++Stats.Branched;
      ++Worker.Branched;
      Shared.TotalBranched.fetch_add(1, std::memory_order_relaxed);
      std::vector<Topology> Children = Engine.branch(Current, Ub, Stats);
      for (std::size_t I = Children.size(); I > 0; --I) {
        Topology &Child = Children[I - 1];
        if (Engine.isComplete(Child)) {
          if (Shared.offerSolution(Child, Eps)) {
            ++Stats.UbUpdates;
            ++Worker.UbUpdates;
          }
          continue;
        }
        // Worst child first, best last: the back stays the best.
        LocalPool.push_back(std::move(Child));
        ++Delta;
      }
    }

    // Donate the *worst* local node whenever the global pool is empty,
    // so idle workers always find something (two-level load balancing).
    {
      std::lock_guard<std::mutex> Lock(Shared.PoolMutex);
      Shared.Outstanding += Delta;
      if (Shared.GlobalPool.empty() && LocalPool.size() > 1) {
        Shared.GlobalPool.push_back(std::move(LocalPool.front()));
        LocalPool.pop_front();
        ++Worker.DonatedToGlobal;
        Shared.PoolCv.notify_one();
      }
      if (Shared.Outstanding == 0)
        Shared.PoolCv.notify_all();
    }
  }
}

} // namespace

ParallelMutResult mutk::solveMutThreaded(const DistanceMatrix &M,
                                         int NumWorkers,
                                         const BnbOptions &Options) {
  assert(NumWorkers >= 1 && "need at least one worker");
  assert(!Options.CollectAllOptimal &&
         "CollectAllOptimal is not supported by the threaded solver");

  ParallelMutResult Result;
  Result.Workers.resize(static_cast<std::size_t>(NumWorkers));
  if (M.size() <= 1) {
    if (M.size() == 1) {
      Result.Tree.addLeaf(0);
      Result.Tree.setNames(M.names());
    }
    return Result;
  }

  BnbEngine Engine(M, Options);
  SharedState Shared(Engine);
  Shared.Ub.store(Engine.initialUpperBound(), std::memory_order_relaxed);

  // Master phase (Steps 4-5): breadth-first expansion until the frontier
  // holds 2x the number of computing nodes.
  const double Eps = Options.Epsilon;
  std::deque<Topology> Frontier;
  Frontier.push_back(Engine.rootTopology());
  BnbStats MasterStats;
  while (!Frontier.empty() &&
         static_cast<int>(Frontier.size()) < 2 * NumWorkers) {
    Topology T = std::move(Frontier.front());
    Frontier.pop_front();
    if (Engine.isComplete(T)) {
      Shared.offerSolution(T, Eps);
      continue;
    }
    ++MasterStats.Branched;
    double Ub = Shared.Ub.load(std::memory_order_relaxed);
    for (Topology &Child : Engine.branch(T, Ub, MasterStats)) {
      if (Engine.isComplete(Child)) {
        if (Shared.offerSolution(Child, Eps))
          ++MasterStats.UbUpdates;
        continue;
      }
      Frontier.push_back(std::move(Child));
    }
  }

  // Step 6: sort by lower bound and deal cyclically.
  std::vector<Topology> Sorted(std::make_move_iterator(Frontier.begin()),
                               std::make_move_iterator(Frontier.end()));
  std::sort(Sorted.begin(), Sorted.end(),
            [&Engine](const Topology &A, const Topology &B) {
              return Engine.lowerBound(A) < Engine.lowerBound(B);
            });
  std::vector<std::deque<Topology>> LocalPools(
      static_cast<std::size_t>(NumWorkers));
  for (std::size_t I = 0; I < Sorted.size(); ++I)
    LocalPools[I % static_cast<std::size_t>(NumWorkers)].push_front(
        std::move(Sorted[I]));
  // After push_front of ascending nodes, the back of each pool is the
  // best node — the invariant workerMain maintains.

  Shared.Outstanding = static_cast<long>(Sorted.size());

  std::vector<BnbStats> WorkerBnbStats(static_cast<std::size_t>(NumWorkers));
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<std::size_t>(NumWorkers));
  for (int W = 0; W < NumWorkers; ++W)
    Threads.emplace_back(workerMain, std::ref(Shared), std::cref(Options),
                         std::move(LocalPools[static_cast<std::size_t>(W)]),
                         std::ref(WorkerBnbStats[static_cast<std::size_t>(W)]),
                         std::ref(Result.Workers[static_cast<std::size_t>(W)]));
  for (std::thread &T : Threads)
    T.join();

  // Merge statistics.
  Result.Stats = MasterStats;
  for (const BnbStats &S : WorkerBnbStats) {
    Result.Stats.Branched += S.Branched;
    Result.Stats.Generated += S.Generated;
    Result.Stats.PrunedByBound += S.PrunedByBound;
    Result.Stats.PrunedByThreeThree += S.PrunedByThreeThree;
    Result.Stats.UbUpdates += S.UbUpdates;
  }
  {
    std::lock_guard<std::mutex> Lock(Shared.BestMutex);
    if (Shared.HasBest) {
      Result.Tree = Engine.finalize(Shared.BestTopology);
      Result.Cost = Shared.BestTopology.cost();
    } else {
      Result.Tree = Engine.initialTree();
      Result.Cost = Engine.initialUpperBound();
    }
  }
  Result.Stats.Complete = !Shared.Cancelled;
  // Same contract as the sequential solver: whatever tree we answer with
  // must be a feasible ultrametric tree for M.
  MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
             "threaded B&B result must be ultrametric");
  MUTK_AUDIT(Result.Tree.dominatesMatrix(M),
             "threaded B&B result must dominate the input matrix "
             "(d_T >= M)");
  if (Options.PublishMetrics)
    obs::recordBnbSolve(Result.Stats);
  return Result;
}
