//===- parallel/ThreadedBnb.cpp - Master/slave parallel B&B ---------------===//

#include "parallel/ThreadedBnb.h"

#include "bnb/Arena.h"
#include "bnb/Checkpoint.h"
#include "bnb/Engine.h"
#include "matrix/Fingerprint.h"
#include "obs/Instruments.h"
#include "support/Audit.h"
#include "support/Mutex.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <deque>
#include <thread>

using namespace mutk;

namespace {

/// State shared by all workers.
struct SharedState {
  const BnbEngine &Engine;
  explicit SharedState(const BnbEngine &Engine) : Engine(Engine) {}

  // Global pool (the master's GP), protected by PoolMutex.
  Mutex PoolMutex{"bnb.pool"};
  std::deque<Topology> GlobalPool MUTK_GUARDED_BY(PoolMutex);
  CondVar PoolCv;
  /// BBT nodes alive anywhere (pools + in-flight); part of the
  /// termination handshake.
  long Outstanding MUTK_GUARDED_BY(PoolMutex) = 0;
  bool Cancelled MUTK_GUARDED_BY(PoolMutex) = false;
  /// Checkpoint rendezvous: when set, every worker returns its local
  /// pool to the global pool and exits, leaving the master with the
  /// complete frontier. Outstanding is untouched — the nodes stay
  /// alive, they just change owner.
  bool Paused MUTK_GUARDED_BY(PoolMutex) = false;

  // Upper bound, shared lock-free; the best topology under a mutex.
  std::atomic<double> Ub{0.0};
  Mutex BestMutex{"bnb.best"};
  Topology BestTopology MUTK_GUARDED_BY(BestMutex);
  bool HasBest MUTK_GUARDED_BY(BestMutex) = false;

  std::atomic<std::uint64_t> TotalBranched{0};

  /// Lowers the shared UB to the cost of \p T if that improves it; keeps
  /// the tree. \returns true on a strict improvement.
  bool offerSolution(const Topology &T, double Eps) {
    double Cost = T.cost();
    double Current = Ub.load(std::memory_order_relaxed);
    bool Improved = false;
    while (Cost < Current - Eps) {
      // On failure compare_exchange reloads Current and we re-test.
      if (Ub.compare_exchange_weak(Current, Cost,
                                   std::memory_order_relaxed)) {
        Improved = true;
        break;
      }
    }
    if (!Improved)
      return false;

    MutexLock Lock(BestMutex);
    if (!HasBest || Cost < BestTopology.cost()) {
      BestTopology = T;
      HasBest = true;
    }
    return true;
  }
};

/// One slave computing processor: DFS over a local pool with global-pool
/// load balancing (HPCAsia Table 1, Step 7).
void workerMain(SharedState &Shared, const BnbOptions &Options,
                std::deque<Topology> LocalPool, BnbStats &Stats,
                WorkerStats &Worker) {
  const double Eps = Options.Epsilon;
  const BnbEngine &Engine = Shared.Engine;
  // Worker-private recycling pool + branch() output buffer: the hot loop
  // allocates nothing after warm-up. Nodes that migrate through the
  // global pool keep their own storage, so pooling stays worker-local.
  TopologyArena Arena(Engine.numSpecies());
  std::vector<BranchedChild> Children;

  for (;;) {
    Topology Current;
    bool HaveWork = false;

    {
      MutexLock Lock(Shared.PoolMutex);
      // Checkpoint rendezvous: hand the whole local pool back and exit.
      // Only checked between expansions, so every returned node is a
      // consistent, un-expanded BBT node.
      if (Shared.Paused) {
        for (Topology &T : LocalPool)
          Shared.GlobalPool.push_back(std::move(T));
        LocalPool.clear();
        Shared.PoolCv.notify_all();
        return;
      }
      if (LocalPool.empty()) {
        while (Shared.GlobalPool.empty() && Shared.Outstanding != 0 &&
               !Shared.Cancelled && !Shared.Paused)
          Shared.PoolCv.wait(Lock);
        if (Shared.Paused) {
          Shared.PoolCv.notify_all();
          return;
        }
        if (Shared.Cancelled ||
            (Shared.GlobalPool.empty() && Shared.Outstanding == 0))
          return;
        Current = std::move(Shared.GlobalPool.front());
        Shared.GlobalPool.pop_front();
        ++Worker.PulledFromGlobal;
        HaveWork = true;
      }
    }
    if (!HaveWork) {
      // Local pools keep the best node at the back.
      Current = std::move(LocalPool.back());
      LocalPool.pop_back();
      HaveWork = true;
    }
    assert(HaveWork && "reached processing without a node");
    (void)HaveWork;

    if (Options.MaxBranchedNodes != 0 &&
        Shared.TotalBranched.load(std::memory_order_relaxed) >=
            Options.MaxBranchedNodes) {
      MutexLock Lock(Shared.PoolMutex);
      Shared.Cancelled = true;
      Shared.PoolCv.notify_all();
      return;
    }

    double Ub = Shared.Ub.load(std::memory_order_relaxed);
    long Delta = -1; // the consumed node
    if (Engine.lowerBound(Current) >= Ub - Eps) {
      ++Stats.PrunedByBound;
      Arena.release(std::move(Current));
    } else {
      ++Stats.Branched;
      ++Worker.Branched;
      Shared.TotalBranched.fetch_add(1, std::memory_order_relaxed);
      Engine.branch(Current, Ub, Stats, Children, &Arena);
      Arena.release(std::move(Current));
      for (std::size_t I = Children.size(); I > 0; --I) {
        Topology &Child = Children[I - 1].Node;
        if (Engine.isComplete(Child)) {
          if (Shared.offerSolution(Child, Eps)) {
            ++Stats.UbUpdates;
            ++Worker.UbUpdates;
          }
          Arena.release(std::move(Child));
          continue;
        }
        // Worst child first, best last: the back stays the best.
        LocalPool.push_back(std::move(Child));
        ++Delta;
      }
    }

    // Donate the *worst* local node whenever the global pool is empty,
    // so idle workers always find something (two-level load balancing).
    {
      MutexLock Lock(Shared.PoolMutex);
      Shared.Outstanding += Delta;
      if (Shared.GlobalPool.empty() && LocalPool.size() > 1) {
        Shared.GlobalPool.push_back(std::move(LocalPool.front()));
        LocalPool.pop_front();
        ++Worker.DonatedToGlobal;
        Shared.PoolCv.notify_one();
      }
      if (Shared.Outstanding == 0)
        Shared.PoolCv.notify_all();
    }
  }
}

} // namespace

ParallelMutResult mutk::solveMutThreaded(const DistanceMatrix &M,
                                         int NumWorkers,
                                         const BnbOptions &Options) {
  assert(NumWorkers >= 1 && "need at least one worker");
  assert(!Options.CollectAllOptimal &&
         "CollectAllOptimal is not supported by the threaded solver");

  ParallelMutResult Result;
  Result.Workers.resize(static_cast<std::size_t>(NumWorkers));
  if (M.size() <= 1) {
    if (M.size() == 1) {
      Result.Tree.addLeaf(0);
      Result.Tree.setNames(M.names());
    }
    return Result;
  }

  BnbEngine Engine(M, Options);
  SharedState Shared(Engine);
  Shared.Ub.store(Engine.initialUpperBound(), std::memory_order_relaxed);

  std::uint64_t MatrixKey = 0;
  if (Options.Checkpoint || Options.ResumeFrom)
    MatrixKey = fingerprint(M);
  const SearchCheckpoint *Resume = usableResume(Options, MatrixKey);

  const double Eps = Options.Epsilon;
  BnbStats MasterStats;
  // The incumbent carried over from a resumed checkpoint. Workers only
  // publish topologies that strictly beat the shared UB (seeded below),
  // so `HasBest` implies "better than this tree".
  PhyloTree ResumeIncumbent;
  bool HasResumeIncumbent = false;
  double ResumeUb = 0.0;

  std::vector<Topology> Frontier;
  if (Resume) {
    if (Resume->UpperBound <
        Shared.Ub.load(std::memory_order_relaxed))
      Shared.Ub.store(Resume->UpperBound, std::memory_order_relaxed);
    ResumeIncumbent = Resume->Incumbent;
    ResumeIncumbent.setNames(M.names());
    HasResumeIncumbent = true;
    ResumeUb = Resume->UpperBound;
    MasterStats = Resume->Stats;
    MasterStats.Complete = true; // re-decided by this run
    Shared.TotalBranched.store(Resume->Stats.Branched,
                               std::memory_order_relaxed);
    Frontier = Resume->Frontier;
  } else {
    // Master phase (Steps 4-5): breadth-first expansion until the
    // frontier holds 2x the number of computing nodes.
    std::deque<Topology> Bfs;
    std::vector<BranchedChild> Children;
    Bfs.push_back(Engine.rootTopology());
    while (!Bfs.empty() &&
           static_cast<int>(Bfs.size()) < 2 * NumWorkers) {
      Topology T = std::move(Bfs.front());
      Bfs.pop_front();
      if (Engine.isComplete(T)) {
        Shared.offerSolution(T, Eps);
        continue;
      }
      ++MasterStats.Branched;
      double Ub = Shared.Ub.load(std::memory_order_relaxed);
      Engine.branch(T, Ub, MasterStats, Children);
      for (BranchedChild &BC : Children) {
        Topology &Child = BC.Node;
        if (Engine.isComplete(Child)) {
          if (Shared.offerSolution(Child, Eps))
            ++MasterStats.UbUpdates;
          continue;
        }
        Bfs.push_back(std::move(Child));
      }
    }
    Frontier.assign(std::make_move_iterator(Bfs.begin()),
                    std::make_move_iterator(Bfs.end()));
  }

  std::vector<BnbStats> WorkerBnbStats(static_cast<std::size_t>(NumWorkers));
  auto mergedStats = [&]() {
    BnbStats S = MasterStats;
    for (const BnbStats &W : WorkerBnbStats) {
      S.Branched += W.Branched;
      S.Generated += W.Generated;
      S.PrunedByBound += W.PrunedByBound;
      S.PrunedByThreeThree += W.PrunedByThreeThree;
      S.BoundEvals += W.BoundEvals;
      S.UbUpdates += W.UbUpdates;
    }
    return S;
  };
  // The incumbent as a finished tree plus its cost, for checkpoints and
  // the final answer. Call only while no workers run (no BestMutex
  // contention concerns, but finalize() is not free).
  auto currentIncumbent = [&](double &CostOut) {
    MutexLock Lock(Shared.BestMutex);
    if (Shared.HasBest) {
      CostOut = Shared.BestTopology.cost();
      return Engine.finalize(Shared.BestTopology);
    }
    if (HasResumeIncumbent &&
        ResumeUb <= Engine.initialUpperBound() + Eps) {
      CostOut = ResumeUb;
      return ResumeIncumbent;
    }
    CostOut = Engine.initialUpperBound();
    return Engine.initialTree();
  };

  const bool Checkpointing =
      Options.Checkpoint != nullptr && (Options.CheckpointEveryNodes > 0 ||
                                        Options.CheckpointEverySeconds > 0.0);
  CheckpointPacer Pacer(Options.CheckpointEveryNodes,
                        Options.CheckpointEverySeconds,
                        Shared.TotalBranched.load(std::memory_order_relaxed));

  // Checkpoint rounds: run the workers; when a checkpoint comes due,
  // raise `Paused` so every worker returns its pool to the global pool
  // and exits, capture the reassembled frontier, then redistribute and
  // respawn. Without checkpointing the loop body runs exactly once.
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<std::size_t>(NumWorkers));
  while (!Frontier.empty()) {
    // Step 6: sort by lower bound and deal cyclically.
    std::sort(Frontier.begin(), Frontier.end(),
              [&Engine](const Topology &A, const Topology &B) {
                return Engine.lowerBound(A) < Engine.lowerBound(B);
              });
    std::vector<std::deque<Topology>> LocalPools(
        static_cast<std::size_t>(NumWorkers));
    for (std::size_t I = 0; I < Frontier.size(); ++I)
      LocalPools[I % static_cast<std::size_t>(NumWorkers)].push_front(
          std::move(Frontier[I]));
    // After push_front of ascending nodes, the back of each pool is the
    // best node — the invariant workerMain maintains.
    {
      MutexLock Lock(Shared.PoolMutex);
      Shared.Outstanding = static_cast<long>(Frontier.size());
      Shared.Paused = false;
    }
    Frontier.clear();

    Threads.clear();
    for (int W = 0; W < NumWorkers; ++W)
      Threads.emplace_back(
          workerMain, std::ref(Shared), std::cref(Options),
          std::move(LocalPools[static_cast<std::size_t>(W)]),
          std::ref(WorkerBnbStats[static_cast<std::size_t>(W)]),
          std::ref(Result.Workers[static_cast<std::size_t>(W)]));

    if (Checkpointing) {
      // Poll for the checkpoint cadence while the round runs. A timed
      // wait (not a sleep) so worker completion wakes us immediately.
      MutexLock Lock(Shared.PoolMutex);
      while (Shared.Outstanding != 0 && !Shared.Cancelled) {
        Shared.PoolCv.waitFor(Lock, std::chrono::milliseconds(20));
        if (Shared.Outstanding == 0 || Shared.Cancelled)
          break;
        if (Pacer.due(
                Shared.TotalBranched.load(std::memory_order_relaxed))) {
          Shared.Paused = true;
          Shared.PoolCv.notify_all();
          break;
        }
      }
      Lock.unlock();
    }
    for (std::thread &T : Threads)
      T.join();

    if (!Checkpointing)
      break;

    // Reclaim whatever the workers returned. Empty means the search
    // finished (exhausted or cancelled) during this round.
    {
      MutexLock Lock(Shared.PoolMutex);
      Frontier.assign(std::make_move_iterator(Shared.GlobalPool.begin()),
                      std::make_move_iterator(Shared.GlobalPool.end()));
      Shared.GlobalPool.clear();
      if (Shared.Cancelled)
        Frontier.clear();
    }
    if (Frontier.empty())
      break;

    SearchCheckpoint Ck;
    Ck.Frontier = Frontier;
    Ck.UpperBound = 0.0;
    Ck.Incumbent = currentIncumbent(Ck.UpperBound);
    Ck.Stats = mergedStats();
    Ck.Stats.Complete = false; // a checkpoint is an unfinished search
    Ck.MatrixKey = MatrixKey;
    Options.Checkpoint->checkpoint(Ck);
    Pacer.taken(Shared.TotalBranched.load(std::memory_order_relaxed));
  }

  // Merge statistics.
  Result.Stats = mergedStats();
  Result.Tree = currentIncumbent(Result.Cost);
  {
    // Workers are joined; the lock only satisfies the analysis.
    MutexLock Lock(Shared.PoolMutex);
    Result.Stats.Complete = !Shared.Cancelled;
  }
  // Same contract as the sequential solver: whatever tree we answer with
  // must be a feasible ultrametric tree for M.
  MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
             "threaded B&B result must be ultrametric");
  MUTK_AUDIT(Result.Tree.dominatesMatrix(M),
             "threaded B&B result must dominate the input matrix "
             "(d_T >= M)");
  if (Options.PublishMetrics)
    obs::recordBnbSolve(Result.Stats);
  return Result;
}
