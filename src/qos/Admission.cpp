//===- qos/Admission.cpp - Admission control & tier routing ---------------===//

#include "qos/Admission.h"

#include <algorithm>
#include <cstdio>

using namespace mutk;
using namespace mutk::qos;

AdmissionController::AdmissionController(CostModel &Model,
                                         const AdmissionOptions &Options)
    : Model(Model), Options(Options) {}

bool AdmissionController::takeToken(const std::string &Tenant) {
  if (Options.TenantRatePerSec <= 0.0)
    return true;
  auto Now = std::chrono::steady_clock::now();
  MutexLock Lock(BucketsMu);
  auto [It, Fresh] = Buckets.try_emplace(Tenant);
  Bucket &B = It->second;
  if (Fresh) {
    B.Tokens = Options.TenantBurst;
    B.LastRefill = Now;
  } else {
    double Elapsed =
        std::chrono::duration<double>(Now - B.LastRefill).count();
    B.Tokens = std::min(Options.TenantBurst,
                        B.Tokens + Elapsed * Options.TenantRatePerSec);
    B.LastRefill = Now;
  }
  if (B.Tokens < 1.0)
    return false;
  B.Tokens -= 1.0;
  return true;
}

Verdict AdmissionController::assess(const BuildRequest &Request,
                                    const DifficultyProfile &Profile,
                                    double RemainingMillis) {
  Verdict V;
  if (!takeToken(Request.Tenant)) {
    V.Admit = false;
    V.Error = ServiceError::RateLimited;
    V.Message = "tenant '" + Request.Tenant + "' exceeded its request rate";
    return V;
  }

  int ExactCap = std::max(1, Request.MaxExactBlockSize);
  double ExactNodes = Model.predictNodes(Profile, ExactCap);
  double ExactMillis = ExactNodes * Model.millisPerNode();

  // No deadline: nothing to fit against, run at full fidelity.
  if (RemainingMillis < 0.0) {
    V.Tier = QosTier::Exact;
    V.PredictedMillis = ExactMillis;
    V.PredictedNodes = ExactNodes;
    return V;
  }

  double Margin = std::max(1.0, Options.FitMargin);
  auto fits = [&](double Millis) {
    return Millis * Margin <= RemainingMillis;
  };

  if (fits(ExactMillis)) {
    V.Tier = QosTier::Exact;
    V.PredictedMillis = ExactMillis;
    V.PredictedNodes = ExactNodes;
    return V;
  }

  // Degraded pipeline: same decomposition, tighter exact cap; oversized
  // blocks fall back to the in-pipeline heuristic.
  int DegradedCap =
      std::min(ExactCap, std::max(1, Options.DegradedMaxExactBlockSize));
  if (DegradedCap < ExactCap) {
    double DegradedNodes = Model.predictNodes(Profile, DegradedCap);
    double DegradedMillis = DegradedNodes * Model.millisPerNode();
    if (fits(DegradedMillis)) {
      V.Tier = QosTier::Pipeline;
      V.PredictedMillis = DegradedMillis;
      V.PredictedNodes = DegradedNodes;
      return V;
    }
  }

  double HeuristicMillis = Model.heuristicMillis(Profile.Species);
  if (fits(HeuristicMillis)) {
    V.Tier = QosTier::Heuristic;
    V.PredictedMillis = HeuristicMillis;
    V.PredictedNodes = 0.0; // no B&B nodes: excluded from calibration
    return V;
  }

  V.Admit = false;
  V.Error = ServiceError::Shed;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "predicted cost %.1f ms (heuristic %.1f ms) exceeds the "
                "remaining deadline of %.1f ms",
                ExactMillis, HeuristicMillis, RemainingMillis);
  V.Message = Buf;
  V.PredictedMillis = ExactMillis;
  V.PredictedNodes = ExactNodes;
  return V;
}
