//===- qos/Coalescer.cpp - In-flight request coalescing -------------------===//

#include "qos/Coalescer.h"

using namespace mutk;
using namespace mutk::qos;

Coalescer::Attach Coalescer::attach(std::uint64_t Key,
                                    const std::vector<std::uint8_t> &Identity,
                                    bool *Tracked) {
  if (Tracked)
    *Tracked = true;
  MutexLock Lock(Mu);
  auto It = Flights.find(Key);
  if (It == Flights.end()) {
    Flight F;
    F.Identity = Identity;
    Flights.emplace(Key, std::move(F));
    Attach Out;
    Out.Leader = true;
    return Out;
  }
  if (It->second.Identity != Identity) {
    // 64-bit collision between distinct requests: submit normally,
    // outside any flight.
    if (Tracked)
      *Tracked = false;
    Attach Out;
    Out.Leader = true;
    return Out;
  }
  It->second.Followers.emplace_back();
  Attach Out;
  Out.Leader = false;
  Out.Follower = It->second.Followers.back().get_future();
  return Out;
}

std::vector<std::promise<BuildResponse>>
Coalescer::take(std::uint64_t Key) {
  MutexLock Lock(Mu);
  auto It = Flights.find(Key);
  if (It == Flights.end())
    return {};
  std::vector<std::promise<BuildResponse>> Out =
      std::move(It->second.Followers);
  Flights.erase(It);
  return Out;
}

std::size_t Coalescer::parkedFollowers() const {
  MutexLock Lock(Mu);
  std::size_t N = 0;
  for (const auto &[Key, F] : Flights)
    N += F.Followers.size();
  return N;
}
