//===- qos/Admission.h - Admission control & tier routing -------*- C++ -*-===//
///
/// \file
/// The decision layer between protocol decode and the ready queue: given
/// a build request, its difficulty profile and the time left until its
/// deadline, decide *whether* the service should run it and *how*:
///
///   * `Exact` tier — the predicted full-fidelity solve fits the
///     deadline (or there is none). The request runs completely
///     unmodified, so exact-tier results are byte-identical to the
///     non-QoS path.
///   * `Pipeline` tier — the full solve does not fit, but a degraded
///     pipeline run (exact cap clamped to `DegradedMaxExactBlockSize`,
///     oversized blocks falling back to the in-pipeline heuristic) does.
///   * `Heuristic` tier — only a single agglomerative pass (UPGMM,
///     `heur/Upgma.h`) fits: a feasible tree in O(n^2 log n), no B&B.
///   * Shed (`ServiceError::Shed`) — even the heuristic cannot meet the
///     deadline; answering immediately costs the client nothing and
///     protects every queued request behind it.
///
/// Ahead of tier routing, per-tenant token buckets bound each tenant's
/// admitted request rate (`ServiceError::RateLimited` when drained), so
/// one chatty client cannot monopolize admission regardless of how cheap
/// its requests are.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_QOS_ADMISSION_H
#define MUTK_QOS_ADMISSION_H

#include "qos/CostModel.h"
#include "service/Protocol.h"
#include "support/Mutex.h"

#include <chrono>
#include <string>
#include <unordered_map>

namespace mutk::qos {

/// Admission-control knobs (a sub-struct of `ServiceOptions`).
struct AdmissionOptions {
  /// Master switch: when false the service never consults admission and
  /// behaves exactly as before the QoS layer existed.
  bool Enabled = false;
  /// Tokens per second granted to each tenant (0 = unlimited).
  double TenantRatePerSec = 0.0;
  /// Bucket depth: the burst a tenant may submit after idling.
  double TenantBurst = 16.0;
  /// Exact-block cap of the degraded pipeline tier.
  int DegradedMaxExactBlockSize = 8;
  /// Safety margin on fit checks: a tier is chosen only when its
  /// predicted cost times this factor fits the remaining deadline.
  double FitMargin = 1.0;
};

/// One admission decision.
struct Verdict {
  bool Admit = true;
  QosTier Tier = QosTier::Exact;
  /// `Shed` or `RateLimited` when `!Admit`.
  ServiceError Error = ServiceError::None;
  std::string Message;
  /// Predicted wall time of the chosen tier (echoed to the client).
  double PredictedMillis = 0.0;
  /// Predicted search nodes (calibration input for exact/pipeline runs).
  double PredictedNodes = 0.0;
};

/// Thread-safe admission controller: token buckets + tier routing over a
/// shared `CostModel`.
class AdmissionController {
public:
  /// \p Model is borrowed and must outlive the controller.
  AdmissionController(CostModel &Model, const AdmissionOptions &Options);

  /// Decides the fate of a request whose difficulty is \p Profile.
  /// \p RemainingMillis is the time left until the deadline (< 0 when
  /// the request has none). Charges \p Tenant's token bucket.
  Verdict assess(const BuildRequest &Request,
                 const DifficultyProfile &Profile, double RemainingMillis);

  const AdmissionOptions &options() const { return Options; }

private:
  /// Takes one token from \p Tenant's bucket; false when drained.
  bool takeToken(const std::string &Tenant);

  CostModel &Model;
  AdmissionOptions Options;

  struct Bucket {
    double Tokens = 0.0;
    std::chrono::steady_clock::time_point LastRefill{};
  };
  Mutex BucketsMu{"qos.admission"};
  std::unordered_map<std::string, Bucket> Buckets MUTK_GUARDED_BY(BucketsMu);
};

} // namespace mutk::qos

#endif // MUTK_QOS_ADMISSION_H
