//===- qos/Coalescer.h - In-flight request coalescing -----------*- C++ -*-===//
///
/// \file
/// Deduplicates identical in-flight build requests beyond the pipeline's
/// per-block single-flight: the first submitter of an identity becomes
/// the *leader* and is enqueued normally; every later identical request
/// becomes a *follower* whose promise is parked on the leader's flight.
/// When the leader's job resolves — success, error, rejection or
/// shutdown, every path goes through the same service helper — the
/// result is fanned out to all followers in one pass, so N identical
/// requests cost one queue slot and one solve.
///
/// Identity is decided by the caller (the service hashes the encoded
/// request with scheduling-only fields normalized out) and collision-
/// checked against the stored identity bytes: a 64-bit collision falls
/// back to a normal non-coalesced submit, never a wrong fan-out.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_QOS_COALESCER_H
#define MUTK_QOS_COALESCER_H

#include "service/Protocol.h"
#include "support/Mutex.h"

#include <cstdint>
#include <future>
#include <unordered_map>
#include <vector>

namespace mutk::qos {

/// Tracks one leader per in-flight request identity and the follower
/// promises parked on it. Thread-safe.
class Coalescer {
public:
  /// Outcome of `attach`.
  struct Attach {
    /// True: no identical request is in flight; the caller must enqueue
    /// the job and later call `resolve` with this key.
    bool Leader = true;
    /// Valid when `!Leader`: resolves with the leader's response.
    std::future<BuildResponse> Follower;
  };

  /// Joins the flight for \p Key (identity \p Identity), registering a
  /// new flight when none exists. A key collision with different
  /// identity bytes is reported as `Leader` with `Tracked == false` —
  /// the caller submits normally and never calls `resolve`.
  Attach attach(std::uint64_t Key, const std::vector<std::uint8_t> &Identity,
                bool *Tracked);

  /// Ends the flight for \p Key and returns the parked follower promises
  /// (empty when nobody joined). The caller fans \p them out *outside*
  /// any of its own locks.
  std::vector<std::promise<BuildResponse>> take(std::uint64_t Key);

  /// Followers currently parked across all flights (tests).
  std::size_t parkedFollowers() const;

private:
  struct Flight {
    std::vector<std::uint8_t> Identity;
    std::vector<std::promise<BuildResponse>> Followers;
  };
  mutable Mutex Mu{"qos.coalesce"};
  std::unordered_map<std::uint64_t, Flight> Flights MUTK_GUARDED_BY(Mu);
};

} // namespace mutk::qos

#endif // MUTK_QOS_COALESCER_H
