//===- qos/CostModel.h - Request difficulty predictor -----------*- C++ -*-===//
///
/// \file
/// Predicts how expensive a build request will be *before* a worker
/// commits to it, from statistics the paper's own pipeline makes cheap:
/// a dry-run compact-set decomposition (`findCompactSets` +
/// `CompactHierarchy`, O(n^2 log n), no solver) yields the block-size
/// profile that dominates branch-and-bound cost, and the metric's
/// spread (max/min off-diagonal distance) separates well-clustered
/// matrices — where condensation splits the problem and B&B prunes well
/// — from near-equidistant ones where it cannot.
///
/// The prediction is expressed in *search nodes* and converted to wall
/// time through a cost-per-node coefficient calibrated online: every
/// completed solve feeds its observed `(branched nodes, solve millis)`
/// pair back through `observe`, and an EWMA tracks the machine's actual
/// per-node cost. Predictions are deliberately **monotone**: adding taxa
/// or widening the largest block never lowers the predicted cost (a
/// shed decision must not flip to "admit" when the input grows).
///
/// Dry-run profiles are memoized by relabeling-invariant fingerprint
/// (`matrix/Fingerprint.h`), so admission never decomposes the same
/// matrix twice — a request that proceeds to the pipeline tier reuses
/// the admission-time profile for free on resubmission.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_QOS_COSTMODEL_H
#define MUTK_QOS_COSTMODEL_H

#include "matrix/DistanceMatrix.h"
#include "support/Mutex.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace mutk::qos {

/// Cheap difficulty features of one request matrix.
struct DifficultyProfile {
  /// Taxon count.
  int Species = 0;
  /// Largest condensed block any hierarchy node induces (== Species when
  /// the matrix has no compact sets at all).
  int MaxBlock = 0;
  /// Condensed block size of every internal hierarchy node, top-down.
  std::vector<int> BlockSizes;
  /// Max/min positive off-diagonal distance (>= 1). Near 1 means
  /// near-equidistant: no compact sets and poor B&B pruning.
  double Spread = 1.0;
};

/// Tuning knobs; the defaults are deliberately conservative (predict too
/// expensive rather than too cheap — a wrong shed degrades one request,
/// a wrong admit starves many).
struct CostModelOptions {
  /// Dry-run profiles memoized by canonical fingerprint.
  std::size_t MemoCapacity = 256;
  /// Initial cost-per-node guess, overwritten by calibration. Matches
  /// `ServiceOptions::NodesPerMilli`'s view of ~20k nodes/ms.
  double InitialMillisPerNode = 5e-5;
  /// EWMA gain of the online calibration (0 disables learning).
  double CalibrationGain = 0.2;
  /// Exponential growth per species of an exact block solve: a block of
  /// size b costs ~`GrowthBase^(b-3)` nodes before hardness scaling.
  double GrowthBase = 2.4;
  /// Hardness multiplier scale: multiplies exact-block cost by
  /// `1 + HardnessGain / max(Spread - 1, 0.05)`, so near-equidistant
  /// matrices (spread -> 1, no pruning) predict much harder than
  /// well-separated ones.
  double HardnessGain = 4.0;
  /// Per-species node-equivalent of the decomposition + condensation
  /// overhead (the O(n^2 log n) part, charged as Overhead * n^2).
  double OverheadPerPair = 0.05;
  /// Node-equivalents per species^3 of an agglomerative (UPGMM) solve,
  /// used both for oversized blocks inside the pipeline and for the
  /// heuristic tier estimate.
  double HeuristicPerCube = 0.5;
};

/// Thread-safe difficulty predictor with online latency calibration.
class CostModel {
public:
  explicit CostModel(const CostModelOptions &Options = {});

  /// Computes the dry-run profile of \p M (no memoization, no solver):
  /// compact-set detection, hierarchy construction and per-node
  /// partition sizes. O(n^2 log n).
  static DifficultyProfile computeProfile(const DistanceMatrix &M);

  /// Memoized `computeProfile`: keyed by the relabeling-invariant
  /// canonical fingerprint, so resubmissions (and relabelings) of a
  /// matrix never pay the dry run twice.
  DifficultyProfile profileFor(const DistanceMatrix &M);

  /// A profile for a server-side generated workload, where only the
  /// species count is known at admission time: one undecomposed block of
  /// `Species` taxa with a benign spread.
  static DifficultyProfile generatorProfile(int Species);

  /// Predicted search nodes of a full pipeline solve of \p Profile with
  /// per-block exact cap \p MaxExactBlockSize. Monotone in `Species` and
  /// in any block size (growing a block past the cap switches it to the
  /// heuristic estimate, floored at the cap's exact cost so the switch
  /// never *lowers* the prediction).
  double predictNodes(const DifficultyProfile &Profile,
                      int MaxExactBlockSize) const;

  /// `predictNodes` scaled by the calibrated cost-per-node coefficient.
  double predictMillis(const DifficultyProfile &Profile,
                       int MaxExactBlockSize) const;

  /// Predicted wall time of the heuristic tier (one agglomerative pass,
  /// no B&B) for \p Species taxa.
  double heuristicMillis(int Species) const;

  /// Feeds one observed solve back into the calibration: \p Branched
  /// search nodes took \p SolveMillis. Ignored when either is
  /// nonpositive.
  void observe(std::uint64_t Branched, double SolveMillis);

  /// Current calibrated coefficient (milliseconds per search node).
  double millisPerNode() const;

  /// \name Memo accounting (tested; also exported as metrics).
  /// @{
  std::uint64_t dryRuns() const { return DryRuns.load(std::memory_order_relaxed); }
  std::uint64_t memoHits() const { return MemoHits.load(std::memory_order_relaxed); }
  /// @}

  const CostModelOptions &options() const { return Options; }

private:
  CostModelOptions Options;

  /// Calibrated ms/node; stored as nanos-per-node in a u64 so the
  /// hot-path read stays a relaxed atomic load (atomic<double> is not
  /// lock-free everywhere).
  std::atomic<std::uint64_t> NanosPerNodeQ16{0};
  std::atomic<std::uint64_t> DryRuns{0};
  std::atomic<std::uint64_t> MemoHits{0};

  struct MemoEntry {
    DifficultyProfile Profile;
    std::list<std::uint64_t>::iterator Recency;
  };
  mutable Mutex MemoMu{"qos.costmodel"};
  std::unordered_map<std::uint64_t, MemoEntry> Memo MUTK_GUARDED_BY(MemoMu);
  /// LRU order, most recent at the front.
  std::list<std::uint64_t> Recency MUTK_GUARDED_BY(MemoMu);
};

} // namespace mutk::qos

#endif // MUTK_QOS_COSTMODEL_H
