//===- qos/Scheduler.cpp - Priority/EDF ready queue -----------------------===//

#include "qos/Scheduler.h"

using namespace mutk;
using namespace mutk::qos;

std::uint64_t ReadyPolicy::servedCount(const std::string &Tenant) const {
  auto It = ServedByTenant.find(Tenant);
  return It == ServedByTenant.end() ? 0 : It->second;
}

bool ReadyPolicy::ranksBefore(const Ticket &A, const Ticket &B) const {
  if (A.Priority != B.Priority)
    return A.Priority > B.Priority;
  if (A.Tenant != B.Tenant) {
    std::uint64_t ServedA = servedCount(A.Tenant);
    std::uint64_t ServedB = servedCount(B.Tenant);
    if (ServedA != ServedB)
      return ServedA < ServedB;
  }
  if (A.HasDeadline != B.HasDeadline)
    return A.HasDeadline; // a deadline outranks "whenever"
  if (A.HasDeadline && A.Deadline != B.Deadline)
    return A.Deadline < B.Deadline;
  return A.Seq < B.Seq;
}

std::size_t ReadyPolicy::pick(const std::vector<const Ticket *> &Tickets,
                              Ticket::Clock::time_point Now,
                              bool *Starved) const {
  if (Starved)
    *Starved = false;
  std::size_t Best = 0;
  std::size_t Oldest = 0;
  for (std::size_t I = 1; I < Tickets.size(); ++I) {
    if (ranksBefore(*Tickets[I], *Tickets[Best]))
      Best = I;
    if (Tickets[I]->Seq < Tickets[Oldest]->Seq)
      Oldest = I;
  }
  if (Options.StarvationMillis > 0.0 && Oldest != Best) {
    double WaitedMillis = std::chrono::duration<double, std::milli>(
                              Now - Tickets[Oldest]->Enqueued)
                              .count();
    if (WaitedMillis > Options.StarvationMillis) {
      if (Starved)
        *Starved = true;
      return Oldest;
    }
  }
  return Best;
}

void ReadyPolicy::served(const std::string &Tenant) {
  if (ServedByTenant.size() >= MaxTenants &&
      ServedByTenant.find(Tenant) == ServedByTenant.end())
    ServedByTenant.clear();
  ++ServedByTenant[Tenant];
}
