//===- qos/CostModel.cpp - Request difficulty predictor -------------------===//

#include "qos/CostModel.h"

#include "graph/Hierarchy.h"
#include "matrix/Fingerprint.h"
#include "obs/Instruments.h"

#include <algorithm>
#include <cmath>

using namespace mutk;
using namespace mutk::qos;

namespace {

/// Fixed-point scale of the calibrated nanoseconds-per-node coefficient
/// (Q16: 16 fractional bits keeps sub-nanosecond resolution in a u64).
constexpr double NanosQ16 = 65536.0;

std::uint64_t encodeMillisPerNode(double MillisPerNode) {
  double NanosPerNode = MillisPerNode * 1e6;
  return static_cast<std::uint64_t>(std::max(0.0, NanosPerNode) * NanosQ16);
}

double decodeMillisPerNode(std::uint64_t Encoded) {
  return static_cast<double>(Encoded) / NanosQ16 * 1e-6;
}

} // namespace

CostModel::CostModel(const CostModelOptions &Options) : Options(Options) {
  NanosPerNodeQ16.store(encodeMillisPerNode(Options.InitialMillisPerNode),
                        std::memory_order_relaxed);
}

DifficultyProfile CostModel::computeProfile(const DistanceMatrix &M) {
  DifficultyProfile P;
  P.Species = M.size();
  if (M.size() <= 1) {
    P.MaxBlock = M.size();
    return P;
  }
  double MinD = 0.0, MaxD = 0.0;
  bool Seen = false;
  for (int I = 0; I < M.size(); ++I)
    for (int J = I + 1; J < M.size(); ++J) {
      double D = M.at(I, J);
      if (D <= 0.0)
        continue;
      if (!Seen || D < MinD)
        MinD = D;
      if (!Seen || D > MaxD)
        MaxD = D;
      Seen = true;
    }
  P.Spread = Seen && MinD > 0.0 ? MaxD / MinD : 1.0;

  // The dry run: the decomposition the pipeline itself would perform,
  // minus every solver. Each internal hierarchy node condenses to one
  // matrix whose size is its partition's block count.
  CompactHierarchy Hierarchy(M.size(), findCompactSets(M));
  for (int Id : Hierarchy.internalNodesTopDown())
    P.BlockSizes.push_back(
        static_cast<int>(Hierarchy.partitionAt(Id).size()));
  P.MaxBlock = Hierarchy.maxPartitionSize();
  return P;
}

DifficultyProfile CostModel::generatorProfile(int Species) {
  DifficultyProfile P;
  P.Species = std::max(0, Species);
  P.MaxBlock = P.Species;
  if (P.Species > 1)
    P.BlockSizes.push_back(P.Species);
  // Generated metrics are typically well-spread; the block size already
  // carries the pessimism (no decomposition assumed).
  P.Spread = 10.0;
  return P;
}

DifficultyProfile CostModel::profileFor(const DistanceMatrix &M) {
  std::uint64_t Key = fingerprint(M);
  {
    MutexLock Lock(MemoMu);
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      // Refresh recency; a fingerprint collision at worst re-ranks a
      // request (the profile is advisory, never a correctness input).
      Recency.splice(Recency.begin(), Recency, It->second.Recency);
      MemoHits.fetch_add(1, std::memory_order_relaxed);
      obs::qosInstruments().ProfileMemoHits.inc();
      return It->second.Profile;
    }
  }
  DryRuns.fetch_add(1, std::memory_order_relaxed);
  obs::qosInstruments().ProfileDryRuns.inc();
  DifficultyProfile P = computeProfile(M);
  MutexLock Lock(MemoMu);
  if (Memo.find(Key) == Memo.end()) {
    Recency.push_front(Key);
    Memo.emplace(Key, MemoEntry{P, Recency.begin()});
    while (Memo.size() > std::max<std::size_t>(1, Options.MemoCapacity)) {
      Memo.erase(Recency.back());
      Recency.pop_back();
    }
  }
  return P;
}

double CostModel::predictNodes(const DifficultyProfile &Profile,
                               int MaxExactBlockSize) const {
  int Cap = std::max(1, MaxExactBlockSize);
  double N = static_cast<double>(std::max(0, Profile.Species));
  // Decomposition + condensation overhead, O(n^2 log n) charged as n^2
  // node-equivalents.
  double Nodes = Options.OverheadPerPair * N * N;

  // Near-equidistant metrics admit no compact sets and defeat the
  // bound's pruning; scale exact-block cost up as the spread collapses
  // toward 1.
  double Hardness =
      1.0 + Options.HardnessGain / std::max(Profile.Spread - 1.0, 0.05);

  auto exactBlockNodes = [&](int B) {
    if (B <= 2)
      return 1.0;
    return std::pow(Options.GrowthBase, static_cast<double>(B - 3)) * Hardness;
  };
  auto blockNodes = [&](int B) {
    if (B <= Cap)
      return exactBlockNodes(B);
    // Oversized blocks fall back to the agglomerative heuristic inside
    // the pipeline — genuinely cheaper than exact, but floored at the
    // cap's exact cost so *widening a block never lowers the
    // prediction* (monotonicity; see the property test).
    double Heuristic =
        Options.HeuristicPerCube * static_cast<double>(B) * B * B;
    return std::max(exactBlockNodes(Cap), Heuristic);
  };

  if (Profile.BlockSizes.empty()) {
    Nodes += blockNodes(Profile.MaxBlock);
  } else {
    for (int B : Profile.BlockSizes)
      Nodes += blockNodes(B);
  }
  return Nodes;
}

double CostModel::predictMillis(const DifficultyProfile &Profile,
                                int MaxExactBlockSize) const {
  return predictNodes(Profile, MaxExactBlockSize) * millisPerNode();
}

double CostModel::heuristicMillis(int Species) const {
  double N = static_cast<double>(std::max(0, Species));
  return Options.HeuristicPerCube * N * N * N * millisPerNode();
}

void CostModel::observe(std::uint64_t Branched, double SolveMillis) {
  if (Branched == 0 || SolveMillis <= 0.0 || Options.CalibrationGain <= 0.0)
    return;
  double Observed = SolveMillis / static_cast<double>(Branched);
  // Clamp so one pathological sample (timer glitch, tiny solve) cannot
  // poison the coefficient.
  Observed = std::clamp(Observed, 1e-9, 10.0);
  double Gain = std::min(1.0, Options.CalibrationGain);
  double Current = millisPerNode();
  double Next = (1.0 - Gain) * Current + Gain * Observed;
  NanosPerNodeQ16.store(encodeMillisPerNode(Next), std::memory_order_relaxed);
  obs::qosInstruments().CostPerNodeNanos.set(
      static_cast<std::int64_t>(Next * 1e6));
}

double CostModel::millisPerNode() const {
  return decodeMillisPerNode(
      NanosPerNodeQ16.load(std::memory_order_relaxed));
}
