//===- qos/Scheduler.h - Priority/EDF ready queue ---------------*- C++ -*-===//
///
/// \file
/// The QoS replacement for the service's FIFO-only `BoundedQueue`: a
/// bounded MPMC ready queue whose consumers are handed the *best* entry
/// rather than the oldest. Each entry carries a `Ticket` (priority,
/// deadline, tenant) and the pick order is:
///
///   1. *Starvation hatch*: any entry queued longer than
///      `StarvationMillis` is served oldest-first regardless of rank, so
///      a stream of high-priority arrivals cannot park a low-priority
///      job forever.
///   2. Priority strata, high before low.
///   3. Within a stratum, the least-served tenant first (fair sharing by
///      cumulative serve counts).
///   4. Within a tenant, earliest deadline first; deadline-free entries
///      rank behind every deadline.
///   5. Submission order (FIFO).
///
/// With uniform tickets — the QoS-off configuration — every comparison
/// ties and rule 5 degrades the queue to *exactly* the FIFO it replaces,
/// which is what keeps the non-QoS service behavior (and its tests)
/// unchanged. Close/drain semantics mirror `BoundedQueue` precisely:
/// `push` blocks while full and fails only once closed, `pop` drains
/// accepted items after close, and failed pushes leave the item
/// untouched in the caller (its promise still has to be resolved).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_QOS_SCHEDULER_H
#define MUTK_QOS_SCHEDULER_H

#include "obs/Instruments.h"
#include "support/Audit.h"
#include "support/Mutex.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mutk::qos {

/// Scheduling metadata of one queued entry. Default-constructed tickets
/// are all equal, which makes the queue a plain FIFO.
struct Ticket {
  using Clock = std::chrono::steady_clock;

  /// Higher runs sooner (`RequestPriority` values on the wire).
  std::uint8_t Priority = 1;
  bool HasDeadline = false;
  Clock::time_point Deadline{};
  /// Fair-share bucket; empty is the default tenant.
  std::string Tenant;

  // Filled by the queue on push.
  std::uint64_t Seq = 0;
  Clock::time_point Enqueued{};
};

/// Knobs of the ready queue's pick order.
struct SchedulerOptions {
  /// Entries waiting longer than this are served oldest-first regardless
  /// of priority/tenant rank (0 disables the hatch).
  double StarvationMillis = 5000.0;
  /// Optional counter bumped when the hatch overrides the rank order.
  obs::Counter *StarvationPromotions = nullptr;
};

/// The non-template pick/fairness core, shared by every `ReadyQueue`
/// instantiation and unit-testable without a queue. Externally
/// synchronized (the queue calls it under its own mutex).
class ReadyPolicy {
public:
  explicit ReadyPolicy(SchedulerOptions Options) : Options(Options) {}

  /// Index of the entry to serve next among \p Tickets (nonempty).
  /// Sets \p *Starved when the starvation hatch overrode the rank order.
  std::size_t pick(const std::vector<const Ticket *> &Tickets,
                   Ticket::Clock::time_point Now, bool *Starved) const;

  /// Records one serve against \p Tenant's fair-share count.
  void served(const std::string &Tenant);

private:
  /// True when \p A should be served before \p B under rules 2-5.
  bool ranksBefore(const Ticket &A, const Ticket &B) const;

  std::uint64_t servedCount(const std::string &Tenant) const;

  SchedulerOptions Options;
  /// Cumulative serves per tenant. Bounded: the map is reset when a
  /// pathological tenant churn would grow it past `MaxTenants` (fairness
  /// restarts from a clean slate, which is benign).
  static constexpr std::size_t MaxTenants = 4096;
  std::unordered_map<std::string, std::uint64_t> ServedByTenant;
};

/// Bounded MPMC ready queue with ticket-ranked pops; drop-in for
/// `BoundedQueue` (same blocking, close and drain semantics).
template <typename T> class ReadyQueue {
public:
  explicit ReadyQueue(std::size_t Capacity, SchedulerOptions Options = {},
                      obs::QueueInstruments Instruments = {})
      : Instruments(Instruments), Options(Options), Capacity(Capacity),
        Policy(Options) {}

  ReadyQueue(const ReadyQueue &) = delete;
  ReadyQueue &operator=(const ReadyQueue &) = delete;

  /// Blocks while full. \returns false once closed — the item is then
  /// left untouched in the caller.
  bool push(T &&Item, Ticket Tk = {}) {
    MutexLock Lock(Mu);
    while (Items.size() >= Capacity && !Closed)
      NotFull.wait(Lock);
    if (Closed) {
      noteRejected();
      return false;
    }
    admit(std::move(Item), std::move(Tk));
    return true;
  }

  /// Non-blocking push. \returns false when full or closed (item left
  /// untouched, as with `push`).
  bool tryPush(T &&Item, Ticket Tk = {}) {
    MutexLock Lock(Mu);
    if (Closed || Items.size() >= Capacity) {
      noteRejected();
      return false;
    }
    admit(std::move(Item), std::move(Tk));
    return true;
  }

  /// Blocks while empty; serves the best-ranked entry. \returns nullopt
  /// once closed *and* drained.
  std::optional<T> pop() {
    MutexLock Lock(Mu);
    while (Items.empty() && !Closed)
      NotEmpty.wait(Lock);
    if (Items.empty())
      return std::nullopt;
    return take(pickIndex());
  }

  /// Non-blocking pop of the best-ranked entry (nullopt when empty,
  /// whether or not the queue is closed).
  std::optional<T> tryPop() {
    MutexLock Lock(Mu);
    if (Items.empty())
      return std::nullopt;
    return take(pickIndex());
  }

  /// Atomically removes and returns everything currently queued, in
  /// submission order.
  std::vector<T> drain() {
    MutexLock Lock(Mu);
    std::vector<T> Out;
    Out.reserve(Items.size());
    for (Entry &E : Items)
      Out.push_back(std::move(E.Item));
    if (Instruments.Depth)
      Instruments.Depth->sub(static_cast<std::int64_t>(Items.size()));
    Items.clear();
    NotFull.notify_all();
    return Out;
  }

  /// Rejects future pushes and wakes every blocked producer/consumer.
  void close() {
    MutexLock Lock(Mu);
    Closed = true;
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const {
    MutexLock Lock(Mu);
    return Closed;
  }

  std::size_t depth() const {
    MutexLock Lock(Mu);
    return Items.size();
  }

private:
  struct Entry {
    Ticket Tk;
    T Item;
  };

  void admit(T &&Item, Ticket &&Tk) MUTK_REQUIRES(Mu) {
    Tk.Seq = NextSeq++;
    Tk.Enqueued = Ticket::Clock::now();
    Items.push_back(Entry{std::move(Tk), std::move(Item)});
    MUTK_AUDIT(Items.size() <= Capacity,
               "ready queue exceeded its capacity");
    if (Instruments.Depth)
      Instruments.Depth->add(1);
    if (Instruments.Enqueued)
      Instruments.Enqueued->inc();
    NotEmpty.notify_one();
  }

  std::size_t pickIndex() MUTK_REQUIRES(Mu) {
    std::vector<const Ticket *> Tickets;
    Tickets.reserve(Items.size());
    for (const Entry &E : Items)
      Tickets.push_back(&E.Tk);
    bool Starved = false;
    std::size_t Index =
        Policy.pick(Tickets, Ticket::Clock::now(), &Starved);
    if (Starved && Options.StarvationPromotions)
      Options.StarvationPromotions->inc();
    return Index;
  }

  std::optional<T> take(std::size_t Index) MUTK_REQUIRES(Mu) {
    auto It = Items.begin() + static_cast<std::ptrdiff_t>(Index);
    Policy.served(It->Tk.Tenant);
    T Item = std::move(It->Item);
    Items.erase(It);
    if (Instruments.Depth)
      Instruments.Depth->sub(1);
    NotFull.notify_one();
    return Item;
  }

  void noteRejected() MUTK_REQUIRES(Mu) {
    if (Instruments.Rejected)
      Instruments.Rejected->inc();
  }

  obs::QueueInstruments Instruments;
  /// Immutable after construction (safe to read without the lock).
  SchedulerOptions Options;
  mutable Mutex Mu{"qos.sched"};
  CondVar NotFull;
  CondVar NotEmpty;
  std::deque<Entry> Items MUTK_GUARDED_BY(Mu);
  std::size_t Capacity;
  std::uint64_t NextSeq MUTK_GUARDED_BY(Mu) = 0;
  ReadyPolicy Policy MUTK_GUARDED_BY(Mu);
  bool Closed MUTK_GUARDED_BY(Mu) = false;
};

} // namespace mutk::qos

#endif // MUTK_QOS_SCHEDULER_H
