//===- graph/Mst.h - Minimum spanning trees of the species graph *- C++ -*-===//
///
/// \file
/// A distance matrix is viewed as a complete, weighted, undirected graph
/// (paper §2). Compact-set detection starts from a minimum spanning tree of
/// that graph (paper §3.1 uses Kruskal); Prim's algorithm is also provided
/// as an independent implementation used to cross-check MST weight in tests.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_GRAPH_MST_H
#define MUTK_GRAPH_MST_H

#include "matrix/DistanceMatrix.h"

#include <vector>

namespace mutk {

/// An undirected weighted edge with `U < V` canonical orientation.
struct WeightedEdge {
  int U = -1;
  int V = -1;
  double Weight = 0.0;

  friend bool operator==(const WeightedEdge &A, const WeightedEdge &B) {
    return A.U == B.U && A.V == B.V && A.Weight == B.Weight;
  }
};

/// Compares by (weight, U, V); gives Kruskal a deterministic edge order
/// even in the presence of ties.
bool edgeLess(const WeightedEdge &A, const WeightedEdge &B);

/// All `n(n-1)/2` edges of the complete graph of \p M, sorted by
/// `edgeLess`.
std::vector<WeightedEdge> sortedCompleteEdges(const DistanceMatrix &M);

/// Kruskal MST of the complete graph of \p M.
///
/// \returns the `n - 1` tree edges in the order they were accepted
/// (ascending weight). Deterministic under ties via `edgeLess`.
std::vector<WeightedEdge> kruskalMst(const DistanceMatrix &M);

/// Prim MST of the complete graph of \p M (O(n^2), no edge sort).
/// Edge order follows vertex insertion; total weight equals Kruskal's.
std::vector<WeightedEdge> primMst(const DistanceMatrix &M);

/// Sum of edge weights.
double totalWeight(const std::vector<WeightedEdge> &Edges);

/// Returns true if \p Edges forms a spanning tree over `0..n-1`.
bool isSpanningTree(const std::vector<WeightedEdge> &Edges, int NumVertices);

} // namespace mutk

#endif // MUTK_GRAPH_MST_H
