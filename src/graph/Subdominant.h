//===- graph/Subdominant.h - Subdominant ultrametric ------------*- C++ -*-===//
///
/// \file
/// The *subdominant ultrametric* of a distance matrix: the unique largest
/// ultrametric lying below `M` pointwise,
/// `U[i,j] = min over paths i..j of the maximum edge weight` — i.e. the
/// bottleneck distance of the complete graph, computable from any MST
/// (the max edge on the MST path realizes it). This is the classical
/// structure behind fast ultrametric recognition (Dahlhaus 1993, the
/// papers' reference [2]): `M` is an ultrametric iff `M` equals its
/// subdominant. It also coincides with the tree metric of the
/// single-linkage clustering, which the test suite cross-checks.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_GRAPH_SUBDOMINANT_H
#define MUTK_GRAPH_SUBDOMINANT_H

#include "matrix/DistanceMatrix.h"

namespace mutk {

/// Computes the subdominant ultrametric of \p M in O(n^2 log n)
/// (Kruskal merge order; each merge fixes all cross-component entries to
/// the current edge weight).
DistanceMatrix subdominantUltrametric(const DistanceMatrix &M);

/// MST-based ultrametric recognition: true iff \p M equals its
/// subdominant within \p Tolerance. Equivalent to the O(n^3) triple
/// check `isUltrametric`, but quadratic after the MST sort.
bool isUltrametricFast(const DistanceMatrix &M, double Tolerance = 1e-9);

/// Largest gap `M[i,j] - U[i,j]` to the subdominant — a measure of how
/// far the matrix is from the nearest-below ultrametric (0 iff
/// ultrametric).
double subdominantGap(const DistanceMatrix &M);

} // namespace mutk

#endif // MUTK_GRAPH_SUBDOMINANT_H
