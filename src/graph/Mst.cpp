//===- graph/Mst.cpp - Minimum spanning trees of the species graph --------===//

#include "graph/Mst.h"

#include "support/UnionFind.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace mutk;

bool mutk::edgeLess(const WeightedEdge &A, const WeightedEdge &B) {
  if (A.Weight != B.Weight)
    return A.Weight < B.Weight;
  if (A.U != B.U)
    return A.U < B.U;
  return A.V < B.V;
}

std::vector<WeightedEdge> mutk::sortedCompleteEdges(const DistanceMatrix &M) {
  std::vector<WeightedEdge> Edges;
  const int N = M.size();
  Edges.reserve(static_cast<std::size_t>(N) * (N - 1) / 2);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      Edges.push_back(WeightedEdge{I, J, M.at(I, J)});
  std::sort(Edges.begin(), Edges.end(), edgeLess);
  return Edges;
}

std::vector<WeightedEdge> mutk::kruskalMst(const DistanceMatrix &M) {
  const int N = M.size();
  std::vector<WeightedEdge> Tree;
  if (N < 2)
    return Tree;
  Tree.reserve(static_cast<std::size_t>(N - 1));
  UnionFind Components(static_cast<std::size_t>(N));
  for (const WeightedEdge &E : sortedCompleteEdges(M)) {
    if (Components.unite(E.U, E.V) < 0)
      continue;
    Tree.push_back(E);
    if (static_cast<int>(Tree.size()) == N - 1)
      break;
  }
  return Tree;
}

std::vector<WeightedEdge> mutk::primMst(const DistanceMatrix &M) {
  const int N = M.size();
  std::vector<WeightedEdge> Tree;
  if (N < 2)
    return Tree;
  Tree.reserve(static_cast<std::size_t>(N - 1));

  std::vector<bool> InTree(static_cast<std::size_t>(N), false);
  std::vector<double> Best(static_cast<std::size_t>(N),
                           std::numeric_limits<double>::infinity());
  std::vector<int> BestFrom(static_cast<std::size_t>(N), -1);

  InTree[0] = true;
  for (int V = 1; V < N; ++V) {
    Best[static_cast<std::size_t>(V)] = M.at(0, V);
    BestFrom[static_cast<std::size_t>(V)] = 0;
  }

  for (int Step = 1; Step < N; ++Step) {
    int Next = -1;
    for (int V = 0; V < N; ++V) {
      if (InTree[static_cast<std::size_t>(V)])
        continue;
      if (Next < 0 ||
          Best[static_cast<std::size_t>(V)] < Best[static_cast<std::size_t>(Next)])
        Next = V;
    }
    assert(Next >= 0 && "graph must be connected (it is complete)");
    int From = BestFrom[static_cast<std::size_t>(Next)];
    Tree.push_back(WeightedEdge{std::min(From, Next), std::max(From, Next),
                                M.at(From, Next)});
    InTree[static_cast<std::size_t>(Next)] = true;
    for (int V = 0; V < N; ++V) {
      if (InTree[static_cast<std::size_t>(V)])
        continue;
      if (M.at(Next, V) < Best[static_cast<std::size_t>(V)]) {
        Best[static_cast<std::size_t>(V)] = M.at(Next, V);
        BestFrom[static_cast<std::size_t>(V)] = Next;
      }
    }
  }
  return Tree;
}

double mutk::totalWeight(const std::vector<WeightedEdge> &Edges) {
  double Sum = 0.0;
  for (const WeightedEdge &E : Edges)
    Sum += E.Weight;
  return Sum;
}

bool mutk::isSpanningTree(const std::vector<WeightedEdge> &Edges,
                          int NumVertices) {
  if (static_cast<int>(Edges.size()) != NumVertices - 1)
    return NumVertices <= 1 && Edges.empty();
  UnionFind Components(static_cast<std::size_t>(NumVertices));
  for (const WeightedEdge &E : Edges) {
    if (E.U < 0 || E.V < 0 || E.U >= NumVertices || E.V >= NumVertices)
      return false;
    if (Components.unite(E.U, E.V) < 0)
      return false; // cycle
  }
  return Components.numComponents() == 1;
}
