//===- graph/CompactSets.cpp - Compact-set detection ----------------------===//

#include "graph/CompactSets.h"

#include "graph/Mst.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace mutk;

bool mutk::isCompactSet(const DistanceMatrix &M,
                        const std::vector<int> &Members) {
  const int N = M.size();
  std::vector<bool> InSet(static_cast<std::size_t>(N), false);
  for (int Species : Members) {
    assert(Species >= 0 && Species < N && "member out of range");
    InSet[static_cast<std::size_t>(Species)] = true;
  }

  double MaxInside = 0.0;
  for (std::size_t A = 0; A < Members.size(); ++A)
    for (std::size_t B = A + 1; B < Members.size(); ++B)
      MaxInside = std::max(MaxInside, M.at(Members[A], Members[B]));

  double MinOutgoing = std::numeric_limits<double>::infinity();
  for (int Species : Members)
    for (int Other = 0; Other < N; ++Other)
      if (!InSet[static_cast<std::size_t>(Other)])
        MinOutgoing = std::min(MinOutgoing, M.at(Species, Other));

  // Singletons: MaxInside == 0 < any positive outgoing distance; the whole
  // set: MinOutgoing stays +infinity. Both count as compact by convention.
  return MaxInside < MinOutgoing;
}

std::vector<CompactSet> mutk::findCompactSets(const DistanceMatrix &M) {
  const int N = M.size();
  std::vector<CompactSet> Result;
  if (N < 3)
    return Result; // no proper nontrivial subset can exist for n < 3

  std::vector<WeightedEdge> Tree = kruskalMst(M);
  // kruskalMst already returns edges in ascending (weight, U, V) order.

  UnionFind Components(static_cast<std::size_t>(N));
  // Members and the max intra-set distance per component representative.
  std::vector<std::vector<int>> Members(static_cast<std::size_t>(N));
  std::vector<double> MaxInside(static_cast<std::size_t>(N), 0.0);
  for (int I = 0; I < N; ++I)
    Members[static_cast<std::size_t>(I)] = {I};

  const int NumEdges = static_cast<int>(Tree.size());
  for (int EdgeIndex = 0; EdgeIndex < NumEdges; ++EdgeIndex) {
    const WeightedEdge &E = Tree[static_cast<std::size_t>(EdgeIndex)];
    int RepA = Components.find(E.U);
    int RepB = Components.find(E.V);
    assert(RepA != RepB && "MST edge endpoints already merged");

    // Max over the complete graph inside the merged component: old maxima
    // plus all cross pairs. Total cross-pair work over the whole run is
    // O(n^2).
    double CrossMax = 0.0;
    for (int A : Members[static_cast<std::size_t>(RepA)])
      for (int B : Members[static_cast<std::size_t>(RepB)])
        CrossMax = std::max(CrossMax, M.at(A, B));

    int Rep = Components.unite(E.U, E.V);
    int Other = (Rep == RepA) ? RepB : RepA;
    double MergedMax = std::max({MaxInside[static_cast<std::size_t>(RepA)],
                                 MaxInside[static_cast<std::size_t>(RepB)],
                                 CrossMax});
    MaxInside[static_cast<std::size_t>(Rep)] = MergedMax;
    auto &Into = Members[static_cast<std::size_t>(Rep)];
    auto &From = Members[static_cast<std::size_t>(Other)];
    Into.insert(Into.end(), From.begin(), From.end());
    From.clear();
    From.shrink_to_fit();

    // The final merge yields the whole species set, which is excluded.
    if (EdgeIndex == NumEdges - 1)
      break;

    // Min(A, !A) = lightest remaining MST edge crossing the cut. Remaining
    // MST edges always join two *distinct* current components, so "crosses
    // the cut" is exactly "one endpoint in Rep".
    double MinOutgoing = std::numeric_limits<double>::infinity();
    for (int J = EdgeIndex + 1; J < NumEdges; ++J) {
      const WeightedEdge &Later = Tree[static_cast<std::size_t>(J)];
      bool UIn = Components.find(Later.U) == Rep;
      bool VIn = Components.find(Later.V) == Rep;
      assert(!(UIn && VIn) && "future MST edge inside one component");
      if (UIn != VIn) {
        MinOutgoing = Later.Weight;
        break;
      }
    }
    assert(MinOutgoing < std::numeric_limits<double>::infinity() &&
           "non-final component must have an outgoing MST edge");

    if (MergedMax < MinOutgoing) {
      CompactSet Set;
      Set.Members = Into;
      std::sort(Set.Members.begin(), Set.Members.end());
      Set.MaxInside = MergedMax;
      Set.MinOutgoing = MinOutgoing;
      Result.push_back(std::move(Set));
    }
  }
  return Result;
}

std::vector<CompactSet>
mutk::findCompactSetsBruteForce(const DistanceMatrix &M) {
  const int N = M.size();
  assert(N <= 22 && "brute force is exponential; use findCompactSets");
  std::vector<CompactSet> Result;
  if (N < 3)
    return Result;

  for (std::uint32_t Mask = 1; Mask + 1 < (1u << N); ++Mask) {
    std::vector<int> Members;
    for (int I = 0; I < N; ++I)
      if (Mask & (1u << I))
        Members.push_back(I);
    if (Members.size() < 2)
      continue;
    if (!isCompactSet(M, Members))
      continue;

    CompactSet Set;
    for (std::size_t A = 0; A < Members.size(); ++A)
      for (std::size_t B = A + 1; B < Members.size(); ++B)
        Set.MaxInside = std::max(Set.MaxInside, M.at(Members[A], Members[B]));
    Set.MinOutgoing = std::numeric_limits<double>::infinity();
    for (int Species : Members)
      for (int Other = 0; Other < N; ++Other)
        if (!(Mask & (1u << Other)))
          Set.MinOutgoing = std::min(Set.MinOutgoing, M.at(Species, Other));
    Set.Members = std::move(Members);
    Result.push_back(std::move(Set));
  }

  std::sort(Result.begin(), Result.end(),
            [](const CompactSet &A, const CompactSet &B) {
              if (A.MaxInside != B.MaxInside)
                return A.MaxInside < B.MaxInside;
              return A.Members < B.Members;
            });
  return Result;
}

bool mutk::isLaminarFamily(const std::vector<CompactSet> &Sets) {
  for (std::size_t A = 0; A < Sets.size(); ++A)
    for (std::size_t B = A + 1; B < Sets.size(); ++B) {
      const auto &SA = Sets[A].Members;
      const auto &SB = Sets[B].Members;
      std::vector<int> Intersection;
      std::set_intersection(SA.begin(), SA.end(), SB.begin(), SB.end(),
                            std::back_inserter(Intersection));
      if (Intersection.empty())
        continue;
      if (Intersection.size() != SA.size() &&
          Intersection.size() != SB.size())
        return false;
    }
  return true;
}
