//===- graph/Hierarchy.cpp - Laminar hierarchy of compact sets ------------===//

#include "graph/Hierarchy.h"

#include "support/Audit.h"

#include <algorithm>
#include <cassert>

using namespace mutk;

CompactHierarchy::CompactHierarchy(int NumSpecies,
                                   const std::vector<CompactSet> &Sets)
    : NumSpecies(NumSpecies) {
  assert(NumSpecies >= 1 && "need at least one species");
  // Audited (not just asserted): laminarity is the paper's Lemma 3 and
  // every condensation step depends on it, so sanitizer builds — which
  // define NDEBUG in RelWithDebInfo — must still check it.
  MUTK_AUDIT(isLaminarFamily(Sets),
             "compact sets must form a laminar family (Lemma 3)");

  // Gather distinct member lists, largest first so parents precede
  // children when we link below.
  std::vector<std::vector<int>> Lists;
  for (const CompactSet &Set : Sets) {
    assert(Set.size() >= 2 && Set.size() < NumSpecies &&
           "hierarchy expects proper nontrivial sets");
    Lists.push_back(Set.Members);
  }
  std::sort(Lists.begin(), Lists.end(),
            [](const std::vector<int> &A, const std::vector<int> &B) {
              if (A.size() != B.size())
                return A.size() > B.size();
              return A < B;
            });
  Lists.erase(std::unique(Lists.begin(), Lists.end()), Lists.end());

  // Root covers everything.
  Node Root;
  Root.Species.resize(static_cast<std::size_t>(NumSpecies));
  for (int I = 0; I < NumSpecies; ++I)
    Root.Species[static_cast<std::size_t>(I)] = I;
  Nodes.push_back(std::move(Root));
  RootId = 0;

  auto contains = [](const std::vector<int> &Outer,
                     const std::vector<int> &Inner) {
    return std::includes(Outer.begin(), Outer.end(), Inner.begin(),
                         Inner.end());
  };

  // Link each set under the smallest already-placed superset. Because the
  // lists are processed largest-first and the family is laminar, the
  // correct parent is the most recently placed superset.
  for (auto &List : Lists) {
    int Parent = RootId;
    for (int Id = 1; Id < numNodes(); ++Id)
      if (node(Id).Species.size() > List.size() &&
          contains(node(Id).Species, List) &&
          node(Id).Species.size() < node(Parent).Species.size())
        Parent = Id;
    Node New;
    New.Species = std::move(List);
    New.Parent = Parent;
    Nodes.push_back(std::move(New));
    Nodes[static_cast<std::size_t>(Parent)].Children.push_back(numNodes() -
                                                               1);
  }

  // Add singleton leaves for species not covered by any child of a node.
  const int NumInternal = numNodes();
  for (int Id = 0; Id < NumInternal; ++Id) {
    std::vector<bool> Covered(static_cast<std::size_t>(NumSpecies), false);
    for (int Child : node(Id).Children)
      for (int Species : node(Child).Species)
        Covered[static_cast<std::size_t>(Species)] = true;
    for (int Species : node(Id).Species) {
      if (Covered[static_cast<std::size_t>(Species)])
        continue;
      Node Leaf;
      Leaf.Species = {Species};
      Leaf.Parent = Id;
      Nodes.push_back(std::move(Leaf));
      Nodes[static_cast<std::size_t>(Id)].Children.push_back(numNodes() - 1);
    }
  }
}

std::vector<std::vector<int>> CompactHierarchy::partitionAt(int Id) const {
  std::vector<std::vector<int>> Blocks;
  for (int Child : node(Id).Children)
    Blocks.push_back(node(Child).Species);
  // The blocks must partition the node's species: each member covered by
  // exactly one block, nothing from outside.
  MUTK_AUDIT(
      [&] {
        std::vector<int> Flat;
        for (const std::vector<int> &Block : Blocks)
          Flat.insert(Flat.end(), Block.begin(), Block.end());
        std::sort(Flat.begin(), Flat.end());
        return Flat == node(Id).Species;
      }(),
      "hierarchy children must partition their parent's species");
  return Blocks;
}

std::vector<int> CompactHierarchy::internalNodesTopDown() const {
  // Nodes were appended parents-first, so index order is already
  // topological; filter out the singleton leaves.
  std::vector<int> Result;
  for (int Id = 0; Id < numNodes(); ++Id)
    if (!node(Id).isSingleton())
      Result.push_back(Id);
  return Result;
}

int CompactHierarchy::maxPartitionSize() const {
  int Max = 0;
  for (int Id = 0; Id < numNodes(); ++Id)
    if (!node(Id).isSingleton())
      Max = std::max(Max, static_cast<int>(node(Id).Children.size()));
  return Max;
}
