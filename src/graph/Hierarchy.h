//===- graph/Hierarchy.h - Laminar hierarchy of compact sets ----*- C++ -*-===//
///
/// \file
/// Arranges the (laminar, paper Lemma 3) family of compact sets into a
/// containment tree rooted at the full species set. Each hierarchy node
/// induces the *partition* that the decomposition pipeline condenses into
/// one small matrix D': the node's maximal compact subsets plus the
/// species covered by none of them as singleton blocks.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_GRAPH_HIERARCHY_H
#define MUTK_GRAPH_HIERARCHY_H

#include "graph/CompactSets.h"

#include <vector>

namespace mutk {

/// The containment tree of a laminar family of species sets.
class CompactHierarchy {
public:
  /// One node: either the root (all species), a compact set, or an
  /// implicit singleton leaf.
  struct Node {
    /// Members in increasing species order.
    std::vector<int> Species;
    int Parent = -1;
    /// Child node indices; empty for singleton leaves.
    std::vector<int> Children;

    bool isSingleton() const { return Species.size() == 1; }
  };

  /// Builds the hierarchy over species `0..NumSpecies-1` from \p Sets,
  /// which must be laminar and must contain only proper nontrivial sets
  /// (as produced by `findCompactSets`). Duplicate sets are collapsed.
  CompactHierarchy(int NumSpecies, const std::vector<CompactSet> &Sets);

  int numSpecies() const { return NumSpecies; }
  int numNodes() const { return static_cast<int>(Nodes.size()); }
  int rootId() const { return RootId; }

  const Node &node(int Id) const {
    assert(Id >= 0 && Id < numNodes() && "node out of range");
    return Nodes[static_cast<std::size_t>(Id)];
  }

  /// The partition induced at \p Id: one block per child, in child order.
  /// Singleton leaves yield singleton blocks. At least 2 blocks for any
  /// non-leaf node.
  std::vector<std::vector<int>> partitionAt(int Id) const;

  /// Ids of all non-singleton nodes in topological (parent-before-child)
  /// order, starting with the root.
  std::vector<int> internalNodesTopDown() const;

  /// The largest block count over all internal nodes — the size of the
  /// biggest condensed matrix the decomposition will have to solve.
  int maxPartitionSize() const;

private:
  int NumSpecies;
  std::vector<Node> Nodes;
  int RootId = -1;
};

} // namespace mutk

#endif // MUTK_GRAPH_HIERARCHY_H
