//===- graph/CompactSets.h - Compact-set detection --------------*- C++ -*-===//
///
/// \file
/// Compact sets (paper §3.1, Dekel-Hu-Ouyang 1992, Liang 1993): a subset
/// `S` of the species is *compact* when the largest distance inside `S` is
/// strictly smaller than the smallest distance from `S` to the rest. The
/// paper's properties hold by construction here:
///
///  * Lemma 2: the compactness criterion itself (`Max(S) < Min(S, !S)`).
///  * Lemma 3: compact sets are laminar (two compact sets are nested or
///    disjoint), so they form a hierarchy.
///  * Lemma 4: a compact set induces a connected subtree of the MST, so
///    every compact set appears as a component during Kruskal's merge
///    sequence — which is what makes the O(n^2 log n) detector below exact.
///
/// The detector implements the paper's "Algorithm Compact Sets": run
/// Kruskal in ascending edge order and, after every merge, test the merged
/// component. `Max(A)` is maintained incrementally over the *complete*
/// graph; `Min(A, !A)` is the lightest remaining MST edge crossing the cut
/// (MST cut property). A brute-force subset enumerator is provided as the
/// reference oracle for tests.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_GRAPH_COMPACTSETS_H
#define MUTK_GRAPH_COMPACTSETS_H

#include "matrix/DistanceMatrix.h"

#include <vector>

namespace mutk {

/// One detected compact set with its witness values.
struct CompactSet {
  /// Members in increasing species order.
  std::vector<int> Members;
  /// Largest pairwise distance inside the set.
  double MaxInside = 0.0;
  /// Smallest distance from a member to a non-member.
  double MinOutgoing = 0.0;

  int size() const { return static_cast<int>(Members.size()); }
};

/// Tests the definition directly: `max inside < min outgoing`.
///
/// Singletons and the whole species set are compact by convention
/// (they have no inside pair / no outgoing pair respectively).
bool isCompactSet(const DistanceMatrix &M, const std::vector<int> &Members);

/// Finds every *proper, nontrivial* compact set (`2 <= |S| < n`) via the
/// Kruskal merge sequence. Results are ordered by ascending `MaxInside`
/// (i.e. discovery order), members sorted ascending. O(n^2 log n).
std::vector<CompactSet> findCompactSets(const DistanceMatrix &M);

/// Reference oracle: enumerates all `2^n` subsets. Requires `n <= 22`.
std::vector<CompactSet> findCompactSetsBruteForce(const DistanceMatrix &M);

/// Returns true if \p Sets is laminar: every pair is nested or disjoint.
bool isLaminarFamily(const std::vector<CompactSet> &Sets);

} // namespace mutk

#endif // MUTK_GRAPH_COMPACTSETS_H
