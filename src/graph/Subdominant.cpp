//===- graph/Subdominant.cpp - Subdominant ultrametric ----------------------===//

#include "graph/Subdominant.h"

#include "graph/Mst.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cmath>

using namespace mutk;

DistanceMatrix mutk::subdominantUltrametric(const DistanceMatrix &M) {
  const int N = M.size();
  DistanceMatrix U(N);
  for (int I = 0; I < N; ++I)
    U.setName(I, M.name(I));
  if (N < 2)
    return U;

  // Kruskal in ascending order: when an MST edge of weight w merges two
  // components, every cross pair's bottleneck distance is exactly w.
  UnionFind Components(static_cast<std::size_t>(N));
  std::vector<std::vector<int>> Members(static_cast<std::size_t>(N));
  for (int I = 0; I < N; ++I)
    Members[static_cast<std::size_t>(I)] = {I};

  for (const WeightedEdge &E : kruskalMst(M)) {
    int RA = Components.find(E.U);
    int RB = Components.find(E.V);
    for (int A : Members[static_cast<std::size_t>(RA)])
      for (int B : Members[static_cast<std::size_t>(RB)])
        U.set(A, B, E.Weight);
    int Rep = Components.unite(E.U, E.V);
    int Other = (Rep == RA) ? RB : RA;
    auto &Into = Members[static_cast<std::size_t>(Rep)];
    auto &From = Members[static_cast<std::size_t>(Other)];
    Into.insert(Into.end(), From.begin(), From.end());
    From.clear();
  }
  return U;
}

bool mutk::isUltrametricFast(const DistanceMatrix &M, double Tolerance) {
  DistanceMatrix U = subdominantUltrametric(M);
  return M.approxEquals(U, Tolerance);
}

double mutk::subdominantGap(const DistanceMatrix &M) {
  DistanceMatrix U = subdominantUltrametric(M);
  double Gap = 0.0;
  for (int I = 0; I < M.size(); ++I)
    for (int J = I + 1; J < M.size(); ++J)
      Gap = std::max(Gap, M.at(I, J) - U.at(I, J));
  return Gap;
}
