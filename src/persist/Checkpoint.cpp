//===- persist/Checkpoint.cpp - Durable B&B checkpoints -------------------===//

#include "persist/Checkpoint.h"

#include "mp/Serialize.h"
#include "obs/Instruments.h"
#include "obs/Log.h"

#include <chrono>
#include <utility>

using namespace mutk;
using namespace mutk::persist;

namespace {
constexpr std::uint32_t CheckpointFormatVersion = 1;
constexpr const char *CheckpointMagic = "MUTKCKPT";
} // namespace

FileCheckpointSink::FileCheckpointSink(std::string Path)
    : File(std::move(Path), CheckpointMagic, CheckpointFormatVersion) {}

void FileCheckpointSink::checkpoint(const SearchCheckpoint &State) {
  auto Start = std::chrono::steady_clock::now();
  bool Ok = File.rewrite({encodeSearchCheckpoint(State)});
  double Millis = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  obs::PersistInstruments &I = obs::persistInstruments();
  I.CheckpointWriteMillis.record(Millis);
  if (!Ok) {
    obs::log(obs::LogLevel::Warn, "persist", "checkpoint write failed")
        .kv("path", File.path());
    return;
  }
  ++Writes;
  I.CheckpointWrites.inc();
  obs::log(obs::LogLevel::Debug, "persist", "checkpoint written")
      .kv("path", File.path())
      .kv("frontier", static_cast<std::uint64_t>(State.Frontier.size()))
      .kv("branched", State.Stats.Branched)
      .kv("ms", Millis);
}

std::optional<SearchCheckpoint>
mutk::persist::loadCheckpoint(const std::string &Path) {
  Wal File(Path, CheckpointMagic, CheckpointFormatVersion);
  Wal::ReplayResult Replay = File.replay();
  if (Replay.Missing)
    return std::nullopt;
  if (Replay.Incompatible || Replay.Damaged || Replay.Records.size() != 1) {
    obs::log(obs::LogLevel::Warn, "persist", "unusable checkpoint ignored")
        .kv("path", Path)
        .kv("incompatible", Replay.Incompatible ? 1 : 0)
        .kv("damaged", Replay.Damaged ? 1 : 0);
    return std::nullopt;
  }
  std::optional<SearchCheckpoint> Ck =
      decodeSearchCheckpoint(Replay.Records.front());
  if (!Ck)
    obs::log(obs::LogLevel::Warn, "persist", "undecodable checkpoint ignored")
        .kv("path", Path);
  return Ck;
}

bool mutk::persist::removeCheckpoint(const std::string &Path) {
  return removeFile(Path);
}
