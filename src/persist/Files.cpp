//===- persist/Files.cpp - Crash-safe file primitives ---------------------===//

#include "persist/Files.h"

#include "support/Audit.h"

#include <cerrno>
#include <filesystem>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

using namespace mutk::persist;

namespace {

/// write(2) the whole buffer, retrying EINTR and short writes.
bool writeAllFd(int Fd, const std::uint8_t *Data, std::size_t Size) {
  std::size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<std::size_t>(N);
  }
  return true;
}

int openRetry(const char *Path, int Flags, mode_t Mode) {
  for (;;) {
    int Fd = ::open(Path, Flags, Mode);
    if (Fd >= 0 || errno != EINTR)
      return Fd;
  }
}

} // namespace

bool mutk::persist::ensureDir(const std::string &Dir) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return false;
  return std::filesystem::is_directory(Dir, Ec) && !Ec;
}

std::optional<std::vector<std::uint8_t>>
mutk::persist::readFile(const std::string &Path) {
  int Fd = openRetry(Path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (Fd < 0)
    return std::nullopt;
  std::vector<std::uint8_t> Bytes;
  std::uint8_t Chunk[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return std::nullopt;
    }
    if (N == 0)
      break;
    Bytes.insert(Bytes.end(), Chunk, Chunk + N);
  }
  ::close(Fd);
  return Bytes;
}

bool mutk::persist::writeFileAtomic(const std::string &Path,
                                    const std::vector<std::uint8_t> &Bytes) {
  // The temp file must live on the same filesystem as the target or the
  // rename stops being atomic; "next to it" guarantees that.
  std::string Temp = Path + ".tmp";
  int Fd = openRetry(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                     0644);
  if (Fd < 0)
    return false;
  bool Ok = writeAllFd(Fd, Bytes.data(), Bytes.size());
  // Data must be stable before the rename publishes the file, or a crash
  // could leave a correctly-named file with missing tail pages.
  if (Ok && ::fsync(Fd) != 0)
    Ok = false;
  if (::close(Fd) != 0)
    Ok = false;
  if (Ok && ::rename(Temp.c_str(), Path.c_str()) != 0)
    Ok = false;
  if (!Ok)
    ::unlink(Temp.c_str());
  return Ok;
}

bool mutk::persist::removeFile(const std::string &Path) {
  std::error_code Ec;
  std::filesystem::remove(Path, Ec);
  return !std::filesystem::exists(Path, Ec);
}

std::uint64_t mutk::persist::fileSize(const std::string &Path) {
  std::error_code Ec;
  std::uint64_t Size = std::filesystem::file_size(Path, Ec);
  return Ec ? 0 : Size;
}

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile &&Other) noexcept
    : Fd(std::exchange(Other.Fd, -1)) {}

AppendFile &AppendFile::operator=(AppendFile &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = std::exchange(Other.Fd, -1);
  }
  return *this;
}

bool AppendFile::open(const std::string &Path) {
  close();
  Fd = openRetry(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
  return Fd >= 0;
}

bool AppendFile::append(const std::vector<std::uint8_t> &Bytes) {
  if (Fd < 0)
    return false;
  return writeAllFd(Fd, Bytes.data(), Bytes.size());
}

bool AppendFile::sync() {
  if (Fd < 0)
    return false;
  return ::fdatasync(Fd) == 0;
}

void AppendFile::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

std::string mutk::persist::buildFlavor() {
#ifdef NDEBUG
  std::string Flavor = "release";
#else
  std::string Flavor = "debug";
#endif
#if MUTK_AUDIT_ENABLED
  Flavor += "+audit";
#endif
#if defined(__SANITIZE_ADDRESS__)
  Flavor += "+asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  Flavor += "+asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  Flavor += "+tsan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  Flavor += "+tsan";
#endif
#endif
  return Flavor;
}
