//===- persist/Checkpoint.h - Durable B&B checkpoints -----------*- C++ -*-===//
///
/// \file
/// File backing for `bnb/Checkpoint.h`: a `CheckpointSink` that writes
/// each captured search state to one file, atomically (temp + rename),
/// so the file on disk is always the *latest complete* checkpoint — a
/// crash mid-write leaves the previous one intact. Loading verifies the
/// CRC frame and the header (format version + build flavor) and decodes
/// through `mp/Serialize`, which re-validates every embedded topology.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_PERSIST_CHECKPOINT_H
#define MUTK_PERSIST_CHECKPOINT_H

#include "bnb/Checkpoint.h"
#include "persist/Wal.h"

#include <cstdint>
#include <optional>
#include <string>

namespace mutk::persist {

/// Writes every checkpoint to \p Path, replacing the previous one.
class FileCheckpointSink : public CheckpointSink {
public:
  explicit FileCheckpointSink(std::string Path);

  void checkpoint(const SearchCheckpoint &State) override;

  /// Number of checkpoints successfully written (for tests/metrics).
  std::uint64_t writes() const { return Writes; }
  const std::string &path() const { return File.path(); }

private:
  Wal File;
  std::uint64_t Writes = 0;
};

/// Loads the checkpoint at \p Path; nullopt when absent, damaged, or
/// written by an incompatible format version / build flavor.
std::optional<SearchCheckpoint> loadCheckpoint(const std::string &Path);

/// Deletes a checkpoint file (after the search it belonged to finished).
bool removeCheckpoint(const std::string &Path);

} // namespace mutk::persist

#endif // MUTK_PERSIST_CHECKPOINT_H
