//===- persist/JobJournal.h - Crash-safe job journal ------------*- C++ -*-===//
///
/// \file
/// A WAL of in-flight service work: `Submitted(id, encoded request)`
/// when a build request enters the queue, `Completed(id)` when its
/// response is ready. After a crash, `load()` returns exactly the jobs
/// that were accepted but never finished — the daemon re-enqueues them
/// on startup so accepted work survives restarts. Requests are stored in
/// the wire encoding (`service/Protocol.h`), which already round-trips
/// every field; this layer treats them as opaque bytes.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_PERSIST_JOBJOURNAL_H
#define MUTK_PERSIST_JOBJOURNAL_H

#include "persist/Wal.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mutk::persist {

/// A journaled job that never completed.
struct PendingJob {
  std::uint64_t Id = 0;
  std::vector<std::uint8_t> EncodedRequest;
};

class JobJournal {
public:
  /// The journal lives at `<StateDir>/jobs.wal`.
  explicit JobJournal(const std::string &StateDir);

  /// Replays the journal and returns submitted-but-not-completed jobs in
  /// submission order. Repairs a damaged tail, resets an incompatible
  /// file, and compacts the journal down to the survivors (completed
  /// pairs are dead weight after recovery).
  std::vector<PendingJob> load();

  /// Journals acceptance of \p EncodedRequest under \p Id. Synced: the
  /// caller is about to promise the client an answer.
  bool submitted(std::uint64_t Id,
                 const std::vector<std::uint8_t> &EncodedRequest);

  /// Journals completion of \p Id (not synced — replaying a completed
  /// job is wasted work, not lost work).
  bool completed(std::uint64_t Id);

  std::uint64_t bytes() const { return Log.bytes(); }

private:
  Wal Log;
};

} // namespace mutk::persist

#endif // MUTK_PERSIST_JOBJOURNAL_H
