//===- persist/JobJournal.cpp - Crash-safe job journal --------------------===//

#include "persist/JobJournal.h"

#include "mp/Serialize.h"
#include "obs/Instruments.h"
#include "obs/Log.h"

#include <algorithm>

using namespace mutk;
using namespace mutk::persist;

namespace {

constexpr std::uint32_t JournalFormatVersion = 1;
constexpr std::uint8_t TagSubmitted = 0;
constexpr std::uint8_t TagCompleted = 1;

std::vector<std::uint8_t> encodeSubmitted(std::uint64_t Id,
                                          const std::vector<std::uint8_t> &Req) {
  ByteWriter Writer;
  Writer.writeU8(TagSubmitted);
  Writer.writeU64(Id);
  Writer.writeBytes(Req);
  return Writer.take();
}

std::vector<std::uint8_t> encodeCompleted(std::uint64_t Id) {
  ByteWriter Writer;
  Writer.writeU8(TagCompleted);
  Writer.writeU64(Id);
  return Writer.take();
}

} // namespace

JobJournal::JobJournal(const std::string &StateDir)
    : Log(StateDir + "/jobs.wal", "MUTKJOBS", JournalFormatVersion) {
  ensureDir(StateDir);
}

std::vector<PendingJob> JobJournal::load() {
  Wal::ReplayResult Replay = Log.replay();
  if (Replay.Incompatible) {
    obs::log(obs::LogLevel::Warn, "persist",
             "incompatible job journal, discarding")
        .kv("path", Log.path());
    Log.rewrite({});
    return {};
  }
  if (Replay.Damaged)
    obs::log(obs::LogLevel::Warn, "persist",
             "job journal has a damaged tail, truncating it")
        .kv("path", Log.path());

  std::vector<PendingJob> Pending;
  for (const std::vector<std::uint8_t> &Payload : Replay.Records) {
    ByteReader Reader(Payload);
    std::uint8_t Tag = 0;
    std::uint64_t Id = 0;
    if (!Reader.readU8(Tag) || !Reader.readU64(Id))
      continue;
    if (Tag == TagSubmitted) {
      PendingJob Job;
      Job.Id = Id;
      if (Reader.readBytes(Job.EncodedRequest))
        Pending.push_back(std::move(Job));
    } else if (Tag == TagCompleted) {
      Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                   [Id](const PendingJob &J) {
                                     return J.Id == Id;
                                   }),
                    Pending.end());
    }
  }

  // Compact: survivors only, so the journal never grows across restarts
  // and a damaged tail is truncated as a side effect.
  std::vector<std::vector<std::uint8_t>> Frames;
  Frames.reserve(Pending.size());
  for (const PendingJob &Job : Pending)
    Frames.push_back(encodeSubmitted(Job.Id, Job.EncodedRequest));
  Log.rewrite(Frames);

  obs::persistInstruments().RecoveredJobs.inc(Pending.size());
  return Pending;
}

bool JobJournal::submitted(std::uint64_t Id,
                           const std::vector<std::uint8_t> &EncodedRequest) {
  return Log.append(encodeSubmitted(Id, EncodedRequest), /*Sync=*/true);
}

bool JobJournal::completed(std::uint64_t Id) {
  return Log.append(encodeCompleted(Id), /*Sync=*/false);
}
