//===- persist/Crc32.h - CRC-32 for durable records -------------*- C++ -*-===//
///
/// \file
/// CRC-32 (the IEEE 802.3 polynomial, reflected form 0xEDB88320 — the
/// same checksum zlib and ethernet use) for per-record corruption
/// detection in WALs, snapshots and checkpoint files. A torn write or a
/// bit flip must be *detected and skipped*, never silently decoded into
/// a wrong cached tree. Self-contained table implementation: the repo
/// takes no dependency on zlib.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_PERSIST_CRC32_H
#define MUTK_PERSIST_CRC32_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mutk::persist {

/// CRC-32 of `Bytes[0..Size)`. `Seed` chains incremental computation:
/// `crc32(B, crc32(A))` equals `crc32(A ++ B)`.
std::uint32_t crc32(const std::uint8_t *Bytes, std::size_t Size,
                    std::uint32_t Seed = 0);

inline std::uint32_t crc32(const std::vector<std::uint8_t> &Bytes,
                           std::uint32_t Seed = 0) {
  return crc32(Bytes.data(), Bytes.size(), Seed);
}

} // namespace mutk::persist

#endif // MUTK_PERSIST_CRC32_H
