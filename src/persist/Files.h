//===- persist/Files.h - Crash-safe file primitives -------------*- C++ -*-===//
///
/// \file
/// The only place in the repo that writes durable state to disk. Two
/// primitives cover every persist-layer need:
///
///  - `writeFileAtomic`: write-to-temp + fsync + rename, so a reader (or
///    a crash) never observes a half-written snapshot or checkpoint. The
///    rename is atomic on POSIX within one filesystem; the temp file
///    lives next to the target to guarantee that.
///  - `AppendFile`: an `O_APPEND` descriptor for write-ahead logs, with
///    explicit `sync()`.
///
/// Everything uses raw POSIX descriptors — `scripts/lint.sh` forbids
/// `std::ofstream`/`fopen` under `src/persist/` precisely so no code
/// path can bypass the atomicity discipline by accident.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_PERSIST_FILES_H
#define MUTK_PERSIST_FILES_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mutk::persist {

/// Creates \p Dir (and parents) if missing. \returns false on failure.
bool ensureDir(const std::string &Dir);

/// Reads a whole file; nullopt when it does not exist or cannot be read.
std::optional<std::vector<std::uint8_t>> readFile(const std::string &Path);

/// Atomically replaces \p Path with \p Bytes: writes `Path + ".tmp"`,
/// fsyncs it, then renames over the target. On any failure the target is
/// left untouched (the temp file is cleaned up best-effort).
bool writeFileAtomic(const std::string &Path,
                     const std::vector<std::uint8_t> &Bytes);

/// Removes a file if present; true when it no longer exists.
bool removeFile(const std::string &Path);

/// Size of a file in bytes, 0 when absent.
std::uint64_t fileSize(const std::string &Path);

/// An append-only log file handle (`O_APPEND`, created when missing).
/// Appends go straight to the descriptor; call `sync()` to force them to
/// stable storage. Move-only.
class AppendFile {
public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(AppendFile &&Other) noexcept;
  AppendFile &operator=(AppendFile &&Other) noexcept;
  AppendFile(const AppendFile &) = delete;
  AppendFile &operator=(const AppendFile &) = delete;

  /// Opens \p Path for appending. \returns false on failure.
  bool open(const std::string &Path);
  bool isOpen() const { return Fd >= 0; }

  /// Appends the whole buffer (retries short writes and EINTR).
  bool append(const std::vector<std::uint8_t> &Bytes);

  /// fdatasync()s outstanding appends.
  bool sync();

  void close();

private:
  int Fd = -1;
};

/// The build flavor baked into durable-file headers: "release", "asan"
/// or "tsan". Sanitizer builds deliberately do not share cache state
/// with release builds (and vice versa) — a flavor mismatch is treated
/// as a cold start, which keeps every CI leg hermetic.
std::string buildFlavor();

} // namespace mutk::persist

#endif // MUTK_PERSIST_FILES_H
