//===- persist/Wal.h - Append-only write-ahead log --------------*- C++ -*-===//
///
/// \file
/// The framed-record machinery every durable file shares. A *frame* is
/// `u32 payload-length | u32 crc32(payload) | payload` (little-endian);
/// a WAL file is a header frame — magic, format version, build flavor —
/// followed by data frames. Appends are O_APPEND writes of whole frames,
/// so concurrent readers and crashes can only ever observe a *prefix*
/// plus possibly one torn frame at the tail. Replay therefore walks
/// frames until the first length/CRC violation and drops everything
/// after it: a damaged tail costs the records in the tail, never an
/// abort and never a silently-wrong record.
///
/// Header mismatches (unknown magic, newer format version, different
/// build flavor) mark the log *incompatible*; the owner discards it and
/// starts cold rather than guessing at the byte layout.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_PERSIST_WAL_H
#define MUTK_PERSIST_WAL_H

#include "persist/Files.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mutk::persist {

/// Appends one frame (`len | crc | payload`) to \p Out.
void appendFrame(std::vector<std::uint8_t> &Out,
                 const std::vector<std::uint8_t> &Payload);

/// Walks frames from \p Offset until the buffer ends or a frame fails
/// its length or CRC check.
struct FrameScan {
  std::vector<std::vector<std::uint8_t>> Payloads;
  /// Bytes of the intact prefix (frames that parsed and checksummed).
  std::size_t CleanBytes = 0;
  /// True when bytes remained after the intact prefix (torn or corrupt
  /// tail — the caller should log and may truncate).
  bool Damaged = false;
};
FrameScan scanFrames(const std::vector<std::uint8_t> &Bytes,
                     std::size_t Offset = 0);

/// An append-only log of frames with a self-identifying header frame.
class Wal {
public:
  /// \p Magic names the log type (e.g. "MUTKCWAL"), \p Version its
  /// payload format; bump the version on any layout change.
  Wal(std::string Path, std::string Magic, std::uint32_t Version);

  struct ReplayResult {
    /// Data-frame payloads in append order (header frame excluded).
    std::vector<std::vector<std::uint8_t>> Records;
    /// A torn/corrupt tail was dropped.
    bool Damaged = false;
    /// Header missing or mismatched — contents unusable, start cold.
    bool Incompatible = false;
    /// True when the file did not exist at all.
    bool Missing = false;
  };
  /// Reads and validates the whole log. Does not modify the file.
  ReplayResult replay() const;

  /// Appends one data frame, creating the file (with its header frame)
  /// on first use. \p Sync forces fdatasync after the write.
  bool append(const std::vector<std::uint8_t> &Payload, bool Sync);

  /// Atomically rewrites the log as header + \p Payloads. Used to
  /// truncate a damaged tail and to compact after a snapshot.
  bool rewrite(const std::vector<std::vector<std::uint8_t>> &Payloads);

  /// Current size on disk in bytes (0 when absent).
  std::uint64_t bytes() const { return fileSize(LogPath); }

  const std::string &path() const { return LogPath; }

private:
  std::vector<std::uint8_t> headerFrame() const;
  bool headerMatches(const std::vector<std::uint8_t> &Payload) const;

  std::string LogPath;
  std::string Magic;
  std::uint32_t Version;
  AppendFile Out;
};

} // namespace mutk::persist

#endif // MUTK_PERSIST_WAL_H
