//===- persist/Crc32.cpp - CRC-32 for durable records ---------------------===//

#include "persist/Crc32.h"

#include <array>

namespace {

/// Byte-at-a-time lookup table for the reflected polynomial 0xEDB88320,
/// built once at first use (constexpr-computable, but a function-local
/// static keeps C++17-era compilers happy too).
std::array<std::uint32_t, 256> makeTable() {
  std::array<std::uint32_t, 256> Table{};
  for (std::uint32_t I = 0; I < 256; ++I) {
    std::uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1u) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
    Table[I] = C;
  }
  return Table;
}

} // namespace

std::uint32_t mutk::persist::crc32(const std::uint8_t *Bytes,
                                   std::size_t Size, std::uint32_t Seed) {
  static const std::array<std::uint32_t, 256> Table = makeTable();
  std::uint32_t C = Seed ^ 0xFFFFFFFFu;
  for (std::size_t I = 0; I < Size; ++I)
    C = Table[(C ^ Bytes[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}
