//===- persist/CacheStore.cpp - Durable result cache ----------------------===//

#include "persist/CacheStore.h"

#include "mp/Serialize.h"
#include "obs/Instruments.h"
#include "obs/Log.h"

using namespace mutk;
using namespace mutk::persist;

namespace {
// Version 2 added the namespace byte (whole-matrix vs block tier).
// Version-1 state recovers as a documented cold start — the Wal header
// check rejects it wholesale, which is the intended behavior for a
// format change.
constexpr std::uint32_t CacheFormatVersion = 2;
} // namespace

std::vector<std::uint8_t>
mutk::persist::encodeCacheRecord(const DurableCacheRecord &Rec) {
  ByteWriter Writer;
  Writer.writeU64(Rec.Key);
  Writer.writeBytes(Rec.CanonicalBytes);
  Writer.writeF64(Rec.Cost);
  Writer.writeU8(Rec.Exact ? 1 : 0);
  Writer.writeU8(static_cast<std::uint8_t>(Rec.Space));
  writePhyloTree(Writer, Rec.Tree);
  return Writer.take();
}

std::optional<DurableCacheRecord>
mutk::persist::decodeCacheRecord(const std::vector<std::uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  DurableCacheRecord Rec;
  std::uint8_t Exact = 0;
  std::uint8_t Space = 0;
  if (!Reader.readU64(Rec.Key) || !Reader.readBytes(Rec.CanonicalBytes) ||
      !Reader.readF64(Rec.Cost) || !Reader.readU8(Exact) ||
      !Reader.readU8(Space) || !readPhyloTree(Reader, Rec.Tree) ||
      !Reader.atEnd())
    return std::nullopt;
  if (Space > static_cast<std::uint8_t>(CacheNamespace::Block))
    return std::nullopt;
  Rec.Exact = Exact != 0;
  Rec.Space = static_cast<CacheNamespace>(Space);
  return Rec;
}

CacheStore::CacheStore(const std::string &StateDir)
    : Snapshot(StateDir + "/cache.snapshot", "MUTKSNAP", CacheFormatVersion),
      Log(StateDir + "/cache.wal", "MUTKCWAL", CacheFormatVersion) {
  ensureDir(StateDir);
}

void CacheStore::publishSizes() {
  obs::PersistInstruments &I = obs::persistInstruments();
  I.SnapshotBytes.set(static_cast<std::int64_t>(Snapshot.bytes()));
  I.WalBytes.set(static_cast<std::int64_t>(Log.bytes()));
}

CacheStore::LoadResult CacheStore::load() {
  LoadResult Result;
  obs::PersistInstruments &I = obs::persistInstruments();

  Wal::ReplayResult Snap = Snapshot.replay();
  Wal::ReplayResult LogReplay = Log.replay();
  if (Snap.Incompatible || LogReplay.Incompatible) {
    // Other format version or build flavor: the byte layout cannot be
    // trusted, so both files restart empty (documented cold start).
    obs::log(obs::LogLevel::Warn, "persist",
             "incompatible cache state, starting cold")
        .kv("snapshot", Snapshot.path())
        .kv("flavor", buildFlavor());
    Snapshot.rewrite({});
    Log.rewrite({});
    Result.ColdStart = true;
    publishSizes();
    return Result;
  }

  Result.SnapshotDamaged = Snap.Damaged;
  Result.WalDamaged = LogReplay.Damaged;

  auto decodeInto = [&](const std::vector<std::vector<std::uint8_t>> &Frames,
                        std::size_t &CountOut) {
    for (const std::vector<std::uint8_t> &Payload : Frames) {
      std::optional<DurableCacheRecord> Rec = decodeCacheRecord(Payload);
      if (!Rec) {
        ++Result.DroppedRecords;
        continue;
      }
      Result.Records.push_back(std::move(*Rec));
      ++CountOut;
    }
  };
  decodeInto(Snap.Records, Result.SnapshotRecords);
  decodeInto(LogReplay.Records, Result.WalRecords);

  if (Snap.Damaged)
    obs::log(obs::LogLevel::Warn, "persist",
             "cache snapshot has a damaged tail, keeping intact prefix")
        .kv("path", Snapshot.path())
        .kv("records", static_cast<std::uint64_t>(Result.SnapshotRecords));
  if (LogReplay.Damaged) {
    // Truncate the bad tail now, otherwise future appends land *after*
    // the damage and are unreachable on the next replay.
    obs::log(obs::LogLevel::Warn, "persist",
             "cache WAL has a damaged tail, truncating it")
        .kv("path", Log.path())
        .kv("records", static_cast<std::uint64_t>(Result.WalRecords));
    Log.rewrite(LogReplay.Records);
  }

  I.RecoveredRecords.inc(Result.Records.size());
  I.DroppedRecords.inc(Result.DroppedRecords);
  publishSizes();
  return Result;
}

bool CacheStore::append(const DurableCacheRecord &Rec, bool Sync) {
  bool Ok = Log.append(encodeCacheRecord(Rec), Sync);
  obs::persistInstruments().WalBytes.set(
      static_cast<std::int64_t>(Log.bytes()));
  return Ok;
}

bool CacheStore::compact(const std::vector<DurableCacheRecord> &All) {
  std::vector<std::vector<std::uint8_t>> Frames;
  Frames.reserve(All.size());
  for (const DurableCacheRecord &Rec : All)
    Frames.push_back(encodeCacheRecord(Rec));
  bool Ok = Snapshot.rewrite(Frames);
  // Only truncate journaled insertions once the snapshot that contains
  // them is durably in place.
  if (Ok)
    Ok = Log.rewrite({});
  obs::persistInstruments().SnapshotWrites.inc();
  publishSizes();
  obs::log(obs::LogLevel::Info, "persist", "cache compacted")
      .kv("records", static_cast<std::uint64_t>(All.size()))
      .kv("snapshot_bytes", Snapshot.bytes());
  return Ok;
}
