//===- persist/Wal.cpp - Append-only write-ahead log ----------------------===//

#include "persist/Wal.h"

#include "mp/Serialize.h"
#include "obs/Instruments.h"
#include "persist/Crc32.h"

#include <utility>

using namespace mutk;
using namespace mutk::persist;

namespace {

/// Upper bound on one frame's payload; anything larger is treated as
/// corruption (a flipped length byte must not trigger a huge allocation).
constexpr std::uint32_t MaxFramePayload = 1u << 28; // 256 MiB

std::uint32_t readLe32(const std::uint8_t *P) {
  return static_cast<std::uint32_t>(P[0]) |
         (static_cast<std::uint32_t>(P[1]) << 8) |
         (static_cast<std::uint32_t>(P[2]) << 16) |
         (static_cast<std::uint32_t>(P[3]) << 24);
}

void writeLe32(std::vector<std::uint8_t> &Out, std::uint32_t V) {
  Out.push_back(static_cast<std::uint8_t>(V));
  Out.push_back(static_cast<std::uint8_t>(V >> 8));
  Out.push_back(static_cast<std::uint8_t>(V >> 16));
  Out.push_back(static_cast<std::uint8_t>(V >> 24));
}

} // namespace

void mutk::persist::appendFrame(std::vector<std::uint8_t> &Out,
                                const std::vector<std::uint8_t> &Payload) {
  writeLe32(Out, static_cast<std::uint32_t>(Payload.size()));
  writeLe32(Out, crc32(Payload));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

FrameScan mutk::persist::scanFrames(const std::vector<std::uint8_t> &Bytes,
                                    std::size_t Offset) {
  FrameScan Scan;
  Scan.CleanBytes = Offset;
  std::size_t Pos = Offset;
  while (Pos + 8 <= Bytes.size()) {
    std::uint32_t Len = readLe32(Bytes.data() + Pos);
    std::uint32_t Crc = readLe32(Bytes.data() + Pos + 4);
    if (Len > MaxFramePayload || Pos + 8 + Len > Bytes.size())
      break; // torn or corrupt length
    if (crc32(Bytes.data() + Pos + 8, Len) != Crc)
      break; // payload corrupt
    Scan.Payloads.emplace_back(Bytes.begin() + static_cast<std::ptrdiff_t>(Pos + 8),
                               Bytes.begin() +
                                   static_cast<std::ptrdiff_t>(Pos + 8 + Len));
    Pos += 8 + Len;
    Scan.CleanBytes = Pos;
  }
  Scan.Damaged = Scan.CleanBytes != Bytes.size();
  return Scan;
}

Wal::Wal(std::string Path, std::string Magic, std::uint32_t Version)
    : LogPath(std::move(Path)), Magic(std::move(Magic)), Version(Version) {}

std::vector<std::uint8_t> Wal::headerFrame() const {
  ByteWriter Writer;
  Writer.writeString(Magic);
  Writer.writeU32(Version);
  Writer.writeString(buildFlavor());
  std::vector<std::uint8_t> Frame;
  appendFrame(Frame, Writer.bytes());
  return Frame;
}

bool Wal::headerMatches(const std::vector<std::uint8_t> &Payload) const {
  ByteReader Reader(Payload);
  std::string GotMagic, GotFlavor;
  std::uint32_t GotVersion = 0;
  if (!Reader.readString(GotMagic) || !Reader.readU32(GotVersion) ||
      !Reader.readString(GotFlavor))
    return false;
  return GotMagic == Magic && GotVersion == Version &&
         GotFlavor == buildFlavor();
}

Wal::ReplayResult Wal::replay() const {
  ReplayResult Result;
  std::optional<std::vector<std::uint8_t>> Bytes = readFile(LogPath);
  if (!Bytes) {
    Result.Missing = true;
    return Result;
  }
  FrameScan Scan = scanFrames(*Bytes);
  Result.Damaged = Scan.Damaged;
  if (Scan.Payloads.empty()) {
    // No intact header: an empty file is just "new", anything else is
    // unusable bytes.
    Result.Incompatible = !Bytes->empty();
    return Result;
  }
  if (!headerMatches(Scan.Payloads.front())) {
    Result.Incompatible = true;
    return Result;
  }
  Result.Records.assign(std::make_move_iterator(Scan.Payloads.begin() + 1),
                        std::make_move_iterator(Scan.Payloads.end()));
  return Result;
}

bool Wal::append(const std::vector<std::uint8_t> &Payload, bool Sync) {
  if (!Out.isOpen()) {
    bool Fresh = fileSize(LogPath) == 0;
    if (!Out.open(LogPath))
      return false;
    if (Fresh && !Out.append(headerFrame()))
      return false;
  }
  std::vector<std::uint8_t> Frame;
  Frame.reserve(8 + Payload.size());
  appendFrame(Frame, Payload);
  if (!Out.append(Frame))
    return false;
  if (Sync && !Out.sync())
    return false;
  obs::PersistInstruments &I = obs::persistInstruments();
  I.WalAppends.inc();
  I.WalAppendBytes.inc(Frame.size());
  return true;
}

bool Wal::rewrite(const std::vector<std::vector<std::uint8_t>> &Payloads) {
  std::vector<std::uint8_t> Bytes = headerFrame();
  for (const std::vector<std::uint8_t> &Payload : Payloads)
    appendFrame(Bytes, Payload);
  // The O_APPEND descriptor (if any) still points at the replaced inode;
  // close it so the next append reopens the new file.
  Out.close();
  return writeFileAtomic(LogPath, Bytes);
}
