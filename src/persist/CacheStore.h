//===- persist/CacheStore.h - Durable result cache --------------*- C++ -*-===//
///
/// \file
/// Disk backing for the service result cache: a binary *snapshot* file
/// (the compacted base image, replaced atomically) plus an append-only
/// *WAL* of insertions since the last compaction. Restart recovery is
/// `load()` — snapshot records, then WAL records in append order (later
/// wins on key collisions, matching in-memory insert semantics). Every
/// record is CRC-framed (`persist/Wal.h`), so torn or flipped bytes cost
/// individual records, never the store.
///
/// Records mirror the in-memory `CachedSolution`: the 64-bit fingerprint
/// key, the canonical matrix bytes that make hash collisions harmless,
/// the solved tree and its cost. The service layer owns the conversion —
/// this layer knows nothing about `src/service` (no dependency cycle).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_PERSIST_CACHESTORE_H
#define MUTK_PERSIST_CACHESTORE_H

#include "persist/Wal.h"
#include "tree/PhyloTree.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mutk::persist {

/// Cache namespaces a durable record can belong to. Stored explicitly —
/// the key spaces are salted apart in memory, but a reader of the state
/// files should not need the salt to tell the tiers apart.
enum class CacheNamespace : std::uint8_t {
  Whole = 0, ///< Whole-matrix result (salted key).
  Block = 1, ///< Per-condensed-block subtree (raw fingerprint key).
};

/// One durable cache entry (canonical-label tree + identity bytes).
struct DurableCacheRecord {
  std::uint64_t Key = 0;
  /// Canonical matrix bytes (exact identity; empty only for salted
  /// whole-matrix keys whose identity bytes live elsewhere).
  std::vector<std::uint8_t> CanonicalBytes;
  PhyloTree Tree;
  double Cost = 0.0;
  bool Exact = true;
  CacheNamespace Space = CacheNamespace::Whole;
};

std::vector<std::uint8_t> encodeCacheRecord(const DurableCacheRecord &Rec);
std::optional<DurableCacheRecord>
decodeCacheRecord(const std::vector<std::uint8_t> &Bytes);

/// The snapshot + WAL pair under one state directory.
class CacheStore {
public:
  /// Files live at `<StateDir>/cache.snapshot` and `<StateDir>/cache.wal`
  /// (the directory is created on demand).
  explicit CacheStore(const std::string &StateDir);

  struct LoadResult {
    /// Snapshot records then WAL records, append order preserved.
    std::vector<DurableCacheRecord> Records;
    std::size_t SnapshotRecords = 0;
    std::size_t WalRecords = 0;
    /// Frames that parsed but did not decode as cache records.
    std::size_t DroppedRecords = 0;
    /// A torn/corrupt tail was skipped (and truncated away).
    bool WalDamaged = false;
    bool SnapshotDamaged = false;
    /// Header mismatch (other format version or build flavor): previous
    /// state discarded entirely.
    bool ColdStart = false;
  };
  /// Recovers all records, repairs a damaged WAL tail in place, resets
  /// incompatible files, and updates the `mutk_persist_*` gauges.
  LoadResult load();

  /// Journals one insertion. \p Sync forces fdatasync (the default: a
  /// cache record is the product of an expensive solve).
  bool append(const DurableCacheRecord &Rec, bool Sync = true);

  /// Rewrites the snapshot to exactly \p All and truncates the WAL.
  bool compact(const std::vector<DurableCacheRecord> &All);

  std::uint64_t walBytes() const { return Log.bytes(); }
  std::uint64_t snapshotBytes() const { return Snapshot.bytes(); }

private:
  void publishSizes();

  Wal Snapshot; ///< Only ever `rewrite()`n (atomic replace).
  Wal Log;      ///< Append-only between compactions.
};

} // namespace mutk::persist

#endif // MUTK_PERSIST_CACHESTORE_H
