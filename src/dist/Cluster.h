//===- dist/Cluster.h - mutkd cluster node ----------------------*- C++ -*-===//
///
/// \file
/// One `mutkd` peer of a work-stealing cluster. Every node runs the same
/// three roles over the framed wire (`dist/Wire.h`):
///
///  * **Membership** — a pacer thread heartbeats every peer on the
///    static seed list and sweeps the liveness registry; the
///    consistent-hash ring over the alive set is rebuilt on every death
///    or revival.
///  * **Sharded result cache** — the node implements the service's
///    `DistCache` hook: a local miss — whole-matrix or per-block —
///    probes the key's owning peer (single-flighted per key, bounded by
///    a recv timeout, falling back to a local solve on any failure),
///    and exact solutions are forwarded one-way to their owner. Remote
///    entries carry the full canonical identity bytes plus their
///    namespace flag and are collision-checked on both ends.
///  * **Job stealing** — steal threads watch the local service; when
///    the queue is dry and workers idle they ask peers for queued jobs
///    (`StealJob` -> `JobGrant`), solve them through the local service,
///    and post `JobResult` back. The victim keeps the requester's
///    promise and journal entry, so a SIGKILLed thief loses nothing:
///    the death sweep re-enqueues every job lent to it, and a crash of
///    the victim itself re-runs the job from its `JobJournal` on
///    restart.
///
/// Incoming connections self-select their protocol with the first
/// frame: `Hello` opens a peer control session (heartbeats, cache and
/// steal verbs), `MpOpen` parks the connection in a distributed B&B
/// slave session (`dist/DistBnb.h`). Topology, verbs, failure semantics
/// and tuning are documented in docs/distributed.md.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_DIST_CLUSTER_H
#define MUTK_DIST_CLUSTER_H

#include "dist/Peers.h"
#include "dist/Wire.h"
#include "service/Service.h"
#include "support/Mutex.h"
#include "support/SingleFlight.h"

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mutk::obs {
struct DistInstruments;
} // namespace mutk::obs

namespace mutk::dist {

/// Deployment knobs of one cluster node.
struct ClusterOptions {
  /// This node's index in `Peers`.
  int SelfId = 0;
  /// The shared seed list; identical (same order) on every node.
  std::vector<PeerSpec> Peers;
  /// Cluster listen port; 0 uses `Peers[SelfId].Port`. The client
  /// protocol port (`service/Server.h`) is separate.
  int ListenPort = 0;
  /// Address the cluster listener binds.
  std::string ListenHost = "0.0.0.0";

  double HeartbeatSeconds = 0.5;
  /// A peer with no sign of life for this long is declared dead.
  double DeadAfterSeconds = 3.0;
  /// Ring points per peer; more = smoother shard split.
  int VirtualNodes = 64;
  /// Budget for one remote cache/steal RPC; on expiry the link is
  /// closed (a late reply must never be matched to a newer request).
  double RpcTimeoutSeconds = 0.25;
  double ConnectTimeoutSeconds = 0.25;

  /// Enable the job-stealing threads.
  bool StealJobs = true;
  int StealThreads = 1;
  /// Idle-check cadence of each steal thread.
  double StealPollSeconds = 0.05;
};

/// \name Shard-cache entry codec (`CacheHit`/`CacheInsert` bodies).
/// @{
std::vector<std::uint8_t> encodeCacheEntry(std::uint64_t Key,
                                           const CachedSolution &Value);
std::optional<std::pair<std::uint64_t, CachedSolution>>
decodeCacheEntry(const std::vector<std::uint8_t> &Body);
/// @}

/// One peer of the mutkd cluster (see the file comment for the roles).
/// Owns the cluster listener, the peer links and the pacer/steal
/// threads; borrows the service. `start()` attaches the node to the
/// service's dist-cache and stats hooks, `stop()` detaches them.
class ClusterNode : public DistCache {
public:
  ClusterNode(TreeService &Service, const ClusterOptions &Options);
  ~ClusterNode() override;

  ClusterNode(const ClusterNode &) = delete;
  ClusterNode &operator=(const ClusterNode &) = delete;

  /// Binds the cluster port and spawns the acceptor, pacer and steal
  /// threads. \returns false (with \p Error filled) on bind failure.
  bool start(std::string *Error = nullptr);

  /// Detaches from the service, re-enqueues jobs still lent to peers,
  /// closes every connection and joins all threads. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Bound cluster port (-1 before a successful `start`).
  int port() const { return BoundPort; }

  /// DistCache: remote shard probe / forwarded store (service workers).
  /// The tier never changes routing (key spaces are salted apart); the
  /// entry's `Block` flag travels the wire, so a subtree solved on one
  /// peer recovers as a block entry on its owner.
  std::optional<CachedSolution> lookup(std::uint64_t Key,
                                       const std::vector<std::uint8_t> &Bytes,
                                       CacheTier Tier) override;
  void insert(std::uint64_t Key, const CachedSolution &Value,
              CacheTier Tier) override;

  /// The `cluster` section of `StatsJson` (peer states, shard shares,
  /// lent jobs); schema in docs/distributed.md.
  std::string statsJson() const;

  /// Membership view (tests and tools).
  PeerRegistry &registry() { return Registry; }

  /// Current ring owner of \p Key (-1 on an empty ring).
  int ownerOf(std::uint64_t Key) const;

private:
  /// One lazily-connected outgoing link to a peer. A mutex serializes
  /// users, so at most one RPC is outstanding per link and a reply can
  /// only belong to the request that is waiting for it; `Seq` echo is
  /// verified anyway, and any failure closes the fd (reconnect next use).
  struct PeerLink {
    Mutex Mu{"cluster.link"};
    int Fd MUTK_GUARDED_BY(Mu) = -1;
    std::uint64_t NextSeq MUTK_GUARDED_BY(Mu) = 1;
  };

  void acceptLoop();
  void serveConnection(int Fd);
  void controlLoop(int Fd, int Peer);
  void pacerLoop();
  void stealLoop();
  void stealOnce();

  /// Records life from \p Peer, rebuilding the ring on a revival.
  void noteAlive(int Peer);
  void onPeerDead(int Peer);
  void rebuildRing();
  void closeLink(int Peer);

  /// Under `Link.Mu`: connect + `Hello` if needed. False marks failure.
  bool ensureConnected(PeerLink &Link, int Peer) MUTK_REQUIRES(Link.Mu);
  /// One-way frame; retries once through a reconnect.
  bool sendOneWay(int Peer, const DistFrame &Frame);
  /// Request/response with `Seq` correlation and the RPC timeout.
  std::optional<DistFrame> rpc(int Peer, DistFrame Request);

  int nextVictim();

  TreeService &Service;
  ClusterOptions Options;
  obs::DistInstruments &Obs;
  PeerRegistry Registry;

  mutable Mutex RingMu{"cluster.ring"};
  ShardRing Ring MUTK_GUARDED_BY(RingMu);
  std::int64_t AliveGaugeValue MUTK_GUARDED_BY(RingMu) = 0;

  std::vector<std::unique_ptr<PeerLink>> Links;

  std::atomic<int> ListenFd{-1};
  int BoundPort = -1;
  std::thread Acceptor;
  std::vector<std::thread> Sessions MUTK_GUARDED_BY(SessionsMu);
  std::vector<int> SessionFds MUTK_GUARDED_BY(SessionsMu);
  Mutex SessionsMu{"cluster.sessions"};

  std::thread Pacer;
  std::vector<std::thread> Stealers;
  Mutex PacerMu{"cluster.pacer"};
  CondVar PacerCv;
  bool StopFlag MUTK_GUARDED_BY(PacerMu) = false;

  /// Which peer each lent-out job token went to (victim side).
  mutable Mutex LentMu{"cluster.lent"};
  std::unordered_map<std::uint64_t, int> LentToPeer MUTK_GUARDED_BY(LentMu);

  /// Per-key single flight of remote lookups: concurrent misses on one
  /// key make one RPC, the rest re-probe the local cache afterwards.
  KeyedMutex LookupFlights;

  std::atomic<std::uint64_t> VictimCursor{0};
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopped{false};
  /// Serializes whole `stop()` runs; the outermost cluster lock.
  Mutex StopMu{"cluster.stop"};
};

} // namespace mutk::dist

#endif // MUTK_DIST_CLUSTER_H
