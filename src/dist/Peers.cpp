//===- dist/Peers.cpp - Peer registry and consistent-hash ring -------------===//

#include "dist/Peers.h"

#include <algorithm>
#include <cassert>

using namespace mutk;
using namespace mutk::dist;

std::optional<std::vector<PeerSpec>>
mutk::dist::parsePeerList(const std::string &Text) {
  std::vector<PeerSpec> Out;
  std::size_t Start = 0;
  while (Start <= Text.size()) {
    std::size_t Comma = Text.find(',', Start);
    std::string Entry = Text.substr(
        Start, Comma == std::string::npos ? std::string::npos : Comma - Start);
    std::size_t Colon = Entry.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 >= Entry.size())
      return std::nullopt;
    PeerSpec Spec;
    Spec.Id = static_cast<int>(Out.size());
    Spec.Host = Entry.substr(0, Colon);
    std::string PortText = Entry.substr(Colon + 1);
    int Port = 0;
    for (char C : PortText) {
      if (C < '0' || C > '9')
        return std::nullopt;
      Port = Port * 10 + (C - '0');
      if (Port > 65535)
        return std::nullopt;
    }
    if (Port <= 0)
      return std::nullopt;
    Spec.Port = Port;
    Out.push_back(std::move(Spec));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  if (Out.empty())
    return std::nullopt;
  return Out;
}

const char *mutk::dist::peerStateName(PeerState State) {
  switch (State) {
  case PeerState::Unknown:
    return "unknown";
  case PeerState::Alive:
    return "alive";
  case PeerState::Suspect:
    return "suspect";
  case PeerState::Dead:
    return "dead";
  }
  return "?";
}

PeerRegistry::PeerRegistry(std::vector<PeerSpec> Peers, int SelfId,
                           double DeadAfterSeconds)
    : Specs(std::move(Peers)), SelfId(SelfId),
      DeadAfterSeconds(DeadAfterSeconds) {
  assert(SelfId >= 0 && SelfId < static_cast<int>(Specs.size()) &&
         "self id out of range");
  Entries.resize(Specs.size());
  Clock::time_point Now = Clock::now();
  for (Entry &E : Entries)
    E.LastSeen = Now; // startup grace period
  Entries[static_cast<std::size_t>(SelfId)].State = PeerState::Alive;
}

bool PeerRegistry::markAlive(int PeerId) {
  if (PeerId < 0 || PeerId >= static_cast<int>(Specs.size()))
    return false;
  MutexLock Lock(Mu);
  Entry &E = Entries[static_cast<std::size_t>(PeerId)];
  bool Revived = E.State == PeerState::Dead;
  E.State = PeerState::Alive;
  E.LastSeen = Clock::now();
  return Revived;
}

void PeerRegistry::noteFailure(int PeerId) {
  if (PeerId < 0 || PeerId >= static_cast<int>(Specs.size()) ||
      PeerId == SelfId)
    return;
  MutexLock Lock(Mu);
  Entry &E = Entries[static_cast<std::size_t>(PeerId)];
  if (E.State != PeerState::Dead)
    E.State = PeerState::Suspect;
}

std::vector<int> PeerRegistry::sweep() {
  MutexLock Lock(Mu);
  std::vector<int> NewlyDead;
  Clock::time_point Now = Clock::now();
  for (std::size_t I = 0; I < Entries.size(); ++I) {
    if (static_cast<int>(I) == SelfId)
      continue;
    Entry &E = Entries[I];
    if (E.State == PeerState::Dead)
      continue;
    double Since = std::chrono::duration<double>(Now - E.LastSeen).count();
    if (Since > DeadAfterSeconds) {
      E.State = PeerState::Dead;
      NewlyDead.push_back(static_cast<int>(I));
    }
  }
  return NewlyDead;
}

bool PeerRegistry::isAlive(int PeerId) const {
  if (PeerId < 0 || PeerId >= static_cast<int>(Specs.size()))
    return false;
  if (PeerId == SelfId)
    return true;
  MutexLock Lock(Mu);
  return Entries[static_cast<std::size_t>(PeerId)].State != PeerState::Dead;
}

std::vector<int> PeerRegistry::aliveIds() const {
  MutexLock Lock(Mu);
  std::vector<int> Out;
  for (std::size_t I = 0; I < Entries.size(); ++I)
    if (static_cast<int>(I) == SelfId ||
        Entries[I].State != PeerState::Dead)
      Out.push_back(static_cast<int>(I));
  return Out;
}

std::vector<PeerRegistry::PeerInfo> PeerRegistry::snapshot() const {
  MutexLock Lock(Mu);
  std::vector<PeerInfo> Out;
  Out.reserve(Specs.size());
  Clock::time_point Now = Clock::now();
  for (std::size_t I = 0; I < Specs.size(); ++I) {
    PeerInfo Info;
    Info.Spec = Specs[I];
    Info.State = Entries[I].State;
    Info.SinceLastSeenSeconds =
        std::chrono::duration<double>(Now - Entries[I].LastSeen).count();
    Out.push_back(std::move(Info));
  }
  return Out;
}

namespace {

/// SplitMix64: cheap, well-mixed 64-bit hash for ring points and keys.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

ShardRing::ShardRing(const std::vector<int> &PeerIds, int VirtualNodes) {
  VirtualNodes = std::max(1, VirtualNodes);
  Points.reserve(PeerIds.size() * static_cast<std::size_t>(VirtualNodes));
  for (int Peer : PeerIds)
    for (int V = 0; V < VirtualNodes; ++V) {
      std::uint64_t Point =
          mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(Peer))
                 << 20) +
                static_cast<std::uint64_t>(V));
      Points.emplace_back(Point, Peer);
    }
  std::sort(Points.begin(), Points.end());
}

int ShardRing::ownerOf(std::uint64_t Key) const {
  if (Points.empty())
    return -1;
  std::uint64_t H = mix64(Key);
  auto It = std::lower_bound(
      Points.begin(), Points.end(), std::make_pair(H, -1),
      [](const std::pair<std::uint64_t, int> &A,
         const std::pair<std::uint64_t, int> &B) { return A.first < B.first; });
  if (It == Points.end())
    It = Points.begin(); // wrap around
  return It->second;
}

double ShardRing::ownedShare(int PeerId) const {
  if (Points.empty())
    return 0.0;
  // Each point owns the arc that *ends* at it (keys map to the next
  // point at or after their hash).
  long double Owned = 0.0L;
  for (std::size_t I = 0; I < Points.size(); ++I) {
    if (Points[I].second != PeerId)
      continue;
    std::uint64_t End = Points[I].first;
    std::uint64_t Prev = I == 0 ? Points.back().first : Points[I - 1].first;
    std::uint64_t Arc = End - Prev; // u64 wraparound gives the arc length
    if (Points.size() == 1)
      Owned += 1.0L;
    else
      Owned += static_cast<long double>(Arc) / 18446744073709551615.0L;
  }
  return static_cast<double>(Owned);
}

std::vector<int> ShardRing::peers() const {
  std::vector<int> Out;
  for (const auto &[Hash, Peer] : Points)
    Out.push_back(Peer);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}
