//===- dist/Peers.h - Peer registry and consistent-hash ring ----*- C++ -*-===//
///
/// \file
/// Cluster membership for `mutkd` peers: a static seed list (every peer
/// knows the same ordered `host:port` list; a peer's index in it is its
/// id), a liveness registry driven by received heartbeats, and a
/// consistent-hash ring that assigns each result-cache key an owning
/// peer. Virtual nodes smooth the ownership split; when a peer dies its
/// arc — and only its arc — is inherited by the surviving peers, so a
/// membership change invalidates the minimum number of shard
/// assignments (the new owner simply starts cold for those keys).
///
/// Liveness is intentionally eventual: each node judges peers from its
/// own clock and heartbeat stream, so two nodes can briefly disagree on
/// ring ownership. That is safe here — a lookup routed to a non-owner
/// is a cache miss (fall back to local solve), and an insert landing on
/// a non-owner is merely an extra copy, collision-checked like any
/// other entry.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_DIST_PEERS_H
#define MUTK_DIST_PEERS_H

#include "support/Mutex.h"

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mutk::dist {

/// One peer's address; `Id` is its index in the shared seed list.
struct PeerSpec {
  int Id = 0;
  std::string Host;
  int Port = 0;
};

/// Parses a `host:port,host:port,...` seed list (ids = positions).
/// \returns nullopt on malformed input (empty entries, bad ports).
std::optional<std::vector<PeerSpec>> parsePeerList(const std::string &Text);

/// Liveness states of a peer, as judged by the local node.
enum class PeerState : std::uint8_t {
  /// In the seed list but no heartbeat received yet (grace period).
  Unknown = 0,
  Alive = 1,
  /// A link operation failed but the death timeout has not elapsed.
  Suspect = 2,
  Dead = 3,
};

/// Stable lower-case name for a `PeerState`.
const char *peerStateName(PeerState State);

/// Heartbeat-driven liveness registry over the static seed list.
/// Thread-safe. A peer is counted toward the ring until no heartbeat
/// has been seen for `DeadAfterSeconds` (the construction time seeds
/// the clock, so peers get a startup grace period); a heartbeat from a
/// dead peer revives it.
class PeerRegistry {
public:
  using Clock = std::chrono::steady_clock;

  PeerRegistry(std::vector<PeerSpec> Peers, int SelfId,
               double DeadAfterSeconds);

  /// Records a heartbeat (or any sign of life) from \p PeerId.
  /// \returns true when this transitioned the peer back from Dead —
  /// the caller must rebuild the ring.
  bool markAlive(int PeerId);

  /// Records a failed link operation: Alive/Unknown -> Suspect. Death
  /// still waits for the timeout (a busy peer is not a dead peer).
  void noteFailure(int PeerId);

  /// Applies the death timeout. \returns the ids that transitioned to
  /// Dead in this sweep (callers re-enqueue their lent jobs and rebuild
  /// the ring).
  std::vector<int> sweep();

  /// True while the peer counts toward the ring (everything but Dead;
  /// self is always alive).
  bool isAlive(int PeerId) const;

  /// Ids currently counting toward the ring, ascending; includes self.
  std::vector<int> aliveIds() const;

  /// Point-in-time view of one peer for stats.
  struct PeerInfo {
    PeerSpec Spec;
    PeerState State = PeerState::Unknown;
    double SinceLastSeenSeconds = 0.0;
  };
  std::vector<PeerInfo> snapshot() const;

  int selfId() const { return SelfId; }
  std::size_t numPeers() const { return Specs.size(); }
  const PeerSpec &spec(int PeerId) const {
    return Specs[static_cast<std::size_t>(PeerId)];
  }

private:
  struct Entry {
    PeerState State = PeerState::Unknown;
    Clock::time_point LastSeen;
  };

  std::vector<PeerSpec> Specs;
  int SelfId;
  double DeadAfterSeconds;
  mutable Mutex Mu{"peers.registry"};
  std::vector<Entry> Entries MUTK_GUARDED_BY(Mu);
};

/// Consistent-hash ring mapping 64-bit cache keys to peer ids.
/// Immutable once built; the cluster node rebuilds it (cheap, O(peers *
/// vnodes * log)) whenever membership changes.
class ShardRing {
public:
  ShardRing() = default;

  /// Builds the ring over \p PeerIds with \p VirtualNodes points each.
  ShardRing(const std::vector<int> &PeerIds, int VirtualNodes);

  /// Owner of \p Key: the first ring point at or after `hash(Key)`,
  /// wrapping around. \returns -1 on an empty ring.
  int ownerOf(std::uint64_t Key) const;

  bool empty() const { return Points.empty(); }

  /// Fraction of a uniform key space owned by \p PeerId (for stats).
  double ownedShare(int PeerId) const;

  /// Peer ids on the ring, ascending.
  std::vector<int> peers() const;

private:
  /// (point hash, peer id), sorted by hash.
  std::vector<std::pair<std::uint64_t, int>> Points;
};

} // namespace mutk::dist

#endif // MUTK_DIST_PEERS_H
