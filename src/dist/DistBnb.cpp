//===- dist/DistBnb.cpp - Multi-node B&B over socket endpoints -------------===//

#include "dist/DistBnb.h"

#include "dist/MpSocket.h"
#include "dist/Wire.h"
#include "mp/Serialize.h"

#include <unistd.h>

using namespace mutk;
using namespace mutk::dist;

std::vector<std::uint8_t>
mutk::dist::encodeMpSessionSpec(const MpSessionSpec &Spec) {
  ByteWriter Writer;
  Writer.writeI32(Spec.Rank);
  Writer.writeI32(Spec.WorldSize);
  Writer.writeU8(static_cast<std::uint8_t>(Spec.ThreeThree));
  Writer.writeF64(Spec.Epsilon);
  Writer.writeU8(Spec.Proto.WorkStealing ? 1 : 0);
  Writer.writeI32(Spec.Proto.StealDepthBound);
  Writer.writeU8(Spec.Proto.PeerUbBroadcast ? 1 : 0);
  return Writer.take();
}

std::optional<MpSessionSpec>
mutk::dist::decodeMpSessionSpec(const std::vector<std::uint8_t> &Body) {
  ByteReader Reader(Body);
  MpSessionSpec Spec;
  std::uint8_t ThreeThree = 0, Stealing = 0, Broadcast = 0;
  if (!Reader.readI32(Spec.Rank) || !Reader.readI32(Spec.WorldSize) ||
      !Reader.readU8(ThreeThree) || !Reader.readF64(Spec.Epsilon) ||
      !Reader.readU8(Stealing) || !Reader.readI32(Spec.Proto.StealDepthBound) ||
      !Reader.readU8(Broadcast) || !Reader.atEnd())
    return std::nullopt;
  if (ThreeThree > static_cast<std::uint8_t>(ThreeThreeMode::AllInsertions))
    return std::nullopt;
  if (Spec.WorldSize < 2 || Spec.Rank < 1 || Spec.Rank >= Spec.WorldSize)
    return std::nullopt;
  Spec.ThreeThree = static_cast<ThreeThreeMode>(ThreeThree);
  Spec.Proto.WorkStealing = Stealing != 0;
  Spec.Proto.PeerUbBroadcast = Broadcast != 0;
  return Spec;
}

SlaveSessionOutcome mutk::dist::serveMpSlaveSession(int Fd,
                                                    const MpSessionSpec &Spec) {
  SlaveSocketEndpoint Endpoint(Fd, Spec.Rank, Spec.WorldSize);
  BnbOptions Options;
  Options.ThreeThree = Spec.ThreeThree;
  Options.Epsilon = Spec.Epsilon;
  // The hosting peer publishes one dist-level batch itself; per-solve
  // bnb batches from transient slave engines would double-count.
  Options.PublishMetrics = false;
  SlaveSessionOutcome Outcome;
  Outcome.Stats = runMpSlave(Endpoint, Options, Spec.Proto);
  Outcome.Failed = Endpoint.failed();
  Outcome.BytesSent = Endpoint.bytesSent();
  Outcome.BytesReceived = Endpoint.bytesReceived();
  return Outcome;
}

std::optional<MpMutResult> mutk::dist::solveMutOverPeers(
    const DistanceMatrix &M, const std::vector<PeerSpec> &Slaves,
    const BnbOptions &Options, const MpProtocolOptions &Proto,
    double ConnectTimeoutSeconds, std::string *Error,
    std::vector<int> *FailedRanks) {
  auto fail = [&](const std::string &Message) -> std::optional<MpMutResult> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };
  if (Slaves.empty())
    return fail("no slave peers given");

  // Connect and open every session before any work flows: a solve that
  // cannot assemble its full world is refused up front, not degraded.
  std::vector<int> Fds;
  Fds.reserve(Slaves.size());
  auto closeAll = [&Fds] {
    for (int Fd : Fds)
      ::close(Fd);
  };
  const int WorldSize = static_cast<int>(Slaves.size()) + 1;
  for (std::size_t I = 0; I < Slaves.size(); ++I) {
    std::string ConnectError;
    int Fd = connectTcpTimeout(Slaves[I].Host, Slaves[I].Port,
                               ConnectTimeoutSeconds, &ConnectError);
    if (Fd < 0) {
      closeAll();
      return fail("peer " + std::to_string(Slaves[I].Id) + ": " +
                  ConnectError);
    }
    MpSessionSpec Spec;
    Spec.Rank = static_cast<int>(I) + 1;
    Spec.WorldSize = WorldSize;
    Spec.ThreeThree = Options.ThreeThree;
    Spec.Epsilon = Options.Epsilon;
    Spec.Proto = Proto;
    DistFrame Open;
    Open.Verb = DistVerb::MpOpen;
    Open.Body = encodeMpSessionSpec(Spec);
    if (!writeDistFrame(Fd, Open)) {
      ::close(Fd);
      closeAll();
      return fail("peer " + std::to_string(Slaves[I].Id) +
                  ": MpOpen write failed");
    }
    Fds.push_back(Fd);
  }

  MasterSocketEndpoint Endpoint(std::move(Fds)); // owns the fds now
  MpMutResult Result = runMpMaster(Endpoint, M, Options, Proto);
  Result.MessagesSent = Endpoint.messagesSent();
  Result.BytesSent = Endpoint.bytesSent();
  Result.Traffic = Endpoint.trafficByTag();
  if (FailedRanks)
    *FailedRanks = Endpoint.failedRanks();
  return Result;
}
