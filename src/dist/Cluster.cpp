//===- dist/Cluster.cpp - mutkd cluster node -------------------------------===//

#include "dist/Cluster.h"

#include "dist/DistBnb.h"
#include "mp/Serialize.h"
#include "obs/Instruments.h"
#include "obs/Log.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mutk;
using namespace mutk::dist;

std::vector<std::uint8_t>
mutk::dist::encodeCacheEntry(std::uint64_t Key, const CachedSolution &Value) {
  ByteWriter Writer;
  Writer.writeU64(Key);
  Writer.writeF64(Value.Cost);
  Writer.writeU8(Value.Exact ? 1 : 0);
  Writer.writeU8(Value.Block ? 1 : 0);
  Writer.writeBytes(Value.Bytes);
  writePhyloTree(Writer, Value.Tree);
  return Writer.take();
}

std::optional<std::pair<std::uint64_t, CachedSolution>>
mutk::dist::decodeCacheEntry(const std::vector<std::uint8_t> &Body) {
  ByteReader Reader(Body);
  std::uint64_t Key = 0;
  CachedSolution Value;
  std::uint8_t Exact = 0;
  std::uint8_t Block = 0;
  if (!Reader.readU64(Key) || !Reader.readF64(Value.Cost) ||
      !Reader.readU8(Exact) || !Reader.readU8(Block) ||
      !Reader.readBytes(Value.Bytes) || !readPhyloTree(Reader, Value.Tree) ||
      !Reader.atEnd())
    return std::nullopt;
  Value.Exact = Exact != 0;
  Value.Block = Block != 0;
  return std::make_pair(Key, std::move(Value));
}

ClusterNode::ClusterNode(TreeService &Service, const ClusterOptions &Options)
    : Service(Service), Options(Options), Obs(obs::distInstruments()),
      Registry(Options.Peers, Options.SelfId, Options.DeadAfterSeconds) {
  Links.reserve(Options.Peers.size());
  for (std::size_t I = 0; I < Options.Peers.size(); ++I)
    Links.push_back(std::make_unique<PeerLink>());
}

ClusterNode::~ClusterNode() { stop(); }

bool ClusterNode::start(std::string *Error) {
  auto fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  int Port = Options.ListenPort != 0
                 ? Options.ListenPort
                 : Options.Peers[static_cast<std::size_t>(Options.SelfId)].Port;
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return fail("cluster socket: " + std::string(std::strerror(errno)));
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  Addr.sin_addr.s_addr = Options.ListenHost == "0.0.0.0"
                             ? INADDR_ANY
                             : inet_addr(Options.ListenHost.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    std::string Message = std::strerror(errno);
    ::close(Fd);
    return fail("cluster bind :" + std::to_string(Port) + ": " + Message);
  }
  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len);
  BoundPort = ntohs(Bound.sin_port);
  ListenFd.store(Fd, std::memory_order_release);

  Running.store(true, std::memory_order_release);
  rebuildRing();
  Service.setDistCache(this);
  Service.setClusterStats([this] { return statsJson(); });
  Acceptor = std::thread([this] { acceptLoop(); });
  Pacer = std::thread([this] { pacerLoop(); });
  if (Options.StealJobs && Options.Peers.size() > 1)
    for (int I = 0; I < std::max(1, Options.StealThreads); ++I)
      Stealers.emplace_back([this] { stealLoop(); });
  obs::log(obs::LogLevel::Info, "dist", "cluster node started")
      .kv("self", Options.SelfId)
      .kv("peers", Options.Peers.size())
      .kv("port", BoundPort);
  return true;
}

void ClusterNode::stop() {
  MutexLock StopLock(StopMu);
  if (Stopped.exchange(true, std::memory_order_acq_rel))
    return;
  Service.setDistCache(nullptr);
  Service.setClusterStats(nullptr);
  Running.store(false, std::memory_order_release);
  {
    MutexLock Lock(PacerMu);
    StopFlag = true;
  }
  PacerCv.notify_all();
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
  {
    // Sessions own (and close) their fds; a shutdown unblocks their
    // reads so they exit promptly.
    MutexLock Lock(SessionsMu);
    for (int SessionFd : SessionFds)
      ::shutdown(SessionFd, SHUT_RDWR);
  }
  if (Acceptor.joinable())
    Acceptor.join();
  if (Pacer.joinable())
    Pacer.join();
  for (std::thread &T : Stealers)
    if (T.joinable())
      T.join();
  Stealers.clear();
  std::vector<std::thread> ToJoin;
  {
    MutexLock Lock(SessionsMu);
    ToJoin.swap(Sessions);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
  for (std::size_t I = 0; I < Links.size(); ++I)
    closeLink(static_cast<int>(I));
  // Nobody can answer lent jobs anymore: give them back to the local
  // queue so the service (still running) resolves their promises.
  std::unordered_map<std::uint64_t, int> Outstanding;
  {
    MutexLock Lock(LentMu);
    Outstanding.swap(LentToPeer);
  }
  for (const auto &[Token, Peer] : Outstanding) {
    (void)Peer;
    if (Service.reenqueueLentJob(Token))
      Obs.JobsReenqueued.inc();
  }
}

int ClusterNode::ownerOf(std::uint64_t Key) const {
  MutexLock Lock(RingMu);
  return Ring.ownerOf(Key);
}

void ClusterNode::rebuildRing() {
  std::vector<int> Alive = Registry.aliveIds();
  MutexLock Lock(RingMu);
  Ring = ShardRing(Alive, Options.VirtualNodes);
  std::int64_t NewAlive = static_cast<std::int64_t>(Alive.size());
  Obs.PeersAlive.add(NewAlive - AliveGaugeValue);
  AliveGaugeValue = NewAlive;
}

void ClusterNode::noteAlive(int Peer) {
  if (Registry.markAlive(Peer)) {
    Obs.PeerRevivals.inc();
    obs::log(obs::LogLevel::Info, "dist", "peer revived").kv("peer", Peer);
    rebuildRing();
  }
}

void ClusterNode::onPeerDead(int Peer) {
  Obs.PeerDeaths.inc();
  obs::log(obs::LogLevel::Warn, "dist", "peer declared dead")
      .kv("peer", Peer);
  closeLink(Peer);
  // Reclaim every job lent to the dead thief: its requester's promise
  // and journal entry live here, so re-enqueueing locally loses nothing.
  std::vector<std::uint64_t> Tokens;
  {
    MutexLock Lock(LentMu);
    for (auto It = LentToPeer.begin(); It != LentToPeer.end();) {
      if (It->second == Peer) {
        Tokens.push_back(It->first);
        It = LentToPeer.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (std::uint64_t Token : Tokens)
    if (Service.reenqueueLentJob(Token)) {
      Obs.JobsReenqueued.inc();
      obs::log(obs::LogLevel::Info, "dist", "re-enqueued job lent to dead peer")
          .kv("peer", Peer)
          .kv("token", Token);
    }
}

void ClusterNode::closeLink(int Peer) {
  PeerLink &Link = *Links[static_cast<std::size_t>(Peer)];
  MutexLock Lock(Link.Mu);
  if (Link.Fd >= 0) {
    ::close(Link.Fd);
    Link.Fd = -1;
  }
}

//===----------------------------------------------------------------------===//
// Outgoing links
//===----------------------------------------------------------------------===//

bool ClusterNode::ensureConnected(PeerLink &Link, int Peer) {
  if (Link.Fd >= 0)
    return true;
  const PeerSpec &Spec = Registry.spec(Peer);
  int Fd = connectTcpTimeout(Spec.Host, Spec.Port,
                             Options.ConnectTimeoutSeconds);
  if (Fd < 0) {
    Registry.noteFailure(Peer);
    return false;
  }
  setRecvTimeout(Fd, Options.RpcTimeoutSeconds);
  DistFrame Hello;
  Hello.Verb = DistVerb::Hello;
  ByteWriter Writer;
  Writer.writeU32(static_cast<std::uint32_t>(Options.SelfId));
  Hello.Body = Writer.take();
  if (!writeDistFrame(Fd, Hello)) {
    ::close(Fd);
    Registry.noteFailure(Peer);
    return false;
  }
  Link.Fd = Fd;
  return true;
}

bool ClusterNode::sendOneWay(int Peer, const DistFrame &Frame) {
  PeerLink &Link = *Links[static_cast<std::size_t>(Peer)];
  MutexLock Lock(Link.Mu);
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    if (!ensureConnected(Link, Peer))
      return false;
    if (writeDistFrame(Link.Fd, Frame))
      return true;
    ::close(Link.Fd);
    Link.Fd = -1;
  }
  Registry.noteFailure(Peer);
  return false;
}

std::optional<DistFrame> ClusterNode::rpc(int Peer, DistFrame Request) {
  PeerLink &Link = *Links[static_cast<std::size_t>(Peer)];
  MutexLock Lock(Link.Mu);
  if (!ensureConnected(Link, Peer))
    return std::nullopt;
  Request.Seq = Link.NextSeq++;
  auto poison = [&] {
    ::close(Link.Fd);
    Link.Fd = -1;
    Registry.noteFailure(Peer);
    return std::nullopt;
  };
  if (!writeDistFrame(Link.Fd, Request))
    return poison();
  DistFrame Reply;
  if (readDistFrame(Link.Fd, Reply) != FrameError::None)
    return poison(); // timeout, truncation, garbage: never reuse the link
  if (Reply.Seq != Request.Seq)
    return poison(); // a mismatched reply must not answer a newer request
  Obs.Frames.inc();
  return Reply;
}

//===----------------------------------------------------------------------===//
// DistCache: the sharded remote tier
//===----------------------------------------------------------------------===//

std::optional<CachedSolution>
ClusterNode::lookup(std::uint64_t Key, const std::vector<std::uint8_t> &Bytes,
                    CacheTier Tier) {
  if (!Running.load(std::memory_order_acquire))
    return std::nullopt;
  int Owner = ownerOf(Key);
  if (Owner < 0 || Owner == Options.SelfId)
    return std::nullopt;
  // Single flight per key: concurrent misses on one key make one RPC;
  // the waiters re-probe the local cache the winner just populated.
  bool Contended = false;
  KeyedMutex::Guard Guard = LookupFlights.lock(Key, &Contended);
  if (Contended)
    if (std::optional<CachedSolution> Local = Service.cacheLookup(Key, Bytes))
      return Local;
  Obs.RemoteLookups.inc();
  DistFrame Request;
  Request.Verb = DistVerb::CacheLookup;
  ByteWriter Writer;
  Writer.writeU64(Key);
  Writer.writeBytes(Bytes);
  Request.Body = Writer.take();
  std::optional<DistFrame> Reply = rpc(Owner, std::move(Request));
  if (!Reply) {
    Obs.RemoteTimeouts.inc();
    return std::nullopt; // owner slow or gone: fall back to local solve
  }
  if (Reply->Verb == DistVerb::CacheMiss)
    return std::nullopt;
  if (Reply->Verb != DistVerb::CacheHit) {
    Obs.FrameErrors.inc();
    return std::nullopt;
  }
  std::optional<std::pair<std::uint64_t, CachedSolution>> Entry =
      decodeCacheEntry(Reply->Body);
  // The peer's entry is trusted no further than a local one: the key,
  // full canonical identity and namespace must match or it is a miss.
  if (!Entry || Entry->first != Key || Entry->second.Bytes != Bytes ||
      Entry->second.Block != (Tier == CacheTier::Block)) {
    Obs.FrameErrors.inc();
    return std::nullopt;
  }
  Obs.RemoteHits.inc();
  return std::move(Entry->second);
}

void ClusterNode::insert(std::uint64_t Key, const CachedSolution &Value,
                         CacheTier Tier) {
  (void)Tier; // the entry's own Block flag travels the wire
  if (!Running.load(std::memory_order_acquire))
    return;
  int Owner = ownerOf(Key);
  if (Owner < 0 || Owner == Options.SelfId)
    return; // the service already stored it locally
  Obs.InsertsForwarded.inc();
  DistFrame Frame;
  Frame.Verb = DistVerb::CacheInsert;
  Frame.Body = encodeCacheEntry(Key, Value);
  sendOneWay(Owner, Frame);
}

//===----------------------------------------------------------------------===//
// Inbound sessions
//===----------------------------------------------------------------------===//

void ClusterNode::acceptLoop() {
  for (;;) {
    int Listener = ListenFd.load(std::memory_order_acquire);
    if (Listener < 0)
      return;
    int Fd = ::accept4(Listener, nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener closed by stop()
    }
    if (!Running.load(std::memory_order_acquire)) {
      ::close(Fd);
      return;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    MutexLock Lock(SessionsMu);
    SessionFds.push_back(Fd);
    Sessions.emplace_back([this, Fd] { serveConnection(Fd); });
  }
}

void ClusterNode::serveConnection(int Fd) {
  DistFrame First;
  FrameError E = readDistFrame(Fd, First);
  if (E == FrameError::None) {
    Obs.Frames.inc();
    if (First.Verb == DistVerb::MpOpen) {
      std::optional<MpSessionSpec> Spec = decodeMpSessionSpec(First.Body);
      if (Spec) {
        Obs.MpSessions.inc();
        SlaveSessionOutcome Outcome = serveMpSlaveSession(Fd, *Spec);
        Obs.WorkStolen.inc(Outcome.Stats.StolenFromPeers);
        Obs.WorkDonated.inc(Outcome.Stats.DonatedToPeers);
        Obs.IncumbentBroadcasts.inc(Outcome.Stats.PeerUbBroadcasts);
      } else {
        Obs.FrameErrors.inc();
      }
    } else if (First.Verb == DistVerb::Hello) {
      ByteReader Reader(First.Body);
      std::uint32_t Peer = 0;
      if (Reader.readU32(Peer) && Reader.atEnd() &&
          Peer < Registry.numPeers() &&
          static_cast<int>(Peer) != Options.SelfId) {
        controlLoop(Fd, static_cast<int>(Peer));
      } else {
        Obs.FrameErrors.inc();
      }
    } else {
      // Any other opener is a protocol violation; drop the connection.
      Obs.FrameErrors.inc();
    }
  } else if (E != FrameError::Eof) {
    Obs.FrameErrors.inc();
  }
  {
    MutexLock Lock(SessionsMu);
    SessionFds.erase(std::remove(SessionFds.begin(), SessionFds.end(), Fd),
                     SessionFds.end());
  }
  ::close(Fd);
}

void ClusterNode::controlLoop(int Fd, int Peer) {
  noteAlive(Peer);
  for (;;) {
    DistFrame Frame;
    FrameError E = readDistFrame(Fd, Frame);
    if (E == FrameError::Eof)
      return;
    if (E != FrameError::None) {
      if (Running.load(std::memory_order_acquire))
        Obs.FrameErrors.inc();
      return;
    }
    Obs.Frames.inc();
    noteAlive(Peer); // any frame is a sign of life
    switch (Frame.Verb) {
    case DistVerb::Heartbeat:
      Obs.HeartbeatsReceived.inc();
      break;
    case DistVerb::CacheLookup: {
      ByteReader Reader(Frame.Body);
      std::uint64_t Key = 0;
      std::vector<std::uint8_t> Identity;
      if (!Reader.readU64(Key) || !Reader.readBytes(Identity) ||
          !Reader.atEnd()) {
        Obs.FrameErrors.inc();
        return;
      }
      DistFrame Reply;
      Reply.Seq = Frame.Seq;
      if (std::optional<CachedSolution> Hit =
              Service.cacheLookup(Key, Identity)) {
        Reply.Verb = DistVerb::CacheHit;
        Reply.Body = encodeCacheEntry(Key, *Hit);
      } else {
        Reply.Verb = DistVerb::CacheMiss;
        ByteWriter Writer;
        Writer.writeU64(Key);
        Reply.Body = Writer.take();
      }
      if (!writeDistFrame(Fd, Reply))
        return;
      break;
    }
    case DistVerb::CacheInsert: {
      std::optional<std::pair<std::uint64_t, CachedSolution>> Entry =
          decodeCacheEntry(Frame.Body);
      if (!Entry) {
        Obs.FrameErrors.inc();
        return;
      }
      Service.cacheStore(Entry->first, std::move(Entry->second));
      break;
    }
    case DistVerb::StealJob: {
      DistFrame Reply;
      Reply.Seq = Frame.Seq;
      std::optional<TreeService::LentJob> Lent = Service.lendQueuedJob();
      if (Lent) {
        {
          MutexLock Lock(LentMu);
          LentToPeer[Lent->Token] = Peer;
        }
        Obs.JobsLent.inc();
        Reply.Verb = DistVerb::JobGrant;
        ByteWriter Writer;
        Writer.writeU64(Lent->Token);
        Writer.writeBytes(Lent->EncodedRequest);
        Reply.Body = Writer.take();
      } else {
        Reply.Verb = DistVerb::JobNone;
      }
      if (!writeDistFrame(Fd, Reply)) {
        if (Lent) {
          // The grant never reached the thief: take the job back.
          {
            MutexLock Lock(LentMu);
            LentToPeer.erase(Lent->Token);
          }
          if (Service.reenqueueLentJob(Lent->Token))
            Obs.JobsReenqueued.inc();
        }
        return;
      }
      break;
    }
    case DistVerb::JobResult: {
      ByteReader Reader(Frame.Body);
      std::uint64_t Token = 0;
      std::vector<std::uint8_t> Encoded;
      if (!Reader.readU64(Token) || !Reader.readBytes(Encoded) ||
          !Reader.atEnd()) {
        Obs.FrameErrors.inc();
        return;
      }
      {
        MutexLock Lock(LentMu);
        LentToPeer.erase(Token);
      }
      std::optional<Response> Decoded = decodeResponse(Encoded);
      BuildResponse Result;
      if (Decoded && Decoded->V == Verb::Build) {
        Result = std::move(Decoded->Build);
      } else {
        Obs.FrameErrors.inc();
        Result.Error = ServiceError::Internal;
        Result.Message = "malformed result from thief peer";
      }
      Service.completeLentJob(Token, std::move(Result));
      break;
    }
    default:
      Obs.FrameErrors.inc();
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// Pacer and steal threads
//===----------------------------------------------------------------------===//

void ClusterNode::pacerLoop() {
  MutexLock Lock(PacerMu);
  while (!StopFlag) {
    const auto Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(Options.HeartbeatSeconds);
    while (!StopFlag &&
           PacerCv.waitUntil(Lock, Deadline) != std::cv_status::timeout) {
    }
    if (StopFlag)
      return;
    Lock.unlock();
    DistFrame Beat;
    Beat.Verb = DistVerb::Heartbeat;
    ByteWriter Writer;
    Writer.writeU32(static_cast<std::uint32_t>(Options.SelfId));
    Beat.Body = Writer.take();
    for (std::size_t I = 0; I < Options.Peers.size(); ++I) {
      if (static_cast<int>(I) == Options.SelfId)
        continue;
      // Dead peers are beaconed too: a restarted peer learns we are
      // alive from our beat while its own beats revive it here.
      if (sendOneWay(static_cast<int>(I), Beat))
        Obs.HeartbeatsSent.inc();
    }
    std::vector<int> Dead = Registry.sweep();
    for (int Peer : Dead)
      onPeerDead(Peer);
    if (!Dead.empty())
      rebuildRing();
    Lock.lock();
  }
}

int ClusterNode::nextVictim() {
  std::vector<int> Alive = Registry.aliveIds();
  Alive.erase(std::remove(Alive.begin(), Alive.end(), Options.SelfId),
              Alive.end());
  if (Alive.empty())
    return -1;
  return Alive[VictimCursor.fetch_add(1, std::memory_order_relaxed) %
               Alive.size()];
}

void ClusterNode::stealLoop() {
  MutexLock Lock(PacerMu);
  while (!StopFlag) {
    const auto Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(Options.StealPollSeconds);
    while (!StopFlag &&
           PacerCv.waitUntil(Lock, Deadline) != std::cv_status::timeout) {
    }
    if (StopFlag)
      return;
    Lock.unlock();
    stealOnce();
    Lock.lock();
  }
}

void ClusterNode::stealOnce() {
  // Only a genuinely idle node steals: nothing queued and a worker free.
  if (Service.stopping() || Service.stats().QueueDepth > 0 ||
      Service.inFlight() >=
          static_cast<std::uint64_t>(
              std::max(1, Service.options().NumWorkers)))
    return;
  int Victim = nextVictim();
  if (Victim < 0)
    return;
  DistFrame Request;
  Request.Verb = DistVerb::StealJob;
  std::optional<DistFrame> Reply = rpc(Victim, std::move(Request));
  if (!Reply || Reply->Verb == DistVerb::JobNone)
    return;
  if (Reply->Verb != DistVerb::JobGrant) {
    Obs.FrameErrors.inc();
    return;
  }
  ByteReader Reader(Reply->Body);
  std::uint64_t Token = 0;
  std::vector<std::uint8_t> Encoded;
  if (!Reader.readU64(Token) || !Reader.readBytes(Encoded) ||
      !Reader.atEnd()) {
    Obs.FrameErrors.inc();
    return;
  }
  Obs.JobsStolen.inc();
  Response Wire;
  Wire.V = Verb::Build;
  std::optional<mutk::Request> Job = decodeRequest(Encoded);
  if (Job && Job->V == Verb::Build) {
    // Solve through the local service: same cache tiers, same journal,
    // same worker pool as native jobs.
    Wire.Build = Service.submit(std::move(Job->Build));
    Wire.Error = Wire.Build.Error;
    Wire.Message = Wire.Build.Message;
  } else {
    Wire.Error = ServiceError::BadFrame;
    Wire.Message = "stolen job failed to decode";
    Wire.Build.Error = Wire.Error;
    Wire.Build.Message = Wire.Message;
  }
  DistFrame Result;
  Result.Verb = DistVerb::JobResult;
  ByteWriter Writer;
  Writer.writeU64(Token);
  Writer.writeBytes(encodeResponse(Wire));
  Result.Body = Writer.take();
  // Best effort: if the victim is unreachable it will re-enqueue the
  // job when its death sweep fires, and solve it locally.
  sendOneWay(Victim, Result);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

std::string ClusterNode::statsJson() const {
  auto f64 = [](double V) {
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    return std::string(Buf);
  };
  std::vector<PeerRegistry::PeerInfo> Peers = Registry.snapshot();
  ShardRing RingCopy;
  {
    MutexLock Lock(RingMu);
    RingCopy = Ring;
  }
  std::string Out = "{\"self\":" + std::to_string(Options.SelfId);
  Out += ",\"port\":" + std::to_string(BoundPort);
  Out += ",\"peers\":[";
  for (std::size_t I = 0; I < Peers.size(); ++I) {
    const PeerRegistry::PeerInfo &Info = Peers[I];
    if (I)
      Out += ",";
    Out += "{\"id\":" + std::to_string(Info.Spec.Id);
    Out += ",\"host\":\"" + Info.Spec.Host + "\"";
    Out += ",\"port\":" + std::to_string(Info.Spec.Port);
    Out += ",\"state\":\"" + std::string(peerStateName(Info.State)) + "\"";
    Out += ",\"last_seen_s\":" + f64(Info.SinceLastSeenSeconds);
    Out += ",\"shard_share\":" + f64(RingCopy.ownedShare(Info.Spec.Id));
    Out += "}";
  }
  Out += "]";
  Out += ",\"jobs_lent\":" + std::to_string(Service.lentJobCount());
  Out += "}";
  return Out;
}
