//===- dist/MpSocket.h - MpEndpoint over framed TCP sockets -----*- C++ -*-===//
///
/// \file
/// The socket communicator: `MpEndpoint` implementations that carry the
/// `mp/MpBnb.h` master/slave protocol across machines in `MpMsg` frames
/// (`dist/Wire.h`), so the B&B loops run unchanged on a cluster.
///
/// Topology is a star rooted at the master: the master holds one
/// connection per slave; slaves hold exactly one connection. Frames
/// carry explicit (src, dest) ranks, and the master's reader threads
/// *relay* worker-to-worker frames (steal requests, peer incumbent
/// broadcasts) between connections in arrival order — which preserves
/// the per-(source, destination) FIFO the protocol's termination proof
/// needs, because each relayed channel flows through exactly one
/// ordered TCP stream on each hop.
///
/// Failure semantics are deliberately simple at this layer: a broken
/// connection surfaces as a synthetic `Terminate` at a slave and as a
/// recorded failed rank at the master. Fault *recovery* lives a level
/// up, in the cluster's job stealing + journal re-enqueue
/// (`dist/Cluster.h`), not inside one B&B session.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_DIST_MPSOCKET_H
#define MUTK_DIST_MPSOCKET_H

#include "dist/Wire.h"
#include "mp/Communicator.h"
#include "mp/Endpoint.h"
#include "support/Mutex.h"

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

namespace mutk::dist {

/// Slave-side endpoint over one connected socket to the master. All
/// traffic — including worker-to-worker steal frames — flows through
/// that socket; the master relays by rank.
class SlaveSocketEndpoint : public MpEndpoint {
public:
  /// Borrows \p Fd (the caller owns and closes it) as rank \p Rank of a
  /// world of \p WorldSize ranks.
  SlaveSocketEndpoint(int Fd, int Rank, int WorldSize);

  int rank() const override { return Rank; }
  int size() const override { return WorldSize; }

  void send(int Dest, int Tag, std::vector<std::uint8_t> Payload) override;
  std::optional<Message> tryRecv() override;
  Message recv() override;

  /// True once the connection failed; `recv` has returned (or will
  /// return) a synthetic `Terminate` and `send` drops silently.
  bool failed() const { return Broken.load(std::memory_order_acquire); }

  std::uint64_t bytesSent() const { return BytesOut.load(); }
  std::uint64_t bytesReceived() const { return BytesIn.load(); }

private:
  Message syntheticTerminate();

  int Fd;
  int Rank;
  int WorldSize;
  /// Serializes frame writes; guards no fields (the fd is immutable).
  Mutex WriteMu{"mpsock.write"};
  std::atomic<bool> Broken{false};
  std::atomic<std::uint64_t> BytesOut{0};
  std::atomic<std::uint64_t> BytesIn{0};
};

/// Master-side endpoint over one connection per slave. Owns the fds and
/// a reader thread per connection; worker-to-worker frames are relayed,
/// master-addressed frames land in a shared inbox.
class MasterSocketEndpoint : public MpEndpoint {
public:
  /// Takes ownership of \p SlaveFds (closed on destruction); fd `i`
  /// talks to rank `i + 1`.
  explicit MasterSocketEndpoint(std::vector<int> SlaveFds);
  ~MasterSocketEndpoint() override;

  MasterSocketEndpoint(const MasterSocketEndpoint &) = delete;
  MasterSocketEndpoint &operator=(const MasterSocketEndpoint &) = delete;

  int rank() const override { return 0; }
  int size() const override { return static_cast<int>(Links.size()) + 1; }

  void send(int Dest, int Tag, std::vector<std::uint8_t> Payload) override;
  std::optional<Message> tryRecv() override;
  Message recv() override;

  /// Ranks whose connection failed mid-session (empty on a clean run).
  std::vector<int> failedRanks() const;

  /// Transport totals across every connection, relays included.
  std::uint64_t messagesSent() const { return Messages.load(); }
  std::uint64_t bytesSent() const { return Bytes.load(); }

  /// Per-tag totals of every frame this master wrote or received.
  std::vector<TagTraffic> trafficByTag() const;

private:
  struct Link {
    int Fd = -1;
    /// Serializes frame writes on this link; guards no fields.
    Mutex WriteMu{"mpsock.write"};
    std::thread Reader;
    std::atomic<bool> Failed{false};
    // Set once the slave's final Stats message landed in the inbox; an
    // EOF after that point is the slave closing a finished session, not
    // a mid-search failure.
    std::atomic<bool> SessionDone{false};
  };

  void readerLoop(int LinkIndex);
  void writeTo(int Dest, const DistFrame &Frame);
  void noteTraffic(int Tag, std::uint64_t WireBytes);

  std::vector<std::unique_ptr<Link>> Links;
  Mutex InboxMu{"mpsock.inbox"};
  CondVar InboxReady;
  std::deque<Message> Inbox MUTK_GUARDED_BY(InboxMu);
  std::atomic<bool> Stopping{false};
  std::atomic<std::uint64_t> Messages{0};
  std::atomic<std::uint64_t> Bytes{0};
  mutable Mutex TrafficMu{"mpsock.traffic"};
  std::map<int, TagTraffic> Traffic MUTK_GUARDED_BY(TrafficMu);
};

/// \name MpMsg body codec shared by both endpoints.
/// @{
std::vector<std::uint8_t> encodeMpMsgBody(int Src, int Dest, int Tag,
                                          const std::vector<std::uint8_t> &Payload);
bool decodeMpMsgBody(const std::vector<std::uint8_t> &Body, int &Src,
                     int &Dest, int &Tag, std::vector<std::uint8_t> &Payload);
/// @}

} // namespace mutk::dist

#endif // MUTK_DIST_MPSOCKET_H
