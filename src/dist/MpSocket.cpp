//===- dist/MpSocket.cpp - MpEndpoint over framed TCP sockets --------------===//

#include "dist/MpSocket.h"

#include "mp/MpBnb.h"
#include "mp/Serialize.h"

#include <cassert>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mutk;
using namespace mutk::dist;

std::vector<std::uint8_t>
mutk::dist::encodeMpMsgBody(int Src, int Dest, int Tag,
                            const std::vector<std::uint8_t> &Payload) {
  ByteWriter Writer;
  Writer.writeU32(static_cast<std::uint32_t>(Src));
  Writer.writeU32(static_cast<std::uint32_t>(Dest));
  Writer.writeI32(Tag);
  std::vector<std::uint8_t> Out = Writer.take();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

bool mutk::dist::decodeMpMsgBody(const std::vector<std::uint8_t> &Body,
                                 int &Src, int &Dest, int &Tag,
                                 std::vector<std::uint8_t> &Payload) {
  if (Body.size() < 12)
    return false;
  ByteReader Reader(Body);
  std::uint32_t S = 0, D = 0;
  std::int32_t T = 0;
  if (!Reader.readU32(S) || !Reader.readU32(D) || !Reader.readI32(T))
    return false;
  Src = static_cast<int>(S);
  Dest = static_cast<int>(D);
  Tag = T;
  Payload.assign(Body.begin() + 12, Body.end());
  return true;
}

//===----------------------------------------------------------------------===//
// SlaveSocketEndpoint
//===----------------------------------------------------------------------===//

SlaveSocketEndpoint::SlaveSocketEndpoint(int Fd, int Rank, int WorldSize)
    : Fd(Fd), Rank(Rank), WorldSize(WorldSize) {
  assert(Rank >= 1 && Rank < WorldSize && "slave rank out of range");
}

void SlaveSocketEndpoint::send(int Dest, int Tag,
                               std::vector<std::uint8_t> Payload) {
  if (failed())
    return; // session is over; the final Stats write has nowhere to go
  DistFrame Frame;
  Frame.Verb = DistVerb::MpMsg;
  Frame.Body = encodeMpMsgBody(Rank, Dest, Tag, Payload);
  MutexLock Lock(WriteMu);
  if (!writeDistFrame(Fd, Frame)) {
    Broken.store(true, std::memory_order_release);
    return;
  }
  BytesOut.fetch_add(Payload.size(), std::memory_order_relaxed);
}

Message SlaveSocketEndpoint::syntheticTerminate() {
  Broken.store(true, std::memory_order_release);
  Message Msg;
  Msg.Source = 0;
  Msg.Tag = MpTagTerminate;
  return Msg;
}

std::optional<Message> SlaveSocketEndpoint::tryRecv() {
  if (failed())
    return std::nullopt;
  pollfd P{Fd, POLLIN, 0};
  int Ready = ::poll(&P, 1, 0);
  if (Ready == 0)
    return std::nullopt;
  // Readable (or errored): pull one whole frame. The sender writes
  // frames back to back, so the remainder arrives promptly.
  return recv();
}

Message SlaveSocketEndpoint::recv() {
  if (failed())
    return syntheticTerminate();
  DistFrame Frame;
  FrameError E = readDistFrame(Fd, Frame);
  if (E != FrameError::None || Frame.Verb != DistVerb::MpMsg)
    return syntheticTerminate();
  int Src = -1, Dest = -1, Tag = 0;
  Message Msg;
  if (!decodeMpMsgBody(Frame.Body, Src, Dest, Tag, Msg.Payload) ||
      Dest != Rank)
    return syntheticTerminate();
  Msg.Source = Src;
  Msg.Tag = Tag;
  BytesIn.fetch_add(Msg.Payload.size(), std::memory_order_relaxed);
  return Msg;
}

//===----------------------------------------------------------------------===//
// MasterSocketEndpoint
//===----------------------------------------------------------------------===//

MasterSocketEndpoint::MasterSocketEndpoint(std::vector<int> SlaveFds) {
  assert(!SlaveFds.empty() && "need at least one slave connection");
  Links.reserve(SlaveFds.size());
  for (int Fd : SlaveFds) {
    auto L = std::make_unique<Link>();
    L->Fd = Fd;
    Links.push_back(std::move(L));
  }
  for (std::size_t I = 0; I < Links.size(); ++I)
    Links[I]->Reader = std::thread([this, I] { readerLoop(static_cast<int>(I)); });
}

MasterSocketEndpoint::~MasterSocketEndpoint() {
  Stopping.store(true, std::memory_order_release);
  for (auto &L : Links)
    ::shutdown(L->Fd, SHUT_RDWR);
  for (auto &L : Links)
    if (L->Reader.joinable())
      L->Reader.join();
  for (auto &L : Links)
    ::close(L->Fd);
}

void MasterSocketEndpoint::noteTraffic(int Tag, std::uint64_t PayloadBytes) {
  Messages.fetch_add(1, std::memory_order_relaxed);
  Bytes.fetch_add(PayloadBytes, std::memory_order_relaxed);
  MutexLock Lock(TrafficMu);
  TagTraffic &T = Traffic[Tag];
  T.Tag = Tag;
  ++T.Messages;
  T.Bytes += PayloadBytes;
}

void MasterSocketEndpoint::writeTo(int Dest, const DistFrame &Frame) {
  assert(Dest >= 1 && Dest <= static_cast<int>(Links.size()) &&
         "relay destination out of range");
  Link &L = *Links[static_cast<std::size_t>(Dest - 1)];
  MutexLock Lock(L.WriteMu);
  if (!writeDistFrame(L.Fd, Frame))
    L.Failed.store(true, std::memory_order_release);
}

void MasterSocketEndpoint::send(int Dest, int Tag,
                                std::vector<std::uint8_t> Payload) {
  DistFrame Frame;
  Frame.Verb = DistVerb::MpMsg;
  std::uint64_t PayloadBytes = Payload.size();
  Frame.Body = encodeMpMsgBody(0, Dest, Tag, Payload);
  writeTo(Dest, Frame);
  noteTraffic(Tag, PayloadBytes);
}

void MasterSocketEndpoint::readerLoop(int LinkIndex) {
  Link &L = *Links[static_cast<std::size_t>(LinkIndex)];
  for (;;) {
    DistFrame Frame;
    FrameError E = readDistFrame(L.Fd, Frame);
    if (E != FrameError::None) {
      // A slave that completed its session (final Stats delivered) may
      // close before the master tears the endpoint down; that EOF is a
      // clean end, not a failed rank.
      if (!Stopping.load(std::memory_order_acquire) &&
          !L.SessionDone.load(std::memory_order_acquire))
        L.Failed.store(true, std::memory_order_release);
      return;
    }
    int Src = -1, Dest = -1, Tag = 0;
    std::vector<std::uint8_t> Payload;
    if (Frame.Verb != DistVerb::MpMsg ||
        !decodeMpMsgBody(Frame.Body, Src, Dest, Tag, Payload) ||
        Src != LinkIndex + 1 || Dest < 0 ||
        Dest > static_cast<int>(Links.size())) {
      L.Failed.store(true, std::memory_order_release);
      return;
    }
    noteTraffic(Tag, Payload.size());
    if (Dest == 0 && Tag == MpTagStats)
      L.SessionDone.store(true, std::memory_order_release);
    if (Dest == 0) {
      Message Msg;
      Msg.Source = Src;
      Msg.Tag = Tag;
      Msg.Payload = std::move(Payload);
      {
        MutexLock Lock(InboxMu);
        Inbox.push_back(std::move(Msg));
      }
      InboxReady.notify_one();
      continue;
    }
    // Worker-to-worker frame: relay in arrival order, which preserves
    // the per-(src, dest) FIFO across the two TCP hops.
    writeTo(Dest, Frame);
  }
}

std::optional<Message> MasterSocketEndpoint::tryRecv() {
  MutexLock Lock(InboxMu);
  if (Inbox.empty())
    return std::nullopt;
  Message Msg = std::move(Inbox.front());
  Inbox.pop_front();
  return Msg;
}

Message MasterSocketEndpoint::recv() {
  MutexLock Lock(InboxMu);
  while (Inbox.empty())
    InboxReady.wait(Lock);
  Message Msg = std::move(Inbox.front());
  Inbox.pop_front();
  return Msg;
}

std::vector<int> MasterSocketEndpoint::failedRanks() const {
  std::vector<int> Out;
  for (std::size_t I = 0; I < Links.size(); ++I)
    if (Links[I]->Failed.load(std::memory_order_acquire))
      Out.push_back(static_cast<int>(I) + 1);
  return Out;
}

std::vector<TagTraffic> MasterSocketEndpoint::trafficByTag() const {
  MutexLock Lock(TrafficMu);
  std::vector<TagTraffic> Out;
  Out.reserve(Traffic.size());
  for (const auto &[Tag, T] : Traffic)
    Out.push_back(T);
  return Out;
}
