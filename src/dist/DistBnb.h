//===- dist/DistBnb.h - Multi-node B&B over socket endpoints ----*- C++ -*-===//
///
/// \file
/// Runs the `mp/MpBnb.h` master/slave search across `mutkd` peers. The
/// initiating node connects to each participating peer's cluster port,
/// opens a B&B session with an `MpOpen` frame carrying an
/// `MpSessionSpec` (the slave's rank, the world size, and the solver /
/// protocol knobs both sides must agree on), and then runs the
/// unmodified `runMpMaster` loop over a `MasterSocketEndpoint`. Each
/// peer answers the `MpOpen` by parking the accepted connection in
/// `serveMpSlaveSession`, which is just `runMpSlave` over a
/// `SlaveSocketEndpoint`.
///
/// The matrix itself is NOT in the spec — it travels in the protocol's
/// own `Init` message, exactly as in-process. Only configuration that
/// the protocol does not carry (3-3 mode, epsilon, steal/broadcast
/// options) rides in the spec, so a master and its slaves provably
/// branch and prune identically.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_DIST_DISTBNB_H
#define MUTK_DIST_DISTBNB_H

#include "dist/Peers.h"
#include "mp/MpBnb.h"

#include <optional>
#include <string>
#include <vector>

namespace mutk::dist {

/// Configuration of one remote B&B slave session, shipped in the
/// `MpOpen` body. Every field the slave's engine needs beyond what the
/// `Init` message already carries.
struct MpSessionSpec {
  /// This slave's rank (1..WorldSize-1).
  int Rank = 1;
  /// Total ranks including the master.
  int WorldSize = 2;
  ThreeThreeMode ThreeThree = ThreeThreeMode::None;
  double Epsilon = 1e-9;
  MpProtocolOptions Proto;
};

/// Encodes a session spec into an `MpOpen` body.
std::vector<std::uint8_t> encodeMpSessionSpec(const MpSessionSpec &Spec);

/// Decodes an `MpOpen` body; nullopt on malformed input.
std::optional<MpSessionSpec>
decodeMpSessionSpec(const std::vector<std::uint8_t> &Body);

/// Outcome of one slave session, for the hosting peer's metrics.
struct SlaveSessionOutcome {
  WorkerStats Stats;
  /// True when the link to the master broke before a clean Terminate.
  bool Failed = false;
  std::uint64_t BytesSent = 0;
  std::uint64_t BytesReceived = 0;
};

/// Serves one B&B slave session over the accepted connection \p Fd
/// (positioned just after its `MpOpen` frame). Blocks until the master
/// terminates the search or the link dies. Does not close \p Fd.
SlaveSessionOutcome serveMpSlaveSession(int Fd, const MpSessionSpec &Spec);

/// Solves the MUT problem for \p M using \p Slaves as remote computing
/// nodes: connects to each peer's cluster port, opens sessions, runs the
/// master loop locally. Cost-equal to `solveMutSequential`.
///
/// \param FailedRanks when non-null, receives the ranks whose connection
/// died mid-solve (the search still completes from the remaining
/// frontier only if the dead slave held no work — callers that need
/// stronger guarantees re-run; the cluster job layer does).
/// \returns nullopt (with \p Error filled) when any slave connection
/// cannot be established — the solve is all-or-nothing at start.
std::optional<MpMutResult>
solveMutOverPeers(const DistanceMatrix &M, const std::vector<PeerSpec> &Slaves,
                  const BnbOptions &Options = {},
                  const MpProtocolOptions &Proto = {},
                  double ConnectTimeoutSeconds = 5.0,
                  std::string *Error = nullptr,
                  std::vector<int> *FailedRanks = nullptr);

} // namespace mutk::dist

#endif // MUTK_DIST_DISTBNB_H
