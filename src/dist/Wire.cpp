//===- dist/Wire.cpp - Cluster wire framing with typed errors --------------===//

#include "dist/Wire.h"

#include "mp/Serialize.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mutk;
using namespace mutk::dist;

const char *mutk::dist::frameErrorName(FrameError Error) {
  switch (Error) {
  case FrameError::None:
    return "none";
  case FrameError::Eof:
    return "eof";
  case FrameError::Truncated:
    return "truncated";
  case FrameError::Oversized:
    return "oversized";
  case FrameError::BadVerb:
    return "bad_verb";
  case FrameError::BadPayload:
    return "bad_payload";
  }
  return "?";
}

std::vector<std::uint8_t> mutk::dist::encodeDistFrame(const DistFrame &Frame) {
  ByteWriter Writer;
  Writer.writeU8(static_cast<std::uint8_t>(Frame.Verb));
  Writer.writeU64(Frame.Seq);
  std::vector<std::uint8_t> Out = Writer.take();
  Out.insert(Out.end(), Frame.Body.begin(), Frame.Body.end());
  return Out;
}

FrameError mutk::dist::decodeDistFrame(const std::vector<std::uint8_t> &Payload,
                                       DistFrame &Out) {
  if (Payload.size() < 9)
    return FrameError::Truncated;
  std::uint8_t Verb = Payload[0];
  if (Verb < 1 || Verb > MaxDistVerb)
    return FrameError::BadVerb;
  Out.Verb = static_cast<DistVerb>(Verb);
  std::uint64_t Seq = 0;
  for (int I = 0; I < 8; ++I)
    Seq |= static_cast<std::uint64_t>(Payload[1 + static_cast<std::size_t>(I)])
           << (8 * I);
  Out.Seq = Seq;
  Out.Body.assign(Payload.begin() + 9, Payload.end());
  return FrameError::None;
}

namespace {

/// Full-buffer read. \returns 1 on success, 0 on clean EOF before the
/// first byte, -1 on mid-buffer EOF/error (including a recv timeout).
int readAllBytes(int Fd, std::uint8_t *Data, std::size_t Size) {
  std::size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::recv(Fd, Data + Done, Size - Done, 0);
    if (N == 0)
      return Done == 0 ? 0 : -1;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Done == 0 ? -1 : -1;
    }
    Done += static_cast<std::size_t>(N);
  }
  return 1;
}

} // namespace

FrameError mutk::dist::readDistFrame(int Fd, DistFrame &Out) {
  std::uint8_t Header[4];
  int R = readAllBytes(Fd, Header, sizeof(Header));
  if (R == 0)
    return FrameError::Eof;
  if (R < 0)
    return FrameError::Truncated;
  std::uint32_t Size = static_cast<std::uint32_t>(Header[0]) |
                       (static_cast<std::uint32_t>(Header[1]) << 8) |
                       (static_cast<std::uint32_t>(Header[2]) << 16) |
                       (static_cast<std::uint32_t>(Header[3]) << 24);
  // Never trust the peer's length: validate before allocating.
  if (Size > MaxFrameBytes)
    return FrameError::Oversized;
  if (Size < 9)
    return FrameError::Truncated;
  std::vector<std::uint8_t> Payload(Size);
  if (readAllBytes(Fd, Payload.data(), Payload.size()) != 1)
    return FrameError::Truncated;
  return decodeDistFrame(Payload, Out);
}

bool mutk::dist::writeAllBytes(int Fd, const std::uint8_t *Data,
                               std::size_t Size) {
  std::size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::send(Fd, Data + Done, Size - Done, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<std::size_t>(N);
  }
  return true;
}

bool mutk::dist::writeDistFrame(int Fd, const DistFrame &Frame) {
  std::vector<std::uint8_t> Payload = encodeDistFrame(Frame);
  if (Payload.size() > MaxFrameBytes)
    return false;
  std::uint32_t Size = static_cast<std::uint32_t>(Payload.size());
  std::uint8_t Header[4] = {
      static_cast<std::uint8_t>(Size & 0xFF),
      static_cast<std::uint8_t>((Size >> 8) & 0xFF),
      static_cast<std::uint8_t>((Size >> 16) & 0xFF),
      static_cast<std::uint8_t>((Size >> 24) & 0xFF)};
  return writeAllBytes(Fd, Header, sizeof(Header)) &&
         writeAllBytes(Fd, Payload.data(), Payload.size());
}

std::uint64_t mutk::dist::distFrameWireBytes(const DistFrame &Frame) {
  return 4 + 9 + static_cast<std::uint64_t>(Frame.Body.size());
}

int mutk::dist::connectTcpTimeout(const std::string &Host, int Port,
                                  double TimeoutSeconds, std::string *Error) {
  auto fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return -1;
  };

  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Results = nullptr;
  std::string PortText = std::to_string(Port);
  int Rc = ::getaddrinfo(Host.c_str(), PortText.c_str(), &Hints, &Results);
  if (Rc != 0)
    return fail("resolve " + Host + ": " + ::gai_strerror(Rc));

  int Fd = -1;
  std::string LastError = "no addresses";
  for (addrinfo *A = Results; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype | SOCK_CLOEXEC, A->ai_protocol);
    if (Fd < 0) {
      LastError = std::strerror(errno);
      continue;
    }
    int Flags = ::fcntl(Fd, F_GETFL, 0);
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
    int C = ::connect(Fd, A->ai_addr, A->ai_addrlen);
    if (C != 0 && errno == EINPROGRESS) {
      pollfd P{Fd, POLLOUT, 0};
      int Timeout = TimeoutSeconds <= 0
                        ? -1
                        : static_cast<int>(TimeoutSeconds * 1000.0);
      int Ready = ::poll(&P, 1, Timeout);
      if (Ready == 1) {
        int SoError = 0;
        socklen_t Len = sizeof(SoError);
        ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoError, &Len);
        C = SoError == 0 ? 0 : -1;
        if (SoError != 0)
          errno = SoError;
      } else {
        C = -1;
        errno = Ready == 0 ? ETIMEDOUT : errno;
      }
    }
    if (C == 0) {
      ::fcntl(Fd, F_SETFL, Flags);
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      break;
    }
    LastError = std::strerror(errno);
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Results);
  if (Fd < 0)
    return fail("connect " + Host + ":" + PortText + ": " + LastError);
  return Fd;
}

bool mutk::dist::setRecvTimeout(int Fd, double TimeoutSeconds) {
  timeval Tv{};
  if (TimeoutSeconds > 0) {
    Tv.tv_sec = static_cast<time_t>(TimeoutSeconds);
    Tv.tv_usec = static_cast<suseconds_t>(
        (TimeoutSeconds - static_cast<double>(Tv.tv_sec)) * 1e6);
  }
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) == 0;
}
