//===- dist/Wire.h - Cluster wire framing with typed errors -----*- C++ -*-===//
///
/// \file
/// The framed transport of the `mutkd` cluster: every peer-to-peer
/// message is one frame — a little-endian `u32` payload length followed
/// by `[u8 verb][u64 seq][body...]`. The length is validated against
/// `MaxFrameBytes` *before* any allocation (a hostile peer must not be
/// able to OOM a node with a length prefix), and every failure mode is
/// a distinct `FrameError` so callers and tests can tell a clean EOF
/// from truncation, an oversized prefix, or a garbage verb.
///
/// `Seq` is an RPC correlation id: request/response verbs echo it, and
/// a link whose response carries the wrong `Seq` is poisoned (closed)
/// rather than trusted. One-way verbs (heartbeats, inserts) carry 0.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_DIST_WIRE_H
#define MUTK_DIST_WIRE_H

#include "service/Protocol.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mutk::dist {

/// Frame kinds of the cluster protocol (first body byte).
enum class DistVerb : std::uint8_t {
  /// Peer control-channel opener; body = `[u32 peerId]`.
  Hello = 1,
  /// One-way liveness beacon; body = `[u32 peerId]`.
  Heartbeat = 2,
  /// Remote cache probe; body = `[u64 key][bytes identity]`.
  CacheLookup = 3,
  /// Lookup answer; body = `[u64 key][f64 cost][u8 exact]
  /// [bytes identity][tree]`.
  CacheHit = 4,
  /// Lookup answer; body = `[u64 key]`.
  CacheMiss = 5,
  /// One-way forwarded store; body as `CacheHit`.
  CacheInsert = 6,
  /// Idle peer asks for a queued job; empty body.
  StealJob = 7,
  /// Job handed to the thief; body = `[u64 token][bytes request]`.
  JobGrant = 8,
  /// Nothing to steal; empty body.
  JobNone = 9,
  /// One-way result of a stolen job; body = `[u64 token][bytes response]`.
  JobResult = 10,
  /// Opens a B&B slave session on this connection; body =
  /// `MpSessionSpec` (`dist/DistBnb.h`). Everything after is `MpMsg`.
  MpOpen = 11,
  /// One `mp` protocol message; body = `[u32 src][u32 dest][i32 tag]
  /// [payload...]`.
  MpMsg = 12,
};

/// Largest valid `DistVerb` value; anything above is a garbage tag.
inline constexpr std::uint8_t MaxDistVerb =
    static_cast<std::uint8_t>(DistVerb::MpMsg);

/// Typed failure modes of the wire path.
enum class FrameError : std::uint8_t {
  None = 0,
  /// Clean connection end on a frame boundary (0 bytes of a header).
  Eof = 1,
  /// Connection died mid-frame, or a body shorter than its fixed prelude.
  Truncated = 2,
  /// Length prefix exceeds `MaxFrameBytes`; nothing was allocated.
  Oversized = 3,
  /// Unknown verb byte.
  BadVerb = 4,
  /// Verb-specific body failed to decode.
  BadPayload = 5,
};

/// Stable lower-case name for a `FrameError` (logs, tests).
const char *frameErrorName(FrameError Error);

/// One decoded cluster frame.
struct DistFrame {
  DistVerb Verb = DistVerb::Hello;
  /// RPC correlation id; 0 for one-way frames.
  std::uint64_t Seq = 0;
  std::vector<std::uint8_t> Body;
};

/// Encodes \p Frame into one frame payload (without the `u32` length).
std::vector<std::uint8_t> encodeDistFrame(const DistFrame &Frame);

/// Decodes a frame payload. \returns `None` on success, `Truncated` on a
/// payload shorter than the verb+seq prelude, `BadVerb` on an unknown
/// verb byte.
FrameError decodeDistFrame(const std::vector<std::uint8_t> &Payload,
                           DistFrame &Out);

/// Blocking read of one frame from a connected socket. Never allocates
/// before the length prefix passed the `MaxFrameBytes` check.
FrameError readDistFrame(int Fd, DistFrame &Out);

/// Blocking write of one frame. \returns false on any socket error.
bool writeDistFrame(int Fd, const DistFrame &Frame);

/// Bytes \p Frame occupies on the wire (length prefix included).
std::uint64_t distFrameWireBytes(const DistFrame &Frame);

/// \name Low-level socket helpers shared by the cluster layer.
/// @{

/// Connects to `Host:Port` with a bounded connect timeout. \returns the
/// connected fd or -1 (optionally filling \p Error).
int connectTcpTimeout(const std::string &Host, int Port,
                      double TimeoutSeconds, std::string *Error = nullptr);

/// Sets `SO_RCVTIMEO` so blocking reads fail with a timeout instead of
/// hanging on a silent peer. \p TimeoutSeconds <= 0 clears the timeout.
bool setRecvTimeout(int Fd, double TimeoutSeconds);

/// Full-buffer write (EINTR-safe, `MSG_NOSIGNAL`).
bool writeAllBytes(int Fd, const std::uint8_t *Data, std::size_t Size);

/// @}

} // namespace mutk::dist

#endif // MUTK_DIST_WIRE_H
