//===- heur/NeighborJoining.h - Saitou-Nei neighbor joining -----*- C++ -*-===//
///
/// \file
/// The Neighbor-Joining method (Saitou & Nei 1987), the other heuristic
/// the paper's introduction names as "popularly used by biologists". NJ
/// builds an *additive* (unrooted, arbitrary branch lengths) tree, not an
/// ultrametric one, so it gets its own small tree type here. It serves as
/// a topology baseline: on additive inputs NJ recovers the true tree
/// exactly, which the test suite exploits.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_HEUR_NEIGHBORJOINING_H
#define MUTK_HEUR_NEIGHBORJOINING_H

#include "matrix/DistanceMatrix.h"

#include <string>
#include <vector>

namespace mutk {

/// An unrooted tree with explicit nonnegative branch lengths.
///
/// Leaves are labeled with species indices; internal nodes have degree 3
/// (or degree 2 at the artificial root for tiny inputs).
class AdditiveTree {
public:
  struct Edge {
    int To = -1;
    double Length = 0.0;
  };

  /// Adds a node; \p Species is -1 for internal nodes.
  int addNode(int Species);

  /// Connects \p A and \p B with a branch of \p Length (clamped to >= 0).
  void addEdge(int A, int B, double Length);

  int numNodes() const { return static_cast<int>(Adjacency.size()); }
  int speciesOf(int Node) const { return Species[static_cast<std::size_t>(Node)]; }
  const std::vector<Edge> &neighbors(int Node) const {
    return Adjacency[static_cast<std::size_t>(Node)];
  }

  /// Path length between the leaves carrying the two species.
  double leafDistance(int SpeciesA, int SpeciesB) const;

  /// Tree metric over species `0..n-1` (all of which must be present).
  DistanceMatrix inducedMatrix() const;

  void setNames(std::vector<std::string> Names) {
    SpeciesNames = std::move(Names);
  }

  /// Newick rendering rooted at the highest-index internal node.
  std::string toNewick() const;

private:
  std::vector<std::vector<Edge>> Adjacency;
  std::vector<int> Species;
  std::vector<std::string> SpeciesNames;

  int leafNodeOf(int WantedSpecies) const;
};

/// Runs neighbor joining on \p M (requires `n >= 2`).
AdditiveTree neighborJoining(const DistanceMatrix &M);

} // namespace mutk

#endif // MUTK_HEUR_NEIGHBORJOINING_H
