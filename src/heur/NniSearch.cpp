//===- heur/NniSearch.cpp - Nearest-neighbor-interchange polish ------------===//

#include "heur/NniSearch.h"

#include "tree/UltrametricFit.h"

#include <cassert>
#include <limits>
#include <utility>
#include <vector>

using namespace mutk;

namespace {

/// A throwaway mutable mirror of a PhyloTree used to apply prune/regraft
/// surgery without PhyloTree's construction invariants.
struct ScratchTree {
  std::vector<int> Parent, Left, Right, Leaf;
  int Root = -1;

  explicit ScratchTree(const PhyloTree &T)
      : Parent(static_cast<std::size_t>(T.numNodes())),
        Left(Parent.size()), Right(Parent.size()), Leaf(Parent.size()),
        Root(T.root()) {
    for (int I = 0; I < T.numNodes(); ++I) {
      const PhyloNode &N = T.node(I);
      Parent[static_cast<std::size_t>(I)] = N.Parent;
      Left[static_cast<std::size_t>(I)] = N.Left;
      Right[static_cast<std::size_t>(I)] = N.Right;
      Leaf[static_cast<std::size_t>(I)] = N.Leaf;
    }
  }

  bool isLeaf(int N) const { return Leaf[static_cast<std::size_t>(N)] >= 0; }

  bool isAncestor(int A, int N) const {
    for (int Cur = N; Cur >= 0; Cur = Parent[static_cast<std::size_t>(Cur)])
      if (Cur == A)
        return true;
    return false;
  }

  int sibling(int N) const {
    int P = Parent[static_cast<std::size_t>(N)];
    assert(P >= 0 && "root has no sibling");
    return Left[static_cast<std::size_t>(P)] == N
               ? Right[static_cast<std::size_t>(P)]
               : Left[static_cast<std::size_t>(P)];
  }

  void relink(int P, int OldChild, int NewChild) {
    if (Left[static_cast<std::size_t>(P)] == OldChild)
      Left[static_cast<std::size_t>(P)] = NewChild;
    else {
      assert(Right[static_cast<std::size_t>(P)] == OldChild &&
             "child link broken");
      Right[static_cast<std::size_t>(P)] = NewChild;
    }
    Parent[static_cast<std::size_t>(NewChild)] = P;
  }

  /// Detaches the subtree at \p A, collapsing its parent node P onto A's
  /// sibling. \returns P (now floating, reused by attach).
  int detach(int A) {
    int P = Parent[static_cast<std::size_t>(A)];
    assert(P >= 0 && "cannot detach the root");
    int S = sibling(A);
    int G = Parent[static_cast<std::size_t>(P)];
    if (G < 0) {
      Root = S;
      Parent[static_cast<std::size_t>(S)] = -1;
    } else {
      relink(G, P, S);
    }
    Parent[static_cast<std::size_t>(A)] = -1;
    Parent[static_cast<std::size_t>(P)] = -1;
    return P;
  }

  /// Reattaches the floating subtree \p A, reusing the floating internal
  /// node \p P as the junction on the edge above \p B (or above the root
  /// when \p B is the current root).
  void attach(int A, int P, int B) {
    int G = Parent[static_cast<std::size_t>(B)];
    Left[static_cast<std::size_t>(P)] = B;
    Right[static_cast<std::size_t>(P)] = A;
    Parent[static_cast<std::size_t>(A)] = P;
    if (G < 0) {
      Parent[static_cast<std::size_t>(B)] = P;
      Parent[static_cast<std::size_t>(P)] = -1;
      Root = P;
    } else {
      relink(G, B, P);
      Parent[static_cast<std::size_t>(B)] = P;
    }
  }

  /// Materializes as a PhyloTree (postorder rebuild, heights zeroed;
  /// callers refit).
  PhyloTree toPhyloTree(const std::vector<std::string> &Names) const {
    PhyloTree T;
    std::vector<int> Map(Parent.size(), -1);
    struct Frame {
      int Node;
      bool Expanded;
    };
    std::vector<Frame> Stack = {{Root, false}};
    while (!Stack.empty()) {
      Frame F = Stack.back();
      Stack.pop_back();
      if (isLeaf(F.Node)) {
        Map[static_cast<std::size_t>(F.Node)] =
            T.addLeaf(Leaf[static_cast<std::size_t>(F.Node)]);
        continue;
      }
      if (!F.Expanded) {
        Stack.push_back({F.Node, true});
        Stack.push_back({Left[static_cast<std::size_t>(F.Node)], false});
        Stack.push_back({Right[static_cast<std::size_t>(F.Node)], false});
        continue;
      }
      Map[static_cast<std::size_t>(F.Node)] = T.addInternal(
          Map[static_cast<std::size_t>(Left[static_cast<std::size_t>(F.Node)])],
          Map[static_cast<std::size_t>(Right[static_cast<std::size_t>(F.Node)])],
          0.0);
    }
    T.setNames(Names);
    return T;
  }
};

/// Collects the NNI move candidates of \p T: for every internal non-root
/// node V with sibling S, the pairs (S, V.Left) and (S, V.Right).
std::vector<std::pair<int, int>> nniMoves(const PhyloTree &T) {
  std::vector<std::pair<int, int>> Moves;
  for (int Node = 0; Node < T.numNodes(); ++Node) {
    const PhyloNode &N = T.node(Node);
    if (N.isLeaf() || N.Parent < 0)
      continue;
    const PhyloNode &P = T.node(N.Parent);
    int Sibling = (P.Left == Node) ? P.Right : P.Left;
    // Skip nodes orphaned by earlier splices: only reachable nodes have
    // a consistent parent chain up to the root.
    if (!T.isAncestorOf(T.root(), Node))
      continue;
    Moves.push_back({Sibling, N.Left});
    Moves.push_back({Sibling, N.Right});
  }
  return Moves;
}

} // namespace

NniReport mutk::nniImprove(PhyloTree &T, const DistanceMatrix &M,
                           int MaxRounds) {
  assert(MaxRounds >= 0 && "negative round budget");
  NniReport Report;
  if (T.root() < 0)
    return Report;

  Report.InitialCost = fitMinimalHeights(T, M);
  double Current = Report.InitialCost;

  for (int Round = 0; Round < MaxRounds; ++Round) {
    ++Report.Rounds;
    // Steepest descent: evaluate every move, apply the best improvement.
    double BestCost = Current;
    std::pair<int, int> BestMove{-1, -1};
    for (auto [A, B] : nniMoves(T)) {
      PhyloTree Candidate = T;
      Candidate.swapSubtrees(A, B);
      double Cost = minimalWeightFor(Candidate, M);
      if (Cost < BestCost - 1e-12) {
        BestCost = Cost;
        BestMove = {A, B};
      }
    }
    if (BestMove.first < 0)
      break;
    T.swapSubtrees(BestMove.first, BestMove.second);
    Current = fitMinimalHeights(T, M);
    ++Report.MovesApplied;
  }

  Report.FinalCost = Current;
  return Report;
}

NniReport mutk::sprImprove(PhyloTree &T, const DistanceMatrix &M,
                           int MaxRounds) {
  assert(MaxRounds >= 0 && "negative round budget");
  NniReport Report;
  if (T.root() < 0 || T.numLeaves() < 3) {
    if (T.root() >= 0) {
      Report.InitialCost = fitMinimalHeights(T, M);
      Report.FinalCost = Report.InitialCost;
    }
    return Report;
  }

  Report.InitialCost = fitMinimalHeights(T, M);
  double Current = Report.InitialCost;

  for (int Round = 0; Round < MaxRounds; ++Round) {
    ++Report.Rounds;
    ScratchTree Base(T);
    double BestCost = Current;
    PhyloTree BestTree;
    bool Found = false;

    for (int A = 0; A < T.numNodes(); ++A) {
      if (Base.Parent[static_cast<std::size_t>(A)] < 0)
        continue; // the root cannot be pruned
      for (int B = 0; B < T.numNodes(); ++B) {
        if (B == A || Base.isAncestor(A, B))
          continue;
        // Regrafting onto the current parent or sibling is a no-op.
        if (B == Base.Parent[static_cast<std::size_t>(A)] ||
            B == Base.sibling(A))
          continue;
        ScratchTree Scratch = Base;
        int Junction = Scratch.detach(A);
        // Detaching may have collapsed B's parent; B is still a valid
        // node unless it *was* the junction, which the guard above
        // excluded via Parent check... the junction node itself is
        // floating now, so skip it as a target.
        if (B == Junction)
          continue;
        Scratch.attach(A, Junction, B);
        PhyloTree Candidate = Scratch.toPhyloTree(T.names());
        double Cost = minimalWeightFor(Candidate, M);
        if (Cost < BestCost - 1e-12) {
          BestCost = Cost;
          BestTree = std::move(Candidate);
          Found = true;
        }
      }
    }

    if (!Found)
      break;
    T = std::move(BestTree);
    Current = fitMinimalHeights(T, M);
    ++Report.MovesApplied;
  }

  Report.FinalCost = Current;
  return Report;
}
