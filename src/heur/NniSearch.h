//===- heur/NniSearch.h - Nearest-neighbor-interchange polish ---*- C++ -*-===//
///
/// \file
/// Hill-climbing over ultrametric-tree topologies with NNI moves: for
/// every internal node, try exchanging its sibling subtree with each of
/// its child subtrees, refit minimal heights, and keep strict
/// improvements. This implements the papers' named future work
/// ("we can extend this feature and speed up the process of constructing
/// evolutionary trees"): a cheap polish that closes most of the gap the
/// compact-set pipeline leaves on hard instances, while never making a
/// tree worse.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_HEUR_NNISEARCH_H
#define MUTK_HEUR_NNISEARCH_H

#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

namespace mutk {

/// Outcome of an NNI polish.
struct NniReport {
  /// Tree weight before / after.
  double InitialCost = 0.0;
  double FinalCost = 0.0;
  /// Improving moves applied.
  int MovesApplied = 0;
  /// Full sweeps over the tree (including the final no-improvement one).
  int Rounds = 0;
};

/// Improves \p T in place by steepest-descent NNI until a sweep finds no
/// improving move or \p MaxRounds sweeps have run. Heights are refit to
/// the minimal feasible values for \p M, so the result is always a
/// feasible ultrametric tree of cost `<=` the (refit) input.
NniReport nniImprove(PhyloTree &T, const DistanceMatrix &M,
                     int MaxRounds = 50);

/// Improves \p T in place by steepest-descent *subtree prune and
/// regraft*: every subtree is tried at every regraft edge (including
/// above the root). SPR strictly contains the NNI neighborhood, so it
/// escapes the local optima that complete-linkage trees typically are
/// under NNI. O(n^2) candidate moves per sweep, each refit in O(n^2).
NniReport sprImprove(PhyloTree &T, const DistanceMatrix &M,
                     int MaxRounds = 50);

} // namespace mutk

#endif // MUTK_HEUR_NNISEARCH_H
