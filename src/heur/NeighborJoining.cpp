//===- heur/NeighborJoining.cpp - Saitou-Nei neighbor joining -------------===//

#include "heur/NeighborJoining.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>

using namespace mutk;

int AdditiveTree::addNode(int WhichSpecies) {
  Adjacency.emplace_back();
  Species.push_back(WhichSpecies);
  return numNodes() - 1;
}

void AdditiveTree::addEdge(int A, int B, double Length) {
  assert(A >= 0 && A < numNodes() && B >= 0 && B < numNodes() &&
         "node out of range");
  Length = std::max(0.0, Length);
  Adjacency[static_cast<std::size_t>(A)].push_back(Edge{B, Length});
  Adjacency[static_cast<std::size_t>(B)].push_back(Edge{A, Length});
}

int AdditiveTree::leafNodeOf(int WantedSpecies) const {
  for (int I = 0; I < numNodes(); ++I)
    if (Species[static_cast<std::size_t>(I)] == WantedSpecies)
      return I;
  return -1;
}

double AdditiveTree::leafDistance(int SpeciesA, int SpeciesB) const {
  if (SpeciesA == SpeciesB)
    return 0.0;
  int Start = leafNodeOf(SpeciesA);
  int Goal = leafNodeOf(SpeciesB);
  assert(Start >= 0 && Goal >= 0 && "both species must be present");

  // DFS; trees have a unique path.
  std::vector<double> Distance(static_cast<std::size_t>(numNodes()), -1.0);
  std::vector<int> Stack = {Start};
  Distance[static_cast<std::size_t>(Start)] = 0.0;
  while (!Stack.empty()) {
    int Node = Stack.back();
    Stack.pop_back();
    if (Node == Goal)
      return Distance[static_cast<std::size_t>(Node)];
    for (const Edge &E : Adjacency[static_cast<std::size_t>(Node)]) {
      if (Distance[static_cast<std::size_t>(E.To)] >= 0.0)
        continue;
      Distance[static_cast<std::size_t>(E.To)] =
          Distance[static_cast<std::size_t>(Node)] + E.Length;
      Stack.push_back(E.To);
    }
  }
  assert(false && "species unreachable; tree is disconnected");
  return -1.0;
}

DistanceMatrix AdditiveTree::inducedMatrix() const {
  int MaxSpecies = -1;
  for (int S : Species)
    MaxSpecies = std::max(MaxSpecies, S);
  const int N = MaxSpecies + 1;
  DistanceMatrix M(N);
  for (int I = 0; I < N; ++I)
    if (static_cast<std::size_t>(I) < SpeciesNames.size() &&
        !SpeciesNames[static_cast<std::size_t>(I)].empty())
      M.setName(I, SpeciesNames[static_cast<std::size_t>(I)]);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      M.set(I, J, leafDistance(I, J));
  return M;
}

std::string AdditiveTree::toNewick() const {
  // Root at the last node (NJ creates internal nodes last).
  int Root = numNodes() - 1;
  assert(Root >= 0 && "empty tree");

  std::ostringstream OS;
  // Iterative rendering would obscure the structure; recursion depth is
  // bounded by the tree diameter, fine for the species counts in play.
  auto render = [&](auto &&Self, int Node, int From) -> void {
    std::vector<const Edge *> Out;
    for (const Edge &E : Adjacency[static_cast<std::size_t>(Node)])
      if (E.To != From)
        Out.push_back(&E);
    if (Out.empty()) {
      int S = Species[static_cast<std::size_t>(Node)];
      if (S >= 0 && static_cast<std::size_t>(S) < SpeciesNames.size() &&
          !SpeciesNames[static_cast<std::size_t>(S)].empty())
        OS << SpeciesNames[static_cast<std::size_t>(S)];
      else
        OS << 's' << S;
      return;
    }
    OS << '(';
    for (std::size_t I = 0; I < Out.size(); ++I) {
      if (I > 0)
        OS << ',';
      Self(Self, Out[I]->To, Node);
      OS << ':' << Out[I]->Length;
    }
    OS << ')';
  };
  render(render, Root, -1);
  OS << ';';
  return OS.str();
}

AdditiveTree mutk::neighborJoining(const DistanceMatrix &M) {
  const int N = M.size();
  assert(N >= 2 && "neighbor joining needs at least two species");

  AdditiveTree Tree;
  Tree.setNames(M.names());

  // Active cluster slots; Node maps a slot to its tree node.
  std::vector<int> Node(static_cast<std::size_t>(N));
  std::vector<bool> Active(static_cast<std::size_t>(N), true);
  std::vector<std::vector<double>> D(
      static_cast<std::size_t>(N),
      std::vector<double>(static_cast<std::size_t>(N), 0.0));
  for (int I = 0; I < N; ++I) {
    Node[static_cast<std::size_t>(I)] = Tree.addNode(I);
    for (int J = 0; J < N; ++J)
      D[static_cast<std::size_t>(I)][static_cast<std::size_t>(J)] = M.at(I, J);
  }

  int Remaining = N;
  while (Remaining > 2) {
    // Row sums over active slots.
    std::vector<double> RowSum(static_cast<std::size_t>(N), 0.0);
    for (int I = 0; I < N; ++I) {
      if (!Active[static_cast<std::size_t>(I)])
        continue;
      for (int J = 0; J < N; ++J)
        if (Active[static_cast<std::size_t>(J)])
          RowSum[static_cast<std::size_t>(I)] +=
              D[static_cast<std::size_t>(I)][static_cast<std::size_t>(J)];
    }

    // Minimize the Q-criterion.
    int BestA = -1, BestB = -1;
    double BestQ = std::numeric_limits<double>::infinity();
    for (int A = 0; A < N; ++A) {
      if (!Active[static_cast<std::size_t>(A)])
        continue;
      for (int B = A + 1; B < N; ++B) {
        if (!Active[static_cast<std::size_t>(B)])
          continue;
        double Q = (Remaining - 2) *
                       D[static_cast<std::size_t>(A)][static_cast<std::size_t>(B)] -
                   RowSum[static_cast<std::size_t>(A)] -
                   RowSum[static_cast<std::size_t>(B)];
        if (Q < BestQ) {
          BestQ = Q;
          BestA = A;
          BestB = B;
        }
      }
    }
    assert(BestA >= 0 && "no active pair found");

    double DAB = D[static_cast<std::size_t>(BestA)][static_cast<std::size_t>(BestB)];
    double LenA = 0.5 * DAB +
                  (RowSum[static_cast<std::size_t>(BestA)] -
                   RowSum[static_cast<std::size_t>(BestB)]) /
                      (2.0 * (Remaining - 2));
    double LenB = DAB - LenA;
    int Joined = Tree.addNode(-1);
    Tree.addEdge(Node[static_cast<std::size_t>(BestA)], Joined, LenA);
    Tree.addEdge(Node[static_cast<std::size_t>(BestB)], Joined, LenB);

    // Fold B into A's slot; A now denotes the joined cluster.
    for (int C = 0; C < N; ++C) {
      if (!Active[static_cast<std::size_t>(C)] || C == BestA || C == BestB)
        continue;
      double Updated =
          0.5 *
          (D[static_cast<std::size_t>(BestA)][static_cast<std::size_t>(C)] +
           D[static_cast<std::size_t>(BestB)][static_cast<std::size_t>(C)] -
           DAB);
      D[static_cast<std::size_t>(BestA)][static_cast<std::size_t>(C)] = Updated;
      D[static_cast<std::size_t>(C)][static_cast<std::size_t>(BestA)] = Updated;
    }
    Node[static_cast<std::size_t>(BestA)] = Joined;
    Active[static_cast<std::size_t>(BestB)] = false;
    --Remaining;
  }

  // Join the last two clusters with a single branch.
  int LastA = -1, LastB = -1;
  for (int I = 0; I < N; ++I) {
    if (!Active[static_cast<std::size_t>(I)])
      continue;
    if (LastA < 0)
      LastA = I;
    else
      LastB = I;
  }
  assert(LastA >= 0 && LastB >= 0 && "expected exactly two clusters");
  Tree.addEdge(Node[static_cast<std::size_t>(LastA)],
               Node[static_cast<std::size_t>(LastB)],
               D[static_cast<std::size_t>(LastA)][static_cast<std::size_t>(LastB)]);
  return Tree;
}
