//===- heur/Upgma.h - Agglomerative linkage tree builders -------*- C++ -*-===//
///
/// \file
/// The UPGMA family of heuristic ultrametric-tree builders. The paper's
/// B&B seeds its upper bound with **UPGMM** ("Unweighted Pair Group Method
/// with Maximum", Algorithm BBU Step 3): agglomerative clustering under
/// *complete* linkage, merging at half the cluster distance. Complete
/// linkage guarantees the resulting tree is a *feasible* ultrametric tree
/// for the input (`d_T(i,j) >= M[i,j]` for every pair), so its weight is a
/// valid upper bound on the MUT weight.
///
/// Classic UPGMA (average linkage) and single linkage are provided as
/// baselines; their trees are generally *not* feasible for `M`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_HEUR_UPGMA_H
#define MUTK_HEUR_UPGMA_H

#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

namespace mutk {

/// How the distance between merged clusters is updated.
enum class Linkage {
  Average, ///< UPGMA: size-weighted mean of the cluster distances.
  Maximum, ///< UPGMM: maximum (complete linkage) — feasible trees.
  Minimum, ///< Single linkage.
};

/// Builds an agglomerative tree over \p M under \p Mode.
///
/// Clusters merge at height `D/2` (clamped so heights never decrease,
/// which only matters for exotic inputs — the three standard linkages are
/// monotone). Leaf `i` of the result is species `i`; the matrix's names
/// become the tree's name table. Requires at least one species.
PhyloTree buildLinkageTree(const DistanceMatrix &M, Linkage Mode);

/// Classic UPGMA (average linkage).
PhyloTree upgma(const DistanceMatrix &M);

/// UPGMM (complete linkage) — the B&B's initial feasible solution.
PhyloTree upgmm(const DistanceMatrix &M);

/// Weight of the UPGMM tree; the initial upper bound of Algorithm BBU.
double upgmmUpperBound(const DistanceMatrix &M);

} // namespace mutk

#endif // MUTK_HEUR_UPGMA_H
