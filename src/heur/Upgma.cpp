//===- heur/Upgma.cpp - Agglomerative linkage tree builders ---------------===//

#include "heur/Upgma.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

using namespace mutk;

PhyloTree mutk::buildLinkageTree(const DistanceMatrix &M, Linkage Mode) {
  const int N = M.size();
  assert(N >= 1 && "need at least one species");

  PhyloTree Tree;
  Tree.setNames(M.names());

  // Active clusters: tree node, size, height; Dist holds the current
  // cluster-to-cluster distances (indexed by cluster slot, -1 = retired).
  struct Cluster {
    int Node = -1;
    int Size = 0;
    double Height = 0.0;
    bool Active = false;
  };
  std::vector<Cluster> Clusters(static_cast<std::size_t>(N));
  std::vector<std::vector<double>> Dist(
      static_cast<std::size_t>(N),
      std::vector<double>(static_cast<std::size_t>(N), 0.0));

  for (int I = 0; I < N; ++I) {
    Clusters[static_cast<std::size_t>(I)] = {Tree.addLeaf(I), 1, 0.0, true};
    for (int J = 0; J < N; ++J)
      Dist[static_cast<std::size_t>(I)][static_cast<std::size_t>(J)] =
          M.at(I, J);
  }

  for (int Merges = 0; Merges < N - 1; ++Merges) {
    // Pick the closest active pair (smallest slots on ties, so the result
    // is deterministic).
    int BestA = -1, BestB = -1;
    double BestD = std::numeric_limits<double>::infinity();
    for (int A = 0; A < N; ++A) {
      if (!Clusters[static_cast<std::size_t>(A)].Active)
        continue;
      for (int B = A + 1; B < N; ++B) {
        if (!Clusters[static_cast<std::size_t>(B)].Active)
          continue;
        double D = Dist[static_cast<std::size_t>(A)][static_cast<std::size_t>(B)];
        if (D < BestD) {
          BestD = D;
          BestA = A;
          BestB = B;
        }
      }
    }
    assert(BestA >= 0 && BestB >= 0 && "no active pair left");

    Cluster &CA = Clusters[static_cast<std::size_t>(BestA)];
    Cluster &CB = Clusters[static_cast<std::size_t>(BestB)];
    double Height = std::max({BestD / 2.0, CA.Height, CB.Height});
    int Node = Tree.addInternal(CA.Node, CB.Node, Height);

    // Fold cluster B into slot A.
    for (int C = 0; C < N; ++C) {
      if (!Clusters[static_cast<std::size_t>(C)].Active || C == BestA ||
          C == BestB)
        continue;
      double DA = Dist[static_cast<std::size_t>(BestA)][static_cast<std::size_t>(C)];
      double DB = Dist[static_cast<std::size_t>(BestB)][static_cast<std::size_t>(C)];
      double Updated = 0.0;
      switch (Mode) {
      case Linkage::Average:
        Updated = (CA.Size * DA + CB.Size * DB) /
                  static_cast<double>(CA.Size + CB.Size);
        break;
      case Linkage::Maximum:
        Updated = std::max(DA, DB);
        break;
      case Linkage::Minimum:
        Updated = std::min(DA, DB);
        break;
      }
      Dist[static_cast<std::size_t>(BestA)][static_cast<std::size_t>(C)] =
          Updated;
      Dist[static_cast<std::size_t>(C)][static_cast<std::size_t>(BestA)] =
          Updated;
    }
    CA.Node = Node;
    CA.Size += CB.Size;
    CA.Height = Height;
    CB.Active = false;
  }
  return Tree;
}

PhyloTree mutk::upgma(const DistanceMatrix &M) {
  return buildLinkageTree(M, Linkage::Average);
}

PhyloTree mutk::upgmm(const DistanceMatrix &M) {
  return buildLinkageTree(M, Linkage::Maximum);
}

double mutk::upgmmUpperBound(const DistanceMatrix &M) {
  return upgmm(M).weight();
}
