//===- analysis/DotExport.cpp - Graphviz rendering -------------------------------===//

#include "analysis/DotExport.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace mutk;

namespace {

/// DOT string literal with quotes escaped.
std::string quoted(const std::string &Text) {
  std::string Out = "\"";
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  Out.push_back('"');
  return Out;
}

} // namespace

void mutk::writeTreeDot(std::ostream &OS, const PhyloTree &T,
                        const std::string &GraphName) {
  OS << "digraph " << quoted(GraphName) << " {\n"
     << "  rankdir=TB;\n"
     << "  node [fontname=\"Helvetica\"];\n";
  if (T.root() < 0) {
    OS << "}\n";
    return;
  }
  std::vector<int> Stack = {T.root()};
  while (!Stack.empty()) {
    int Node = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = T.node(Node);
    if (N.isLeaf()) {
      OS << "  n" << Node << " [shape=box, label="
         << quoted(T.speciesName(N.Leaf)) << "];\n";
    } else {
      std::ostringstream Height;
      Height << "h=" << N.Height;
      OS << "  n" << Node << " [shape=point, xlabel="
         << quoted(Height.str()) << "];\n";
      for (int Child : {N.Left, N.Right}) {
        std::ostringstream Length;
        Length << T.edgeWeightAbove(Child);
        OS << "  n" << Node << " -> n" << Child
           << " [label=" << quoted(Length.str()) << "];\n";
        Stack.push_back(Child);
      }
    }
  }
  OS << "}\n";
}

std::string mutk::toTreeDot(const PhyloTree &T, const std::string &GraphName) {
  std::ostringstream OS;
  writeTreeDot(OS, T, GraphName);
  return OS.str();
}

void mutk::writeMstDot(std::ostream &OS, const DistanceMatrix &M,
                       const std::vector<WeightedEdge> &MstEdges,
                       const std::vector<CompactSet> &Sets,
                       const std::string &GraphName) {
  OS << "graph " << quoted(GraphName) << " {\n"
     << "  layout=neato;\n  node [fontname=\"Helvetica\", shape=circle];\n";

  // Maximal compact sets become Graphviz clusters; pick the sets not
  // strictly contained in another.
  std::vector<const CompactSet *> Maximal;
  for (const CompactSet &Candidate : Sets) {
    bool Contained = false;
    for (const CompactSet &Other : Sets) {
      if (&Other == &Candidate || Other.size() <= Candidate.size())
        continue;
      Contained |= std::includes(Other.Members.begin(), Other.Members.end(),
                                 Candidate.Members.begin(),
                                 Candidate.Members.end());
      if (Contained)
        break;
    }
    if (!Contained)
      Maximal.push_back(&Candidate);
  }

  std::vector<bool> Clustered(static_cast<std::size_t>(M.size()), false);
  int ClusterId = 0;
  for (const CompactSet *Set : Maximal) {
    OS << "  subgraph cluster_" << ClusterId++ << " {\n"
       << "    style=dashed;\n    label=\"compact set\";\n";
    for (int Species : Set->Members) {
      OS << "    v" << Species << " [label=" << quoted(M.name(Species))
         << "];\n";
      Clustered[static_cast<std::size_t>(Species)] = true;
    }
    OS << "  }\n";
  }
  for (int Species = 0; Species < M.size(); ++Species)
    if (!Clustered[static_cast<std::size_t>(Species)])
      OS << "  v" << Species << " [label=" << quoted(M.name(Species))
         << "];\n";

  for (const WeightedEdge &E : MstEdges) {
    std::ostringstream Weight;
    Weight << E.Weight;
    OS << "  v" << E.U << " -- v" << E.V << " [label="
       << quoted(Weight.str()) << "];\n";
  }
  OS << "}\n";
}

std::string mutk::toMstDot(const DistanceMatrix &M,
                           const std::vector<WeightedEdge> &MstEdges,
                           const std::vector<CompactSet> &Sets,
                           const std::string &GraphName) {
  std::ostringstream OS;
  writeMstDot(OS, M, MstEdges, Sets, GraphName);
  return OS.str();
}
