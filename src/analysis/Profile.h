//===- analysis/Profile.h - Dataset and tree diagnostics --------*- C++ -*-===//
///
/// \file
/// Diagnostics that explain *why* an instance is easy or hard for the
/// solvers — the quantities EXPERIMENTS.md reasons with:
///
///  * ultrametricity defect: how far the matrix is from satisfying the
///    three-point condition (0 = exact ultrametric = trivial for B&B);
///  * triple decisiveness: the fraction of species triples with a strict
///    closest pair (what the 3-3 relationship can act on);
///  * compact coverage: how much of the matrix the compact-set
///    decomposition can break off.
///
/// Plus a tree-shape report (depth, balance, height profile) for
/// comparing constructions.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_ANALYSIS_PROFILE_H
#define MUTK_ANALYSIS_PROFILE_H

#include "graph/CompactSets.h"
#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

#include <iosfwd>

namespace mutk {

/// Summary statistics of a distance matrix.
struct MatrixProfile {
  int NumSpecies = 0;
  double MinDistance = 0.0;
  double MaxDistance = 0.0;
  double MeanDistance = 0.0;
  /// Largest relative three-point violation:
  /// `max over triples of (M[i,j] - max(M[i,k], M[j,k])) / M[i,j]`,
  /// clamped at 0. Zero iff the matrix is an ultrametric.
  double UltrametricityDefect = 0.0;
  /// Fraction of triples with a strictly closest pair.
  double TripleDecisiveness = 0.0;
  /// Number of proper nontrivial compact sets.
  int NumCompactSets = 0;
  /// Fraction of species belonging to at least one such compact set.
  double CompactCoverage = 0.0;
  /// Size of the largest condensed matrix the pipeline will solve
  /// (max partition width of the compact hierarchy).
  int LargestBlock = 0;
};

/// Computes the full profile of \p M (O(n^3) triples).
MatrixProfile profileMatrix(const DistanceMatrix &M);

/// Renders the profile as a small human-readable block.
void printProfile(std::ostream &OS, const MatrixProfile &Profile);

/// Summary statistics of a tree's shape.
struct TreeProfile {
  int NumLeaves = 0;
  int MaxDepth = 0;
  double RootHeight = 0.0;
  double Weight = 0.0;
  /// Colless-style imbalance: sum over internal nodes of
  /// `|leaves(left) - leaves(right)|`, normalized by the maximum
  /// `(n-1)(n-2)/2`; 0 = perfectly balanced, 1 = caterpillar.
  double Imbalance = 0.0;
};

/// Computes the shape profile of \p T.
TreeProfile profileTree(const PhyloTree &T);

} // namespace mutk

#endif // MUTK_ANALYSIS_PROFILE_H
