//===- analysis/Profile.cpp - Dataset and tree diagnostics -----------------===//

#include "analysis/Profile.h"

#include "graph/Hierarchy.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>

using namespace mutk;

MatrixProfile mutk::profileMatrix(const DistanceMatrix &M) {
  MatrixProfile P;
  P.NumSpecies = M.size();
  const int N = M.size();
  if (N < 2)
    return P;

  P.MinDistance = M.minEntry();
  P.MaxDistance = M.maxEntry();
  double Sum = 0.0;
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      Sum += M.at(I, J);
  P.MeanDistance = Sum / (static_cast<double>(N) * (N - 1) / 2.0);

  // Triples: ultrametricity defect and decisiveness together.
  long Triples = 0;
  long Decisive = 0;
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      for (int K = J + 1; K < N; ++K) {
        double DIJ = M.at(I, J);
        double DIK = M.at(I, K);
        double DJK = M.at(J, K);
        ++Triples;
        if ((DIJ < DIK && DIJ < DJK) || (DIK < DIJ && DIK < DJK) ||
            (DJK < DIJ && DJK < DIK))
          ++Decisive;
        // Three-point condition on each rotation of the triple.
        auto defect = [](double AB, double AC, double BC) {
          double Bound = std::max(AC, BC);
          return AB > 0 ? std::max(0.0, (AB - Bound) / AB) : 0.0;
        };
        P.UltrametricityDefect = std::max(
            {P.UltrametricityDefect, defect(DIJ, DIK, DJK),
             defect(DIK, DIJ, DJK), defect(DJK, DIJ, DIK)});
      }
  P.TripleDecisiveness =
      Triples > 0 ? static_cast<double>(Decisive) / Triples : 0.0;

  std::vector<CompactSet> Sets = findCompactSets(M);
  P.NumCompactSets = static_cast<int>(Sets.size());
  std::vector<bool> Covered(static_cast<std::size_t>(N), false);
  for (const CompactSet &Set : Sets)
    for (int Species : Set.Members)
      Covered[static_cast<std::size_t>(Species)] = true;
  int CoveredCount = 0;
  for (bool C : Covered)
    CoveredCount += C;
  P.CompactCoverage = static_cast<double>(CoveredCount) / N;

  CompactHierarchy Hierarchy(N, Sets);
  P.LargestBlock = Hierarchy.maxPartitionSize();
  return P;
}

void mutk::printProfile(std::ostream &OS, const MatrixProfile &P) {
  OS << "species:               " << P.NumSpecies << '\n'
     << "distance range:        [" << P.MinDistance << ", " << P.MaxDistance
     << "], mean " << P.MeanDistance << '\n'
     << "ultrametricity defect: " << P.UltrametricityDefect
     << (P.UltrametricityDefect < 1e-12 ? "  (exact ultrametric)" : "")
     << '\n'
     << "triple decisiveness:   " << P.TripleDecisiveness << '\n'
     << "compact sets:          " << P.NumCompactSets << " (coverage "
     << P.CompactCoverage << ", largest block " << P.LargestBlock << ")\n";
}

TreeProfile mutk::profileTree(const PhyloTree &T) {
  TreeProfile P;
  P.NumLeaves = T.numLeaves();
  P.RootHeight = T.rootHeight();
  P.Weight = T.weight();
  if (T.root() < 0)
    return P;

  long ImbalanceSum = 0;
  // DFS with depth tracking; leaf counts per node via leavesBelow (the
  // trees here are small, quadratic is fine and keeps this readable).
  struct Frame {
    int Node;
    int Depth;
  };
  std::vector<Frame> Stack = {{T.root(), 0}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = T.node(F.Node);
    P.MaxDepth = std::max(P.MaxDepth, F.Depth);
    if (N.isLeaf())
      continue;
    long Left = static_cast<long>(T.leavesBelow(N.Left).size());
    long Right = static_cast<long>(T.leavesBelow(N.Right).size());
    ImbalanceSum += std::labs(Left - Right);
    Stack.push_back({N.Left, F.Depth + 1});
    Stack.push_back({N.Right, F.Depth + 1});
  }
  long NL = P.NumLeaves;
  long MaxImbalance = (NL - 1) * (NL - 2) / 2;
  P.Imbalance = MaxImbalance > 0
                    ? static_cast<double>(ImbalanceSum) / MaxImbalance
                    : 0.0;
  return P;
}
