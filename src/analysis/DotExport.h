//===- analysis/DotExport.h - Graphviz rendering ---------------------*- C++ -*-===//
///
/// \file
/// Graphviz (DOT) export for the structures biologists want to look at:
/// ultrametric trees (leaves labeled, edges annotated with lengths) and
/// the species MST with compact sets drawn as clusters — a publication-
/// ready version of the paper's Figures 4-5.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_ANALYSIS_DOTEXPORT_H
#define MUTK_ANALYSIS_DOTEXPORT_H

#include "graph/CompactSets.h"
#include "graph/Mst.h"
#include "tree/PhyloTree.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace mutk {

/// Writes \p T as a DOT digraph (root at top, edge labels = lengths).
void writeTreeDot(std::ostream &OS, const PhyloTree &T,
                  const std::string &GraphName = "tree");

/// Renders \p T to a DOT string.
std::string toTreeDot(const PhyloTree &T,
                      const std::string &GraphName = "tree");

/// Writes the MST of \p M as an undirected DOT graph with one subgraph
/// cluster per *maximal* compact set in \p Sets (nested sets are shown
/// by their outermost member to keep Graphviz output valid).
void writeMstDot(std::ostream &OS, const DistanceMatrix &M,
                 const std::vector<WeightedEdge> &MstEdges,
                 const std::vector<CompactSet> &Sets,
                 const std::string &GraphName = "mst");

/// Renders the MST + compact sets to a DOT string.
std::string toMstDot(const DistanceMatrix &M,
                     const std::vector<WeightedEdge> &MstEdges,
                     const std::vector<CompactSet> &Sets,
                     const std::string &GraphName = "mst");

} // namespace mutk

#endif // MUTK_ANALYSIS_DOTEXPORT_H
