//===- seq/EditDistance.h - Levenshtein distance ----------------*- C++ -*-===//
///
/// \file
/// Edit distance between DNA sequences. The distance-matrix model of the
/// paper derives species distances as "the edit distance for any two of
/// species"; this module provides the full dynamic program, a banded
/// variant, and the Ukkonen-style exact computation that doubles the band
/// until the result is certified (fast when sequences are similar, which
/// is exactly the mitochondrial-DNA regime).
///
/// Edit distance is a metric (nonnegative, symmetric, triangle
/// inequality), so matrices built from it need no metric repair.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SEQ_EDITDISTANCE_H
#define MUTK_SEQ_EDITDISTANCE_H

#include <string>

namespace mutk {

/// Full O(|A| * |B|) Levenshtein distance (unit costs).
int editDistance(const std::string &A, const std::string &B);

/// Banded Levenshtein: only cells with `|i - j| <= Band` are computed.
/// \returns the exact distance if it is `<= Band`; otherwise a value
/// `> Band` that is only a lower-bound certificate of "greater than Band".
int bandedEditDistance(const std::string &A, const std::string &B, int Band);

/// Exact edit distance via band doubling (Ukkonen). Runs in
/// O(d * max(|A|, |B|)) where `d` is the answer.
int fastEditDistance(const std::string &A, const std::string &B);

/// Hamming distance; the sequences must have equal length.
int hammingDistance(const std::string &A, const std::string &B);

} // namespace mutk

#endif // MUTK_SEQ_EDITDISTANCE_H
