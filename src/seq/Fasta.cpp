//===- seq/Fasta.cpp - FASTA sequence I/O ------------------------------------===//

#include "seq/Fasta.h"

#include <cctype>
#include <fstream>
#include <sstream>

using namespace mutk;

void mutk::writeFasta(std::ostream &OS,
                      const std::vector<FastaRecord> &Records) {
  constexpr std::size_t Width = 70;
  for (const FastaRecord &Record : Records) {
    OS << '>' << Record.Name << '\n';
    for (std::size_t Offset = 0; Offset < Record.Sequence.size();
         Offset += Width)
      OS << Record.Sequence.substr(Offset, Width) << '\n';
    if (Record.Sequence.empty())
      OS << '\n';
  }
}

std::string mutk::fastaToString(const std::vector<FastaRecord> &Records) {
  std::ostringstream OS;
  writeFasta(OS, Records);
  return OS.str();
}

std::optional<std::vector<FastaRecord>> mutk::readFasta(std::istream &IS,
                                                        std::string *Error) {
  auto fail = [&](const std::string &Message)
      -> std::optional<std::vector<FastaRecord>> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };

  std::vector<FastaRecord> Records;
  std::string Line;
  int LineNumber = 0;
  while (std::getline(IS, Line)) {
    ++LineNumber;
    // Strip trailing CR from CRLF files.
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    if (Line.front() == '>') {
      Records.push_back(FastaRecord{Line.substr(1), ""});
      continue;
    }
    if (Records.empty())
      return fail("sequence data before the first '>' header (line " +
                  std::to_string(LineNumber) + ")");
    for (char C : Line) {
      if (std::isspace(static_cast<unsigned char>(C)))
        continue;
      Records.back().Sequence.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(C))));
    }
  }
  if (Records.empty())
    return fail("no FASTA records found");
  return Records;
}

std::optional<std::vector<FastaRecord>>
mutk::fastaFromString(const std::string &Text, std::string *Error) {
  std::istringstream IS(Text);
  return readFasta(IS, Error);
}

bool mutk::writeFastaFile(const std::string &Path,
                          const std::vector<FastaRecord> &Records) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeFasta(OS, Records);
  return static_cast<bool>(OS);
}

std::optional<std::vector<FastaRecord>>
mutk::readFastaFile(const std::string &Path, std::string *Error) {
  std::ifstream IS(Path);
  if (!IS) {
    if (Error)
      *Error = "cannot open " + Path;
    return std::nullopt;
  }
  return readFasta(IS, Error);
}
