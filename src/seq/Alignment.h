//===- seq/Alignment.h - Global pairwise alignment --------------*- C++ -*-===//
///
/// \file
/// Needleman-Wunsch global alignment with traceback. The papers'
/// introduction contrasts two models — multiple sequence alignment and
/// the distance matrix — and derives the distances as edit distances;
/// this module provides the alignment view of the same computation:
/// configurable match/mismatch/gap scores, the aligned strings, and
/// identity statistics. With unit costs (`EditDistanceScoring`), the
/// alignment's mismatch+gap count equals `editDistance`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SEQ_ALIGNMENT_H
#define MUTK_SEQ_ALIGNMENT_H

#include <string>

namespace mutk {

/// Scoring scheme: alignment *maximizes* the summed score.
struct AlignmentScoring {
  double Match = 1.0;
  double Mismatch = -1.0;
  double Gap = -1.0;
};

/// The minimizing-unit-cost scheme whose optimal alignment realizes the
/// Levenshtein distance (match 0, mismatch/gap -1).
inline AlignmentScoring editDistanceScoring() {
  return AlignmentScoring{0.0, -1.0, -1.0};
}

/// A finished global alignment.
struct Alignment {
  /// Gapped versions of the two inputs; equal length, `-` marks a gap.
  std::string AlignedA;
  std::string AlignedB;
  /// Total score under the requested scheme.
  double Score = 0.0;
  /// Column counts.
  int Matches = 0;
  int Mismatches = 0;
  int Gaps = 0;

  /// Number of alignment columns.
  int length() const { return static_cast<int>(AlignedA.size()); }

  /// Fraction of columns that match (0 for an empty alignment).
  double identity() const {
    return length() > 0 ? static_cast<double>(Matches) / length() : 0.0;
  }

  /// Mismatches + gaps; equals the edit distance under
  /// `editDistanceScoring`.
  int editOperations() const { return Mismatches + Gaps; }
};

/// Globally aligns \p A and \p B, maximizing the score under
/// \p Scoring. O(|A| * |B|) time and memory (full traceback matrix).
/// Ties prefer diagonal moves, then gaps in B, so the result is
/// deterministic.
Alignment alignGlobal(const std::string &A, const std::string &B,
                      const AlignmentScoring &Scoring = {});

/// Renders the alignment as three lines (`A`, markers, `B`).
std::string formatAlignment(const Alignment &Aligned, int Width = 60);

} // namespace mutk

#endif // MUTK_SEQ_ALIGNMENT_H
