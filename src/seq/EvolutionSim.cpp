//===- seq/EvolutionSim.cpp - Synthetic molecular evolution ----------------===//

#include "seq/EvolutionSim.h"

#include "seq/EditDistance.h"
#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace mutk;

namespace {

const char Bases[] = {'A', 'C', 'G', 'T'};

char randomBase(Rng &Rand) {
  return Bases[Rand.nextBelow(4)];
}

/// The transition partner (purine<->purine, pyrimidine<->pyrimidine).
char transitionOf(char Base) {
  switch (Base) {
  case 'A':
    return 'G';
  case 'G':
    return 'A';
  case 'C':
    return 'T';
  default:
    return 'C'; // 'T'
  }
}

char mutatedBase(char Old, const EvolutionSpec &Spec, Rng &Rand) {
  // Kimura two-parameter: a substitution is a transition with
  // probability TransitionBias, otherwise one of the two transversions.
  if (Rand.nextBool(Spec.TransitionBias))
    return transitionOf(Old);
  char New;
  do {
    New = randomBase(Rand);
  } while (New == Old || New == transitionOf(Old));
  return New;
}

std::string randomSequence(int Length, Rng &Rand) {
  std::string Seq(static_cast<std::size_t>(Length), 'A');
  for (char &C : Seq)
    C = randomBase(Rand);
  return Seq;
}

/// Evolves \p Seq along a branch of length \p Time.
std::string evolveAlongBranch(const std::string &Seq, double Time,
                              const EvolutionSpec &Spec, Rng &Rand) {
  // Probability a site mutates at least once on this branch.
  double PSub = 1.0 - std::exp(-Spec.SubstitutionRate * Time);
  double PIndel = 1.0 - std::exp(-Spec.IndelRate * Time);

  std::string Result;
  Result.reserve(Seq.size() + 8);
  for (char C : Seq) {
    if (Rand.nextBool(PIndel)) {
      // Indel event: deletion or a short insertion, equally likely.
      if (Rand.nextBool(0.5))
        continue; // deletion: drop the site
      Result.push_back(randomBase(Rand));
      // fall through to also keep the original site (insertion before it)
    }
    Result.push_back(Rand.nextBool(PSub) ? mutatedBase(C, Spec, Rand) : C);
  }
  if (Result.empty())
    Result.push_back(randomBase(Rand)); // never let a lineage vanish
  return Result;
}

/// Recursively builds a random binary topology over \p Species and
/// evolves \p Seq down it. Returns the root node index in \p Tree.
int growSubtree(PhyloTree &Tree, std::vector<int> Species, double Height,
                std::string Seq, std::vector<std::string> &LeafSeqs,
                const EvolutionSpec &Spec, Rng &Rand) {
  if (Species.size() == 1) {
    LeafSeqs[static_cast<std::size_t>(Species.front())] = std::move(Seq);
    return Tree.addLeaf(Species.front());
  }
  // Random nonempty split.
  Rand.shuffle(Species);
  std::size_t Cut =
      1 + static_cast<std::size_t>(Rand.nextBelow(Species.size() - 1));
  std::vector<int> LeftSpecies(Species.begin(),
                               Species.begin() + static_cast<long>(Cut));
  std::vector<int> RightSpecies(Species.begin() + static_cast<long>(Cut),
                                Species.end());

  double LeftHeight =
      LeftSpecies.size() == 1
          ? 0.0
          : Height * Rand.nextDouble(Spec.MinShrink, Spec.MaxShrink);
  double RightHeight =
      RightSpecies.size() == 1
          ? 0.0
          : Height * Rand.nextDouble(Spec.MinShrink, Spec.MaxShrink);

  // Per-branch rate heterogeneity: the effective amount of evolution on
  // a branch deviates lognormally from its clock duration.
  double LeftRate = std::exp(Spec.RateVariation * Rand.nextGaussian());
  double RightRate = std::exp(Spec.RateVariation * Rand.nextGaussian());
  std::string LeftSeq =
      evolveAlongBranch(Seq, (Height - LeftHeight) * LeftRate, Spec, Rand);
  std::string RightSeq = evolveAlongBranch(
      Seq, (Height - RightHeight) * RightRate, Spec, Rand);

  int Left = growSubtree(Tree, std::move(LeftSpecies), LeftHeight,
                         std::move(LeftSeq), LeafSeqs, Spec, Rand);
  int Right = growSubtree(Tree, std::move(RightSpecies), RightHeight,
                          std::move(RightSeq), LeafSeqs, Spec, Rand);
  return Tree.addInternal(Left, Right, Height);
}

} // namespace

EvolutionResult mutk::simulateEvolution(int NumSpecies, std::uint64_t Seed,
                                        const EvolutionSpec &Spec) {
  assert(NumSpecies >= 1 && "need at least one species");
  assert(Spec.SequenceLength > 0 && "sequence length must be positive");
  Rng Rand(Seed);

  EvolutionResult Result;
  Result.Sequences.resize(static_cast<std::size_t>(NumSpecies));
  Result.Names.reserve(static_cast<std::size_t>(NumSpecies));
  for (int I = 0; I < NumSpecies; ++I)
    Result.Names.push_back("dna" + std::to_string(I));

  std::vector<int> Species(static_cast<std::size_t>(NumSpecies));
  for (int I = 0; I < NumSpecies; ++I)
    Species[static_cast<std::size_t>(I)] = I;

  std::string Ancestor = randomSequence(Spec.SequenceLength, Rand);
  double RootHeight = NumSpecies == 1 ? 0.0 : Spec.RootHeight;
  int Root = growSubtree(Result.TrueTree, std::move(Species), RootHeight,
                         std::move(Ancestor), Result.Sequences, Spec, Rand);
  Result.TrueTree.setRoot(Root);
  Result.TrueTree.setNames(Result.Names);
  return Result;
}

DistanceMatrix
mutk::editDistanceMatrix(const std::vector<std::string> &Sequences,
                         const std::vector<std::string> &Names) {
  const int N = static_cast<int>(Sequences.size());
  DistanceMatrix M(N);
  for (int I = 0; I < N; ++I)
    if (static_cast<std::size_t>(I) < Names.size())
      M.setName(I, Names[static_cast<std::size_t>(I)]);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      M.set(I, J,
            static_cast<double>(fastEditDistance(
                Sequences[static_cast<std::size_t>(I)],
                Sequences[static_cast<std::size_t>(J)])));
  return M;
}

DistanceMatrix mutk::hmdnaLikeMatrix(int NumSpecies, std::uint64_t Seed,
                                     const EvolutionSpec &Spec) {
  EvolutionResult Sim = simulateEvolution(NumSpecies, Seed, Spec);
  return editDistanceMatrix(Sim.Sequences, Sim.Names);
}
