//===- seq/EditDistance.cpp - Levenshtein distance -------------------------===//

#include "seq/EditDistance.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <vector>

using namespace mutk;

int mutk::editDistance(const std::string &A, const std::string &B) {
  const int NA = static_cast<int>(A.size());
  const int NB = static_cast<int>(B.size());
  std::vector<int> Prev(static_cast<std::size_t>(NB) + 1);
  std::vector<int> Cur(static_cast<std::size_t>(NB) + 1);
  for (int J = 0; J <= NB; ++J)
    Prev[static_cast<std::size_t>(J)] = J;
  for (int I = 1; I <= NA; ++I) {
    Cur[0] = I;
    for (int J = 1; J <= NB; ++J) {
      int Sub = Prev[static_cast<std::size_t>(J - 1)] +
                (A[static_cast<std::size_t>(I - 1)] !=
                 B[static_cast<std::size_t>(J - 1)]);
      int Del = Prev[static_cast<std::size_t>(J)] + 1;
      int Ins = Cur[static_cast<std::size_t>(J - 1)] + 1;
      Cur[static_cast<std::size_t>(J)] = std::min({Sub, Del, Ins});
    }
    std::swap(Prev, Cur);
  }
  return Prev[static_cast<std::size_t>(NB)];
}

int mutk::bandedEditDistance(const std::string &A, const std::string &B,
                             int Band) {
  assert(Band >= 0 && "band must be nonnegative");
  const int NA = static_cast<int>(A.size());
  const int NB = static_cast<int>(B.size());
  // If the lengths differ by more than the band, the distance certainly
  // exceeds it.
  if (std::abs(NA - NB) > Band)
    return Band + 1;

  const int Big = std::numeric_limits<int>::max() / 2;
  std::vector<int> Prev(static_cast<std::size_t>(NB) + 1, Big);
  std::vector<int> Cur(static_cast<std::size_t>(NB) + 1, Big);
  for (int J = 0; J <= std::min(NB, Band); ++J)
    Prev[static_cast<std::size_t>(J)] = J;

  for (int I = 1; I <= NA; ++I) {
    const int Lo = std::max(1, I - Band);
    const int Hi = std::min(NB, I + Band);
    std::fill(Cur.begin(), Cur.end(), Big);
    if (Lo == 1)
      Cur[0] = I;
    for (int J = Lo; J <= Hi; ++J) {
      int Sub = Prev[static_cast<std::size_t>(J - 1)] +
                (A[static_cast<std::size_t>(I - 1)] !=
                 B[static_cast<std::size_t>(J - 1)]);
      int Del = Prev[static_cast<std::size_t>(J)] + 1;
      int Ins = Cur[static_cast<std::size_t>(J - 1)] + 1;
      Cur[static_cast<std::size_t>(J)] = std::min({Sub, Del, Ins});
    }
    std::swap(Prev, Cur);
  }
  int Result = Prev[static_cast<std::size_t>(NB)];
  return std::min(Result, Band + 1);
}

int mutk::fastEditDistance(const std::string &A, const std::string &B) {
  const int NA = static_cast<int>(A.size());
  const int NB = static_cast<int>(B.size());
  int Band = std::max(1, std::abs(NA - NB));
  const int MaxDistance = std::max(NA, NB);
  for (;;) {
    int D = bandedEditDistance(A, B, Band);
    if (D <= Band)
      return D;
    if (Band >= MaxDistance)
      return D; // distance equals max length; cannot exceed it
    Band = std::min(Band * 2, MaxDistance);
  }
}

int mutk::hammingDistance(const std::string &A, const std::string &B) {
  assert(A.size() == B.size() && "hamming distance needs equal lengths");
  int D = 0;
  for (std::size_t I = 0; I < A.size(); ++I)
    D += (A[I] != B[I]);
  return D;
}
