//===- seq/Fasta.h - FASTA sequence I/O --------------------------*- C++ -*-===//
///
/// \file
/// Minimal FASTA reading/writing so simulated datasets can be exported
/// to — and real sequence sets imported from — the format every
/// bioinformatics tool speaks. Wrapped at 70 columns on output; on input
/// the parser accepts arbitrary line lengths, skips blank lines, and
/// uppercases sequence characters.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SEQ_FASTA_H
#define MUTK_SEQ_FASTA_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace mutk {

/// One FASTA record.
struct FastaRecord {
  std::string Name;     ///< header without the leading '>'
  std::string Sequence; ///< uppercase residues
};

/// Writes records as FASTA (70-column wrapping).
void writeFasta(std::ostream &OS, const std::vector<FastaRecord> &Records);

/// Serializes records to a FASTA string.
std::string fastaToString(const std::vector<FastaRecord> &Records);

/// Parses FASTA from \p IS.
///
/// \param [out] Error human-readable message on failure (may be null).
/// \returns the records, or nullopt when the input has sequence data
/// before the first header or no records at all.
std::optional<std::vector<FastaRecord>>
readFasta(std::istream &IS, std::string *Error = nullptr);

/// Parses FASTA from a string.
std::optional<std::vector<FastaRecord>>
fastaFromString(const std::string &Text, std::string *Error = nullptr);

/// Writes \p Records to the file at \p Path. \returns true on success.
bool writeFastaFile(const std::string &Path,
                    const std::vector<FastaRecord> &Records);

/// Reads records from the file at \p Path.
std::optional<std::vector<FastaRecord>>
readFastaFile(const std::string &Path, std::string *Error = nullptr);

} // namespace mutk

#endif // MUTK_SEQ_FASTA_H
