//===- seq/Alignment.cpp - Global pairwise alignment -----------------------===//

#include "seq/Alignment.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <vector>

using namespace mutk;

Alignment mutk::alignGlobal(const std::string &A, const std::string &B,
                            const AlignmentScoring &Scoring) {
  const int NA = static_cast<int>(A.size());
  const int NB = static_cast<int>(B.size());

  // Score[i][j]: best score aligning A[0..i) with B[0..j).
  std::vector<std::vector<double>> Score(
      static_cast<std::size_t>(NA) + 1,
      std::vector<double>(static_cast<std::size_t>(NB) + 1, 0.0));
  // Move[i][j]: 0 diagonal, 1 up (gap in B), 2 left (gap in A).
  std::vector<std::vector<unsigned char>> Move(
      static_cast<std::size_t>(NA) + 1,
      std::vector<unsigned char>(static_cast<std::size_t>(NB) + 1, 0));

  for (int I = 1; I <= NA; ++I) {
    Score[static_cast<std::size_t>(I)][0] = I * Scoring.Gap;
    Move[static_cast<std::size_t>(I)][0] = 1;
  }
  for (int J = 1; J <= NB; ++J) {
    Score[0][static_cast<std::size_t>(J)] = J * Scoring.Gap;
    Move[0][static_cast<std::size_t>(J)] = 2;
  }

  for (int I = 1; I <= NA; ++I)
    for (int J = 1; J <= NB; ++J) {
      bool IsMatch = A[static_cast<std::size_t>(I - 1)] ==
                     B[static_cast<std::size_t>(J - 1)];
      double Diag = Score[static_cast<std::size_t>(I - 1)]
                         [static_cast<std::size_t>(J - 1)] +
                    (IsMatch ? Scoring.Match : Scoring.Mismatch);
      double Up = Score[static_cast<std::size_t>(I - 1)]
                       [static_cast<std::size_t>(J)] +
                  Scoring.Gap;
      double Left = Score[static_cast<std::size_t>(I)]
                         [static_cast<std::size_t>(J - 1)] +
                    Scoring.Gap;
      // Deterministic tie-break: diagonal, then up, then left.
      double Best = Diag;
      unsigned char M = 0;
      if (Up > Best) {
        Best = Up;
        M = 1;
      }
      if (Left > Best) {
        Best = Left;
        M = 2;
      }
      Score[static_cast<std::size_t>(I)][static_cast<std::size_t>(J)] = Best;
      Move[static_cast<std::size_t>(I)][static_cast<std::size_t>(J)] = M;
    }

  Alignment Result;
  Result.Score = Score[static_cast<std::size_t>(NA)]
                      [static_cast<std::size_t>(NB)];

  // Traceback.
  std::string RevA, RevB;
  int I = NA, J = NB;
  while (I > 0 || J > 0) {
    unsigned char M =
        Move[static_cast<std::size_t>(I)][static_cast<std::size_t>(J)];
    if (I > 0 && J > 0 && M == 0) {
      char CA = A[static_cast<std::size_t>(I - 1)];
      char CB = B[static_cast<std::size_t>(J - 1)];
      RevA.push_back(CA);
      RevB.push_back(CB);
      if (CA == CB)
        ++Result.Matches;
      else
        ++Result.Mismatches;
      --I;
      --J;
    } else if (I > 0 && (J == 0 || M == 1)) {
      RevA.push_back(A[static_cast<std::size_t>(I - 1)]);
      RevB.push_back('-');
      ++Result.Gaps;
      --I;
    } else {
      assert(J > 0 && "traceback stuck");
      RevA.push_back('-');
      RevB.push_back(B[static_cast<std::size_t>(J - 1)]);
      ++Result.Gaps;
      --J;
    }
  }
  Result.AlignedA.assign(RevA.rbegin(), RevA.rend());
  Result.AlignedB.assign(RevB.rbegin(), RevB.rend());
  return Result;
}

std::string mutk::formatAlignment(const Alignment &Aligned, int Width) {
  assert(Width > 0 && "width must be positive");
  std::ostringstream OS;
  const int Len = Aligned.length();
  for (int Start = 0; Start < Len; Start += Width) {
    int Chunk = std::min(Width, Len - Start);
    OS << Aligned.AlignedA.substr(static_cast<std::size_t>(Start),
                                  static_cast<std::size_t>(Chunk))
       << '\n';
    for (int K = 0; K < Chunk; ++K) {
      char CA = Aligned.AlignedA[static_cast<std::size_t>(Start + K)];
      char CB = Aligned.AlignedB[static_cast<std::size_t>(Start + K)];
      OS << (CA == CB ? '|' : (CA == '-' || CB == '-' ? ' ' : '.'));
    }
    OS << '\n'
       << Aligned.AlignedB.substr(static_cast<std::size_t>(Start),
                                  static_cast<std::size_t>(Chunk))
       << '\n';
    if (Start + Width < Len)
      OS << '\n';
  }
  return OS.str();
}
