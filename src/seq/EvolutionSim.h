//===- seq/EvolutionSim.h - Synthetic molecular evolution -------*- C++ -*-===//
///
/// \file
/// Simulates DNA evolution to stand in for the paper's Human Mitochondrial
/// DNA datasets (see DESIGN.md §5.1). A random rooted binary tree with
/// near-constant evolutionary rate is generated; a random ancestral
/// sequence evolves down its edges under Jukes-Cantor-style point
/// mutations plus optional insertions/deletions. The leaf sequences are
/// then compared by exact edit distance to produce the distance matrix —
/// the same pipeline the original datasets went through.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SEQ_EVOLUTIONSIM_H
#define MUTK_SEQ_EVOLUTIONSIM_H

#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mutk {

/// Parameters of the sequence-evolution simulation.
struct EvolutionSpec {
  /// Length of the ancestral sequence.
  int SequenceLength = 240;
  /// Expected substitutions per site along one unit of branch length.
  double SubstitutionRate = 0.08;
  /// Expected indel events per site along one unit of branch length.
  double IndelRate = 0.004;
  /// Height (time) of the root; pairwise divergence is at most twice this.
  double RootHeight = 1.0;
  /// Every child height lies in `[MinShrink, MaxShrink] * parent height`
  /// (same shape control as the ultrametric matrix generator).
  double MinShrink = 0.35;
  double MaxShrink = 0.85;
  /// Lineage rate heterogeneity: each branch's effective length is
  /// multiplied by `exp(RateVariation * gaussian)`. 0 = strict molecular
  /// clock (easy instances); ~0.6 matches the difficulty profile of real
  /// mitochondrial data, where the clock only holds approximately.
  double RateVariation = 0.6;
  /// Probability that a substitution is a *transition* (A<->G, C<->T).
  /// 1/3 gives the Jukes-Cantor model (all targets equally likely);
  /// real mitochondrial DNA is transition-dominated (~0.9), which is the
  /// Kimura two-parameter regime.
  double TransitionBias = 1.0 / 3.0;
};

/// Result of one simulation: the leaf sequences, the generating ("true")
/// tree, and the species names `dna0..dna{n-1}`.
struct EvolutionResult {
  std::vector<std::string> Sequences;
  PhyloTree TrueTree;
  std::vector<std::string> Names;
};

/// Simulates \p NumSpecies species. Deterministic in \p Seed.
EvolutionResult simulateEvolution(int NumSpecies, std::uint64_t Seed,
                                  const EvolutionSpec &Spec = {});

/// Pairwise exact edit distances between \p Sequences, labeled with
/// \p Names (which may be empty to keep default labels).
DistanceMatrix editDistanceMatrix(const std::vector<std::string> &Sequences,
                                  const std::vector<std::string> &Names = {});

/// Convenience: `simulateEvolution` + `editDistanceMatrix`. This is the
/// `HMDNA(n, seed)` workload of DESIGN.md.
DistanceMatrix hmdnaLikeMatrix(int NumSpecies, std::uint64_t Seed,
                               const EvolutionSpec &Spec = {});

} // namespace mutk

#endif // MUTK_SEQ_EVOLUTIONSIM_H
