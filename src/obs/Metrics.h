//===- obs/Metrics.h - Lock-cheap metrics registry --------------*- C++ -*-===//
///
/// \file
/// The process-wide observability substrate: monotonic counters, gauges
/// and fixed-bucket histograms behind a named registry. The hot path is
/// one relaxed atomic RMW per update — no locks, no allocation; the
/// registry mutex is taken only when an instrument is first registered
/// and when a snapshot is read. Snapshots render to a Prometheus-style
/// text exposition (`mutkd --stats-dump`) and to JSON (the `StatsJson`
/// protocol verb).
///
/// Instruments are owned by the registry and never deallocated, so a
/// component may cache `Counter *` / `Gauge *` pointers for its lifetime
/// and keep incrementing them even while a snapshot is being taken.
/// Registering the same name twice returns the same instrument, which is
/// what makes process-wide singletons (`obs/Instruments.h`) safe across
/// any number of service instances.
///
/// Metric naming convention (enforced by `scripts/lint.sh` against
/// `docs/observability.md`): `mutk_<component>_<what>[_total]`, with an
/// optional `{label="value"}` suffix for per-shard families.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_OBS_METRICS_H
#define MUTK_OBS_METRICS_H

#include "support/Mutex.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mutk::obs {

/// Monotonically increasing event count.
class Counter {
public:
  void inc(std::uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  std::uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> V{0};
};

/// Instantaneous signed level (queue depth, in-flight jobs). `add`/`sub`
/// pairs from any thread keep it consistent without a lock.
class Gauge {
public:
  void set(std::int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(std::int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  void sub(std::int64_t N) { V.fetch_sub(N, std::memory_order_relaxed); }
  std::int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> V{0};
};

/// Point-in-time view of a histogram.
struct HistogramSnapshot {
  std::uint64_t Count = 0;
  /// Sum of recorded values (fixed-point accumulated, ~1e-3 resolution
  /// per sample).
  double Sum = 0.0;
  double P50 = 0.0;
  double P95 = 0.0;
  double P99 = 0.0;
  double Max = 0.0;
};

/// Fixed-bucket histogram over nonnegative values with one bucket per
/// power of two (bucket i spans [2^i, 2^(i+1)); values <= 1 land in
/// bucket 0). `record` is two relaxed atomic adds; quantiles are
/// reconstructed from the bucket counts with at most ~50% relative
/// quantization error — plenty for dashboards, free of locks.
class Histogram {
public:
  void record(double Value) {
    double Clamped = Value > 0.0 ? Value : 0.0;
    std::uint64_t U = Clamped <= 1.0 ? 1 : static_cast<std::uint64_t>(Clamped);
    int Bucket = std::bit_width(U) - 1;
    if (Bucket >= NumBuckets)
      Bucket = NumBuckets - 1;
    Buckets[static_cast<std::size_t>(Bucket)].fetch_add(
        1, std::memory_order_relaxed);
    // Fixed-point sum: atomic<double> fetch_add is not lock-free
    // everywhere, a u64 of milli-units is.
    SumMilli.fetch_add(static_cast<std::uint64_t>(Clamped * 1000.0 + 0.5),
                       std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

  std::uint64_t count() const;

private:
  static constexpr int NumBuckets = 64;
  std::array<std::atomic<std::uint64_t>, NumBuckets> Buckets{};
  std::atomic<std::uint64_t> SumMilli{0};
};

/// Point-in-time view of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> Counters;
  std::vector<std::pair<std::string, std::int64_t>> Gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> Histograms;
};

/// Named instrument registry. Registration and snapshotting serialize on
/// one mutex; instrument updates never do.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Returns the instrument registered under \p Name, creating it on
  /// first use. The reference stays valid for the registry's lifetime.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  MetricsSnapshot snapshot() const;

  /// Prometheus-style text exposition (`# TYPE` per family; histograms
  /// as summaries with quantile labels).
  std::string renderPrometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{"count":..,"sum":..,"p50":..,"p95":..,"p99":..,"max":..}}}.
  std::string renderJson() const;

  /// The process-wide registry every built-in instrument lives in.
  static MetricsRegistry &global();

private:
  mutable Mutex Mu{"obs.metrics"};
  // std::map keeps names sorted for stable renders; unique_ptr keeps
  // instrument addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters
      MUTK_GUARDED_BY(Mu);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges
      MUTK_GUARDED_BY(Mu);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms
      MUTK_GUARDED_BY(Mu);
};

} // namespace mutk::obs

#endif // MUTK_OBS_METRICS_H
