//===- obs/Instruments.h - Built-in instrument bundles ----------*- C++ -*-===//
///
/// \file
/// Every metric the mutk tree exports, registered once in the global
/// `MetricsRegistry` and handed to the instrumented components as plain
/// pointers/references. All metric *names* live in `Instruments.cpp` —
/// nowhere else — so `scripts/lint.sh` can verify that each registered
/// name is documented in `docs/observability.md` (the full catalog with
/// meanings lives there).
///
/// Bundles are process-wide singletons: several `TreeService` instances
/// in one process share the counters, which matches the Prometheus model
/// (cumulative per process) and keeps instrument lifetime trivially
/// safe — the registry never frees an instrument.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_OBS_INSTRUMENTS_H
#define MUTK_OBS_INSTRUMENTS_H

#include "obs/Metrics.h"

#include <cstdint>
#include <vector>

namespace mutk {
struct BnbStats;
} // namespace mutk

namespace mutk::obs {

/// Hooks a `BoundedQueue` updates when attached (all optional).
struct QueueInstruments {
  Gauge *Depth = nullptr;       ///< Items currently queued.
  Counter *Enqueued = nullptr;  ///< Successful pushes.
  Counter *Rejected = nullptr;  ///< Pushes refused (full or closed).
};

/// Request-path instruments of the tree-construction service.
struct ServiceInstruments {
  Counter &Submitted;
  Counter &Completed;
  Counter &Failed;
  Counter &Rejected;
  Counter &DeadlineExpired;
  Counter &WholeHits;
  Counter &WholeMisses;
  Gauge &InFlight;
  Histogram &RequestOkMillis;
  Histogram &RequestErrorMillis;
  Histogram &QueueWaitMillis;
  QueueInstruments Queue;
};
ServiceInstruments &serviceInstruments();

/// Per-shard counter trio of the result cache (also used as the
/// aggregate trio with null-free pointers).
struct CacheShardInstruments {
  Counter *Hits = nullptr;
  Counter *Misses = nullptr;
  Counter *Evictions = nullptr;
};

/// Aggregate cache counters.
struct CacheInstruments {
  Counter &Hits;
  Counter &Misses;
  Counter &Evictions;
};
CacheInstruments &cacheInstruments();

/// Labeled `{shard="i"}` instrument families for shards `0..NumShards-1`
/// (registered on first request; repeated calls return the same
/// instruments).
std::vector<CacheShardInstruments> cacheShardInstruments(int NumShards);

/// Socket-frontend instruments.
struct ServerInstruments {
  Counter &ConnectionsAccepted;
  Gauge &ConnectionsActive;
  Counter &FramesRead;
  Counter &ParseErrors;
};
ServerInstruments &serverInstruments();

/// Branch-and-bound search counters, aggregated across every solver
/// (sequential DFS, best-first, threaded). Solvers accumulate their
/// per-solve `BnbStats` locally — zero contention on the search hot
/// path — and flush once per solve via `recordBnbSolve`.
struct BnbInstruments {
  Counter &Solves;
  Counter &Incomplete;
  Counter &NodesExpanded;
  Counter &NodesGenerated;
  Counter &PrunedByBound;
  Counter &PrunedByThreeThree;
  Counter &BoundEvals;
  Counter &UbUpdates;
};
BnbInstruments &bnbInstruments();

/// Flushes one solve's counters into the global registry (gated by
/// `BnbOptions::PublishMetrics` at the call sites).
void recordBnbSolve(const BnbStats &Stats);

/// Durability-layer instruments (`src/persist`): WAL traffic, snapshot
/// compactions, startup recovery and B&B checkpoint writes.
struct PersistInstruments {
  Counter &WalAppends;
  Counter &WalAppendBytes;
  Counter &SnapshotWrites;
  Counter &RecoveredRecords;
  Counter &DroppedRecords;
  Counter &RecoveredJobs;
  Counter &CheckpointWrites;
  Gauge &WalBytes;
  Gauge &SnapshotBytes;
  Histogram &CheckpointWriteMillis;
};
PersistInstruments &persistInstruments();

/// Cluster-layer instruments (`src/dist`): peer liveness, cluster-frame
/// traffic, cross-node job stealing, the sharded remote result cache
/// and distributed B&B slave sessions.
struct DistInstruments {
  Gauge &PeersAlive;
  Counter &PeerDeaths;
  Counter &PeerRevivals;
  Counter &HeartbeatsSent;
  Counter &HeartbeatsReceived;
  Counter &Frames;
  Counter &FrameErrors;
  Counter &JobsLent;
  Counter &JobsStolen;
  Counter &JobsReenqueued;
  Counter &RemoteLookups;
  Counter &RemoteHits;
  Counter &RemoteTimeouts;
  Counter &InsertsForwarded;
  Counter &MpSessions;
  Counter &WorkStolen;
  Counter &WorkDonated;
  Counter &IncumbentBroadcasts;
};
DistInstruments &distInstruments();

/// Cross-request block-cache tier counters (`docs/caching.md`): the
/// service-path view of per-condensed-block reuse. `Hits`/`Misses`/
/// `Inserts` count local block-tier traffic, the `Remote*` trio counts
/// probes of the cluster ring's block namespace, and `Recovered` counts
/// block records replayed from the durable store at startup.
struct BlockCacheInstruments {
  Counter &Hits;
  Counter &Misses;
  Counter &Inserts;
  Counter &RemoteLookups;
  Counter &RemoteHits;
  Counter &RemoteInserts;
  Counter &Recovered;
};
BlockCacheInstruments &blockCacheInstruments();

/// Incremental re-solve counters (`docs/caching.md#incremental-mode`):
/// requests that asked for perturbation detection, how the base search
/// went, the size of the accepted deltas, and how many blocks the
/// accepted runs re-solved (dirty) vs replayed (clean).
struct IncrementalInstruments {
  Counter &Requests;
  Counter &Applied;
  Counter &NoBase;
  Counter &DeltaTooLarge;
  Counter &TaxaAdded;
  Counter &TaxaRemoved;
  Counter &EntriesChanged;
  Counter &DirtyBlocks;
  Counter &CleanBlocks;
};
IncrementalInstruments &incrementalInstruments();

/// Cost-predictive QoS layer counters (`docs/qos.md`): admission
/// outcomes (sheds, rate limits, per-tier routing), coalescing
/// (followers answered by a leader, fan-out sizes), scheduler
/// starvation promotions, the predictor's dry-run memo traffic and the
/// predicted-vs-actual latency pair used to judge calibration.
struct QosInstruments {
  Counter &Shed;
  Counter &RateLimited;
  Counter &TierExact;
  Counter &TierPipeline;
  Counter &TierHeuristic;
  Counter &Coalesced;
  Counter &StarvationPromotions;
  Counter &ProfileDryRuns;
  Counter &ProfileMemoHits;
  /// Calibrated cost-per-node coefficient, in nanoseconds per search
  /// node (gauges are integers; ns keeps useful resolution).
  Gauge &CostPerNodeNanos;
  Histogram &CoalesceFanout;
  Histogram &PredictedMillis;
  Histogram &ActualMillis;
};
QosInstruments &qosInstruments();

/// Compact-set pipeline counters.
struct PipelineInstruments {
  Counter &Runs;
  Counter &Blocks;
  Counter &BlockCacheHits;
  Counter &ExactBlocks;
  Counter &HeuristicBlocks;
  Counter &HeightClamps;
  /// Block solves handed to the DAG scheduler's ready queue
  /// (`compact/BlockScheduler.h`); only parallel runs increment it.
  Counter &ReadyBlocks;
  /// Solves that blocked on another thread already solving a block with
  /// the same canonical fingerprint (single-flight contention).
  Counter &SingleFlightWaits;
  Gauge &BlocksInflight;
  Histogram &BlockSize;
  Histogram &BlockSolveMillis;
};
PipelineInstruments &pipelineInstruments();

} // namespace mutk::obs

#endif // MUTK_OBS_INSTRUMENTS_H
