//===- obs/Log.h - Leveled structured logger --------------------*- C++ -*-===//
///
/// \file
/// Single-line key=value structured logging with per-component levels,
/// replacing ad-hoc stderr prints. A record looks like
///
///   ts=2026-08-06T10:11:12.345Z level=info comp=mutkd msg="listening"
///   transport=unix addr=/tmp/mutkd.sock workers=4
///
/// and is written with one `fwrite` so concurrent emitters never
/// interleave. Levels are configured from the `MUTK_LOG` environment
/// variable the first time anything logs — a comma-separated spec of a
/// default level and `component=level` overrides, e.g.
///
///   MUTK_LOG=warn                 # only warn/error anywhere
///   MUTK_LOG=info,cache=trace     # info default, cache fully verbose
///   MUTK_LOG=off                  # silence everything
///
/// The default level is `info`. Disabled records cost one atomic load
/// plus (when component overrides exist) one small map probe — no
/// formatting, no allocation.
///
/// Usage:
///
///   obs::log(obs::LogLevel::Info, "server", "connection accepted")
///       .kv("fd", Fd)
///       .kv("active", NumActive);
///
/// The record is emitted when the temporary dies at the end of the full
/// expression. Tests capture output with `setLogSink` and reconfigure
/// levels with `configureLogging`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_OBS_LOG_H
#define MUTK_OBS_LOG_H

#include <concepts>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace mutk::obs {

enum class LogLevel : int {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5,
};

/// Stable lower-case name ("trace" ... "off").
const char *logLevelName(LogLevel Level);

/// Parses a level name; returns false (leaving \p Out untouched) on an
/// unknown name.
bool parseLogLevel(std::string_view Name, LogLevel &Out);

/// True when a record at \p Level for \p Component would be emitted.
bool logEnabled(LogLevel Level, std::string_view Component);

/// Applies a MUTK_LOG-style spec ("info,cache=trace"); unknown tokens
/// are ignored. Replaces the current configuration, including any
/// previous component overrides.
void configureLogging(std::string_view Spec);

/// Programmatic overrides (tests, daemons with --log flags).
void setLogLevel(LogLevel DefaultLevel);
void setComponentLogLevel(std::string_view Component, LogLevel Level);

/// Redirects emission; pass nullptr to restore the stderr sink. The sink
/// receives one complete record per call, newline included.
using LogSink = std::function<void(std::string_view Line)>;
void setLogSink(LogSink Sink);

/// One in-flight record. Build it through `log()`; key/value pairs
/// appended to a disabled record are no-ops (nothing is formatted).
class LogLine {
public:
  LogLine(LogLevel Level, std::string_view Component, std::string_view Msg);
  ~LogLine();

  LogLine(const LogLine &) = delete;
  LogLine &operator=(const LogLine &) = delete;

  LogLine &kv(std::string_view Key, std::string_view Value);
  LogLine &kv(std::string_view Key, const char *Value) {
    return kv(Key, std::string_view(Value));
  }
  LogLine &kv(std::string_view Key, double Value);
  template <std::integral T> LogLine &kv(std::string_view Key, T Value) {
    if (!Enabled)
      return *this;
    if constexpr (std::is_same_v<T, bool>)
      return appendRaw(Key, Value ? "true" : "false");
    else if constexpr (std::is_signed_v<T>)
      return appendRaw(Key,
                       std::to_string(static_cast<std::int64_t>(Value)));
    else
      return appendRaw(Key,
                       std::to_string(static_cast<std::uint64_t>(Value)));
  }

private:
  LogLine &appendRaw(std::string_view Key, std::string_view Value);

  bool Enabled;
  std::string Buffer;
};

/// Entry point: `log(Level, "comp", "msg").kv(...)...;`.
inline LogLine log(LogLevel Level, std::string_view Component,
                   std::string_view Msg) {
  return LogLine(Level, Component, Msg);
}

} // namespace mutk::obs

#endif // MUTK_OBS_LOG_H
