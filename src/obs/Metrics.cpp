//===- obs/Metrics.cpp - Lock-cheap metrics registry ----------------------===//

#include "obs/Metrics.h"

#include <cstdio>

using namespace mutk;
using namespace mutk::obs;

namespace {

/// Quantile from power-of-two bucket counts: the geometric midpoint of
/// the bucket containing the rank.
double quantileFromBuckets(const std::vector<std::uint64_t> &Counts,
                           std::uint64_t Total, double P) {
  if (Total == 0)
    return 0.0;
  std::uint64_t Rank = static_cast<std::uint64_t>(P * static_cast<double>(Total));
  if (Rank >= Total)
    Rank = Total - 1;
  std::uint64_t Seen = 0;
  for (std::size_t I = 0; I < Counts.size(); ++I) {
    Seen += Counts[I];
    if (Seen > Rank)
      return 1.5 * static_cast<double>(1ull << I);
  }
  return 0.0;
}

/// Escapes a metric name for use as a JSON object key (shard families
/// carry `{shard="3"}` suffixes whose quotes must not end the key).
std::string jsonKeyEscape(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// `mutk_cache_shard_hits_total{shard="3"}` -> `mutk_cache_shard_hits_total`.
std::string_view familyOf(const std::string &Name) {
  std::size_t Brace = Name.find('{');
  return Brace == std::string::npos
             ? std::string_view(Name)
             : std::string_view(Name).substr(0, Brace);
}

void appendF(std::string &Out, const char *Fmt, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Fmt, V);
  Out += Buf;
}

} // namespace

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  std::vector<std::uint64_t> Counts(NumBuckets, 0);
  for (int I = 0; I < NumBuckets; ++I) {
    Counts[static_cast<std::size_t>(I)] =
        Buckets[static_cast<std::size_t>(I)].load(std::memory_order_relaxed);
    S.Count += Counts[static_cast<std::size_t>(I)];
  }
  S.Sum = static_cast<double>(SumMilli.load(std::memory_order_relaxed)) /
          1000.0;
  S.P50 = quantileFromBuckets(Counts, S.Count, 0.50);
  S.P95 = quantileFromBuckets(Counts, S.Count, 0.95);
  S.P99 = quantileFromBuckets(Counts, S.Count, 0.99);
  for (int I = NumBuckets - 1; I >= 0; --I)
    if (Counts[static_cast<std::size_t>(I)] != 0) {
      // Upper edge of the highest populated bucket.
      S.Max = static_cast<double>(1ull << (I + 1));
      break;
    }
  return S;
}

std::uint64_t Histogram::count() const {
  std::uint64_t Total = 0;
  for (int I = 0; I < NumBuckets; ++I)
    Total += Buckets[static_cast<std::size_t>(I)].load(
        std::memory_order_relaxed);
  return Total;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  MutexLock Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  MutexLock Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  MutexLock Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock Lock(Mu);
  MetricsSnapshot S;
  S.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    S.Counters.emplace_back(Name, C->value());
  S.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.emplace_back(Name, G->value());
  S.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms)
    S.Histograms.emplace_back(Name, H->snapshot());
  return S;
}

std::string MetricsRegistry::renderPrometheus() const {
  MetricsSnapshot S = snapshot();
  std::string Out;
  std::string_view LastFamily;
  auto typeLine = [&](const std::string &Name, const char *Kind) {
    std::string_view Family = familyOf(Name);
    if (Family != LastFamily) {
      Out += "# TYPE ";
      Out += Family;
      Out += ' ';
      Out += Kind;
      Out += '\n';
      LastFamily = Family;
    }
  };
  for (const auto &[Name, V] : S.Counters) {
    typeLine(Name, "counter");
    Out += Name;
    Out += ' ';
    Out += std::to_string(V);
    Out += '\n';
  }
  for (const auto &[Name, V] : S.Gauges) {
    typeLine(Name, "gauge");
    Out += Name;
    Out += ' ';
    Out += std::to_string(V);
    Out += '\n';
  }
  for (const auto &[Name, H] : S.Histograms) {
    typeLine(Name, "summary");
    for (const auto &[Label, Q] :
         {std::pair<const char *, double>{"0.5", H.P50},
          std::pair<const char *, double>{"0.95", H.P95},
          std::pair<const char *, double>{"0.99", H.P99}}) {
      Out += Name;
      Out += "{quantile=\"";
      Out += Label;
      Out += "\"} ";
      appendF(Out, "%.6g", Q);
      Out += '\n';
    }
    Out += Name;
    Out += "_sum ";
    appendF(Out, "%.6g", H.Sum);
    Out += '\n';
    Out += Name;
    Out += "_count ";
    Out += std::to_string(H.Count);
    Out += '\n';
  }
  return Out;
}

std::string MetricsRegistry::renderJson() const {
  MetricsSnapshot S = snapshot();
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, V] : S.Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + jsonKeyEscape(Name) + "\":" + std::to_string(V);
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, V] : S.Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + jsonKeyEscape(Name) + "\":" + std::to_string(V);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : S.Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + jsonKeyEscape(Name) + "\":{\"count\":" +
           std::to_string(H.Count) + ",\"sum\":";
    appendF(Out, "%.6g", H.Sum);
    Out += ",\"p50\":";
    appendF(Out, "%.6g", H.P50);
    Out += ",\"p95\":";
    appendF(Out, "%.6g", H.P95);
    Out += ",\"p99\":";
    appendF(Out, "%.6g", H.P99);
    Out += ",\"max\":";
    appendF(Out, "%.6g", H.Max);
    Out += '}';
  }
  Out += "}}";
  return Out;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}
