//===- obs/Log.cpp - Leveled structured logger ----------------------------===//

#include "obs/Log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include "support/Mutex.h"

#include <cstdlib>
#include <ctime>
#include <map>

using namespace mutk;
using namespace mutk::obs;

namespace {

/// Logger configuration. The default level is mirrored into an atomic so
/// the common fast path (no component overrides, level disabled) costs
/// two atomic loads and no lock.
struct LogConfig {
  mutk::Mutex Mu{"obs.log"};
  std::map<std::string, LogLevel, std::less<>> ComponentLevels
      MUTK_GUARDED_BY(Mu);
  LogSink Sink MUTK_GUARDED_BY(Mu); // empty -> stderr
  std::atomic<int> DefaultLevel{static_cast<int>(LogLevel::Info)};
  std::atomic<bool> HasComponentLevels{false};
  std::atomic<bool> EnvParsed{false};
};

LogConfig &config() {
  static LogConfig C;
  return C;
}

void applySpecLocked(LogConfig &C, std::string_view Spec)
    MUTK_REQUIRES(C.Mu) {
  C.ComponentLevels.clear();
  LogLevel Default = LogLevel::Info;
  std::size_t Pos = 0;
  while (Pos <= Spec.size()) {
    std::size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string_view::npos)
      Comma = Spec.size();
    std::string_view Token = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Token.empty())
      continue;
    std::size_t Eq = Token.find('=');
    if (Eq == std::string_view::npos) {
      parseLogLevel(Token, Default); // unknown tokens ignored
    } else {
      LogLevel Level = LogLevel::Info;
      if (parseLogLevel(Token.substr(Eq + 1), Level))
        C.ComponentLevels.emplace(std::string(Token.substr(0, Eq)), Level);
    }
  }
  C.DefaultLevel.store(static_cast<int>(Default), std::memory_order_relaxed);
  C.HasComponentLevels.store(!C.ComponentLevels.empty(),
                             std::memory_order_release);
}

/// Reads MUTK_LOG exactly once (unless configureLogging replaced the
/// config first, which also marks the env as consumed).
void ensureEnvParsed(LogConfig &C) {
  if (C.EnvParsed.load(std::memory_order_acquire))
    return;
  mutk::MutexLock Lock(C.Mu);
  if (C.EnvParsed.load(std::memory_order_relaxed))
    return;
  if (const char *Spec = std::getenv("MUTK_LOG"))
    applySpecLocked(C, Spec);
  C.EnvParsed.store(true, std::memory_order_release);
}

/// `ts=` value: UTC wall clock with millisecond resolution.
void appendTimestamp(std::string &Out) {
  using namespace std::chrono;
  auto Now = system_clock::now();
  std::time_t Secs = system_clock::to_time_t(Now);
  auto Millis =
      duration_cast<milliseconds>(Now.time_since_epoch()).count() % 1000;
  std::tm Tm{};
  gmtime_r(&Secs, &Tm);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                Tm.tm_year + 1900, Tm.tm_mon + 1, Tm.tm_mday, Tm.tm_hour,
                Tm.tm_min, Tm.tm_sec, static_cast<int>(Millis));
  Out += Buf;
}

bool needsQuoting(std::string_view Value) {
  if (Value.empty())
    return true;
  for (char C : Value)
    if (C == ' ' || C == '"' || C == '=' || C == '\\' || C == '\n' ||
        C == '\t')
      return true;
  return false;
}

void appendValue(std::string &Out, std::string_view Value) {
  if (!needsQuoting(Value)) {
    Out += Value;
    return;
  }
  Out += '"';
  for (char C : Value) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  Out += '"';
}

} // namespace

const char *mutk::obs::logLevelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Trace:
    return "trace";
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "unknown";
}

bool mutk::obs::parseLogLevel(std::string_view Name, LogLevel &Out) {
  if (Name == "trace")
    Out = LogLevel::Trace;
  else if (Name == "debug")
    Out = LogLevel::Debug;
  else if (Name == "info")
    Out = LogLevel::Info;
  else if (Name == "warn" || Name == "warning")
    Out = LogLevel::Warn;
  else if (Name == "error")
    Out = LogLevel::Error;
  else if (Name == "off" || Name == "none")
    Out = LogLevel::Off;
  else
    return false;
  return true;
}

bool mutk::obs::logEnabled(LogLevel Level, std::string_view Component) {
  LogConfig &C = config();
  ensureEnvParsed(C);
  if (C.HasComponentLevels.load(std::memory_order_acquire)) {
    mutk::MutexLock Lock(C.Mu);
    auto It = C.ComponentLevels.find(Component);
    if (It != C.ComponentLevels.end())
      return static_cast<int>(Level) >= static_cast<int>(It->second);
  }
  return static_cast<int>(Level) >=
         C.DefaultLevel.load(std::memory_order_relaxed);
}

void mutk::obs::configureLogging(std::string_view Spec) {
  LogConfig &C = config();
  mutk::MutexLock Lock(C.Mu);
  applySpecLocked(C, Spec);
  C.EnvParsed.store(true, std::memory_order_release);
}

void mutk::obs::setLogLevel(LogLevel DefaultLevel) {
  LogConfig &C = config();
  ensureEnvParsed(C);
  C.DefaultLevel.store(static_cast<int>(DefaultLevel),
                       std::memory_order_relaxed);
}

void mutk::obs::setComponentLogLevel(std::string_view Component,
                                     LogLevel Level) {
  LogConfig &C = config();
  ensureEnvParsed(C);
  mutk::MutexLock Lock(C.Mu);
  C.ComponentLevels.insert_or_assign(std::string(Component), Level);
  C.HasComponentLevels.store(true, std::memory_order_release);
}

void mutk::obs::setLogSink(LogSink Sink) {
  LogConfig &C = config();
  mutk::MutexLock Lock(C.Mu);
  C.Sink = std::move(Sink);
}

LogLine::LogLine(LogLevel Level, std::string_view Component,
                 std::string_view Msg)
    : Enabled(logEnabled(Level, Component)) {
  if (!Enabled)
    return;
  Buffer.reserve(128);
  Buffer += "ts=";
  appendTimestamp(Buffer);
  Buffer += " level=";
  Buffer += logLevelName(Level);
  Buffer += " comp=";
  appendValue(Buffer, Component);
  Buffer += " msg=";
  // The message is always quoted so `msg` stays trivially parseable.
  Buffer += '"';
  for (char C : Msg) {
    if (C == '"' || C == '\\')
      Buffer += '\\';
    Buffer += C == '\n' ? ' ' : C;
  }
  Buffer += '"';
}

LogLine &LogLine::appendRaw(std::string_view Key, std::string_view Value) {
  Buffer += ' ';
  Buffer += Key;
  Buffer += '=';
  Buffer += Value;
  return *this;
}

LogLine &LogLine::kv(std::string_view Key, std::string_view Value) {
  if (!Enabled)
    return *this;
  Buffer += ' ';
  Buffer += Key;
  Buffer += '=';
  appendValue(Buffer, Value);
  return *this;
}

LogLine &LogLine::kv(std::string_view Key, double Value) {
  if (!Enabled)
    return *this;
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return appendRaw(Key, Buf);
}

LogLine::~LogLine() {
  if (!Enabled)
    return;
  Buffer += '\n';
  LogConfig &C = config();
  mutk::MutexLock Lock(C.Mu);
  if (C.Sink) {
    C.Sink(Buffer);
    return;
  }
  // One write per record keeps concurrent emitters from interleaving.
  std::fwrite(Buffer.data(), 1, Buffer.size(), stderr);
  std::fflush(stderr);
}
