//===- obs/Instruments.cpp - Built-in instrument bundles ------------------===//
//
// THE metric name catalog. Every name registered here must be documented
// in docs/observability.md — scripts/lint.sh greps this directory and
// fails the build when a name is missing from the docs.
//
//===----------------------------------------------------------------------===//

#include "obs/Instruments.h"

#include "bnb/BnbOptions.h"

#include <mutex>

using namespace mutk;
using namespace mutk::obs;

namespace {

MetricsRegistry &reg() { return MetricsRegistry::global(); }

} // namespace

ServiceInstruments &mutk::obs::serviceInstruments() {
  static ServiceInstruments I{
      reg().counter("mutk_service_requests_total"),
      reg().counter("mutk_service_completed_total"),
      reg().counter("mutk_service_failed_total"),
      reg().counter("mutk_service_rejected_total"),
      reg().counter("mutk_service_deadline_expired_total"),
      reg().counter("mutk_cache_whole_hits_total"),
      reg().counter("mutk_cache_whole_misses_total"),
      reg().gauge("mutk_service_inflight"),
      reg().histogram("mutk_service_request_ok_ms"),
      reg().histogram("mutk_service_request_error_ms"),
      reg().histogram("mutk_queue_wait_ms"),
      QueueInstruments{
          &reg().gauge("mutk_queue_depth"),
          &reg().counter("mutk_queue_enqueued_total"),
          &reg().counter("mutk_queue_rejected_total"),
      },
  };
  return I;
}

CacheInstruments &mutk::obs::cacheInstruments() {
  static CacheInstruments I{
      reg().counter("mutk_cache_hits_total"),
      reg().counter("mutk_cache_misses_total"),
      reg().counter("mutk_cache_evictions_total"),
  };
  return I;
}

std::vector<CacheShardInstruments>
mutk::obs::cacheShardInstruments(int NumShards) {
  // Registration de-dupes by name, so rebuilding the vector for every
  // service instance is cheap and always consistent.
  std::vector<CacheShardInstruments> Out;
  Out.reserve(static_cast<std::size_t>(NumShards));
  for (int I = 0; I < NumShards; ++I) {
    std::string Label = "{shard=\"" + std::to_string(I) + "\"}";
    Out.push_back(CacheShardInstruments{
        &reg().counter("mutk_cache_shard_hits_total" + Label),
        &reg().counter("mutk_cache_shard_misses_total" + Label),
        &reg().counter("mutk_cache_shard_evictions_total" + Label),
    });
  }
  return Out;
}

ServerInstruments &mutk::obs::serverInstruments() {
  static ServerInstruments I{
      reg().counter("mutk_server_connections_total"),
      reg().gauge("mutk_server_connections_active"),
      reg().counter("mutk_server_frames_total"),
      reg().counter("mutk_server_parse_errors_total"),
  };
  return I;
}

BnbInstruments &mutk::obs::bnbInstruments() {
  static BnbInstruments I{
      reg().counter("mutk_bnb_solves_total"),
      reg().counter("mutk_bnb_incomplete_total"),
      reg().counter("mutk_bnb_nodes_expanded_total"),
      reg().counter("mutk_bnb_nodes_generated_total"),
      reg().counter("mutk_bnb_pruned_bound_total"),
      reg().counter("mutk_bnb_pruned_threethree_total"),
      reg().counter("mutk_bnb_bound_evals_total"),
      reg().counter("mutk_bnb_ub_updates_total"),
  };
  return I;
}

void mutk::obs::recordBnbSolve(const BnbStats &Stats) {
  BnbInstruments &I = bnbInstruments();
  I.Solves.inc();
  if (!Stats.Complete)
    I.Incomplete.inc();
  I.NodesExpanded.inc(Stats.Branched);
  I.NodesGenerated.inc(Stats.Generated);
  I.PrunedByBound.inc(Stats.PrunedByBound);
  I.PrunedByThreeThree.inc(Stats.PrunedByThreeThree);
  I.BoundEvals.inc(Stats.BoundEvals);
  I.UbUpdates.inc(Stats.UbUpdates);
}

PersistInstruments &mutk::obs::persistInstruments() {
  static PersistInstruments I{
      reg().counter("mutk_persist_wal_appends_total"),
      reg().counter("mutk_persist_wal_append_bytes_total"),
      reg().counter("mutk_persist_snapshot_writes_total"),
      reg().counter("mutk_persist_recovered_records_total"),
      reg().counter("mutk_persist_dropped_records_total"),
      reg().counter("mutk_persist_recovered_jobs_total"),
      reg().counter("mutk_persist_checkpoint_writes_total"),
      reg().gauge("mutk_persist_wal_bytes"),
      reg().gauge("mutk_persist_snapshot_bytes"),
      reg().histogram("mutk_persist_checkpoint_write_ms"),
  };
  return I;
}

DistInstruments &mutk::obs::distInstruments() {
  static DistInstruments I{
      reg().gauge("mutk_dist_peers_alive"),
      reg().counter("mutk_dist_peer_deaths_total"),
      reg().counter("mutk_dist_peer_revivals_total"),
      reg().counter("mutk_dist_heartbeats_sent_total"),
      reg().counter("mutk_dist_heartbeats_received_total"),
      reg().counter("mutk_dist_frames_total"),
      reg().counter("mutk_dist_frame_errors_total"),
      reg().counter("mutk_dist_jobs_lent_total"),
      reg().counter("mutk_dist_jobs_stolen_total"),
      reg().counter("mutk_dist_jobs_reenqueued_total"),
      reg().counter("mutk_dist_cache_remote_lookups_total"),
      reg().counter("mutk_dist_cache_remote_hits_total"),
      reg().counter("mutk_dist_cache_remote_timeouts_total"),
      reg().counter("mutk_dist_cache_inserts_forwarded_total"),
      reg().counter("mutk_dist_mp_sessions_total"),
      reg().counter("mutk_dist_work_stolen_total"),
      reg().counter("mutk_dist_work_donated_total"),
      reg().counter("mutk_dist_incumbent_broadcasts_total"),
  };
  return I;
}

BlockCacheInstruments &mutk::obs::blockCacheInstruments() {
  static BlockCacheInstruments I{
      reg().counter("mutk_block_cache_hits_total"),
      reg().counter("mutk_block_cache_misses_total"),
      reg().counter("mutk_block_cache_inserts_total"),
      reg().counter("mutk_block_cache_remote_lookups_total"),
      reg().counter("mutk_block_cache_remote_hits_total"),
      reg().counter("mutk_block_cache_remote_inserts_total"),
      reg().counter("mutk_block_cache_recovered_total"),
  };
  return I;
}

IncrementalInstruments &mutk::obs::incrementalInstruments() {
  static IncrementalInstruments I{
      reg().counter("mutk_incremental_requests_total"),
      reg().counter("mutk_incremental_applied_total"),
      reg().counter("mutk_incremental_no_base_total"),
      reg().counter("mutk_incremental_delta_too_large_total"),
      reg().counter("mutk_incremental_taxa_added_total"),
      reg().counter("mutk_incremental_taxa_removed_total"),
      reg().counter("mutk_incremental_entries_changed_total"),
      reg().counter("mutk_incremental_dirty_blocks_total"),
      reg().counter("mutk_incremental_clean_blocks_total"),
  };
  return I;
}

QosInstruments &mutk::obs::qosInstruments() {
  static QosInstruments I{
      reg().counter("mutk_qos_shed_total"),
      reg().counter("mutk_qos_rate_limited_total"),
      reg().counter("mutk_qos_tier_exact_total"),
      reg().counter("mutk_qos_tier_pipeline_total"),
      reg().counter("mutk_qos_tier_heuristic_total"),
      reg().counter("mutk_qos_coalesced_total"),
      reg().counter("mutk_qos_starvation_promotions_total"),
      reg().counter("mutk_qos_profile_dry_runs_total"),
      reg().counter("mutk_qos_profile_memo_hits_total"),
      reg().gauge("mutk_qos_cost_per_node_ns"),
      reg().histogram("mutk_qos_coalesce_fanout"),
      reg().histogram("mutk_qos_predicted_ms"),
      reg().histogram("mutk_qos_actual_ms"),
  };
  return I;
}

PipelineInstruments &mutk::obs::pipelineInstruments() {
  static PipelineInstruments I{
      reg().counter("mutk_pipeline_runs_total"),
      reg().counter("mutk_pipeline_blocks_total"),
      reg().counter("mutk_pipeline_block_cache_hits_total"),
      reg().counter("mutk_pipeline_exact_blocks_total"),
      reg().counter("mutk_pipeline_heuristic_blocks_total"),
      reg().counter("mutk_pipeline_height_clamps_total"),
      reg().counter("mutk_pipeline_ready_blocks_total"),
      reg().counter("mutk_pipeline_single_flight_waits_total"),
      reg().gauge("mutk_pipeline_blocks_inflight"),
      reg().histogram("mutk_pipeline_block_size"),
      reg().histogram("mutk_pipeline_block_solve_ms"),
  };
  return I;
}
