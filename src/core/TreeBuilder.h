//===- core/TreeBuilder.h - One-call public facade --------------*- C++ -*-===//
///
/// \file
/// The library's front door: pick a construction method, hand over a
/// distance matrix, get an ultrametric tree with uniform accounting. The
/// individual subsystems remain available for fine-grained control; this
/// facade is what the examples and most downstream users need.
///
/// \code
///   mutk::BuildOptions Options;
///   Options.Method = mutk::BuildMethod::CompactSets;
///   mutk::BuildOutcome Out = mutk::buildTree(Matrix, Options);
///   std::cout << mutk::toNewick(Out.Tree) << '\n';
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_CORE_TREEBUILDER_H
#define MUTK_CORE_TREEBUILDER_H

#include "compact/CompactSetPipeline.h"
#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

#include <string>

namespace mutk {

/// Available construction methods.
enum class BuildMethod {
  Upgma,            ///< Average-linkage heuristic (baseline; may be
                    ///< infeasible for the matrix).
  Upgmm,            ///< Complete-linkage heuristic (always feasible).
  ExactSequential,  ///< Algorithm BBU: provably minimum ultrametric tree.
  ExactThreaded,    ///< Parallel B&B with worker threads; same optimum.
  MessagePassing,   ///< Parallel B&B over the in-process message-passing
                    ///< runtime (the papers' MPI protocol); same optimum.
  SimulatedCluster, ///< Parallel B&B on the virtual cluster; same
                    ///< optimum plus virtual-time accounting.
  CompactSets,      ///< The paper's fast technique: near-optimal,
                    ///< dramatically cheaper on clustered inputs.
};

/// Options for `buildTree`. Sub-option structs apply to the methods that
/// read them.
struct BuildOptions {
  BuildMethod Method = BuildMethod::CompactSets;
  /// B&B options (exact methods; forwarded into the pipeline for
  /// CompactSets).
  BnbOptions Bnb;
  /// Pipeline options (CompactSets only). `Pipeline.Bnb` is overwritten
  /// by `Bnb` for consistency.
  PipelineOptions Pipeline;
  /// Cluster model (SimulatedCluster only).
  ClusterSpec Cluster;
  /// Worker threads / slave ranks (ExactThreaded, MessagePassing).
  int NumThreads = 4;
};

/// Uniform result of any method.
struct BuildOutcome {
  PhyloTree Tree;
  /// Tree weight (total edge length).
  double Cost = 0.0;
  /// True when the result is provably the minimum ultrametric tree.
  bool Exact = false;
  /// Human-readable method name, e.g. "compact-sets(max)".
  std::string MethodName;
  /// Aggregate B&B counters (zero for the pure heuristics).
  BnbStats Stats;
  /// Virtual time on the simulated cluster (SimulatedCluster: makespan;
  /// CompactSets with cluster solver: summed block makespans).
  double VirtualTime = 0.0;
  /// Pipeline details, only for CompactSets.
  PipelineResult Pipeline;
};

/// Builds an ultrametric tree for \p M with the selected method.
BuildOutcome buildTree(const DistanceMatrix &M,
                       const BuildOptions &Options = {});

/// Name string for a method (used in reports).
std::string methodName(BuildMethod Method);

} // namespace mutk

#endif // MUTK_CORE_TREEBUILDER_H
