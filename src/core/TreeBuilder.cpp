//===- core/TreeBuilder.cpp - One-call public facade ------------------------===//

#include "core/TreeBuilder.h"

#include "heur/Upgma.h"
#include "mp/MpBnb.h"
#include "parallel/ThreadedBnb.h"

using namespace mutk;

std::string mutk::methodName(BuildMethod Method) {
  switch (Method) {
  case BuildMethod::Upgma:
    return "upgma";
  case BuildMethod::Upgmm:
    return "upgmm";
  case BuildMethod::ExactSequential:
    return "exact-sequential";
  case BuildMethod::ExactThreaded:
    return "exact-threaded";
  case BuildMethod::MessagePassing:
    return "message-passing";
  case BuildMethod::SimulatedCluster:
    return "simulated-cluster";
  case BuildMethod::CompactSets:
    return "compact-sets";
  }
  return "unknown";
}

BuildOutcome mutk::buildTree(const DistanceMatrix &M,
                             const BuildOptions &Options) {
  BuildOutcome Out;
  Out.MethodName = methodName(Options.Method);

  switch (Options.Method) {
  case BuildMethod::Upgma: {
    Out.Tree = upgma(M);
    Out.Cost = Out.Tree.weight();
    break;
  }
  case BuildMethod::Upgmm: {
    Out.Tree = upgmm(M);
    Out.Cost = Out.Tree.weight();
    break;
  }
  case BuildMethod::ExactSequential: {
    MutResult Solved = solveMutSequential(M, Options.Bnb);
    Out.Tree = std::move(Solved.Tree);
    Out.Cost = Solved.Cost;
    Out.Stats = Solved.Stats;
    Out.Exact = Solved.Stats.Complete;
    break;
  }
  case BuildMethod::ExactThreaded: {
    ParallelMutResult Solved =
        solveMutThreaded(M, Options.NumThreads, Options.Bnb);
    Out.Tree = std::move(Solved.Tree);
    Out.Cost = Solved.Cost;
    Out.Stats = Solved.Stats;
    Out.Exact = Solved.Stats.Complete;
    break;
  }
  case BuildMethod::MessagePassing: {
    MpMutResult Solved =
        solveMutMessagePassing(M, Options.NumThreads, Options.Bnb);
    Out.Tree = std::move(Solved.Tree);
    Out.Cost = Solved.Cost;
    Out.Stats = Solved.Stats;
    Out.Exact = Solved.Stats.Complete;
    break;
  }
  case BuildMethod::SimulatedCluster: {
    ClusterSimResult Solved =
        simulateClusterBnb(M, Options.Cluster, Options.Bnb);
    Out.Tree = std::move(Solved.Tree);
    Out.Cost = Solved.Cost;
    Out.Stats = Solved.Stats;
    Out.Exact = Solved.Stats.Complete;
    Out.VirtualTime = Solved.Makespan;
    break;
  }
  case BuildMethod::CompactSets: {
    PipelineOptions Pipeline = Options.Pipeline;
    Pipeline.Bnb = Options.Bnb;
    PipelineResult Solved = buildCompactSetTree(M, Pipeline);
    Out.Tree = Solved.Tree;
    Out.Cost = Solved.Cost;
    Out.Stats = Solved.TotalStats;
    Out.VirtualTime = Solved.TotalVirtualTime;
    Out.MethodName += (Pipeline.Mode == CondenseMode::Maximum ? "(max)"
                       : Pipeline.Mode == CondenseMode::Minimum
                           ? "(min)"
                           : "(avg)");
    Out.Pipeline = std::move(Solved);
    break;
  }
  }
  return Out;
}
