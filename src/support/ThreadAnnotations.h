//===- support/ThreadAnnotations.h - Clang TSA attribute macros -*- C++ -*-===//
///
/// \file
/// Macro family for Clang Thread Safety Analysis (TSA). Under clang the
/// macros expand to the `capability` attribute set, so a build with
/// `-DMUTK_THREAD_SAFETY=ON` (`-Wthread-safety -Wthread-safety-beta
/// -Werror=thread-safety-analysis`, see the `thread-safety` preset)
/// type-checks the lock protocol at compile time: which mutex guards
/// which field, which functions must (or must not) be entered with a
/// lock held, and which scopes acquire and release. Under any other
/// compiler every macro expands to nothing, so the annotations are free
/// documentation.
///
/// The annotated lock types themselves — `mutk::Mutex`, `MutexLock`,
/// `CondVar` — live in support/Mutex.h; raw `std::mutex` members cannot
/// carry a capability and are rejected by scripts/lint.sh layer 4.
/// docs/development.md ("Lock hierarchy and thread-safety annotations")
/// explains how to read the diagnostics and when to use `MUTK_REQUIRES`
/// versus `MUTK_EXCLUDES`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_THREADANNOTATIONS_H
#define MUTK_SUPPORT_THREADANNOTATIONS_H

#if defined(__clang__)
#define MUTK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MUTK_THREAD_ANNOTATION(x) // no-op: TSA is clang-only
#endif

/// Marks a class as a lockable capability (mutexes, the keyed-mutex
/// registry). The string names the capability kind in diagnostics.
#define MUTK_CAPABILITY(x) MUTK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (`MutexLock`, `KeyedMutex::Guard`).
#define MUTK_SCOPED_CAPABILITY MUTK_THREAD_ANNOTATION(scoped_lockable)

/// A data member readable/writable only with the capability held.
#define MUTK_GUARDED_BY(x) MUTK_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* is protected by the capability (the
/// pointer itself may be read freely, e.g. set-once in `start()`).
#define MUTK_PT_GUARDED_BY(x) MUTK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declared lock-ordering constraints (checked statically by TSA; the
/// runtime auditor in support/LockOrder.h learns the same facts).
#define MUTK_ACQUIRED_BEFORE(...)                                            \
  MUTK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MUTK_ACQUIRED_AFTER(...)                                             \
  MUTK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The caller must already hold the capability (`...Locked()` helpers).
#define MUTK_REQUIRES(...)                                                   \
  MUTK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MUTK_REQUIRES_SHARED(...)                                            \
  MUTK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires/releases the capability itself.
#define MUTK_ACQUIRE(...)                                                    \
  MUTK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MUTK_ACQUIRE_SHARED(...)                                             \
  MUTK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MUTK_RELEASE(...)                                                    \
  MUTK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MUTK_RELEASE_SHARED(...)                                             \
  MUTK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function attempts the capability; the first argument is the
/// return value that signals success.
#define MUTK_TRY_ACQUIRE(...)                                                \
  MUTK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock documentation for
/// functions that acquire it internally).
#define MUTK_EXCLUDES(...) MUTK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by TSA).
#define MUTK_ASSERT_CAPABILITY(x) MUTK_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability.
#define MUTK_RETURN_CAPABILITY(x) MUTK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code TSA cannot model (the keyed-mutex internals,
/// where the capability identity is runtime data). Every use carries a
/// comment saying why.
#define MUTK_NO_THREAD_SAFETY_ANALYSIS                                       \
  MUTK_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // MUTK_SUPPORT_THREADANNOTATIONS_H
