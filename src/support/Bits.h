//===- support/Bits.h - Leaf-set bitmask helpers ----------------*- C++ -*-===//
///
/// \file
/// Helpers for 64-bit leaf-set bitmasks. The branch-and-bound core keeps the
/// set of leaves under every internal node as a `uint64_t`, which caps exact
/// solves at 64 species per block — far above what exhaustive search can
/// reach anyway (the paper stops at 38).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_BITS_H
#define MUTK_SUPPORT_BITS_H

#include <bit>
#include <cassert>
#include <cstdint>

namespace mutk {

/// A set of leaf indices in `[0, 64)` packed into one word.
using LeafMask = std::uint64_t;

/// Returns the mask containing only \p Leaf.
inline LeafMask leafBit(int Leaf) {
  assert(Leaf >= 0 && Leaf < 64 && "leaf index out of mask range");
  return LeafMask{1} << Leaf;
}

/// Returns the number of leaves in \p Mask.
inline int leafCount(LeafMask Mask) { return std::popcount(Mask); }

/// Returns true if \p Leaf is a member of \p Mask.
inline bool hasLeaf(LeafMask Mask, int Leaf) {
  return (Mask & leafBit(Leaf)) != 0;
}

/// Calls \p Fn(leaf) for every leaf in \p Mask, in increasing order.
template <typename FnT> inline void forEachLeaf(LeafMask Mask, FnT Fn) {
  while (Mask) {
    int Leaf = std::countr_zero(Mask);
    Fn(Leaf);
    Mask &= Mask - 1;
  }
}

} // namespace mutk

#endif // MUTK_SUPPORT_BITS_H
