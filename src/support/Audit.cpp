//===- support/Audit.cpp - Runtime invariant audits -----------------------===//

#include "support/Audit.h"

#include <cstdio>
#include <cstdlib>

void mutk::detail::auditFailure(const char *Condition, const char *File,
                                int Line, const char *Message) {
  // fprintf, not iostreams: audits fire from arbitrary threads and
  // stderr must stay readable even mid-crash.
  std::fprintf(stderr, "MUTK AUDIT FAILED: %s\n  at %s:%d\n  %s\n",
               Condition, File, Line, Message);
  std::fflush(stderr);
  std::abort();
}
