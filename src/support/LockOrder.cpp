//===- support/LockOrder.cpp - Runtime lock-order auditor ------------------===//

#include "support/LockOrder.h"

#if MUTK_AUDIT_ENABLED

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace mutk::lockorder {
namespace {

/// One entry of a thread's acquisition stack. Plain-old-data on purpose:
/// the storage survives thread_local destruction order, so a lock taken
/// during static teardown cannot touch a dead vector.
struct HeldLock {
  const void *Lk;
  const char *Name;
};

/// Deeper nesting than this is itself a discipline bug.
constexpr int MaxHeld = 64;

thread_local HeldLock Held[MaxHeld];
thread_local int HeldDepth = 0;

/// The learned pairwise order: (Before, After) -> the acquisition stack
/// of the thread that first established it. Guarded by a raw std::mutex
/// (the auditor cannot hook itself); allowlisted in lint.sh layer 4.
struct EdgeTable {
  std::mutex Mu;
  std::map<std::pair<std::string, std::string>, std::string> Edges;
};

EdgeTable &table() {
  static EdgeTable T;
  return T;
}

/// "a -> b -> c" over the named locks this thread holds, ending in the
/// lock being acquired.
std::string stackString(const char *Acquiring) {
  std::string Out;
  for (int I = 0; I < HeldDepth; ++I) {
    if (!Held[I].Name)
      continue;
    Out += Held[I].Name;
    Out += " -> ";
  }
  Out += Acquiring;
  return Out;
}

[[noreturn]] void inversionFailure(const char *Acquiring, const char *Over,
                                   const std::string &Current,
                                   const std::string &Learned) {
  // One summary line first (machine-greppable, matched by the death
  // tests), then the two acquisition stacks.
  std::fprintf(stderr,
               "MUTK AUDIT FAILED: lock-order inversion: acquiring '%s' while "
               "holding '%s' | this thread: %s | established order: %s\n",
               Acquiring, Over, Current.c_str(), Learned.c_str());
  std::fprintf(stderr, "  this thread acquired:   %s\n", Current.c_str());
  std::fprintf(stderr, "  earlier thread acquired: %s\n", Learned.c_str());
  std::fprintf(stderr, "  (see docs/development.md, 'Lock hierarchy and "
                       "thread-safety annotations')\n");
  std::fflush(stderr);
  std::abort();
}

} // namespace

void noteAcquire(const void *Lk, const char *Name, bool Blocking) {
  if (HeldDepth >= MaxHeld) {
    std::fprintf(stderr,
                 "MUTK AUDIT FAILED: lock nesting exceeds %d acquiring '%s'\n",
                 MaxHeld, Name ? Name : "<unnamed>");
    std::fflush(stderr);
    std::abort();
  }
  // Ordering applies to named locks nested under other named locks; the
  // common case (first/only lock, or an unnamed one) skips the table.
  bool NamedHeld = false;
  for (int I = 0; I < HeldDepth && !NamedHeld; ++I)
    NamedHeld = Held[I].Name != nullptr;
  if (Name && NamedHeld) {
    const std::string Current = stackString(Name);
    EdgeTable &T = table();
    std::lock_guard<std::mutex> Lock(T.Mu);
    for (int I = 0; I < HeldDepth; ++I) {
      const char *Outer = Held[I].Name;
      if (!Outer || std::strcmp(Outer, Name) == 0)
        continue;
      if (Blocking) {
        auto Reverse = T.Edges.find({Name, Outer});
        if (Reverse != T.Edges.end())
          inversionFailure(Name, Outer, Current, Reverse->second);
      }
      T.Edges.try_emplace({Outer, Name}, Current);
    }
  }
  Held[HeldDepth++] = {Lk, Name};
}

void noteRelease(const void *Lk) {
  for (int I = HeldDepth - 1; I >= 0; --I) {
    if (Held[I].Lk != Lk)
      continue;
    for (int J = I; J + 1 < HeldDepth; ++J)
      Held[J] = Held[J + 1];
    --HeldDepth;
    return;
  }
  // Unknown release: the lock was acquired before this thread's stack
  // existed (static init) or past MaxHeld. Harmless either way.
}

int heldDepth() { return HeldDepth; }

} // namespace mutk::lockorder

#endif // MUTK_AUDIT_ENABLED
