//===- support/Rng.h - Deterministic random number generator ----*- C++ -*-===//
///
/// \file
/// A small, fast, explicitly-seeded PRNG (xoshiro256**) used by every
/// workload generator in the project. All experiments are reproducible from
/// a seed; no module uses `std::random_device` or global RNG state.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_RNG_H
#define MUTK_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace mutk {

/// Deterministic xoshiro256** generator with convenience distributions.
///
/// The generator is seeded through SplitMix64, so any 64-bit seed (including
/// 0) produces a well-mixed state.
class Rng {
public:
  explicit Rng(std::uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed.
  void reseed(std::uint64_t Seed);

  /// Returns the next raw 64-bit value.
  std::uint64_t next();

  /// Returns a uniform integer in `[0, Bound)`. \p Bound must be positive.
  std::uint64_t nextBelow(std::uint64_t Bound);

  /// Returns a uniform integer in `[Lo, Hi]` (inclusive).
  int nextInt(int Lo, int Hi);

  /// Returns a uniform double in `[0, 1)`.
  double nextDouble();

  /// Returns a uniform double in `[Lo, Hi)`.
  double nextDouble(double Lo, double Hi);

  /// Returns true with probability \p P.
  bool nextBool(double P);

  /// Returns a standard-normal sample (Box-Muller).
  double nextGaussian();

  /// Returns an exponentially distributed sample with rate \p Lambda.
  double nextExponential(double Lambda);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (std::size_t I = Values.size(); I > 1; --I) {
      std::size_t J = static_cast<std::size_t>(nextBelow(I));
      std::swap(Values[I - 1], Values[J]);
    }
  }

  /// Returns a random permutation of `0..n-1`.
  std::vector<int> permutation(int N);

private:
  std::uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace mutk

#endif // MUTK_SUPPORT_RNG_H
