//===- support/SingleFlight.h - Per-key mutual exclusion --------*- C++ -*-===//
///
/// \file
/// A registry of mutexes keyed by 64-bit identifiers, used to
/// single-flight work that must not run concurrently for the *same* key
/// while staying fully parallel across different keys. The compact-set
/// pipeline serializes block solves per canonical fingerprint with it:
/// two concurrent pipelines (or two blocks of one parallel pipeline)
/// that condense to the same matrix would otherwise race one checkpoint
/// file under `ckpt/<fingerprint>.ckpt` and duplicate one B&B search.
///
/// Slots are created on first use and reclaimed when the last holder or
/// waiter releases, so the registry's footprint is bounded by the number
/// of keys *currently* contended, not ever seen.
///
/// Thread-safety analysis: the registry as a whole is one capability and
/// `Guard` is its scoped capability, so `-Wthread-safety` checks that
/// every `lock()` is balanced by a release. Which *key* a guard holds is
/// runtime data the static analysis cannot see — the internal slot
/// bookkeeping is therefore `MUTK_NO_THREAD_SAFETY_ANALYSIS` and the
/// per-key exclusion itself is covered by the TSan stress tests instead.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_SINGLEFLIGHT_H
#define MUTK_SUPPORT_SINGLEFLIGHT_H

#include "support/Mutex.h"
#include "support/ThreadAnnotations.h"

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace mutk {

/// Mutual exclusion per 64-bit key. `lock(K)` blocks while another
/// thread holds `K`; different keys never contend (beyond the brief
/// registry lookup).
class MUTK_CAPABILITY("mutex") KeyedMutex {
  struct Slot {
    /// Same class-level name for every slot of every registry: per-key
    /// locks are unordered among themselves by design (one thread never
    /// blocks on two slots of one registry), and the lock-order auditor
    /// exempts same-name pairs.
    Mutex Mu{"singleflight.slot"};
    /// Holders + waiters with a live reference; guarded by the
    /// registry's `MapMu`. The slot is erased when this drops to zero.
    int Refs = 0;
  };

public:
  /// RAII ownership of one key's lock.
  class MUTK_SCOPED_CAPABILITY Guard {
  public:
    Guard() = default;
    // The move operations shuffle slot ownership between objects, which
    // the static analysis cannot model (see the file comment).
    Guard(Guard &&Other) noexcept MUTK_NO_THREAD_SAFETY_ANALYSIS {
      *this = std::move(Other);
    }
    Guard &operator=(Guard &&Other) noexcept MUTK_NO_THREAD_SAFETY_ANALYSIS {
      // Self-move must be a no-op: releasing first and then reading
      // `Other`'s fields would unlock the slot and resurrect a stale
      // handle to it.
      if (this == &Other)
        return *this;
      release();
      Parent = Other.Parent;
      Held = Other.Held;
      Key = Other.Key;
      Other.Parent = nullptr;
      Other.Held = nullptr;
      return *this;
    }
    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;
    ~Guard() MUTK_RELEASE() { release(); }

    /// True when this guard holds a key (default-constructed guards
    /// hold nothing).
    explicit operator bool() const { return Held != nullptr; }

    /// Unlocks early (idempotent).
    void release() MUTK_RELEASE();

  private:
    friend class KeyedMutex;
    Guard(KeyedMutex *Parent, Slot *Held, std::uint64_t Key)
        : Parent(Parent), Held(Held), Key(Key) {}

    KeyedMutex *Parent = nullptr;
    Slot *Held = nullptr;
    std::uint64_t Key = 0;
  };

  /// Acquires the mutex for \p Key, blocking while another thread holds
  /// it. When \p Contended is non-null it is set to true iff the lock
  /// was not immediately available (the caller waited on another
  /// holder) — the pipeline counts those as single-flight waits.
  Guard lock(std::uint64_t Key, bool *Contended = nullptr) MUTK_ACQUIRE(*this);

  /// Number of live slots (contended or held keys); for tests.
  std::size_t liveSlots() const;

private:
  friend class Guard;
  void unlock(Slot *S, std::uint64_t Key) MUTK_NO_THREAD_SAFETY_ANALYSIS;

  mutable Mutex MapMu{"singleflight.map"};
  std::unordered_map<std::uint64_t, std::unique_ptr<Slot>> Slots
      MUTK_GUARDED_BY(MapMu);
};

} // namespace mutk

#endif // MUTK_SUPPORT_SINGLEFLIGHT_H
