//===- support/SingleFlight.h - Per-key mutual exclusion --------*- C++ -*-===//
///
/// \file
/// A registry of mutexes keyed by 64-bit identifiers, used to
/// single-flight work that must not run concurrently for the *same* key
/// while staying fully parallel across different keys. The compact-set
/// pipeline serializes block solves per canonical fingerprint with it:
/// two concurrent pipelines (or two blocks of one parallel pipeline)
/// that condense to the same matrix would otherwise race one checkpoint
/// file under `ckpt/<fingerprint>.ckpt` and duplicate one B&B search.
///
/// Slots are created on first use and reclaimed when the last holder or
/// waiter releases, so the registry's footprint is bounded by the number
/// of keys *currently* contended, not ever seen.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_SINGLEFLIGHT_H
#define MUTK_SUPPORT_SINGLEFLIGHT_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace mutk {

/// Mutual exclusion per 64-bit key. `lock(K)` blocks while another
/// thread holds `K`; different keys never contend (beyond the brief
/// registry lookup).
class KeyedMutex {
  struct Slot {
    std::mutex Mu;
    /// Holders + waiters with a live reference; guarded by the
    /// registry's `MapMu`. The slot is erased when this drops to zero.
    int Refs = 0;
  };

public:
  /// RAII ownership of one key's lock.
  class Guard {
  public:
    Guard() = default;
    Guard(Guard &&Other) noexcept { *this = std::move(Other); }
    Guard &operator=(Guard &&Other) noexcept {
      release();
      Parent = Other.Parent;
      Held = Other.Held;
      Key = Other.Key;
      Other.Parent = nullptr;
      Other.Held = nullptr;
      return *this;
    }
    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;
    ~Guard() { release(); }

    /// True when this guard holds a key (default-constructed guards
    /// hold nothing).
    explicit operator bool() const { return Held != nullptr; }

    /// Unlocks early (idempotent).
    void release();

  private:
    friend class KeyedMutex;
    Guard(KeyedMutex *Parent, Slot *Held, std::uint64_t Key)
        : Parent(Parent), Held(Held), Key(Key) {}

    KeyedMutex *Parent = nullptr;
    Slot *Held = nullptr;
    std::uint64_t Key = 0;
  };

  /// Acquires the mutex for \p Key, blocking while another thread holds
  /// it. When \p Contended is non-null it is set to true iff the lock
  /// was not immediately available (the caller waited on another
  /// holder) — the pipeline counts those as single-flight waits.
  Guard lock(std::uint64_t Key, bool *Contended = nullptr);

  /// Number of live slots (contended or held keys); for tests.
  std::size_t liveSlots() const;

private:
  friend class Guard;
  void unlock(Slot *S, std::uint64_t Key);

  mutable std::mutex MapMu;
  std::unordered_map<std::uint64_t, std::unique_ptr<Slot>> Slots;
};

} // namespace mutk

#endif // MUTK_SUPPORT_SINGLEFLIGHT_H
