//===- support/UnionFind.cpp - Disjoint-set forest ------------------------===//

#include "support/UnionFind.h"

#include <algorithm>
#include <map>

using namespace mutk;

UnionFind::UnionFind(std::size_t NumElements)
    : Parent(NumElements), Size(NumElements, 1),
      NumComponents(static_cast<int>(NumElements)) {
  for (std::size_t I = 0; I < NumElements; ++I)
    Parent[I] = static_cast<int>(I);
}

int UnionFind::find(int X) const {
  assert(X >= 0 && static_cast<std::size_t>(X) < Parent.size() &&
         "element out of range");
  int Root = X;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  // Path compression: point every node on the walk directly at the root.
  while (Parent[X] != Root) {
    int Next = Parent[X];
    Parent[X] = Root;
    X = Next;
  }
  return Root;
}

int UnionFind::unite(int A, int B) {
  int RA = find(A);
  int RB = find(B);
  if (RA == RB)
    return -1;
  if (Size[RA] < Size[RB])
    std::swap(RA, RB);
  Parent[RB] = RA;
  Size[RA] += Size[RB];
  --NumComponents;
  return RA;
}

std::vector<std::vector<int>> UnionFind::components() const {
  // Map each representative to the smallest member seen so groups come out
  // in a deterministic order.
  std::map<int, std::vector<int>> Groups;
  for (std::size_t I = 0; I < Parent.size(); ++I)
    Groups[find(static_cast<int>(I))].push_back(static_cast<int>(I));

  std::vector<std::vector<int>> Result;
  Result.reserve(Groups.size());
  for (auto &[Rep, Members] : Groups)
    Result.push_back(std::move(Members));
  std::sort(Result.begin(), Result.end(),
            [](const std::vector<int> &L, const std::vector<int> &R) {
              return L.front() < R.front();
            });
  return Result;
}
