//===- support/UnionFind.h - Disjoint-set forest ----------------*- C++ -*-===//
///
/// \file
/// A disjoint-set (union-find) forest with union by size and path
/// compression. Used by the Kruskal minimum-spanning-tree construction and
/// by the compact-set detector, both of which merge components in ascending
/// edge-weight order.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_UNIONFIND_H
#define MUTK_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace mutk {

/// Disjoint-set forest over the integers `0..n-1`.
///
/// Amortized near-constant `find`/`unite`. Components keep their size so a
/// caller can cheaply tell how large a merged block became.
class UnionFind {
public:
  /// Creates \p NumElements singleton components.
  explicit UnionFind(std::size_t NumElements);

  /// Returns the canonical representative of the component containing \p X.
  int find(int X) const;

  /// Merges the components of \p A and \p B.
  ///
  /// \returns the representative of the merged component, or -1 if \p A and
  /// \p B were already in the same component (no merge happened).
  int unite(int A, int B);

  /// Returns true if \p A and \p B are in the same component.
  bool connected(int A, int B) const { return find(A) == find(B); }

  /// Returns the number of elements in the component containing \p X.
  int componentSize(int X) const { return Size[find(X)]; }

  /// Returns the number of distinct components.
  int numComponents() const { return NumComponents; }

  /// Returns the total number of elements.
  std::size_t size() const { return Parent.size(); }

  /// Collects the members of every component, keyed by representative.
  ///
  /// Members appear in increasing order within each group, and groups are
  /// ordered by their smallest member, so the output is deterministic.
  std::vector<std::vector<int>> components() const;

private:
  // Mutable to allow path compression from const `find`.
  mutable std::vector<int> Parent;
  std::vector<int> Size;
  int NumComponents;
};

} // namespace mutk

#endif // MUTK_SUPPORT_UNIONFIND_H
