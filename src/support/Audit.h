//===- support/Audit.h - Runtime invariant audits ---------------*- C++ -*-===//
///
/// \file
/// `MUTK_AUDIT(Cond, Message)`: a runtime check of a mathematical or
/// structural invariant, compiled in only when the build defines
/// `MUTK_ENABLE_AUDIT` (the Debug and sanitizer presets do; Release does
/// not — see cmake/Sanitizers.cmake). A failed audit prints the
/// condition, location and message to stderr and aborts, so sanitizer CI
/// runs catch invariant drift exactly like they catch memory errors.
///
/// Contract:
///  * The condition must be side-effect free — in Release builds it is
///    never evaluated (the macro expands to nothing), so correctness must
///    not depend on it running.
///  * Audits may be arbitrarily expensive relative to asserts (full
///    metricity scans, tree-vs-matrix domination checks); call sites
///    bound the cost with `MaxAuditedSpecies` where the input size is
///    unbounded.
///  * Audits guard *invariants the code is supposed to establish*, not
///    user input; bad input must still be rejected with error paths.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_AUDIT_H
#define MUTK_SUPPORT_AUDIT_H

#if defined(MUTK_ENABLE_AUDIT)
#define MUTK_AUDIT_ENABLED 1
#else
#define MUTK_AUDIT_ENABLED 0
#endif

namespace mutk {

/// True when MUTK_AUDIT checks are compiled into this build.
constexpr bool auditsEnabled() { return MUTK_AUDIT_ENABLED != 0; }

/// Inputs larger than this skip the superlinear audits (O(n^2) tree
/// domination, O(n^3) metricity): big enough to cover every test and
/// stress workload, small enough that a sanitized Debug run stays fast.
constexpr int MaxAuditedSpecies = 256;

namespace detail {
/// Reports a failed audit and aborts. Out-of-line so the macro inlines
/// to a single compare-and-branch at the call site.
[[noreturn]] void auditFailure(const char *Condition, const char *File,
                               int Line, const char *Message);
} // namespace detail

} // namespace mutk

#if MUTK_AUDIT_ENABLED
#define MUTK_AUDIT(Cond, Message)                                            \
  do {                                                                       \
    if (!(Cond))                                                             \
      ::mutk::detail::auditFailure(#Cond, __FILE__, __LINE__, Message);      \
  } while (false)
#else
#define MUTK_AUDIT(Cond, Message)                                            \
  do {                                                                       \
  } while (false)
#endif

#endif // MUTK_SUPPORT_AUDIT_H
