//===- support/Stopwatch.h - Wall-clock timing helper -----------*- C++ -*-===//
///
/// \file
/// A tiny wall-clock stopwatch used by examples and benchmark harnesses to
/// report elapsed time for experiment rows.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_STOPWATCH_H
#define MUTK_SUPPORT_STOPWATCH_H

#include <chrono>

namespace mutk {

/// Measures wall-clock time from construction (or the last `restart`).
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Resets the start point to now.
  void restart() { Start = Clock::now(); }

  /// Returns seconds elapsed since the start point.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns milliseconds elapsed since the start point.
  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace mutk

#endif // MUTK_SUPPORT_STOPWATCH_H
