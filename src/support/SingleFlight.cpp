//===- support/SingleFlight.cpp - Per-key mutual exclusion ----------------===//

#include "support/SingleFlight.h"

using namespace mutk;

KeyedMutex::Guard KeyedMutex::lock(std::uint64_t Key, bool *Contended) {
  Slot *S = nullptr;
  {
    std::lock_guard<std::mutex> Lock(MapMu);
    std::unique_ptr<Slot> &Entry = Slots[Key];
    if (!Entry)
      Entry = std::make_unique<Slot>();
    S = Entry.get();
    // The reference is taken under MapMu *before* blocking on the slot
    // mutex, so the slot cannot be reclaimed while this thread waits.
    ++S->Refs;
  }
  if (S->Mu.try_lock()) {
    if (Contended)
      *Contended = false;
  } else {
    if (Contended)
      *Contended = true;
    S->Mu.lock();
  }
  return Guard(this, S, Key);
}

void KeyedMutex::unlock(Slot *S, std::uint64_t Key) {
  S->Mu.unlock();
  std::lock_guard<std::mutex> Lock(MapMu);
  if (--S->Refs == 0)
    Slots.erase(Key);
}

void KeyedMutex::Guard::release() {
  if (!Held)
    return;
  Parent->unlock(Held, Key);
  Parent = nullptr;
  Held = nullptr;
}

std::size_t KeyedMutex::liveSlots() const {
  std::lock_guard<std::mutex> Lock(MapMu);
  return Slots.size();
}
