//===- support/SingleFlight.cpp - Per-key mutual exclusion ----------------===//

#include "support/SingleFlight.h"

using namespace mutk;

// Which slot a thread ends up holding is runtime data; the registry-wide
// capability is attributed at the interface (`MUTK_ACQUIRE(*this)`) and
// the body is exempt from analysis.
KeyedMutex::Guard KeyedMutex::lock(std::uint64_t Key, bool *Contended)
    MUTK_NO_THREAD_SAFETY_ANALYSIS {
  Slot *S = nullptr;
  {
    MutexLock Lock(MapMu);
    std::unique_ptr<Slot> &Entry = Slots[Key];
    if (!Entry)
      Entry = std::make_unique<Slot>();
    S = Entry.get();
    // The reference is taken under MapMu *before* blocking on the slot
    // mutex, so the slot cannot be reclaimed while this thread waits.
    ++S->Refs;
  }
  if (S->Mu.try_lock()) {
    if (Contended)
      *Contended = false;
  } else {
    if (Contended)
      *Contended = true;
    S->Mu.lock();
  }
  return Guard(this, S, Key);
}

void KeyedMutex::unlock(Slot *S, std::uint64_t Key) {
  // The slot is released *before* MapMu is taken, so the two are never
  // nested and a blocked lock() can proceed immediately.
  S->Mu.unlock();
  MutexLock Lock(MapMu);
  if (--S->Refs == 0)
    Slots.erase(Key);
}

void KeyedMutex::Guard::release() MUTK_NO_THREAD_SAFETY_ANALYSIS {
  if (!Held)
    return;
  Parent->unlock(Held, Key);
  Parent = nullptr;
  Held = nullptr;
}

std::size_t KeyedMutex::liveSlots() const {
  MutexLock Lock(MapMu);
  return Slots.size();
}
