//===- support/LockOrder.h - Runtime lock-order auditor ---------*- C++ -*-===//
///
/// \file
/// Debug-only (`MUTK_ENABLE_AUDIT`) runtime complement to the static
/// thread-safety annotations: a per-thread acquisition-stack tracker
/// that *learns* pairwise lock ordering as the process runs and aborts
/// the moment any thread acquires two named locks in the opposite order
/// of a pairing seen before — i.e. the instant a deadlock becomes
/// *possible*, not the (rare, schedule-dependent) instant it happens.
///
/// `mutk::Mutex` (support/Mutex.h) calls these hooks from lock/unlock;
/// nothing else should. Rules:
///
///  * Only *named* mutexes participate in ordering (names are class
///    level: every `"cluster.link"` is one rank). Unnamed mutexes are
///    tracked as held but impose no order.
///  * Same-name pairs are exempt: per-key locks of one registry (the
///    `"singleflight.slot"` family) are unordered among themselves by
///    design — one thread never blocks on two slots of one registry.
///  * Non-blocking acquisitions (`try_lock`) record the edges they
///    establish but are never condemned: a try can't deadlock.
///
/// On an inversion the report carries both acquisition stacks — the
/// current thread's and the one recorded when the opposite edge was
/// learned — and aborts with the `MUTK AUDIT FAILED` banner so death
/// tests and CI triage treat it like any other audit. The documented
/// hierarchy the auditor ends up enforcing lives in docs/development.md
/// ("Lock hierarchy and thread-safety annotations").
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_LOCKORDER_H
#define MUTK_SUPPORT_LOCKORDER_H

#include "support/Audit.h"

namespace mutk::lockorder {

#if MUTK_AUDIT_ENABLED

/// Called immediately before blocking on \p Lk (or after a successful
/// try_lock, with \p Blocking false). Checks the learned edge table for
/// an inversion against every lock this thread holds, records the new
/// edges, and pushes \p Lk onto the thread's acquisition stack.
void noteAcquire(const void *Lk, const char *Name, bool Blocking);

/// Pops \p Lk from the thread's acquisition stack (out-of-order release
/// is fine; the entry is removed wherever it sits).
void noteRelease(const void *Lk);

/// Locks this thread currently holds (test hook).
int heldDepth();

#endif // MUTK_AUDIT_ENABLED

} // namespace mutk::lockorder

#endif // MUTK_SUPPORT_LOCKORDER_H
