//===- support/Rng.cpp - Deterministic random number generator ------------===//

#include "support/Rng.h"

#include <cmath>

using namespace mutk;

static std::uint64_t splitMix64(std::uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  std::uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static std::uint64_t rotl(std::uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(std::uint64_t Seed) {
  std::uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
  HasSpareGaussian = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const std::uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

std::uint64_t Rng::nextBelow(std::uint64_t Bound) {
  assert(Bound > 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t Threshold = -Bound % Bound;
  for (;;) {
    std::uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int Rng::nextInt(int Lo, int Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int>(nextBelow(
                  static_cast<std::uint64_t>(Hi - Lo) + 1));
}

double Rng::nextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextDouble(double Lo, double Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + (Hi - Lo) * nextDouble();
}

bool Rng::nextBool(double P) { return nextDouble() < P; }

double Rng::nextGaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = 2.0 * nextDouble() - 1.0;
    V = 2.0 * nextDouble() - 1.0;
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  const double Scale = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Scale;
  HasSpareGaussian = true;
  return U * Scale;
}

double Rng::nextExponential(double Lambda) {
  assert(Lambda > 0 && "rate must be positive");
  double U;
  do {
    U = nextDouble();
  } while (U == 0.0);
  return -std::log(U) / Lambda;
}

std::vector<int> Rng::permutation(int N) {
  std::vector<int> Perm(static_cast<std::size_t>(N));
  for (int I = 0; I < N; ++I)
    Perm[static_cast<std::size_t>(I)] = I;
  shuffle(Perm);
  return Perm;
}
