//===- support/Mutex.h - Annotated locking primitives -----------*- C++ -*-===//
///
/// \file
/// The repo's locking vocabulary: `std::mutex`-family primitives wrapped
/// so they (a) carry Clang Thread Safety Analysis capability attributes
/// (support/ThreadAnnotations.h) and (b) feed the debug-only lock-order
/// auditor (support/LockOrder.h). Raw `std::mutex` / `std::shared_mutex`
/// / `std::condition_variable` members are banned under src/ by
/// scripts/lint.sh layer 4 — a raw mutex cannot carry a capability, so
/// fields it guards would be invisible to `-Wthread-safety`.
///
///  * `Mutex` — a named capability. The name is *class level* (every
///    instance of `"cluster.link"` shares one rank in the lock
///    hierarchy); it is what the auditor orders and what inversion
///    reports print. Leave a mutex unnamed only when it is a leaf that
///    never nests (the auditor then ignores it).
///  * `MutexLock` — the scoped capability used at every call site,
///    relockable (`unlock()` / `lock()`) for the wait-loop and
///    drop-for-slow-work patterns.
///  * `CondVar` — condition variable bound to `MutexLock`. There are
///    deliberately no predicate-lambda overloads: TSA analyzes lambda
///    bodies as lock-free functions, so predicates reading guarded
///    fields would warn. Write the standard explicit loop instead:
///    `while (!cond) Cv.wait(Lock);`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SUPPORT_MUTEX_H
#define MUTK_SUPPORT_MUTEX_H

#include "support/LockOrder.h"
#include "support/ThreadAnnotations.h"

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace mutk {

/// An annotated, optionally named mutual-exclusion capability.
class MUTK_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  /// \p Name must be a string literal (stored, not copied); it ranks
  /// this mutex in the documented lock hierarchy.
  explicit Mutex(const char *Name) : Name(Name) {}

  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() MUTK_ACQUIRE() {
#if MUTK_AUDIT_ENABLED
    lockorder::noteAcquire(this, Name, /*Blocking=*/true);
#endif
    M.lock();
  }

  bool try_lock() MUTK_TRY_ACQUIRE(true) {
    if (!M.try_lock())
      return false;
#if MUTK_AUDIT_ENABLED
    lockorder::noteAcquire(this, Name, /*Blocking=*/false);
#endif
    return true;
  }

  void unlock() MUTK_RELEASE() {
#if MUTK_AUDIT_ENABLED
    lockorder::noteRelease(this);
#endif
    M.unlock();
  }

  /// The wrapped mutex, for `MutexLock`'s condition-variable plumbing.
  std::mutex &native() { return M; }

  const char *name() const { return Name; }

private:
  std::mutex M;
  const char *Name = nullptr;
};

/// RAII lock over `Mutex`; the scoped capability TSA tracks. Relock
/// support (`-Wthread-safety-beta`) covers loops that drop the lock for
/// slow work and re-take it.
class MUTK_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) MUTK_ACQUIRE(M)
      : Parent(&M), Inner(M.native(), std::defer_lock) {
    lockImpl();
  }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

  ~MutexLock() MUTK_RELEASE() {
    if (Inner.owns_lock())
      unlockImpl();
  }

  /// Re-acquire after `unlock()`.
  void lock() MUTK_ACQUIRE() { lockImpl(); }

  /// Drop the lock early (slow work, or handing off before a join).
  void unlock() MUTK_RELEASE() { unlockImpl(); }

private:
  friend class CondVar;

  void lockImpl() {
#if MUTK_AUDIT_ENABLED
    lockorder::noteAcquire(Parent, Parent->name(), /*Blocking=*/true);
#endif
    Inner.lock();
  }

  void unlockImpl() {
#if MUTK_AUDIT_ENABLED
    lockorder::noteRelease(Parent);
#endif
    Inner.unlock();
  }

  Mutex *Parent;
  std::unique_lock<std::mutex> Inner;
};

/// Condition variable over `Mutex`/`MutexLock`. Waits keep the caller's
/// capability from TSA's point of view (the release/re-acquire inside
/// is invisible and sound: the caller owns the lock before and after);
/// the auditor is told about it so the thread's acquisition stack stays
/// truthful while blocked.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  void wait(MutexLock &Lock) {
    beforeWait(Lock);
    Cv.wait(Lock.Inner);
    afterWait(Lock);
  }

  template <class Clock, class Duration>
  std::cv_status
  waitUntil(MutexLock &Lock,
            const std::chrono::time_point<Clock, Duration> &Deadline) {
    beforeWait(Lock);
    std::cv_status Status = Cv.wait_until(Lock.Inner, Deadline);
    afterWait(Lock);
    return Status;
  }

  template <class Rep, class Period>
  std::cv_status waitFor(MutexLock &Lock,
                         const std::chrono::duration<Rep, Period> &Dur) {
    return waitUntil(Lock, std::chrono::steady_clock::now() + Dur);
  }

  void notify_one() { Cv.notify_one(); }
  void notify_all() { Cv.notify_all(); }

private:
  static void beforeWait(MutexLock &Lock) {
#if MUTK_AUDIT_ENABLED
    lockorder::noteRelease(Lock.Parent);
#else
    (void)Lock;
#endif
  }

  static void afterWait(MutexLock &Lock) {
#if MUTK_AUDIT_ENABLED
    lockorder::noteAcquire(Lock.Parent, Lock.Parent->name(),
                           /*Blocking=*/true);
#else
    (void)Lock;
#endif
  }

  std::condition_variable Cv;
};

} // namespace mutk

#endif // MUTK_SUPPORT_MUTEX_H
