//===- compact/BlockScheduler.cpp - Parallel block DAG executor -----------===//

#include "compact/BlockScheduler.h"

#include "obs/Instruments.h"
#include "support/Mutex.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <thread>

using namespace mutk;

ThreadBudget mutk::splitThreadBudget(int RequestedBlocks,
                                     int RequestedPerBlock,
                                     bool ThreadedSolver, int SolvableBlocks,
                                     unsigned HardwareThreads) {
  // hardware_concurrency() may legally return 0 ("unknown").
  const int Hardware = std::max(1, static_cast<int>(HardwareThreads));
  const int BlockCap = std::max(1, SolvableBlocks);

  ThreadBudget Budget;
  if (RequestedBlocks == 1)
    Budget.Blocks = 1;
  else if (RequestedBlocks <= 0)
    Budget.Blocks = std::min(Hardware, BlockCap);
  else
    Budget.Blocks = std::min(RequestedBlocks, BlockCap);

  if (!ThreadedSolver)
    Budget.PerBlock = 1;
  else if (RequestedPerBlock > 0)
    Budget.PerBlock = RequestedPerBlock;
  else
    Budget.PerBlock = std::max(1, Hardware / Budget.Blocks);
  return Budget;
}

namespace {

/// Shared state of one scheduler run.
struct DagRun {
  const CompactHierarchy &Hierarchy;
  const std::function<PhyloTree(int Id)> &Solve;
  const std::function<PhyloTree(int Id, PhyloTree BlockTree,
                                std::vector<PhyloTree> ChildTrees)>
      &Assemble;
  bool Publish = false;

  /// Per-node slots, indexed by hierarchy node id. Each slot is written
  /// by exactly one thread per stage; the `Pending` counter publishes
  /// the writes (release on the decrement, acquire on the zero-read).
  std::vector<PhyloTree> BlockTrees;
  std::vector<PhyloTree> Assembled;
  std::vector<std::atomic<int>> Pending;

  Mutex Mu{"dag.run"};
  CondVar Cv;
  /// Solve tasks not yet claimed, largest block first.
  std::deque<int> Ready MUTK_GUARDED_BY(Mu);
  /// Root's subtree finished.
  bool RootDone MUTK_GUARDED_BY(Mu) = false;
  /// First failure; once set, workers drain without starting new solves.
  std::exception_ptr Error MUTK_GUARDED_BY(Mu);

  DagRun(const CompactHierarchy &Hierarchy,
         const std::function<PhyloTree(int Id)> &Solve,
         const std::function<PhyloTree(int Id, PhyloTree,
                                       std::vector<PhyloTree>)> &Assemble)
      : Hierarchy(Hierarchy), Solve(Solve), Assemble(Assemble),
        BlockTrees(static_cast<std::size_t>(Hierarchy.numNodes())),
        Assembled(static_cast<std::size_t>(Hierarchy.numNodes())),
        Pending(static_cast<std::size_t>(Hierarchy.numNodes())) {}

  bool aborted() {
    MutexLock Lock(Mu);
    return Error != nullptr;
  }

  void fail(std::exception_ptr E) {
    MutexLock Lock(Mu);
    if (!Error)
      Error = std::move(E);
    Ready.clear();
    Cv.notify_all();
  }

  /// A node's last dependency retired: assemble it and cascade upward.
  /// Runs on the worker that performed the final decrement.
  void finish(int Id) {
    const CompactHierarchy::Node &Node = Hierarchy.node(Id);
    std::vector<PhyloTree> ChildTrees;
    ChildTrees.reserve(Node.Children.size());
    for (int Child : Node.Children) {
      const CompactHierarchy::Node &C = Hierarchy.node(Child);
      if (C.isSingleton()) {
        PhyloTree Leaf;
        Leaf.addLeaf(C.Species.front());
        ChildTrees.push_back(std::move(Leaf));
      } else {
        ChildTrees.push_back(
            std::move(Assembled[static_cast<std::size_t>(Child)]));
      }
    }
    Assembled[static_cast<std::size_t>(Id)] =
        Assemble(Id, std::move(BlockTrees[static_cast<std::size_t>(Id)]),
                 std::move(ChildTrees));

    const int Parent = Node.Parent;
    if (Parent < 0) {
      MutexLock Lock(Mu);
      RootDone = true;
      Cv.notify_all();
      return;
    }
    if (Pending[static_cast<std::size_t>(Parent)].fetch_sub(
            1, std::memory_order_acq_rel) == 1)
      finish(Parent);
  }

  void workerLoop() {
    obs::PipelineInstruments &I = obs::pipelineInstruments();
    for (;;) {
      int Id = -1;
      {
        MutexLock Lock(Mu);
        while (Ready.empty() && !RootDone && !Error)
          Cv.wait(Lock);
        if (Ready.empty())
          return;
        Id = Ready.front();
        Ready.pop_front();
      }
      try {
        if (Publish)
          I.BlocksInflight.add(1);
        Stopwatch Timer;
        PhyloTree Tree = Solve(Id);
        if (Publish) {
          I.BlockSolveMillis.record(Timer.milliseconds());
          I.BlocksInflight.sub(1);
        }
        BlockTrees[static_cast<std::size_t>(Id)] = std::move(Tree);
        if (Pending[static_cast<std::size_t>(Id)].fetch_sub(
                1, std::memory_order_acq_rel) == 1)
          finish(Id);
      } catch (...) {
        if (Publish)
          I.BlocksInflight.sub(1);
        fail(std::current_exception());
        return;
      }
    }
  }
};

} // namespace

PhyloTree mutk::scheduleBlockDag(
    const CompactHierarchy &Hierarchy, int NumThreads, bool PublishMetrics,
    const std::function<PhyloTree(int Id)> &Solve,
    const std::function<PhyloTree(int Id, PhyloTree BlockTree,
                                  std::vector<PhyloTree> ChildTrees)>
        &Assemble) {
  DagRun Run(Hierarchy, Solve, Assemble);
  Run.Publish = PublishMetrics;

  std::vector<int> Internal = Hierarchy.internalNodesTopDown();
  for (int Id : Internal) {
    int InternalChildren = 0;
    for (int Child : Hierarchy.node(Id).Children)
      if (!Hierarchy.node(Child).isSingleton())
        ++InternalChildren;
    // One pending unit for the node's own solve plus one per child
    // subtree still being assembled.
    Run.Pending[static_cast<std::size_t>(Id)].store(
        1 + InternalChildren, std::memory_order_relaxed);
  }

  // Every solve is ready from the start; order largest-first so a big
  // block never becomes the lone straggler behind a drained queue.
  std::sort(Internal.begin(), Internal.end(), [&](int A, int B) {
    const std::size_t SizeA = Hierarchy.node(A).Children.size();
    const std::size_t SizeB = Hierarchy.node(B).Children.size();
    if (SizeA != SizeB)
      return SizeA > SizeB;
    return A < B;
  });
  {
    // No workers exist yet; the lock is only for the analysis.
    MutexLock Lock(Run.Mu);
    Run.Ready.assign(Internal.begin(), Internal.end());
  }
  if (PublishMetrics)
    obs::pipelineInstruments().ReadyBlocks.inc(Internal.size());

  const int PoolSize =
      std::max(1, std::min<int>(NumThreads,
                                static_cast<int>(Internal.size())));
  std::vector<std::thread> Pool;
  Pool.reserve(static_cast<std::size_t>(PoolSize));
  for (int T = 0; T < PoolSize; ++T)
    Pool.emplace_back([&Run] { Run.workerLoop(); });

  {
    MutexLock Lock(Run.Mu);
    while (!Run.RootDone && !Run.Error)
      Run.Cv.wait(Lock);
  }
  for (std::thread &T : Pool)
    T.join();
  {
    MutexLock Lock(Run.Mu);
    if (Run.Error)
      std::rethrow_exception(Run.Error);
  }
  return std::move(Run.Assembled[static_cast<std::size_t>(Hierarchy.rootId())]);
}
