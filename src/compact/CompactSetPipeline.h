//===- compact/CompactSetPipeline.h - The paper's fast technique *- C++ -*-===//
///
/// \file
/// The PaCT 2005 contribution end-to-end (paper §3): find all compact
/// sets of the distance matrix, convert the matrix into the hierarchy of
/// small condensed matrices D', solve every D' with branch-and-bound (or
/// UPGMM beyond a size cap), and merge the subtrees T' into one
/// ultrametric tree T.
///
/// With the *maximum* condensation the merged tree is always a feasible
/// ultrametric tree for the original matrix, and compactness guarantees
/// the merge never has to adjust heights: the distance between two blocks
/// strictly exceeds every block's diameter.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_COMPACT_COMPACTSETPIPELINE_H
#define MUTK_COMPACT_COMPACTSETPIPELINE_H

#include "bnb/Checkpoint.h"
#include "bnb/SequentialBnb.h"
#include "graph/CompactSets.h"
#include "matrix/Condense.h"
#include "sim/ClusterSim.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace mutk {

/// Which engine solves each condensed matrix.
enum class BlockSolver {
  Sequential,       ///< Algorithm BBU per block.
  Threaded,         ///< Shared-memory parallel B&B (`parallel/ThreadedBnb`)
                    ///< with `PipelineOptions::ThreadsPerBlock` workers.
  SimulatedCluster, ///< Parallel B&B on the simulated cluster per block.
};

/// A memoized block solution. The tree's leaves carry *canonical* labels
/// (`matrix/Fingerprint.h` maxmin order of the condensed matrix), so one
/// entry serves every relabeling of the same block.
struct BlockCacheEntry {
  PhyloTree Tree;
  double Cost = 0.0;
  bool Exact = true;
};

/// Optional memoization hooks consulted for every condensed matrix D'.
///
/// `Lookup` receives the block's relabeling-invariant fingerprint and the
/// canonical bytes backing it (see `CanonicalForm`); implementations must
/// compare the bytes before returning a hit so hash collisions stay
/// harmless. `Store` is called after a fresh solve with the entry already
/// in canonical labels. Both may be called concurrently from several
/// pipelines sharing one cache.
struct BlockCacheHooks {
  std::function<std::optional<BlockCacheEntry>(
      std::uint64_t Key, const std::vector<std::uint8_t> &Bytes)>
      Lookup;
  std::function<void(std::uint64_t Key,
                     const std::vector<std::uint8_t> &Bytes,
                     const BlockCacheEntry &Entry)>
      Store;
};

/// Optional per-compact-set checkpoint/resume hooks. Each exactly-solved
/// block is an independent branch-and-bound search; with these hooks the
/// pipeline checkpoints every such search under the block's canonical
/// fingerprint (cadence from `PipelineOptions::Bnb`) and, when a prior
/// run was interrupted, resumes each unfinished block from its saved
/// state instead of from the root. Only the sequential block solver
/// checkpoints (the simulated-cluster solver is itself a simulation).
/// The solver re-validates the matrix fingerprint before resuming, so a
/// stale or colliding state costs a fresh solve, never a wrong tree.
struct BlockCheckpointHooks {
  /// Returns the sink that persists checkpoints for the block with this
  /// canonical key (null = do not checkpoint this block).
  std::function<std::unique_ptr<CheckpointSink>(std::uint64_t Key)> SinkFor;
  /// Loads a previously-captured state for the block (nullopt = none).
  std::function<std::optional<SearchCheckpoint>(std::uint64_t Key)> Load;
  /// The block finished — its checkpoint file is obsolete.
  std::function<void(std::uint64_t Key)> Done;
};

/// Default per-block B&B options: the pipeline turns the paper's 3-3
/// third-species constraint on. Compact-set blocks are clustered by
/// construction — exactly the structured shape on which `ThirdSpecies`
/// is proven cost-preserving (tests/bnb_test.cpp) — so the filter prunes
/// for free. Callers can still override `PipelineOptions::Bnb`.
inline BnbOptions defaultPipelineBnb() {
  BnbOptions B;
  B.ThreeThree = ThreeThreeMode::ThirdSpecies;
  return B;
}

/// Options of the decomposition pipeline.
struct PipelineOptions {
  /// How cross-block distances collapse into D' entries; the paper
  /// studies Maximum (the only mode guaranteeing feasibility).
  CondenseMode Mode = CondenseMode::Maximum;
  /// Options forwarded to the per-block B&B (3-3 third-species pruning
  /// on by default, see `defaultPipelineBnb`).
  BnbOptions Bnb = defaultPipelineBnb();
  /// Condensed matrices larger than this are solved heuristically with
  /// UPGMM instead of exactly (keeps worst-case time bounded; reported
  /// per block).
  int MaxExactBlockSize = 16;
  BlockSolver Solver = BlockSolver::Sequential;
  /// Cluster model used when `Solver == SimulatedCluster`.
  ClusterSpec Cluster;
  /// Condensed matrices solved concurrently by the block DAG scheduler
  /// (`compact/BlockScheduler.h`). 1 = the classic sequential recursive
  /// walk; 0 = auto-tune from `hardware_concurrency`; K > 1 = that many
  /// pool threads (capped at the number of blocks). The merged tree is
  /// identical for every value — only wall-clock changes.
  int BlockConcurrency = 1;
  /// B&B workers inside each block solve when `Solver == Threaded`
  /// (0 = auto: divide the remaining hardware threads among the
  /// concurrent blocks). Ignored by the other solvers.
  int ThreadsPerBlock = 0;
  /// Run a subtree-prune-and-regraft polish on the merged tree
  /// (`heur/NniSearch.h`) — the papers' future-work extension. Never
  /// increases the cost; most useful when blocks fell back to UPGMM.
  bool PolishTopology = false;
  /// When set, every block solve first consults the cache (borrowed, must
  /// outlive the pipeline run).
  const BlockCacheHooks *BlockCache = nullptr;
  /// When set, exact block solves checkpoint/resume through these hooks
  /// (borrowed, must outlive the pipeline run).
  const BlockCheckpointHooks *BlockCheckpoint = nullptr;
};

/// Accounting for one condensed matrix D'.
struct BlockReport {
  /// Hierarchy node this block tree belongs to.
  int HierarchyNode = -1;
  /// Size of the condensed matrix (number of partition blocks).
  int NumBlocks = 0;
  /// Weight of the block tree (over D').
  double Cost = 0.0;
  /// False when the size cap forced the UPGMM fallback.
  bool Exact = true;
  /// True when the block tree was replayed from the block cache (then
  /// `Branched == 0` and no solver ran).
  bool FromCache = false;
  /// BBT nodes branched solving this block.
  std::uint64_t Branched = 0;
  /// Virtual makespan of the block's cluster run (0 for Sequential).
  double VirtualTime = 0.0;
};

/// Result of the full pipeline.
struct PipelineResult {
  /// The merged ultrametric tree over all species, original labels.
  PhyloTree Tree;
  /// Its weight (the paper's "total tree cost").
  double Cost = 0.0;
  /// The detected compact sets.
  std::vector<CompactSet> Sets;
  std::vector<BlockReport> Blocks;
  /// Aggregate solver counters across blocks.
  BnbStats TotalStats;
  /// Sum of per-block virtual makespans (blocks solved one after the
  /// other on one cluster).
  double TotalVirtualTime = 0.0;
  /// Max per-block virtual makespan (blocks are independent, so this is
  /// the virtual time with one cluster per block — the paper's
  /// "constructing evolutionary tree in parallel").
  double ParallelVirtualTime = 0.0;
  /// Number of merge steps that had to raise a height to keep edge
  /// weights nonnegative. Always 0 for CondenseMode::Maximum.
  int HeightClamps = 0;
  /// SPR moves applied by the optional polish (0 when disabled or when
  /// the merged tree was already SPR-optimal).
  int PolishMoves = 0;
  /// The resolved thread-budget split this run actually used: number of
  /// concurrent block solves (1 = sequential walk) × B&B workers per
  /// block. Reported so benchmarks and tests can confirm the auto-tune.
  int BlockConcurrency = 1;
  int WorkersPerBlock = 1;
};

/// Runs the fast technique on \p M.
PipelineResult buildCompactSetTree(const DistanceMatrix &M,
                                   const PipelineOptions &Options = {});

} // namespace mutk

#endif // MUTK_COMPACT_COMPACTSETPIPELINE_H
