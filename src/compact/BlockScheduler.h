//===- compact/BlockScheduler.h - Parallel block DAG executor ---*- C++ -*-===//
///
/// \file
/// The compact-set decomposition produces a laminar hierarchy of
/// *independent* condensed matrices — the easiest parallelism the paper
/// leaves on the table. This scheduler solves every hierarchy block on a
/// shared pool of threads and assembles parent subtrees the moment their
/// children complete: a small DAG executor with one completion counter
/// per node, no barrier per level.
///
/// Every block solve is ready immediately (condensation needs only the
/// input matrix), so the ready queue starts full, ordered largest block
/// first (an LPT-style heuristic against a long straggler at the end).
/// Assembly is the cheap part and runs inline on whichever worker
/// retires a node's last dependency, cascading toward the root.
///
/// The thread budget composes with the per-block solver: `K` concurrent
/// blocks times `W` branch-and-bound workers inside each block (only the
/// `BlockSolver::Threaded` engine uses `W > 1`), auto-tuned from
/// `std::thread::hardware_concurrency` via `splitThreadBudget`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_COMPACT_BLOCKSCHEDULER_H
#define MUTK_COMPACT_BLOCKSCHEDULER_H

#include "graph/Hierarchy.h"
#include "tree/PhyloTree.h"

#include <functional>
#include <vector>

namespace mutk {

/// How one pipeline run's thread budget splits between concurrent block
/// solves and workers inside each solve.
struct ThreadBudget {
  /// Blocks solved concurrently (K). 1 = the sequential walk.
  int Blocks = 1;
  /// B&B worker threads per block solve (W); only `BlockSolver::Threaded`
  /// runs more than one.
  int PerBlock = 1;
};

/// Resolves the user-facing knobs into a concrete K×W split.
///
/// \param RequestedBlocks  `PipelineOptions::BlockConcurrency`: 1 keeps
///        the sequential walk, 0 auto-tunes from the hardware, >1 is
///        taken literally (capped at \p SolvableBlocks — extra pool
///        threads would never find work).
/// \param RequestedPerBlock `PipelineOptions::ThreadsPerBlock`: 0
///        divides the remaining hardware threads among the K concurrent
///        blocks, >0 is taken literally.
/// \param ThreadedSolver   whether the per-block engine can use W > 1.
/// \param SolvableBlocks   internal hierarchy nodes (block solves) in
///        this run.
/// \param HardwareThreads  `std::thread::hardware_concurrency()` (0 is
///        treated as 1, as the standard allows it to be unknown).
ThreadBudget splitThreadBudget(int RequestedBlocks, int RequestedPerBlock,
                               bool ThreadedSolver, int SolvableBlocks,
                               unsigned HardwareThreads);

/// Solves every internal node of \p Hierarchy and assembles the root's
/// subtree, running up to \p NumThreads block solves concurrently.
///
/// \p Solve is invoked once per internal node, concurrently from pool
/// threads — it must be thread-safe across distinct nodes. \p Assemble
/// is invoked once per internal node after its own solve *and* every
/// child subtree finished; `ChildTrees` holds one assembled tree per
/// child in `Node::Children` order (singleton children arrive as
/// one-leaf trees). Assembly of independent nodes may also run
/// concurrently, but a node's assembly is always ordered after its
/// children's (completion-counter release/acquire).
///
/// The first exception thrown by either callback aborts the run: no new
/// solves start, in-flight ones finish, and the exception is rethrown
/// on the calling thread.
PhyloTree scheduleBlockDag(
    const CompactHierarchy &Hierarchy, int NumThreads, bool PublishMetrics,
    const std::function<PhyloTree(int Id)> &Solve,
    const std::function<PhyloTree(int Id, PhyloTree BlockTree,
                                  std::vector<PhyloTree> ChildTrees)>
        &Assemble);

} // namespace mutk

#endif // MUTK_COMPACT_BLOCKSCHEDULER_H
