//===- compact/CompactSetPipeline.cpp - The paper's fast technique --------===//

#include "compact/CompactSetPipeline.h"

#include "bnb/Topology.h"
#include "graph/Hierarchy.h"
#include "heur/NniSearch.h"
#include "heur/Upgma.h"
#include "matrix/Fingerprint.h"
#include "matrix/MetricUtils.h"
#include "obs/Instruments.h"
#include "support/Audit.h"

#include <algorithm>
#include <cassert>

using namespace mutk;

namespace {

/// Mutable state threaded through the recursive assembly.
struct PipelineState {
  const DistanceMatrix &M;
  const PipelineOptions &Options;
  const CompactHierarchy &Hierarchy;
  PipelineResult &Result;
};

/// Remaps the leaf labels of \p Tree through \p Map (`new = Map[old]`).
PhyloTree relabelLeaves(const PhyloTree &Tree, const std::vector<int> &Map) {
  PhyloTree Out;
  Out.setRoot(Out.adoptSubtree(Tree, Map));
  return Out;
}

/// Solves one condensed matrix and reports the accounting.
PhyloTree solveBlock(PipelineState &State, const DistanceMatrix &Condensed,
                     int HierarchyNode) {
  BlockReport Report;
  Report.HierarchyNode = HierarchyNode;
  Report.NumBlocks = Condensed.size();

  const bool Publish = State.Options.Bnb.PublishMetrics;
  if (Publish) {
    obs::PipelineInstruments &I = obs::pipelineInstruments();
    I.Blocks.inc();
    I.BlockSize.record(static_cast<double>(Condensed.size()));
  }

  // Consult the block cache: the canonical fingerprint is invariant under
  // block relabeling, so a hit replays the stored canonical tree with the
  // leaves permuted back into this block's label space.
  const BlockCacheHooks *Cache = State.Options.BlockCache;
  const BlockCheckpointHooks *Ckpt = State.Options.BlockCheckpoint;
  CanonicalForm Form;
  bool HaveForm = false;
  if ((Cache || Ckpt) && Condensed.size() >= 2) {
    Form = canonicalForm(Condensed);
    HaveForm = true;
  }
  if (Cache && HaveForm) {
    if (Cache->Lookup) {
      if (std::optional<BlockCacheEntry> Hit =
              Cache->Lookup(Form.Key, Form.Bytes)) {
        Report.Exact = Hit->Exact;
        Report.Cost = Hit->Cost;
        Report.FromCache = true;
        if (Publish)
          obs::pipelineInstruments().BlockCacheHits.inc();
        // The block is solved for good; a checkpoint left by an
        // interrupted earlier run is obsolete.
        if (Ckpt && Ckpt->Done)
          Ckpt->Done(Form.Key);
        State.Result.Blocks.push_back(Report);
        return relabelLeaves(Hit->Tree, Form.Perm);
      }
    }
  }

  // Per-block checkpoint/resume (sequential exact solves only: the
  // UPGMM fallback is instant and the simulated cluster has no durable
  // state worth saving).
  const bool ExactPath =
      Condensed.size() <= State.Options.MaxExactBlockSize &&
      Condensed.size() <= MaxBnbSpecies;
  BnbOptions BlockBnb = State.Options.Bnb;
  std::unique_ptr<CheckpointSink> Sink;
  std::optional<SearchCheckpoint> Resume;
  if (Ckpt && HaveForm && ExactPath &&
      State.Options.Solver == BlockSolver::Sequential &&
      !BlockBnb.CollectAllOptimal) {
    if (Ckpt->SinkFor)
      Sink = Ckpt->SinkFor(Form.Key);
    BlockBnb.Checkpoint = Sink.get();
    if (Ckpt->Load) {
      Resume = Ckpt->Load(Form.Key);
      if (Resume)
        BlockBnb.ResumeFrom = &*Resume;
    }
  }

  PhyloTree Tree;
  if (!ExactPath) {
    Tree = upgmm(Condensed);
    Report.Exact = false;
    Report.Cost = Tree.weight();
  } else if (State.Options.Solver == BlockSolver::SimulatedCluster) {
    ClusterSimResult Solved = simulateClusterBnb(
        Condensed, State.Options.Cluster, State.Options.Bnb);
    Tree = std::move(Solved.Tree);
    Report.Cost = Solved.Cost;
    Report.Branched = Solved.Stats.Branched;
    Report.VirtualTime = Solved.Makespan;
    Report.Exact = Solved.Stats.Complete;
    State.Result.TotalStats.Branched += Solved.Stats.Branched;
    State.Result.TotalStats.Generated += Solved.Stats.Generated;
    State.Result.TotalStats.PrunedByBound += Solved.Stats.PrunedByBound;
    State.Result.TotalStats.PrunedByThreeThree +=
        Solved.Stats.PrunedByThreeThree;
    State.Result.TotalStats.UbUpdates += Solved.Stats.UbUpdates;
  } else {
    MutResult Solved = solveMutSequential(Condensed, BlockBnb);
    Tree = std::move(Solved.Tree);
    Report.Cost = Solved.Cost;
    Report.Branched = Solved.Stats.Branched;
    Report.Exact = Solved.Stats.Complete;
    State.Result.TotalStats.Branched += Solved.Stats.Branched;
    State.Result.TotalStats.Generated += Solved.Stats.Generated;
    State.Result.TotalStats.PrunedByBound += Solved.Stats.PrunedByBound;
    State.Result.TotalStats.PrunedByThreeThree +=
        Solved.Stats.PrunedByThreeThree;
    State.Result.TotalStats.UbUpdates += Solved.Stats.UbUpdates;
  }

  // A completed exact search makes the block's checkpoint obsolete; an
  // interrupted one (budget/deadline truncation) keeps it so the next
  // attempt resumes instead of restarting.
  if (Ckpt && Ckpt->Done && HaveForm && ExactPath && Report.Exact)
    Ckpt->Done(Form.Key);

  if (Cache && Cache->Store && Condensed.size() >= 2) {
    // Store in canonical labels: canonical index k sits where the solve
    // saw block index Form.Perm[k].
    std::vector<int> Inverse(Form.Perm.size());
    for (std::size_t K = 0; K < Form.Perm.size(); ++K)
      Inverse[static_cast<std::size_t>(Form.Perm[K])] = static_cast<int>(K);
    BlockCacheEntry Entry;
    Entry.Tree = relabelLeaves(Tree, Inverse);
    Entry.Cost = Report.Cost;
    Entry.Exact = Report.Exact;
    Cache->Store(Form.Key, Form.Bytes, Entry);
  }

  if (Publish) {
    obs::PipelineInstruments &I = obs::pipelineInstruments();
    if (Report.Exact)
      I.ExactBlocks.inc();
    else
      I.HeuristicBlocks.inc();
  }
  State.Result.TotalVirtualTime += Report.VirtualTime;
  State.Result.ParallelVirtualTime =
      std::max(State.Result.ParallelVirtualTime, Report.VirtualTime);
  State.Result.Blocks.push_back(Report);
  return Tree;
}

/// Assembles the final tree for hierarchy node \p Id: solves its
/// condensed matrix and grafts each child's assembled subtree in place of
/// the corresponding block leaf. Returns the subtree in *original*
/// species ids with consistent heights.
PhyloTree assemble(PipelineState &State, int Id);

/// Copies \p BlockNode of \p BlockTree into \p Out, substituting block
/// leaves by the trees in \p ChildTrees. Returns the new node index and
/// updates \p Clamps when a parent height had to be raised.
int graft(const PhyloTree &BlockTree, int BlockNode,
          const std::vector<PhyloTree> &ChildTrees, PhyloTree &Out,
          int &Clamps) {
  const PhyloNode &N = BlockTree.node(BlockNode);
  if (N.isLeaf()) {
    const PhyloTree &Child = ChildTrees[static_cast<std::size_t>(N.Leaf)];
    std::vector<int> Identity;
    int MaxSpecies = -1;
    for (int S : Child.allSpecies())
      MaxSpecies = std::max(MaxSpecies, S);
    Identity.resize(static_cast<std::size_t>(MaxSpecies) + 1);
    for (int S = 0; S <= MaxSpecies; ++S)
      Identity[static_cast<std::size_t>(S)] = S;
    return Out.adoptSubtree(Child, Identity);
  }

  int Left = graft(BlockTree, N.Left, ChildTrees, Out, Clamps);
  int Right = graft(BlockTree, N.Right, ChildTrees, Out, Clamps);
  double Height = N.Height;
  double ChildMax =
      std::max(Out.node(Left).Height, Out.node(Right).Height);
  if (ChildMax > Height) {
    // Only possible for Minimum/Average condensation: the block distance
    // understated a child subtree's diameter.
    Height = ChildMax;
    ++Clamps;
  }
  return Out.addInternal(Left, Right, Height);
}

PhyloTree assemble(PipelineState &State, int Id) {
  const CompactHierarchy::Node &Node = State.Hierarchy.node(Id);
  if (Node.isSingleton()) {
    PhyloTree Leaf;
    Leaf.addLeaf(Node.Species.front());
    return Leaf;
  }

  std::vector<std::vector<int>> Blocks = State.Hierarchy.partitionAt(Id);
  DistanceMatrix Condensed = condense(State.M, Blocks, State.Options.Mode);
  PhyloTree BlockTree = solveBlock(State, Condensed, Id);

  std::vector<PhyloTree> ChildTrees;
  ChildTrees.reserve(Node.Children.size());
  for (int Child : Node.Children)
    ChildTrees.push_back(assemble(State, Child));

  PhyloTree Out;
  int Root =
      graft(BlockTree, BlockTree.root(), ChildTrees, Out,
            State.Result.HeightClamps);
  Out.setRoot(Root);
  return Out;
}

} // namespace

PipelineResult mutk::buildCompactSetTree(const DistanceMatrix &M,
                                         const PipelineOptions &Options) {
  PipelineResult Result;
  if (M.size() == 0)
    return Result;
  if (M.size() == 1) {
    Result.Tree.addLeaf(0);
    Result.Tree.setNames(M.names());
    return Result;
  }

  // The MUT problem (and the compactness lemmas) assume a metric input;
  // non-metric matrices reach here only through a bug upstream.
  MUTK_AUDIT(M.size() > MaxAuditedSpecies || isMetric(M),
             "pipeline input must satisfy the triangle inequality "
             "(Definition 2)");

  Result.Sets = findCompactSets(M);
  MUTK_AUDIT(isLaminarFamily(Result.Sets),
             "detected compact sets must be laminar (Lemma 3)");
  CompactHierarchy Hierarchy(M.size(), Result.Sets);

  if (Options.Bnb.PublishMetrics)
    obs::pipelineInstruments().Runs.inc();
  PipelineState State{M, Options, Hierarchy, Result};
  PhyloTree Tree = assemble(State, Hierarchy.rootId());
  Tree.setNames(M.names());
  if (Options.PolishTopology) {
    // SPR strictly contains the NNI neighborhood; complete-linkage block
    // trees are frequently NNI-optimal but not SPR-optimal.
    NniReport Polish = sprImprove(Tree, M);
    Result.PolishMoves = Polish.MovesApplied;
  }
  Result.Cost = Tree.weight();
  Result.Tree = std::move(Tree);
  if (Options.Bnb.PublishMetrics && Result.HeightClamps > 0)
    obs::pipelineInstruments().HeightClamps.inc(
        static_cast<std::uint64_t>(Result.HeightClamps));
  // Maximum condensation is the mode with the paper's feasibility
  // guarantee: the merged tree never understates a distance, and no
  // merge step had to clamp a height (Minimum/Average trade exactly
  // this away, so they are exempt).
  if (Options.Mode == CondenseMode::Maximum) {
    MUTK_AUDIT(Result.HeightClamps == 0,
               "maximum condensation must never clamp merge heights");
    MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
               "merged tree must be ultrametric");
    MUTK_AUDIT(M.size() > MaxAuditedSpecies ||
                   Result.Tree.dominatesMatrix(M),
               "merged tree must dominate the input matrix (d_T >= M)");
  }
  return Result;
}
