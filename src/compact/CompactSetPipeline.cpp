//===- compact/CompactSetPipeline.cpp - The paper's fast technique --------===//

#include "compact/CompactSetPipeline.h"

#include "bnb/Topology.h"
#include "compact/BlockScheduler.h"
#include "graph/Hierarchy.h"
#include "heur/NniSearch.h"
#include "heur/Upgma.h"
#include "matrix/Fingerprint.h"
#include "matrix/MetricUtils.h"
#include "obs/Instruments.h"
#include "parallel/ThreadedBnb.h"
#include "support/Audit.h"
#include "support/SingleFlight.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace mutk;

namespace {

/// Serializes block solves per canonical fingerprint, process-wide: the
/// cache and checkpoint hooks may be shared by every pipeline in the
/// process (the service shares one state dir across workers), so two
/// identical blocks — whether in one parallel run or in two concurrent
/// requests — must not race one `ckpt/<fingerprint>.ckpt` file or solve
/// the same matrix twice. The second solver waits, then replays the
/// first's freshly stored cache entry.
KeyedMutex &blockFlight() {
  static KeyedMutex Flight;
  return Flight;
}

/// Read-only inputs shared by every block solve of one pipeline run.
struct SolveContext {
  const DistanceMatrix &M;
  const PipelineOptions &Options;
  const CompactHierarchy &Hierarchy;
  /// B&B workers inside each block solve (`BlockSolver::Threaded`).
  int WorkersPerBlock = 1;
};

/// Everything one block solve reports back, written by exactly one
/// thread and merged into the `PipelineResult` deterministically (in
/// hierarchy preorder) after all solves finished.
struct BlockOutcome {
  BlockReport Report;
  /// Contribution to `PipelineResult::TotalStats`.
  BnbStats Stats;
  /// Heights raised while grafting this node's subtree.
  int HeightClamps = 0;
};

/// Remaps the leaf labels of \p Tree through \p Map (`new = Map[old]`).
PhyloTree relabelLeaves(const PhyloTree &Tree, const std::vector<int> &Map) {
  PhyloTree Out;
  Out.setRoot(Out.adoptSubtree(Tree, Map));
  return Out;
}

/// Solves the condensed matrix of hierarchy node \p Id and fills \p Out.
/// Thread-safe across distinct calls: shared state is only reached
/// through the (caller-synchronized) cache/checkpoint hooks, which are
/// single-flighted per fingerprint below.
///
/// Opted out of thread-safety analysis: the single-flight guard is
/// default-constructed and conditionally move-assigned from
/// `KeyedMutex::lock`, a hand-off the scoped-capability model cannot
/// express (which key is held is runtime data).
PhyloTree solveOneBlock(const SolveContext &Ctx, int Id, BlockOutcome &Out)
    MUTK_NO_THREAD_SAFETY_ANALYSIS {
  DistanceMatrix Condensed =
      condense(Ctx.M, Ctx.Hierarchy.partitionAt(Id), Ctx.Options.Mode);
  BlockReport &Report = Out.Report;
  Report.HierarchyNode = Id;
  Report.NumBlocks = Condensed.size();

  const bool Publish = Ctx.Options.Bnb.PublishMetrics;
  if (Publish) {
    obs::PipelineInstruments &I = obs::pipelineInstruments();
    I.Blocks.inc();
    I.BlockSize.record(static_cast<double>(Condensed.size()));
  }

  const BlockCacheHooks *Cache = Ctx.Options.BlockCache;
  const BlockCheckpointHooks *Ckpt = Ctx.Options.BlockCheckpoint;
  CanonicalForm Form;
  bool HaveForm = false;
  if ((Cache || Ckpt) && Condensed.size() >= 2) {
    Form = canonicalForm(Condensed);
    HaveForm = true;
  }

  // Single-flight per fingerprint: for the duration of the solve this
  // thread owns the block's cache/checkpoint identity. An identical
  // block on another thread blocks here and then (cache hit below)
  // replays this solve's stored entry instead of duplicating it — and
  // the checkpoint file under `ckpt/<fingerprint>.ckpt` always has at
  // most one writer.
  KeyedMutex::Guard Flight;
  if (HaveForm) {
    bool Contended = false;
    Flight = blockFlight().lock(Form.Key, &Contended);
    if (Contended && Publish)
      obs::pipelineInstruments().SingleFlightWaits.inc();
  }

  // Consult the block cache: the canonical fingerprint is invariant under
  // block relabeling, so a hit replays the stored canonical tree with the
  // leaves permuted back into this block's label space.
  if (Cache && HaveForm && Cache->Lookup) {
    if (std::optional<BlockCacheEntry> Hit =
            Cache->Lookup(Form.Key, Form.Bytes)) {
      Report.Exact = Hit->Exact;
      Report.Cost = Hit->Cost;
      Report.FromCache = true;
      if (Publish)
        obs::pipelineInstruments().BlockCacheHits.inc();
      // The block is solved for good; a checkpoint left by an
      // interrupted earlier run is obsolete.
      if (Ckpt && Ckpt->Done)
        Ckpt->Done(Form.Key);
      return relabelLeaves(Hit->Tree, Form.Perm);
    }
  }

  // Per-block checkpoint/resume (exact solves through the sequential or
  // threaded engine: the UPGMM fallback is instant and the simulated
  // cluster has no durable state worth saving).
  const bool ExactPath =
      Condensed.size() <= Ctx.Options.MaxExactBlockSize &&
      Condensed.size() <= MaxBnbSpecies;
  BnbOptions BlockBnb = Ctx.Options.Bnb;
  std::unique_ptr<CheckpointSink> Sink;
  std::optional<SearchCheckpoint> Resume;
  if (Ckpt && HaveForm && ExactPath &&
      Ctx.Options.Solver != BlockSolver::SimulatedCluster &&
      !BlockBnb.CollectAllOptimal) {
    if (Ckpt->SinkFor)
      Sink = Ckpt->SinkFor(Form.Key);
    BlockBnb.Checkpoint = Sink.get();
    if (Ckpt->Load) {
      Resume = Ckpt->Load(Form.Key);
      if (Resume && Resume->MatrixKey != 0 && Resume->MatrixKey != Form.Key) {
        // Stale or colliding state: the solver would refuse it anyway,
        // but waiting for a *successful* solve to delete it replays the
        // useless load forever when every attempt is truncated (budget,
        // deadline) or throws. Remove on mismatch, eagerly.
        if (Ckpt->Done)
          Ckpt->Done(Form.Key);
        Resume.reset();
      }
      if (Resume)
        BlockBnb.ResumeFrom = &*Resume;
    }
  }

  PhyloTree Tree;
  if (!ExactPath) {
    Tree = upgmm(Condensed);
    Report.Exact = false;
    Report.Cost = Tree.weight();
  } else if (Ctx.Options.Solver == BlockSolver::SimulatedCluster) {
    ClusterSimResult Solved = simulateClusterBnb(
        Condensed, Ctx.Options.Cluster, Ctx.Options.Bnb);
    Tree = std::move(Solved.Tree);
    Report.Cost = Solved.Cost;
    Report.Branched = Solved.Stats.Branched;
    Report.VirtualTime = Solved.Makespan;
    Report.Exact = Solved.Stats.Complete;
    Out.Stats = Solved.Stats;
  } else if (Ctx.Options.Solver == BlockSolver::Threaded) {
    ParallelMutResult Solved =
        solveMutThreaded(Condensed, Ctx.WorkersPerBlock, BlockBnb);
    Tree = std::move(Solved.Tree);
    Report.Cost = Solved.Cost;
    Report.Branched = Solved.Stats.Branched;
    Report.Exact = Solved.Stats.Complete;
    Out.Stats = Solved.Stats;
  } else {
    MutResult Solved = solveMutSequential(Condensed, BlockBnb);
    Tree = std::move(Solved.Tree);
    Report.Cost = Solved.Cost;
    Report.Branched = Solved.Stats.Branched;
    Report.Exact = Solved.Stats.Complete;
    Out.Stats = Solved.Stats;
  }

  // A completed exact search makes the block's checkpoint obsolete; an
  // interrupted one (budget/deadline truncation) keeps it so the next
  // attempt resumes instead of restarting.
  if (Ckpt && Ckpt->Done && HaveForm && ExactPath && Report.Exact)
    Ckpt->Done(Form.Key);

  if (Cache && Cache->Store && HaveForm) {
    // Store in canonical labels: canonical index k sits where the solve
    // saw block index Form.Perm[k].
    std::vector<int> Inverse(Form.Perm.size());
    for (std::size_t K = 0; K < Form.Perm.size(); ++K)
      Inverse[static_cast<std::size_t>(Form.Perm[K])] = static_cast<int>(K);
    BlockCacheEntry Entry;
    Entry.Tree = relabelLeaves(Tree, Inverse);
    Entry.Cost = Report.Cost;
    Entry.Exact = Report.Exact;
    Cache->Store(Form.Key, Form.Bytes, Entry);
  }

  if (Publish) {
    obs::PipelineInstruments &I = obs::pipelineInstruments();
    if (Report.Exact)
      I.ExactBlocks.inc();
    else
      I.HeuristicBlocks.inc();
  }
  return Tree;
}

/// Copies \p BlockNode of \p BlockTree into \p Out, substituting block
/// leaves by the trees in \p ChildTrees. Returns the new node index and
/// updates \p Clamps when a parent height had to be raised.
int graft(const PhyloTree &BlockTree, int BlockNode,
          const std::vector<PhyloTree> &ChildTrees, PhyloTree &Out,
          int &Clamps) {
  const PhyloNode &N = BlockTree.node(BlockNode);
  if (N.isLeaf()) {
    const PhyloTree &Child = ChildTrees[static_cast<std::size_t>(N.Leaf)];
    std::vector<int> Identity;
    int MaxSpecies = -1;
    for (int S : Child.allSpecies())
      MaxSpecies = std::max(MaxSpecies, S);
    Identity.resize(static_cast<std::size_t>(MaxSpecies) + 1);
    for (int S = 0; S <= MaxSpecies; ++S)
      Identity[static_cast<std::size_t>(S)] = S;
    return Out.adoptSubtree(Child, Identity);
  }

  int Left = graft(BlockTree, N.Left, ChildTrees, Out, Clamps);
  int Right = graft(BlockTree, N.Right, ChildTrees, Out, Clamps);
  double Height = N.Height;
  double ChildMax =
      std::max(Out.node(Left).Height, Out.node(Right).Height);
  if (ChildMax > Height) {
    // Only possible for Minimum/Average condensation: the block distance
    // understated a child subtree's diameter.
    Height = ChildMax;
    ++Clamps;
  }
  return Out.addInternal(Left, Right, Height);
}

/// Grafts each child's assembled subtree in place of the corresponding
/// block leaf of \p BlockTree. Returns hierarchy node \p Id's subtree in
/// *original* species ids with consistent heights.
PhyloTree graftNode(PhyloTree BlockTree, std::vector<PhyloTree> ChildTrees,
                    int &Clamps) {
  PhyloTree Out;
  Out.setRoot(
      graft(BlockTree, BlockTree.root(), ChildTrees, Out, Clamps));
  return Out;
}

/// Merges one block's outcome into the run result. Every aggregate is a
/// sum or a maximum except `Blocks`, whose order is fixed by the caller
/// (DFS preorder of the hierarchy — the sequential walk's natural order).
void mergeOutcome(const BlockOutcome &Out, PipelineResult &Result) {
  Result.TotalStats.Branched += Out.Stats.Branched;
  Result.TotalStats.Generated += Out.Stats.Generated;
  Result.TotalStats.PrunedByBound += Out.Stats.PrunedByBound;
  Result.TotalStats.PrunedByThreeThree += Out.Stats.PrunedByThreeThree;
  Result.TotalStats.BoundEvals += Out.Stats.BoundEvals;
  Result.TotalStats.UbUpdates += Out.Stats.UbUpdates;
  Result.TotalVirtualTime += Out.Report.VirtualTime;
  Result.ParallelVirtualTime =
      std::max(Result.ParallelVirtualTime, Out.Report.VirtualTime);
  Result.Blocks.push_back(Out.Report);
}

/// The classic sequential walk: solves hierarchy node \p Id's condensed
/// matrix (reporting it in DFS preorder, before the children), recurses
/// into the children, grafts.
PhyloTree assembleSequential(const SolveContext &Ctx, int Id,
                             PipelineResult &Result) {
  const CompactHierarchy::Node &Node = Ctx.Hierarchy.node(Id);
  if (Node.isSingleton()) {
    PhyloTree Leaf;
    Leaf.addLeaf(Node.Species.front());
    return Leaf;
  }

  BlockOutcome Out;
  PhyloTree BlockTree = solveOneBlock(Ctx, Id, Out);
  mergeOutcome(Out, Result);

  std::vector<PhyloTree> ChildTrees;
  ChildTrees.reserve(Node.Children.size());
  for (int Child : Node.Children)
    ChildTrees.push_back(assembleSequential(Ctx, Child, Result));

  return graftNode(std::move(BlockTree), std::move(ChildTrees),
                   Result.HeightClamps);
}

/// Internal hierarchy nodes in the order the sequential walk reports
/// them (DFS preorder, children in `Node::Children` order); the parallel
/// scheduler emits its per-block reports in this same order so the two
/// paths produce bit-identical `PipelineResult`s.
void preorderInternal(const CompactHierarchy &Hierarchy, int Id,
                      std::vector<int> &Out) {
  if (Hierarchy.node(Id).isSingleton())
    return;
  Out.push_back(Id);
  for (int Child : Hierarchy.node(Id).Children)
    preorderInternal(Hierarchy, Child, Out);
}

/// The parallel path: all block solves submitted to the DAG scheduler,
/// outcomes merged afterwards in the sequential walk's report order.
PhyloTree assembleParallel(const SolveContext &Ctx, int PoolThreads,
                           PipelineResult &Result) {
  const int NumNodes = Ctx.Hierarchy.numNodes();
  std::vector<BlockOutcome> Outcomes(static_cast<std::size_t>(NumNodes));

  PhyloTree Tree = scheduleBlockDag(
      Ctx.Hierarchy, PoolThreads, Ctx.Options.Bnb.PublishMetrics,
      [&](int Id) {
        return solveOneBlock(Ctx, Id, Outcomes[static_cast<std::size_t>(Id)]);
      },
      [&](int Id, PhyloTree BlockTree, std::vector<PhyloTree> ChildTrees) {
        return graftNode(std::move(BlockTree), std::move(ChildTrees),
                         Outcomes[static_cast<std::size_t>(Id)].HeightClamps);
      });

  std::vector<int> Order;
  preorderInternal(Ctx.Hierarchy, Ctx.Hierarchy.rootId(), Order);
  for (int Id : Order) {
    BlockOutcome &Out = Outcomes[static_cast<std::size_t>(Id)];
    mergeOutcome(Out, Result);
    Result.HeightClamps += Out.HeightClamps;
  }
  return Tree;
}

} // namespace

PipelineResult mutk::buildCompactSetTree(const DistanceMatrix &M,
                                         const PipelineOptions &Options) {
  PipelineResult Result;
  if (M.size() == 0)
    return Result;
  if (M.size() == 1) {
    Result.Tree.addLeaf(0);
    Result.Tree.setNames(M.names());
    return Result;
  }

  // The MUT problem (and the compactness lemmas) assume a metric input;
  // non-metric matrices reach here only through a bug upstream.
  MUTK_AUDIT(M.size() > MaxAuditedSpecies || isMetric(M),
             "pipeline input must satisfy the triangle inequality "
             "(Definition 2)");

  Result.Sets = findCompactSets(M);
  MUTK_AUDIT(isLaminarFamily(Result.Sets),
             "detected compact sets must be laminar (Lemma 3)");
  CompactHierarchy Hierarchy(M.size(), Result.Sets);

  if (Options.Bnb.PublishMetrics)
    obs::pipelineInstruments().Runs.inc();

  const int SolvableBlocks =
      static_cast<int>(Hierarchy.internalNodesTopDown().size());
  ThreadBudget Budget = splitThreadBudget(
      Options.BlockConcurrency, Options.ThreadsPerBlock,
      Options.Solver == BlockSolver::Threaded, SolvableBlocks,
      std::thread::hardware_concurrency());
  Result.BlockConcurrency = Budget.Blocks;
  Result.WorkersPerBlock = Budget.PerBlock;

  SolveContext Ctx{M, Options, Hierarchy, Budget.PerBlock};
  PhyloTree Tree =
      Budget.Blocks > 1
          ? assembleParallel(Ctx, Budget.Blocks, Result)
          : assembleSequential(Ctx, Hierarchy.rootId(), Result);
  Tree.setNames(M.names());
  if (Options.PolishTopology) {
    // SPR strictly contains the NNI neighborhood; complete-linkage block
    // trees are frequently NNI-optimal but not SPR-optimal.
    NniReport Polish = sprImprove(Tree, M);
    Result.PolishMoves = Polish.MovesApplied;
  }
  Result.Cost = Tree.weight();
  Result.Tree = std::move(Tree);
  if (Options.Bnb.PublishMetrics && Result.HeightClamps > 0)
    obs::pipelineInstruments().HeightClamps.inc(
        static_cast<std::uint64_t>(Result.HeightClamps));
  // Maximum condensation is the mode with the paper's feasibility
  // guarantee: the merged tree never understates a distance, and no
  // merge step had to clamp a height (Minimum/Average trade exactly
  // this away, so they are exempt).
  if (Options.Mode == CondenseMode::Maximum) {
    MUTK_AUDIT(Result.HeightClamps == 0,
               "maximum condensation must never clamp merge heights");
    MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
               "merged tree must be ultrametric");
    MUTK_AUDIT(M.size() > MaxAuditedSpecies ||
                   Result.Tree.dominatesMatrix(M),
               "merged tree must dominate the input matrix (d_T >= M)");
  }
  return Result;
}
