//===- tree/AsciiTree.cpp - Terminal rendering of trees ---------------------===//

#include "tree/AsciiTree.h"

#include <ostream>
#include <sstream>

using namespace mutk;

namespace {

enum class Branch { Root, Upper, Lower };

/// Sideways renderer: the upper child's rows come first, then this
/// node's row, then the lower child's rows. A vertical bar runs between
/// a child's connector and its parent's row.
void renderNode(std::ostream &OS, const PhyloTree &T, int Node,
                const AsciiTreeOptions &Options, const std::string &Prefix,
                Branch Dir) {
  const PhyloNode &N = T.node(Node);
  const std::string Dash(static_cast<std::size_t>(Options.Indent - 2), '-');
  const std::string Gap(static_cast<std::size_t>(Options.Indent), ' ');
  const std::string Bar = "|" + std::string(
      static_cast<std::size_t>(Options.Indent - 1), ' ');

  std::string UpperPrefix = Prefix;
  std::string LowerPrefix = Prefix;
  if (Dir == Branch::Upper) {
    UpperPrefix += Gap;  // nothing connects above an upper child
    LowerPrefix += Bar;  // the run down to the parent's row
  } else if (Dir == Branch::Lower) {
    UpperPrefix += Bar;  // the run up to the parent's row
    LowerPrefix += Gap;
  }

  if (!N.isLeaf())
    renderNode(OS, T, N.Left, Options, UpperPrefix, Branch::Upper);

  OS << Prefix;
  switch (Dir) {
  case Branch::Root:
    break;
  case Branch::Upper:
    OS << '/' << Dash << ' ';
    break;
  case Branch::Lower:
    OS << '\\' << Dash << ' ';
    break;
  }
  if (N.isLeaf())
    OS << T.speciesName(N.Leaf);
  else {
    OS << '+';
    if (Options.ShowHeights)
      OS << " @" << N.Height;
  }
  OS << '\n';

  if (!N.isLeaf())
    renderNode(OS, T, N.Right, Options, LowerPrefix, Branch::Lower);
}

} // namespace

void mutk::writeAsciiTree(std::ostream &OS, const PhyloTree &T,
                          const AsciiTreeOptions &Options) {
  if (T.root() < 0) {
    OS << "(empty tree)\n";
    return;
  }
  renderNode(OS, T, T.root(), Options, "", Branch::Root);
}

std::string mutk::toAsciiTree(const PhyloTree &T,
                              const AsciiTreeOptions &Options) {
  std::ostringstream OS;
  writeAsciiTree(OS, T, Options);
  return OS.str();
}
