//===- tree/Newick.cpp - Newick serialization ------------------------------===//

#include "tree/Newick.h"

#include <cctype>
#include <limits>
#include <sstream>

using namespace mutk;

namespace {

void writeNode(std::ostream &OS, const PhyloTree &T, int Node) {
  const PhyloNode &N = T.node(Node);
  if (N.isLeaf())
    OS << T.speciesName(N.Leaf);
  else {
    OS << '(';
    writeNode(OS, T, N.Left);
    OS << ',';
    writeNode(OS, T, N.Right);
    OS << ')';
  }
  if (N.Parent >= 0)
    OS << ':' << T.edgeWeightAbove(Node);
}

/// Recursive-descent Newick parser.
class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<PhyloTree> run() {
    skipSpace();
    double RootLength = 0.0;
    int Root = parseNode(RootLength);
    if (Root < 0)
      return std::nullopt;
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != ';') {
      fail("expected ';' at end of tree");
      return std::nullopt;
    }
    Tree.setRoot(Root);
    Tree.setNames(std::move(Names));
    return std::move(Tree);
  }

private:
  const std::string &Text;
  std::string *Error;
  std::size_t Pos = 0;
  PhyloTree Tree;
  std::vector<std::string> Names;

  int fail(const std::string &Message) {
    if (Error)
      *Error = Message + " (at offset " + std::to_string(Pos) + ")";
    return -1;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  /// Parses a node; fills \p BranchLength with the `:len` suffix (0 if
  /// absent). Returns the node index or -1 on error.
  int parseNode(double &BranchLength) {
    skipSpace();
    int Node;
    if (Pos < Text.size() && Text[Pos] == '(') {
      ++Pos; // consume '('
      double LeftLen = 0.0, RightLen = 0.0;
      int Left = parseNode(LeftLen);
      if (Left < 0)
        return -1;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ',')
        return fail("expected ',' between children");
      ++Pos;
      int Right = parseNode(RightLen);
      if (Right < 0)
        return -1;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ')')
        return fail("expected ')' (polytomies are not supported)");
      ++Pos;
      double Height =
          std::max(Tree.node(Left).Height + LeftLen,
                   Tree.node(Right).Height + RightLen);
      Node = Tree.addInternal(Left, Right, Height);
    } else {
      std::string Name = parseName();
      if (Name.empty())
        return fail("expected a leaf name");
      Node = Tree.addLeaf(static_cast<int>(Names.size()));
      Names.push_back(Name);
    }
    BranchLength = 0.0;
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ':') {
      ++Pos;
      if (!parseNumber(BranchLength))
        return fail("expected a branch length after ':'");
    }
    return Node;
  }

  std::string parseName() {
    skipSpace();
    std::size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '(' || C == ')' || C == ',' || C == ':' || C == ';' ||
          std::isspace(static_cast<unsigned char>(C)))
        break;
      ++Pos;
    }
    return Text.substr(Start, Pos - Start);
  }

  bool parseNumber(double &Value) {
    skipSpace();
    std::size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (!(std::isdigit(static_cast<unsigned char>(C)) || C == '.' ||
            C == '-' || C == '+' || C == 'e' || C == 'E'))
        break;
      ++Pos;
    }
    if (Pos == Start)
      return false;
    std::istringstream IS(Text.substr(Start, Pos - Start));
    return static_cast<bool>(IS >> Value);
  }
};

} // namespace

void mutk::writeNewick(std::ostream &OS, const PhyloTree &T) {
  // Branch lengths must round-trip exactly.
  OS.precision(std::numeric_limits<double>::max_digits10);
  if (T.root() >= 0)
    writeNode(OS, T, T.root());
  OS << ';';
}

std::string mutk::toNewick(const PhyloTree &T) {
  std::ostringstream OS;
  writeNewick(OS, T);
  return OS.str();
}

std::optional<PhyloTree> mutk::parseNewick(const std::string &Text,
                                           std::string *Error) {
  return Parser(Text, Error).run();
}
