//===- tree/PhyloTree.h - Rooted edge-weighted binary trees -----*- C++ -*-===//
///
/// \file
/// The ultrametric-tree model of the paper (§2): a rooted, leaf-labeled
/// binary tree where every node carries a *height* — its distance to any
/// leaf in its subtree. Edge weights are implicit
/// (`weight(parent -> child) = height(parent) - height(child)`), leaves sit
/// at height 0, and the total tree weight telescopes to
/// `w(T) = height(root) + sum of internal-node heights`.
///
/// The class also supports the subtree splicing that the compact-set
/// pipeline uses to merge block solutions back into one tree.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_TREE_PHYLOTREE_H
#define MUTK_TREE_PHYLOTREE_H

#include "matrix/DistanceMatrix.h"

#include <cassert>
#include <string>
#include <vector>

namespace mutk {

/// One node of a PhyloTree. Leaves have `Leaf >= 0` (the species index)
/// and no children; internal nodes have exactly two children.
struct PhyloNode {
  int Parent = -1;
  int Left = -1;
  int Right = -1;
  int Leaf = -1;
  double Height = 0.0;

  bool isLeaf() const { return Leaf >= 0; }
};

/// A rooted, edge-weighted, leaf-labeled binary tree.
///
/// Species indices label leaves; an optional name table maps species
/// indices to display names (used by Newick output). Structural invariants
/// (binary shape, consistent parent pointers, every species appearing on
/// exactly one leaf) are validated by `isWellFormed`; the ultrametric
/// height discipline is validated separately by `hasMonotoneHeights` since
/// intermediate construction states may violate it.
class PhyloTree {
public:
  PhyloTree() = default;

  /// Appends a leaf for \p Species at height 0. \returns its node index.
  int addLeaf(int Species);

  /// Appends an internal node adopting \p Left and \p Right.
  ///
  /// Both children must currently be roots (no parent).
  /// \returns the new node index.
  int addInternal(int Left, int Right, double Height);

  /// Declares \p Node the root. Must have no parent.
  void setRoot(int Node) {
    assert(Node >= 0 && Node < numNodes() && "node out of range");
    assert(node(Node).Parent < 0 && "root must not have a parent");
    Root = Node;
  }

  int root() const { return Root; }
  int numNodes() const { return static_cast<int>(Nodes.size()); }

  const PhyloNode &node(int Index) const {
    assert(Index >= 0 && Index < numNodes() && "node out of range");
    return Nodes[static_cast<std::size_t>(Index)];
  }

  /// Number of leaves in the whole tree.
  int numLeaves() const;

  /// Sets the display-name table; index = species.
  void setNames(std::vector<std::string> Names) {
    SpeciesNames = std::move(Names);
  }
  const std::vector<std::string> &names() const { return SpeciesNames; }

  /// Returns the display name of \p Species (falls back to `s<index>`).
  std::string speciesName(int Species) const;

  /// Total edge weight `w(T)` (0 for an empty or single-leaf tree).
  double weight() const;

  /// Height of the root (0 for an empty tree).
  double rootHeight() const { return Root < 0 ? 0.0 : node(Root).Height; }

  /// Weight of the edge above \p Node (0 for the root).
  double edgeWeightAbove(int Node) const;

  /// Species indices of the leaves below \p Node, in DFS order.
  std::vector<int> leavesBelow(int Node) const;

  /// All species indices in the tree, in DFS order from the root.
  std::vector<int> allSpecies() const {
    return Root < 0 ? std::vector<int>{} : leavesBelow(Root);
  }

  /// Node index of the leaf labeled \p Species, or -1.
  int leafNodeOf(int Species) const;

  /// Lowest common ancestor node of the two *leaf species*.
  /// Both species must be present.
  int lcaOfSpecies(int SpeciesA, int SpeciesB) const;

  /// Path length between the leaves of \p SpeciesA and \p SpeciesB
  /// (`2 * height(LCA)` once heights are ultrametric).
  double leafDistance(int SpeciesA, int SpeciesB) const;

  /// Extracts the tree metric: `D[i][j] = leafDistance(i, j)` over the
  /// species present, which must be exactly `0..k-1` for some `k`.
  DistanceMatrix inducedMatrix() const;

  /// Checks structural sanity: a single root, binary internal nodes,
  /// consistent parent/child pointers, each species on exactly one leaf.
  bool isWellFormed() const;

  /// Checks the ultrametric discipline: every leaf at height 0 and every
  /// edge weight nonnegative (parent height >= child height - Tolerance).
  bool hasMonotoneHeights(double Tolerance = 1e-9) const;

  /// Returns true if `leafDistance(i, j) >= M[i, j] - Tolerance` for all
  /// pairs, i.e. the tree is a *feasible* ultrametric tree for \p M
  /// (Definition 8 requires d_T >= M).
  bool dominatesMatrix(const DistanceMatrix &M,
                       double Tolerance = 1e-9) const;

  /// Replaces the leaf labeled \p Species with a copy of \p Sub.
  ///
  /// \p Sub's species indices are remapped through \p SpeciesMap
  /// (`new = SpeciesMap[old]`). If the subtree's root height exceeds the
  /// height of the spliced position's parent, heights above are raised to
  /// keep edges nonnegative; \returns the number of nodes whose height had
  /// to be raised (0 when the splice was already consistent, which is
  /// guaranteed for maximum-condensed compact blocks).
  int replaceLeafWithSubtree(int Species, const PhyloTree &Sub,
                             const std::vector<int> &SpeciesMap);

  /// Deep-copies \p Sub into this tree with species remapped through
  /// \p SpeciesMap. \returns the node index of the copied root.
  int adoptSubtree(const PhyloTree &Sub, const std::vector<int> &SpeciesMap);

  /// True if \p Ancestor lies on the path from \p Node to the root
  /// (a node is its own ancestor).
  bool isAncestorOf(int Ancestor, int Node) const;

  /// Exchanges the subtrees rooted at \p A and \p B by swapping their
  /// parent links. Neither node may be an ancestor of the other and
  /// neither may be the root. Heights are left untouched — callers are
  /// expected to refit them (see `fitMinimalHeights`); this is the move
  /// primitive of nearest-neighbor-interchange search.
  void swapSubtrees(int A, int B);

private:
  std::vector<PhyloNode> Nodes;
  int Root = -1;
  std::vector<std::string> SpeciesNames;

  PhyloNode &mutableNode(int Index) {
    assert(Index >= 0 && Index < numNodes() && "node out of range");
    return Nodes[static_cast<std::size_t>(Index)];
  }

  int depthOf(int Node) const;
};

} // namespace mutk

#endif // MUTK_TREE_PHYLOTREE_H
