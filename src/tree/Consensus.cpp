//===- tree/Consensus.cpp - Majority-rule consensus --------------------------===//

#include "tree/Consensus.h"

#include "tree/RobinsonFoulds.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace mutk;

bool ConsensusResult::containsClade(const std::vector<int> &Species) const {
  for (const SupportedClade &Clade : Clades)
    if (Clade.Species == Species)
      return true;
  return false;
}

ConsensusResult mutk::majorityConsensus(const std::vector<PhyloTree> &Trees,
                                        double Threshold) {
  assert(!Trees.empty() && "consensus of zero trees is undefined");
  assert(Threshold >= 0.0 && Threshold < 1.0 && "threshold in [0, 1)");

  std::map<std::vector<int>, int> Counts;
  for (const PhyloTree &T : Trees)
    for (const std::vector<int> &Clade : nontrivialClades(T))
      ++Counts[Clade];

  ConsensusResult Result;
  Result.NumTrees = static_cast<int>(Trees.size());
  for (const auto &[Clade, Count] : Counts) {
    double Support = static_cast<double>(Count) / Result.NumTrees;
    if (Support > Threshold)
      Result.Clades.push_back(SupportedClade{Clade, Support});
  }
  std::sort(Result.Clades.begin(), Result.Clades.end(),
            [](const SupportedClade &A, const SupportedClade &B) {
              if (A.Species.size() != B.Species.size())
                return A.Species.size() > B.Species.size();
              return A.Species < B.Species;
            });
  return Result;
}
