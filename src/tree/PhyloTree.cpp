//===- tree/PhyloTree.cpp - Rooted edge-weighted binary trees -------------===//

#include "tree/PhyloTree.h"

#include <algorithm>

using namespace mutk;

int PhyloTree::addLeaf(int Species) {
  assert(Species >= 0 && "species index must be nonnegative");
  PhyloNode Node;
  Node.Leaf = Species;
  Nodes.push_back(Node);
  int Index = numNodes() - 1;
  if (Root < 0)
    Root = Index;
  return Index;
}

int PhyloTree::addInternal(int Left, int Right, double Height) {
  assert(Left >= 0 && Left < numNodes() && "left child out of range");
  assert(Right >= 0 && Right < numNodes() && "right child out of range");
  assert(Left != Right && "children must differ");
  assert(node(Left).Parent < 0 && node(Right).Parent < 0 &&
         "children must be roots before adoption");
  PhyloNode Node;
  Node.Left = Left;
  Node.Right = Right;
  Node.Height = Height;
  Nodes.push_back(Node);
  int Index = numNodes() - 1;
  mutableNode(Left).Parent = Index;
  mutableNode(Right).Parent = Index;
  if (Root == Left || Root == Right || Root < 0)
    Root = Index;
  return Index;
}

int PhyloTree::numLeaves() const {
  // Count only leaves reachable from the root: splicing can orphan a
  // replaced leaf node, which no longer belongs to the tree.
  if (Root < 0)
    return 0;
  int Count = 0;
  std::vector<int> Stack = {Root};
  while (!Stack.empty()) {
    int Index = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = node(Index);
    if (N.isLeaf()) {
      ++Count;
      continue;
    }
    Stack.push_back(N.Left);
    Stack.push_back(N.Right);
  }
  return Count;
}

std::string PhyloTree::speciesName(int Species) const {
  if (Species >= 0 &&
      static_cast<std::size_t>(Species) < SpeciesNames.size() &&
      !SpeciesNames[static_cast<std::size_t>(Species)].empty())
    return SpeciesNames[static_cast<std::size_t>(Species)];
  return "s" + std::to_string(Species);
}

double PhyloTree::weight() const {
  if (Root < 0)
    return 0.0;
  // w(T) = sum over non-root nodes of (h(parent) - h(node)). Only nodes
  // reachable from the root count: splices can orphan replaced leaves.
  double Total = 0.0;
  std::vector<int> Stack = {Root};
  while (!Stack.empty()) {
    int Index = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = node(Index);
    if (Index != Root)
      Total += node(N.Parent).Height - N.Height;
    if (!N.isLeaf()) {
      Stack.push_back(N.Left);
      Stack.push_back(N.Right);
    }
  }
  return Total;
}

double PhyloTree::edgeWeightAbove(int Node) const {
  const PhyloNode &N = node(Node);
  if (N.Parent < 0)
    return 0.0;
  return node(N.Parent).Height - N.Height;
}

std::vector<int> PhyloTree::leavesBelow(int Node) const {
  std::vector<int> Result;
  std::vector<int> Stack = {Node};
  while (!Stack.empty()) {
    int Index = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = node(Index);
    if (N.isLeaf()) {
      Result.push_back(N.Leaf);
      continue;
    }
    // Push right first so the left subtree is visited first.
    Stack.push_back(N.Right);
    Stack.push_back(N.Left);
  }
  return Result;
}

int PhyloTree::leafNodeOf(int Species) const {
  if (Root < 0)
    return -1;
  std::vector<int> Stack = {Root};
  while (!Stack.empty()) {
    int Index = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = node(Index);
    if (N.isLeaf()) {
      if (N.Leaf == Species)
        return Index;
      continue;
    }
    Stack.push_back(N.Left);
    Stack.push_back(N.Right);
  }
  return -1;
}

int PhyloTree::depthOf(int Node) const {
  int Depth = 0;
  for (int Cur = Node; node(Cur).Parent >= 0; Cur = node(Cur).Parent)
    ++Depth;
  return Depth;
}

int PhyloTree::lcaOfSpecies(int SpeciesA, int SpeciesB) const {
  int A = leafNodeOf(SpeciesA);
  int B = leafNodeOf(SpeciesB);
  assert(A >= 0 && B >= 0 && "both species must be present");
  int DepthA = depthOf(A);
  int DepthB = depthOf(B);
  while (DepthA > DepthB) {
    A = node(A).Parent;
    --DepthA;
  }
  while (DepthB > DepthA) {
    B = node(B).Parent;
    --DepthB;
  }
  while (A != B) {
    A = node(A).Parent;
    B = node(B).Parent;
  }
  return A;
}

double PhyloTree::leafDistance(int SpeciesA, int SpeciesB) const {
  if (SpeciesA == SpeciesB)
    return 0.0;
  int A = leafNodeOf(SpeciesA);
  int B = leafNodeOf(SpeciesB);
  assert(A >= 0 && B >= 0 && "both species must be present");
  int Lca = lcaOfSpecies(SpeciesA, SpeciesB);
  // Path length = (h(lca) - h(a)) + (h(lca) - h(b)); leaves are at h = 0
  // in a proper ultrametric tree, but sum the actual heights so the
  // function stays correct for trees mid-construction.
  return (node(Lca).Height - node(A).Height) +
         (node(Lca).Height - node(B).Height);
}

DistanceMatrix PhyloTree::inducedMatrix() const {
  std::vector<int> Species = allSpecies();
  std::vector<int> Sorted = Species;
  std::sort(Sorted.begin(), Sorted.end());
  const int N = static_cast<int>(Sorted.size());
  for (int I = 0; I < N; ++I)
    assert(Sorted[static_cast<std::size_t>(I)] == I &&
           "species must be exactly 0..n-1 for matrix extraction");

  DistanceMatrix M(N);
  for (int I = 0; I < N; ++I)
    M.setName(I, speciesName(I));
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      M.set(I, J, leafDistance(I, J));
  return M;
}

bool PhyloTree::isWellFormed() const {
  if (Root < 0)
    return numNodes() == 0;
  if (node(Root).Parent >= 0)
    return false;

  std::vector<bool> Visited(static_cast<std::size_t>(numNodes()), false);
  std::vector<int> SeenSpecies;
  std::vector<int> Stack = {Root};
  while (!Stack.empty()) {
    int Index = Stack.back();
    Stack.pop_back();
    if (Visited[static_cast<std::size_t>(Index)])
      return false; // a node reached twice: not a tree
    Visited[static_cast<std::size_t>(Index)] = true;
    const PhyloNode &N = node(Index);
    if (N.isLeaf()) {
      if (N.Left >= 0 || N.Right >= 0)
        return false;
      SeenSpecies.push_back(N.Leaf);
      continue;
    }
    if (N.Left < 0 || N.Right < 0 || N.Left >= numNodes() ||
        N.Right >= numNodes())
      return false;
    if (node(N.Left).Parent != Index || node(N.Right).Parent != Index)
      return false;
    Stack.push_back(N.Left);
    Stack.push_back(N.Right);
  }

  std::sort(SeenSpecies.begin(), SeenSpecies.end());
  return std::adjacent_find(SeenSpecies.begin(), SeenSpecies.end()) ==
         SeenSpecies.end();
}

bool PhyloTree::hasMonotoneHeights(double Tolerance) const {
  if (Root < 0)
    return true;
  std::vector<int> Stack = {Root};
  while (!Stack.empty()) {
    int Index = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = node(Index);
    if (N.isLeaf()) {
      if (std::abs(N.Height) > Tolerance)
        return false;
      continue;
    }
    if (node(N.Left).Height > N.Height + Tolerance ||
        node(N.Right).Height > N.Height + Tolerance)
      return false;
    Stack.push_back(N.Left);
    Stack.push_back(N.Right);
  }
  return true;
}

bool PhyloTree::dominatesMatrix(const DistanceMatrix &M,
                                double Tolerance) const {
  std::vector<int> Species = allSpecies();
  for (std::size_t A = 0; A < Species.size(); ++A)
    for (std::size_t B = A + 1; B < Species.size(); ++B) {
      int I = Species[A];
      int J = Species[B];
      if (leafDistance(I, J) < M.at(I, J) - Tolerance)
        return false;
    }
  return true;
}

int PhyloTree::adoptSubtree(const PhyloTree &Sub,
                            const std::vector<int> &SpeciesMap) {
  assert(Sub.root() >= 0 && "cannot adopt an empty subtree");
  // Copy nodes in Sub's index order; child indices always refer to
  // already-copied nodes only after remapping, so do a two-pass copy.
  std::vector<int> NewIndex(static_cast<std::size_t>(Sub.numNodes()), -1);
  for (int I = 0; I < Sub.numNodes(); ++I) {
    const PhyloNode &Old = Sub.node(I);
    PhyloNode Copy;
    Copy.Height = Old.Height;
    if (Old.isLeaf()) {
      assert(static_cast<std::size_t>(Old.Leaf) < SpeciesMap.size() &&
             "species map too small");
      Copy.Leaf = SpeciesMap[static_cast<std::size_t>(Old.Leaf)];
    }
    Nodes.push_back(Copy);
    NewIndex[static_cast<std::size_t>(I)] = numNodes() - 1;
  }
  for (int I = 0; I < Sub.numNodes(); ++I) {
    const PhyloNode &Old = Sub.node(I);
    PhyloNode &Copy = mutableNode(NewIndex[static_cast<std::size_t>(I)]);
    if (Old.Parent >= 0)
      Copy.Parent = NewIndex[static_cast<std::size_t>(Old.Parent)];
    if (!Old.isLeaf()) {
      Copy.Left = NewIndex[static_cast<std::size_t>(Old.Left)];
      Copy.Right = NewIndex[static_cast<std::size_t>(Old.Right)];
    }
  }
  if (Root < 0)
    Root = NewIndex[static_cast<std::size_t>(Sub.root())];
  return NewIndex[static_cast<std::size_t>(Sub.root())];
}

bool PhyloTree::isAncestorOf(int Ancestor, int Node) const {
  for (int Cur = Node; Cur >= 0; Cur = node(Cur).Parent)
    if (Cur == Ancestor)
      return true;
  return false;
}

void PhyloTree::swapSubtrees(int A, int B) {
  assert(A != B && "cannot swap a subtree with itself");
  assert(node(A).Parent >= 0 && node(B).Parent >= 0 &&
         "cannot swap the root");
  assert(!isAncestorOf(A, B) && !isAncestorOf(B, A) &&
         "subtrees must be disjoint");

  int PA = node(A).Parent;
  int PB = node(B).Parent;
  auto relink = [this](int Parent, int OldChild, int NewChild) {
    PhyloNode &P = mutableNode(Parent);
    if (P.Left == OldChild)
      P.Left = NewChild;
    else {
      assert(P.Right == OldChild && "child link broken");
      P.Right = NewChild;
    }
    mutableNode(NewChild).Parent = Parent;
  };
  relink(PA, A, B);
  relink(PB, B, A);
}

int PhyloTree::replaceLeafWithSubtree(int Species, const PhyloTree &Sub,
                                      const std::vector<int> &SpeciesMap) {
  int Victim = leafNodeOf(Species);
  assert(Victim >= 0 && "species to replace not found");

  int NewRoot = adoptSubtree(Sub, SpeciesMap);
  int Parent = node(Victim).Parent;

  if (Parent < 0) {
    // Replacing the only leaf: the subtree becomes the whole tree.
    Root = NewRoot;
  } else {
    PhyloNode &P = mutableNode(Parent);
    if (P.Left == Victim)
      P.Left = NewRoot;
    else {
      assert(P.Right == Victim && "victim not a child of its parent");
      P.Right = NewRoot;
    }
    mutableNode(NewRoot).Parent = Parent;
    mutableNode(Victim).Parent = -1; // orphan the replaced leaf
  }

  // Raise any ancestor whose height the spliced subtree now exceeds.
  // With maximum-condensed compact blocks this loop never fires (the
  // cross-block distance strictly exceeds the block diameter).
  int Raised = 0;
  double Floor = node(NewRoot).Height;
  for (int Cur = Parent; Cur >= 0; Cur = node(Cur).Parent) {
    if (node(Cur).Height >= Floor)
      break;
    mutableNode(Cur).Height = Floor;
    ++Raised;
  }
  return Raised;
}
