//===- tree/Newick.h - Newick serialization ---------------------*- C++ -*-===//
///
/// \file
/// Newick reading and writing for PhyloTree. Output carries branch lengths
/// (`(a:1.5,b:1.5):0.5;`); input reconstructs node heights bottom-up from
/// the branch lengths, so an ultrametric tree round-trips exactly. Only
/// strictly binary trees are accepted (the MUT model is binary).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_TREE_NEWICK_H
#define MUTK_TREE_NEWICK_H

#include "tree/PhyloTree.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace mutk {

/// Writes \p T in Newick format (single line, terminated by `;`).
void writeNewick(std::ostream &OS, const PhyloTree &T);

/// Serializes \p T to a Newick string.
std::string toNewick(const PhyloTree &T);

/// Parses a Newick string into a PhyloTree.
///
/// Species indices are assigned in order of leaf appearance; the leaf
/// names become the tree's name table. Leaf heights start at 0 and
/// internal heights are the maximum over the two children of
/// `child height + branch length` (equal for well-formed ultrametric
/// input). Branch lengths default to 0 when absent.
///
/// \param [out] Error human-readable message on failure (may be null).
/// \returns the tree, or `std::nullopt` on malformed or non-binary input.
std::optional<PhyloTree> parseNewick(const std::string &Text,
                                     std::string *Error = nullptr);

} // namespace mutk

#endif // MUTK_TREE_NEWICK_H
