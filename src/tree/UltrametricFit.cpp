//===- tree/UltrametricFit.cpp - Minimal heights for a topology -----------===//

#include "tree/UltrametricFit.h"

#include <algorithm>
#include <vector>

using namespace mutk;

namespace {

/// Postorder walk computing minimal heights. Returns the leaves below
/// \p Node; fills Heights[node].
std::vector<int> fitBelow(const PhyloTree &T, const DistanceMatrix &M,
                          int Node, std::vector<double> &Heights) {
  const PhyloNode &N = T.node(Node);
  if (N.isLeaf()) {
    Heights[static_cast<std::size_t>(Node)] = 0.0;
    return {N.Leaf};
  }
  std::vector<int> Left = fitBelow(T, M, N.Left, Heights);
  std::vector<int> Right = fitBelow(T, M, N.Right, Heights);

  double H = std::max(Heights[static_cast<std::size_t>(N.Left)],
                      Heights[static_cast<std::size_t>(N.Right)]);
  for (int A : Left)
    for (int B : Right)
      H = std::max(H, M.at(A, B) / 2.0);
  Heights[static_cast<std::size_t>(Node)] = H;

  Left.insert(Left.end(), Right.begin(), Right.end());
  return Left;
}

} // namespace

double mutk::fitMinimalHeights(PhyloTree &T, const DistanceMatrix &M) {
  if (T.root() < 0)
    return 0.0;
  std::vector<double> Heights(static_cast<std::size_t>(T.numNodes()), 0.0);
  fitBelow(T, M, T.root(), Heights);

  // Re-build the tree with the new heights in place. PhyloTree exposes no
  // raw height setter; reconstruct via a copy that preserves indices.
  PhyloTree Fitted;
  std::vector<int> Map(static_cast<std::size_t>(T.numNodes()), -1);
  // Nodes were appended children-first only within addInternal calls, not
  // globally, so do an explicit postorder rebuild.
  double Weight = 0.0;
  {
    struct Frame {
      int Node;
      bool Expanded;
    };
    std::vector<Frame> Stack = {{T.root(), false}};
    while (!Stack.empty()) {
      Frame F = Stack.back();
      Stack.pop_back();
      const PhyloNode &N = T.node(F.Node);
      if (N.isLeaf()) {
        Map[static_cast<std::size_t>(F.Node)] = Fitted.addLeaf(N.Leaf);
        continue;
      }
      if (!F.Expanded) {
        Stack.push_back({F.Node, true});
        Stack.push_back({N.Left, false});
        Stack.push_back({N.Right, false});
        continue;
      }
      Map[static_cast<std::size_t>(F.Node)] = Fitted.addInternal(
          Map[static_cast<std::size_t>(N.Left)],
          Map[static_cast<std::size_t>(N.Right)],
          Heights[static_cast<std::size_t>(F.Node)]);
    }
  }
  Fitted.setNames(T.names());
  Weight = Fitted.weight();
  T = std::move(Fitted);
  return Weight;
}

double mutk::minimalWeightFor(const PhyloTree &T, const DistanceMatrix &M) {
  if (T.root() < 0)
    return 0.0;
  std::vector<double> Heights(static_cast<std::size_t>(T.numNodes()), 0.0);
  fitBelow(T, M, T.root(), Heights);
  // w(T) = h(root) + sum of internal heights (leaves contribute 0).
  double Weight = Heights[static_cast<std::size_t>(T.root())];
  std::vector<int> Stack = {T.root()};
  while (!Stack.empty()) {
    int Node = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = T.node(Node);
    if (N.isLeaf())
      continue;
    Weight += Heights[static_cast<std::size_t>(Node)];
    Stack.push_back(N.Left);
    Stack.push_back(N.Right);
  }
  return Weight;
}
