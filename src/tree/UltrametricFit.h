//===- tree/UltrametricFit.h - Minimal heights for a topology ---*- C++ -*-===//
///
/// \file
/// Given a tree *topology* and a distance matrix `M`, computes the minimal
/// feasible ultrametric heights: `h(v)` must be at least `M[i,j]/2` for
/// every leaf pair whose LCA is `v`, and at least the heights of `v`'s
/// children. These are exactly the heights that minimize the tree weight
/// for that topology, so the MUT problem reduces to searching topologies
/// (Wu-Chao-Tang 1999). This module is the reference implementation used
/// for verification; the branch-and-bound maintains the same quantity
/// incrementally.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_TREE_ULTRAMETRICFIT_H
#define MUTK_TREE_ULTRAMETRICFIT_H

#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

namespace mutk {

/// Overwrites every node height of \p T with the minimal feasible value
/// for \p M and returns the resulting tree weight.
///
/// Leaves are set to height 0. The tree's species indices must be valid
/// rows of \p M.
double fitMinimalHeights(PhyloTree &T, const DistanceMatrix &M);

/// Returns the weight \p T would have after `fitMinimalHeights`, without
/// modifying it.
double minimalWeightFor(const PhyloTree &T, const DistanceMatrix &M);

} // namespace mutk

#endif // MUTK_TREE_ULTRAMETRICFIT_H
