//===- tree/RobinsonFoulds.h - Topology distance between trees --*- C++ -*-===//
///
/// \file
/// Robinson-Foulds distance for rooted trees: the number of nontrivial
/// clades (leaf sets of internal nodes) present in exactly one of the two
/// trees. Used to quantify the paper's claim that the compact-set tree
/// "keeps the precise relations among species": an RF distance of 0 to the
/// exact MUT means the decomposed tree recovered the same topology.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_TREE_ROBINSONFOULDS_H
#define MUTK_TREE_ROBINSONFOULDS_H

#include "tree/PhyloTree.h"

#include <set>
#include <vector>

namespace mutk {

/// Returns the sorted leaf sets of every internal node of \p T that covers
/// at least 2 and fewer than all leaves (the "nontrivial clades").
std::set<std::vector<int>> nontrivialClades(const PhyloTree &T);

/// Robinson-Foulds distance between rooted trees on the same species set:
/// `|clades(A) symmetric-difference clades(B)|`.
int rfDistance(const PhyloTree &A, const PhyloTree &B);

/// RF distance normalized to `[0, 1]` by the maximum possible value for
/// two rooted binary trees on `n` leaves (`2 * (n - 2)`).
/// Returns 0 for trees with fewer than 3 leaves.
double normalizedRfDistance(const PhyloTree &A, const PhyloTree &B);

} // namespace mutk

#endif // MUTK_TREE_ROBINSONFOULDS_H
