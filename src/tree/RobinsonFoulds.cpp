//===- tree/RobinsonFoulds.cpp - Topology distance between trees ----------===//

#include "tree/RobinsonFoulds.h"

#include <algorithm>
#include <cassert>

using namespace mutk;

std::set<std::vector<int>> mutk::nontrivialClades(const PhyloTree &T) {
  std::set<std::vector<int>> Clades;
  if (T.root() < 0)
    return Clades;
  const int Total = T.numLeaves();
  std::vector<int> Stack = {T.root()};
  while (!Stack.empty()) {
    int Node = Stack.back();
    Stack.pop_back();
    const PhyloNode &N = T.node(Node);
    if (N.isLeaf())
      continue;
    std::vector<int> Leaves = T.leavesBelow(Node);
    if (Leaves.size() >= 2 && static_cast<int>(Leaves.size()) < Total) {
      std::sort(Leaves.begin(), Leaves.end());
      Clades.insert(std::move(Leaves));
    }
    Stack.push_back(N.Left);
    Stack.push_back(N.Right);
  }
  return Clades;
}

int mutk::rfDistance(const PhyloTree &A, const PhyloTree &B) {
  std::set<std::vector<int>> CladesA = nontrivialClades(A);
  std::set<std::vector<int>> CladesB = nontrivialClades(B);
  int OnlyA = 0;
  for (const auto &Clade : CladesA)
    if (!CladesB.count(Clade))
      ++OnlyA;
  int OnlyB = 0;
  for (const auto &Clade : CladesB)
    if (!CladesA.count(Clade))
      ++OnlyB;
  return OnlyA + OnlyB;
}

double mutk::normalizedRfDistance(const PhyloTree &A, const PhyloTree &B) {
  assert(A.numLeaves() == B.numLeaves() &&
         "trees must be over the same species set");
  int N = A.numLeaves();
  if (N < 3)
    return 0.0;
  return static_cast<double>(rfDistance(A, B)) /
         static_cast<double>(2 * (N - 2));
}
