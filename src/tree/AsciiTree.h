//===- tree/AsciiTree.h - Terminal rendering of trees -----------*- C++ -*-===//
///
/// \file
/// Renders a PhyloTree as sideways ASCII art, with optional height
/// annotations — the "readability of the results" piece of the original
/// project's goals. Example:
///
/// \code
///         +-- human
///     +---+
///     |   +-- chimp
/// ----+
///     +------- gorilla
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_TREE_ASCIITREE_H
#define MUTK_TREE_ASCIITREE_H

#include "tree/PhyloTree.h"

#include <iosfwd>
#include <string>

namespace mutk {

/// Options for the ASCII renderer.
struct AsciiTreeOptions {
  /// Append `@height` to internal junctions.
  bool ShowHeights = false;
  /// Horizontal dash run per tree level.
  int Indent = 4;
};

/// Writes the ASCII rendering of \p T to \p OS (one leaf per line).
void writeAsciiTree(std::ostream &OS, const PhyloTree &T,
                    const AsciiTreeOptions &Options = {});

/// Renders \p T to a string.
std::string toAsciiTree(const PhyloTree &T,
                        const AsciiTreeOptions &Options = {});

} // namespace mutk

#endif // MUTK_TREE_ASCIITREE_H
