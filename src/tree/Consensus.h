//===- tree/Consensus.h - Majority-rule consensus ---------------*- C++ -*-===//
///
/// \file
/// Majority-rule consensus over a set of trees on the same species set —
/// the standard way biologists summarize the *set* of optimal trees that
/// `CollectAllOptimal` returns (near-equal distances frequently admit
/// many co-optimal topologies, see the equilateral test cases). The
/// consensus is reported as clades with support values rather than as a
/// PhyloTree, because majority-rule consensus trees are generally not
/// binary.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_TREE_CONSENSUS_H
#define MUTK_TREE_CONSENSUS_H

#include "tree/PhyloTree.h"

#include <vector>

namespace mutk {

/// One consensus clade with its support.
struct SupportedClade {
  /// Species of the clade, ascending.
  std::vector<int> Species;
  /// Fraction of input trees containing the clade, in (0, 1].
  double Support = 0.0;
};

/// Result of a consensus computation.
struct ConsensusResult {
  /// Clades at or above the threshold, largest first (ties by species).
  std::vector<SupportedClade> Clades;
  /// Number of trees summarized.
  int NumTrees = 0;

  /// True if \p Species (ascending) is among the consensus clades.
  bool containsClade(const std::vector<int> &Species) const;
};

/// Computes the consensus of \p Trees: every nontrivial clade appearing
/// in more than `Threshold` of the trees (default 0.5 = strict majority
/// rule; clades of a majority are guaranteed pairwise compatible).
/// All trees must share one species set; requires at least one tree.
ConsensusResult majorityConsensus(const std::vector<PhyloTree> &Trees,
                                  double Threshold = 0.5);

} // namespace mutk

#endif // MUTK_TREE_CONSENSUS_H
