//===- matrix/Condense.cpp - Condensed (small) matrices D' ----------------===//

#include "matrix/Condense.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace mutk;

bool mutk::isPartition(const std::vector<std::vector<int>> &Blocks,
                       int NumSpecies) {
  std::vector<bool> Seen(static_cast<std::size_t>(NumSpecies), false);
  int Count = 0;
  for (const auto &Block : Blocks) {
    if (Block.empty())
      return false;
    for (int Species : Block) {
      if (Species < 0 || Species >= NumSpecies ||
          Seen[static_cast<std::size_t>(Species)])
        return false;
      Seen[static_cast<std::size_t>(Species)] = true;
      ++Count;
    }
  }
  return Count == NumSpecies;
}

namespace {

/// Returns true if every block is nonempty and the blocks are pairwise
/// disjoint subsets of `0..NumSpecies-1`. Unlike isPartition, the union
/// need not cover all species: the compact-set pipeline condenses the
/// sub-partition at each hierarchy node, which spans only that node's
/// subset of the matrix.
[[maybe_unused]] bool
areDisjointBlocks(const std::vector<std::vector<int>> &Blocks,
                  int NumSpecies) {
  std::vector<bool> Seen(static_cast<std::size_t>(NumSpecies), false);
  for (const auto &Block : Blocks) {
    if (Block.empty())
      return false;
    for (int Species : Block) {
      if (Species < 0 || Species >= NumSpecies ||
          Seen[static_cast<std::size_t>(Species)])
        return false;
      Seen[static_cast<std::size_t>(Species)] = true;
    }
  }
  return true;
}

} // namespace

DistanceMatrix mutk::condense(const DistanceMatrix &M,
                              const std::vector<std::vector<int>> &Blocks,
                              CondenseMode Mode) {
  assert(areDisjointBlocks(Blocks, M.size()) &&
         "blocks must be nonempty, disjoint, and within the matrix");
  const int K = static_cast<int>(Blocks.size());
  DistanceMatrix Result(K);

  for (int I = 0; I < K; ++I) {
    const auto &Block = Blocks[static_cast<std::size_t>(I)];
    if (Block.size() == 1)
      Result.setName(I, M.name(Block.front()));
    else
      Result.setName(I, "C" + std::to_string(*std::min_element(
                              Block.begin(), Block.end())));
  }

  for (int I = 0; I < K; ++I)
    for (int J = I + 1; J < K; ++J) {
      double Max = 0.0;
      double Min = std::numeric_limits<double>::infinity();
      double Sum = 0.0;
      std::size_t Pairs = 0;
      for (int A : Blocks[static_cast<std::size_t>(I)])
        for (int B : Blocks[static_cast<std::size_t>(J)]) {
          double D = M.at(A, B);
          Max = std::max(Max, D);
          Min = std::min(Min, D);
          Sum += D;
          ++Pairs;
        }
      double Value = 0.0;
      switch (Mode) {
      case CondenseMode::Maximum:
        Value = Max;
        break;
      case CondenseMode::Minimum:
        Value = Min;
        break;
      case CondenseMode::Average:
        Value = Sum / static_cast<double>(Pairs);
        break;
      }
      Result.set(I, J, Value);
    }
  return Result;
}
