//===- matrix/MatrixIO.h - Distance-matrix text format ----------*- C++ -*-===//
///
/// \file
/// Reading and writing distance matrices in a PHYLIP-like text format:
///
/// \code
///   4
///   human   0 3 5 5
///   chimp   3 0 5 5
///   gorilla 5 5 0 2
///   orang   5 5 2 0
/// \endcode
///
/// The first line is the species count; each following line is a species
/// name followed by a full row of distances. Parsing is line-oriented
/// and tolerant of CRLF line endings, trailing whitespace and blank
/// lines (anywhere), but strict about everything else: extra tokens on
/// a line, partial rows, non-numeric entries, trailing garbage after
/// the last row, asymmetry and a nonzero diagonal are all reported as
/// errors naming the first problem found.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MATRIX_MATRIXIO_H
#define MUTK_MATRIX_MATRIXIO_H

#include "matrix/DistanceMatrix.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace mutk {

/// Writes \p M to \p OS in the PHYLIP-like format above.
void writeMatrix(std::ostream &OS, const DistanceMatrix &M);

/// Serializes \p M to a string.
std::string matrixToString(const DistanceMatrix &M);

/// Parses a matrix from \p IS.
///
/// \param [out] Error filled with a human-readable message on failure
/// (may be null).
/// \returns the matrix, or `std::nullopt` if the input is malformed,
/// asymmetric (beyond 1e-9), or has a nonzero diagonal.
std::optional<DistanceMatrix> readMatrix(std::istream &IS,
                                         std::string *Error = nullptr);

/// Parses a matrix from a string.
std::optional<DistanceMatrix> matrixFromString(const std::string &Text,
                                               std::string *Error = nullptr);

/// Writes \p M to the file at \p Path. \returns true on success.
bool writeMatrixFile(const std::string &Path, const DistanceMatrix &M);

/// Reads a matrix from the file at \p Path.
std::optional<DistanceMatrix> readMatrixFile(const std::string &Path,
                                             std::string *Error = nullptr);

} // namespace mutk

#endif // MUTK_MATRIX_MATRIXIO_H
