//===- matrix/MetricUtils.cpp - Metric & ultrametric predicates -----------===//

#include "matrix/MetricUtils.h"

#include "support/Bits.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace mutk;

bool mutk::hasPositiveDistances(const DistanceMatrix &M) {
  for (int I = 0; I < M.size(); ++I)
    for (int J = I + 1; J < M.size(); ++J)
      if (M.at(I, J) <= 0.0)
        return false;
  return true;
}

std::optional<TripleViolation>
mutk::findMetricViolation(const DistanceMatrix &M, double Tolerance) {
  const int N = M.size();
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      if (J == I)
        continue;
      for (int K = 0; K < N; ++K) {
        if (K == I || K == J)
          continue;
        double Slack = M.at(I, K) - (M.at(I, J) + M.at(J, K));
        if (Slack > Tolerance)
          return TripleViolation{I, J, K, Slack};
      }
    }
  return std::nullopt;
}

bool mutk::isMetric(const DistanceMatrix &M, double Tolerance) {
  return !findMetricViolation(M, Tolerance).has_value();
}

std::optional<TripleViolation>
mutk::findUltrametricViolation(const DistanceMatrix &M, double Tolerance) {
  const int N = M.size();
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      for (int K = 0; K < N; ++K) {
        if (K == I || K == J)
          continue;
        double Slack = M.at(I, J) - std::max(M.at(I, K), M.at(J, K));
        if (Slack > Tolerance)
          return TripleViolation{I, J, K, Slack};
      }
  return std::nullopt;
}

bool mutk::isUltrametric(const DistanceMatrix &M, double Tolerance) {
  return !findUltrametricViolation(M, Tolerance).has_value();
}

DistanceMatrix mutk::metricClosure(const DistanceMatrix &M) {
  const int N = M.size();
  DistanceMatrix Result = M;
  for (int K = 0; K < N; ++K)
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J) {
        double Through = Result.at(I, K) + Result.at(K, J);
        if (Through < Result.at(I, J))
          Result.set(I, J, Through);
      }
  return Result;
}

std::optional<QuadViolation>
mutk::findFourPointViolation(const DistanceMatrix &M, double Tolerance) {
  const int N = M.size();
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      for (int K = J + 1; K < N; ++K)
        for (int L = K + 1; L < N; ++L) {
          double S1 = M.at(I, J) + M.at(K, L);
          double S2 = M.at(I, K) + M.at(J, L);
          double S3 = M.at(I, L) + M.at(J, K);
          double Hi = std::max({S1, S2, S3});
          double Mid = S1 + S2 + S3 - Hi - std::min({S1, S2, S3});
          if (Hi - Mid > Tolerance)
            return QuadViolation{I, J, K, L, Hi - Mid};
        }
  return std::nullopt;
}

bool mutk::isAdditive(const DistanceMatrix &M, double Tolerance) {
  return !findFourPointViolation(M, Tolerance).has_value();
}

std::vector<int> mutk::maxminPermutationGeneric(const DistanceMatrix &M) {
  const int N = M.size();
  std::vector<int> Perm;
  Perm.reserve(static_cast<std::size_t>(N));
  if (N == 0)
    return Perm;
  if (N == 1)
    return {0};

  // Seed with a maximum-distance pair (smallest indices on ties).
  int BestI = 0, BestJ = 1;
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      if (M.at(I, J) > M.at(BestI, BestJ))
        BestI = I, BestJ = J;
  Perm.push_back(BestI);
  Perm.push_back(BestJ);

  std::vector<bool> Chosen(static_cast<std::size_t>(N), false);
  Chosen[static_cast<std::size_t>(BestI)] = true;
  Chosen[static_cast<std::size_t>(BestJ)] = true;

  // MinToPrefix[i] = min distance from i to the chosen prefix.
  std::vector<double> MinToPrefix(static_cast<std::size_t>(N));
  for (int I = 0; I < N; ++I)
    MinToPrefix[static_cast<std::size_t>(I)] =
        std::min(M.at(I, BestI), M.at(I, BestJ));

  for (int Step = 2; Step < N; ++Step) {
    int Best = -1;
    for (int I = 0; I < N; ++I) {
      if (Chosen[static_cast<std::size_t>(I)])
        continue;
      if (Best < 0 || MinToPrefix[static_cast<std::size_t>(I)] >
                          MinToPrefix[static_cast<std::size_t>(Best)])
        Best = I;
    }
    assert(Best >= 0 && "no unchosen species left");
    Perm.push_back(Best);
    Chosen[static_cast<std::size_t>(Best)] = true;
    for (int I = 0; I < N; ++I)
      MinToPrefix[static_cast<std::size_t>(I)] =
          std::min(MinToPrefix[static_cast<std::size_t>(I)], M.at(I, Best));
  }
  return Perm;
}

std::vector<int> mutk::maxminPermutation(const DistanceMatrix &M) {
  const int N = M.size();
  if (N > 64)
    return maxminPermutationGeneric(M);
  std::vector<int> Perm;
  Perm.reserve(static_cast<std::size_t>(N));
  if (N == 0)
    return Perm;
  if (N == 1)
    return {0};

  // Seed with a maximum-distance pair (smallest indices on ties).
  int BestI = 0, BestJ = 1;
  for (int I = 0; I < N; ++I) {
    const double *Row = M.row(I);
    for (int J = I + 1; J < N; ++J)
      if (Row[J] > M.at(BestI, BestJ))
        BestI = I, BestJ = J;
  }
  Perm.push_back(BestI);
  Perm.push_back(BestJ);

  // The placement set lives in one word: Remaining holds the unchosen
  // species, so the candidate scan visits exactly the survivors (in
  // increasing order — the same tie-breaking as the generic path).
  LeafMask Remaining = (N == 64) ? ~LeafMask{0} : (LeafMask{1} << N) - 1;
  Remaining &= ~(leafBit(BestI) | leafBit(BestJ));

  // MinToPrefix[i] = min distance from i to the chosen prefix.
  std::vector<double> MinToPrefix(static_cast<std::size_t>(N));
  for (int I = 0; I < N; ++I)
    MinToPrefix[static_cast<std::size_t>(I)] =
        std::min(M.at(I, BestI), M.at(I, BestJ));

  for (int Step = 2; Step < N; ++Step) {
    int Best = -1;
    forEachLeaf(Remaining, [&](int I) {
      if (Best < 0 || MinToPrefix[static_cast<std::size_t>(I)] >
                          MinToPrefix[static_cast<std::size_t>(Best)])
        Best = I;
    });
    assert(Best >= 0 && "no unchosen species left");
    Perm.push_back(Best);
    Remaining &= ~leafBit(Best);
    const double *Row = M.row(Best); // row(Best)[i] == M.at(i, Best)
    forEachLeaf(Remaining, [&](int I) {
      MinToPrefix[static_cast<std::size_t>(I)] =
          std::min(MinToPrefix[static_cast<std::size_t>(I)], Row[I]);
    });
  }
  return Perm;
}

bool mutk::isMaxminPermutation(const DistanceMatrix &M,
                               const std::vector<int> &Perm,
                               double Tolerance) {
  const int N = M.size();
  if (static_cast<int>(Perm.size()) != N)
    return false;
  if (N < 2)
    return true;

  // perm[0], perm[1] must be a maximum-distance pair.
  double First = M.at(Perm[0], Perm[1]);
  if (First + Tolerance < M.permuted(Perm).maxEntry())
    return false;

  // Each later species must have a maximal minimum distance to the prefix.
  std::vector<bool> InPrefix(static_cast<std::size_t>(N), false);
  InPrefix[static_cast<std::size_t>(Perm[0])] = true;
  InPrefix[static_cast<std::size_t>(Perm[1])] = true;
  for (int Step = 2; Step < N; ++Step) {
    auto minToPrefix = [&](int Species) {
      double Min = std::numeric_limits<double>::infinity();
      for (int I = 0; I < N; ++I)
        if (InPrefix[static_cast<std::size_t>(I)])
          Min = std::min(Min, M.at(Species, I));
      return Min;
    };
    double ChosenMin = minToPrefix(Perm[static_cast<std::size_t>(Step)]);
    for (int I = 0; I < N; ++I)
      if (!InPrefix[static_cast<std::size_t>(I)] &&
          minToPrefix(I) > ChosenMin + Tolerance)
        return false;
    InPrefix[static_cast<std::size_t>(Perm[static_cast<std::size_t>(Step)])] =
        true;
  }
  return true;
}
