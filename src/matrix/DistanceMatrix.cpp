//===- matrix/DistanceMatrix.cpp - Symmetric species distances ------------===//

#include "matrix/DistanceMatrix.h"

#include <cmath>

using namespace mutk;

DistanceMatrix::DistanceMatrix(int NumSpecies)
    : N(NumSpecies), Data(static_cast<std::size_t>(NumSpecies) * NumSpecies,
                          0.0),
      Names(static_cast<std::size_t>(NumSpecies)) {
  assert(NumSpecies >= 0 && "negative matrix size");
  for (int I = 0; I < N; ++I)
    Names[static_cast<std::size_t>(I)] = "s" + std::to_string(I);
}

DistanceMatrix DistanceMatrix::permuted(const std::vector<int> &Perm) const {
  assert(static_cast<int>(Perm.size()) == N && "permutation size mismatch");
  DistanceMatrix Result(N);
  for (int I = 0; I < N; ++I) {
    Result.setName(I, name(Perm[static_cast<std::size_t>(I)]));
    for (int J = I + 1; J < N; ++J)
      Result.set(I, J,
                 at(Perm[static_cast<std::size_t>(I)],
                    Perm[static_cast<std::size_t>(J)]));
  }
  return Result;
}

DistanceMatrix
DistanceMatrix::restrictedTo(const std::vector<int> &Indices) const {
  const int M = static_cast<int>(Indices.size());
  DistanceMatrix Result(M);
  for (int I = 0; I < M; ++I) {
    assert(Indices[static_cast<std::size_t>(I)] >= 0 &&
           Indices[static_cast<std::size_t>(I)] < N && "index out of range");
    Result.setName(I, name(Indices[static_cast<std::size_t>(I)]));
    for (int J = I + 1; J < M; ++J)
      Result.set(I, J,
                 at(Indices[static_cast<std::size_t>(I)],
                    Indices[static_cast<std::size_t>(J)]));
  }
  return Result;
}

double DistanceMatrix::maxEntry() const {
  double Max = 0.0;
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      Max = std::max(Max, at(I, J));
  return Max;
}

double DistanceMatrix::minEntry() const {
  if (N < 2)
    return 0.0;
  double Min = at(0, 1);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      Min = std::min(Min, at(I, J));
  return Min;
}

bool DistanceMatrix::approxEquals(const DistanceMatrix &Other,
                                  double Tolerance) const {
  if (Other.N != N)
    return false;
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      if (std::fabs(at(I, J) - Other.at(I, J)) > Tolerance)
        return false;
  return true;
}
