//===- matrix/Generators.cpp - Synthetic workload generators --------------===//

#include "matrix/Generators.h"

#include "matrix/MetricUtils.h"
#include "support/Audit.h"
#include "support/Rng.h"

#include <cassert>
#include <vector>

using namespace mutk;

DistanceMatrix mutk::uniformRandomMetric(int NumSpecies, std::uint64_t Seed,
                                         double MinValue, double MaxValue) {
  assert(0.0 < MinValue && MinValue <= MaxValue && "bad value range");
  Rng Rand(Seed);
  DistanceMatrix M(NumSpecies);
  for (int I = 0; I < NumSpecies; ++I)
    for (int J = I + 1; J < NumSpecies; ++J)
      M.set(I, J, Rand.nextDouble(MinValue, MaxValue));
  DistanceMatrix Closed = metricClosure(M);
  MUTK_AUDIT(Closed.size() > MaxAuditedSpecies || isMetric(Closed),
             "metric closure must yield a metric");
  return Closed;
}

namespace {

/// A node of the scratch tree used to realize ultrametric distances.
struct ScratchNode {
  int Left = -1;
  int Right = -1;
  int Leaf = -1;
  double Height = 0.0;
};

/// Fills `M[i][j] = 2 * height(LCA(i, j))` for all leaf pairs below
/// \p Node by recursing and combining the leaf lists of the two children.
std::vector<int> fillDistances(const std::vector<ScratchNode> &Nodes,
                               int Node, DistanceMatrix &M) {
  const ScratchNode &N = Nodes[static_cast<std::size_t>(Node)];
  if (N.Leaf >= 0)
    return {N.Leaf};
  std::vector<int> LeftLeaves = fillDistances(Nodes, N.Left, M);
  std::vector<int> RightLeaves = fillDistances(Nodes, N.Right, M);
  for (int A : LeftLeaves)
    for (int B : RightLeaves)
      M.set(A, B, 2.0 * N.Height);
  LeftLeaves.insert(LeftLeaves.end(), RightLeaves.begin(), RightLeaves.end());
  return LeftLeaves;
}

} // namespace

DistanceMatrix mutk::randomUltrametricMatrix(int NumSpecies,
                                             std::uint64_t Seed,
                                             const UltrametricSpec &Spec) {
  assert(NumSpecies >= 1 && "need at least one species");
  assert(0.0 < Spec.MinShrink && Spec.MinShrink <= Spec.MaxShrink &&
         Spec.MaxShrink < 1.0 && "shrink factors must lie in (0, 1)");
  Rng Rand(Seed);
  DistanceMatrix M(NumSpecies);
  if (NumSpecies == 1)
    return M;

  // Grow a random topology by splitting a uniformly random leaf until all
  // species are placed, then assign strictly decreasing heights root-down.
  std::vector<ScratchNode> Nodes;
  Nodes.push_back(ScratchNode{-1, -1, 0, 0.0}); // starts as leaf for s0
  std::vector<int> LeafNodes = {0};
  for (int Species = 1; Species < NumSpecies; ++Species) {
    std::size_t Pick =
        static_cast<std::size_t>(Rand.nextBelow(LeafNodes.size()));
    int Victim = LeafNodes[Pick];
    int OldLeaf = Nodes[static_cast<std::size_t>(Victim)].Leaf;
    int NewLeft = static_cast<int>(Nodes.size());
    Nodes.push_back(ScratchNode{-1, -1, OldLeaf, 0.0});
    int NewRight = static_cast<int>(Nodes.size());
    Nodes.push_back(ScratchNode{-1, -1, Species, 0.0});
    Nodes[static_cast<std::size_t>(Victim)] =
        ScratchNode{NewLeft, NewRight, -1, 0.0};
    LeafNodes[Pick] = NewLeft;
    LeafNodes.push_back(NewRight);
  }

  // Heights: DFS from the root; every internal child gets a strictly
  // smaller height than its parent.
  std::vector<std::pair<int, double>> Stack = {{0, Spec.RootHeight}};
  while (!Stack.empty()) {
    auto [Node, Height] = Stack.back();
    Stack.pop_back();
    ScratchNode &N = Nodes[static_cast<std::size_t>(Node)];
    if (N.Leaf >= 0)
      continue;
    N.Height = Height;
    double LeftHeight =
        Height * Rand.nextDouble(Spec.MinShrink, Spec.MaxShrink);
    double RightHeight =
        Height * Rand.nextDouble(Spec.MinShrink, Spec.MaxShrink);
    Stack.push_back({N.Left, LeftHeight});
    Stack.push_back({N.Right, RightHeight});
  }

  fillDistances(Nodes, 0, M);
  MUTK_AUDIT(M.size() > MaxAuditedSpecies || isUltrametric(M),
             "tree-realized distances must satisfy the three-point "
             "condition");
  return M;
}

DistanceMatrix mutk::plantedClusterMetric(int NumSpecies, std::uint64_t Seed,
                                          double Jitter,
                                          const UltrametricSpec &Spec) {
  assert(Jitter >= 0.0 && Jitter < 1.0 && "jitter must lie in [0, 1)");
  DistanceMatrix M = randomUltrametricMatrix(NumSpecies, Seed, Spec);
  Rng Rand(Seed ^ 0xC0FFEEULL);
  for (int I = 0; I < NumSpecies; ++I)
    for (int J = I + 1; J < NumSpecies; ++J)
      M.set(I, J, M.at(I, J) * (1.0 - Jitter * Rand.nextDouble()));
  // The jitter can introduce small triangle violations; the closure repairs
  // them while preserving the planted cluster structure.
  DistanceMatrix Closed = metricClosure(M);
  MUTK_AUDIT(Closed.size() > MaxAuditedSpecies || isMetric(Closed),
             "metric closure must yield a metric");
  return Closed;
}

DistanceMatrix mutk::scaledToMax(const DistanceMatrix &M, double NewMax) {
  assert(NewMax > 0.0 && "target maximum must be positive");
  double Max = M.maxEntry();
  DistanceMatrix Result = M;
  if (Max <= 0.0)
    return Result;
  double Factor = NewMax / Max;
  for (int I = 0; I < M.size(); ++I)
    for (int J = I + 1; J < M.size(); ++J)
      Result.set(I, J, M.at(I, J) * Factor);
  return Result;
}
