//===- matrix/MatrixDiff.cpp - Name-keyed matrix perturbation diff --------===//

#include "matrix/MatrixDiff.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

using namespace mutk;

MatrixDelta mutk::diffMatrices(const DistanceMatrix &Base,
                               const DistanceMatrix &M, double Tolerance) {
  MatrixDelta Delta;

  std::unordered_map<std::string, int> BaseIndex;
  BaseIndex.reserve(static_cast<std::size_t>(Base.size()));
  for (int I = 0; I < Base.size(); ++I)
    BaseIndex.emplace(Base.name(I), I);

  // Common taxa as (new index, base index) pairs; everything else in the
  // new matrix is an addition.
  std::vector<std::pair<int, int>> Common;
  Common.reserve(static_cast<std::size_t>(M.size()));
  std::vector<bool> Dirty(static_cast<std::size_t>(M.size()), false);
  for (int I = 0; I < M.size(); ++I) {
    auto It = BaseIndex.find(M.name(I));
    if (It == BaseIndex.end()) {
      ++Delta.TaxaAdded;
      Dirty[static_cast<std::size_t>(I)] = true;
    } else {
      Common.emplace_back(I, It->second);
    }
  }
  Delta.CommonTaxa = static_cast<int>(Common.size());
  Delta.TaxaRemoved = Base.size() - Delta.CommonTaxa;
  Delta.Comparable = Delta.CommonTaxa >= 2;
  if (!Delta.Comparable)
    return Delta;

  for (std::size_t A = 0; A < Common.size(); ++A)
    for (std::size_t B = A + 1; B < Common.size(); ++B) {
      double New = M.at(Common[A].first, Common[B].first);
      double Old = Base.at(Common[A].second, Common[B].second);
      if (std::abs(New - Old) > Tolerance) {
        ++Delta.EntriesChanged;
        Dirty[static_cast<std::size_t>(Common[A].first)] = true;
        Dirty[static_cast<std::size_t>(Common[B].first)] = true;
      }
    }

  for (int I = 0; I < M.size(); ++I)
    if (Dirty[static_cast<std::size_t>(I)])
      Delta.DirtySpecies.push_back(I);
  return Delta;
}
