//===- matrix/MatrixIO.cpp - Distance-matrix text format ------------------===//

#include "matrix/MatrixIO.h"

#include "support/Audit.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

using namespace mutk;

void mutk::writeMatrix(std::ostream &OS, const DistanceMatrix &M) {
  // Full round-trip precision: distances must survive write/read exactly.
  OS.precision(std::numeric_limits<double>::max_digits10);
  OS << M.size() << '\n';
  for (int I = 0; I < M.size(); ++I) {
    OS << M.name(I);
    for (int J = 0; J < M.size(); ++J)
      OS << ' ' << M.at(I, J);
    OS << '\n';
  }
}

std::string mutk::matrixToString(const DistanceMatrix &M) {
  std::ostringstream OS;
  writeMatrix(OS, M);
  return OS.str();
}

static std::optional<DistanceMatrix> fail(std::string *Error,
                                          const std::string &Message) {
  if (Error)
    *Error = Message;
  return std::nullopt;
}

namespace {

/// Advances \p IS to the next line carrying content. Strips the
/// trailing CR of CRLF files and any trailing whitespace, and skips
/// blank lines (files produced on Windows or padded with trailing
/// newlines parse the same as their minimal form). Returns false at
/// end of input.
bool nextContentLine(std::istream &IS, std::string &Line) {
  while (std::getline(IS, Line)) {
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' ' ||
                             Line.back() == '\t'))
      Line.pop_back();
    if (Line.find_first_not_of(" \t") != std::string::npos)
      return true;
  }
  return false;
}

std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Out;
  std::istringstream SS(Line);
  std::string Token;
  while (SS >> Token)
    Out.push_back(std::move(Token));
  return Out;
}

/// Parses \p Token as a double, requiring the whole token to be
/// consumed (`operator>>` would silently accept `1.5x` prefixes).
bool parseDouble(const std::string &Token, double &Out) {
  if (Token.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(Token.c_str(), &End);
  return End == Token.c_str() + Token.size();
}

} // namespace

std::optional<DistanceMatrix> mutk::readMatrix(std::istream &IS,
                                               std::string *Error) {
  // Line-oriented on purpose: a token stream cannot tell "row ended"
  // from "row continued on the next line", so a row with an extra value
  // would silently absorb the next row's name and report a misleading
  // error several rows later.
  std::string Line;
  if (!nextContentLine(IS, Line))
    return fail(Error, "missing species count");
  std::vector<std::string> Header = splitTokens(Line);
  char *End = nullptr;
  long N = std::strtol(Header.front().c_str(), &End, 10);
  if (End != Header.front().c_str() + Header.front().size())
    return fail(Error, "bad species count '" + Header.front() + "'");
  if (Header.size() > 1)
    return fail(Error, "unexpected token '" + Header[1] +
                           "' after species count");
  if (N < 0)
    return fail(Error, "negative species count");
  if (N > std::numeric_limits<int>::max())
    return fail(Error, "species count out of range");

  DistanceMatrix M(static_cast<int>(N));
  // Raw values first; symmetry is validated after the full read so the
  // error message can name both offending entries.
  std::vector<double> Raw(static_cast<std::size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I) {
    if (!nextContentLine(IS, Line))
      return fail(Error, "missing name for row " + std::to_string(I));
    std::vector<std::string> Row = splitTokens(Line);
    M.setName(I, Row.front());
    if (Row.size() < static_cast<std::size_t>(N) + 1)
      return fail(Error, "missing entry (" + std::to_string(I) + ", " +
                             std::to_string(Row.size() - 1) + ")");
    if (Row.size() > static_cast<std::size_t>(N) + 1)
      return fail(Error, "unexpected token '" + Row[static_cast<std::size_t>(N) + 1] +
                             "' after row " + std::to_string(I));
    for (int J = 0; J < N; ++J) {
      double Value = 0.0;
      if (!parseDouble(Row[static_cast<std::size_t>(J) + 1], Value))
        return fail(Error, "bad entry (" + std::to_string(I) + ", " +
                               std::to_string(J) + "): '" +
                               Row[static_cast<std::size_t>(J) + 1] + "'");
      Raw[static_cast<std::size_t>(I) * N + J] = Value;
    }
  }
  if (nextContentLine(IS, Line))
    return fail(Error, "unexpected content after last row: '" + Line + "'");

  for (int I = 0; I < N; ++I) {
    if (Raw[static_cast<std::size_t>(I) * N + I] != 0.0)
      return fail(Error, "nonzero diagonal at row " + std::to_string(I));
    for (int J = I + 1; J < N; ++J) {
      double A = Raw[static_cast<std::size_t>(I) * N + J];
      double B = Raw[static_cast<std::size_t>(J) * N + I];
      if (std::fabs(A - B) > 1e-9)
        return fail(Error, "asymmetric entries at (" + std::to_string(I) +
                               ", " + std::to_string(J) + ")");
      if (A < 0.0)
        return fail(Error, "negative distance at (" + std::to_string(I) +
                               ", " + std::to_string(J) + ")");
      M.set(I, J, A);
    }
  }
  // What the parser just promised its callers: a zero diagonal and exact
  // symmetry (DistanceMatrix::set mirrors every entry).
  MUTK_AUDIT(
      [&] {
        for (int I = 0; I < N; ++I) {
          if (M.at(I, I) != 0.0)
            return false;
          for (int J = I + 1; J < N; ++J)
            if (M.at(I, J) != M.at(J, I) || M.at(I, J) < 0.0)
              return false;
        }
        return true;
      }(),
      "parsed matrix must be symmetric, nonnegative, zero-diagonal");
  return M;
}

std::optional<DistanceMatrix> mutk::matrixFromString(const std::string &Text,
                                                     std::string *Error) {
  std::istringstream IS(Text);
  return readMatrix(IS, Error);
}

bool mutk::writeMatrixFile(const std::string &Path, const DistanceMatrix &M) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeMatrix(OS, M);
  return static_cast<bool>(OS);
}

std::optional<DistanceMatrix> mutk::readMatrixFile(const std::string &Path,
                                                   std::string *Error) {
  std::ifstream IS(Path);
  if (!IS)
    return fail(Error, "cannot open " + Path);
  return readMatrix(IS, Error);
}
