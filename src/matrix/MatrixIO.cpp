//===- matrix/MatrixIO.cpp - Distance-matrix text format ------------------===//

#include "matrix/MatrixIO.h"

#include "support/Audit.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

using namespace mutk;

void mutk::writeMatrix(std::ostream &OS, const DistanceMatrix &M) {
  // Full round-trip precision: distances must survive write/read exactly.
  OS.precision(std::numeric_limits<double>::max_digits10);
  OS << M.size() << '\n';
  for (int I = 0; I < M.size(); ++I) {
    OS << M.name(I);
    for (int J = 0; J < M.size(); ++J)
      OS << ' ' << M.at(I, J);
    OS << '\n';
  }
}

std::string mutk::matrixToString(const DistanceMatrix &M) {
  std::ostringstream OS;
  writeMatrix(OS, M);
  return OS.str();
}

static std::optional<DistanceMatrix> fail(std::string *Error,
                                          const std::string &Message) {
  if (Error)
    *Error = Message;
  return std::nullopt;
}

std::optional<DistanceMatrix> mutk::readMatrix(std::istream &IS,
                                               std::string *Error) {
  int N = 0;
  if (!(IS >> N))
    return fail(Error, "missing species count");
  if (N < 0)
    return fail(Error, "negative species count");

  DistanceMatrix M(N);
  // Raw values first; symmetry is validated after the full read so the
  // error message can name both offending entries.
  std::vector<double> Raw(static_cast<std::size_t>(N) * N, 0.0);
  for (int I = 0; I < N; ++I) {
    std::string Name;
    if (!(IS >> Name))
      return fail(Error, "missing name for row " + std::to_string(I));
    M.setName(I, Name);
    for (int J = 0; J < N; ++J) {
      double Value = 0.0;
      if (!(IS >> Value))
        return fail(Error, "missing entry (" + std::to_string(I) + ", " +
                               std::to_string(J) + ")");
      Raw[static_cast<std::size_t>(I) * N + J] = Value;
    }
  }

  for (int I = 0; I < N; ++I) {
    if (Raw[static_cast<std::size_t>(I) * N + I] != 0.0)
      return fail(Error, "nonzero diagonal at row " + std::to_string(I));
    for (int J = I + 1; J < N; ++J) {
      double A = Raw[static_cast<std::size_t>(I) * N + J];
      double B = Raw[static_cast<std::size_t>(J) * N + I];
      if (std::fabs(A - B) > 1e-9)
        return fail(Error, "asymmetric entries at (" + std::to_string(I) +
                               ", " + std::to_string(J) + ")");
      if (A < 0.0)
        return fail(Error, "negative distance at (" + std::to_string(I) +
                               ", " + std::to_string(J) + ")");
      M.set(I, J, A);
    }
  }
  // What the parser just promised its callers: a zero diagonal and exact
  // symmetry (DistanceMatrix::set mirrors every entry).
  MUTK_AUDIT(
      [&] {
        for (int I = 0; I < N; ++I) {
          if (M.at(I, I) != 0.0)
            return false;
          for (int J = I + 1; J < N; ++J)
            if (M.at(I, J) != M.at(J, I) || M.at(I, J) < 0.0)
              return false;
        }
        return true;
      }(),
      "parsed matrix must be symmetric, nonnegative, zero-diagonal");
  return M;
}

std::optional<DistanceMatrix> mutk::matrixFromString(const std::string &Text,
                                                     std::string *Error) {
  std::istringstream IS(Text);
  return readMatrix(IS, Error);
}

bool mutk::writeMatrixFile(const std::string &Path, const DistanceMatrix &M) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeMatrix(OS, M);
  return static_cast<bool>(OS);
}

std::optional<DistanceMatrix> mutk::readMatrixFile(const std::string &Path,
                                                   std::string *Error) {
  std::ifstream IS(Path);
  if (!IS)
    return fail(Error, "cannot open " + Path);
  return readMatrix(IS, Error);
}
