//===- matrix/MetricUtils.h - Metric & ultrametric predicates ---*- C++ -*-===//
///
/// \file
/// Predicates and repairs for distance matrices: the metric (triangle
/// inequality) and ultrametric (three-point) conditions of the paper's
/// Definitions 2-3, the shortest-path metric closure used to repair raw
/// random matrices, and the maxmin species permutation that the
/// branch-and-bound relies on for tight early lower bounds (Algorithm BBU,
/// Step 1).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MATRIX_METRICUTILS_H
#define MUTK_MATRIX_METRICUTILS_H

#include "matrix/DistanceMatrix.h"

#include <optional>
#include <vector>

namespace mutk {

/// A triple of species indices violating a matrix property, plus the slack
/// by which it is violated. Used for diagnostics in tests and tools.
struct TripleViolation {
  int I = -1;
  int J = -1;
  int K = -1;
  double Slack = 0.0;
};

/// Returns true if every off-diagonal entry of \p M is strictly positive.
bool hasPositiveDistances(const DistanceMatrix &M);

/// Returns the first triangle-inequality violation
/// (`M[i,k] > M[i,j] + M[j,k] + Tolerance`), if any.
std::optional<TripleViolation> findMetricViolation(const DistanceMatrix &M,
                                                   double Tolerance = 1e-9);

/// Returns true if \p M satisfies the triangle inequality (Definition 2).
bool isMetric(const DistanceMatrix &M, double Tolerance = 1e-9);

/// Returns the first ultrametric violation
/// (`M[i,j] > max(M[i,k], M[j,k]) + Tolerance`), if any.
std::optional<TripleViolation>
findUltrametricViolation(const DistanceMatrix &M, double Tolerance = 1e-9);

/// Returns true if \p M satisfies the three-point condition
/// `M[i,j] <= max(M[i,k], M[j,k])` for all triples (Definition 3).
bool isUltrametric(const DistanceMatrix &M, double Tolerance = 1e-9);

/// Replaces every entry with the shortest-path distance through the
/// complete graph (Floyd-Warshall). The result always satisfies the
/// triangle inequality; entries only shrink. Used to turn raw uniform
/// random values into a metric, matching how "random matrices" must be
/// conditioned before the MUT problem is well-posed.
DistanceMatrix metricClosure(const DistanceMatrix &M);

/// Computes a maxmin permutation of the species.
///
/// `(perm[0], perm[1])` is a maximum-distance pair and each subsequent
/// species maximizes its minimum distance to the already-chosen prefix.
/// Ties are broken toward the smaller index so the result is deterministic.
///
/// Dispatches to a 64-bit-bitmask placement set for `N <= 64` (every
/// exact B&B solve qualifies — `MaxBnbSpecies` caps at 64) and to
/// `maxminPermutationGeneric` above that.
std::vector<int> maxminPermutation(const DistanceMatrix &M);

/// Reference implementation of `maxminPermutation` with a
/// `std::vector<bool>` placement set. Works for any N and must agree
/// with the mask fast path exactly (same tie-breaking); the equivalence
/// property test in `tests/hotloop_test.cpp` holds the two together.
std::vector<int> maxminPermutationGeneric(const DistanceMatrix &M);

/// Returns true if \p Perm is a valid maxmin permutation of \p M.
bool isMaxminPermutation(const DistanceMatrix &M,
                         const std::vector<int> &Perm,
                         double Tolerance = 1e-9);

/// A quadruple of species violating the four-point condition, plus the
/// violation slack.
struct QuadViolation {
  int I = -1;
  int J = -1;
  int K = -1;
  int L = -1;
  double Slack = 0.0;
};

/// Returns the first four-point-condition violation, if any: among the
/// three pairings `ij|kl`, `ik|jl`, `il|jk`, the two largest sums of
/// opposite distances must be equal (Buneman). Additive (tree) metrics
/// satisfy it exactly; neighbor joining is exact precisely on such
/// inputs. O(n^4).
std::optional<QuadViolation> findFourPointViolation(const DistanceMatrix &M,
                                                    double Tolerance = 1e-9);

/// Returns true if \p M is an additive (tree) metric: every quadruple
/// satisfies the four-point condition.
bool isAdditive(const DistanceMatrix &M, double Tolerance = 1e-9);

} // namespace mutk

#endif // MUTK_MATRIX_METRICUTILS_H
