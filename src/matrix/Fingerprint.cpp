//===- matrix/Fingerprint.cpp - Canonical matrix fingerprints -------------===//

#include "matrix/Fingerprint.h"

#include <algorithm>
#include <cstring>

using namespace mutk;

namespace {

void appendU32(std::vector<std::uint8_t> &Bytes, std::uint32_t Value) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Bytes.push_back(static_cast<std::uint8_t>(Value >> Shift));
}

void appendF64(std::vector<std::uint8_t> &Bytes, double Value) {
  std::uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  for (int Shift = 0; Shift < 64; Shift += 8)
    Bytes.push_back(static_cast<std::uint8_t>(Bits >> Shift));
}

std::uint64_t fnv1a(const std::vector<std::uint8_t> &Bytes) {
  std::uint64_t Hash = 1469598103934665603ull;
  for (std::uint8_t B : Bytes) {
    Hash ^= B;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

/// Greedy maxmin order seeded with (\p First, \p Second): each further
/// species maximizes its minimum distance to the prefix. Identical to
/// `maxminPermutation` except that the seed orientation is the caller's
/// choice instead of index order.
std::vector<int> maxminOrderFrom(const DistanceMatrix &M, int First,
                                 int Second) {
  const int N = M.size();
  std::vector<int> Perm{First, Second};
  Perm.reserve(static_cast<std::size_t>(N));
  std::vector<bool> Chosen(static_cast<std::size_t>(N), false);
  Chosen[static_cast<std::size_t>(First)] = true;
  Chosen[static_cast<std::size_t>(Second)] = true;
  std::vector<double> MinToPrefix(static_cast<std::size_t>(N));
  for (int I = 0; I < N; ++I)
    MinToPrefix[static_cast<std::size_t>(I)] =
        std::min(M.at(I, First), M.at(I, Second));
  for (int Step = 2; Step < N; ++Step) {
    int Best = -1;
    for (int I = 0; I < N; ++I) {
      if (Chosen[static_cast<std::size_t>(I)])
        continue;
      if (Best < 0 || MinToPrefix[static_cast<std::size_t>(I)] >
                          MinToPrefix[static_cast<std::size_t>(Best)])
        Best = I;
    }
    Perm.push_back(Best);
    Chosen[static_cast<std::size_t>(Best)] = true;
    for (int I = 0; I < N; ++I)
      MinToPrefix[static_cast<std::size_t>(I)] =
          std::min(MinToPrefix[static_cast<std::size_t>(I)], M.at(I, Best));
  }
  return Perm;
}

std::vector<std::uint8_t> canonicalBytes(const DistanceMatrix &M,
                                         const std::vector<int> &Perm) {
  const int N = M.size();
  std::vector<std::uint8_t> Bytes;
  Bytes.reserve(4 + static_cast<std::size_t>(N) * (N - 1) / 2 * 8);
  appendU32(Bytes, static_cast<std::uint32_t>(N));
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      appendF64(Bytes, M.at(Perm[static_cast<std::size_t>(I)],
                            Perm[static_cast<std::size_t>(J)]));
  return Bytes;
}

} // namespace

CanonicalForm mutk::canonicalForm(const DistanceMatrix &M) {
  CanonicalForm Form;
  const int N = M.size();
  if (N < 2) {
    // Trivial matrices carry no distances; the size alone is the form.
    Form.Perm.resize(static_cast<std::size_t>(N));
    for (int I = 0; I < N; ++I)
      Form.Perm[static_cast<std::size_t>(I)] = I;
    appendU32(Form.Bytes, static_cast<std::uint32_t>(N));
    Form.Key = fnv1a(Form.Bytes);
    return Form;
  }

  // The greedy order is seeded with the farthest pair, and a relabeling
  // can change which tied pair (or which of its endpoints) a scan finds
  // first. Enumerate every tied farthest pair in both orientations and
  // keep the lexicographically smallest encoding — a label-free choice as
  // long as all tied pairs are enumerated, so the cap only matters for
  // pathologically tie-heavy matrices, where dropping candidates costs at
  // worst a cache miss, never a wrong hit.
  constexpr std::size_t MaxSeedPairs = 16;
  double Farthest = M.at(0, 1);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      Farthest = std::max(Farthest, M.at(I, J));
  std::vector<std::pair<int, int>> Seeds;
  for (int I = 0; I < N && Seeds.size() < MaxSeedPairs; ++I)
    for (int J = I + 1; J < N && Seeds.size() < MaxSeedPairs; ++J)
      if (M.at(I, J) == Farthest)
        Seeds.emplace_back(I, J);

  for (const auto &[I, J] : Seeds)
    for (const auto &[First, Second] :
         {std::pair<int, int>{I, J}, std::pair<int, int>{J, I}}) {
      std::vector<int> Perm = maxminOrderFrom(M, First, Second);
      std::vector<std::uint8_t> Bytes = canonicalBytes(M, Perm);
      if (Form.Bytes.empty() || Bytes < Form.Bytes) {
        Form.Perm = std::move(Perm);
        Form.Bytes = std::move(Bytes);
      }
    }
  Form.Key = fnv1a(Form.Bytes);
  return Form;
}

std::uint64_t mutk::fingerprint(const DistanceMatrix &M) {
  return canonicalForm(M).Key;
}

int mutk::canonicalSpeciesCount(const std::vector<std::uint8_t> &Bytes) {
  if (Bytes.size() < 4)
    return 0;
  std::uint32_t N = 0;
  for (int Shift = 0; Shift < 32; Shift += 8)
    N |= static_cast<std::uint32_t>(Bytes[static_cast<std::size_t>(Shift / 8)])
         << Shift;
  return N > static_cast<std::uint32_t>(1 << 20) ? 0 : static_cast<int>(N);
}
