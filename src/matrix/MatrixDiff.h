//===- matrix/MatrixDiff.h - Name-keyed matrix perturbation diff *- C++ -*-===//
///
/// \file
/// Structural diff between two distance matrices, joined on species
/// names: which taxa were added or removed, which surviving entries
/// changed, and which species of the new matrix are *dirty* (touched by
/// any change). This is the detection half of the service's incremental
/// re-solve mode (`docs/caching.md#incremental-mode`): when a submitted
/// matrix is a small perturbation of a recently solved base, the
/// compact-set decomposition re-runs but every block whose species avoid
/// the dirty set condenses to a byte-identical matrix, fingerprints to
/// the same key, and replays from the block cache — only dirty blocks
/// pay for a solver.
///
/// Names are the join key because fingerprints deliberately exclude
/// them: the relabel-invariant canonical form identifies *equal*
/// matrices, while a perturbation is by definition not equal. Matrices
/// without meaningful names still work — the default `s0..s{n-1}` names
/// align taxa positionally.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MATRIX_MATRIXDIFF_H
#define MUTK_MATRIX_MATRIXDIFF_H

#include "matrix/DistanceMatrix.h"

#include <vector>

namespace mutk {

/// The outcome of diffing a new matrix against a base.
struct MatrixDelta {
  /// The two matrices share at least two taxa (else the remaining
  /// fields are meaningless and incremental mode must not engage).
  bool Comparable = false;
  /// Taxa present in both matrices (by name).
  int CommonTaxa = 0;
  /// Taxa of the new matrix absent from the base.
  int TaxaAdded = 0;
  /// Taxa of the base absent from the new matrix.
  int TaxaRemoved = 0;
  /// Entries over common taxa whose distance differs.
  int EntriesChanged = 0;
  /// New-matrix species indices touched by the perturbation: every
  /// added taxon plus both endpoints of every changed entry. Sorted,
  /// unique. Removed taxa have no index in the new matrix and are
  /// counted only.
  std::vector<int> DirtySpecies;
};

/// Diffs \p M against \p Base, joining taxa by name (O(n^2)). Distances
/// differing by more than \p Tolerance (exact by default) count as
/// changed.
MatrixDelta diffMatrices(const DistanceMatrix &Base, const DistanceMatrix &M,
                         double Tolerance = 0.0);

} // namespace mutk

#endif // MUTK_MATRIX_MATRIXDIFF_H
