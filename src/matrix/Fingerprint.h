//===- matrix/Fingerprint.h - Canonical matrix fingerprints -----*- C++ -*-===//
///
/// \file
/// Relabeling-invariant fingerprints for distance matrices, the cache key
/// of the tree-construction service: two matrices that differ only by a
/// permutation of the taxa (and by their names) hash to the same 64-bit
/// key, so a cached solution can be replayed onto the second matrix by
/// permuting leaf labels instead of re-running branch-and-bound.
///
/// Canonicalization uses the greedy maxmin order (as in `MetricUtils.h`):
/// it depends only on the distances, so permuting the input permutes the
/// chosen species but reproduces the same *canonical matrix* whenever the
/// argmax choices are unique. The systematic ambiguity — which farthest
/// pair seeds the order, and which of its endpoints comes first — is
/// resolved by enumerating every tied farthest pair in both orientations
/// (capped at 16 pairs) and keeping the lexicographically smallest byte
/// string, which is label-independent. Remaining ties (equal maxmin
/// margins mid-order, or more tied farthest pairs than the cap) are
/// broken toward the smaller index, which is label-dependent; such
/// degenerate inputs may canonicalize differently under relabeling — that
/// costs a cache miss, never a wrong hit, because hits additionally
/// compare the canonical bytes, not just the 64-bit hash.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MATRIX_FINGERPRINT_H
#define MUTK_MATRIX_FINGERPRINT_H

#include "matrix/DistanceMatrix.h"

#include <cstdint>
#include <vector>

namespace mutk {

/// The canonical form of a matrix under taxon relabeling.
struct CanonicalForm {
  /// 64-bit FNV-1a hash of `Bytes` (fast shard/bucket selector).
  std::uint64_t Key = 0;
  /// Maxmin permutation used: canonical index `k` is original index
  /// `Perm[k]`.
  std::vector<int> Perm;
  /// The canonical upper triangle, bit-exact (size header + doubles in
  /// row-major `(i, j > i)` order). Equality of two canonical forms is
  /// equality of these bytes; names are deliberately excluded.
  std::vector<std::uint8_t> Bytes;
};

/// Computes the canonical form of \p M (O(n^2)).
CanonicalForm canonicalForm(const DistanceMatrix &M);

/// Shorthand for `canonicalForm(M).Key`: a relabeling-invariant 64-bit
/// fingerprint (collisions possible; compare `Bytes` before trusting it).
std::uint64_t fingerprint(const DistanceMatrix &M);

/// Decodes the species-count header of a `CanonicalForm::Bytes` string
/// (0 for a malformed/too-short buffer). Lets cache tiers apply
/// size-dependent policy — e.g. "only ship blocks of >= k species to a
/// remote peer" — without re-deriving the matrix.
int canonicalSpeciesCount(const std::vector<std::uint8_t> &Bytes);

} // namespace mutk

#endif // MUTK_MATRIX_FINGERPRINT_H
