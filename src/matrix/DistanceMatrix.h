//===- matrix/DistanceMatrix.h - Symmetric species distances ----*- C++ -*-===//
///
/// \file
/// The distance-matrix model shared by every algorithm in the project: a
/// symmetric matrix `M` with `M[i][i] = 0` holding pairwise species
/// distances (paper §2, Definition 1). Optional species names are carried
/// along so trees can be rendered with meaningful leaf labels.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MATRIX_DISTANCEMATRIX_H
#define MUTK_MATRIX_DISTANCEMATRIX_H

#include <cassert>
#include <string>
#include <vector>

namespace mutk {

/// A symmetric `n x n` matrix of pairwise species distances.
///
/// Only symmetry and a zero diagonal are structural invariants; whether the
/// matrix is a metric or an ultrametric is a property checked by
/// `MetricUtils` (many inputs, e.g. raw random values, are deliberately not
/// metric until repaired).
class DistanceMatrix {
public:
  DistanceMatrix() = default;

  /// Creates an `n x n` zero matrix with default species names `s0..s{n-1}`.
  explicit DistanceMatrix(int NumSpecies);

  /// Number of species (rows/columns).
  int size() const { return N; }

  /// Returns the distance between species \p I and \p J.
  double at(int I, int J) const {
    assert(I >= 0 && I < N && J >= 0 && J < N && "index out of range");
    return Data[static_cast<std::size_t>(I) * N + J];
  }

  /// Raw pointer to row \p I of the row-major storage:
  /// `row(I)[J] == at(I, J)`. For allocation-free hot loops (B&B height
  /// updates and the lower-bound scan) that would otherwise pay the
  /// bounds-checked `at()` per element.
  const double *row(int I) const {
    assert(I >= 0 && I < N && "row out of range");
    return Data.data() + static_cast<std::size_t>(I) * N;
  }

  /// Sets the distance between \p I and \p J (and \p J and \p I).
  ///
  /// Setting a diagonal entry to a nonzero value is a programming error.
  void set(int I, int J, double Value) {
    assert(I >= 0 && I < N && J >= 0 && J < N && "index out of range");
    assert((I != J || Value == 0.0) && "diagonal must stay zero");
    assert(Value >= 0.0 && "distances are nonnegative");
    Data[static_cast<std::size_t>(I) * N + J] = Value;
    Data[static_cast<std::size_t>(J) * N + I] = Value;
  }

  /// Returns the name of species \p I.
  const std::string &name(int I) const {
    assert(I >= 0 && I < N && "index out of range");
    return Names[static_cast<std::size_t>(I)];
  }

  /// Renames species \p I.
  void setName(int I, std::string Name) {
    assert(I >= 0 && I < N && "index out of range");
    Names[static_cast<std::size_t>(I)] = std::move(Name);
  }

  /// Returns all species names in index order.
  const std::vector<std::string> &names() const { return Names; }

  /// Returns a copy with rows/columns reordered so that new index `k`
  /// corresponds to old index `Perm[k]`.
  DistanceMatrix permuted(const std::vector<int> &Perm) const;

  /// Returns the submatrix restricted to \p Indices (in the given order),
  /// keeping their names.
  DistanceMatrix restrictedTo(const std::vector<int> &Indices) const;

  /// Returns the largest off-diagonal entry (0 for matrices with n < 2).
  double maxEntry() const;

  /// Returns the smallest off-diagonal entry (0 for matrices with n < 2).
  double minEntry() const;

  /// Element-wise equality within \p Tolerance.
  bool approxEquals(const DistanceMatrix &Other, double Tolerance) const;

private:
  int N = 0;
  std::vector<double> Data;
  std::vector<std::string> Names;
};

} // namespace mutk

#endif // MUTK_MATRIX_DISTANCEMATRIX_H
