//===- matrix/Condense.h - Condensed (small) matrices D' --------*- C++ -*-===//
///
/// \file
/// Builds the "several small distance matrices D'" of the paper (§3.1):
/// given a partition of the species into blocks, each pair of blocks is
/// collapsed to a single distance using one of three aggregations. The
/// paper names them *maximum*, *minimum* and *average* and studies the
/// maximum variant; all three are implemented here (the ablation bench
/// compares them).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MATRIX_CONDENSE_H
#define MUTK_MATRIX_CONDENSE_H

#include "matrix/DistanceMatrix.h"

#include <vector>

namespace mutk {

/// How the cross-block distances are collapsed into one entry.
enum class CondenseMode {
  Maximum, ///< `D'[X,Y] = max { M[a,b] }` — the paper's studied variant;
           ///< keeps merged trees feasible (`d_T >= M`).
  Minimum, ///< `D'[X,Y] = min { M[a,b] }`.
  Average, ///< `D'[X,Y] = mean { M[a,b] }`.
};

/// Returns the condensed matrix over \p Blocks.
///
/// \p Blocks must be nonempty, pairwise-disjoint groups of valid species
/// indices; they need not cover every species (the compact-set pipeline
/// condenses the sub-partition at each hierarchy node). Block `i` of the
/// result is named after the smallest member when the block has several
/// species, or keeps the species name for singleton blocks.
DistanceMatrix condense(const DistanceMatrix &M,
                        const std::vector<std::vector<int>> &Blocks,
                        CondenseMode Mode);

/// Returns true if \p Blocks is a partition of `0..NumSpecies-1`.
bool isPartition(const std::vector<std::vector<int>> &Blocks,
                 int NumSpecies);

} // namespace mutk

#endif // MUTK_MATRIX_CONDENSE_H
