//===- matrix/Generators.h - Synthetic workload generators ------*- C++ -*-===//
///
/// \file
/// Distance-matrix workload generators for the paper's experiments:
///
///  * `uniformRandomMetric` — uniform values in a range, repaired to a
///    metric by shortest-path closure. Matches the HPCAsia paper's
///    "randomly generated data sample set, the range of the data values is
///    from 0 to 100".
///  * `randomUltrametricMatrix` — distances realized by a random
///    ultrametric tree; every subtree of the generating tree is a compact
///    set, so the compact-set decomposition has maximal effect.
///  * `plantedClusterMetric` — an ultrametric perturbed by multiplicative
///    jitter (then metric-closed). Keeps a planted hierarchy of compact
///    sets while no longer being exactly ultrametric; this is the `RAND`
///    workload of the PaCT figures (see DESIGN.md §5.4).
///
/// All generators are deterministic functions of their seed.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_MATRIX_GENERATORS_H
#define MUTK_MATRIX_GENERATORS_H

#include "matrix/DistanceMatrix.h"

#include <cstdint>

namespace mutk {

/// Uniform random entries in `[MinValue, MaxValue]`, then metric closure.
/// The result satisfies the triangle inequality and has positive distances.
DistanceMatrix uniformRandomMetric(int NumSpecies, std::uint64_t Seed,
                                   double MinValue = 1.0,
                                   double MaxValue = 100.0);

/// Shape parameters for the random ultrametric generator.
struct UltrametricSpec {
  /// Height of the root (half the maximum pairwise distance).
  double RootHeight = 50.0;
  /// Every child height lies in `[MinShrink, MaxShrink] * parent height`;
  /// keeping MaxShrink < 1 makes every subtree a compact set.
  double MinShrink = 0.35;
  double MaxShrink = 0.85;
};

/// Distances realized by a random rooted binary tree with strictly
/// decreasing node heights. The result is an exact ultrametric.
DistanceMatrix randomUltrametricMatrix(int NumSpecies, std::uint64_t Seed,
                                       const UltrametricSpec &Spec = {});

/// A `randomUltrametricMatrix` with every entry scaled by an independent
/// factor in `[1 - Jitter, 1]`, then metric-closed. With `Jitter` smaller
/// than the planted height gaps, the generating tree's subtrees remain
/// compact sets while the matrix is no longer ultrametric.
DistanceMatrix plantedClusterMetric(int NumSpecies, std::uint64_t Seed,
                                    double Jitter = 0.08,
                                    const UltrametricSpec &Spec = {});

/// Rescales all entries linearly so the maximum becomes \p NewMax.
/// Rescaling preserves metric/ultrametric properties and compact sets.
DistanceMatrix scaledToMax(const DistanceMatrix &M, double NewMax);

} // namespace mutk

#endif // MUTK_MATRIX_GENERATORS_H
