//===- redist/GenBlock.cpp - HPF-2 GEN_BLOCK redistribution -----------------===//

#include "redist/GenBlock.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>

using namespace mutk;

long GenBlock::totalElements() const {
  long Total = 0;
  for (long S : Sizes)
    Total += S;
  return Total;
}

std::vector<RedistMessage> mutk::generateMessages(const GenBlock &Source,
                                                  const GenBlock &Dest) {
  assert(Source.numProcessors() >= 1 && Dest.numProcessors() >= 1 &&
         "need at least one processor on each side");
  assert(Source.totalElements() == Dest.totalElements() &&
         "distributions must cover the same array");

  std::vector<RedistMessage> Messages;
  int Sp = 0, Dp = 0;
  long SpEnd = Source.Sizes[0];
  long DpEnd = Dest.Sizes[0];
  long Offset = 0;
  const long Total = Source.totalElements();

  // March both segmentations left to right; each interval between
  // consecutive boundaries is one message.
  while (Offset < Total) {
    // Skip zero-length segments.
    while (Sp < Source.numProcessors() && SpEnd == Offset) {
      ++Sp;
      if (Sp < Source.numProcessors())
        SpEnd += Source.Sizes[static_cast<std::size_t>(Sp)];
    }
    while (Dp < Dest.numProcessors() && DpEnd == Offset) {
      ++Dp;
      if (Dp < Dest.numProcessors())
        DpEnd += Dest.Sizes[static_cast<std::size_t>(Dp)];
    }
    long Next = std::min(SpEnd, DpEnd);
    assert(Next > Offset && "segment walk stuck");
    Messages.push_back(RedistMessage{Sp, Dp, Next - Offset});
    Offset = Next;
  }
  return Messages;
}

int mutk::maxDegree(const std::vector<RedistMessage> &Messages,
                    int NumProcessors) {
  std::vector<int> SendDegree(static_cast<std::size_t>(NumProcessors), 0);
  std::vector<int> RecvDegree(static_cast<std::size_t>(NumProcessors), 0);
  int Max = 0;
  for (const RedistMessage &M : Messages) {
    Max = std::max(Max, ++SendDegree[static_cast<std::size_t>(M.Source)]);
    Max = std::max(Max, ++RecvDegree[static_cast<std::size_t>(M.Dest)]);
  }
  return Max;
}

GenBlock mutk::randomGenBlock(int NumProcessors, long Total,
                              double LowFactor, double HighFactor,
                              std::uint64_t Seed) {
  assert(NumProcessors >= 1 && Total >= NumProcessors &&
         "need at least one element per processor");
  assert(0.0 < LowFactor && LowFactor <= HighFactor && "bad factor range");
  Rng Rand(Seed);

  const double Mean = static_cast<double>(Total) / NumProcessors;
  std::vector<double> Raw(static_cast<std::size_t>(NumProcessors));
  double Sum = 0.0;
  for (double &R : Raw) {
    R = Mean * Rand.nextDouble(LowFactor, HighFactor);
    Sum += R;
  }

  // Rescale to the exact total, with integer rounding drift pushed onto
  // the largest segment.
  GenBlock Block;
  Block.Sizes.resize(static_cast<std::size_t>(NumProcessors));
  long Assigned = 0;
  for (int I = 0; I < NumProcessors; ++I) {
    long S = std::max<long>(
        1, static_cast<long>(Raw[static_cast<std::size_t>(I)] / Sum *
                             static_cast<double>(Total)));
    Block.Sizes[static_cast<std::size_t>(I)] = S;
    Assigned += S;
  }
  auto Largest = std::max_element(Block.Sizes.begin(), Block.Sizes.end());
  *Largest += Total - Assigned;
  assert(*Largest > 0 && "rounding drift exceeded the largest segment");
  return Block;
}
