//===- redist/GenBlock.h - HPF-2 GEN_BLOCK redistribution -------*- C++ -*-===//
///
/// \file
/// The data model of the report's APPT 2005 companion paper
/// ("Contention-Free Communication Scheduling for Irregular Data
/// Redistribution in Parallelizing Compilers"): an HPF-2 `GEN_BLOCK`
/// distribution assigns consecutive, unevenly sized array segments to
/// consecutive processors. Redistributing an array from a source to a
/// destination GEN_BLOCK induces one message per overlapping
/// (source, destination) segment pair; because both distributions are
/// consecutive, there are between `P` and `2P - 1` messages and each
/// processor's messages address consecutive peers.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_REDIST_GENBLOCK_H
#define MUTK_REDIST_GENBLOCK_H

#include <cstdint>
#include <vector>

namespace mutk {

/// A GEN_BLOCK distribution: segment sizes per processor (>= 0 each).
struct GenBlock {
  std::vector<long> Sizes;

  int numProcessors() const { return static_cast<int>(Sizes.size()); }
  long totalElements() const;
};

/// One redistribution message: source processor, destination processor,
/// number of array elements.
struct RedistMessage {
  int Source = -1;
  int Dest = -1;
  long Size = 0;

  friend bool operator==(const RedistMessage &A, const RedistMessage &B) {
    return A.Source == B.Source && A.Dest == B.Dest && A.Size == B.Size;
  }
};

/// Computes the messages of redistributing from \p Source to \p Dest
/// (both must cover the same number of elements and processors >= 1).
/// Messages are ordered by array offset (the paper's m1..m_k order);
/// zero-size overlaps produce no message.
std::vector<RedistMessage> generateMessages(const GenBlock &Source,
                                            const GenBlock &Dest);

/// The maximum number of messages any processor sends or receives — the
/// lower bound on (and, for valid schedulers here, the exact number of)
/// communication steps.
int maxDegree(const std::vector<RedistMessage> &Messages, int NumProcessors);

/// Random GEN_BLOCK generator following the paper's setup: each segment
/// drawn uniformly from `[LowFactor, HighFactor] * (Total / P)`, then the
/// sizes are rescaled/adjusted to sum exactly to \p Total. The paper's
/// "uneven" case uses factors (0.3, 1.5), the "even" case (0.7, 1.3).
GenBlock randomGenBlock(int NumProcessors, long Total, double LowFactor,
                        double HighFactor, std::uint64_t Seed);

} // namespace mutk

#endif // MUTK_REDIST_GENBLOCK_H
