//===- redist/Schedule.h - Contention-free step schedules -------*- C++ -*-===//
///
/// \file
/// A redistribution schedule partitions the messages into communication
/// steps such that within a step every processor sends at most one and
/// receives at most one message (node-contention freedom). The cost
/// model follows the APPT paper: each step costs a fixed startup plus
/// the size of its largest message, so the schedule quality is
/// `numSteps * Startup + sum of per-step maxima`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_REDIST_SCHEDULE_H
#define MUTK_REDIST_SCHEDULE_H

#include "redist/GenBlock.h"

#include <vector>

namespace mutk {

/// A schedule: step -> indices into the message list.
struct RedistSchedule {
  std::vector<std::vector<int>> Steps;

  int numSteps() const { return static_cast<int>(Steps.size()); }

  /// Sum over steps of the largest message size (the data-transmission
  /// part of the cost).
  long totalStepMaxima(const std::vector<RedistMessage> &Messages) const;

  /// Full cost: `numSteps * StartupCost + totalStepMaxima`.
  double cost(const std::vector<RedistMessage> &Messages,
              double StartupCost = 0.0) const;
};

/// Checks contention-freedom and completeness: every message scheduled
/// exactly once, and no step reuses a sender or a receiver.
bool isValidSchedule(const RedistSchedule &Schedule,
                     const std::vector<RedistMessage> &Messages,
                     int NumProcessors);

} // namespace mutk

#endif // MUTK_REDIST_SCHEDULE_H
