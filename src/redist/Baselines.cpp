//===- redist/Baselines.cpp - Comparison schedulers -------------------------===//

#include "redist/Baselines.h"

#include <algorithm>
#include <limits>

using namespace mutk;

namespace {

/// Returns true if \p MessageIndex can join \p Step without contention.
bool fits(const std::vector<RedistMessage> &Messages,
          const std::vector<int> &Step, int MessageIndex) {
  const RedistMessage &M = Messages[static_cast<std::size_t>(MessageIndex)];
  for (int Other : Step) {
    const RedistMessage &O = Messages[static_cast<std::size_t>(Other)];
    if (O.Source == M.Source || O.Dest == M.Dest)
      return false;
  }
  return true;
}

long stepMax(const std::vector<RedistMessage> &Messages,
             const std::vector<int> &Step) {
  long Max = 0;
  for (int Index : Step)
    Max = std::max(Max, Messages[static_cast<std::size_t>(Index)].Size);
  return Max;
}

} // namespace

RedistSchedule
mutk::scheduleGreedyFfd(const std::vector<RedistMessage> &Messages,
                        int NumProcessors) {
  (void)NumProcessors;
  std::vector<int> Order(Messages.size());
  for (std::size_t I = 0; I < Messages.size(); ++I)
    Order[I] = static_cast<int>(I);
  std::sort(Order.begin(), Order.end(), [&](int A, int B) {
    if (Messages[static_cast<std::size_t>(A)].Size !=
        Messages[static_cast<std::size_t>(B)].Size)
      return Messages[static_cast<std::size_t>(A)].Size >
             Messages[static_cast<std::size_t>(B)].Size;
    return A < B;
  });

  RedistSchedule Schedule;
  for (int Index : Order) {
    long Size = Messages[static_cast<std::size_t>(Index)].Size;
    int Best = -1;
    long BestIncrease = std::numeric_limits<long>::max();
    for (int Step = 0; Step < Schedule.numSteps(); ++Step) {
      if (!fits(Messages, Schedule.Steps[static_cast<std::size_t>(Step)],
                Index))
        continue;
      long Increase = std::max<long>(
          0, Size - stepMax(Messages,
                            Schedule.Steps[static_cast<std::size_t>(Step)]));
      if (Increase < BestIncrease) {
        Best = Step;
        BestIncrease = Increase;
      }
    }
    if (Best < 0) {
      Schedule.Steps.emplace_back();
      Best = Schedule.numSteps() - 1;
    }
    Schedule.Steps[static_cast<std::size_t>(Best)].push_back(Index);
  }
  return Schedule;
}

namespace {

/// Recursive half of the divide-and-conquer scheduler over the message
/// index range [Lo, Hi).
RedistSchedule divideConquer(const std::vector<RedistMessage> &Messages,
                             int Lo, int Hi) {
  RedistSchedule Result;
  if (Hi - Lo <= 1) {
    if (Hi - Lo == 1)
      Result.Steps.push_back({Lo});
    return Result;
  }
  int Mid = Lo + (Hi - Lo) / 2;
  Result = divideConquer(Messages, Lo, Mid);
  RedistSchedule Right = divideConquer(Messages, Mid, Hi);

  // Merge: align Right's steps onto Result's, relocating contended
  // messages to the first feasible step (in order, not by size).
  for (std::size_t RightStep = 0; RightStep < Right.Steps.size();
       ++RightStep) {
    for (int Index : Right.Steps[RightStep]) {
      int Chosen = -1;
      // Prefer the same step position, then scan from the top.
      if (RightStep < Result.Steps.size() &&
          fits(Messages, Result.Steps[RightStep], Index))
        Chosen = static_cast<int>(RightStep);
      for (int Step = 0; Chosen < 0 && Step < Result.numSteps(); ++Step)
        if (fits(Messages, Result.Steps[static_cast<std::size_t>(Step)],
                 Index))
          Chosen = Step;
      if (Chosen < 0) {
        Result.Steps.emplace_back();
        Chosen = Result.numSteps() - 1;
      }
      Result.Steps[static_cast<std::size_t>(Chosen)].push_back(Index);
    }
  }
  return Result;
}

} // namespace

RedistSchedule
mutk::scheduleDivideConquer(const std::vector<RedistMessage> &Messages,
                            int NumProcessors) {
  (void)NumProcessors;
  if (Messages.empty())
    return RedistSchedule{};
  return divideConquer(Messages, 0, static_cast<int>(Messages.size()));
}

RedistSchedule mutk::scheduleNaive(const std::vector<RedistMessage> &Messages,
                                   int NumProcessors) {
  (void)NumProcessors;
  RedistSchedule Schedule;
  for (std::size_t I = 0; I < Messages.size(); ++I) {
    int Index = static_cast<int>(I);
    int Chosen = -1;
    for (int Step = 0; Step < Schedule.numSteps(); ++Step)
      if (fits(Messages, Schedule.Steps[static_cast<std::size_t>(Step)],
               Index)) {
        Chosen = Step;
        break;
      }
    if (Chosen < 0) {
      Schedule.Steps.emplace_back();
      Chosen = Schedule.numSteps() - 1;
    }
    Schedule.Steps[static_cast<std::size_t>(Chosen)].push_back(Index);
  }
  return Schedule;
}
