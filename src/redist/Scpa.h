//===- redist/Scpa.h - Smallest Conflict Points Algorithm -------*- C++ -*-===//
///
/// \file
/// The APPT 2005 paper's scheduler. Key notions (paper §3.1):
///
///  * **MDMS** (Maximum Degree Message Set): the message set of a
///    processor whose degree equals the schedule lower bound `K`.
///  * **Explicit conflict point**: a message belonging to two MDMSs
///    (their shared processor would otherwise force an extra step).
///  * **Implicit conflict point**: when two different MDMSs each contain
///    a message incident to the same *non-maximal* processor, one of the
///    two messages conflicts; the paper picks the one from the earlier
///    MDMS.
///
/// SCPA schedules all conflict points first (into a common step where
/// the contention rules allow), then the remaining MDMS messages in
/// non-increasing size order into the best-fitting step, then everything
/// else — achieving the minimal `K` steps with near-minimal total step
/// maxima.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_REDIST_SCPA_H
#define MUTK_REDIST_SCPA_H

#include "redist/Schedule.h"

#include <vector>

namespace mutk {

/// One maximum-degree message set.
struct Mdms {
  /// Owning processor and whether it is the sender side.
  int Processor = -1;
  bool IsSender = true;
  /// Indices into the message list.
  std::vector<int> MessageIndices;
};

/// Analysis of a message list (exposed for tests and tools).
struct ScpaAnalysis {
  int MaxDegree = 0;
  std::vector<Mdms> Sets;
  /// Message indices that are explicit conflict points.
  std::vector<int> ExplicitConflicts;
  /// Message indices that are implicit conflict points.
  std::vector<int> ImplicitConflicts;
};

/// Computes MDMSs and conflict points for \p Messages.
ScpaAnalysis analyzeConflicts(const std::vector<RedistMessage> &Messages,
                              int NumProcessors);

/// Runs the smallest-conflict-points scheduler. The result is always
/// valid; it uses exactly `maxDegree` steps unless placement overflowed
/// (tracked by the caller via `numSteps()`).
RedistSchedule scheduleScpa(const std::vector<RedistMessage> &Messages,
                            int NumProcessors);

} // namespace mutk

#endif // MUTK_REDIST_SCPA_H
