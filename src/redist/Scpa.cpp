//===- redist/Scpa.cpp - Smallest Conflict Points Algorithm -----------------===//

#include "redist/Scpa.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace mutk;

namespace {

/// Placement helper shared by the SCPA phases: a fixed set of `K` steps
/// with per-step sender/receiver occupancy. When the size-guided greedy
/// cannot place a message inside the K steps, a Kempe-chain (alternating
/// path) repair frees a slot — bipartite multigraphs are Delta-edge-
/// colorable (Koenig), so K steps always suffice and the repair always
/// terminates.
class StepBuilder {
public:
  StepBuilder(const std::vector<RedistMessage> &Messages, int NumProcessors,
              int NumSteps)
      : Messages(Messages), NumProcessors(NumProcessors),
        SenderOf(static_cast<std::size_t>(NumSteps),
                 std::vector<int>(static_cast<std::size_t>(NumProcessors),
                                  -1)),
        ReceiverOf(SenderOf), StepMax(static_cast<std::size_t>(NumSteps), 0),
        Assignment(Messages.size(), -1) {}

  bool fits(int Step, int MessageIndex) const {
    const RedistMessage &M =
        Messages[static_cast<std::size_t>(MessageIndex)];
    return SenderOf[static_cast<std::size_t>(Step)]
                   [static_cast<std::size_t>(M.Source)] < 0 &&
           ReceiverOf[static_cast<std::size_t>(Step)]
                     [static_cast<std::size_t>(M.Dest)] < 0;
  }

  /// The paper's "similar message size" rule: among feasible steps,
  /// minimize the cost increase `max(0, size - stepMax)`; on a tie (no
  /// increase), best-fit the smallest stepMax that still covers the
  /// message. Returns -1 when no step fits.
  int chooseStep(int MessageIndex) const {
    const long Size = Messages[static_cast<std::size_t>(MessageIndex)].Size;
    int Best = -1;
    long BestIncrease = std::numeric_limits<long>::max();
    long BestSlack = std::numeric_limits<long>::max();
    for (int Step = 0; Step < numSteps(); ++Step) {
      if (!fits(Step, MessageIndex))
        continue;
      long Max = StepMax[static_cast<std::size_t>(Step)];
      long Increase = std::max<long>(0, Size - Max);
      long Slack = Increase > 0 ? 0 : Max - Size;
      if (Increase < BestIncrease ||
          (Increase == BestIncrease && Slack < BestSlack)) {
        Best = Step;
        BestIncrease = Increase;
        BestSlack = Slack;
      }
    }
    return Best;
  }

  /// Places into the best-fitting step, running the alternating-chain
  /// repair when the greedy finds no free slot.
  void placeBestFit(int MessageIndex) {
    int Step = chooseStep(MessageIndex);
    if (Step < 0)
      Step = repair(MessageIndex);
    insert(Step, MessageIndex);
  }

  int numSteps() const { return static_cast<int>(StepMax.size()); }

  RedistSchedule take() const {
    RedistSchedule Result;
    Result.Steps.resize(static_cast<std::size_t>(numSteps()));
    for (std::size_t I = 0; I < Assignment.size(); ++I)
      if (Assignment[I] >= 0)
        Result.Steps[static_cast<std::size_t>(Assignment[I])].push_back(
            static_cast<int>(I));
    return Result;
  }

private:
  const std::vector<RedistMessage> &Messages;
  int NumProcessors;
  /// Per step: message index occupying each sender / receiver, -1 free.
  std::vector<std::vector<int>> SenderOf;
  std::vector<std::vector<int>> ReceiverOf;
  /// Running per-step maxima (heuristic only; never decreased).
  std::vector<long> StepMax;
  /// Message -> step.
  std::vector<int> Assignment;

  void insert(int Step, int MessageIndex) {
    assert(fits(Step, MessageIndex) && "contention in chosen step");
    const RedistMessage &M =
        Messages[static_cast<std::size_t>(MessageIndex)];
    SenderOf[static_cast<std::size_t>(Step)]
            [static_cast<std::size_t>(M.Source)] = MessageIndex;
    ReceiverOf[static_cast<std::size_t>(Step)]
              [static_cast<std::size_t>(M.Dest)] = MessageIndex;
    StepMax[static_cast<std::size_t>(Step)] =
        std::max(StepMax[static_cast<std::size_t>(Step)], M.Size);
    Assignment[static_cast<std::size_t>(MessageIndex)] = Step;
  }

  void remove(int Step, int MessageIndex) {
    const RedistMessage &M =
        Messages[static_cast<std::size_t>(MessageIndex)];
    SenderOf[static_cast<std::size_t>(Step)]
            [static_cast<std::size_t>(M.Source)] = -1;
    ReceiverOf[static_cast<std::size_t>(Step)]
              [static_cast<std::size_t>(M.Dest)] = -1;
    Assignment[static_cast<std::size_t>(MessageIndex)] = -1;
  }

  /// Frees a slot for \p MessageIndex via the Koenig alternating chain
  /// between a step A lacking the sender and a step B lacking the
  /// receiver; returns A (which afterwards fits the message).
  int repair(int MessageIndex) {
    const RedistMessage &M =
        Messages[static_cast<std::size_t>(MessageIndex)];
    int A = -1, B = -1;
    for (int Step = 0; Step < numSteps() && (A < 0 || B < 0); ++Step) {
      if (A < 0 && SenderOf[static_cast<std::size_t>(Step)]
                           [static_cast<std::size_t>(M.Source)] < 0)
        A = Step;
      else if (B < 0 && ReceiverOf[static_cast<std::size_t>(Step)]
                                  [static_cast<std::size_t>(M.Dest)] < 0)
        B = Step;
    }
    assert(A >= 0 && B >= 0 &&
           "degree exceeds the step count: caller sized the builder wrong");

    // Walk the alternating chain starting from the receiver conflict in
    // A, swapping occupants between A and B until A frees up.
    int Evictee = ReceiverOf[static_cast<std::size_t>(A)]
                            [static_cast<std::size_t>(M.Dest)];
    bool MatchSender = true; // next conflict in B is at the evictee's sender
    int From = A, To = B;
    while (Evictee >= 0) {
      remove(From, Evictee);
      const RedistMessage &E =
          Messages[static_cast<std::size_t>(Evictee)];
      int Next =
          MatchSender
              ? SenderOf[static_cast<std::size_t>(To)]
                        [static_cast<std::size_t>(E.Source)]
              : ReceiverOf[static_cast<std::size_t>(To)]
                          [static_cast<std::size_t>(E.Dest)];
      if (Next >= 0)
        remove(To, Next);
      insert(To, Evictee);
      Evictee = Next;
      std::swap(From, To);
      MatchSender = !MatchSender;
    }
    assert(fits(A, MessageIndex) && "alternating chain failed to free A");
    return A;
  }
};

} // namespace

ScpaAnalysis mutk::analyzeConflicts(const std::vector<RedistMessage> &Messages,
                                    int NumProcessors) {
  ScpaAnalysis Analysis;
  Analysis.MaxDegree = maxDegree(Messages, NumProcessors);
  if (Messages.empty())
    return Analysis;

  // Per-processor message lists on each side.
  std::vector<std::vector<int>> BySender(
      static_cast<std::size_t>(NumProcessors));
  std::vector<std::vector<int>> ByReceiver(
      static_cast<std::size_t>(NumProcessors));
  for (std::size_t I = 0; I < Messages.size(); ++I) {
    BySender[static_cast<std::size_t>(Messages[I].Source)].push_back(
        static_cast<int>(I));
    ByReceiver[static_cast<std::size_t>(Messages[I].Dest)].push_back(
        static_cast<int>(I));
  }

  // MDMSs: message sets of maximum-degree processors, senders first
  // (this fixes the "earlier MDMS" order used for implicit conflicts).
  for (int P = 0; P < NumProcessors; ++P)
    if (static_cast<int>(BySender[static_cast<std::size_t>(P)].size()) ==
        Analysis.MaxDegree)
      Analysis.Sets.push_back(
          Mdms{P, true, BySender[static_cast<std::size_t>(P)]});
  for (int P = 0; P < NumProcessors; ++P)
    if (static_cast<int>(ByReceiver[static_cast<std::size_t>(P)].size()) ==
        Analysis.MaxDegree)
      Analysis.Sets.push_back(
          Mdms{P, false, ByReceiver[static_cast<std::size_t>(P)]});

  // Membership map: message -> MDMS ids.
  std::vector<std::vector<int>> Membership(Messages.size());
  for (std::size_t SetId = 0; SetId < Analysis.Sets.size(); ++SetId)
    for (int Index : Analysis.Sets[SetId].MessageIndices)
      Membership[static_cast<std::size_t>(Index)].push_back(
          static_cast<int>(SetId));

  // Explicit conflict points: a message inside two MDMSs.
  std::vector<bool> IsConflict(Messages.size(), false);
  for (std::size_t I = 0; I < Messages.size(); ++I)
    if (Membership[I].size() >= 2) {
      Analysis.ExplicitConflicts.push_back(static_cast<int>(I));
      IsConflict[I] = true;
    }

  // Implicit conflict points: two messages of *different* MDMSs meeting
  // at a non-maximal processor; the message of the earlier MDMS
  // conflicts (the other is "restricted" by it, paper §3.1).
  auto scanSide = [&](const std::vector<std::vector<int>> &ByProcessor,
                      bool SenderSide) {
    for (int P = 0; P < NumProcessors; ++P) {
      const auto &List = ByProcessor[static_cast<std::size_t>(P)];
      if (static_cast<int>(List.size()) == Analysis.MaxDegree)
        continue; // maximal: it is an MDMS itself
      // Collect members of MDMSs among this processor's messages.
      int First = -1, FirstSet = std::numeric_limits<int>::max();
      int Distinct = 0, LastSet = -1;
      for (int Index : List) {
        const auto &Sets = Membership[static_cast<std::size_t>(Index)];
        if (Sets.empty())
          continue;
        int SetId = Sets.front();
        if (SetId != LastSet) {
          ++Distinct;
          LastSet = SetId;
        }
        if (SetId < FirstSet) {
          FirstSet = SetId;
          First = Index;
        }
      }
      if (Distinct >= 2 && First >= 0 &&
          !IsConflict[static_cast<std::size_t>(First)]) {
        Analysis.ImplicitConflicts.push_back(First);
        IsConflict[static_cast<std::size_t>(First)] = true;
      }
      (void)SenderSide;
    }
  };
  scanSide(BySender, true);
  scanSide(ByReceiver, false);

  return Analysis;
}

RedistSchedule mutk::scheduleScpa(const std::vector<RedistMessage> &Messages,
                                  int NumProcessors) {
  if (Messages.empty())
    return RedistSchedule{};
  ScpaAnalysis Analysis = analyzeConflicts(Messages, NumProcessors);
  StepBuilder Builder(Messages, NumProcessors,
                      std::max(1, Analysis.MaxDegree));

  std::vector<bool> Placed(Messages.size(), false);
  auto placeAll = [&](std::vector<int> Indices, bool BySize) {
    if (BySize)
      std::sort(Indices.begin(), Indices.end(), [&](int A, int B) {
        if (Messages[static_cast<std::size_t>(A)].Size !=
            Messages[static_cast<std::size_t>(B)].Size)
          return Messages[static_cast<std::size_t>(A)].Size >
                 Messages[static_cast<std::size_t>(B)].Size;
        return A < B;
      });
    for (int Index : Indices) {
      if (Placed[static_cast<std::size_t>(Index)])
        continue;
      Builder.placeBestFit(Index);
      Placed[static_cast<std::size_t>(Index)] = true;
    }
  };

  // Phase 1: all conflict points (explicit then implicit). On the still
  // empty steps the best-fit rule puts them into a common step whenever
  // the contention rules allow (the paper's "schedule all the conflict
  // points into the same schedule step"); ordering them by size keeps
  // the step maxima tight.
  {
    std::vector<int> Conflicts = Analysis.ExplicitConflicts;
    Conflicts.insert(Conflicts.end(), Analysis.ImplicitConflicts.begin(),
                     Analysis.ImplicitConflicts.end());
    placeAll(std::move(Conflicts), /*BySize=*/true);
  }

  // Phase 2: remaining MDMS messages, non-increasing size.
  std::vector<int> MdmsMessages;
  for (const Mdms &Set : Analysis.Sets)
    for (int Index : Set.MessageIndices)
      MdmsMessages.push_back(Index);
  placeAll(std::move(MdmsMessages), /*BySize=*/true);

  // Phase 3: everything else, non-increasing size.
  std::vector<int> Rest;
  for (std::size_t I = 0; I < Messages.size(); ++I)
    if (!Placed[I])
      Rest.push_back(static_cast<int>(I));
  placeAll(std::move(Rest), /*BySize=*/true);

  RedistSchedule Result = Builder.take();
  // Drop empty steps (possible when MaxDegree overestimates need after
  // conflicts merged).
  Result.Steps.erase(
      std::remove_if(Result.Steps.begin(), Result.Steps.end(),
                     [](const std::vector<int> &S) { return S.empty(); }),
      Result.Steps.end());
  return Result;
}
