//===- redist/Schedule.cpp - Contention-free step schedules -----------------===//

#include "redist/Schedule.h"

#include <algorithm>
#include <cassert>

using namespace mutk;

long RedistSchedule::totalStepMaxima(
    const std::vector<RedistMessage> &Messages) const {
  long Total = 0;
  for (const auto &Step : Steps) {
    long Max = 0;
    for (int Index : Step)
      Max = std::max(Max, Messages[static_cast<std::size_t>(Index)].Size);
    Total += Max;
  }
  return Total;
}

double RedistSchedule::cost(const std::vector<RedistMessage> &Messages,
                            double StartupCost) const {
  return static_cast<double>(numSteps()) * StartupCost +
         static_cast<double>(totalStepMaxima(Messages));
}

bool mutk::isValidSchedule(const RedistSchedule &Schedule,
                           const std::vector<RedistMessage> &Messages,
                           int NumProcessors) {
  std::vector<int> SeenCount(Messages.size(), 0);
  for (const auto &Step : Schedule.Steps) {
    std::vector<bool> Sending(static_cast<std::size_t>(NumProcessors), false);
    std::vector<bool> Receiving(static_cast<std::size_t>(NumProcessors),
                                false);
    for (int Index : Step) {
      if (Index < 0 || static_cast<std::size_t>(Index) >= Messages.size())
        return false;
      ++SeenCount[static_cast<std::size_t>(Index)];
      const RedistMessage &M = Messages[static_cast<std::size_t>(Index)];
      if (Sending[static_cast<std::size_t>(M.Source)] ||
          Receiving[static_cast<std::size_t>(M.Dest)])
        return false; // node contention
      Sending[static_cast<std::size_t>(M.Source)] = true;
      Receiving[static_cast<std::size_t>(M.Dest)] = true;
    }
  }
  return std::all_of(SeenCount.begin(), SeenCount.end(),
                     [](int Count) { return Count == 1; });
}
