//===- redist/Baselines.h - Comparison schedulers ---------------*- C++ -*-===//
///
/// \file
/// Baseline schedulers for the SCPA evaluation. The APPT paper compares
/// against Wang-Guo-Wei's divide-and-conquer algorithm; that exact code
/// is not public, so the stand-in here is first-fit-decreasing list
/// scheduling — the same minimal-steps guarantee and size awareness, but
/// without SCPA's conflict-point preplacement (see DESIGN.md §5). A
/// size-oblivious scheduler is included as the floor.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_REDIST_BASELINES_H
#define MUTK_REDIST_BASELINES_H

#include "redist/Schedule.h"

namespace mutk {

/// First-fit-decreasing: messages in non-increasing size order, each
/// into the feasible step minimizing the cost increase. Minimal steps on
/// GEN_BLOCK inputs in practice; no conflict-point analysis.
RedistSchedule scheduleGreedyFfd(const std::vector<RedistMessage> &Messages,
                                 int NumProcessors);

/// Size-oblivious list scheduling: messages in array order into the
/// first feasible step. Valid, usually minimal-steps, poor cost.
RedistSchedule scheduleNaive(const std::vector<RedistMessage> &Messages,
                             int NumProcessors);

/// Divide-and-conquer in the spirit of Wang-Guo-Wei 2004 (the paper's
/// comparator): split the message sequence (which is contiguous in array
/// order under GEN_BLOCK), schedule both halves recursively, then merge
/// the halves' steps pairwise, relocating contended messages by first
/// fit in order. Step-conscious but size-oblivious — the weakness SCPA's
/// conflict-point analysis addresses.
RedistSchedule
scheduleDivideConquer(const std::vector<RedistMessage> &Messages,
                      int NumProcessors);

} // namespace mutk

#endif // MUTK_REDIST_BASELINES_H
