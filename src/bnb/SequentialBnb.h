//===- bnb/SequentialBnb.h - Algorithm BBU (single processor) ---*- C++ -*-===//
///
/// \file
/// The sequential branch-and-bound of Wu-Chao-Tang 1999 ("Algorithm BBU"):
/// DFS over partial topologies, pruning by `LB(v) >= UB`, with the UPGMM
/// tree as the initial feasible solution. This is the single-processor
/// baseline of both papers' experiments.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_SEQUENTIALBNB_H
#define MUTK_BNB_SEQUENTIALBNB_H

#include "bnb/BnbOptions.h"
#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

#include <vector>

namespace mutk {

/// Outcome of a MUT solve.
struct MutResult {
  /// The best (minimum-weight) ultrametric tree found, original labels.
  PhyloTree Tree;
  /// Its weight. Equals the optimum when `Stats.Complete`.
  double Cost = 0.0;
  BnbStats Stats;
  /// Every optimal tree, filled only under `CollectAllOptimal`.
  std::vector<PhyloTree> AllOptimal;
};

/// Solves the (metric) MUT problem for \p M exactly (up to
/// `MaxBranchedNodes`). Handles `n <= 1` trivially; requires
/// `n <= MaxBnbSpecies`.
MutResult solveMutSequential(const DistanceMatrix &M,
                             const BnbOptions &Options = {});

} // namespace mutk

#endif // MUTK_BNB_SEQUENTIALBNB_H
