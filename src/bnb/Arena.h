//===- bnb/Arena.h - Topology recycling pool --------------------*- C++ -*-===//
///
/// \file
/// A per-solver recycling pool for `Topology` storage (the optimer
/// `MemoryManager` idiom): `BnbEngine::branch()` draws child topologies
/// from the pool and the solvers return pruned / consumed ones, so after
/// warm-up an expansion performs zero heap allocation — the
/// copy-assignment inside `Topology::expandInto` reuses the recycled
/// vectors' capacity.
///
/// Not thread-safe by design: each worker owns its own arena (the
/// threaded solver keeps one per worker thread). Pooled objects are
/// plain `Topology` values, so destroying the arena frees everything.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_ARENA_H
#define MUTK_BNB_ARENA_H

#include "bnb/Topology.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace mutk {

/// Recycles `Topology` buffers across branch steps of one solver.
class TopologyArena {
public:
  /// \p NumSpecies sizes fresh pool entries: their node vector is
  /// reserved for a complete solve (`2n - 1` nodes) so even the first
  /// use never reallocates mid-insertion.
  explicit TopologyArena(int NumSpecies = 0) : Species(NumSpecies) {}

  /// Returns a recycled topology (buffers retained) or a fresh,
  /// pre-reserved one when the pool is dry.
  Topology acquire() {
    if (Free.empty()) {
      Topology T;
      T.reserveFor(Species);
      return T;
    }
    Topology T = std::move(Free.back());
    Free.pop_back();
    ++Reuses;
    return T;
  }

  /// Hands \p T's storage back to the pool.
  void release(Topology &&T) { Free.push_back(std::move(T)); }

  /// Topologies currently pooled, awaiting reuse.
  std::size_t pooled() const { return Free.size(); }

  /// `acquire()` calls served from the pool instead of allocating.
  std::uint64_t reuses() const { return Reuses; }

private:
  int Species = 0;
  std::vector<Topology> Free;
  std::uint64_t Reuses = 0;
};

} // namespace mutk

#endif // MUTK_BNB_ARENA_H
