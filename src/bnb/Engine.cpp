//===- bnb/Engine.cpp - Shared branch-and-bound machinery ------------------===//

#include "bnb/Engine.h"

#include "bnb/Arena.h"
#include "bnb/ThreeThree.h"
#include "heur/NniSearch.h"
#include "heur/Upgma.h"
#include "matrix/MetricUtils.h"

#include <algorithm>
#include <cassert>

using namespace mutk;

BnbEngine::BnbEngine(const DistanceMatrix &M, const BnbOptions &Options)
    : Opts(Options), OriginalNames(M.names()) {
  assert(M.size() >= 2 && "engine needs at least two species");
  assert(M.size() <= MaxBnbSpecies && "matrix exceeds the 64-species cap");

  // Step 1 of Algorithm BBU: maxmin relabeling (identity when the caller
  // guarantees the matrix is already in maxmin order).
  if (Opts.AssumeMaxminOrdered) {
    Perm.resize(static_cast<std::size_t>(M.size()));
    for (int I = 0; I < M.size(); ++I)
      Perm[static_cast<std::size_t>(I)] = I;
    Relabeled = M;
  } else {
    Perm = maxminPermutation(M);
    Relabeled = M.permuted(Perm);
  }

  // Lower-bound suffix sums: minHalf[i] = min_{j < i} M[i, j] / 2 is what
  // placing species i must at least add to the tree weight.
  const int N = Relabeled.size();
  std::vector<double> MinHalf(static_cast<std::size_t>(N), 0.0);
  // Cache-blocked scan over the relabeled matrix: each strict
  // lower-triangle row is consumed from its raw row pointer in L1-sized
  // panels with four independent accumulators, so the min reduction has
  // no length-I dependency chain. min is order-independent, so the
  // result is bit-identical to the naive scan.
  constexpr int Panel = 64;
  for (int I = 2; I < N; ++I) {
    const double *Row = Relabeled.row(I);
    double Min = Row[0];
    for (int J0 = 1; J0 < I; J0 += Panel) {
      const int End = std::min(I, J0 + Panel);
      double M0 = Min, M1 = Min, M2 = Min, M3 = Min;
      int J = J0;
      for (; J + 3 < End; J += 4) {
        M0 = std::min(M0, Row[J]);
        M1 = std::min(M1, Row[J + 1]);
        M2 = std::min(M2, Row[J + 2]);
        M3 = std::min(M3, Row[J + 3]);
      }
      for (; J < End; ++J)
        M0 = std::min(M0, Row[J]);
      Min = std::min(std::min(M0, M1), std::min(M2, M3));
    }
    MinHalf[static_cast<std::size_t>(I)] = Min / 2.0;
  }
  Remainder.assign(static_cast<std::size_t>(N) + 1, 0.0);
  for (int K = N - 1; K >= 0; --K)
    Remainder[static_cast<std::size_t>(K)] =
        Remainder[static_cast<std::size_t>(K) + 1] +
        MinHalf[static_cast<std::size_t>(K)];

  // Step 3: UPGMM feasible solution as the initial upper bound. Built on
  // the original matrix so the reported tree keeps original labels.
  InitialUbTree = upgmm(M);
  if (Opts.ImproveInitialUpperBound)
    sprImprove(InitialUbTree, M); // stays feasible; can only tighten
  InitialUb = InitialUbTree.weight();
  if (Opts.InitialUpperBound < InitialUb)
    InitialUb = Opts.InitialUpperBound;
}

Topology BnbEngine::rootTopology() const {
  return Topology::initialPair(Relabeled);
}

bool BnbEngine::threeThreeAllows(const Topology &Child) const {
  int Inserted = Child.numPlaced() - 1;
  switch (Opts.ThreeThree) {
  case ThreeThreeMode::None:
    return true;
  case ThreeThreeMode::ThirdSpecies:
    if (Inserted != 2)
      return true;
    break;
  case ThreeThreeMode::AllInsertions:
    break;
  }
  return insertionRespectsThreeThree(Child, Relabeled, Inserted);
}

void BnbEngine::branch(const Topology &T, double UpperBound, BnbStats &Stats,
                       std::vector<BranchedChild> &Children,
                       TopologyArena *Arena) const {
  assert(!isComplete(T) && "cannot branch a complete topology");
  const int Positions = T.numNodes();
  Children.clear();
  Children.reserve(static_cast<std::size_t>(Positions));
  // The 3-3 filter runs before the bound check when it is cheap (None is
  // a no-op; ThirdSpecies touches only the insertion of species 2) and
  // after it when it is O(k^2) per child (AllInsertions); see the
  // precedence note on ThreeThreeMode.
  const bool ThreeThreeFirst =
      Opts.ThreeThree != ThreeThreeMode::AllInsertions;
  // Positions 0..numNodes()-1 cover every edge once (the root position is
  // the above-root insertion).
  for (int Position = 0; Position < Positions; ++Position) {
    BranchedChild Child;
    if (Arena)
      Child.Node = Arena->acquire();
    T.expandInto(Position, Relabeled, Child.Node);
    ++Stats.Generated;
    // The bound is O(1) and evaluated exactly once per generated child;
    // the cached value feeds the guard, the sort, and the caller.
    Child.LowerBound = lowerBound(Child.Node);
    ++Stats.BoundEvals;
    if (ThreeThreeFirst && !threeThreeAllows(Child.Node)) {
      ++Stats.PrunedByThreeThree;
      if (Arena)
        Arena->release(std::move(Child.Node));
      continue;
    }
    if (Child.LowerBound >= UpperBound - Opts.Epsilon &&
        !(Opts.CollectAllOptimal &&
          Child.LowerBound <= UpperBound + Opts.Epsilon)) {
      ++Stats.PrunedByBound;
      if (Arena)
        Arena->release(std::move(Child.Node));
      continue;
    }
    if (!ThreeThreeFirst && !threeThreeAllows(Child.Node)) {
      ++Stats.PrunedByThreeThree;
      if (Arena)
        Arena->release(std::move(Child.Node));
      continue;
    }
    Children.push_back(std::move(Child));
  }
  std::sort(Children.begin(), Children.end(),
            [](const BranchedChild &A, const BranchedChild &B) {
              return A.LowerBound < B.LowerBound;
            });
}

PhyloTree BnbEngine::finalize(const Topology &T) const {
  PhyloTree Tree = T.toPhyloTree(Perm);
  Tree.setNames(OriginalNames);
  return Tree;
}
