//===- bnb/Engine.cpp - Shared branch-and-bound machinery ------------------===//

#include "bnb/Engine.h"

#include "bnb/ThreeThree.h"
#include "heur/NniSearch.h"
#include "heur/Upgma.h"
#include "matrix/MetricUtils.h"

#include <algorithm>
#include <cassert>

using namespace mutk;

BnbEngine::BnbEngine(const DistanceMatrix &M, const BnbOptions &Options)
    : Opts(Options), OriginalNames(M.names()) {
  assert(M.size() >= 2 && "engine needs at least two species");
  assert(M.size() <= MaxBnbSpecies && "matrix exceeds the 64-species cap");

  // Step 1 of Algorithm BBU: maxmin relabeling (identity when the caller
  // guarantees the matrix is already in maxmin order).
  if (Opts.AssumeMaxminOrdered) {
    Perm.resize(static_cast<std::size_t>(M.size()));
    for (int I = 0; I < M.size(); ++I)
      Perm[static_cast<std::size_t>(I)] = I;
    Relabeled = M;
  } else {
    Perm = maxminPermutation(M);
    Relabeled = M.permuted(Perm);
  }

  // Lower-bound suffix sums: minHalf[i] = min_{j < i} M[i, j] / 2 is what
  // placing species i must at least add to the tree weight.
  const int N = Relabeled.size();
  std::vector<double> MinHalf(static_cast<std::size_t>(N), 0.0);
  for (int I = 2; I < N; ++I) {
    double Min = Relabeled.at(I, 0);
    for (int J = 1; J < I; ++J)
      Min = std::min(Min, Relabeled.at(I, J));
    MinHalf[static_cast<std::size_t>(I)] = Min / 2.0;
  }
  Remainder.assign(static_cast<std::size_t>(N) + 1, 0.0);
  for (int K = N - 1; K >= 0; --K)
    Remainder[static_cast<std::size_t>(K)] =
        Remainder[static_cast<std::size_t>(K) + 1] +
        MinHalf[static_cast<std::size_t>(K)];

  // Step 3: UPGMM feasible solution as the initial upper bound. Built on
  // the original matrix so the reported tree keeps original labels.
  InitialUbTree = upgmm(M);
  if (Opts.ImproveInitialUpperBound)
    sprImprove(InitialUbTree, M); // stays feasible; can only tighten
  InitialUb = InitialUbTree.weight();
  if (Opts.InitialUpperBound < InitialUb)
    InitialUb = Opts.InitialUpperBound;
}

Topology BnbEngine::rootTopology() const {
  return Topology::initialPair(Relabeled);
}

bool BnbEngine::threeThreeAllows(const Topology &Child) const {
  int Inserted = Child.numPlaced() - 1;
  switch (Opts.ThreeThree) {
  case ThreeThreeMode::None:
    return true;
  case ThreeThreeMode::ThirdSpecies:
    if (Inserted != 2)
      return true;
    break;
  case ThreeThreeMode::AllInsertions:
    break;
  }
  return insertionRespectsThreeThree(Child, Relabeled, Inserted);
}

std::vector<Topology> BnbEngine::branch(const Topology &T, double UpperBound,
                                        BnbStats &Stats) const {
  assert(!isComplete(T) && "cannot branch a complete topology");
  std::vector<Topology> Children;
  Children.reserve(static_cast<std::size_t>(T.numNodes()));
  // Positions 0..numNodes()-1 cover every edge once (the root position is
  // the above-root insertion).
  for (int Position = 0; Position < T.numNodes(); ++Position) {
    Topology Child = T.withNextSpeciesAt(Position, Relabeled);
    ++Stats.Generated;
    if (lowerBound(Child) >= UpperBound - Opts.Epsilon &&
        !(Opts.CollectAllOptimal &&
          lowerBound(Child) <= UpperBound + Opts.Epsilon)) {
      ++Stats.PrunedByBound;
      continue;
    }
    if (!threeThreeAllows(Child)) {
      ++Stats.PrunedByThreeThree;
      continue;
    }
    Children.push_back(std::move(Child));
  }
  std::sort(Children.begin(), Children.end(),
            [this](const Topology &A, const Topology &B) {
              return lowerBound(A) < lowerBound(B);
            });
  return Children;
}

PhyloTree BnbEngine::finalize(const Topology &T) const {
  PhyloTree Tree = T.toPhyloTree(Perm);
  Tree.setNames(OriginalNames);
  return Tree;
}
