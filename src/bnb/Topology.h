//===- bnb/Topology.h - Partial topologies for the B&B ----------*- C++ -*-===//
///
/// \file
/// The node type of the branch-and-bound tree (BBT): a *partial topology*
/// over the first `k` species of the (maxmin-relabeled) matrix, carrying
/// the minimal feasible ultrametric heights. Branching inserts species `k`
/// on each of the `2k - 1` edges (every edge plus "above the root" —
/// Algorithm BBU's branching rule); heights and the tree weight are
/// maintained incrementally in O(k) per insertion using per-node leaf
/// bitmasks.
///
/// The bitmask representation caps a single exact solve at 64 species,
/// far beyond branch-and-bound reach (the paper's record is 38).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_TOPOLOGY_H
#define MUTK_BNB_TOPOLOGY_H

#include "matrix/DistanceMatrix.h"
#include "support/Bits.h"
#include "tree/PhyloTree.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace mutk {

/// Maximum species per exact solve (LeafMask width).
inline constexpr int MaxBnbSpecies = 64;

/// A partial ultrametric-tree topology over species `0..k-1` with minimal
/// feasible heights for a fixed distance matrix.
///
/// Copies are cheap (one vector of PODs); the B&B duplicates a topology
/// for every branching position.
class Topology {
public:
  /// One tree node. Leaves have `Leaf >= 0`; heights are minimal feasible.
  struct Node {
    std::int16_t Parent = -1;
    std::int16_t Left = -1;
    std::int16_t Right = -1;
    std::int16_t Leaf = -1;
    LeafMask Mask = 0;
    double Height = 0.0;

    bool isLeaf() const { return Leaf >= 0; }
  };

  Topology() = default;

  /// The BBT root: the unique topology over species 0 and 1
  /// (Algorithm BBU, Step 2). Requires `M.size() >= 2`.
  static Topology initialPair(const DistanceMatrix &M);

  /// Reconstructs a topology from raw nodes (deserialization support).
  ///
  /// Validates the structure: binary shape with consistent parent
  /// pointers, masks that union correctly, and leaves carrying exactly
  /// the species `0..k-1` (the BBT invariant). The cost is recomputed
  /// from the given heights. \returns nullopt on any violation.
  static std::optional<Topology> fromNodes(std::vector<Node> Nodes,
                                           int Root);

  /// Number of species already placed (`k`).
  int numPlaced() const { return Placed; }

  /// Number of tree nodes (`2k - 1`).
  int numNodes() const { return static_cast<int>(Nodes.size()); }

  int rootIndex() const { return Root; }

  const Node &node(int Index) const {
    assert(Index >= 0 && Index < numNodes() && "node out of range");
    return Nodes[static_cast<std::size_t>(Index)];
  }

  /// Current tree weight `w(T) = h(root) + sum of internal heights`.
  double cost() const { return Cost; }

  /// Number of branching positions for the next insertion (`2k - 1`).
  int numInsertPositions() const { return numNodes() + 1; }

  /// Returns a copy with species `numPlaced()` inserted at \p Position.
  ///
  /// Positions `0..numNodes()-1` split the edge above that node (the root
  /// "edge" position `rootIndex()` creates a new root, equivalent to the
  /// above-root insertion); position `numNodes()` also denotes above-root
  /// and is kept for enumeration convenience — to avoid generating the
  /// duplicate, iterate positions `0..numNodes()-1` only.
  Topology withNextSpeciesAt(int Position, const DistanceMatrix &M) const;

  /// Like `withNextSpeciesAt`, but writes the child into \p Out, reusing
  /// \p Out's existing buffer capacity. This is the arena fast path: a
  /// Topology recycled through a `TopologyArena` keeps its vectors, so
  /// after warm-up an expansion performs no heap allocation.
  void expandInto(int Position, const DistanceMatrix &M, Topology &Out) const;

  /// Reserves storage for a full solve over \p NumSpecies species
  /// (`2n - 1` nodes). Used by `TopologyArena` to pre-size fresh pool
  /// entries so even the first acquire never reallocates mid-insertion.
  void reserveFor(int NumSpecies) {
    if (NumSpecies <= 0)
      return;
    Nodes.reserve(static_cast<std::size_t>(2 * NumSpecies - 1));
    LeafNode.reserve(static_cast<std::size_t>(NumSpecies));
  }

  /// Node index of the leaf carrying \p Species.
  int leafNodeOf(int Species) const {
    assert(Species >= 0 && Species < Placed && "species not placed yet");
    return LeafNode[static_cast<std::size_t>(Species)];
  }

  /// Lowest node whose mask contains both species (both must be placed).
  int lcaOf(int SpeciesA, int SpeciesB) const;

  /// True if node \p A is a strict descendant of node \p B.
  bool isStrictlyBelow(int A, int B) const;

  /// Converts to a PhyloTree, mapping local species index `i` to
  /// `Relabel[i]` (pass the maxmin permutation to recover original ids).
  PhyloTree toPhyloTree(const std::vector<int> &Relabel) const;

  /// Recomputes heights/cost from scratch and compares with the
  /// incrementally maintained values; for tests.
  bool invariantsHold(const DistanceMatrix &M, double Tolerance = 1e-9) const;

private:
  std::vector<Node> Nodes;
  std::vector<std::int16_t> LeafNode; // species -> node index
  std::int16_t Root = -1;
  int Placed = 0;
  double Cost = 0.0;

  /// Max of `Row[j] / 2` over all j in \p Mask, where \p Row is the raw
  /// matrix row of the species being inserted.
  static double halfMaxTo(const double *Row, LeafMask Mask);

  /// Inserts species `Placed` at \p Position in place (the shared body of
  /// `withNextSpeciesAt` and `expandInto`).
  void insertNextAt(int Position, const DistanceMatrix &M);

  void recomputeCost();
};

} // namespace mutk

#endif // MUTK_BNB_TOPOLOGY_H
