//===- bnb/Checkpoint.h - B&B search-state capture --------------*- C++ -*-===//
///
/// \file
/// Checkpoint/resume support for the MUT solvers. Long exact solves are
/// the expensive asset of this codebase; a killed search that restarts
/// from scratch repays hours of branching for nothing. Every solver
/// (sequential DFS, best-first, threaded) can therefore periodically
/// hand its complete search state — the open frontier, the incumbent
/// tree and the upper bound — to a `CheckpointSink`, and every solver
/// accepts such a state through `BnbOptions::ResumeFrom` to continue
/// where a previous process stopped.
///
/// The sink receives *structured* state, not bytes: serialization lives
/// in `mp/Serialize.h` and durable storage in `persist/Checkpoint.h`, so
/// the solver layer stays free of I/O. Frontier topologies are in the
/// solver's maxmin-relabeled species space; resuming is only valid
/// against the same distance matrix (the persist layer records a matrix
/// fingerprint and refuses mismatches).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_CHECKPOINT_H
#define MUTK_BNB_CHECKPOINT_H

#include "bnb/BnbOptions.h"
#include "bnb/Topology.h"
#include "tree/PhyloTree.h"

#include <chrono>
#include <cstdint>
#include <vector>

namespace mutk {

/// A resumable snapshot of a branch-and-bound search.
struct SearchCheckpoint {
  /// Open BBT nodes, in the solver's maxmin-relabeled label space. For
  /// the DFS solver this is the stack bottom-to-top; order is only a
  /// scheduling hint and never affects the optimum.
  std::vector<Topology> Frontier;
  /// Best feasible tree found so far, original labels (the UPGMM seed
  /// when no complete topology improved on it yet).
  PhyloTree Incumbent;
  /// Its weight — the current upper bound.
  double UpperBound = 0.0;
  /// Counters accumulated up to the capture point; resuming continues
  /// them so `MaxBranchedNodes` budgets span interruptions.
  BnbStats Stats;
  /// Fingerprint of the matrix the search ran on (`fingerprint(M)`),
  /// stamped by the solver; the persist layer refuses to resume a
  /// checkpoint against a different matrix.
  std::uint64_t MatrixKey = 0;
};

/// Receives checkpoints at the cadence configured in `BnbOptions`.
/// Implementations must be safe to call from the solving thread (the
/// threaded solver invokes it from its master thread only, between
/// worker rounds) and should persist atomically — see
/// `persist/Checkpoint.h` for the file-backed implementation.
class CheckpointSink {
public:
  virtual ~CheckpointSink() = default;
  virtual void checkpoint(const SearchCheckpoint &State) = 0;
};

/// Shared resume guard: returns `Options.ResumeFrom` when it is usable
/// for a search over a matrix with fingerprint `MatrixKey`, or nullptr
/// (start fresh) when absent or stamped with a different matrix. A zero
/// key on either side skips the comparison (caller opted out of
/// fingerprinting).
const SearchCheckpoint *usableResume(const BnbOptions &Options,
                                     std::uint64_t MatrixKey);

/// Cadence tracker shared by the solvers: a checkpoint is due every
/// `EveryNodes` branched nodes or `EverySeconds` wall seconds, whichever
/// comes first. Both zero means "only the sink's presence decides" —
/// then `due()` is never true and no checkpoints are taken.
class CheckpointPacer {
public:
  CheckpointPacer(std::uint64_t EveryNodes, double EverySeconds,
                  std::uint64_t StartNodes = 0)
      : EveryNodes(EveryNodes), EverySeconds(EverySeconds),
        LastNodes(StartNodes),
        LastTime(std::chrono::steady_clock::now()) {}

  /// True when the configured node or time budget since the last
  /// checkpoint has elapsed.
  bool due(std::uint64_t BranchedNodes) const {
    if (EveryNodes > 0 && BranchedNodes - LastNodes >= EveryNodes)
      return true;
    if (EverySeconds > 0.0) {
      double Elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - LastTime)
                           .count();
      if (Elapsed >= EverySeconds)
        return true;
    }
    return false;
  }

  /// Resets both budgets after a checkpoint was written.
  void taken(std::uint64_t BranchedNodes) {
    LastNodes = BranchedNodes;
    LastTime = std::chrono::steady_clock::now();
  }

private:
  std::uint64_t EveryNodes;
  double EverySeconds;
  std::uint64_t LastNodes;
  std::chrono::steady_clock::time_point LastTime;
};

} // namespace mutk

#endif // MUTK_BNB_CHECKPOINT_H
