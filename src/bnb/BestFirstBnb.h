//===- bnb/BestFirstBnb.h - Best-first MUT search ----------------*- C++ -*-===//
///
/// \file
/// A best-first variant of Algorithm BBU: instead of the paper's DFS
/// ("v = get the tree for branch using DFS"), BBT nodes are expanded in
/// ascending lower-bound order from a priority queue. Best-first expands
/// the *provably minimal* number of nodes whose lower bound is below the
/// optimum, at the price of holding the whole frontier in memory — the
/// classic B&B trade-off this pair of solvers lets the ablation bench
/// quantify (`bench/ablation_search_order`).
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_BESTFIRSTBNB_H
#define MUTK_BNB_BESTFIRSTBNB_H

#include "bnb/SequentialBnb.h"

namespace mutk {

/// A MutResult extended with frontier-memory accounting.
struct BestFirstResult : MutResult {
  /// Largest number of BBT nodes simultaneously held in the queue.
  std::size_t PeakFrontier = 0;
};

/// Solves the MUT problem with best-first (lowest lower bound first)
/// expansion. Same optimum as `solveMutSequential`; `CollectAllOptimal`
/// is supported. `MaxBranchedNodes` bounds the expansion count.
BestFirstResult solveMutBestFirst(const DistanceMatrix &M,
                                  const BnbOptions &Options = {});

} // namespace mutk

#endif // MUTK_BNB_BESTFIRSTBNB_H
