//===- bnb/ThreeThree.cpp - 3-3 relationship constraint --------------------===//

#include "bnb/ThreeThree.h"

#include <algorithm>

using namespace mutk;

namespace {

/// If the matrix strictly singles out one closest pair among the triple,
/// writes it to (\p A, \p B) with \p C the remaining species and returns
/// true. Ties mean no constraint.
bool strictClosestPair(const DistanceMatrix &M, int I, int J, int K, int &A,
                       int &B, int &C) {
  double DIJ = M.at(I, J);
  double DIK = M.at(I, K);
  double DJK = M.at(J, K);
  if (DIJ < DIK && DIJ < DJK) {
    A = I, B = J, C = K;
    return true;
  }
  if (DIK < DIJ && DIK < DJK) {
    A = I, B = K, C = J;
    return true;
  }
  if (DJK < DIJ && DJK < DIK) {
    A = J, B = K, C = I;
    return true;
  }
  return false;
}

} // namespace

bool mutk::insertionRespectsThreeThree(const Topology &T,
                                       const DistanceMatrix &M, int S) {
  const int Placed = T.numPlaced();
  assert(S < Placed && "species must already be inserted");
  for (int J = 0; J < Placed; ++J) {
    if (J == S)
      continue;
    for (int K = J + 1; K < Placed; ++K) {
      if (K == S)
        continue;
      int A, B, C;
      if (!strictClosestPair(M, S, J, K, A, B, C))
        continue;
      // The closest pair's LCA must sit strictly below the LCA joining
      // the third species (which is the same node for both cross pairs).
      int PairLca = T.lcaOf(A, B);
      int TripleLca = T.lcaOf(A, C);
      if (!T.isStrictlyBelow(PairLca, TripleLca))
        return false;
    }
  }
  return true;
}

int mutk::countThreeThreeContradictions(const PhyloTree &T,
                                        const DistanceMatrix &M) {
  std::vector<int> Species = T.allSpecies();
  std::sort(Species.begin(), Species.end());

  auto strictlyBelow = [&](int NodeA, int NodeB) {
    for (int Cur = T.node(NodeA).Parent; Cur >= 0; Cur = T.node(Cur).Parent)
      if (Cur == NodeB)
        return true;
    return false;
  };

  int Contradictions = 0;
  const int N = static_cast<int>(Species.size());
  for (int X = 0; X < N; ++X)
    for (int Y = X + 1; Y < N; ++Y)
      for (int Z = Y + 1; Z < N; ++Z) {
        int A, B, C;
        if (!strictClosestPair(M, Species[static_cast<std::size_t>(X)],
                               Species[static_cast<std::size_t>(Y)],
                               Species[static_cast<std::size_t>(Z)], A, B, C))
          continue;
        int PairLca = T.lcaOfSpecies(A, B);
        int TripleLca = T.lcaOfSpecies(A, C);
        if (!strictlyBelow(PairLca, TripleLca))
          ++Contradictions;
      }
  return Contradictions;
}
