//===- bnb/BestFirstBnb.cpp - Best-first MUT search -------------------------===//

#include "bnb/BestFirstBnb.h"

#include "bnb/Arena.h"
#include "bnb/Checkpoint.h"
#include "bnb/Engine.h"
#include "matrix/Fingerprint.h"
#include "obs/Instruments.h"
#include "support/Audit.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mutk;

namespace {

/// Heap entry: the topology plus its cached lower bound (avoids
/// recomputing inside the heap comparator).
struct QueueEntry {
  Topology Node;
  double LowerBound = 0.0;
};

struct WorseLowerBound {
  bool operator()(const QueueEntry &A, const QueueEntry &B) const {
    return A.LowerBound > B.LowerBound;
  }
};

} // namespace

BestFirstResult mutk::solveMutBestFirst(const DistanceMatrix &M,
                                        const BnbOptions &Options) {
  assert(!(Options.Checkpoint && Options.CollectAllOptimal) &&
         "checkpointing does not capture the co-optimal set");
  BestFirstResult Result;
  if (M.size() <= 1) {
    if (M.size() == 1) {
      Result.Tree.addLeaf(0);
      Result.Tree.setNames(M.names());
    }
    return Result;
  }

  BnbEngine Engine(M, Options);
  const double Eps = Options.Epsilon;

  std::uint64_t MatrixKey = 0;
  if (Options.Checkpoint || Options.ResumeFrom)
    MatrixKey = fingerprint(M);
  const SearchCheckpoint *Resume = usableResume(Options, MatrixKey);

  double Ub = Engine.initialUpperBound();
  PhyloTree Best = Engine.initialTree();
  std::vector<PhyloTree> Optimal;

  // An explicit binary heap (std::push_heap/pop_heap over a vector)
  // instead of std::priority_queue: the checkpoint needs to walk the
  // whole frontier, which the adaptor hides.
  std::vector<QueueEntry> Queue;
  BnbStats &Stats = Result.Stats;
  if (Resume) {
    if (Resume->UpperBound < Ub) {
      Ub = Resume->UpperBound;
      Best = Resume->Incumbent;
      Best.setNames(M.names());
    }
    Stats = Resume->Stats;
    Stats.Complete = true; // re-decided by this run
    Queue.reserve(Resume->Frontier.size());
    for (const Topology &T : Resume->Frontier)
      Queue.push_back(QueueEntry{T, Engine.lowerBound(T)});
    std::make_heap(Queue.begin(), Queue.end(), WorseLowerBound{});
  } else {
    Topology Root = Engine.rootTopology();
    double Lb = Engine.lowerBound(Root);
    Queue.push_back(QueueEntry{std::move(Root), Lb});
  }

  CheckpointPacer Pacer(Options.CheckpointEveryNodes,
                        Options.CheckpointEverySeconds, Stats.Branched);
  auto maybeCheckpoint = [&]() {
    if (!Options.Checkpoint || !Pacer.due(Stats.Branched))
      return;
    SearchCheckpoint Ck;
    Ck.Frontier.reserve(Queue.size());
    for (const QueueEntry &Entry : Queue)
      Ck.Frontier.push_back(Entry.Node);
    Ck.Incumbent = Best;
    Ck.UpperBound = Ub;
    Ck.Stats = Stats;
    Ck.Stats.Complete = false; // a checkpoint is an unfinished search
    Ck.MatrixKey = MatrixKey;
    Options.Checkpoint->checkpoint(Ck);
    Pacer.taken(Stats.Branched);
  };

  TopologyArena Arena(Engine.numSpecies());
  std::vector<BranchedChild> Children;
  while (!Queue.empty()) {
    if (Options.MaxBranchedNodes != 0 &&
        Stats.Branched >= Options.MaxBranchedNodes) {
      Stats.Complete = false;
      break;
    }
    Result.PeakFrontier = std::max(Result.PeakFrontier, Queue.size());

    std::pop_heap(Queue.begin(), Queue.end(), WorseLowerBound{});
    QueueEntry Entry = std::move(Queue.back());
    Queue.pop_back();

    // Best-first property: once the best lower bound reaches the upper
    // bound, nothing left in the queue can improve on it.
    if (Entry.LowerBound >= Ub - Eps &&
        !(Options.CollectAllOptimal && Entry.LowerBound <= Ub + Eps)) {
      Stats.PrunedByBound += Queue.size() + 1;
      break;
    }

    ++Stats.Branched;
    Engine.branch(Entry.Node, Ub, Stats, Children, &Arena);
    Arena.release(std::move(Entry.Node));
    for (BranchedChild &BC : Children) {
      Topology &Child = BC.Node;
      if (Engine.isComplete(Child)) {
        double Cost = Child.cost();
        if (Cost < Ub - Eps) {
          Ub = Cost;
          Best = Engine.finalize(Child);
          ++Stats.UbUpdates;
          if (Options.CollectAllOptimal) {
            Optimal.clear();
            Optimal.push_back(Best);
          }
        } else if (Options.CollectAllOptimal && Cost <= Ub + Eps) {
          Optimal.push_back(Engine.finalize(Child));
        }
        Arena.release(std::move(Child));
        continue;
      }
      // The heap key is the bound branch() already computed — no
      // recomputation on insertion.
      Queue.push_back(QueueEntry{std::move(Child), BC.LowerBound});
      std::push_heap(Queue.begin(), Queue.end(), WorseLowerBound{});
    }
    maybeCheckpoint();
  }

  if (Options.CollectAllOptimal && Optimal.empty() &&
      std::fabs(Engine.initialTree().weight() - Ub) <= Eps)
    Optimal.push_back(Engine.initialTree());

  Result.Tree = std::move(Best);
  Result.Cost = Ub;
  Result.AllOptimal = std::move(Optimal);
  // Same contract as the DFS solver: the answer must be feasible.
  MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
             "best-first B&B result must be ultrametric");
  MUTK_AUDIT(Result.Tree.dominatesMatrix(M),
             "best-first B&B result must dominate the input matrix");
  if (Options.PublishMetrics)
    obs::recordBnbSolve(Result.Stats);
  return Result;
}
