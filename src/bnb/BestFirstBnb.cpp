//===- bnb/BestFirstBnb.cpp - Best-first MUT search -------------------------===//

#include "bnb/BestFirstBnb.h"

#include "bnb/Engine.h"
#include "obs/Instruments.h"
#include "support/Audit.h"

#include <cmath>
#include <queue>

using namespace mutk;

namespace {

/// Queue entry: the topology plus its cached lower bound (avoids
/// recomputing inside the heap comparator).
struct QueueEntry {
  Topology Node;
  double LowerBound = 0.0;
};

struct WorseLowerBound {
  bool operator()(const QueueEntry &A, const QueueEntry &B) const {
    return A.LowerBound > B.LowerBound;
  }
};

} // namespace

BestFirstResult mutk::solveMutBestFirst(const DistanceMatrix &M,
                                        const BnbOptions &Options) {
  BestFirstResult Result;
  if (M.size() <= 1) {
    if (M.size() == 1) {
      Result.Tree.addLeaf(0);
      Result.Tree.setNames(M.names());
    }
    return Result;
  }

  BnbEngine Engine(M, Options);
  const double Eps = Options.Epsilon;

  double Ub = Engine.initialUpperBound();
  PhyloTree Best = Engine.initialTree();
  std::vector<PhyloTree> Optimal;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, WorseLowerBound>
      Queue;
  {
    Topology Root = Engine.rootTopology();
    double Lb = Engine.lowerBound(Root);
    Queue.push(QueueEntry{std::move(Root), Lb});
  }

  BnbStats &Stats = Result.Stats;
  while (!Queue.empty()) {
    if (Options.MaxBranchedNodes != 0 &&
        Stats.Branched >= Options.MaxBranchedNodes) {
      Stats.Complete = false;
      break;
    }
    Result.PeakFrontier = std::max(Result.PeakFrontier, Queue.size());

    QueueEntry Entry = Queue.top();
    Queue.pop();

    // Best-first property: once the best lower bound reaches the upper
    // bound, nothing left in the queue can improve on it.
    if (Entry.LowerBound >= Ub - Eps &&
        !(Options.CollectAllOptimal && Entry.LowerBound <= Ub + Eps)) {
      Stats.PrunedByBound += Queue.size() + 1;
      break;
    }

    ++Stats.Branched;
    for (Topology &Child : Engine.branch(Entry.Node, Ub, Stats)) {
      if (Engine.isComplete(Child)) {
        double Cost = Child.cost();
        if (Cost < Ub - Eps) {
          Ub = Cost;
          Best = Engine.finalize(Child);
          ++Stats.UbUpdates;
          if (Options.CollectAllOptimal) {
            Optimal.clear();
            Optimal.push_back(Best);
          }
        } else if (Options.CollectAllOptimal && Cost <= Ub + Eps) {
          Optimal.push_back(Engine.finalize(Child));
        }
        continue;
      }
      double Lb = Engine.lowerBound(Child);
      Queue.push(QueueEntry{std::move(Child), Lb});
    }
  }

  if (Options.CollectAllOptimal && Optimal.empty() &&
      std::fabs(Engine.initialTree().weight() - Ub) <= Eps)
    Optimal.push_back(Engine.initialTree());

  Result.Tree = std::move(Best);
  Result.Cost = Ub;
  Result.AllOptimal = std::move(Optimal);
  // Same contract as the DFS solver: the answer must be feasible.
  MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
             "best-first B&B result must be ultrametric");
  MUTK_AUDIT(Result.Tree.dominatesMatrix(M),
             "best-first B&B result must dominate the input matrix");
  if (Options.PublishMetrics)
    obs::recordBnbSolve(Result.Stats);
  return Result;
}
