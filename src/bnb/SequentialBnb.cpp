//===- bnb/SequentialBnb.cpp - Algorithm BBU (single processor) -----------===//

#include "bnb/SequentialBnb.h"

#include "bnb/Arena.h"
#include "bnb/Checkpoint.h"
#include "bnb/Engine.h"
#include "matrix/Fingerprint.h"
#include "obs/Instruments.h"
#include "support/Audit.h"

#include <cassert>
#include <cmath>

using namespace mutk;

namespace {

/// Handles the degenerate sizes every solver shares.
bool solveTrivial(const DistanceMatrix &M, MutResult &Result) {
  if (M.size() > 1)
    return false;
  if (M.size() == 1) {
    Result.Tree.addLeaf(0);
    Result.Tree.setNames(M.names());
  }
  Result.Cost = 0.0;
  return true;
}

} // namespace

/// Resume validity shared by all solvers: a checkpoint stamped with a
/// different matrix fingerprint must not seed this search. \returns the
/// usable checkpoint or nullptr (fresh start).
const SearchCheckpoint *mutk::usableResume(const BnbOptions &Options,
                                           std::uint64_t MatrixKey) {
  const SearchCheckpoint *Resume = Options.ResumeFrom;
  if (!Resume)
    return nullptr;
  if (Resume->MatrixKey != 0 && MatrixKey != 0 &&
      Resume->MatrixKey != MatrixKey)
    return nullptr;
  return Resume;
}

MutResult mutk::solveMutSequential(const DistanceMatrix &M,
                                   const BnbOptions &Options) {
  assert(!(Options.Checkpoint && Options.CollectAllOptimal) &&
         "checkpointing does not capture the co-optimal set");
  MutResult Result;
  if (solveTrivial(M, Result))
    return Result;

  BnbEngine Engine(M, Options);
  const double Eps = Options.Epsilon;

  // The fingerprint stamps checkpoints (and guards resumes) so a state
  // file can never be replayed onto the wrong matrix. Only computed when
  // the feature is in use: canonicalization is O(n^2).
  std::uint64_t MatrixKey = 0;
  if (Options.Checkpoint || Options.ResumeFrom)
    MatrixKey = fingerprint(M);
  const SearchCheckpoint *Resume = usableResume(Options, MatrixKey);

  double Ub = Engine.initialUpperBound();
  PhyloTree Best = Engine.initialTree();
  std::vector<PhyloTree> Optimal;

  std::vector<Topology> Stack;
  BnbStats &Stats = Result.Stats;
  if (Resume) {
    Stack = Resume->Frontier;
    if (Resume->UpperBound < Ub) {
      Ub = Resume->UpperBound;
      Best = Resume->Incumbent;
      Best.setNames(M.names());
    }
    Stats = Resume->Stats;
    Stats.Complete = true; // re-decided by this run
  } else {
    Stack.push_back(Engine.rootTopology());
  }

  CheckpointPacer Pacer(Options.CheckpointEveryNodes,
                        Options.CheckpointEverySeconds, Stats.Branched);
  auto maybeCheckpoint = [&]() {
    if (!Options.Checkpoint || !Pacer.due(Stats.Branched))
      return;
    SearchCheckpoint Ck;
    Ck.Frontier = Stack;
    Ck.Incumbent = Best;
    Ck.UpperBound = Ub;
    Ck.Stats = Stats;
    Ck.Stats.Complete = false; // a checkpoint is an unfinished search
    Ck.MatrixKey = MatrixKey;
    Options.Checkpoint->checkpoint(Ck);
    Pacer.taken(Stats.Branched);
  };

  // The arena recycles topology buffers across expansions; Children is
  // the reused branch() output so the hot loop stays allocation-free
  // after warm-up.
  TopologyArena Arena(Engine.numSpecies());
  std::vector<BranchedChild> Children;
  while (!Stack.empty()) {
    if (Options.MaxBranchedNodes != 0 &&
        Stats.Branched >= Options.MaxBranchedNodes) {
      Stats.Complete = false;
      break;
    }
    Topology T = std::move(Stack.back());
    Stack.pop_back();

    // Re-check the bound: the UB may have improved since this node was
    // pushed.
    double Lb = Engine.lowerBound(T);
    if (Lb >= Ub - Eps && !(Options.CollectAllOptimal && Lb <= Ub + Eps)) {
      ++Stats.PrunedByBound;
      Arena.release(std::move(T));
      continue;
    }

    ++Stats.Branched;
    Engine.branch(T, Ub, Stats, Children, &Arena);
    Arena.release(std::move(T));
    // branch() returns children best-first; push in reverse so the DFS
    // pops the most promising child first.
    for (std::size_t I = Children.size(); I > 0; --I) {
      Topology &Child = Children[I - 1].Node;
      if (Engine.isComplete(Child)) {
        double Cost = Child.cost();
        if (Cost < Ub - Eps) {
          Ub = Cost;
          Best = Engine.finalize(Child);
          ++Stats.UbUpdates;
          if (Options.CollectAllOptimal) {
            Optimal.clear();
            Optimal.push_back(Best);
          }
        } else if (Options.CollectAllOptimal && Cost <= Ub + Eps) {
          Optimal.push_back(Engine.finalize(Child));
        }
        Arena.release(std::move(Child));
        continue;
      }
      Stack.push_back(std::move(Child));
    }
    // After the expansion is fully applied the state is consistent:
    // the popped node is represented by its surviving children.
    maybeCheckpoint();
  }

  // The UPGMM seed may already have been optimal.
  if (Options.CollectAllOptimal && Optimal.empty() &&
      std::fabs(Engine.initialTree().weight() - Ub) <= Eps)
    Optimal.push_back(Engine.initialTree());

  Result.Tree = std::move(Best);
  Result.Cost = Ub;
  Result.AllOptimal = std::move(Optimal);
  // Any answer — optimal, truncated, or the UPGMM seed — must be a
  // feasible ultrametric tree for M (Definition 8: d_T >= M).
  MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
             "B&B result must be ultrametric (leaves at 0, heights "
             "nondecreasing toward the root)");
  MUTK_AUDIT(Result.Tree.dominatesMatrix(M),
             "B&B result must dominate the input matrix (d_T >= M)");
  if (Options.PublishMetrics)
    obs::recordBnbSolve(Result.Stats);
  return Result;
}
