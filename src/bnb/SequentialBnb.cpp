//===- bnb/SequentialBnb.cpp - Algorithm BBU (single processor) -----------===//

#include "bnb/SequentialBnb.h"

#include "bnb/Engine.h"
#include "obs/Instruments.h"
#include "support/Audit.h"

#include <cmath>

using namespace mutk;

namespace {

/// Handles the degenerate sizes every solver shares.
bool solveTrivial(const DistanceMatrix &M, MutResult &Result) {
  if (M.size() > 1)
    return false;
  if (M.size() == 1) {
    Result.Tree.addLeaf(0);
    Result.Tree.setNames(M.names());
  }
  Result.Cost = 0.0;
  return true;
}

} // namespace

MutResult mutk::solveMutSequential(const DistanceMatrix &M,
                                   const BnbOptions &Options) {
  MutResult Result;
  if (solveTrivial(M, Result))
    return Result;

  BnbEngine Engine(M, Options);
  const double Eps = Options.Epsilon;

  double Ub = Engine.initialUpperBound();
  PhyloTree Best = Engine.initialTree();
  std::vector<PhyloTree> Optimal;

  std::vector<Topology> Stack;
  Stack.push_back(Engine.rootTopology());

  BnbStats &Stats = Result.Stats;
  while (!Stack.empty()) {
    if (Options.MaxBranchedNodes != 0 &&
        Stats.Branched >= Options.MaxBranchedNodes) {
      Stats.Complete = false;
      break;
    }
    Topology T = std::move(Stack.back());
    Stack.pop_back();

    // Re-check the bound: the UB may have improved since this node was
    // pushed.
    if (Engine.lowerBound(T) >= Ub - Eps &&
        !(Options.CollectAllOptimal && Engine.lowerBound(T) <= Ub + Eps)) {
      ++Stats.PrunedByBound;
      continue;
    }

    ++Stats.Branched;
    std::vector<Topology> Children = Engine.branch(T, Ub, Stats);
    // branch() returns children best-first; push in reverse so the DFS
    // pops the most promising child first.
    for (std::size_t I = Children.size(); I > 0; --I) {
      Topology &Child = Children[I - 1];
      if (Engine.isComplete(Child)) {
        double Cost = Child.cost();
        if (Cost < Ub - Eps) {
          Ub = Cost;
          Best = Engine.finalize(Child);
          ++Stats.UbUpdates;
          if (Options.CollectAllOptimal) {
            Optimal.clear();
            Optimal.push_back(Best);
          }
        } else if (Options.CollectAllOptimal && Cost <= Ub + Eps) {
          Optimal.push_back(Engine.finalize(Child));
        }
        continue;
      }
      Stack.push_back(std::move(Child));
    }
  }

  // The UPGMM seed may already have been optimal.
  if (Options.CollectAllOptimal && Optimal.empty() &&
      std::fabs(Engine.initialTree().weight() - Ub) <= Eps)
    Optimal.push_back(Engine.initialTree());

  Result.Tree = std::move(Best);
  Result.Cost = Ub;
  Result.AllOptimal = std::move(Optimal);
  // Any answer — optimal, truncated, or the UPGMM seed — must be a
  // feasible ultrametric tree for M (Definition 8: d_T >= M).
  MUTK_AUDIT(Result.Tree.hasMonotoneHeights(),
             "B&B result must be ultrametric (leaves at 0, heights "
             "nondecreasing toward the root)");
  MUTK_AUDIT(Result.Tree.dominatesMatrix(M),
             "B&B result must dominate the input matrix (d_T >= M)");
  if (Options.PublishMetrics)
    obs::recordBnbSolve(Result.Stats);
  return Result;
}
