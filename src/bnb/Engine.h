//===- bnb/Engine.h - Shared branch-and-bound machinery ---------*- C++ -*-===//
///
/// \file
/// The pieces of Algorithm BBU shared by every driver (sequential loop,
/// thread pool, simulated cluster): the maxmin relabeling, the UPGMM
/// initial upper bound, the admissible lower bound
/// `LB(v) = w(T_k) + sum_{i >= k} min_{j < i} M[i,j] / 2`
/// with precomputed suffix sums, and the branching rule with optional 3-3
/// filtering. Drivers differ only in how they schedule BBT nodes and share
/// the upper bound.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_ENGINE_H
#define MUTK_BNB_ENGINE_H

#include "bnb/BnbOptions.h"
#include "bnb/Topology.h"
#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

#include <vector>

namespace mutk {

class TopologyArena;

/// A surviving child of one branching step together with its lower
/// bound, computed exactly once inside `branch()` and reused by the
/// pruning guard, the best-first sort, and the caller (heap keys, pool
/// ordering).
struct BranchedChild {
  Topology Node;
  double LowerBound = 0.0;
};

/// Immutable per-solve machinery. Thread-safe after construction (all
/// methods are const and touch no mutable state).
class BnbEngine {
public:
  /// Prepares a solve of \p M: relabels via maxmin permutation, computes
  /// the lower-bound suffix sums and the UPGMM upper bound.
  /// Requires `2 <= M.size() <= MaxBnbSpecies`.
  BnbEngine(const DistanceMatrix &M, const BnbOptions &Options);

  int numSpecies() const { return Relabeled.size(); }
  const BnbOptions &options() const { return Opts; }
  const DistanceMatrix &relabeledMatrix() const { return Relabeled; }
  const std::vector<int> &permutation() const { return Perm; }

  /// Weight of the UPGMM tree (the initial upper bound).
  double initialUpperBound() const { return InitialUb; }

  /// The UPGMM tree in *original* species labels.
  const PhyloTree &initialTree() const { return InitialUbTree; }

  /// The BBT root: the unique 2-species topology.
  Topology rootTopology() const;

  /// `LB(v)`: current cost plus the remaining-species bound.
  double lowerBound(const Topology &T) const {
    return T.cost() + Remainder[static_cast<std::size_t>(T.numPlaced())];
  }

  /// True if every species has been placed.
  bool isComplete(const Topology &T) const {
    return T.numPlaced() == numSpecies();
  }

  /// Expands \p T: inserts the next species at every position, applies
  /// the 3-3 filter per `options().ThreeThree`, drops children whose
  /// lower bound reaches \p UpperBound, and fills \p Children with the
  /// survivors sorted by ascending cached lower bound (best-first).
  /// \p Children is cleared first; reusing one vector across calls keeps
  /// its capacity and makes the expansion allocation-free.
  ///
  /// Each generated child's lower bound is evaluated exactly once
  /// (`Stats.BoundEvals`) and cached in the `BranchedChild`. Pruning
  /// attribution follows the precedence documented on `ThreeThreeMode`.
  ///
  /// When \p Arena is non-null, child topologies are drawn from it and
  /// pruned ones are returned to it; callers should release consumed
  /// survivors back to the same arena.
  ///
  /// \param [in,out] Stats Generated / PrunedByBound / PrunedByThreeThree
  /// / BoundEvals are incremented.
  void branch(const Topology &T, double UpperBound, BnbStats &Stats,
              std::vector<BranchedChild> &Children,
              TopologyArena *Arena = nullptr) const;

  /// Converts a complete topology back to original labels and attaches
  /// species names.
  PhyloTree finalize(const Topology &T) const;

private:
  BnbOptions Opts;
  std::vector<int> Perm;
  DistanceMatrix Relabeled;
  std::vector<double> Remainder; // Remainder[k] = sum_{i>=k} minHalf[i]
  double InitialUb = 0.0;
  PhyloTree InitialUbTree;
  std::vector<std::string> OriginalNames;

  bool threeThreeAllows(const Topology &Child) const;
};

} // namespace mutk

#endif // MUTK_BNB_ENGINE_H
