//===- bnb/ThreeThree.h - 3-3 relationship constraint -----------*- C++ -*-===//
///
/// \file
/// The 3-3 relationship (HPCAsia paper, Definition 11 and Fan 2000):
/// a distance matrix and a rooted topology are *consistent* on a triple
/// `(i, j, k)` when `M[i,j] < min(M[i,k], M[j,k])` holds if and only if
/// `LCA(i,j)` lies strictly below `LCA(i,k) = LCA(j,k)`. A tree
/// contradicting many triples "cannot faithfully reflect the relation of
/// the original distance matrix"; the parallel B&B uses the constraint to
/// cut the solution space when inserting species.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_THREETHREE_H
#define MUTK_BNB_THREETHREE_H

#include "bnb/Topology.h"
#include "matrix/DistanceMatrix.h"
#include "tree/PhyloTree.h"

namespace mutk {

/// Checks every triple containing the just-inserted species \p S against
/// the matrix: if the matrix strictly singles out a closest pair in the
/// triple, the topology must place that pair's LCA strictly below the
/// triple's other LCAs. \returns true when no contradiction exists.
bool insertionRespectsThreeThree(const Topology &T, const DistanceMatrix &M,
                                 int S);

/// Counts contradicted triples over a complete tree (analysis utility;
/// O(n^3) LCA checks). Both the matrix rows and the tree's species ids
/// refer to the same labeling.
int countThreeThreeContradictions(const PhyloTree &T,
                                  const DistanceMatrix &M);

} // namespace mutk

#endif // MUTK_BNB_THREETHREE_H
