//===- bnb/Topology.cpp - Partial topologies for the B&B -------------------===//

#include "bnb/Topology.h"

#include "tree/UltrametricFit.h"

#include <algorithm>
#include <cmath>

using namespace mutk;

double Topology::halfMaxTo(const double *Row, LeafMask Mask) {
  double Max = 0.0;
  forEachLeaf(Mask, [&](int Leaf) { Max = std::max(Max, Row[Leaf]); });
  return Max / 2.0;
}

void Topology::recomputeCost() {
  double Sum = 0.0;
  for (const Node &N : Nodes)
    if (!N.isLeaf())
      Sum += N.Height;
  Cost = Sum + (Root >= 0 ? Nodes[static_cast<std::size_t>(Root)].Height : 0.0);
}

Topology Topology::initialPair(const DistanceMatrix &M) {
  assert(M.size() >= 2 && "initial pair needs two species");
  assert(M.size() <= MaxBnbSpecies && "matrix exceeds the 64-species cap");
  Topology T;
  T.Nodes.reserve(static_cast<std::size_t>(2 * M.size() - 1));

  Node Leaf0;
  Leaf0.Leaf = 0;
  Leaf0.Mask = leafBit(0);
  Node Leaf1;
  Leaf1.Leaf = 1;
  Leaf1.Mask = leafBit(1);
  Node RootNode;
  RootNode.Left = 0;
  RootNode.Right = 1;
  RootNode.Mask = Leaf0.Mask | Leaf1.Mask;
  RootNode.Height = M.at(0, 1) / 2.0;

  T.Nodes = {Leaf0, Leaf1, RootNode};
  T.Nodes[0].Parent = 2;
  T.Nodes[1].Parent = 2;
  T.Root = 2;
  T.LeafNode = {0, 1};
  T.Placed = 2;
  T.recomputeCost();
  return T;
}

std::optional<Topology> Topology::fromNodes(std::vector<Node> Nodes,
                                            int Root) {
  const int Count = static_cast<int>(Nodes.size());
  if (Count < 3 || Count % 2 == 0 || Count > 2 * MaxBnbSpecies - 1)
    return std::nullopt;
  if (Root < 0 || Root >= Count || Nodes[static_cast<std::size_t>(Root)].Parent >= 0)
    return std::nullopt;

  const int Placed = (Count + 1) / 2;
  std::vector<std::int16_t> LeafNode(static_cast<std::size_t>(Placed), -1);
  int Leaves = 0;
  for (int I = 0; I < Count; ++I) {
    const Node &N = Nodes[static_cast<std::size_t>(I)];
    if (N.isLeaf()) {
      if (N.Left >= 0 || N.Right >= 0 || N.Leaf >= Placed ||
          N.Mask != leafBit(N.Leaf) || N.Height != 0.0)
        return std::nullopt;
      if (LeafNode[static_cast<std::size_t>(N.Leaf)] >= 0)
        return std::nullopt; // duplicate species
      LeafNode[static_cast<std::size_t>(N.Leaf)] =
          static_cast<std::int16_t>(I);
      ++Leaves;
      continue;
    }
    if (N.Left < 0 || N.Right < 0 || N.Left >= Count || N.Right >= Count ||
        N.Left == N.Right)
      return std::nullopt;
    const Node &L = Nodes[static_cast<std::size_t>(N.Left)];
    const Node &R = Nodes[static_cast<std::size_t>(N.Right)];
    if (L.Parent != I || R.Parent != I)
      return std::nullopt;
    if ((L.Mask | R.Mask) != N.Mask || (L.Mask & R.Mask) != 0)
      return std::nullopt;
    if (N.Height < L.Height || N.Height < R.Height)
      return std::nullopt;
  }
  if (Leaves != Placed)
    return std::nullopt;
  if (Nodes[static_cast<std::size_t>(Root)].Mask !=
      (Placed == 64 ? ~LeafMask{0} : (LeafMask{1} << Placed) - 1))
    return std::nullopt;

  Topology T;
  T.Nodes = std::move(Nodes);
  T.LeafNode = std::move(LeafNode);
  T.Root = static_cast<std::int16_t>(Root);
  T.Placed = Placed;
  T.recomputeCost();
  return T;
}

Topology Topology::withNextSpeciesAt(int Position,
                                     const DistanceMatrix &M) const {
  Topology T = *this;
  T.insertNextAt(Position, M);
  return T;
}

void Topology::expandInto(int Position, const DistanceMatrix &M,
                          Topology &Out) const {
  assert(&Out != this && "expandInto cannot write onto its own source");
  // Copy-assignment reuses Out's vector capacity: a recycled arena
  // topology has already held a full solve's nodes, so this is a flat
  // memcpy-sized copy with no allocation.
  Out.Nodes = Nodes;
  Out.LeafNode = LeafNode;
  Out.Root = Root;
  Out.Placed = Placed;
  Out.Cost = Cost;
  Out.insertNextAt(Position, M);
}

void Topology::insertNextAt(int Position, const DistanceMatrix &M) {
  const int S = Placed;
  assert(S < M.size() && "all species already placed");
  assert(Position >= 0 && Position <= numNodes() && "bad insert position");

  const double *RowS = M.row(S);
  const bool AboveRoot = (Position == numNodes() || Position == Root);

  // New leaf node for species S.
  Node LeafS;
  LeafS.Leaf = static_cast<std::int16_t>(S);
  LeafS.Mask = leafBit(S);
  Nodes.push_back(LeafS);
  std::int16_t LeafIndex = static_cast<std::int16_t>(numNodes() - 1);
  LeafNode.push_back(LeafIndex);

  if (AboveRoot) {
    // New root adopting the old root and the new leaf; every previously
    // placed species is on the far side of the new internal node.
    Node NewRoot;
    NewRoot.Left = Root;
    NewRoot.Right = LeafIndex;
    NewRoot.Mask = Nodes[static_cast<std::size_t>(Root)].Mask | LeafS.Mask;
    NewRoot.Height =
        std::max(Nodes[static_cast<std::size_t>(Root)].Height,
                 halfMaxTo(RowS, Nodes[static_cast<std::size_t>(Root)].Mask));
    Nodes.push_back(NewRoot);
    std::int16_t NewRootIndex = static_cast<std::int16_t>(numNodes() - 1);
    Nodes[static_cast<std::size_t>(Root)].Parent = NewRootIndex;
    Nodes[static_cast<std::size_t>(LeafIndex)].Parent = NewRootIndex;
    Root = NewRootIndex;
  } else {
    // Split the edge above `Position`: new internal node V adopts the old
    // subtree C and the new leaf.
    std::int16_t C = static_cast<std::int16_t>(Position);
    std::int16_t P = Nodes[static_cast<std::size_t>(C)].Parent;
    assert(P >= 0 && "non-root position must have a parent");

    Node V;
    V.Parent = P;
    V.Left = C;
    V.Right = LeafIndex;
    V.Mask = Nodes[static_cast<std::size_t>(C)].Mask | LeafS.Mask;
    V.Height = std::max(Nodes[static_cast<std::size_t>(C)].Height,
                        halfMaxTo(RowS, Nodes[static_cast<std::size_t>(C)].Mask));
    Nodes.push_back(V);
    std::int16_t VIndex = static_cast<std::int16_t>(numNodes() - 1);

    Node &ParentNode = Nodes[static_cast<std::size_t>(P)];
    if (ParentNode.Left == C)
      ParentNode.Left = VIndex;
    else {
      assert(ParentNode.Right == C && "child link broken");
      ParentNode.Right = VIndex;
    }
    Nodes[static_cast<std::size_t>(C)].Parent = VIndex;
    Nodes[static_cast<std::size_t>(LeafIndex)].Parent = VIndex;

    // Walk to the root: masks gain species S; each ancestor's height must
    // cover the new crossing pairs (S vs the sibling subtree) and stay
    // above its updated child.
    std::int16_t Child = VIndex;
    for (std::int16_t A = P; A >= 0;
         Child = A, A = Nodes[static_cast<std::size_t>(A)].Parent) {
      Node &Anc = Nodes[static_cast<std::size_t>(A)];
      std::int16_t Sibling = (Anc.Left == Child) ? Anc.Right : Anc.Left;
      double Crossing =
          halfMaxTo(RowS, Nodes[static_cast<std::size_t>(Sibling)].Mask);
      Anc.Mask |= LeafS.Mask;
      Anc.Height = std::max(
          {Anc.Height, Crossing, Nodes[static_cast<std::size_t>(Child)].Height});
    }
  }

  ++Placed;
  recomputeCost();
}

int Topology::lcaOf(int SpeciesA, int SpeciesB) const {
  assert(SpeciesA != SpeciesB && "LCA of a species with itself is its leaf");
  LeafMask Wanted = leafBit(SpeciesA) | leafBit(SpeciesB);
  int Cur = leafNodeOf(SpeciesA);
  while ((node(Cur).Mask & Wanted) != Wanted) {
    Cur = node(Cur).Parent;
    assert(Cur >= 0 && "walked past the root without covering both species");
  }
  return Cur;
}

bool Topology::isStrictlyBelow(int A, int B) const {
  if (A == B)
    return false;
  // Masks are laminar: A is below B iff A's mask is a subset of B's and
  // they differ.
  LeafMask MA = node(A).Mask;
  LeafMask MB = node(B).Mask;
  return (MA & MB) == MA && MA != MB;
}

PhyloTree Topology::toPhyloTree(const std::vector<int> &Relabel) const {
  PhyloTree Tree;
  if (Root < 0)
    return Tree;
  // Postorder rebuild, since PhyloTree::addInternal requires children to
  // exist first.
  std::vector<int> Map(static_cast<std::size_t>(numNodes()), -1);
  struct Frame {
    int Node;
    bool Expanded;
  };
  std::vector<Frame> Stack = {{Root, false}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    const Node &N = node(F.Node);
    if (N.isLeaf()) {
      int Species = N.Leaf;
      if (static_cast<std::size_t>(Species) < Relabel.size())
        Species = Relabel[static_cast<std::size_t>(Species)];
      Map[static_cast<std::size_t>(F.Node)] = Tree.addLeaf(Species);
      continue;
    }
    if (!F.Expanded) {
      Stack.push_back({F.Node, true});
      Stack.push_back({N.Left, false});
      Stack.push_back({N.Right, false});
      continue;
    }
    Map[static_cast<std::size_t>(F.Node)] =
        Tree.addInternal(Map[static_cast<std::size_t>(N.Left)],
                         Map[static_cast<std::size_t>(N.Right)], N.Height);
  }
  return Tree;
}

bool Topology::invariantsHold(const DistanceMatrix &M,
                              double Tolerance) const {
  // Masks must union correctly and heights must match a from-scratch fit.
  for (int I = 0; I < numNodes(); ++I) {
    const Node &N = node(I);
    if (N.isLeaf()) {
      if (N.Mask != leafBit(N.Leaf) || N.Height != 0.0)
        return false;
      continue;
    }
    if ((node(N.Left).Mask | node(N.Right).Mask) != N.Mask)
      return false;
    if ((node(N.Left).Mask & node(N.Right).Mask) != 0)
      return false;
  }

  std::vector<int> Identity(static_cast<std::size_t>(Placed));
  for (int I = 0; I < Placed; ++I)
    Identity[static_cast<std::size_t>(I)] = I;
  PhyloTree Check = toPhyloTree(Identity);
  double Fitted = fitMinimalHeights(Check, M);
  if (std::fabs(Fitted - Cost) > Tolerance)
    return false;

  // Heights must be monotone along every edge.
  for (int I = 0; I < numNodes(); ++I) {
    const Node &N = node(I);
    if (N.Parent >= 0 && node(N.Parent).Height < N.Height - Tolerance)
      return false;
  }
  return true;
}
