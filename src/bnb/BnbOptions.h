//===- bnb/BnbOptions.h - Solver options and statistics ---------*- C++ -*-===//
///
/// \file
/// Options shared by every MUT solver (sequential, threaded, simulated
/// cluster) and the statistics they report. The 3-3 relationship pruning
/// modes correspond to the HPCAsia paper: the paper applies the constraint
/// when inserting the third species ("we only used it in the initial
/// step") and names extending it to later insertions as future work — both
/// are implemented.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_BNB_BNBOPTIONS_H
#define MUTK_BNB_BNBOPTIONS_H

#include <cstdint>
#include <limits>

namespace mutk {

class CheckpointSink;
struct SearchCheckpoint;

/// Where the 3-3 relationship constraint is enforced during branching.
///
/// Pruning attribution precedence inside `BnbEngine::branch()`: when the
/// filter is cheap (`None` is a no-op; `ThirdSpecies` only examines the
/// insertion of species 2) it runs *before* the bound check, so a child
/// failing both tests is counted in `PrunedByThreeThree`. Under
/// `AllInsertions` the O(k^2) filter stays behind the bound check and
/// such a child is counted in `PrunedByBound` — the filter never runs on
/// bound-dead children. The set of surviving children is identical
/// either way; only the counter attribution differs.
enum class ThreeThreeMode {
  None,          ///< No triple pruning (pure Algorithm BBU).
  ThirdSpecies,  ///< Constrain only the insertion of species 3 (paper).
  AllInsertions, ///< Constrain every insertion (aggressive heuristic).
};

/// Options for the branch-and-bound solvers.
struct BnbOptions {
  ThreeThreeMode ThreeThree = ThreeThreeMode::None;

  /// Collect *every* optimal tree instead of one (Algorithm BBU gathers
  /// "all solutions from each node"). More memory, slightly less pruning.
  bool CollectAllOptimal = false;

  /// Abort after branching this many BBT nodes (0 = unlimited). The
  /// result is then the best tree found so far and `Complete` is false.
  std::uint64_t MaxBranchedNodes = 0;

  /// Starting upper bound; infinity means "run UPGMM" (Algorithm BBU
  /// Step 3).
  double InitialUpperBound = std::numeric_limits<double>::infinity();

  /// Floating-point slack for bound comparisons.
  double Epsilon = 1e-9;

  /// Treat the input matrix as already maxmin-relabeled and skip the
  /// permutation (identity labeling). Used by distributed drivers whose
  /// master relabels once and ships the permuted matrix to workers, so
  /// every rank provably shares one label space.
  bool AssumeMaxminOrdered = false;

  /// Polish the UPGMM seed with SPR local search before the search
  /// starts (an extension beyond Algorithm BBU): a tighter initial upper
  /// bound prunes more of the BBT at the cost of an O(n^4)-ish polish.
  bool ImproveInitialUpperBound = false;

  /// Flush this solve's `BnbStats` into the process-wide metrics
  /// registry (`mutk_bnb_*`, see docs/observability.md) when it
  /// finishes. One counter batch per solve — never on the search hot
  /// path. Disable for micro-benchmarks that call the solver in a tight
  /// loop and want zero shared-cache traffic.
  bool PublishMetrics = true;

  /// Checkpointing (see `bnb/Checkpoint.h`): when non-null, the solver
  /// hands its full search state to the sink every `CheckpointEveryNodes`
  /// branched nodes or `CheckpointEverySeconds` wall seconds, whichever
  /// fires first (a zero disables that trigger; both zero disables
  /// checkpointing even with a sink attached). Borrowed; must outlive
  /// the solve. Not supported together with `CollectAllOptimal` (the
  /// co-optimal set is not captured).
  CheckpointSink *Checkpoint = nullptr;
  std::uint64_t CheckpointEveryNodes = 0;
  double CheckpointEverySeconds = 0.0;

  /// Resume a previous search instead of starting from the root: the
  /// solver seeds its frontier, incumbent, upper bound and counters from
  /// this state. Must have been captured from a solve of the *same*
  /// matrix with the same `ThreeThree`/`AssumeMaxminOrdered` settings
  /// (the persist layer verifies the matrix fingerprint). Borrowed; must
  /// outlive the solve.
  const SearchCheckpoint *ResumeFrom = nullptr;
};

/// Counters reported by a solve.
struct BnbStats {
  /// BBT nodes expanded (one per branching step).
  std::uint64_t Branched = 0;
  /// Children generated across all branchings (before pruning).
  std::uint64_t Generated = 0;
  /// Children discarded because `LB >= UB`.
  std::uint64_t PrunedByBound = 0;
  /// Children discarded by the 3-3 relationship constraint.
  std::uint64_t PrunedByThreeThree = 0;
  /// Lower-bound evaluations inside `branch()` — exactly one per
  /// generated child: the bound is computed once, cached next to the
  /// topology, and reused by the pruning guard, the best-first sort and
  /// the caller. A process-local diagnostic: not persisted in
  /// checkpoints and not carried on the MP wire, so it restarts at zero
  /// on resume.
  std::uint64_t BoundEvals = 0;
  /// Number of strict upper-bound improvements.
  std::uint64_t UbUpdates = 0;
  /// True if the search ran to exhaustion (result provably optimal).
  bool Complete = true;
};

} // namespace mutk

#endif // MUTK_BNB_BNBOPTIONS_H
