//===- service/Server.h - Socket frontend for TreeService -------*- C++ -*-===//
///
/// \file
/// The transport layer of `mutkd`: listens on a Unix-domain or TCP
/// socket, reads length-prefixed frames, dispatches decoded requests to
/// a `TreeService`, and writes framed responses back. One thread per
/// connection (connections are expected to be few and long-lived —
/// clients pipeline requests over one socket); the worker pool behind
/// the service provides the actual solve concurrency.
///
/// A `Shutdown` verb is acknowledged on the wire first, then stops the
/// accept loop and wakes `waitForShutdown`, which `mutkd` uses as its
/// run-until-told-otherwise loop.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_SERVER_H
#define MUTK_SERVICE_SERVER_H

#include "service/Service.h"
#include "support/Mutex.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mutk {

/// Framed-socket server over a TreeService.
class SocketServer {
public:
  explicit SocketServer(TreeService &Service);
  ~SocketServer();

  SocketServer(const SocketServer &) = delete;
  SocketServer &operator=(const SocketServer &) = delete;

  /// Binds a Unix-domain socket at \p Path (unlinks a stale file first).
  bool listenUnix(const std::string &Path, std::string *Error = nullptr);

  /// Binds a TCP socket on \p Host. \p Port 0 asks the kernel for an
  /// ephemeral port; read it back with `port()`.
  bool listenTcp(const std::string &Host, int Port,
                 std::string *Error = nullptr);

  /// Bound TCP port (-1 before a successful `listenTcp`).
  int port() const { return BoundPort; }

  /// Starts the accept loop in a background thread. Call after one of
  /// the `listen*` calls succeeded.
  void start();

  /// Blocks until a client sends `Shutdown` or `stop()` is called.
  void waitForShutdown();

  /// Stops accepting, closes the listener and every live connection,
  /// and joins all threads. Idempotent and safe to call from several
  /// threads; the destructor calls it.
  void stop();

private:
  void acceptLoop();
  void serveConnection(int Fd);
  void requestShutdown();

  TreeService &Service;
  /// Atomic: the acceptor thread reads it concurrently with `stop()`
  /// closing the listener and writing -1.
  std::atomic<int> ListenFd{-1};
  int BoundPort = -1;
  std::string UnixPath;
  std::thread Acceptor;
  std::vector<std::thread> Connections MUTK_GUARDED_BY(Mu);
  /// Fds of live connections; entries are removed and closed under `Mu`
  /// so `stop()` never shuts down a recycled descriptor.
  std::vector<int> LiveFds MUTK_GUARDED_BY(Mu);
  Mutex Mu{"server.state"};
  /// Serializes whole `stop()` runs (a signal thread and the main
  /// thread may both request shutdown). Ordered before `Mu`.
  Mutex StopMu{"server.stop"};
  CondVar ShutdownCv;
  bool ShutdownRequested MUTK_GUARDED_BY(Mu) = false;
  std::atomic<bool> Running{false};
};

/// \name Frame transport shared by server and client.
/// Blocking full-frame io on a connected socket; false on EOF, short
/// io, or an oversized length prefix.
/// @{
bool readFrame(int Fd, std::vector<std::uint8_t> &Payload);
bool writeFrame(int Fd, const std::vector<std::uint8_t> &Payload);
/// @}

} // namespace mutk

#endif // MUTK_SERVICE_SERVER_H
