//===- service/JobQueue.h - Bounded MPMC work queue -------------*- C++ -*-===//
///
/// \file
/// A bounded multi-producer/multi-consumer queue with close semantics,
/// the admission buffer between the service's socket/loopback frontends
/// and its worker pool. Producers block when the queue is full (or use
/// `tryPush` for load shedding); consumers block when it is empty;
/// `close()` wakes everyone so shutdown cannot deadlock, and `drain()`
/// hands the not-yet-started items back so they can be failed
/// explicitly instead of silently dropped.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_JOBQUEUE_H
#define MUTK_SERVICE_JOBQUEUE_H

#include "obs/Instruments.h"
#include "support/Audit.h"
#include "support/Mutex.h"

#include <deque>
#include <optional>
#include <vector>

namespace mutk {

/// Bounded FIFO shared by any number of producers and consumers.
template <typename T> class BoundedQueue {
public:
  /// \p Instruments is optional: when supplied the queue keeps its depth
  /// gauge and enqueue/reject counters up to date (tests and ad-hoc
  /// queues simply omit it).
  explicit BoundedQueue(std::size_t Capacity,
                        obs::QueueInstruments Instruments = {})
      : Instruments(Instruments), Capacity(Capacity) {}

  BoundedQueue(const BoundedQueue &) = delete;
  BoundedQueue &operator=(const BoundedQueue &) = delete;

  /// Blocks while full. \returns false once closed — the item is then
  /// left untouched in the caller (important when it carries a promise
  /// that still has to be resolved).
  bool push(T &&Item) {
    MutexLock Lock(Mu);
    while (Items.size() >= Capacity && !Closed)
      NotFull.wait(Lock);
    if (Closed) {
      noteRejected();
      return false;
    }
    Items.push_back(std::move(Item));
    MUTK_AUDIT(Items.size() <= Capacity,
               "bounded queue exceeded its capacity");
    noteEnqueued();
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking push. \returns false when full or closed (item left
  /// untouched, as with `push`).
  bool tryPush(T &&Item) {
    MutexLock Lock(Mu);
    if (Closed || Items.size() >= Capacity) {
      noteRejected();
      return false;
    }
    Items.push_back(std::move(Item));
    MUTK_AUDIT(Items.size() <= Capacity,
               "bounded queue exceeded its capacity");
    noteEnqueued();
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks while empty. \returns nullopt once closed *and* drained, so
  /// consumers finish whatever was accepted before the close.
  std::optional<T> pop() {
    MutexLock Lock(Mu);
    while (Items.empty() && !Closed)
      NotEmpty.wait(Lock);
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    if (Instruments.Depth)
      Instruments.Depth->sub(1);
    NotFull.notify_one();
    return Item;
  }

  /// Non-blocking pop. \returns nullopt when nothing is queued (whether
  /// or not the queue is closed). The cluster layer uses it to lend a
  /// queued job to an idle peer without ever blocking a network thread.
  std::optional<T> tryPop() {
    MutexLock Lock(Mu);
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    if (Instruments.Depth)
      Instruments.Depth->sub(1);
    NotFull.notify_one();
    return Item;
  }

  /// Atomically removes and returns everything currently queued.
  std::vector<T> drain() {
    MutexLock Lock(Mu);
    std::vector<T> Out;
    Out.reserve(Items.size());
    for (T &Item : Items)
      Out.push_back(std::move(Item));
    if (Instruments.Depth)
      Instruments.Depth->sub(static_cast<std::int64_t>(Items.size()));
    Items.clear();
    NotFull.notify_all();
    return Out;
  }

  /// Rejects future pushes and wakes every blocked producer/consumer.
  void close() {
    MutexLock Lock(Mu);
    Closed = true;
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const {
    MutexLock Lock(Mu);
    return Closed;
  }

  std::size_t depth() const {
    MutexLock Lock(Mu);
    return Items.size();
  }

private:
  void noteEnqueued() {
    if (Instruments.Depth)
      Instruments.Depth->add(1);
    if (Instruments.Enqueued)
      Instruments.Enqueued->inc();
  }

  void noteRejected() {
    if (Instruments.Rejected)
      Instruments.Rejected->inc();
  }

  obs::QueueInstruments Instruments;
  mutable Mutex Mu{"service.queue"};
  CondVar NotFull;
  CondVar NotEmpty;
  std::deque<T> Items MUTK_GUARDED_BY(Mu);
  std::size_t Capacity;
  bool Closed MUTK_GUARDED_BY(Mu) = false;
};

} // namespace mutk

#endif // MUTK_SERVICE_JOBQUEUE_H
