//===- service/Service.h - Concurrent tree-construction service -*- C++ -*-===//
///
/// \file
/// The long-lived core of `mutkd`: a bounded MPMC job queue feeding a
/// worker pool that runs the compact-set pipeline, fronted by a sharded
/// LRU result cache keyed by relabeling-invariant matrix fingerprints.
/// Whole-matrix hits replay a stored canonical tree onto the request's
/// labels without touching a solver; misses still reuse per-condensed-
/// block subtrees, so overlapping queries pay only for the blocks they
/// have never seen.
///
/// The class is transport-free ("loopback mode"): tests and benches call
/// `submit`/`submitAsync` directly, while `service/Server.h` feeds it
/// from sockets. Deadlines are enforced at dequeue time and wired into
/// the per-block branch-and-bound node budget
/// (`BnbOptions::MaxBranchedNodes`), so an over-deadline job cannot pin
/// a worker indefinitely; shutdown drains in-flight work and fails
/// queued jobs with `ShuttingDown` instead of dropping them.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_SERVICE_H
#define MUTK_SERVICE_SERVICE_H

#include "compact/CompactSetPipeline.h"
#include "obs/Instruments.h"
#include "persist/CacheStore.h"
#include "persist/JobJournal.h"
#include "qos/Admission.h"
#include "qos/Coalescer.h"
#include "qos/CostModel.h"
#include "qos/Scheduler.h"
#include "service/IncrementalIndex.h"
#include "service/JobQueue.h"
#include "service/Protocol.h"
#include "service/ResultCache.h"
#include "service/ServiceStats.h"
#include "support/Mutex.h"

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>

namespace mutk {

/// Which cache namespace a remote probe or insert is about. The key
/// spaces are already salted apart, so the tier never changes routing or
/// correctness; it exists for per-tier accounting and policy (e.g. the
/// size floor on shipping block subtrees across the ring).
enum class CacheTier : std::uint8_t {
  Whole = 0, ///< Whole-matrix result.
  Block = 1, ///< Per-condensed-block subtree.
};

/// Remote extension point of the result cache: when attached
/// (`TreeService::setDistCache`) a local miss — whole-matrix or block —
/// also probes the cluster's consistent-hash-sharded cache, and exact
/// solutions are forwarded to their owning peer. Implemented by
/// `dist::ClusterNode`; both calls run on service worker threads, so
/// implementations must be bounded (timeouts, not retries) and
/// thread-safe.
class DistCache {
public:
  virtual ~DistCache() = default;

  /// Probe the owning peer for \p Key. A miss, a timeout, a dead owner
  /// and "self owns it" all return nullopt — the caller solves locally.
  virtual std::optional<CachedSolution>
  lookup(std::uint64_t Key, const std::vector<std::uint8_t> &Bytes,
         CacheTier Tier) = 0;

  /// Forward \p Value to the owning peer (one-way, fire-and-forget).
  virtual void insert(std::uint64_t Key, const CachedSolution &Value,
                      CacheTier Tier) = 0;
};

/// Deployment knobs of a TreeService instance.
struct ServiceOptions {
  int NumWorkers = 4;
  std::size_t QueueCapacity = 256;
  /// Total cache entries across shards (0 disables caching).
  std::size_t CacheCapacity = 1024;
  int CacheShards = 8;
  /// Deadline-to-budget conversion: a request with `DeadlineMillis = d`
  /// gets a per-block node budget of `d * NodesPerMilli` (tighter of
  /// this and the request's own `NodeBudget`). Calibrate to the
  /// hardware; the default is conservative for ~1us/node branching.
  std::uint64_t NodesPerMilli = 20'000;
  /// Inline matrices larger than this are rejected with `TooLarge`.
  int MaxSpecies = 2048;
  /// `submitAsync` blocks when the queue is full (backpressure); set to
  /// false to shed load with `QueueFull` instead.
  bool BlockOnFullQueue = true;
  /// Engine used for each condensed block.
  BlockSolver Solver = BlockSolver::Sequential;
  /// Condensed blocks each request solves concurrently
  /// (`PipelineOptions::BlockConcurrency`): 1 = sequential walk, 0 =
  /// auto — divide the machine's threads among the `NumWorkers`
  /// request workers so concurrent requests do not oversubscribe.
  int BlockConcurrency = 1;
  /// B&B workers inside each block solve when `Solver == Threaded`
  /// (`PipelineOptions::ThreadsPerBlock`; 0 = auto).
  int ThreadsPerBlock = 0;

  /// \name Incremental re-solve mode (docs/caching.md#incremental-mode).
  /// @{

  /// Keep an index of recently solved matrices so requests flagged
  /// `BuildRequest::Incremental` can be diffed against them. Off by
  /// default: the index copies whole matrices, which only pays for
  /// workloads that actually resubmit perturbations.
  bool Incremental = false;
  /// A base qualifies only when `TaxaAdded + TaxaRemoved` stays within
  /// this bound...
  int IncrementalMaxTaxaDelta = 2;
  /// ...and at most this many common-taxon distances changed.
  int IncrementalMaxChangedEntries = 8;
  /// Solved matrices remembered for diffing (LRU; each holds O(n^2)
  /// doubles, so keep this small).
  std::size_t IncrementalBases = 32;

  /// @}

  /// Smallest condensed block (species count) worth a remote cache
  /// round-trip or a cross-ring insert. Tiny blocks are cheaper to
  /// re-solve than to fetch; the floor is read off the canonical-bytes
  /// size header (`canonicalSpeciesCount`).
  int RemoteBlockMinSize = 3;

  /// Durable state directory; empty disables persistence. When set the
  /// service recovers the result cache (snapshot + WAL replay) and
  /// re-enqueues journaled-but-unfinished jobs on startup, journals
  /// every exact solution and accepted job while running, checkpoints
  /// long block solves under `<StateDir>/ckpt/`, and compacts the cache
  /// into the snapshot on shutdown. Formats and recovery semantics are
  /// documented in docs/persistence.md.
  std::string StateDir;
  /// Compact the durable cache early once its WAL exceeds this many
  /// bytes (0 = compact only on shutdown).
  std::uint64_t WalCompactBytes = 8u << 20;
  /// fdatasync each cache/journal append. Durable by default; switch
  /// off to trade crash-durability of the newest records for latency.
  bool SyncWrites = true;
  /// Cadence of per-block search checkpoints (both zero disables them;
  /// only meaningful with a StateDir).
  std::uint64_t CheckpointEveryNodes = 200'000;
  double CheckpointEverySeconds = 5.0;

  /// \name Cost-predictive QoS layer (docs/qos.md).
  /// @{

  /// Admission control and tier routing; `Qos.Enabled` is the master
  /// switch. Off by default: with it off (and uniform tickets) the
  /// service behaves exactly as before the QoS layer existed.
  qos::AdmissionOptions Qos;
  /// Ready-queue starvation hatch: entries waiting longer than this are
  /// served oldest-first regardless of priority/tenant rank (0 disables).
  double QosStarvationMillis = 5000.0;
  /// Coalesce identical in-flight requests onto one leader solve (only
  /// consulted when `Qos.Enabled`).
  bool QosCoalesce = true;
  /// Dry-run difficulty profiles memoized by canonical fingerprint.
  std::size_t QosProfileMemoCapacity = 256;

  /// @}
};

/// A concurrent tree-construction service (queue + workers + cache).
class TreeService {
public:
  explicit TreeService(const ServiceOptions &Options = {});
  ~TreeService();

  TreeService(const TreeService &) = delete;
  TreeService &operator=(const TreeService &) = delete;

  /// Enqueues a job; the future resolves when a worker answers it (every
  /// admitted job is answered, even across shutdown).
  std::future<BuildResponse> submitAsync(BuildRequest Request);

  /// Synchronous convenience wrapper around `submitAsync`.
  BuildResponse submit(BuildRequest Request);

  /// Protocol-level dispatch used by the socket server and by loopback
  /// clients that speak encoded frames. `Shutdown` is acknowledged but
  /// acted upon by the caller (the transport decides when to stop).
  Response handle(const Request &R);

  /// Current counters (includes live queue depth and cache size).
  StatsSnapshot stats() const;

  /// One JSON object merging this instance's snapshot with the
  /// process-wide metrics registry (queue, cache, request-latency and
  /// B&B counters). Answered to the `StatsJson` verb; schema in
  /// `docs/observability.md`.
  std::string statsJson() const;

  /// \name Cluster integration (`src/dist`).
  /// @{

  /// Attaches the remote cache tier probed after a local whole-matrix
  /// miss. Borrowed; detach (nullptr) before destroying the cache.
  void setDistCache(DistCache *Cache) {
    Remote.store(Cache, std::memory_order_release);
  }

  /// Merges \p Fn's JSON object into `statsJson()` as the `cluster`
  /// section (schema in docs/distributed.md).
  void setClusterStats(std::function<std::string()> Fn);

  /// A queued job handed to a remote peer. `Token` redeems it in
  /// `completeLentJob`/`reenqueueLentJob`; `EncodedRequest` is the
  /// protocol frame the thief decodes and solves.
  struct LentJob {
    std::uint64_t Token = 0;
    std::vector<std::uint8_t> EncodedRequest;
  };

  /// Pops one queued job for a remote peer to solve (nullopt when the
  /// queue is empty). The job's promise and journal entry stay here:
  /// the requester is answered by `completeLentJob`, and a crash of
  /// this node still re-runs the job from the journal on restart.
  std::optional<LentJob> lendQueuedJob();

  /// Resolves a lent job with the thief's response. \returns false for
  /// an unknown token (already completed, re-enqueued, or failed over).
  bool completeLentJob(std::uint64_t Token, BuildResponse Response);

  /// Returns a lent job to the local queue (thief died). \returns false
  /// for an unknown token; a job that no longer fits the queue is
  /// answered `ShuttingDown` instead of dropped.
  bool reenqueueLentJob(std::uint64_t Token);

  /// Jobs currently lent out to peers.
  std::size_t lentJobCount() const;

  /// Direct result-cache access for serving remote peers' shard
  /// lookups/inserts (collision-checked like any local access; stores
  /// also reach the durable tier). No-ops / misses when caching is off.
  std::optional<CachedSolution>
  cacheLookup(std::uint64_t Key, const std::vector<std::uint8_t> &Bytes);
  void cacheStore(std::uint64_t Key, CachedSolution Value);

  /// Jobs being solved by workers right now (steal-idleness probe).
  std::uint64_t inFlight() const {
    return InFlightJobs.load(std::memory_order_relaxed);
  }

  /// @}

  /// Graceful shutdown: stops admissions, fails queued jobs with
  /// `ShuttingDown`, lets in-flight solves finish, joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  bool stopping() const { return Stopping.load(std::memory_order_acquire); }

  const ServiceOptions &options() const { return Options; }

private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    BuildRequest Request;
    std::promise<BuildResponse> Promise;
    Clock::time_point SubmitTime;
    /// Job-journal id (0 = not journaled: persistence off, or a
    /// rejected job that never reached the journal).
    std::uint64_t JournalId = 0;
    /// Execution tier chosen at admission (Exact when QoS is off).
    QosTier Tier = QosTier::Exact;
    /// Admission-time cost prediction, echoed to the client.
    double PredictedMillis = 0.0;
    double PredictedNodes = 0.0;
    /// Coalescing flight this job leads (0 = not coalesced); the
    /// response is fanned out to the flight's followers on resolve.
    std::uint64_t CoalesceKey = 0;
  };

  void workerLoop();
  void recoverState();
  void persistSolution(std::uint64_t Key, const CachedSolution &Value);
  void journalCompleted(std::uint64_t JournalId);
  /// The single exit point of every admitted job: marks the journal
  /// entry done, fans the response out to coalesced followers, then
  /// resolves the leader's promise.
  void resolveJob(Job &&J, BuildResponse Resp);
  std::string checkpointPath(std::uint64_t Key) const;
  BuildResponse process(const Job &J);
  BuildResponse solveFresh(const DistanceMatrix &M,
                           const BuildRequest &Request,
                           Clock::time_point Deadline, bool HasDeadline,
                           PhyloTree &OutTree);

  ServiceOptions Options;
  obs::ServiceInstruments &Obs;
  obs::QosInstruments &QosObs;
  /// QoS layer: cost prediction, admission/tier routing and in-flight
  /// coalescing. Constructed before the queue (the queue's scheduler
  /// options borrow a QoS counter).
  qos::CostModel Cost;
  qos::AdmissionController Admission;
  qos::Coalescer Coalesce;
  qos::ReadyQueue<Job> Queue;
  ShardedLruCache Cache;
  /// Solved-base index for incremental mode (null unless
  /// `Options.Incremental`). Internally locked.
  std::unique_ptr<IncrementalIndex> Bases;
  ServiceCounters Counters;
  std::vector<std::thread> Workers;
  std::atomic<bool> Stopping{false};
  /// Serializes whole `stop()` runs; the outermost service lock
  /// (ordered before the queue, persist, lent and cache-shard locks it
  /// reaches while draining).
  Mutex StopMu{"service.stop"};

  /// Persistence (null when `Options.StateDir` is empty). `PersistMu`
  /// serializes every durable append/compaction — the WAL classes are
  /// not thread-safe and workers store concurrently. The pointers are
  /// set once before the workers exist; the streams behind them are the
  /// guarded state.
  std::unique_ptr<persist::CacheStore> Store MUTK_PT_GUARDED_BY(PersistMu);
  std::unique_ptr<persist::JobJournal> Journal MUTK_PT_GUARDED_BY(PersistMu);
  Mutex PersistMu{"service.persist"};
  std::atomic<std::uint64_t> NextJobId{1};
  BlockCheckpointHooks CheckpointHooks;

  /// Cluster integration state. `Remote` is borrowed (see
  /// `setDistCache`); `Lent` holds the promises of jobs peers are
  /// solving, keyed by loan token.
  std::atomic<DistCache *> Remote{nullptr};
  mutable Mutex ClusterStatsMu{"service.clusterstats"};
  std::function<std::string()> ClusterStats MUTK_GUARDED_BY(ClusterStatsMu);
  mutable Mutex LentMu{"service.lent"};
  std::unordered_map<std::uint64_t, Job> Lent MUTK_GUARDED_BY(LentMu);
  std::uint64_t NextLentToken MUTK_GUARDED_BY(LentMu) = 1;
  std::atomic<std::uint64_t> InFlightJobs{0};
};

} // namespace mutk

#endif // MUTK_SERVICE_SERVICE_H
