//===- service/Protocol.cpp - mutkd wire protocol -------------------------===//

#include "service/Protocol.h"

#include "mp/Serialize.h"

using namespace mutk;

const char *mutk::serviceErrorName(ServiceError Error) {
  switch (Error) {
  case ServiceError::None:
    return "ok";
  case ServiceError::BadFrame:
    return "bad-frame";
  case ServiceError::BadRequest:
    return "bad-request";
  case ServiceError::BadMatrix:
    return "bad-matrix";
  case ServiceError::TooLarge:
    return "too-large";
  case ServiceError::DeadlineExpired:
    return "deadline-expired";
  case ServiceError::QueueFull:
    return "queue-full";
  case ServiceError::ShuttingDown:
    return "shutting-down";
  case ServiceError::Internal:
    return "internal";
  case ServiceError::Shed:
    return "shed";
  case ServiceError::RateLimited:
    return "rate-limited";
  }
  return "unknown";
}

const char *mutk::serviceErrorAdvice(ServiceError Error) {
  switch (Error) {
  case ServiceError::QueueFull:
    return "the daemon is overloaded (queue full); retry with backoff "
           "(--retries/--backoff-ms)";
  case ServiceError::ShuttingDown:
    return "the daemon is shutting down and accepts no further work; "
           "resubmit to another instance or after a restart";
  case ServiceError::Shed:
    return "the deadline cannot be met on any tier; raise --deadline-ms "
           "or drop it entirely";
  case ServiceError::RateLimited:
    return "the tenant's request rate is capped; slow down or submit "
           "under a different --tenant";
  case ServiceError::DeadlineExpired:
    return "the deadline elapsed before a result was ready; raise "
           "--deadline-ms";
  case ServiceError::None:
  case ServiceError::BadFrame:
  case ServiceError::BadRequest:
  case ServiceError::BadMatrix:
  case ServiceError::TooLarge:
  case ServiceError::Internal:
    return "";
  }
  return "";
}

const char *mutk::qosTierName(QosTier Tier) {
  switch (Tier) {
  case QosTier::Exact:
    return "exact";
  case QosTier::Pipeline:
    return "pipeline";
  case QosTier::Heuristic:
    return "heuristic";
  }
  return "unknown";
}

namespace {

std::optional<Request> failReq(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return std::nullopt;
}

std::optional<Response> failResp(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return std::nullopt;
}

/// Matrix fields: i32 size, names, then the upper triangle row-major.
void writeMatrix(ByteWriter &W, const DistanceMatrix &M) {
  W.writeI32(M.size());
  for (int I = 0; I < M.size(); ++I)
    W.writeString(M.name(I));
  for (int I = 0; I < M.size(); ++I)
    for (int J = I + 1; J < M.size(); ++J)
      W.writeF64(M.at(I, J));
}

bool readMatrix(ByteReader &R, DistanceMatrix &M) {
  std::int32_t N = 0;
  if (!R.readI32(N) || N < 0 || N > MaxProtocolSpecies)
    return false;
  DistanceMatrix Out(N);
  for (int I = 0; I < N; ++I) {
    std::string Name;
    if (!R.readString(Name))
      return false;
    Out.setName(I, std::move(Name));
  }
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J) {
      double Value = 0.0;
      if (!R.readF64(Value) || !(Value >= 0.0)) // also rejects NaN
        return false;
      Out.set(I, J, Value);
    }
  M = std::move(Out);
  return true;
}

void writeBuildRequest(ByteWriter &W, const BuildRequest &B) {
  W.writeU8(static_cast<std::uint8_t>(B.Generator));
  if (B.Generator == GeneratorKind::None)
    writeMatrix(W, B.Matrix);
  else {
    W.writeI32(B.GenSpecies);
    W.writeU64(B.GenSeed);
  }
  W.writeU8(static_cast<std::uint8_t>(B.Mode));
  W.writeU8(static_cast<std::uint8_t>(B.ThreeThree));
  W.writeI32(B.MaxExactBlockSize);
  W.writeU8(B.Polish ? 1 : 0);
  W.writeU64(B.NodeBudget);
  W.writeU32(B.DeadlineMillis);
  W.writeU8(B.UseCache ? 1 : 0);
  W.writeU8(B.Incremental ? 1 : 0);
  W.writeU8(static_cast<std::uint8_t>(B.Priority));
  W.writeString(B.Tenant);
}

bool readBuildRequest(ByteReader &R, BuildRequest &B) {
  std::uint8_t Generator = 0, Mode = 0, ThreeThree = 0, Polish = 0,
               UseCache = 0, Incremental = 0;
  if (!R.readU8(Generator) ||
      Generator > static_cast<std::uint8_t>(GeneratorKind::Dna))
    return false;
  B.Generator = static_cast<GeneratorKind>(Generator);
  if (B.Generator == GeneratorKind::None) {
    if (!readMatrix(R, B.Matrix))
      return false;
  } else if (!R.readI32(B.GenSpecies) || !R.readU64(B.GenSeed)) {
    return false;
  }
  if (!R.readU8(Mode) || Mode > static_cast<std::uint8_t>(CondenseMode::Average))
    return false;
  B.Mode = static_cast<CondenseMode>(Mode);
  if (!R.readU8(ThreeThree) ||
      ThreeThree > static_cast<std::uint8_t>(ThreeThreeMode::AllInsertions))
    return false;
  B.ThreeThree = static_cast<ThreeThreeMode>(ThreeThree);
  if (!R.readI32(B.MaxExactBlockSize) || !R.readU8(Polish) ||
      !R.readU64(B.NodeBudget) || !R.readU32(B.DeadlineMillis) ||
      !R.readU8(UseCache) || !R.readU8(Incremental))
    return false;
  B.Polish = Polish != 0;
  B.UseCache = UseCache != 0;
  B.Incremental = Incremental != 0;
  std::uint8_t Priority = 0;
  if (!R.readU8(Priority) ||
      Priority > static_cast<std::uint8_t>(RequestPriority::High))
    return false;
  B.Priority = static_cast<RequestPriority>(Priority);
  return R.readString(B.Tenant);
}

void writeBuildResponse(ByteWriter &W, const BuildResponse &B) {
  W.writeU8(static_cast<std::uint8_t>(B.Error));
  W.writeString(B.Message);
  W.writeString(B.Newick);
  W.writeF64(B.Cost);
  W.writeU8(B.Exact ? 1 : 0);
  W.writeU8(B.CacheHit ? 1 : 0);
  W.writeU32(B.BlockCacheHits);
  W.writeU64(B.Branched);
  W.writeU32(static_cast<std::uint32_t>(B.Blocks.size()));
  for (const BlockSummary &S : B.Blocks) {
    W.writeI32(S.NumBlocks);
    W.writeF64(S.Cost);
    W.writeU8(S.Exact ? 1 : 0);
    W.writeU8(S.FromCache ? 1 : 0);
  }
  W.writeU8(B.IncrementalApplied ? 1 : 0);
  W.writeU32(B.DirtyBlocks);
  W.writeU32(B.CleanBlocks);
  W.writeI32(B.TaxaAdded);
  W.writeI32(B.TaxaRemoved);
  W.writeI32(B.EntriesChanged);
  W.writeF64(B.QueueMillis);
  W.writeF64(B.SolveMillis);
  W.writeU8(static_cast<std::uint8_t>(B.Tier));
  W.writeF64(B.PredictedMillis);
  W.writeU8(B.Coalesced ? 1 : 0);
}

bool readBuildResponse(ByteReader &R, BuildResponse &B) {
  std::uint8_t Error = 0, Exact = 0, CacheHit = 0;
  if (!R.readU8(Error) || Error > MaxServiceError)
    return false;
  B.Error = static_cast<ServiceError>(Error);
  if (!R.readString(B.Message) || !R.readString(B.Newick) ||
      !R.readF64(B.Cost) || !R.readU8(Exact) || !R.readU8(CacheHit) ||
      !R.readU32(B.BlockCacheHits) || !R.readU64(B.Branched))
    return false;
  B.Exact = Exact != 0;
  B.CacheHit = CacheHit != 0;
  std::uint32_t NumBlocks = 0;
  if (!R.readU32(NumBlocks) || NumBlocks > MaxFrameBytes / 8)
    return false;
  B.Blocks.resize(NumBlocks);
  for (BlockSummary &S : B.Blocks) {
    std::uint8_t BlockExact = 0, FromCache = 0;
    if (!R.readI32(S.NumBlocks) || !R.readF64(S.Cost) ||
        !R.readU8(BlockExact) || !R.readU8(FromCache))
      return false;
    S.Exact = BlockExact != 0;
    S.FromCache = FromCache != 0;
  }
  std::uint8_t IncrementalApplied = 0;
  if (!R.readU8(IncrementalApplied) || !R.readU32(B.DirtyBlocks) ||
      !R.readU32(B.CleanBlocks) || !R.readI32(B.TaxaAdded) ||
      !R.readI32(B.TaxaRemoved) || !R.readI32(B.EntriesChanged))
    return false;
  B.IncrementalApplied = IncrementalApplied != 0;
  if (!R.readF64(B.QueueMillis) || !R.readF64(B.SolveMillis))
    return false;
  std::uint8_t Tier = 0, Coalesced = 0;
  if (!R.readU8(Tier) ||
      Tier > static_cast<std::uint8_t>(QosTier::Heuristic) ||
      !R.readF64(B.PredictedMillis) || !R.readU8(Coalesced))
    return false;
  B.Tier = static_cast<QosTier>(Tier);
  B.Coalesced = Coalesced != 0;
  return true;
}

void writeStats(ByteWriter &W, const StatsSnapshot &S) {
  W.writeU64(S.Accepted);
  W.writeU64(S.Completed);
  W.writeU64(S.Failed);
  W.writeU64(S.WholeHits);
  W.writeU64(S.WholeMisses);
  W.writeU64(S.BlockHits);
  W.writeU64(S.BlockMisses);
  W.writeU64(S.BlockRemoteHits);
  W.writeU64(S.IncrementalApplied);
  W.writeU64(S.IncrementalDirty);
  W.writeU64(S.IncrementalClean);
  W.writeU64(S.DeadlineExpired);
  W.writeU64(S.Rejected);
  W.writeU64(S.Shed);
  W.writeU64(S.RateLimited);
  W.writeU64(S.TierExact);
  W.writeU64(S.TierPipeline);
  W.writeU64(S.TierHeuristic);
  W.writeU64(S.Coalesced);
  W.writeU64(S.QueueDepth);
  W.writeU64(S.CacheEntries);
  W.writeF64(S.P50Millis);
  W.writeF64(S.P95Millis);
}

bool readStats(ByteReader &R, StatsSnapshot &S) {
  return R.readU64(S.Accepted) && R.readU64(S.Completed) &&
         R.readU64(S.Failed) && R.readU64(S.WholeHits) &&
         R.readU64(S.WholeMisses) && R.readU64(S.BlockHits) &&
         R.readU64(S.BlockMisses) && R.readU64(S.BlockRemoteHits) &&
         R.readU64(S.IncrementalApplied) && R.readU64(S.IncrementalDirty) &&
         R.readU64(S.IncrementalClean) && R.readU64(S.DeadlineExpired) &&
         R.readU64(S.Rejected) && R.readU64(S.Shed) &&
         R.readU64(S.RateLimited) && R.readU64(S.TierExact) &&
         R.readU64(S.TierPipeline) && R.readU64(S.TierHeuristic) &&
         R.readU64(S.Coalesced) && R.readU64(S.QueueDepth) &&
         R.readU64(S.CacheEntries) && R.readF64(S.P50Millis) &&
         R.readF64(S.P95Millis);
}

} // namespace

std::vector<std::uint8_t> mutk::encodeRequest(const Request &R) {
  ByteWriter W;
  W.writeU8(static_cast<std::uint8_t>(R.V));
  W.writeU32(ServiceProtocolVersion);
  if (R.V == Verb::Build)
    writeBuildRequest(W, R.Build);
  return W.take();
}

std::optional<Request>
mutk::decodeRequest(const std::vector<std::uint8_t> &Bytes,
                    std::string *Error) {
  ByteReader R(Bytes);
  std::uint8_t RawVerb = 0;
  std::uint32_t Version = 0;
  if (!R.readU8(RawVerb) || !R.readU32(Version))
    return failReq(Error, "truncated request header");
  if (Version != ServiceProtocolVersion)
    return failReq(Error, "protocol version mismatch");
  if (RawVerb < static_cast<std::uint8_t>(Verb::Build) ||
      RawVerb > static_cast<std::uint8_t>(Verb::StatsJson))
    return failReq(Error, "unknown verb");

  Request Out;
  Out.V = static_cast<Verb>(RawVerb);
  if (Out.V == Verb::Build && !readBuildRequest(R, Out.Build))
    return failReq(Error, "malformed build request");
  if (!R.atEnd())
    return failReq(Error, "trailing bytes after request");
  return Out;
}

std::vector<std::uint8_t> mutk::encodeResponse(const Response &R) {
  ByteWriter W;
  W.writeU8(static_cast<std::uint8_t>(R.V));
  W.writeU8(static_cast<std::uint8_t>(R.Error));
  W.writeString(R.Message);
  if (R.Error == ServiceError::None) {
    if (R.V == Verb::Build)
      writeBuildResponse(W, R.Build);
    else if (R.V == Verb::Stats)
      writeStats(W, R.Stats);
    else if (R.V == Verb::StatsJson)
      W.writeString(R.StatsJson);
  }
  return W.take();
}

std::optional<Response>
mutk::decodeResponse(const std::vector<std::uint8_t> &Bytes,
                     std::string *Error) {
  ByteReader R(Bytes);
  std::uint8_t RawVerb = 0, RawError = 0;
  if (!R.readU8(RawVerb) || !R.readU8(RawError))
    return failResp(Error, "truncated response header");
  if (RawVerb < static_cast<std::uint8_t>(Verb::Build) ||
      RawVerb > static_cast<std::uint8_t>(Verb::StatsJson))
    return failResp(Error, "unknown verb");
  if (RawError > MaxServiceError)
    return failResp(Error, "unknown error code");

  Response Out;
  Out.V = static_cast<Verb>(RawVerb);
  Out.Error = static_cast<ServiceError>(RawError);
  if (!R.readString(Out.Message))
    return failResp(Error, "truncated response message");
  if (Out.Error == ServiceError::None) {
    if (Out.V == Verb::Build && !readBuildResponse(R, Out.Build))
      return failResp(Error, "malformed build response");
    if (Out.V == Verb::Stats && !readStats(R, Out.Stats))
      return failResp(Error, "malformed stats response");
    if (Out.V == Verb::StatsJson && !R.readString(Out.StatsJson))
      return failResp(Error, "malformed stats-json response");
  }
  if (!R.atEnd())
    return failResp(Error, "trailing bytes after response");
  return Out;
}

Request mutk::makeBuildRequest(BuildRequest Build) {
  Request R;
  R.V = Verb::Build;
  R.Build = std::move(Build);
  return R;
}

Response mutk::makeErrorResponse(Verb V, ServiceError Error,
                                 std::string Message) {
  Response R;
  R.V = V;
  R.Error = Error;
  R.Message = std::move(Message);
  if (V == Verb::Build) {
    R.Build.Error = Error;
    R.Build.Message = R.Message;
  }
  return R;
}
