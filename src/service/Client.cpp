//===- service/Client.cpp - mutkd client library --------------------------===//

#include "service/Client.h"

#include "service/Server.h" // readFrame/writeFrame

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mutk;

namespace {

void fillError(std::string *Error, const std::string &What) {
  if (Error)
    *Error = What;
}

void fillErrno(std::string *Error, const char *What) {
  fillError(Error, std::string(What) + ": " + std::strerror(errno));
}

/// ::connect with EINTR handling. A blocking connect interrupted by a
/// signal keeps establishing the connection in the background; calling
/// connect again is unspecified (EALREADY/EISCONN), so the interrupted
/// attempt must be finished by polling for writability and reading the
/// final status from SO_ERROR.
bool connectFd(int Fd, const sockaddr *Addr, socklen_t Len) {
  if (::connect(Fd, Addr, Len) == 0)
    return true;
  if (errno != EINTR)
    return false;
  pollfd P{};
  P.fd = Fd;
  P.events = POLLOUT;
  while (::poll(&P, 1, -1) < 0)
    if (errno != EINTR)
      return false;
  int Status = 0;
  socklen_t StatusLen = sizeof(Status);
  if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Status, &StatusLen) < 0)
    return false;
  if (Status != 0) {
    errno = Status;
    return false;
  }
  return true;
}

} // namespace

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool ServiceClient::connectUnix(const std::string &Path, std::string *Error) {
  disconnect();
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    fillError(Error, "unix socket path too long");
    return false;
  }
  int NewFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (NewFd < 0) {
    fillErrno(Error, "socket");
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (!connectFd(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr))) {
    fillErrno(Error, "connect");
    ::close(NewFd);
    return false;
  }
  Fd = NewFd;
  return true;
}

bool ServiceClient::connectTcp(const std::string &Host, int Port,
                               std::string *Error) {
  disconnect();
  int NewFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (NewFd < 0) {
    fillErrno(Error, "socket");
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    fillError(Error, "invalid address '" + Host + "' (numeric IPv4)");
    ::close(NewFd);
    return false;
  }
  if (!connectFd(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr))) {
    fillErrno(Error, "connect");
    ::close(NewFd);
    return false;
  }
  Fd = NewFd;
  return true;
}

std::optional<Response> ServiceClient::roundTrip(const Request &R,
                                                 std::string *Error) {
  if (Fd < 0) {
    fillError(Error, "not connected");
    return std::nullopt;
  }
  if (!writeFrame(Fd, encodeRequest(R))) {
    // EPIPE here means the daemon went away between requests (writes
    // use MSG_NOSIGNAL, so the hangup surfaces as errno, not SIGPIPE).
    fillErrno(Error, "send");
    return std::nullopt;
  }
  std::vector<std::uint8_t> Payload;
  if (!readFrame(Fd, Payload)) {
    fillError(Error, "connection closed while awaiting response");
    return std::nullopt;
  }
  std::string DecodeError;
  std::optional<Response> Resp = decodeResponse(Payload, &DecodeError);
  if (!Resp)
    fillError(Error, "bad response: " + DecodeError);
  return Resp;
}

std::optional<BuildResponse> ServiceClient::build(const BuildRequest &Request,
                                                  std::string *Error) {
  std::optional<Response> Resp =
      roundTrip(makeBuildRequest(Request), Error);
  if (!Resp)
    return std::nullopt;
  if (!Resp->ok()) {
    // Error responses carry no build body (whether the failure was
    // protocol-level, e.g. BadFrame, or service-level, e.g. BadRequest),
    // so the outer code must be copied in — returning Resp->Build here
    // would silently report a default-constructed success.
    BuildResponse Out;
    Out.Error = Resp->Error;
    Out.Message = Resp->Message;
    return Out;
  }
  return Resp->Build;
}

std::optional<StatsSnapshot> ServiceClient::stats(std::string *Error) {
  Request R;
  R.V = Verb::Stats;
  std::optional<Response> Resp = roundTrip(R, Error);
  if (!Resp)
    return std::nullopt;
  if (!Resp->ok()) {
    fillError(Error, Resp->Message);
    return std::nullopt;
  }
  return Resp->Stats;
}

std::optional<std::string> ServiceClient::statsJson(std::string *Error) {
  Request R;
  R.V = Verb::StatsJson;
  std::optional<Response> Resp = roundTrip(R, Error);
  if (!Resp)
    return std::nullopt;
  if (!Resp->ok()) {
    fillError(Error, Resp->Message);
    return std::nullopt;
  }
  return Resp->StatsJson;
}

bool ServiceClient::ping(std::string *Error) {
  Request R;
  R.V = Verb::Ping;
  std::optional<Response> Resp = roundTrip(R, Error);
  return Resp && Resp->ok();
}

bool ServiceClient::shutdownServer(std::string *Error) {
  Request R;
  R.V = Verb::Shutdown;
  std::optional<Response> Resp = roundTrip(R, Error);
  return Resp && Resp->ok();
}
