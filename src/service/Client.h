//===- service/Client.h - mutkd client library ------------------*- C++ -*-===//
///
/// \file
/// Blocking client for the `mutkd` wire protocol: connect over a Unix
/// or TCP socket, then issue `build`/`stats`/`ping`/`shutdownServer`
/// calls that each send one frame and wait for the answering frame.
/// One client drives one connection and is not thread-safe; spawn one
/// client per thread for closed-loop load generation.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_CLIENT_H
#define MUTK_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <optional>
#include <string>

namespace mutk {

/// One step of capped exponential backoff: doubles \p CurrentMillis,
/// saturating at \p CapMillis. Written to never overflow: doubling only
/// happens below `CapMillis / 2`, so `CurrentMillis * 2 <= CapMillis`
/// always holds when evaluated — a naive `min(Current * 2, Cap)` wraps
/// to a negative delay once `Current` exceeds `LONG_MAX / 2` (a huge
/// user-supplied `--backoff-ms` gets there on the first retry).
constexpr long nextBackoffMillis(long CurrentMillis, long CapMillis) {
  if (CurrentMillis >= CapMillis / 2)
    return CapMillis;
  return CurrentMillis < 1 ? 1 : CurrentMillis * 2;
}

/// Synchronous framed-protocol client.
class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  bool connectUnix(const std::string &Path, std::string *Error = nullptr);
  bool connectTcp(const std::string &Host, int Port,
                  std::string *Error = nullptr);
  void disconnect();
  bool connected() const { return Fd >= 0; }

  /// Sends a Build request; nullopt on transport failure (the response
  /// object itself carries service-level errors).
  std::optional<BuildResponse> build(const BuildRequest &Request,
                                     std::string *Error = nullptr);

  std::optional<StatsSnapshot> stats(std::string *Error = nullptr);

  /// Full metrics-registry dump (the `StatsJson` verb): one JSON string
  /// with queue, cache, request-latency and B&B counters. Schema in
  /// `docs/observability.md`.
  std::optional<std::string> statsJson(std::string *Error = nullptr);

  /// Liveness probe.
  bool ping(std::string *Error = nullptr);

  /// Asks the server to stop accepting and shut down.
  bool shutdownServer(std::string *Error = nullptr);

private:
  std::optional<Response> roundTrip(const Request &R, std::string *Error);

  int Fd = -1;
};

} // namespace mutk

#endif // MUTK_SERVICE_CLIENT_H
