//===- service/Server.cpp - Socket frontend for TreeService ---------------===//

#include "service/Server.h"

#include "obs/Instruments.h"
#include "obs/Log.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mutk;

namespace {

bool readAll(int Fd, void *Buffer, std::size_t Count) {
  auto *Bytes = static_cast<std::uint8_t *>(Buffer);
  while (Count > 0) {
    ssize_t Got = ::read(Fd, Bytes, Count);
    if (Got == 0)
      return false; // orderly EOF
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Bytes += Got;
    Count -= static_cast<std::size_t>(Got);
  }
  return true;
}

bool writeAll(int Fd, const void *Buffer, std::size_t Count) {
  const auto *Bytes = static_cast<const std::uint8_t *>(Buffer);
  while (Count > 0) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not as a
    // process-killing SIGPIPE (neither daemon nor client installs
    // handlers).
    ssize_t Put = ::send(Fd, Bytes, Count, MSG_NOSIGNAL);
    if (Put < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Bytes += Put;
    Count -= static_cast<std::size_t>(Put);
  }
  return true;
}

void fillError(std::string *Error, const char *What) {
  if (Error)
    *Error = std::string(What) + ": " + std::strerror(errno);
}

} // namespace

bool mutk::readFrame(int Fd, std::vector<std::uint8_t> &Payload) {
  std::uint8_t Header[4];
  if (!readAll(Fd, Header, sizeof(Header)))
    return false;
  std::uint32_t Length = 0;
  for (int I = 0; I < 4; ++I)
    Length |= static_cast<std::uint32_t>(Header[I]) << (8 * I);
  if (Length > MaxFrameBytes)
    return false;
  Payload.resize(Length);
  return Length == 0 || readAll(Fd, Payload.data(), Length);
}

bool mutk::writeFrame(int Fd, const std::vector<std::uint8_t> &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  std::uint8_t Header[4];
  std::uint32_t Length = static_cast<std::uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Header[I] = static_cast<std::uint8_t>(Length >> (8 * I));
  return writeAll(Fd, Header, sizeof(Header)) &&
         (Payload.empty() || writeAll(Fd, Payload.data(), Payload.size()));
}

SocketServer::SocketServer(TreeService &Service) : Service(Service) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::listenUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "unix socket path too long";
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    fillError(Error, "socket");
    return false;
  }
  ::unlink(Path.c_str()); // stale socket from a previous run
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    fillError(Error, "bind/listen");
    ::close(Fd);
    return false;
  }
  ListenFd = Fd;
  UnixPath = Path;
  return true;
}

bool SocketServer::listenTcp(const std::string &Host, int Port,
                             std::string *Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    fillError(Error, "socket");
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "invalid address '" + Host + "' (numeric IPv4 expected)";
    ::close(Fd);
    return false;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    fillError(Error, "bind/listen");
    ::close(Fd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  ListenFd = Fd;
  return true;
}

void SocketServer::start() {
  if (ListenFd < 0 || Running.exchange(true))
    return;
  Acceptor = std::thread([this] { acceptLoop(); });
}

void SocketServer::acceptLoop() {
  while (Running.load(std::memory_order_acquire)) {
    int Fd = ::accept(ListenFd.load(std::memory_order_acquire), nullptr,
                      nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listener closed by stop()
    }
    MutexLock Lock(Mu);
    if (!Running.load(std::memory_order_acquire)) {
      ::close(Fd);
      break;
    }
    LiveFds.push_back(Fd);
    obs::ServerInstruments &I = obs::serverInstruments();
    I.ConnectionsAccepted.inc();
    I.ConnectionsActive.add(1);
    obs::log(obs::LogLevel::Debug, "server", "connection accepted")
        .kv("fd", Fd)
        .kv("active", LiveFds.size());
    Connections.emplace_back([this, Fd] { serveConnection(Fd); });
  }
}

void SocketServer::serveConnection(int Fd) {
  obs::ServerInstruments &I = obs::serverInstruments();
  std::vector<std::uint8_t> Payload;
  while (Running.load(std::memory_order_acquire) && readFrame(Fd, Payload)) {
    I.FramesRead.inc();
    std::string DecodeError;
    std::optional<Request> Req = decodeRequest(Payload, &DecodeError);
    if (!Req) {
      I.ParseErrors.inc();
      obs::log(obs::LogLevel::Warn, "server", "undecodable request frame")
          .kv("fd", Fd)
          .kv("error", DecodeError)
          .kv("bytes", Payload.size());
    }
    Response Resp =
        Req ? Service.handle(*Req)
            : makeErrorResponse(Verb::Ping, ServiceError::BadFrame,
                                DecodeError);
    if (!writeFrame(Fd, encodeResponse(Resp))) {
      // A peer that hung up before reading its response raises EPIPE
      // (writes use MSG_NOSIGNAL) — that is a normal close, not an
      // error; anything else on the write path deserves a warning.
      if (errno == EPIPE || errno == ECONNRESET)
        obs::log(obs::LogLevel::Debug, "server", "peer closed mid-write")
            .kv("fd", Fd);
      else
        obs::log(obs::LogLevel::Warn, "server", "response write failed")
            .kv("fd", Fd)
            .kv("error", std::strerror(errno));
      break;
    }
    if (Req && Req->V == Verb::Shutdown) {
      obs::log(obs::LogLevel::Info, "server", "shutdown requested")
          .kv("fd", Fd);
      requestShutdown();
      break;
    }
  }
  I.ConnectionsActive.sub(1);
  obs::log(obs::LogLevel::Debug, "server", "connection closed").kv("fd", Fd);
  MutexLock Lock(Mu);
  LiveFds.erase(std::remove(LiveFds.begin(), LiveFds.end(), Fd),
                LiveFds.end());
  ::close(Fd);
}

void SocketServer::requestShutdown() {
  MutexLock Lock(Mu);
  ShutdownRequested = true;
  ShutdownCv.notify_all();
}

void SocketServer::waitForShutdown() {
  MutexLock Lock(Mu);
  while (!ShutdownRequested)
    ShutdownCv.wait(Lock);
}

void SocketServer::stop() {
  MutexLock StopLock(StopMu);
  if (!Running.exchange(false)) {
    // Never started (or already stopped): still release the listener.
    int Fd = ListenFd.exchange(-1);
    if (Fd >= 0)
      ::close(Fd);
  } else {
    // Closing the listener unblocks accept(); shutdown() covers the
    // accept-in-progress race on Linux.
    int Fd = ListenFd.exchange(-1);
    if (Fd >= 0) {
      ::shutdown(Fd, SHUT_RDWR);
      ::close(Fd);
    }
    if (Acceptor.joinable())
      Acceptor.join();
  }
  std::vector<std::thread> Live;
  {
    MutexLock Lock(Mu);
    // Wake connection threads blocked in readFrame; they close their
    // own fds on exit (under Mu, so these fds cannot be recycled yet).
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RDWR);
    Live.swap(Connections);
    ShutdownRequested = true;
    ShutdownCv.notify_all();
  }
  for (std::thread &T : Live)
    T.join();
  if (!UnixPath.empty()) {
    ::unlink(UnixPath.c_str());
    UnixPath.clear();
  }
}
