//===- service/ResultCache.h - Sharded LRU solution cache -------*- C++ -*-===//
///
/// \file
/// The memoization layer of the tree-construction service: a sharded LRU
/// cache from canonical matrix fingerprints (`matrix/Fingerprint.h`) to
/// solved trees in canonical leaf labels. One cache instance holds both
/// whole-matrix results and per-condensed-block subtrees (the service
/// salts the two key spaces apart), so repeated or overlapping queries
/// skip branch-and-bound entirely.
///
/// Sharding bounds lock contention: a key maps to one of `NumShards`
/// independent LRU lists, each behind its own mutex, so concurrent
/// workers rarely serialize. Hash collisions are handled by storing the
/// canonical bytes with each entry and comparing them on lookup — a
/// colliding key is a miss, never a wrong tree.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_RESULTCACHE_H
#define MUTK_SERVICE_RESULTCACHE_H

#include "obs/Instruments.h"
#include "support/Audit.h"
#include "support/Mutex.h"
#include "tree/PhyloTree.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mutk {

/// A cached solution: the tree is stored in *canonical* leaf labels (the
/// maxmin order of the matrix it solves), names stripped; `Bytes` is the
/// canonical form that produced the key, kept for collision checks.
struct CachedSolution {
  PhyloTree Tree;
  double Cost = 0.0;
  bool Exact = true;
  /// Block-tier entry (per-condensed-block subtree) rather than a
  /// whole-matrix result. The key spaces are already salted apart; this
  /// flag rides along so persistence and cluster transport can keep the
  /// namespace without reverse-engineering the key.
  bool Block = false;
  std::vector<std::uint8_t> Bytes;
};

/// Sharded LRU map `fingerprint -> CachedSolution`, safe for concurrent
/// lookup/store from any number of threads.
class ShardedLruCache {
public:
  /// \p Capacity is the *total* entry budget, split evenly across
  /// \p NumShards (each shard holds at least one entry).
  explicit ShardedLruCache(std::size_t Capacity, int NumShards = 8);

  /// Returns a copy of the entry for \p Key whose stored bytes equal
  /// \p Bytes, refreshing its recency; nullopt (a miss) otherwise.
  std::optional<CachedSolution> lookup(std::uint64_t Key,
                                       const std::vector<std::uint8_t> &Bytes);

  /// Inserts or refreshes \p Value under \p Key, evicting the shard's
  /// least-recently-used entry when full.
  void store(std::uint64_t Key, CachedSolution Value);

  /// True when an entry for \p Key with exactly \p Bytes exists. Unlike
  /// `lookup` this copies nothing, refreshes no recency and counts no
  /// hit/miss — an advisory probe (the QoS layer exempts warm requests
  /// from admission control with it) that must not distort the cache's
  /// own statistics.
  bool peek(std::uint64_t Key, const std::vector<std::uint8_t> &Bytes);

  /// Drops every entry (counters are kept).
  void clear();

  /// Copies out every entry, least-recently-used first (so replaying the
  /// list through `store` reproduces the recency order). Used by the
  /// persistence layer to compact the cache into a snapshot file.
  std::vector<std::pair<std::uint64_t, CachedSolution>> entries() const;

  /// Attaches registry counters: the aggregate hit/miss/eviction trio
  /// plus one labeled trio per shard (`Shards.size()` entries expected;
  /// extras ignored). Existing totals are not replayed.
  void setInstruments(const obs::CacheInstruments *Aggregate,
                      std::vector<obs::CacheShardInstruments> PerShard);

  std::uint64_t hits() const { return Hits.load(); }
  std::uint64_t misses() const { return Misses.load(); }
  std::uint64_t evictions() const { return Evictions.load(); }
  std::size_t size() const;

private:
  struct Shard {
    int Id = 0;
    mutable Mutex Mu{"service.cache.shard"};
    /// Front = most recently used.
    std::list<std::pair<std::uint64_t, CachedSolution>> Lru MUTK_GUARDED_BY(Mu);
    std::unordered_map<std::uint64_t, decltype(Lru)::iterator> Index
        MUTK_GUARDED_BY(Mu);
  };

  Shard &shardFor(std::uint64_t Key);

  void noteHit(const Shard &S);
  void noteMiss(const Shard &S);
  void noteEviction(const Shard &S);

#if MUTK_AUDIT_ENABLED
  /// Shard structural invariants, checked under the shard lock: the
  /// index mirrors the LRU list one-to-one and capacity is respected.
  bool shardConsistent(const Shard &S) const MUTK_REQUIRES(S.Mu);
#endif

  std::vector<std::unique_ptr<Shard>> Shards;
  const obs::CacheInstruments *Aggregate = nullptr;
  std::vector<obs::CacheShardInstruments> PerShard;
  std::size_t CapacityPerShard;
  std::atomic<std::uint64_t> Hits{0};
  std::atomic<std::uint64_t> Misses{0};
  std::atomic<std::uint64_t> Evictions{0};
};

} // namespace mutk

#endif // MUTK_SERVICE_RESULTCACHE_H
