//===- service/IncrementalIndex.h - Remembered solve bases ------*- C++ -*-===//
///
/// \file
/// The base-matrix side of incremental re-solve mode: a small LRU of
/// matrices the service has recently solved, kept with their full
/// distance data so a new request can be *diffed* against them
/// (`matrix/MatrixDiff.h`). Fingerprints cannot serve here — a
/// perturbation is by definition a different matrix with a different
/// fingerprint; the index exists precisely to bridge that gap by
/// joining taxa on their names.
///
/// The index is deliberately tiny (tens of entries, each O(n^2)
/// doubles): `bestBase` scans every remembered matrix, so capacity is a
/// latency knob, not a hit-rate contest. Thread-safe; workers remember
/// and match concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_INCREMENTALINDEX_H
#define MUTK_SERVICE_INCREMENTALINDEX_H

#include "matrix/DistanceMatrix.h"
#include "matrix/MatrixDiff.h"
#include "support/Mutex.h"

#include <cstdint>
#include <list>
#include <optional>

namespace mutk {

/// Bounded LRU of solved base matrices, matched by perturbation diff.
class IncrementalIndex {
public:
  /// \p Capacity is the number of remembered bases (min 1).
  explicit IncrementalIndex(std::size_t Capacity);

  /// Remembers \p M as a solved base (refreshes recency if an identical
  /// matrix — same fingerprint key — is already present).
  void remember(const DistanceMatrix &M, std::uint64_t FingerprintKey);

  /// A matched base and the delta that qualified it.
  struct Match {
    MatrixDelta Delta;
  };

  /// Diffs \p M against every remembered base and returns the smallest
  /// qualifying delta: comparable, `TaxaAdded + TaxaRemoved <=`
  /// \p MaxTaxaDelta, and `EntriesChanged <=` \p MaxChangedEntries.
  /// Smaller means fewer dirty species (ties favor recency). Exact
  /// duplicates (zero delta) also match — the whole-matrix cache answers
  /// those first, so in practice a zero match never reaches a solver.
  std::optional<Match> bestBase(const DistanceMatrix &M, int MaxTaxaDelta,
                                int MaxChangedEntries) const;

  std::size_t size() const;

private:
  struct Entry {
    std::uint64_t Key = 0;
    DistanceMatrix M;
  };

  mutable Mutex Mu{"service.incremental"};
  /// Front = most recently remembered.
  std::list<Entry> Bases MUTK_GUARDED_BY(Mu);
  std::size_t Capacity;
};

} // namespace mutk

#endif // MUTK_SERVICE_INCREMENTALINDEX_H
