//===- service/ServiceStats.h - Service counters & latency ------*- C++ -*-===//
///
/// \file
/// Lock-free counters for the tree-construction service, exposed through
/// the `Stats` protocol verb. Latency percentiles come from a fixed
/// power-of-two histogram over microseconds: `record` is one atomic
/// increment on the hot path, and p50/p95 are reconstructed from the
/// bucket counts with at most ~40% relative quantization error — plenty
/// for dashboards, free of allocation and locks.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_SERVICESTATS_H
#define MUTK_SERVICE_SERVICESTATS_H

#include "service/Protocol.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace mutk {

/// Histogram with one bucket per power of two of microseconds
/// (bucket 0 covers <= 1us, bucket 63 everything above ~146 hours).
class LatencyHistogram {
public:
  void record(double Millis) {
    double Micros = Millis * 1000.0;
    std::uint64_t Us = Micros <= 1.0 ? 1 : static_cast<std::uint64_t>(Micros);
    int Bucket = std::bit_width(Us) - 1;
    if (Bucket >= NumBuckets)
      Bucket = NumBuckets - 1;
    Buckets[static_cast<std::size_t>(Bucket)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Returns the approximate \p P quantile (0 < P < 1) in milliseconds;
  /// 0 when nothing was recorded. The returned value is the geometric
  /// midpoint of the bucket containing the quantile.
  double percentileMillis(double P) const {
    std::uint64_t Total = 0;
    std::array<std::uint64_t, NumBuckets> Snapshot;
    for (int I = 0; I < NumBuckets; ++I) {
      Snapshot[static_cast<std::size_t>(I)] =
          Buckets[static_cast<std::size_t>(I)].load(
              std::memory_order_relaxed);
      Total += Snapshot[static_cast<std::size_t>(I)];
    }
    if (Total == 0)
      return 0.0;
    std::uint64_t Rank = static_cast<std::uint64_t>(P * Total);
    if (Rank >= Total)
      Rank = Total - 1;
    std::uint64_t Seen = 0;
    for (int I = 0; I < NumBuckets; ++I) {
      Seen += Snapshot[static_cast<std::size_t>(I)];
      if (Seen > Rank) {
        // Bucket I spans [2^I, 2^(I+1)) microseconds.
        double MidUs = 1.5 * static_cast<double>(1ull << I);
        return MidUs / 1000.0;
      }
    }
    return 0.0;
  }

private:
  static constexpr int NumBuckets = 64;
  std::array<std::atomic<std::uint64_t>, NumBuckets> Buckets{};
};

/// The service's monotonically increasing counters.
struct ServiceCounters {
  std::atomic<std::uint64_t> Accepted{0};
  std::atomic<std::uint64_t> Completed{0};
  std::atomic<std::uint64_t> Failed{0};
  std::atomic<std::uint64_t> WholeHits{0};
  std::atomic<std::uint64_t> WholeMisses{0};
  std::atomic<std::uint64_t> BlockHits{0};
  std::atomic<std::uint64_t> BlockMisses{0};
  std::atomic<std::uint64_t> DeadlineExpired{0};
  std::atomic<std::uint64_t> Rejected{0};
  LatencyHistogram Latency;

  /// Snapshot into the wire struct; queue depth and cache size are owned
  /// by the service and filled by the caller.
  StatsSnapshot snapshot() const {
    StatsSnapshot S;
    S.Accepted = Accepted.load(std::memory_order_relaxed);
    S.Completed = Completed.load(std::memory_order_relaxed);
    S.Failed = Failed.load(std::memory_order_relaxed);
    S.WholeHits = WholeHits.load(std::memory_order_relaxed);
    S.WholeMisses = WholeMisses.load(std::memory_order_relaxed);
    S.BlockHits = BlockHits.load(std::memory_order_relaxed);
    S.BlockMisses = BlockMisses.load(std::memory_order_relaxed);
    S.DeadlineExpired = DeadlineExpired.load(std::memory_order_relaxed);
    S.Rejected = Rejected.load(std::memory_order_relaxed);
    S.P50Millis = Latency.percentileMillis(0.50);
    S.P95Millis = Latency.percentileMillis(0.95);
    return S;
  }
};

} // namespace mutk

#endif // MUTK_SERVICE_SERVICESTATS_H
