//===- service/ServiceStats.h - Service counters & latency ------*- C++ -*-===//
///
/// \file
/// Lock-free counters for the tree-construction service, exposed through
/// the `Stats` protocol verb. Latency percentiles come from an
/// `obs::Histogram` recording microseconds (sub-millisecond requests
/// keep their resolution): `record` is two relaxed atomic adds on the
/// hot path, and p50/p95 are reconstructed from the power-of-two bucket
/// counts — plenty for dashboards, free of allocation and locks.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_SERVICESTATS_H
#define MUTK_SERVICE_SERVICESTATS_H

#include "obs/Metrics.h"
#include "service/Protocol.h"

#include <atomic>
#include <cstdint>

namespace mutk {

/// Millisecond latency histogram backed by an `obs::Histogram` over
/// microseconds, so sub-millisecond solves still land in distinct
/// buckets.
class LatencyHistogram {
public:
  void record(double Millis) { H.record(Millis * 1000.0); }

  /// Snapshot with every value converted back to milliseconds.
  obs::HistogramSnapshot snapshotMillis() const {
    obs::HistogramSnapshot S = H.snapshot();
    S.Sum /= 1000.0;
    S.P50 /= 1000.0;
    S.P95 /= 1000.0;
    S.P99 /= 1000.0;
    S.Max /= 1000.0;
    return S;
  }

private:
  obs::Histogram H;
};

/// The service's monotonically increasing counters.
struct ServiceCounters {
  std::atomic<std::uint64_t> Accepted{0};
  std::atomic<std::uint64_t> Completed{0};
  std::atomic<std::uint64_t> Failed{0};
  std::atomic<std::uint64_t> WholeHits{0};
  std::atomic<std::uint64_t> WholeMisses{0};
  std::atomic<std::uint64_t> BlockHits{0};
  std::atomic<std::uint64_t> BlockMisses{0};
  std::atomic<std::uint64_t> BlockRemoteHits{0};
  std::atomic<std::uint64_t> IncrementalApplied{0};
  std::atomic<std::uint64_t> IncrementalDirty{0};
  std::atomic<std::uint64_t> IncrementalClean{0};
  std::atomic<std::uint64_t> DeadlineExpired{0};
  std::atomic<std::uint64_t> Rejected{0};
  std::atomic<std::uint64_t> Shed{0};
  std::atomic<std::uint64_t> RateLimited{0};
  std::atomic<std::uint64_t> TierExact{0};
  std::atomic<std::uint64_t> TierPipeline{0};
  std::atomic<std::uint64_t> TierHeuristic{0};
  std::atomic<std::uint64_t> Coalesced{0};
  LatencyHistogram Latency;

  /// Snapshot into the wire struct; queue depth and cache size are owned
  /// by the service and filled by the caller.
  StatsSnapshot snapshot() const {
    StatsSnapshot S;
    S.Accepted = Accepted.load(std::memory_order_relaxed);
    S.Completed = Completed.load(std::memory_order_relaxed);
    S.Failed = Failed.load(std::memory_order_relaxed);
    S.WholeHits = WholeHits.load(std::memory_order_relaxed);
    S.WholeMisses = WholeMisses.load(std::memory_order_relaxed);
    S.BlockHits = BlockHits.load(std::memory_order_relaxed);
    S.BlockMisses = BlockMisses.load(std::memory_order_relaxed);
    S.BlockRemoteHits = BlockRemoteHits.load(std::memory_order_relaxed);
    S.IncrementalApplied = IncrementalApplied.load(std::memory_order_relaxed);
    S.IncrementalDirty = IncrementalDirty.load(std::memory_order_relaxed);
    S.IncrementalClean = IncrementalClean.load(std::memory_order_relaxed);
    S.DeadlineExpired = DeadlineExpired.load(std::memory_order_relaxed);
    S.Rejected = Rejected.load(std::memory_order_relaxed);
    S.Shed = Shed.load(std::memory_order_relaxed);
    S.RateLimited = RateLimited.load(std::memory_order_relaxed);
    S.TierExact = TierExact.load(std::memory_order_relaxed);
    S.TierPipeline = TierPipeline.load(std::memory_order_relaxed);
    S.TierHeuristic = TierHeuristic.load(std::memory_order_relaxed);
    S.Coalesced = Coalesced.load(std::memory_order_relaxed);
    obs::HistogramSnapshot L = Latency.snapshotMillis();
    S.P50Millis = L.P50;
    S.P95Millis = L.P95;
    return S;
  }
};

} // namespace mutk

#endif // MUTK_SERVICE_SERVICESTATS_H
