//===- service/ResultCache.cpp - Sharded LRU solution cache ---------------===//

#include "service/ResultCache.h"

#include "support/Audit.h"

#include <algorithm>

using namespace mutk;

#if MUTK_AUDIT_ENABLED
bool ShardedLruCache::shardConsistent(const Shard &S) const {
  if (S.Index.size() != S.Lru.size() || S.Lru.size() > CapacityPerShard)
    return false;
  for (auto It = S.Lru.begin(); It != S.Lru.end(); ++It) {
    auto Found = S.Index.find(It->first);
    if (Found == S.Index.end() || Found->second != It)
      return false;
  }
  return true;
}
#endif

ShardedLruCache::ShardedLruCache(std::size_t Capacity, int NumShards) {
  NumShards = std::max(1, NumShards);
  Shards.reserve(static_cast<std::size_t>(NumShards));
  for (int I = 0; I < NumShards; ++I) {
    Shards.push_back(std::make_unique<Shard>());
    Shards.back()->Id = I;
  }
  CapacityPerShard =
      std::max<std::size_t>(1, Capacity / static_cast<std::size_t>(NumShards));
}

void ShardedLruCache::setInstruments(
    const obs::CacheInstruments *Aggregate,
    std::vector<obs::CacheShardInstruments> PerShard) {
  this->Aggregate = Aggregate;
  this->PerShard = std::move(PerShard);
}

void ShardedLruCache::noteHit(const Shard &S) {
  if (Aggregate)
    Aggregate->Hits.inc();
  auto I = static_cast<std::size_t>(S.Id);
  if (I < PerShard.size() && PerShard[I].Hits)
    PerShard[I].Hits->inc();
}

void ShardedLruCache::noteMiss(const Shard &S) {
  if (Aggregate)
    Aggregate->Misses.inc();
  auto I = static_cast<std::size_t>(S.Id);
  if (I < PerShard.size() && PerShard[I].Misses)
    PerShard[I].Misses->inc();
}

void ShardedLruCache::noteEviction(const Shard &S) {
  if (Aggregate)
    Aggregate->Evictions.inc();
  auto I = static_cast<std::size_t>(S.Id);
  if (I < PerShard.size() && PerShard[I].Evictions)
    PerShard[I].Evictions->inc();
}

ShardedLruCache::Shard &ShardedLruCache::shardFor(std::uint64_t Key) {
  // The key is already an FNV hash; fold the high bits in so shard
  // selection does not just reuse the low bits the index hashes with.
  std::uint64_t Mixed = Key ^ (Key >> 32);
  return *Shards[static_cast<std::size_t>(Mixed % Shards.size())];
}

std::optional<CachedSolution>
ShardedLruCache::lookup(std::uint64_t Key,
                        const std::vector<std::uint8_t> &Bytes) {
  Shard &S = shardFor(Key);
  MutexLock Lock(S.Mu);
  auto It = S.Index.find(Key);
  if (It == S.Index.end() || It->second->second.Bytes != Bytes) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    noteMiss(S);
    return std::nullopt;
  }
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Hits.fetch_add(1, std::memory_order_relaxed);
  noteHit(S);
  MUTK_AUDIT(shardConsistent(S),
             "cache shard index/LRU desynchronized after lookup");
  return It->second->second;
}

bool ShardedLruCache::peek(std::uint64_t Key,
                           const std::vector<std::uint8_t> &Bytes) {
  Shard &S = shardFor(Key);
  MutexLock Lock(S.Mu);
  auto It = S.Index.find(Key);
  return It != S.Index.end() && It->second->second.Bytes == Bytes;
}

void ShardedLruCache::store(std::uint64_t Key, CachedSolution Value) {
  Shard &S = shardFor(Key);
  MutexLock Lock(S.Mu);
  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    // Refresh: a colliding key overwrites (last writer wins; the bytes
    // check on lookup keeps either outcome correct).
    It->second->second = std::move(Value);
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  if (S.Lru.size() >= CapacityPerShard) {
    S.Index.erase(S.Lru.back().first);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    noteEviction(S);
  }
  S.Lru.emplace_front(Key, std::move(Value));
  S.Index.emplace(Key, S.Lru.begin());
  MUTK_AUDIT(shardConsistent(S),
             "cache shard index/LRU desynchronized after store");
}

void ShardedLruCache::clear() {
  for (auto &S : Shards) {
    MutexLock Lock(S->Mu);
    S->Lru.clear();
    S->Index.clear();
  }
}

std::vector<std::pair<std::uint64_t, CachedSolution>>
ShardedLruCache::entries() const {
  std::vector<std::pair<std::uint64_t, CachedSolution>> Out;
  for (const auto &S : Shards) {
    MutexLock Lock(S->Mu);
    // Front = most recently used; walk backwards for LRU-first order.
    for (auto It = S->Lru.rbegin(); It != S->Lru.rend(); ++It)
      Out.push_back(*It);
  }
  return Out;
}

std::size_t ShardedLruCache::size() const {
  std::size_t Total = 0;
  for (const auto &S : Shards) {
    MutexLock Lock(S->Mu);
    Total += S->Lru.size();
  }
  return Total;
}
